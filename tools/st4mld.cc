// st4mld: the ST4ML query daemon. Owns ONE warm Session — ExecutionContext,
// worker pool and DatasetCache — for its whole lifetime and serves
// select/extract pipelines over a length-prefixed JSON socket protocol, so
// repeated queries hit a hot cache instead of paying a cold start per
// invocation (the batch CLIs' cost model). See DESIGN.md §10.
//
//   st4mld --port=7878 [--cache-budget=-1]
//       [--max-inflight=8] [--queue-depth=16] [--max-connections=64]
//       [--rate-qps=0 --rate-burst=8]
//       [--port-file=FILE] [--trace=FILE] [--metrics-json=FILE]
//
// --port=0 binds an ephemeral port; --port-file writes the bound port for
// scripts (the CI serve smoke uses it). Stops on SIGINT/SIGTERM or a
// client's shutdown verb, draining in-flight requests first.

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/env.h"
#include "pipeline/session.h"
#include "server/server.h"
#include "tool_flags.h"
#include "tool_main.h"

namespace {

volatile std::sig_atomic_t g_signal_received = 0;

void OnSignal(int) { g_signal_received = 1; }

int Run(int argc, char** argv) {
  st4ml::tools::Flags flags(argc, argv);
  st4ml::ToolOptions options = st4ml::tools::ToolOptionsFromFlags(flags);
  // A daemon exists to stay warm: default the cache to unbounded instead of
  // the batch tools' off-unless-asked, while still honoring an explicit
  // --cache-budget (0 turns it off for A/B runs).
  if (!options.has_cache_budget) {
    options.has_cache_budget = true;
    options.cache_budget_bytes = -1;
  }
  // The daemon serves concurrent jobs from connection threads; the mp
  // executor forks per job and assumes a single-threaded driver, so it is
  // a batch-tool feature. Refuse it up front rather than fork a
  // multithreaded server.
  {
    auto spec = st4ml::ExecutorSpec::Parse(flags.GetString(
        "executor", st4ml::GetEnvString("ST4ML_EXECUTOR", "")));
    if (spec.ok() && spec->kind == st4ml::ExecutorSpec::Kind::kMultiProcess) {
      std::fprintf(stderr,
                   "st4mld: the mp executor is not supported by the daemon "
                   "(concurrent jobs need the in-process pool)\n");
      return 2;
    }
    options.executor = "local";
  }
  st4ml::Session session(options);
  if (!st4ml::tools::CheckSessionConfig(session, "st4mld")) return 2;

  st4ml::server::ServerOptions server_options;
  server_options.port = static_cast<int>(flags.GetInt("port", 0));
  server_options.max_inflight =
      static_cast<size_t>(flags.GetInt("max-inflight", 8));
  server_options.queue_depth =
      static_cast<size_t>(flags.GetInt("queue-depth", 16));
  server_options.rate_qps =
      static_cast<double>(flags.GetInt("rate-qps", 0));
  server_options.rate_burst =
      static_cast<double>(flags.GetInt("rate-burst", 8));
  server_options.max_connections =
      static_cast<size_t>(flags.GetInt("max-connections", 64));
  if (!st4ml::tools::CheckIntFlags(flags, "st4mld")) return 2;
  // Frame writes already use MSG_NOSIGNAL, but a daemon must never die of
  // SIGPIPE from any write path a disconnected client can reach.
  std::signal(SIGPIPE, SIG_IGN);
  st4ml::server::Server server(&session, server_options);
  st4ml::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "st4mld: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "st4mld: listening on 127.0.0.1:%d\n", server.port());

  std::string port_file = flags.GetString("port-file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << "\n";
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  // Alternate between the shutdown-verb wait and the signal flag; both end
  // in the same graceful drain.
  while (!server.WaitShutdownRequested(/*timeout_ms=*/200)) {
    if (g_signal_received != 0) break;
  }
  std::fprintf(stderr, "st4mld: shutting down (%s)\n",
               g_signal_received != 0 ? "signal" : "shutdown verb");
  server.Shutdown();
  if (!session.ExportArtifacts("st4mld")) return 1;
  std::fprintf(stderr, "st4mld: served %llu jobs\n",
               static_cast<unsigned long long>(session.jobs_started()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return st4ml::tools::ToolMain("st4mld", [&] { return Run(argc, argv); });
}
