#ifndef ST4ML_TOOLS_TOOL_FLAGS_H_
#define ST4ML_TOOLS_TOOL_FLAGS_H_

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "pipeline/session.h"
#include "selection/select_query.h"

namespace st4ml {
namespace tools {

/// Minimal `--name=value` flag access over argv, shared by the CLI tools.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  std::string GetString(const std::string& name,
                        const std::string& default_value) const {
    std::string prefix = "--" + name + "=";
    for (const std::string& arg : args_) {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    }
    return default_value;
  }

  /// Strict integer flag: the whole value must parse (same rule as
  /// GetIntList), so `--limit=10x` or `--cache-budget=abc` is a usage
  /// error, never a silent 10 or 0. A malformed value is recorded against
  /// the flag name; tools surface it through CheckIntFlags before acting.
  int64_t GetInt(const std::string& name, int64_t default_value) const {
    std::string value = GetString(name, "");
    if (value.empty()) return default_value;
    char* end = nullptr;
    errno = 0;
    long long parsed = std::strtoll(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
      errors_.push_back("--" + name + "=" + value +
                        " is not a valid integer");
      return default_value;
    }
    return static_cast<int64_t>(parsed);
  }

  /// True when every integer flag read so far parsed cleanly.
  bool ok() const { return errors_.empty(); }
  const std::vector<std::string>& errors() const { return errors_; }

  bool Has(const std::string& name) const {
    return !GetString(name, "").empty() ||
           std::find(args_.begin(), args_.end(), "--" + name) != args_.end();
  }

  /// Splits a `a,b,c,...` flag value into doubles; returns false on count or
  /// parse mismatch.
  bool GetDoubleList(const std::string& name, size_t expected,
                     std::vector<double>* out) const {
    std::string value = GetString(name, "");
    if (value.empty()) return false;
    out->clear();
    std::stringstream stream(value);
    std::string piece;
    while (std::getline(stream, piece, ',')) {
      char* end = nullptr;
      double parsed = std::strtod(piece.c_str(), &end);
      if (end == piece.c_str()) return false;
      out->push_back(parsed);
    }
    return out->size() == expected;
  }

  /// Splits a `1,2,3,...` flag value into int64s (any count >= 1); returns
  /// false when the flag is absent or any piece fails to parse completely.
  bool GetIntList(const std::string& name, std::vector<int64_t>* out) const {
    std::string value = GetString(name, "");
    if (value.empty()) return false;
    out->clear();
    std::stringstream stream(value);
    std::string piece;
    while (std::getline(stream, piece, ',')) {
      char* end = nullptr;
      long long parsed = std::strtoll(piece.c_str(), &end, 10);
      if (end == piece.c_str() || *end != '\0') return false;
      out->push_back(static_cast<int64_t>(parsed));
    }
    return !out->empty();
  }

 private:
  std::vector<std::string> args_;
  // GetInt is a const accessor on a parse-once view, so the malformed-flag
  // record is the one mutable bit of state.
  mutable std::vector<std::string> errors_;
};

/// The usage-error gate every tool runs after its last integer flag read:
/// prints each malformed flag by name and returns false so the tool exits
/// with a usage error instead of acting on a half-parsed number.
inline bool CheckIntFlags(const Flags& flags, const char* tool) {
  if (flags.ok()) return true;
  for (const std::string& error : flags.errors()) {
    std::fprintf(stderr, "%s: %s\n", tool, error.c_str());
  }
  return false;
}

/// The engine flag set every Session-backed entry point shares, parsed ONCE:
///   --cache-budget=BYTES   explicit dataset-cache budget (negative means
///                          unbounded, 0 disables; absent keeps the
///                          ST4ML_CACHE_BUDGET_BYTES env default)
///   --trace=FILE           attach a Tracer; Chrome trace written on export
///   --metrics-json=FILE    flat metrics JSON written on export
///   --workers=N            worker pool size (0 sizes to the hardware)
///   --backend=NAME         force the accel kernel backend
///                          (scalar|sse2|avx2; absent keeps the automatic
///                          choice: ST4ML_BACKEND env, else widest ISA the
///                          CPU supports) — an invalid name surfaces on
///                          Session::configure_status()
///   --executor=SPEC        executor backend: local, local:N, or mp:N
///                          (N forked worker processes, DESIGN.md §14);
///                          absent keeps the automatic choice
///                          (ST4ML_EXECUTOR env, else local) — a malformed
///                          spec surfaces on Session::configure_status()
/// The batch CLIs and st4mld all feed the result to Session::Configure —
/// one spelling of the plumbing instead of five.
inline ToolOptions ToolOptionsFromFlags(const Flags& flags) {
  ToolOptions options;
  if (flags.Has("cache-budget")) {
    options.has_cache_budget = true;
    options.cache_budget_bytes = flags.GetInt("cache-budget", 0);
  }
  options.trace_path = flags.GetString("trace", "");
  options.metrics_json_path = flags.GetString("metrics-json", "");
  options.num_workers = static_cast<int>(flags.GetInt("workers", 0));
  options.backend = flags.GetString("backend", "");
  options.executor = flags.GetString("executor", "");
  return options;
}

/// The CLI spelling of the unified SelectQuery (the same predicate the
/// server's select/lookup_id verbs parse from JSON):
///   --mbr=x1,y1,x2,y2 --time=start,end   the ST box (both or neither;
///                                        omitted means span-everything)
///   --ids=1,2,3                          restrict to these record ids
///   --limit=N                            cap PRINTED rows (count is exact)
///   --count-only                         print only the match count
/// At least one predicate (a box or an id list) is required — an
/// unconstrained full dump stays an explicit choice, not a typo. Returns
/// false on a usage error, with the malformed flag named on stderr.
inline bool SelectQueryFromFlags(const Flags& flags, const char* tool,
                                 SelectQuery* query) {
  *query = SelectQuery();
  bool has_mbr = flags.Has("mbr");
  bool has_time = flags.Has("time");
  if (has_mbr || has_time) {
    std::vector<double> mbr;
    std::vector<double> time;
    if (!flags.GetDoubleList("mbr", 4, &mbr) ||
        !flags.GetDoubleList("time", 2, &time)) {
      std::fprintf(stderr,
                   "%s: --mbr=x1,y1,x2,y2 and --time=start,end must be "
                   "given together\n",
                   tool);
      return false;
    }
    // The same integral-int64 rule the server's select verb applies
    // (ParseQuery): casting an out-of-range double to int64_t is UB, so
    // `--time=0,1e300` must die as a usage error, not as whatever the
    // hardware truncates it to.
    for (double t : time) {
      if (t < -9223372036854775808.0 || t >= 9223372036854775808.0 ||
          t != std::floor(t)) {
        std::fprintf(stderr,
                     "%s: --time endpoints must be integral int64 seconds\n",
                     tool);
        return false;
      }
    }
    query->box = STBox(Mbr(mbr[0], mbr[1], mbr[2], mbr[3]),
                       Duration(static_cast<int64_t>(time[0]),
                                static_cast<int64_t>(time[1])));
  } else {
    query->box = SelectQuery::EverythingBox();
  }
  if (flags.Has("ids")) {
    std::vector<int64_t> ids;
    if (!flags.GetIntList("ids", &ids)) {
      std::fprintf(stderr, "%s: --ids must be a comma-separated id list\n",
                   tool);
      return false;
    }
    query->SetIds(std::move(ids));
  }
  if (!has_mbr && !has_time && !query->has_ids) {
    std::fprintf(stderr, "%s: give --mbr/--time and/or --ids\n", tool);
    return false;
  }
  query->limit = flags.GetInt("limit", -1);
  query->count_only = flags.Has("count-only");
  return true;
}

/// Post-construction check the Session-backed tools share: a bad engine
/// option (an unknown --backend) reports on stderr and exits non-zero
/// instead of silently running misconfigured.
inline bool CheckSessionConfig(const Session& session, const char* tool) {
  if (session.configure_status().ok()) return true;
  std::fprintf(stderr, "%s: %s\n", tool,
               session.configure_status().ToString().c_str());
  return false;
}

}  // namespace tools
}  // namespace st4ml

#endif  // ST4ML_TOOLS_TOOL_FLAGS_H_
