#ifndef ST4ML_TOOLS_TOOL_FLAGS_H_
#define ST4ML_TOOLS_TOOL_FLAGS_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "pipeline/session.h"

namespace st4ml {
namespace tools {

/// Minimal `--name=value` flag access over argv, shared by the CLI tools.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  std::string GetString(const std::string& name,
                        const std::string& default_value) const {
    std::string prefix = "--" + name + "=";
    for (const std::string& arg : args_) {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    }
    return default_value;
  }

  int64_t GetInt(const std::string& name, int64_t default_value) const {
    std::string value = GetString(name, "");
    return value.empty() ? default_value : std::strtoll(value.c_str(), nullptr, 10);
  }

  bool Has(const std::string& name) const {
    return !GetString(name, "").empty() ||
           std::find(args_.begin(), args_.end(), "--" + name) != args_.end();
  }

  /// Splits a `a,b,c,...` flag value into doubles; returns false on count or
  /// parse mismatch.
  bool GetDoubleList(const std::string& name, size_t expected,
                     std::vector<double>* out) const {
    std::string value = GetString(name, "");
    if (value.empty()) return false;
    out->clear();
    std::stringstream stream(value);
    std::string piece;
    while (std::getline(stream, piece, ',')) {
      char* end = nullptr;
      double parsed = std::strtod(piece.c_str(), &end);
      if (end == piece.c_str()) return false;
      out->push_back(parsed);
    }
    return out->size() == expected;
  }

 private:
  std::vector<std::string> args_;
};

/// The engine flag set every Session-backed entry point shares, parsed ONCE:
///   --cache-budget=BYTES   explicit dataset-cache budget (negative means
///                          unbounded, 0 disables; absent keeps the
///                          ST4ML_CACHE_BUDGET_BYTES env default)
///   --trace=FILE           attach a Tracer; Chrome trace written on export
///   --metrics-json=FILE    flat metrics JSON written on export
///   --workers=N            worker pool size (0 sizes to the hardware)
///   --backend=NAME         force the accel kernel backend
///                          (scalar|sse2|avx2; absent keeps the automatic
///                          choice: ST4ML_BACKEND env, else widest ISA the
///                          CPU supports) — an invalid name surfaces on
///                          Session::configure_status()
/// The batch CLIs and st4mld all feed the result to Session::Configure —
/// one spelling of the plumbing instead of five.
inline ToolOptions ToolOptionsFromFlags(const Flags& flags) {
  ToolOptions options;
  if (flags.Has("cache-budget")) {
    options.has_cache_budget = true;
    options.cache_budget_bytes = flags.GetInt("cache-budget", 0);
  }
  options.trace_path = flags.GetString("trace", "");
  options.metrics_json_path = flags.GetString("metrics-json", "");
  options.num_workers = static_cast<int>(flags.GetInt("workers", 0));
  options.backend = flags.GetString("backend", "");
  return options;
}

/// Post-construction check the Session-backed tools share: a bad engine
/// option (an unknown --backend) reports on stderr and exits non-zero
/// instead of silently running misconfigured.
inline bool CheckSessionConfig(const Session& session, const char* tool) {
  if (session.configure_status().ok()) return true;
  std::fprintf(stderr, "%s: %s\n", tool,
               session.configure_status().ToString().c_str());
  return false;
}

}  // namespace tools
}  // namespace st4ml

#endif  // ST4ML_TOOLS_TOOL_FLAGS_H_
