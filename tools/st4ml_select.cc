// st4ml_select: metadata-pruned selection over an st4ml_ingest directory.
// Prints matching events as CSV on stdout. The predicate is the unified
// SelectQuery: an ST box, an id list, or both (AND).
//
//   st4ml_select --dir=stpq_store --mbr=-74.05,40.60,-73.75,40.90
//       --time=1577836800,1585612800 [--ids=1,2,3] [--limit=N]
//       [--count-only] [--cache-budget=67108864]
//       [--trace=trace.json] [--metrics-json=metrics.json] > selected.csv

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "pipeline/session.h"
#include "selection/select_query.h"
#include "selection/selector.h"
#include "tool_flags.h"
#include "tool_main.h"

namespace {

int Run(int argc, char** argv) {
  st4ml::tools::Flags flags(argc, argv);
  std::string dir = flags.GetString("dir", "");
  st4ml::SelectQuery query;
  if (dir.empty() ||
      !st4ml::tools::SelectQueryFromFlags(flags, "st4ml_select", &query)) {
    std::fprintf(stderr,
                 "usage: st4ml_select --dir=DIR "
                 "[--mbr=x1,y1,x2,y2 --time=start,end] [--ids=1,2,3] "
                 "[--limit=N] [--count-only] "
                 "[--cache-budget=BYTES] [--trace=FILE] "
                 "[--metrics-json=FILE] [--backend=scalar|sse2|avx2]\n");
    return 2;
  }

  st4ml::ToolOptions options = st4ml::tools::ToolOptionsFromFlags(flags);
  if (!st4ml::tools::CheckIntFlags(flags, "st4ml_select")) return 2;
  st4ml::Session session(options);
  if (!st4ml::tools::CheckSessionConfig(session, "st4ml_select")) return 2;
  st4ml::Selector<st4ml::EventRecord> selector(session.context(), query);
  st4ml::Job job = session.StartJob("st4ml_select");
  auto selected = job.pipeline().Run("selection", [&] {
    return selector.Select(dir, dir + "/index.meta");
  });
  job.Finish();
  if (!job.ok()) {
    std::fprintf(stderr, "st4ml_select: %s\n",
                 job.status().ToString().c_str());
    return 1;
  }

  size_t count;
  if (query.count_only) {
    // No materialization, no sort, no row formatting — the fast path a
    // cardinality probe wants.
    count = selected->Count();
    std::printf("count\n%zu\n", count);
  } else {
    std::vector<st4ml::EventRecord> records = selected->Collect();
    std::sort(records.begin(), records.end(),
              [](const st4ml::EventRecord& a, const st4ml::EventRecord& b) {
                return a.id < b.id;
              });
    count = records.size();
    size_t shown = query.limit < 0
                       ? records.size()
                       : std::min(records.size(),
                                  static_cast<size_t>(query.limit));
    std::printf("id,x,y,time,attr\n");
    for (size_t i = 0; i < shown; ++i) {
      const st4ml::EventRecord& r = records[i];
      std::printf("%lld,%.6f,%.6f,%lld,%s\n", static_cast<long long>(r.id),
                  r.x, r.y, static_cast<long long>(r.time), r.attr.c_str());
    }
  }
  std::fprintf(stderr,
               "st4ml_select: %zu records (loaded %llu bytes, kept %llu)\n",
               count,
               static_cast<unsigned long long>(selector.stats().bytes_loaded),
               static_cast<unsigned long long>(
                   selector.stats().bytes_selected));
  if (!session.ExportArtifacts("st4ml_select")) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return st4ml::tools::ToolMain("st4ml_select",
                                [&] { return Run(argc, argv); });
}
