// st4ml_select: metadata-pruned selection over an st4ml_ingest directory.
// Prints matching events as CSV on stdout.
//
//   st4ml_select --dir=stpq_store --mbr=-74.05,40.60,-73.75,40.90
//       --time=1577836800,1585612800 [--cache-budget=67108864]
//       [--trace=trace.json] [--metrics-json=metrics.json] > selected.csv

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "pipeline/session.h"
#include "selection/selector.h"
#include "tool_flags.h"
#include "tool_main.h"

namespace {

int Run(int argc, char** argv) {
  st4ml::tools::Flags flags(argc, argv);
  std::string dir = flags.GetString("dir", "");
  std::vector<double> mbr;
  std::vector<double> time;
  if (dir.empty() || !flags.GetDoubleList("mbr", 4, &mbr) ||
      !flags.GetDoubleList("time", 2, &time)) {
    std::fprintf(stderr,
                 "usage: st4ml_select --dir=DIR "
                 "--mbr=x1,y1,x2,y2 --time=start,end "
                 "[--cache-budget=BYTES] [--trace=FILE] "
                 "[--metrics-json=FILE] [--backend=scalar|sse2|avx2]\n");
    return 2;
  }
  st4ml::STBox query(
      st4ml::Mbr(mbr[0], mbr[1], mbr[2], mbr[3]),
      st4ml::Duration(static_cast<int64_t>(time[0]),
                      static_cast<int64_t>(time[1])));

  st4ml::Session session(st4ml::tools::ToolOptionsFromFlags(flags));
  if (!st4ml::tools::CheckSessionConfig(session, "st4ml_select")) return 2;
  st4ml::Selector<st4ml::EventRecord> selector(session.context(), query);
  st4ml::Job job = session.StartJob("st4ml_select");
  auto selected = job.pipeline().Run("selection", [&] {
    return selector.Select(dir, dir + "/index.meta");
  });
  job.Finish();
  if (!job.ok()) {
    std::fprintf(stderr, "st4ml_select: %s\n",
                 job.status().ToString().c_str());
    return 1;
  }

  std::vector<st4ml::EventRecord> records = selected->Collect();
  std::sort(records.begin(), records.end(),
            [](const st4ml::EventRecord& a, const st4ml::EventRecord& b) {
              return a.id < b.id;
            });
  std::printf("id,x,y,time,attr\n");
  for (const st4ml::EventRecord& r : records) {
    std::printf("%lld,%.6f,%.6f,%lld,%s\n", static_cast<long long>(r.id), r.x,
                r.y, static_cast<long long>(r.time), r.attr.c_str());
  }
  std::fprintf(stderr,
               "st4ml_select: %zu records (loaded %llu bytes, kept %llu)\n",
               records.size(),
               static_cast<unsigned long long>(selector.stats().bytes_loaded),
               static_cast<unsigned long long>(
                   selector.stats().bytes_selected));
  if (!session.ExportArtifacts("st4ml_select")) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return st4ml::tools::ToolMain("st4ml_select",
                                [&] { return Run(argc, argv); });
}
