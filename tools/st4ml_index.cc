// st4ml_index: operate on the persistent `.stix` sidecar indexes next to a
// dataset's `.stpq` part files (DESIGN.md §12). Three subcommands:
//
//   st4ml_index build    --dir=DIR | --file=PART.stpq
//       (re)bulk-loads the STR-packed sidecar for each part file — the
//       manual spelling of what st4ml_ingest now does automatically, for
//       retrofitting pre-index stores or rebuilding after a corruption.
//   st4ml_index verify   --dir=DIR | --file=PART.stpq
//       opens every sidecar through the full validation gauntlet (magic,
//       layout, permutations, offsets, staleness) and reports per file;
//       exits non-zero if any sidecar is missing or bad.
//   st4ml_index describe --dir=DIR | --file=PART.stpq
//       prints each sidecar's header: records, tree nodes, distinct ids,
//       index bytes vs data bytes.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "index/stix.h"
#include "storage/stpq.h"
#include "tool_flags.h"
#include "tool_main.h"

namespace {

namespace fs = std::filesystem;

int Usage() {
  std::fprintf(stderr,
               "usage: st4ml_index build|verify|describe "
               "--dir=DIR | --file=PART.stpq\n");
  return 2;
}

/// The part files to operate on: one --file, or every *.stpq under --dir
/// (sorted, so output order is stable).
st4ml::StatusOr<std::vector<std::string>> Targets(
    const st4ml::tools::Flags& flags) {
  std::string file = flags.GetString("file", "");
  if (!file.empty()) return std::vector<std::string>{file};
  std::string dir = flags.GetString("dir", "");
  if (dir.empty()) {
    return st4ml::Status::InvalidArgument("give --dir=DIR or --file=PART.stpq");
  }
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return st4ml::Status::NotFound("cannot list directory " + dir + ": " +
                                   ec.message());
  }
  std::vector<std::string> files;
  for (const auto& entry : it) {
    if (entry.path().extension() == ".stpq") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    return st4ml::Status::NotFound("no .stpq files under " + dir);
  }
  return files;
}

st4ml::Status BuildOne(const std::string& path) {
  auto kind = st4ml::ReadStpqKind(path);
  if (!kind.ok()) return kind.status();
  uint64_t io_bytes = 0;
  if (*kind == st4ml::kStpqKindEvent) {
    auto records = st4ml::ReadStpqEvents(path);
    if (!records.ok()) return records.status();
    ST4ML_RETURN_IF_ERROR(st4ml::BuildStixForStpq(path, *records, &io_bytes));
    std::printf("built %s (%zu records, %llu index bytes)\n",
                st4ml::StixPathFor(path).c_str(), records->size(),
                static_cast<unsigned long long>(io_bytes));
  } else {
    auto records = st4ml::ReadStpqTrajs(path);
    if (!records.ok()) return records.status();
    ST4ML_RETURN_IF_ERROR(st4ml::BuildStixForStpq(path, *records, &io_bytes));
    std::printf("built %s (%zu records, %llu index bytes)\n",
                st4ml::StixPathFor(path).c_str(), records->size(),
                static_cast<unsigned long long>(io_bytes));
  }
  return st4ml::Status::Ok();
}

int Run(int argc, char** argv) {
  st4ml::tools::Flags flags(argc, argv);
  std::string command;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      command = arg;
      break;
    }
  }
  if (command != "build" && command != "verify" && command != "describe") {
    return Usage();
  }
  auto targets = Targets(flags);
  if (!targets.ok()) {
    std::fprintf(stderr, "st4ml_index: %s\n",
                 targets.status().ToString().c_str());
    return targets.status().code() == st4ml::Status::Code::kInvalidArgument
               ? 2
               : 1;
  }

  int failures = 0;
  for (const std::string& path : *targets) {
    if (command == "build") {
      st4ml::Status status = BuildOne(path);
      if (!status.ok()) {
        std::fprintf(stderr, "st4ml_index: %s: %s\n", path.c_str(),
                     status.ToString().c_str());
        ++failures;
      }
      continue;
    }
    auto index = st4ml::StixIndex::Open(st4ml::StixPathFor(path), path);
    if (!index.ok()) {
      if (command == "verify") {
        std::printf("%s: BAD (%s)\n", path.c_str(),
                    index.status().ToString().c_str());
      } else {
        std::fprintf(stderr, "st4ml_index: %s: %s\n", path.c_str(),
                     index.status().ToString().c_str());
      }
      ++failures;
      continue;
    }
    if (command == "verify") {
      std::printf("%s: ok (%llu records)\n", path.c_str(),
                  static_cast<unsigned long long>(index->record_count()));
    } else {
      std::printf(
          "%s: records=%llu nodes=%llu ids=%llu index_bytes=%llu "
          "data_bytes=%llu\n",
          st4ml::StixPathFor(path).c_str(),
          static_cast<unsigned long long>(index->record_count()),
          static_cast<unsigned long long>(index->node_count()),
          static_cast<unsigned long long>(index->id_count()),
          static_cast<unsigned long long>(index->file_bytes()),
          static_cast<unsigned long long>(index->header().source_size));
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return st4ml::tools::ToolMain("st4ml_index",
                                [&] { return Run(argc, argv); });
}
