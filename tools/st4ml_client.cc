// st4ml_client: one-shot CLI client for st4mld. Builds the request JSON
// from flags, performs a single framed round trip, prints the raw response
// JSON on stdout, and exits 0 iff the server answered {"ok":true,...}.
//
//   st4ml_client --port=7878 ping [--sleep-ms=0]
//   st4ml_client --port=7878 stats
//   st4ml_client --port=7878 select --dir=stpq_store
//       --mbr=-74.05,40.60,-73.75,40.90 --time=1577836800,1585612800
//       [--ids=1,2,3] [--limit=100]
//   st4ml_client --port=7878 lookup_id --dir=stpq_store --ids=1,2,3
//       [--mbr=... --time=...] [--limit=100]
//   st4ml_client --port=7878 extract --dir=stpq_store --mbr=... --time=...
//       [--interval=3600]
//   st4ml_client --port=7878 shutdown

#include <cstdio>
#include <string>
#include <vector>

#include "server/client.h"
#include "storage/json.h"
#include "tool_flags.h"
#include "tool_main.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: st4ml_client --port=PORT VERB [flags]\n"
               "  ping     [--sleep-ms=MS]\n"
               "  stats\n"
               "  select    --dir=DIR --mbr=x1,y1,x2,y2 --time=s,e "
               "[--ids=1,2,3] [--limit=N]\n"
               "  lookup_id --dir=DIR --ids=1,2,3 "
               "[--mbr=x1,y1,x2,y2 --time=s,e] [--limit=N]\n"
               "  extract   --dir=DIR --mbr=x1,y1,x2,y2 --time=s,e "
               "[--interval=SECONDS]\n"
               "  flush         --dir=DIR\n"
               "  ingest_status --dir=DIR\n"
               "  shutdown\n");
  return 2;
}

std::string NumberArray(const std::vector<double>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", values[i]);
    out += buf;
  }
  return out + "]";
}

std::string IntArray(const std::vector<int64_t>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(values[i]);
  }
  return out + "]";
}

int Run(int argc, char** argv) {
  st4ml::tools::Flags flags(argc, argv);
  // The verb is the first non-flag argument.
  std::string verb;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      verb = arg;
      break;
    }
  }
  int port = static_cast<int>(flags.GetInt("port", 0));
  if (verb.empty() || port <= 0) return Usage();

  st4ml::JsonObject request;
  request.Add("verb", verb);
  if (verb == "ping") {
    int64_t sleep_ms = flags.GetInt("sleep-ms", 0);
    if (sleep_ms > 0) request.Add("sleep_ms", sleep_ms);
  } else if (verb == "select" || verb == "lookup_id" || verb == "extract") {
    std::string dir = flags.GetString("dir", "");
    if (dir.empty()) return Usage();
    request.Add("dir", dir);
    // The box is mandatory for select/extract; lookup_id may omit it (the
    // server then spans everything and the id predicate selects alone).
    std::vector<double> mbr;
    std::vector<double> time;
    bool has_box =
        flags.GetDoubleList("mbr", 4, &mbr) && flags.GetDoubleList("time", 2, &time);
    if (has_box) {
      request.AddRaw("mbr", NumberArray(mbr));
      request.AddRaw("time", NumberArray(time));
    } else if (verb != "lookup_id") {
      return Usage();
    }
    std::vector<int64_t> ids;
    bool has_ids = flags.GetIntList("ids", &ids);
    if (has_ids) request.AddRaw("ids", IntArray(ids));
    if (verb == "lookup_id" && !has_ids) return Usage();
    if (verb != "extract" && flags.Has("limit")) {
      request.Add("limit", flags.GetInt("limit", 100));
    }
    if (verb == "extract" && flags.Has("interval")) {
      request.Add("interval", flags.GetInt("interval", 3600));
    }
  } else if (verb == "flush" || verb == "ingest_status") {
    std::string dir = flags.GetString("dir", "");
    if (dir.empty()) return Usage();
    request.Add("dir", dir);
  } else if (verb != "stats" && verb != "shutdown") {
    return Usage();
  }
  if (!st4ml::tools::CheckIntFlags(flags, "st4ml_client")) return 2;

  auto client = st4ml::server::Client::Connect(port);
  if (!client.ok()) {
    std::fprintf(stderr, "st4ml_client: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  auto response = client->Call(request.Str());
  if (!response.ok()) {
    std::fprintf(stderr, "st4ml_client: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", response->c_str());
  // Cheap ok-check on the raw text: the server always leads with
  // {"ok":true or {"ok":false.
  return response->rfind("{\"ok\":true", 0) == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return st4ml::tools::ToolMain("st4ml_client",
                                [&] { return Run(argc, argv); });
}
