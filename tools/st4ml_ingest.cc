// st4ml_ingest: reads an event CSV (id,x,y,time,attr) from stdin, builds the
// T-STR partitioned on-disk index under --dir, and writes the metadata
// sidecar selection prunes with.
//
//   st4ml_datagen | st4ml_ingest --dir=stpq_store [--trace=trace.json]
//       [--metrics-json=metrics.json]

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "partition/str_partitioner.h"
#include "pipeline/session.h"
#include "selection/on_disk_index.h"
#include "storage/text_import.h"
#include "tool_flags.h"
#include "tool_main.h"

namespace fs = std::filesystem;

namespace {

int Run(int argc, char** argv) {
  st4ml::tools::Flags flags(argc, argv);
  std::string dir = flags.GetString("dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "usage: st4ml_ingest --dir=DIR "
                         "[--slices=4] [--tiles=4] < events.csv\n");
    return 2;
  }
  fs::create_directories(dir);

  // The importer works on files; spool stdin so piped input works too.
  std::string spool = dir + "/.ingest_input.csv";
  {
    std::ofstream out(spool, std::ios::binary);
    out << std::cin.rdbuf();
  }
  auto events = st4ml::ImportEventsCsv(spool);
  fs::remove(spool);
  if (!events.ok()) {
    std::fprintf(stderr, "st4ml_ingest: %s\n",
                 events.status().ToString().c_str());
    return 1;
  }

  st4ml::Session session(st4ml::tools::ToolOptionsFromFlags(flags));
  if (!st4ml::tools::CheckSessionConfig(session, "st4ml_ingest")) return 2;
  auto data = st4ml::Dataset<st4ml::EventRecord>::Parallelize(
      session.context(), *events, 4);
  st4ml::TSTRPartitioner partitioner(
      static_cast<int>(flags.GetInt("slices", 4)),
      static_cast<int>(flags.GetInt("tiles", 4)));
  st4ml::Job job = session.StartJob("st4ml_ingest");
  job.pipeline().Run(
      "ingest",
      [&](const st4ml::Dataset<st4ml::EventRecord>& records) {
        return st4ml::BuildOnDiskIndex(records, &partitioner, dir,
                                       dir + "/index.meta");
      },
      data);
  job.Finish();
  if (!job.ok()) {
    std::fprintf(stderr, "st4ml_ingest: %s\n",
                 job.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "st4ml_ingest: %zu events -> %d partitions under %s\n",
               events->size(), partitioner.num_partitions(), dir.c_str());
  if (!session.ExportArtifacts("st4ml_ingest")) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return st4ml::tools::ToolMain("st4ml_ingest",
                                [&] { return Run(argc, argv); });
}
