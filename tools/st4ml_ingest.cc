// st4ml_ingest: reads an event CSV (id,x,y,time,attr) from stdin and builds
// the on-disk store under --dir.
//
// Batch mode (default): spool all of stdin, T-STR partition, write the
// indexed partitions and the metadata sidecar selection prunes with.
//
//   st4ml_datagen | st4ml_ingest --dir=stpq_store [--trace=trace.json]
//       [--metrics-json=metrics.json]
//
// Follow mode (--follow): treat stdin as a LIVE stream — each line is
// appended to the directory's write-ahead log as it arrives (crash-safe: an
// acked line survives a SIGKILL and is replayed on reopen) while the
// background compactor rolls sealed segments into indexed partitions. At
// EOF the staged tail is flushed into partitions. A Select issued
// mid-stream sees every acked record exactly once (DESIGN.md §13).
//
//   tail -f events.csv | st4ml_ingest --dir=stpq_store --follow
//       [--bucket-seconds=3600] [--seal-records=4096]

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "ingest/ingestor.h"
#include "partition/str_partitioner.h"
#include "pipeline/session.h"
#include "selection/on_disk_index.h"
#include "storage/csv.h"
#include "storage/text_import.h"
#include "tool_flags.h"
#include "tool_main.h"

namespace fs = std::filesystem;

namespace {

int RunFollow(const std::string& dir, st4ml::Session& session,
              const st4ml::tools::Flags& flags) {
  st4ml::IngestorOptions options;
  options.bucket_seconds = flags.GetInt("bucket-seconds", 3600);
  options.seal_records =
      static_cast<uint64_t>(flags.GetInt("seal-records", 4096));
  options.compact_interval_ms = flags.GetInt("compact-interval-ms", 200);
  if (!st4ml::tools::CheckIntFlags(flags, "st4ml_ingest")) return 2;
  auto ingestor =
      st4ml::Ingestor::Open(dir, options, session.context().get());
  if (!ingestor.ok()) {
    std::fprintf(stderr, "st4ml_ingest: %s\n",
                 ingestor.status().ToString().c_str());
    return 1;
  }
  if ((*ingestor)->Stats().replayed > 0) {
    std::fprintf(stderr, "st4ml_ingest: replayed %llu staged records\n",
                 static_cast<unsigned long long>((*ingestor)->Stats().replayed));
  }

  std::string line;
  uint64_t appended = 0;
  bool first = true;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    // Tolerate a leading header row, so the same datagen pipe works in
    // both modes.
    if (first && line.rfind("id,", 0) == 0) {
      first = false;
      continue;
    }
    first = false;
    auto record =
        st4ml::ParseEventCsvRow(st4ml::SplitCsvLine(line), "stdin");
    if (!record.ok()) {
      std::fprintf(stderr, "st4ml_ingest: %s\n",
                   record.status().ToString().c_str());
      return 1;
    }
    // Ok here IS the ack: the record is in the WAL and survives a crash.
    st4ml::Status acked = (*ingestor)->Append(*record);
    if (!acked.ok()) {
      std::fprintf(stderr, "st4ml_ingest: %s\n", acked.ToString().c_str());
      return 1;
    }
    ++appended;
  }

  st4ml::Status flushed = (*ingestor)->Flush();
  if (!flushed.ok()) {
    std::fprintf(stderr, "st4ml_ingest: %s\n", flushed.ToString().c_str());
    return 1;
  }
  st4ml::IngestorStats stats = (*ingestor)->Stats();
  std::fprintf(stderr,
               "st4ml_ingest: appended %llu events -> %llu compacted "
               "(generation %llu) under %s\n",
               static_cast<unsigned long long>(appended),
               static_cast<unsigned long long>(stats.compacted),
               static_cast<unsigned long long>(stats.generation), dir.c_str());
  if (!session.ExportArtifacts("st4ml_ingest")) return 1;
  return 0;
}

int Run(int argc, char** argv) {
  st4ml::tools::Flags flags(argc, argv);
  std::string dir = flags.GetString("dir", "");
  if (dir.empty()) {
    std::fprintf(stderr,
                 "usage: st4ml_ingest --dir=DIR [--slices=4] [--tiles=4] "
                 "[--follow [--bucket-seconds=3600] [--seal-records=4096]] "
                 "< events.csv\n");
    return 2;
  }
  fs::create_directories(dir);

  st4ml::Session session(st4ml::tools::ToolOptionsFromFlags(flags));
  if (!st4ml::tools::CheckSessionConfig(session, "st4ml_ingest")) return 2;

  if (flags.Has("follow")) return RunFollow(dir, session, flags);

  // The importer works on files; spool stdin so piped input works too.
  std::string spool = dir + "/.ingest_input.csv";
  {
    std::ofstream out(spool, std::ios::binary);
    out << std::cin.rdbuf();
  }
  auto events = st4ml::ImportEventsCsv(spool);
  fs::remove(spool);
  if (!events.ok()) {
    std::fprintf(stderr, "st4ml_ingest: %s\n",
                 events.status().ToString().c_str());
    return 1;
  }

  auto data = st4ml::Dataset<st4ml::EventRecord>::Parallelize(
      session.context(), *events, 4);
  st4ml::TSTRPartitioner partitioner(
      static_cast<int>(flags.GetInt("slices", 4)),
      static_cast<int>(flags.GetInt("tiles", 4)));
  if (!st4ml::tools::CheckIntFlags(flags, "st4ml_ingest")) return 2;
  st4ml::Job job = session.StartJob("st4ml_ingest");
  job.pipeline().Run(
      "ingest",
      [&](const st4ml::Dataset<st4ml::EventRecord>& records) {
        return st4ml::BuildOnDiskIndex(records, &partitioner, dir,
                                       dir + "/index.meta");
      },
      data);
  job.Finish();
  if (!job.ok()) {
    std::fprintf(stderr, "st4ml_ingest: %s\n",
                 job.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "st4ml_ingest: %zu events -> %d partitions under %s\n",
               events->size(), partitioner.num_partitions(), dir.c_str());
  if (!session.ExportArtifacts("st4ml_ingest")) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return st4ml::tools::ToolMain("st4ml_ingest",
                                [&] { return Run(argc, argv); });
}
