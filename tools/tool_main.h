#ifndef ST4ML_TOOLS_TOOL_MAIN_H_
#define ST4ML_TOOLS_TOOL_MAIN_H_

#include <cstdio>
#include <exception>
#include <functional>
#include <string>

#include "common/status.h"

namespace st4ml {
namespace tools {

/// Shared tool entrypoint: runs `body` and converts any escaping exception
/// into a one-line stderr message and exit code 1 instead of
/// std::terminate. Status-returning stages latch their failure on the
/// Pipeline (checked inside each tool); the legacy value-returning APIs
/// throw StatusError, which lands here.
inline int ToolMain(const std::string& name, const std::function<int()>& body) {
  try {
    return body();
  } catch (const StatusError& e) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(),
                 e.status().ToString().c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(), e.what());
    return 1;
  }
}

}  // namespace tools
}  // namespace st4ml

#endif  // ST4ML_TOOLS_TOOL_MAIN_H_
