#ifndef ST4ML_TOOLS_TOOL_OBSERVABILITY_H_
#define ST4ML_TOOLS_TOOL_OBSERVABILITY_H_

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "engine/execution_context.h"
#include "observability/trace_export.h"
#include "observability/tracer.h"
#include "tool_flags.h"

namespace st4ml {
namespace tools {

/// Shared `--cache-budget=BYTES` handling: configures the context's dataset
/// cache with an explicit budget (negative means unbounded). Without the
/// flag the context keeps its default, the ST4ML_CACHE_BUDGET_BYTES env
/// knob (off when unset) — so scripts can arm the cache fleet-wide while a
/// single invocation overrides it.
inline void ConfigureCacheFromFlags(const Flags& flags,
                                    const std::shared_ptr<ExecutionContext>&
                                        ctx) {
  if (!flags.Has("cache-budget")) return;
  int64_t budget = flags.GetInt("cache-budget", 0);
  DatasetCache::Options options;
  options.budget_bytes = budget < 0 ? DatasetCache::kUnbounded
                                    : static_cast<uint64_t>(budget);
  ctx->ConfigureCache(std::move(options));
}

/// Shared `--trace=FILE` / `--metrics-json=FILE` handling for the CLI tools:
/// installs a Tracer on the context when `--trace` is given, and Export()
/// writes the Chrome trace and/or metrics JSON and prints the per-stage
/// summary table on stderr. With neither flag set this is all a no-op and
/// the pipeline runs untraced.
class Observability {
 public:
  Observability(const Flags& flags,
                const std::shared_ptr<ExecutionContext>& ctx)
      : ctx_(ctx),
        trace_path_(flags.GetString("trace", "")),
        metrics_path_(flags.GetString("metrics-json", "")) {
    if (!trace_path_.empty()) {
      tracer_ = std::make_shared<Tracer>();
      ctx_->set_tracer(tracer_);
    }
  }

  bool enabled() const { return tracer_ != nullptr; }

  /// Writes the requested artifacts. Returns false (after reporting on
  /// stderr) if any write fails, so tools can exit non-zero.
  bool Export(const char* tool) {
    bool ok = true;
    if (tracer_ != nullptr) {
      Status status = WriteChromeTrace(*tracer_, trace_path_);
      if (!status.ok()) {
        std::fprintf(stderr, "%s: %s\n", tool, status.ToString().c_str());
        ok = false;
      }
      PrintStageSummary(*tracer_, ctx_->MetricsSnapshot(), stderr);
    }
    if (!metrics_path_.empty()) {
      Status status = WriteMetricsJson(ctx_->MetricsSnapshot(), metrics_path_);
      if (!status.ok()) {
        std::fprintf(stderr, "%s: %s\n", tool, status.ToString().c_str());
        ok = false;
      }
    }
    return ok;
  }

 private:
  std::shared_ptr<ExecutionContext> ctx_;
  std::string trace_path_;
  std::string metrics_path_;
  std::shared_ptr<Tracer> tracer_;
};

}  // namespace tools
}  // namespace st4ml

#endif  // ST4ML_TOOLS_TOOL_OBSERVABILITY_H_
