// st4ml_append: streams an event CSV (id,x,y,time,attr) from stdin into a
// running st4mld daemon as batched `append` verbs. The daemon stages each
// batch in the directory's write-ahead log before answering, so a batch the
// tool reports as acked survives a daemon SIGKILL and is replayed on
// restart. With --flush the staged tail is compacted into indexed
// partitions at EOF; without it the tail stays in the WAL and is still
// served by mid-stream selects.
//
//   st4ml_datagen | st4ml_append --port=7878 --dir=stpq_store
//       [--batch=512] [--flush]

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "server/client.h"
#include "storage/csv.h"
#include "storage/json.h"
#include "storage/text_import.h"
#include "tool_flags.h"
#include "tool_main.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: st4ml_append --port=PORT --dir=DIR [--batch=512] "
               "[--flush] < events.csv\n");
  return 2;
}

std::string RecordJson(const st4ml::EventRecord& record) {
  st4ml::JsonObject row;
  row.Add("id", record.id);
  row.Add("x", record.x);
  row.Add("y", record.y);
  row.Add("time", record.time);
  if (!record.attr.empty()) row.Add("attr", record.attr);
  return row.Str();
}

// One framed round trip; exits non-zero unless the daemon answered ok. The
// daemon only acks an append after the records hit the WAL, so a true
// return here IS the durability ack for the whole batch.
bool CallOk(st4ml::server::Client& client, const std::string& request,
            std::string* response_out) {
  auto response = client.Call(request);
  if (!response.ok()) {
    std::fprintf(stderr, "st4ml_append: %s\n",
                 response.status().ToString().c_str());
    return false;
  }
  if (response->rfind("{\"ok\":true", 0) != 0) {
    std::fprintf(stderr, "st4ml_append: daemon refused: %s\n",
                 response->c_str());
    return false;
  }
  if (response_out != nullptr) *response_out = *response;
  return true;
}

bool SendBatch(st4ml::server::Client& client, const std::string& dir,
               std::vector<std::string>& rows) {
  if (rows.empty()) return true;
  std::string array = "[";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) array += ",";
    array += rows[i];
  }
  array += "]";
  st4ml::JsonObject request;
  request.Add("verb", "append").Add("dir", dir);
  request.AddRaw("records", array);
  if (!CallOk(client, request.Str(), nullptr)) return false;
  rows.clear();
  return true;
}

int Run(int argc, char** argv) {
  st4ml::tools::Flags flags(argc, argv);
  int port = static_cast<int>(flags.GetInt("port", 0));
  std::string dir = flags.GetString("dir", "");
  int64_t batch = flags.GetInt("batch", 512);
  if (!st4ml::tools::CheckIntFlags(flags, "st4ml_append")) return 2;
  if (port <= 0 || dir.empty() || batch <= 0) return Usage();

  auto client = st4ml::server::Client::Connect(port);
  if (!client.ok()) {
    std::fprintf(stderr, "st4ml_append: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> rows;
  rows.reserve(static_cast<size_t>(batch));
  uint64_t appended = 0;
  std::string line;
  bool first = true;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (first && line.rfind("id,", 0) == 0) {
      first = false;
      continue;
    }
    first = false;
    auto record = st4ml::ParseEventCsvRow(st4ml::SplitCsvLine(line), "stdin");
    if (!record.ok()) {
      std::fprintf(stderr, "st4ml_append: %s\n",
                   record.status().ToString().c_str());
      return 1;
    }
    rows.push_back(RecordJson(*record));
    if (rows.size() >= static_cast<size_t>(batch)) {
      if (!SendBatch(*client, dir, rows)) return 1;
      appended += static_cast<uint64_t>(batch);
    }
  }
  uint64_t tail = rows.size();
  if (!SendBatch(*client, dir, rows)) return 1;
  appended += tail;

  if (flags.Has("flush")) {
    st4ml::JsonObject request;
    request.Add("verb", "flush").Add("dir", dir);
    std::string response;
    if (!CallOk(*client, request.Str(), &response)) return 1;
    std::fprintf(stderr, "st4ml_append: flushed: %s\n", response.c_str());
  }
  std::fprintf(stderr, "st4ml_append: appended %llu events to %s\n",
               static_cast<unsigned long long>(appended), dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return st4ml::tools::ToolMain("st4ml_append",
                                [&] { return Run(argc, argv); });
}
