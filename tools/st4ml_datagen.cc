// st4ml_datagen: emits a synthetic NYC-like event dataset as CSV on stdout,
// ready to pipe into st4ml_ingest.
//
//   st4ml_datagen --count=240000 --seed=1 > events.csv

#include <cstdio>
#include <string>

#include "datagen/generators.h"
#include "tool_flags.h"
#include "tool_main.h"

namespace {

int Run(int argc, char** argv) {
  st4ml::tools::Flags flags(argc, argv);
  st4ml::NycEventOptions options;
  options.count = flags.GetInt("count", 20000);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  if (!st4ml::tools::CheckIntFlags(flags, "st4ml_datagen")) return 2;

  std::printf("id,x,y,time,attr\n");
  for (const st4ml::EventRecord& r : st4ml::GenerateNycEvents(options)) {
    std::printf("%lld,%.6f,%.6f,%lld,%s\n", static_cast<long long>(r.id), r.x,
                r.y, static_cast<long long>(r.time), r.attr.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return st4ml::tools::ToolMain("st4ml_datagen",
                                [&] { return Run(argc, argv); });
}
