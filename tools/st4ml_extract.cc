// st4ml_extract: reads an event CSV (id,x,y,time,attr) from stdin, converts
// it into an hourly time series, and emits one JSONL feature line per bin on
// stdout — the end of the datagen | ingest | select | extract chain.
//
//   st4ml_select ... | st4ml_extract --interval=3600
//       [--cache-budget=67108864] [--trace=trace.json]
//       [--metrics-json=metrics.json] > features.jsonl

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "conversion/singular_to_collective.h"
#include "conversion/parse.h"
#include "extraction/collective_extractors.h"
#include "pipeline/session.h"
#include "storage/json.h"
#include "storage/text_import.h"
#include "tool_flags.h"
#include "tool_main.h"

namespace fs = std::filesystem;

namespace {

int Run(int argc, char** argv) {
  st4ml::tools::Flags flags(argc, argv);
  int64_t interval_s = flags.GetInt("interval", 3600);
  st4ml::ToolOptions options = st4ml::tools::ToolOptionsFromFlags(flags);
  if (!st4ml::tools::CheckIntFlags(flags, "st4ml_extract")) return 2;

  std::string spool =
      (fs::temp_directory_path() / "st4ml_extract_input.csv").string();
  {
    std::ofstream out(spool, std::ios::binary);
    out << std::cin.rdbuf();
  }
  auto records = st4ml::ImportEventsCsv(spool);
  fs::remove(spool);
  if (!records.ok()) {
    std::fprintf(stderr, "st4ml_extract: %s\n",
                 records.status().ToString().c_str());
    return 1;
  }
  if (records->empty()) {
    std::fprintf(stderr, "st4ml_extract: no input events\n");
    return 1;
  }

  st4ml::Session session(options);
  if (!st4ml::tools::CheckSessionConfig(session, "st4ml_extract")) return 2;
  auto data = st4ml::Dataset<st4ml::EventRecord>::Parallelize(
      session.context(), *records, 4);

  int64_t t_min = records->front().time;
  int64_t t_max = t_min;
  for (const st4ml::EventRecord& r : *records) {
    t_min = std::min(t_min, r.time);
    t_max = std::max(t_max, r.time);
  }
  auto structure = std::make_shared<st4ml::TemporalStructure>(
      st4ml::TemporalStructure::RegularByInterval(
          st4ml::Duration(t_min, t_max), interval_s));

  st4ml::Job job = session.StartJob("st4ml_extract");
  st4ml::Pipeline& pipeline = job.pipeline();
  auto events = pipeline.Run(
      "parse", [](const st4ml::Dataset<st4ml::EventRecord>& raw) {
        return st4ml::ParseEvents(raw);
      },
      data);
  st4ml::TimeSeriesConverter<st4ml::STEvent> converter(structure);
  auto series = pipeline.Run(
      "conversion",
      [&](const st4ml::Dataset<st4ml::STEvent>& parsed) {
        return converter.Convert(parsed);
      },
      events);
  st4ml::TimeSeries<int64_t> flow = pipeline.Run(
      "extraction",
      [&](const decltype(series)& converted) {
        return st4ml::ExtractTsFlow(converted);
      },
      series);
  job.Finish();
  if (!job.ok()) {
    std::fprintf(stderr, "st4ml_extract: %s\n",
                 job.status().ToString().c_str());
    return 1;
  }

  for (size_t i = 0; i < flow.size(); ++i) {
    st4ml::JsonObject line;
    line.Add("bin", static_cast<int64_t>(i))
        .Add("start", flow.bin(i).start())
        .Add("end", flow.bin(i).end())
        .Add("count", flow.value(i));
    std::printf("%s\n", line.Str().c_str());
  }
  std::fprintf(stderr, "st4ml_extract: %zu bins over %zu events\n",
               flow.size(), records->size());
  if (!session.ExportArtifacts("st4ml_extract")) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return st4ml::tools::ToolMain("st4ml_extract",
                                [&] { return Run(argc, argv); });
}
