file(REMOVE_RECURSE
  "CMakeFiles/example_partition_balance.dir/partition_balance.cc.o"
  "CMakeFiles/example_partition_balance.dir/partition_balance.cc.o.d"
  "example_partition_balance"
  "example_partition_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_partition_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
