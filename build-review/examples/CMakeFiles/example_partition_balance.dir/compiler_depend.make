# Empty compiler generated dependencies file for example_partition_balance.
# This may be replaced when dependencies are built.
