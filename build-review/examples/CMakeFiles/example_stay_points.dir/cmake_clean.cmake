file(REMOVE_RECURSE
  "CMakeFiles/example_stay_points.dir/stay_points.cc.o"
  "CMakeFiles/example_stay_points.dir/stay_points.cc.o.d"
  "example_stay_points"
  "example_stay_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_stay_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
