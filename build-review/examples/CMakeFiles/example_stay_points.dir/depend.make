# Empty dependencies file for example_stay_points.
# This may be replaced when dependencies are built.
