file(REMOVE_RECURSE
  "CMakeFiles/example_grid_speed.dir/grid_speed.cc.o"
  "CMakeFiles/example_grid_speed.dir/grid_speed.cc.o.d"
  "example_grid_speed"
  "example_grid_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_grid_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
