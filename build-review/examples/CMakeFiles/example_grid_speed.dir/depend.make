# Empty dependencies file for example_grid_speed.
# This may be replaced when dependencies are built.
