file(REMOVE_RECURSE
  "CMakeFiles/example_hourly_flow.dir/hourly_flow.cc.o"
  "CMakeFiles/example_hourly_flow.dir/hourly_flow.cc.o.d"
  "example_hourly_flow"
  "example_hourly_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hourly_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
