# Empty dependencies file for example_hourly_flow.
# This may be replaced when dependencies are built.
