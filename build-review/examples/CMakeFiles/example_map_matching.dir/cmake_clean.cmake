file(REMOVE_RECURSE
  "CMakeFiles/example_map_matching.dir/map_matching.cc.o"
  "CMakeFiles/example_map_matching.dir/map_matching.cc.o.d"
  "example_map_matching"
  "example_map_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_map_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
