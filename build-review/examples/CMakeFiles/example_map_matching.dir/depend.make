# Empty dependencies file for example_map_matching.
# This may be replaced when dependencies are built.
