file(REMOVE_RECURSE
  "CMakeFiles/duration_test.dir/temporal/duration_test.cc.o"
  "CMakeFiles/duration_test.dir/temporal/duration_test.cc.o.d"
  "duration_test"
  "duration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
