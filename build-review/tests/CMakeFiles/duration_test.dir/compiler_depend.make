# Empty compiler generated dependencies file for duration_test.
# This may be replaced when dependencies are built.
