file(REMOVE_RECURSE
  "CMakeFiles/structures_test.dir/instances/structures_test.cc.o"
  "CMakeFiles/structures_test.dir/instances/structures_test.cc.o.d"
  "structures_test"
  "structures_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
