file(REMOVE_RECURSE
  "CMakeFiles/retry_test.dir/common/retry_test.cc.o"
  "CMakeFiles/retry_test.dir/common/retry_test.cc.o.d"
  "retry_test"
  "retry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
