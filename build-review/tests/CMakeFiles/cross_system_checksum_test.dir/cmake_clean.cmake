file(REMOVE_RECURSE
  "CMakeFiles/cross_system_checksum_test.dir/integration/cross_system_checksum_test.cc.o"
  "CMakeFiles/cross_system_checksum_test.dir/integration/cross_system_checksum_test.cc.o.d"
  "cross_system_checksum_test"
  "cross_system_checksum_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_system_checksum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
