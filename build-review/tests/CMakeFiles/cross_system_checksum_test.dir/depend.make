# Empty dependencies file for cross_system_checksum_test.
# This may be replaced when dependencies are built.
