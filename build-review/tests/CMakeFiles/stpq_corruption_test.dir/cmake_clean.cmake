file(REMOVE_RECURSE
  "CMakeFiles/stpq_corruption_test.dir/storage/stpq_corruption_test.cc.o"
  "CMakeFiles/stpq_corruption_test.dir/storage/stpq_corruption_test.cc.o.d"
  "stpq_corruption_test"
  "stpq_corruption_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpq_corruption_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
