# Empty dependencies file for stpq_corruption_test.
# This may be replaced when dependencies are built.
