file(REMOVE_RECURSE
  "CMakeFiles/selector_test.dir/selection/selector_test.cc.o"
  "CMakeFiles/selector_test.dir/selection/selector_test.cc.o.d"
  "selector_test"
  "selector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
