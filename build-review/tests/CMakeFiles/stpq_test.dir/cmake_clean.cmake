file(REMOVE_RECURSE
  "CMakeFiles/stpq_test.dir/storage/stpq_test.cc.o"
  "CMakeFiles/stpq_test.dir/storage/stpq_test.cc.o.d"
  "stpq_test"
  "stpq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
