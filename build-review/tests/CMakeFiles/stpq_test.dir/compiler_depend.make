# Empty compiler generated dependencies file for stpq_test.
# This may be replaced when dependencies are built.
