file(REMOVE_RECURSE
  "CMakeFiles/map_matching_test.dir/mapmatching/map_matching_test.cc.o"
  "CMakeFiles/map_matching_test.dir/mapmatching/map_matching_test.cc.o.d"
  "map_matching_test"
  "map_matching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
