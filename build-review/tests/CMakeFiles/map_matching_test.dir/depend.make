# Empty dependencies file for map_matching_test.
# This may be replaced when dependencies are built.
