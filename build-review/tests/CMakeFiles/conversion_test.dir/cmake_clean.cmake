file(REMOVE_RECURSE
  "CMakeFiles/conversion_test.dir/conversion/conversion_test.cc.o"
  "CMakeFiles/conversion_test.dir/conversion/conversion_test.cc.o.d"
  "conversion_test"
  "conversion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conversion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
