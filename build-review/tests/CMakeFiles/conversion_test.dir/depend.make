# Empty dependencies file for conversion_test.
# This may be replaced when dependencies are built.
