# Empty compiler generated dependencies file for shuffle_invariance_test.
# This may be replaced when dependencies are built.
