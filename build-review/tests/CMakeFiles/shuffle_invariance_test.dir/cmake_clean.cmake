file(REMOVE_RECURSE
  "CMakeFiles/shuffle_invariance_test.dir/engine/shuffle_invariance_test.cc.o"
  "CMakeFiles/shuffle_invariance_test.dir/engine/shuffle_invariance_test.cc.o.d"
  "shuffle_invariance_test"
  "shuffle_invariance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shuffle_invariance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
