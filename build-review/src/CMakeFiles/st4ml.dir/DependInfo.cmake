
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/geo_object.cc" "src/CMakeFiles/st4ml.dir/baselines/geo_object.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/baselines/geo_object.cc.o.d"
  "/root/repo/src/baselines/geomesa_like.cc" "src/CMakeFiles/st4ml.dir/baselines/geomesa_like.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/baselines/geomesa_like.cc.o.d"
  "/root/repo/src/baselines/geospark_like.cc" "src/CMakeFiles/st4ml.dir/baselines/geospark_like.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/baselines/geospark_like.cc.o.d"
  "/root/repo/src/common/env.cc" "src/CMakeFiles/st4ml.dir/common/env.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/common/env.cc.o.d"
  "/root/repo/src/common/fault_injector.cc" "src/CMakeFiles/st4ml.dir/common/fault_injector.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/common/fault_injector.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/st4ml.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/common/logging.cc.o.d"
  "/root/repo/src/datagen/generators.cc" "src/CMakeFiles/st4ml.dir/datagen/generators.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/datagen/generators.cc.o.d"
  "/root/repo/src/engine/execution_context.cc" "src/CMakeFiles/st4ml.dir/engine/execution_context.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/engine/execution_context.cc.o.d"
  "/root/repo/src/geometry/geometry.cc" "src/CMakeFiles/st4ml.dir/geometry/geometry.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/geometry/geometry.cc.o.d"
  "/root/repo/src/instances/structures.cc" "src/CMakeFiles/st4ml.dir/instances/structures.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/instances/structures.cc.o.d"
  "/root/repo/src/mapmatching/hmm_map_matcher.cc" "src/CMakeFiles/st4ml.dir/mapmatching/hmm_map_matcher.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/mapmatching/hmm_map_matcher.cc.o.d"
  "/root/repo/src/observability/trace_export.cc" "src/CMakeFiles/st4ml.dir/observability/trace_export.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/observability/trace_export.cc.o.d"
  "/root/repo/src/partition/balance.cc" "src/CMakeFiles/st4ml.dir/partition/balance.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/partition/balance.cc.o.d"
  "/root/repo/src/partition/baseline_partitioners.cc" "src/CMakeFiles/st4ml.dir/partition/baseline_partitioners.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/partition/baseline_partitioners.cc.o.d"
  "/root/repo/src/partition/quadtree_partitioner.cc" "src/CMakeFiles/st4ml.dir/partition/quadtree_partitioner.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/partition/quadtree_partitioner.cc.o.d"
  "/root/repo/src/partition/str_partitioner.cc" "src/CMakeFiles/st4ml.dir/partition/str_partitioner.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/partition/str_partitioner.cc.o.d"
  "/root/repo/src/storage/csv.cc" "src/CMakeFiles/st4ml.dir/storage/csv.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/storage/csv.cc.o.d"
  "/root/repo/src/storage/json.cc" "src/CMakeFiles/st4ml.dir/storage/json.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/storage/json.cc.o.d"
  "/root/repo/src/storage/stpq.cc" "src/CMakeFiles/st4ml.dir/storage/stpq.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/storage/stpq.cc.o.d"
  "/root/repo/src/storage/text_import.cc" "src/CMakeFiles/st4ml.dir/storage/text_import.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/storage/text_import.cc.o.d"
  "/root/repo/src/temporal/duration.cc" "src/CMakeFiles/st4ml.dir/temporal/duration.cc.o" "gcc" "src/CMakeFiles/st4ml.dir/temporal/duration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
