# Empty compiler generated dependencies file for st4ml.
# This may be replaced when dependencies are built.
