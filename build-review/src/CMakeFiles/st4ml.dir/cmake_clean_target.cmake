file(REMOVE_RECURSE
  "libst4ml.a"
)
