# Empty compiler generated dependencies file for bench_case_flow.
# This may be replaced when dependencies are built.
