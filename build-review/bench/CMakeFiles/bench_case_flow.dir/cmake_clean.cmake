file(REMOVE_RECURSE
  "CMakeFiles/bench_case_flow.dir/bench_case_flow.cc.o"
  "CMakeFiles/bench_case_flow.dir/bench_case_flow.cc.o.d"
  "bench_case_flow"
  "bench_case_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
