# Empty compiler generated dependencies file for bench_tstr.
# This may be replaced when dependencies are built.
