file(REMOVE_RECURSE
  "CMakeFiles/bench_tstr.dir/bench_tstr.cc.o"
  "CMakeFiles/bench_tstr.dir/bench_tstr.cc.o.d"
  "bench_tstr"
  "bench_tstr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tstr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
