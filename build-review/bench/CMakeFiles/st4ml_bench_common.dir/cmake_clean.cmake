file(REMOVE_RECURSE
  "CMakeFiles/st4ml_bench_common.dir/apps/geomesa_apps.cc.o"
  "CMakeFiles/st4ml_bench_common.dir/apps/geomesa_apps.cc.o.d"
  "CMakeFiles/st4ml_bench_common.dir/apps/geospark_apps.cc.o"
  "CMakeFiles/st4ml_bench_common.dir/apps/geospark_apps.cc.o.d"
  "CMakeFiles/st4ml_bench_common.dir/apps/st4ml_apps.cc.o"
  "CMakeFiles/st4ml_bench_common.dir/apps/st4ml_apps.cc.o.d"
  "CMakeFiles/st4ml_bench_common.dir/apps/st4ml_custom_apps.cc.o"
  "CMakeFiles/st4ml_bench_common.dir/apps/st4ml_custom_apps.cc.o.d"
  "CMakeFiles/st4ml_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/st4ml_bench_common.dir/bench_common.cc.o.d"
  "libst4ml_bench_common.a"
  "libst4ml_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st4ml_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
