file(REMOVE_RECURSE
  "libst4ml_bench_common.a"
)
