# Empty compiler generated dependencies file for st4ml_bench_common.
# This may be replaced when dependencies are built.
