# Empty dependencies file for bench_case_speed.
# This may be replaced when dependencies are built.
