file(REMOVE_RECURSE
  "CMakeFiles/bench_case_speed.dir/bench_case_speed.cc.o"
  "CMakeFiles/bench_case_speed.dir/bench_case_speed.cc.o.d"
  "bench_case_speed"
  "bench_case_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
