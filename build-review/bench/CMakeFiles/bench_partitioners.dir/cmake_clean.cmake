file(REMOVE_RECURSE
  "CMakeFiles/bench_partitioners.dir/bench_partitioners.cc.o"
  "CMakeFiles/bench_partitioners.dir/bench_partitioners.cc.o.d"
  "bench_partitioners"
  "bench_partitioners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
