file(REMOVE_RECURSE
  "CMakeFiles/bench_shuffle.dir/bench_shuffle.cc.o"
  "CMakeFiles/bench_shuffle.dir/bench_shuffle.cc.o.d"
  "bench_shuffle"
  "bench_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
