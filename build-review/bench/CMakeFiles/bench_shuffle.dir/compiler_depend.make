# Empty compiler generated dependencies file for bench_shuffle.
# This may be replaced when dependencies are built.
