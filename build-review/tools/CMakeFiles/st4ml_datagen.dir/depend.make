# Empty dependencies file for st4ml_datagen.
# This may be replaced when dependencies are built.
