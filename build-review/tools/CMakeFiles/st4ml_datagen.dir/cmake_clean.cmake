file(REMOVE_RECURSE
  "CMakeFiles/st4ml_datagen.dir/st4ml_datagen.cc.o"
  "CMakeFiles/st4ml_datagen.dir/st4ml_datagen.cc.o.d"
  "st4ml_datagen"
  "st4ml_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st4ml_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
