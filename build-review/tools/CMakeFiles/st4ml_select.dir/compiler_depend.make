# Empty compiler generated dependencies file for st4ml_select.
# This may be replaced when dependencies are built.
