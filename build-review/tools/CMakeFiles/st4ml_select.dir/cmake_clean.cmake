file(REMOVE_RECURSE
  "CMakeFiles/st4ml_select.dir/st4ml_select.cc.o"
  "CMakeFiles/st4ml_select.dir/st4ml_select.cc.o.d"
  "st4ml_select"
  "st4ml_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st4ml_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
