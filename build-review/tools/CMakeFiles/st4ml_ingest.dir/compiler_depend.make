# Empty compiler generated dependencies file for st4ml_ingest.
# This may be replaced when dependencies are built.
