file(REMOVE_RECURSE
  "CMakeFiles/st4ml_ingest.dir/st4ml_ingest.cc.o"
  "CMakeFiles/st4ml_ingest.dir/st4ml_ingest.cc.o.d"
  "st4ml_ingest"
  "st4ml_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st4ml_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
