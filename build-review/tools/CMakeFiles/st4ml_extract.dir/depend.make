# Empty dependencies file for st4ml_extract.
# This may be replaced when dependencies are built.
