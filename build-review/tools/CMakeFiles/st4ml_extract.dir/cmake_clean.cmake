file(REMOVE_RECURSE
  "CMakeFiles/st4ml_extract.dir/st4ml_extract.cc.o"
  "CMakeFiles/st4ml_extract.dir/st4ml_extract.cc.o.d"
  "st4ml_extract"
  "st4ml_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/st4ml_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
