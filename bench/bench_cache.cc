// Dataset-cache benchmark: stages one on-disk STPQ index, then runs the
// same metadata-pruned Selection twice per budget level — budget 0 (the
// seed behavior: every pass reads files), a thrash-sized budget (every
// insert evicts, spill files under the scratch dir), and unbounded (the
// warm pass is pure memory). Emits one JSON object per budget so perf PRs
// leave a machine-readable trajectory (bench/run_bench.sh writes it to
// BENCH_cache.json), and exits non-zero if any pass's selected output
// diverges from the budget-0 reference — the bench doubles as a
// correctness gate, like bench_shuffle.
//
// Usage: bench_cache [--records N] [--reps R]

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "st4ml.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

std::vector<EventRecord> MakeEvents(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<EventRecord> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    EventRecord r;
    r.id = static_cast<int64_t>(i);
    r.x = rng.Uniform(0, 100);
    r.y = rng.Uniform(0, 100);
    r.time = rng.UniformInt(0, 100000);
    r.attr = std::string(static_cast<size_t>(rng.UniformInt(4, 24)), 'x');
    events.push_back(std::move(r));
  }
  return events;
}

uint64_t Fnv1a(uint64_t hash, const void* data, size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t Checksum(const std::vector<EventRecord>& records) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const EventRecord& r : records) {
    hash = Fnv1a(hash, &r.id, sizeof(r.id));
    hash = Fnv1a(hash, &r.x, sizeof(r.x));
    hash = Fnv1a(hash, &r.y, sizeof(r.y));
    hash = Fnv1a(hash, &r.time, sizeof(r.time));
    hash = Fnv1a(hash, r.attr.data(), r.attr.size());
  }
  return hash;
}

struct PassResult {
  double first_seconds = 0;
  double second_seconds = 0;
  uint64_t checksum = 0;
  MetricsSnapshot metrics;
};

PassResult RunBudget(const std::string& dir, const std::string& meta,
                     const STBox& query, uint64_t budget, int reps) {
  PassResult best;
  for (int rep = 0; rep < reps; ++rep) {
    auto ctx = ExecutionContext::Create();
    DatasetCache::Options options;
    options.budget_bytes = budget;
    ctx->ConfigureCache(std::move(options));

    Selector<EventRecord> cold_selector(ctx, SelectQuery::FromBox(query));
    Stopwatch cold_watch;
    auto first = cold_selector.Select(dir, meta);
    double first_seconds = cold_watch.ElapsedSeconds();
    if (!first.ok()) {
      std::cerr << "bench_cache: " << first.status().ToString() << "\n";
      std::exit(1);
    }

    Selector<EventRecord> warm_selector(ctx, SelectQuery::FromBox(query));
    Stopwatch warm_watch;
    auto second = warm_selector.Select(dir, meta);
    double second_seconds = warm_watch.ElapsedSeconds();
    if (!second.ok()) {
      std::cerr << "bench_cache: " << second.status().ToString() << "\n";
      std::exit(1);
    }

    uint64_t first_sum = Checksum(std::move(*first).Collect());
    uint64_t second_sum = Checksum(std::move(*second).Collect());
    if (first_sum != second_sum) {
      std::cerr << "bench_cache: warm pass changed the output (budget "
                << budget << ")\n";
      std::exit(1);
    }
    if (rep == 0 || first_seconds < best.first_seconds) {
      best.first_seconds = first_seconds;
    }
    if (rep == 0 || second_seconds < best.second_seconds) {
      best.second_seconds = second_seconds;
    }
    best.checksum = first_sum;
    best.metrics = ctx->MetricsSnapshot();
  }
  return best;
}

void EmitRow(const char* label, uint64_t budget, size_t records,
             const PassResult& r, bool output_identical) {
  double speedup =
      r.second_seconds > 0 ? r.first_seconds / r.second_seconds : 0;
  std::cout << "{\"budget\":\"" << label << "\""
            << ",\"budget_bytes\":" << budget << ",\"records\":" << records
            << ",\"first_pass_seconds\":" << r.first_seconds
            << ",\"second_pass_seconds\":" << r.second_seconds
            << ",\"second_pass_speedup\":" << speedup
            << ",\"stpq_bytes_read\":" << r.metrics[Counter::kStpqBytesRead]
            << ",\"cache_hits\":" << r.metrics[Counter::kCacheHits]
            << ",\"cache_misses\":" << r.metrics[Counter::kCacheMisses]
            << ",\"cache_evictions\":" << r.metrics[Counter::kCacheEvictions]
            << ",\"cache_spill_bytes\":"
            << r.metrics[Counter::kCacheSpillBytes]
            << ",\"cache_reload_bytes\":"
            << r.metrics[Counter::kCacheReloadBytes]
            << ",\"output_identical\":"
            << (output_identical ? "true" : "false") << "}" << std::endl;
  if (!output_identical) {
    std::cerr << "MISMATCH: budget " << label
              << " diverged from the uncached reference\n";
    std::exit(1);
  }
}

int Run(int argc, char** argv) {
  size_t records = 200000;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--records=", 0) == 0) {
      records = std::stoul(flag.substr(10));
    } else if (flag.rfind("--reps=", 0) == 0) {
      reps = std::atoi(flag.substr(7).c_str());
    } else {
      std::cerr << "usage: bench_cache [--records=N] [--reps=R]\n";
      return 2;
    }
  }

  // Stage the index once; every budget level reads the same files.
  std::string dir = (fs::temp_directory_path() /
                     ("st4ml_bench_cache_" + std::to_string(::getpid())))
                        .string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::string meta = dir + "/index.meta";
  {
    auto ctx = ExecutionContext::Create();
    auto data =
        Dataset<EventRecord>::Parallelize(ctx, MakeEvents(records, 42), 16);
    TSTRPartitioner partitioner(3, 3);
    Status staged = BuildOnDiskIndex(data, &partitioner, dir, meta);
    if (!staged.ok()) {
      std::cerr << "bench_cache: " << staged.ToString() << "\n";
      return 1;
    }
  }
  uint64_t staged_bytes = 0;
  for (const std::string& path : ListStpqFiles(dir)) {
    staged_bytes += FileSizeBytes(path);
  }

  // ~60% selectivity: enough survivors that the filter does real work,
  // enough rejects that the copy-only-matches warm path matters.
  STBox query(Mbr(0, 0, 100, 60), Duration(0, 100000));

  struct Level {
    const char* label;
    uint64_t budget;
  };
  const Level levels[] = {
      {"zero", 0},
      {"tiny", std::max<uint64_t>(1, staged_bytes / 8)},
      {"unbounded", DatasetCache::kUnbounded},
  };
  uint64_t reference = 0;
  for (const Level& level : levels) {
    PassResult result = RunBudget(dir, meta, query, level.budget, reps);
    if (level.budget == 0) reference = result.checksum;
    EmitRow(level.label, level.budget, records, result,
            result.checksum == reference);
  }
  fs::remove_all(dir);
  return 0;
}

}  // namespace
}  // namespace st4ml

int main(int argc, char** argv) { return st4ml::Run(argc, argv); }
