// Scale-out microbenchmark for the executor backends (DESIGN.md §14): the
// same 1M-record ReduceByKey shuffle (~200k distinct keys) runs under the
// local thread-pool executor and the multiprocess executor at 1, 2 and 4
// forked workers. Every configuration's collected output is FNV-checksummed
// against the local run — any divergence exits non-zero, so a published
// BENCH file always reflects byte-identical cross-backend results. Emits
// one JSON object per line (bench/run_bench.sh writes BENCH_scaleout.json)
// with per-executor throughput, speedup vs mp:1, and the mp fleet counters
// (workers spawned, bytes over the shuffle sockets).
//
// The acceptance gate — mp:4 >= 1.6x mp:1 — is enforced only at full scale
// on a machine with >= 4 hardware threads: on fewer cores the forked
// workers time-slice one another and the gate would measure the scheduler,
// not the executor (same idiom as bench_simd's records>=1M gate).
//
// Usage: bench_scaleout [--records=N] [--parts=N] [--reps=R]
// Record count scales with ST4ML_SCALE (default 1.0).

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "st4ml.h"

namespace st4ml {
namespace {

using KV = std::pair<int64_t, int64_t>;

std::vector<KV> MakePairs(size_t records, uint64_t seed) {
  Rng rng(seed);
  std::vector<KV> pairs;
  pairs.reserve(records);
  // ~5 values per key: the map-side combine shrinks the shuffle without
  // collapsing it, so real record volume crosses the worker sockets.
  int64_t key_space = static_cast<int64_t>(records / 5) + 1;
  for (size_t i = 0; i < records; ++i) {
    pairs.emplace_back(rng.UniformInt(0, key_space), rng.UniformInt(-5, 5));
  }
  return pairs;
}

uint64_t Fnv1a(uint64_t hash, const void* data, size_t n) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t Checksum(const std::vector<KV>& pairs) {
  uint64_t hash = 14695981039346656037ull;
  for (const auto& [k, v] : pairs) {
    hash = Fnv1a(hash, &k, sizeof(k));
    hash = Fnv1a(hash, &v, sizeof(v));
  }
  return hash;
}

struct Run {
  std::string executor;
  double seconds = 0;
  uint64_t checksum = 0;
  uint64_t workers_spawned = 0;
  uint64_t workers_lost = 0;
  uint64_t shuffle_net_bytes = 0;
};

/// Times the ReduceByKey `reps` times under `spec` (best run wins), then
/// collects and checksums the final output outside the timed region.
Run MeasureExecutor(const std::string& executor, const std::vector<KV>& pairs,
                    size_t parts, int reps) {
  auto spec = ExecutorSpec::Parse(executor);
  ST4ML_CHECK(spec.ok()) << spec.status().ToString();
  auto ctx = ExecutionContext::Create(*spec);
  auto data = Dataset<KV>::Parallelize(ctx, pairs, parts);

  Run run;
  run.executor = executor;
  Dataset<KV> reduced_out;
  for (int r = 0; r < reps; ++r) {
    ctx->ResetMetrics();
    Stopwatch watch;
    auto reduced = TryReduceByKey<int64_t, int64_t>(data, std::plus<int64_t>());
    double secs = watch.ElapsedSeconds();
    ST4ML_CHECK(reduced.ok()) << executor << ": "
                              << reduced.status().ToString();
    if (r == 0 || secs < run.seconds) run.seconds = secs;
    MetricsSnapshot metrics = ctx->MetricsSnapshot();
    run.workers_spawned = metrics[Counter::kWorkersSpawned];
    run.workers_lost = metrics[Counter::kWorkersLost];
    run.shuffle_net_bytes = metrics[Counter::kShuffleNetBytes];
    reduced_out = std::move(*reduced);
  }
  run.checksum = Checksum(std::move(reduced_out).Collect());
  return run;
}

void EmitRow(const Run& run, size_t records, size_t parts, double mp1_seconds,
             uint64_t reference_checksum) {
  bool identical = run.checksum == reference_checksum;
  double speedup = run.seconds > 0 ? mp1_seconds / run.seconds : 0;
  std::cout << "{\"executor\":\"" << run.executor << "\""
            << ",\"records\":" << records << ",\"partitions\":" << parts
            << ",\"seconds\":" << run.seconds << ",\"records_per_sec\":"
            << (run.seconds > 0 ? records / run.seconds : 0)
            << ",\"speedup_vs_mp1\":" << speedup
            << ",\"workers_spawned\":" << run.workers_spawned
            << ",\"workers_lost\":" << run.workers_lost
            << ",\"shuffle_net_bytes\":" << run.shuffle_net_bytes
            << ",\"checksum\":\"" << std::hex << run.checksum << std::dec
            << "\",\"checksum_identical\":" << (identical ? "true" : "false")
            << "}" << std::endl;
  if (!identical) {
    std::cerr << "MISMATCH: " << run.executor
              << " output diverged from the local executor\n";
    std::exit(1);
  }
}

}  // namespace

int Run(int argc, char** argv) {
  size_t records = static_cast<size_t>(1000000 * BenchScale());
  size_t parts = 64;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--records=", 0) == 0) {
      records = std::stoul(flag.substr(10));
    } else if (flag.rfind("--parts=", 0) == 0) {
      parts = std::stoul(flag.substr(8));
    } else if (flag.rfind("--reps=", 0) == 0) {
      reps = std::atoi(flag.substr(7).c_str());
    } else {
      std::cerr << "usage: bench_scaleout [--records=N] [--parts=N] "
                   "[--reps=R]\n";
      return 2;
    }
  }

  auto pairs = MakePairs(records, /*seed=*/records);
  std::vector<struct Run> runs;
  for (const char* executor : {"local", "mp:1", "mp:2", "mp:4"}) {
    runs.push_back(MeasureExecutor(executor, pairs, parts, reps));
  }
  uint64_t reference_checksum = runs[0].checksum;  // the local run
  double mp1_seconds = runs[1].seconds;
  for (const auto& run : runs) {
    EmitRow(run, records, parts, mp1_seconds, reference_checksum);
  }

  // Acceptance gate: with real cores behind the forked workers and a
  // full-scale shuffle, mp:4 must beat mp:1 by >= 1.6x. Below either
  // threshold the rows above still publish (and still checksum-gate) but
  // the speedup is advisory.
  double mp4_speedup =
      runs[3].seconds > 0 ? mp1_seconds / runs[3].seconds : 0;
  unsigned cores = std::thread::hardware_concurrency();
  bool gated = cores >= 4 && records >= 1000000;
  bool pass = !gated || mp4_speedup >= 1.6;
  std::cout << "{\"gate\":\"mp4_speedup_vs_mp1\",\"records\":" << records
            << ",\"hardware_threads\":" << cores
            << ",\"mp4_speedup\":" << mp4_speedup << ",\"threshold\":1.6"
            << ",\"enforced\":" << (gated ? "true" : "false")
            << ",\"pass\":" << (pass ? "true" : "false") << "}" << std::endl;
  if (!pass) {
    std::cerr << "GATE FAILED: mp:4 speedup " << mp4_speedup
              << " < 1.6 over mp:1\n";
    return 1;
  }
  return 0;
}

}  // namespace st4ml

int main(int argc, char** argv) { return st4ml::Run(argc, argv); }
