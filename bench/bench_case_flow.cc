// Table 9 + Figure 10: the second Alibaba case study — road-network traffic
// flow extraction. Sparse camera trajectories are calibrated with the
// built-in trajectory-to-trajectory (HMM map matching) conversion, connected
// over the road graph, and converted to a raster whose spatial cells are
// road segments and whose temporal slots are one hour. The per-day table
// mirrors Table 9; the per-(segment, hour) flows — Fig. 10's data — are
// written to road_flow_day<N>.csv.
//
// The paper notes this application "cannot be supported by simply extending
// GeoSpark or GeoMesa", so there is no comparative column.

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "common/env.h"
#include "conversion/parse.h"
#include "engine/pair_ops.h"
#include "mapmatching/hmm_map_matcher.h"
#include "storage/csv.h"

namespace st4ml {
namespace bench {
namespace {

struct DayResult {
  size_t amount = 0;
  double avg_points = 0.0;
  double avg_duration_min = 0.0;
  double processing_s = 0.0;
  size_t matched_points = 0;
  size_t flow_rows = 0;
};

DayResult RunDay(const BenchEnv& env, const RoadNetwork& network,
                 std::shared_ptr<const RoadNetwork> network_ptr,
                 const Duration& day, uint64_t seed, int64_t* next_id,
                 const std::string& flow_csv) {
  CameraTrajOptions gen;
  gen.seed = seed;
  gen.day = day;
  gen.count = static_cast<int64_t>(2000 * BenchScale());
  auto records = GenerateCameraTrajectories(network, gen);
  for (auto& t : records) t.id = (*next_id)++;

  DayResult result;
  result.amount = records.size();
  for (const auto& t : records) {
    result.avg_points += static_cast<double>(t.points.size());
    result.avg_duration_min +=
        static_cast<double>(t.points.back().time - t.points.front().time) / 60.0;
  }
  result.avg_points /= static_cast<double>(records.size());
  result.avg_duration_min /= static_cast<double>(records.size());

  Stopwatch timer;
  auto trajs =
      ParseTrajs(Dataset<TrajRecord>::Parallelize(env.ctx, records, 16));

  // Built-in trajectory-to-trajectory conversion: HMM map matching (§3.2.2).
  MapMatchOptions match;
  match.sigma_z_m = 25.0;
  match.candidate_radius_m = 150.0;
  auto matched = MapMatchTrajectories(trajs, network_ptr, match);

  // Flow per (road segment, hour): distinct trajectory visits.
  auto keyed = matched.FlatMap(
      [](const Trajectory<int64_t, int64_t>& t) {
        std::vector<std::pair<std::pair<int64_t, int64_t>, int64_t>> out;
        int64_t last_seg = 0, last_hour = -1;
        for (const auto& e : t.entries) {
          int64_t hour = e.time / 3600;
          if (e.value == last_seg && hour == last_hour) continue;
          last_seg = e.value;
          last_hour = hour;
          out.push_back({{std::llabs(e.value), hour}, 1});
        }
        return out;
      },
      "caseFlow/key");
  auto flow = TryReduceByKey<std::pair<int64_t, int64_t>, int64_t,
                             std::plus<int64_t>, PairHash>(
      keyed, std::plus<int64_t>());
  ST4ML_CHECK(flow.ok());
  auto rows = flow->Collect();
  result.processing_s = timer.ElapsedSeconds();
  result.flow_rows = rows.size();
  for (const auto& t : matched.Collect()) result.matched_points += t.entries.size();

  // Fig. 10: persist the flows for visualization.
  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.reserve(rows.size());
  for (const auto& [key, count] : rows) {
    csv_rows.push_back({std::to_string(key.first),
                        std::to_string(key.second % 24),
                        std::to_string(count)});
  }
  ST4ML_CHECK(WriteCsv(flow_csv, {"segment", "hour", "flow"}, csv_rows).ok());
  return result;
}

}  // namespace
}  // namespace bench
}  // namespace st4ml

int main() {
  using namespace st4ml::bench;
  using namespace st4ml;
  const BenchEnv& env = GetBenchEnv();
  std::printf("== Table 9 / Fig. 10: road-network flow extraction ==\n\n");

  RoadNetworkOptions road_gen;
  road_gen.nx = 18;
  road_gen.ny = 18;
  auto network = GenerateRoadNetwork(road_gen);
  std::printf("district road network: %zu directed segments\n\n",
              network->num_segments());

  TablePrinter table({"date", "amount", "avg points", "avg duration",
                      "processing", "matched pts", "flow rows"});
  int64_t next_id = 0;
  const char* labels[2] = {"2020-08-02 (Sun)", "2020-08-03 (Mon)"};
  for (int d = 0; d < 2; ++d) {
    int64_t start = 1596326400 + static_cast<int64_t>(d) * 86400;
    std::string csv = "road_flow_day" + std::to_string(d + 1) + ".csv";
    DayResult r = RunDay(env, *network, network, Duration(start, start + 86399),
                         500 + d, &next_id, csv);
    char pts[16], dur[24];
    std::snprintf(pts, sizeof(pts), "%.2f", r.avg_points);
    std::snprintf(dur, sizeof(dur), "%.2f min", r.avg_duration_min);
    table.AddRow({labels[d], FmtCount(r.amount), pts, dur,
                  FmtSeconds(r.processing_s), FmtCount(r.matched_points),
                  FmtCount(r.flow_rows)});
    std::printf("day %d flows written to %s\n", d + 1, csv.c_str());
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\n(avg points/duration match the Table 9 data profile: ~9 points,\n"
      "~27 min — sparse samples that force real map-matching work.)\n");
  return 0;
}
