// Figure 6: processing time of the six singular-to-collective instance
// conversions — ST4ML's optimized allocation (regular-structure index
// derivation / broadcast R-tree over cells) versus the default Spark
// solution (a Cartesian product of instances and cells), across structure
// granularities.
//
// Expected shape (paper): speedups grow with the structure's dimensionality
// (raster > spatial map > time series) and granularity, and are larger for
// point events than for trajectories; up to 23x/45x/105x on events and ~6x
// on trajectories.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "conversion/parse.h"
#include "conversion/singular_to_collective.h"
#include "partition/hash_partitioner.h"
#include "selection/selector.h"

namespace st4ml {
namespace bench {
namespace {

template <typename RecordT>
Dataset<RecordT> LoadAll(const BenchEnv& env, const ScaledDirs& dirs,
                         const Mbr& extent, const Duration& range) {
  SelectorOptions options;
  options.partitioner = std::make_shared<HashPartitioner>(16);
  Selector<RecordT> selector(env.ctx, SelectQuery::FromBox(STBox(extent, range)), options);
  auto selected = selector.Select(dirs.plain_dir);
  ST4ML_CHECK(selected.ok()) << selected.status().ToString();
  return *selected;
}

struct Timing {
  double naive;
  double optimized;
};

template <typename SingularT, typename ConverterT>
Timing TimeBoth(const Dataset<SingularT>& data, ConverterT make_converter) {
  Timing t;
  t.naive = TimeIt([&] {
    auto converter = make_converter(ConversionStrategy::kNaive);
    converter.Convert(data).Count();
  });
  t.optimized = TimeIt([&] {
    auto converter = make_converter(ConversionStrategy::kAuto);
    converter.Convert(data).Count();
  });
  return t;
}

template <typename SingularT>
void RunDataset(const char* name, const Dataset<SingularT>& data,
                const Mbr& extent, const Duration& range) {
  std::printf("\n--- %s (%zu instances) ---\n", name, data.Count());
  TablePrinter table({"conversion", "granularity", "cells", "naive",
                      "optimized", "speedup"});

  for (int bins : {64, 256, 1024}) {
    auto structure = std::make_shared<const TemporalStructure>(
        TemporalStructure::Regular(range, bins));
    Timing t = TimeBoth(data, [&](ConversionStrategy s) {
      return ToTimeSeriesConverter<SingularT>(structure, s);
    });
    table.AddRow({"-> time series", std::to_string(bins) + " bins",
                  std::to_string(bins), FmtSeconds(t.naive),
                  FmtSeconds(t.optimized), FmtRatio(t.naive / t.optimized)});
  }
  for (int grid : {16, 32, 64, 128}) {
    auto structure = std::make_shared<const SpatialStructure>(
        SpatialStructure::Grid(extent, grid, grid));
    Timing t = TimeBoth(data, [&](ConversionStrategy s) {
      return ToSpatialMapConverter<SingularT>(structure, s);
    });
    table.AddRow({"-> spatial map",
                  std::to_string(grid) + "x" + std::to_string(grid),
                  std::to_string(grid * grid), FmtSeconds(t.naive),
                  FmtSeconds(t.optimized), FmtRatio(t.naive / t.optimized)});
  }
  for (int size : {8, 16, 24}) {
    auto structure = std::make_shared<const RasterStructure>(
        RasterStructure::Regular(extent, size, size, range, size));
    Timing t = TimeBoth(data, [&](ConversionStrategy s) {
      return ToRasterConverter<SingularT>(structure, s);
    });
    table.AddRow({"-> raster",
                  std::to_string(size) + "^3",
                  std::to_string(size * size * size), FmtSeconds(t.naive),
                  FmtSeconds(t.optimized), FmtRatio(t.naive / t.optimized)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace st4ml

int main() {
  using namespace st4ml;
  using namespace st4ml::bench;
  const BenchEnv& env = GetBenchEnv();
  std::printf("== Fig. 6: instance-conversion optimization ==\n");
  std::printf("naive = Cartesian instance x cell scan; optimized = regular\n");
  std::printf("index derivation (grids) / broadcast R-tree (irregular)\n");

  auto events = ParseEvents(LoadAll<EventRecord>(env, env.nyc[1],
                                                 env.nyc_extent, env.nyc_range));
  RunDataset("NYC events -> collectives", events, env.nyc_extent,
             env.nyc_range);

  auto trajs = ParseTrajs(LoadAll<TrajRecord>(env, env.porto[1],
                                              env.porto_extent, env.porto_range));
  RunDataset("Porto trajectories -> collectives", trajs, env.porto_extent,
             env.porto_range);
  return 0;
}
