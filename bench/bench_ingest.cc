// Streaming-ingestion benchmark and durability gate (DESIGN.md §13). Two
// phases, each doubling as a correctness gate:
//
//   throughput  sustained AppendBatch into a live Ingestor (background
//               compactor on) while a reader thread runs merged
//               SelectIngest queries the whole time. Gates:
//               >= 100k records/sec sustained append, reader counts
//               monotonically non-decreasing, final count exact.
//   recovery    a forked child appends records one by one and reports
//               every ack over a pipe; the parent SIGKILLs it mid-stream,
//               reopens the directory, and requires the replayed count to
//               equal the acked count (the one in-flight record whose ack
//               beat the report is the only tolerance).
//
// Emits one JSON object per phase plus a summary row (bench/run_bench.sh
// writes BENCH_ingest.json at the repo root).
//
// Usage: bench_ingest [--records=N] [--batch=B]

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "st4ml.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

constexpr double kGateRecordsPerSec = 100000.0;

std::vector<EventRecord> MakeEvents(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<EventRecord> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    EventRecord r;
    r.id = static_cast<int64_t>(i);
    r.x = rng.Uniform(0, 100);
    r.y = rng.Uniform(0, 100);
    // Mostly time-ordered with jitter, like a real feed.
    r.time = static_cast<int64_t>(i / 4) + rng.UniformInt(0, 600);
    r.attr = std::string(static_cast<size_t>(rng.UniformInt(4, 24)), 'x');
    events.push_back(std::move(r));
  }
  return events;
}

uint64_t CountAll(Ingestor* ingestor, const std::string& dir) {
  auto ctx = ExecutionContext::Create(2);
  Selector<EventRecord> selector(
      ctx, SelectQuery::FromBox(
               STBox(Mbr(-1e9, -1e9, 1e9, 1e9), Duration(-1, int64_t{1} << 40))));
  // Same discipline as the daemon: the whole merged Select under a shared
  // snapshot lock, so compaction can't swap the manifest mid-read.
  std::shared_lock<std::shared_mutex> snapshot(ingestor->snapshot_mu());
  auto selected = selector.SelectIngest(dir);
  if (!selected.ok()) {
    std::cerr << "bench_ingest: concurrent select failed: "
              << selected.status().ToString() << "\n";
    std::exit(1);
  }
  return selected->Collect().size();
}

struct ThroughputResult {
  double seconds = 0;
  double records_per_sec = 0;
  uint64_t selects_run = 0;
  uint64_t final_count = 0;
  uint64_t compactions = 0;
};

ThroughputResult RunThroughput(size_t records, size_t batch) {
  std::string dir = (fs::temp_directory_path() /
                     ("st4ml_bench_ingest_" + std::to_string(::getpid())))
                        .string();
  fs::remove_all(dir);
  IngestorOptions options;
  options.bucket_seconds = 3600;
  options.seal_records = 16384;
  options.compact_interval_ms = 100;
  auto ingestor = Ingestor::Open(dir, options);
  if (!ingestor.ok()) {
    std::cerr << "bench_ingest: " << ingestor.status().ToString() << "\n";
    std::exit(1);
  }

  std::vector<EventRecord> events = MakeEvents(records, 42);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> selects_run{0};
  uint64_t last_seen = 0;
  bool monotonic = true;
  std::thread reader([&] {
    // A warm query concurrent with the whole append run: every count must
    // be >= the previous one (acked records never disappear).
    while (!done.load(std::memory_order_relaxed)) {
      uint64_t count = CountAll(ingestor->get(), dir);
      if (count < last_seen) monotonic = false;
      last_seen = count;
      selects_run.fetch_add(1, std::memory_order_relaxed);
    }
  });

  Stopwatch watch;
  for (size_t at = 0; at < events.size(); at += batch) {
    size_t end = std::min(events.size(), at + batch);
    std::vector<EventRecord> chunk(events.begin() + at, events.begin() + end);
    Status acked = (*ingestor)->AppendBatch(chunk);
    if (!acked.ok()) {
      std::cerr << "bench_ingest: " << acked.ToString() << "\n";
      std::exit(1);
    }
  }
  double seconds = watch.ElapsedSeconds();
  done.store(true);
  reader.join();

  if (!monotonic) {
    std::cerr << "bench_ingest: concurrent select count went BACKWARDS — "
                 "acked records disappeared mid-stream\n";
    std::exit(1);
  }
  uint64_t final_count = CountAll(ingestor->get(), dir);
  if (final_count != records) {
    std::cerr << "bench_ingest: merged select saw " << final_count << " of "
              << records << " acked records\n";
    std::exit(1);
  }
  Status flushed = (*ingestor)->Flush();
  if (!flushed.ok()) {
    std::cerr << "bench_ingest: " << flushed.ToString() << "\n";
    std::exit(1);
  }
  if (CountAll(ingestor->get(), dir) != records) {
    std::cerr << "bench_ingest: post-flush count diverged\n";
    std::exit(1);
  }

  ThroughputResult result;
  result.seconds = seconds;
  result.records_per_sec = static_cast<double>(records) / seconds;
  result.selects_run = selects_run.load();
  result.final_count = final_count;
  result.compactions = (*ingestor)->Stats().compactions;
  ingestor->reset();
  fs::remove_all(dir);
  return result;
}

struct RecoveryResult {
  uint64_t reported_acks = 0;
  uint64_t replayed = 0;
  uint64_t recovered_total = 0;
};

RecoveryResult RunRecovery(size_t records) {
  std::string dir = (fs::temp_directory_path() /
                     ("st4ml_bench_ingest_crash_" + std::to_string(::getpid())))
                        .string();
  fs::remove_all(dir);

  int pipefd[2];
  if (pipe(pipefd) != 0) {
    std::cerr << "bench_ingest: pipe failed\n";
    std::exit(1);
  }
  pid_t child = fork();
  if (child < 0) {
    std::cerr << "bench_ingest: fork failed\n";
    std::exit(1);
  }
  if (child == 0) {
    // Child: append one record at a time, report EVERY ack. The report
    // follows the ack, so any count the parent reads is a floor on what
    // the WAL must replay.
    close(pipefd[0]);
    IngestorOptions options;
    options.seal_records = 512;
    options.compact_interval_ms = 50;
    auto ingestor = Ingestor::Open(dir, options);
    if (!ingestor.ok()) _exit(3);
    std::vector<EventRecord> events = MakeEvents(records, 7);
    uint64_t acked = 0;
    for (const EventRecord& r : events) {
      if (!(*ingestor)->Append(r).ok()) _exit(4);
      ++acked;
      if (write(pipefd[1], &acked, sizeof(acked)) !=
          static_cast<ssize_t>(sizeof(acked))) {
        _exit(5);
      }
    }
    // Survived the whole stream without being killed (tiny --records runs):
    // exit WITHOUT sealing — still a crash as far as the WAL is concerned.
    _exit(0);
  }

  close(pipefd[1]);
  // Read acks until roughly mid-stream, then SIGKILL mid-append.
  uint64_t last = 0;
  uint64_t value = 0;
  while (read(pipefd[0], &value, sizeof(value)) ==
         static_cast<ssize_t>(sizeof(value))) {
    last = value;
    if (last >= records / 2) {
      kill(child, SIGKILL);
      break;
    }
  }
  // Drain reports that raced the kill; the last one read is the floor.
  while (read(pipefd[0], &value, sizeof(value)) ==
         static_cast<ssize_t>(sizeof(value))) {
    last = value;
  }
  close(pipefd[0]);
  int status = 0;
  waitpid(child, &status, 0);

  auto reopened = Ingestor::Open(dir, IngestorOptions{});
  if (!reopened.ok()) {
    std::cerr << "bench_ingest: recovery open failed: "
              << reopened.status().ToString() << "\n";
    std::exit(1);
  }
  IngestorStats stats = (*reopened)->Stats();
  RecoveryResult result;
  result.reported_acks = last;
  result.replayed = stats.replayed;
  result.recovered_total = stats.staged + stats.compacted;
  uint64_t selected = CountAll(reopened->get(), dir);

  // Exact-acked-count gate: everything reported acked must be back, plus
  // at most ONE record whose ack beat its report to the pipe.
  if (result.recovered_total < result.reported_acks ||
      result.recovered_total > result.reported_acks + 1) {
    std::cerr << "bench_ingest: SIGKILL recovery lost or invented records: "
              << result.reported_acks << " acked, "
              << result.recovered_total << " recovered\n";
    std::exit(1);
  }
  if (selected != result.recovered_total) {
    std::cerr << "bench_ingest: post-recovery select saw " << selected
              << " of " << result.recovered_total << " recovered records\n";
    std::exit(1);
  }
  reopened->reset();
  fs::remove_all(dir);
  return result;
}

int Run(int argc, char** argv) {
  size_t records = 500000;
  size_t batch = 1024;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--records=", 0) == 0) {
      records = std::stoul(flag.substr(10));
    } else if (flag.rfind("--batch=", 0) == 0) {
      batch = std::stoul(flag.substr(8));
    } else {
      std::cerr << "usage: bench_ingest [--records=N] [--batch=B]\n";
      return 2;
    }
  }

  ThroughputResult throughput = RunThroughput(records, batch);
  std::cout << "{\"mode\":\"throughput\",\"records\":" << records
            << ",\"batch\":" << batch
            << ",\"seconds\":" << throughput.seconds
            << ",\"records_per_sec\":" << throughput.records_per_sec
            << ",\"concurrent_selects\":" << throughput.selects_run
            << ",\"final_count\":" << throughput.final_count
            << ",\"compactions\":" << throughput.compactions << "}"
            << std::endl;

  RecoveryResult recovery = RunRecovery(std::max<size_t>(records / 10, 2000));
  std::cout << "{\"mode\":\"recovery\",\"reported_acks\":"
            << recovery.reported_acks
            << ",\"replayed\":" << recovery.replayed
            << ",\"recovered_total\":" << recovery.recovered_total << "}"
            << std::endl;

  bool rate_ok = throughput.records_per_sec >= kGateRecordsPerSec;
  std::cout << "{\"mode\":\"summary\",\"records\":" << records
            << ",\"records_per_sec\":" << throughput.records_per_sec
            << ",\"rate_gate\":" << (rate_ok ? "true" : "false")
            << ",\"recovery_gate\":true}" << std::endl;
  if (!rate_ok) {
    std::cerr << "bench_ingest: sustained append "
              << throughput.records_per_sec << " records/sec is below the "
              << kGateRecordsPerSec << " gate\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace st4ml

int main(int argc, char** argv) { return st4ml::Run(argc, argv); }
