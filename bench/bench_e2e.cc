// Figure 7: end-to-end processing time of the eight Table 7 feature
// extraction applications on ST4ML vs the GeoSpark-like and GeoMesa-like
// baselines, at three data scales. Each application runs a batch of
// randomly-generated ST ranges in sequence (the paper uses 10 queries; this
// harness defaults to 3 — set ST4ML_E2E_QUERIES to change) and reports total
// time.
//
// Expected shape (paper): ST4ML fastest everywhere; the gap grows with data
// scale and is widest for conversion-heavy apps (hourly flow, transition,
// air over road, POI count).

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "bench_common.h"
#include "common/env.h"

namespace st4ml {
namespace bench {
namespace {

using AppFn = std::function<size_t(const BenchEnv&, int, const STBox&)>;

struct App {
  std::string name;
  AppFn st4ml;
  AppFn geospark;
  AppFn geomesa;
  bool uses_scale;        // NYC/Porto apps sweep 25/50/100%
  Mbr extent;             // query universe
  Duration range;
  double side_fraction;   // spatial query side, per axis
  int64_t span_seconds;   // temporal query window
};

void RunApp(const BenchEnv& env, const App& app) {
  int num_queries = static_cast<int>(GetEnvInt("ST4ML_E2E_QUERIES", 3));
  std::printf("\n--- %s ---\n", app.name.c_str());
  TablePrinter table({"scale", "ST4ML", "GeoSpark-like", "GeoMesa-like",
                      "vs GeoSpark", "vs GeoMesa", "results"});
  std::vector<int> scales =
      app.uses_scale ? std::vector<int>{0, 1, 2} : std::vector<int>{2};
  for (int scale : scales) {
    auto queries = MakeShapedQueries(app.extent, app.range, app.side_fraction,
                                     app.span_seconds, num_queries,
                                     1234 + scale);

    size_t sum_a = 0, sum_b = 0, sum_c = 0;
    double t_st4ml = TimeIt([&] {
      for (const auto& q : queries) sum_a += app.st4ml(env, scale, q);
    });
    double t_geospark = TimeIt([&] {
      for (const auto& q : queries) sum_b += app.geospark(env, scale, q);
    });
    double t_geomesa = TimeIt([&] {
      for (const auto& q : queries) sum_c += app.geomesa(env, scale, q);
    });
    const char* scale_name = scale == 0 ? "25%" : (scale == 1 ? "50%" : "100%");
    char results[96];
    std::snprintf(results, sizeof(results), "%zu/%zu/%zu", sum_a, sum_b, sum_c);
    table.AddRow({scale_name, FmtSeconds(t_st4ml), FmtSeconds(t_geospark),
                  FmtSeconds(t_geomesa), FmtRatio(t_geospark / t_st4ml),
                  FmtRatio(t_geomesa / t_st4ml), results});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace st4ml

int main() {
  using namespace st4ml::bench;
  const BenchEnv& env = GetBenchEnv();
  std::printf("== Fig. 7: end-to-end feature extraction, 3 systems ==\n");
  std::printf("datasets: NYC %s events, Porto %s trajs, Air %s, OSM %s POIs\n",
              FmtCount(env.nyc_count[2]).c_str(),
              FmtCount(env.porto_count[2]).c_str(),
              FmtCount(env.air_count).c_str(), FmtCount(env.osm_count).c_str());

  std::vector<App> apps = {
      {"anomaly", AnomalySt4ml, AnomalyGeoSpark, AnomalyGeoMesa, true,
       env.nyc_extent, env.nyc_range, 0.6, 60 * 86400},
      {"average speed", AvgSpeedSt4ml, AvgSpeedGeoSpark, AvgSpeedGeoMesa, true,
       env.porto_extent, env.porto_range, 0.6, 60 * 86400},
      {"stay point", StayPointSt4ml, StayPointGeoSpark, StayPointGeoMesa, true,
       env.porto_extent, env.porto_range, 0.6, 60 * 86400},
      {"hourly flow", HourlyFlowSt4ml, HourlyFlowGeoSpark, HourlyFlowGeoMesa,
       true, env.nyc_extent, env.nyc_range, 0.6, 14 * 86400},
      {"grid speed", GridSpeedSt4ml, GridSpeedGeoSpark, GridSpeedGeoMesa, true,
       env.porto_extent, env.porto_range, 0.5, 30 * 86400},
      {"transition", TransitionSt4ml, TransitionGeoSpark, TransitionGeoMesa,
       true, env.porto_extent, env.porto_range, 0.5, 2 * 86400},
      {"air over road", AirOverRoadSt4ml, AirOverRoadGeoSpark,
       AirOverRoadGeoMesa, false, env.air_extent, env.air_range, 0.8,
       7 * 86400},
      {"POI count", PoiCountSt4ml, PoiCountGeoSpark, PoiCountGeoMesa, false,
       env.osm_extent, st4ml::Duration(0, 1), 0.7, 1},
  };
  for (const App& app : apps) RunApp(env, app);
  std::printf(
      "\nNote: per-system result counts can differ slightly where selection\n"
      "semantics differ (ST4ML prunes with tight ST metadata; baselines\n"
      "refine with their own predicates).\n");
  return 0;
}
