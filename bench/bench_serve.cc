// st4mld serve benchmark: stages one on-disk STPQ index, starts an
// in-process Session + Server on an ephemeral loopback port, and measures
// the daemon's reason to exist — the FIRST select on a cold session pays
// the disk (cache misses, STPQ bytes), every repeat is served from the warm
// DatasetCache. Reports cold vs warm request latency (the server's own
// elapsed_us, so connection setup is excluded from the comparison) and a
// warm 8-client concurrency phase over the real wire protocol.
//
// Like bench_shuffle/bench_cache this doubles as a gate: it exits non-zero
// if any response fails, if warm counts diverge from the cold count, if the
// warm pass still reads STPQ bytes, or if the warm speedup falls below
// --min-speedup (default 3x — the ISSUE 6 acceptance bar). run_bench.sh
// writes the rows to BENCH_serve.json.
//
// Usage: bench_serve [--records=N] [--reps=R] [--min-speedup=X]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "st4ml.h"
#include "server/client.h"
#include "server/json.h"
#include "server/server.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

std::vector<EventRecord> MakeEvents(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<EventRecord> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    EventRecord r;
    r.id = static_cast<int64_t>(i);
    r.x = rng.Uniform(0, 100);
    r.y = rng.Uniform(0, 100);
    r.time = rng.UniformInt(0, 100000);
    r.attr = std::string(static_cast<size_t>(rng.UniformInt(4, 24)), 'x');
    events.push_back(std::move(r));
  }
  return events;
}

[[noreturn]] void Die(const std::string& what) {
  std::cerr << "bench_serve: " << what << "\n";
  std::exit(1);
}

// ~60% selectivity over the staged extent; limit=0 keeps row serialization
// out of the latency being compared (the gate is about selection, not about
// printing 120k rows).
std::string SelectRequest(const std::string& dir) {
  return std::string(R"({"verb":"select","dir":")") + dir +
         R"(","mbr":[0,0,100,60],"time":[0,100000],"limit":0})";
}

struct Response {
  int64_t count = -1;
  uint64_t elapsed_us = 0;
  int64_t cache_hits = -1;
  int64_t cache_misses = -1;
  int64_t stpq_bytes_read = -1;
};

Response CallSelect(server::Client& client, const std::string& request) {
  auto raw = client.Call(request);
  if (!raw.ok()) Die("call failed: " + raw.status().ToString());
  auto parsed = server::ParseJson(*raw);
  if (!parsed.ok()) Die("unparseable response: " + *raw);
  const server::JsonValue* ok = parsed->Find("ok");
  if (ok == nullptr || !ok->bool_value) Die("server error: " + *raw);
  Response r;
  r.count = parsed->GetInt("count", -1);
  r.elapsed_us = static_cast<uint64_t>(parsed->GetInt("elapsed_us", 0));
  const server::JsonValue* metrics = parsed->Find("metrics");
  if (metrics == nullptr) Die("response without metrics: " + *raw);
  r.cache_hits = metrics->GetInt("cache_hits", -1);
  r.cache_misses = metrics->GetInt("cache_misses", -1);
  r.stpq_bytes_read = metrics->GetInt("stpq_bytes_read", -1);
  return r;
}

int Run(int argc, char** argv) {
  size_t records = 200000;
  int reps = 3;
  double min_speedup = 3.0;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--records=", 0) == 0) {
      records = std::stoul(flag.substr(10));
    } else if (flag.rfind("--reps=", 0) == 0) {
      reps = std::atoi(flag.substr(7).c_str());
    } else if (flag.rfind("--min-speedup=", 0) == 0) {
      min_speedup = std::atof(flag.substr(14).c_str());
    } else {
      std::cerr << "usage: bench_serve [--records=N] [--reps=R] "
                   "[--min-speedup=X]\n";
      return 2;
    }
  }

  // Stage the index once; every daemon instance serves the same files.
  std::string dir = (fs::temp_directory_path() /
                     ("st4ml_bench_serve_" + std::to_string(::getpid())))
                        .string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    auto ctx = ExecutionContext::Create();
    auto data =
        Dataset<EventRecord>::Parallelize(ctx, MakeEvents(records, 42), 16);
    TSTRPartitioner partitioner(3, 3);
    Status staged = BuildOnDiskIndex(data, &partitioner, dir,
                                     dir + "/index.meta");
    if (!staged.ok()) Die(staged.ToString());
  }
  const std::string request = SelectRequest(dir);

  // Cold vs warm, best of `reps`. Each rep is a FRESH daemon (empty dataset
  // cache), so its first request is genuinely cold; later reps' cold passes
  // still re-read and re-parse every STPQ byte even if the OS page cache is
  // warm — the same comparison bench_cache publishes.
  uint64_t best_cold_us = 0, best_warm_us = 0;
  Response cold_ref, warm_ref;
  for (int rep = 0; rep < reps; ++rep) {
    ToolOptions options;
    options.has_cache_budget = true;
    options.cache_budget_bytes = -1;  // the st4mld default: unbounded
    Session session(options);
    server::Server daemon(&session, {});
    Status started = daemon.Start();
    if (!started.ok()) Die(started.ToString());
    auto client = server::Client::Connect(daemon.port());
    if (!client.ok()) Die(client.status().ToString());

    Response cold = CallSelect(*client, request);
    if (cold.count <= 0) Die("cold select returned no records");
    if (cold.cache_misses <= 0 || cold.stpq_bytes_read <= 0) {
      Die("cold pass did no I/O — staging is broken");
    }
    if (rep == 0) cold_ref = cold;
    if (cold.count != cold_ref.count) Die("cold count varies across reps");
    if (rep == 0 || cold.elapsed_us < best_cold_us) {
      best_cold_us = cold.elapsed_us;
    }

    for (int warm_pass = 0; warm_pass < 3; ++warm_pass) {
      Response warm = CallSelect(*client, request);
      if (warm.count != cold_ref.count) {
        Die("warm pass changed the result count");
      }
      if (warm.cache_hits <= 0) Die("warm pass missed the cache");
      if (warm.stpq_bytes_read != 0) Die("warm pass still read STPQ bytes");
      if (best_warm_us == 0 || warm.elapsed_us < best_warm_us) {
        best_warm_us = warm.elapsed_us;
        warm_ref = warm;
      }
    }
    daemon.Shutdown();
  }

  // Warm concurrency phase: one daemon, 8 clients x 4 requests each over
  // the real protocol — every response must be ok with the identical count
  // (per-job metrics isolation is pinned by server_test; here it gates
  // that concurrency does not corrupt results).
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 4;
  uint64_t concurrent_wall_us = 0;
  {
    ToolOptions options;
    options.has_cache_budget = true;
    options.cache_budget_bytes = -1;
    Session session(options);
    server::ServerOptions server_options;
    server_options.max_inflight = kClients;
    server::Server daemon(&session, server_options);
    if (!daemon.Start().ok()) Die("concurrent daemon failed to start");
    {
      auto warmup = server::Client::Connect(daemon.port());
      if (!warmup.ok()) Die(warmup.status().ToString());
      CallSelect(*warmup, request);  // prime the cache
    }
    std::atomic<int> failures{0};
    auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&] {
        auto client = server::Client::Connect(daemon.port());
        if (!client.ok()) {
          ++failures;
          return;
        }
        for (int i = 0; i < kRequestsPerClient; ++i) {
          Response r = CallSelect(*client, request);
          if (r.count != cold_ref.count || r.cache_hits <= 0) ++failures;
        }
      });
    }
    for (auto& t : threads) t.join();
    concurrent_wall_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    daemon.Shutdown();
    if (failures.load() != 0) Die("concurrent phase had failing requests");
  }
  fs::remove_all(dir);

  double speedup = best_warm_us > 0
                       ? static_cast<double>(best_cold_us) /
                             static_cast<double>(best_warm_us)
                       : 0;
  bool gate_ok = speedup >= min_speedup;
  uint64_t per_request_us =
      concurrent_wall_us / (kClients * kRequestsPerClient);

  std::cout << "{\"phase\":\"cold\",\"records\":" << records
            << ",\"count\":" << cold_ref.count
            << ",\"elapsed_us\":" << best_cold_us
            << ",\"cache_misses\":" << cold_ref.cache_misses
            << ",\"stpq_bytes_read\":" << cold_ref.stpq_bytes_read << "}"
            << std::endl;
  std::cout << "{\"phase\":\"warm\",\"records\":" << records
            << ",\"count\":" << warm_ref.count
            << ",\"elapsed_us\":" << best_warm_us
            << ",\"cache_hits\":" << warm_ref.cache_hits
            << ",\"stpq_bytes_read\":" << warm_ref.stpq_bytes_read
            << ",\"speedup_vs_cold\":" << speedup
            << ",\"min_speedup\":" << min_speedup
            << ",\"gate_ok\":" << (gate_ok ? "true" : "false") << "}"
            << std::endl;
  std::cout << "{\"phase\":\"warm_concurrent\",\"clients\":" << kClients
            << ",\"requests\":" << kClients * kRequestsPerClient
            << ",\"wall_us\":" << concurrent_wall_us
            << ",\"per_request_us\":" << per_request_us << ",\"all_ok\":true}"
            << std::endl;

  if (!gate_ok) {
    std::cerr << "bench_serve: warm speedup " << speedup << "x below the "
              << min_speedup << "x gate\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace st4ml

int main(int argc, char** argv) { return st4ml::Run(argc, argv); }
