// Table 8: lines of code implementing the eight end-to-end applications
// against each API. The four implementations live in bench/apps/*.cc between
// `// LOC-BEGIN(<app>)` / `// LOC-END(<app>)` markers; this harness counts
// the non-blank lines between the markers (glue such as environment setup
// and data staging sits outside the markers for every system, like the
// paper's "same glue code" rule).
//
// Expected shape (paper): ST4ML-B 100%, ST4ML-C ~119%, GeoMesa ~193%,
// GeoSpark ~219%.

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"

namespace st4ml {
namespace bench {
namespace {

const char* kApps[] = {"anomaly",    "avg_speed",  "stay_point",
                       "hourly_flow", "grid_speed", "transition",
                       "air_over_road", "poi_count"};

std::map<std::string, int> CountLoc(const std::string& path) {
  std::map<std::string, int> counts;
  std::ifstream in(path);
  ST4ML_CHECK(static_cast<bool>(in)) << "cannot open " << path;
  std::string line;
  std::string current;
  while (std::getline(in, line)) {
    size_t begin = line.find("LOC-BEGIN(");
    size_t end = line.find("LOC-END(");
    if (begin != std::string::npos) {
      size_t close = line.find(')', begin);
      current = line.substr(begin + 10, close - begin - 10);
      continue;
    }
    if (end != std::string::npos) {
      current.clear();
      continue;
    }
    if (current.empty()) continue;
    // Count non-blank, non-pure-comment lines.
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line.compare(first, 2, "//") == 0) continue;
    counts[current] += 1;
  }
  return counts;
}

}  // namespace
}  // namespace bench
}  // namespace st4ml

int main() {
  using namespace st4ml::bench;
#ifndef ST4ML_APPS_DIR
#define ST4ML_APPS_DIR "bench/apps"
#endif
  const std::string dir = ST4ML_APPS_DIR;
  struct System {
    const char* name;
    std::string file;
  };
  std::vector<System> systems = {
      {"ST4ML-B", dir + "/st4ml_apps.cc"},
      {"ST4ML-C", dir + "/st4ml_custom_apps.cc"},
      {"GeoMesa", dir + "/geomesa_apps.cc"},
      {"GeoSpark", dir + "/geospark_apps.cc"},
  };

  std::printf("== Table 8: lines of code per end-to-end application ==\n\n");
  std::vector<std::string> header = {"system"};
  for (const char* app : kApps) header.push_back(app);
  header.push_back("average");
  TablePrinter table(header);

  double base_total = 0;
  for (const System& sys : systems) {
    auto counts = CountLoc(sys.file);
    std::vector<std::string> row = {sys.name};
    double total = 0;
    for (const char* app : kApps) {
      int loc = counts.count(app) ? counts[app] : 0;
      total += loc;
      row.push_back(std::to_string(loc));
    }
    if (base_total == 0) base_total = total;
    char avg[16];
    std::snprintf(avg, sizeof(avg), "%.0f%%", total / base_total * 100);
    row.push_back(avg);
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n(average = total LoC relative to ST4ML-B)\n");
  return 0;
}
