// The Table 7 applications written with ST4ML's *extension points* instead
// of built-in extractors (the ST4ML-C rows of Table 8): the programmer
// supplies per-instance functions and lifts them with the Table 4 RDD APIs
// (MapValue / MapValuePlus / CollectAndMerge) and the converter's
// preMap/agg hooks.

#include <cstdlib>

#include "apps.h"
#include "conversion/parse.h"
#include "conversion/singular_to_collective.h"
#include "extraction/extractor.h"
#include "extraction/rdd_api.h"
#include "extraction/traj_extractors.h"
#include "selection/selector.h"
#include "temporal/duration.h"

namespace st4ml {
namespace bench {

namespace {

Dataset<STEvent> SelectEventsC(const BenchEnv& env, const ScaledDirs& dirs,
                               const STBox& query) {
  SelectorOptions options;
  options.partitioner = std::make_shared<TSTRPartitioner>(4, 4);
  Selector<EventRecord> selector(env.ctx, SelectQuery::FromBox(query), options);
  auto selected = selector.Select(dirs.st4ml_dir, dirs.st4ml_meta);
  ST4ML_CHECK(selected.ok()) << selected.status().ToString();
  return ParseEvents(*selected);
}

Dataset<STTrajectory> SelectTrajsC(const BenchEnv& env, const ScaledDirs& dirs,
                                   const STBox& query) {
  SelectorOptions options;
  options.partitioner = std::make_shared<TSTRPartitioner>(4, 4);
  Selector<TrajRecord> selector(env.ctx, SelectQuery::FromBox(query), options);
  auto selected = selector.Select(dirs.st4ml_dir, dirs.st4ml_meta);
  ST4ML_CHECK(selected.ok()) << selected.status().ToString();
  return ParseTrajs(*selected);
}

}  // namespace

// LOC-BEGIN(anomaly)
size_t AnomalySt4mlC(const BenchEnv& env, int scale, const STBox& query) {
  auto events = SelectEventsC(env, env.nyc[scale], query);
  auto is_abnormal = [](const STEvent& e) {
    int h = HourOfDay(e.temporal.start());
    return h >= 23 || h < 4;
  };
  auto anomalies = events.Filter(is_abnormal);
  return anomalies.Count();
}
// LOC-END(anomaly)

// LOC-BEGIN(avg_speed)
size_t AvgSpeedSt4mlC(const BenchEnv& env, int scale, const STBox& query) {
  auto trajs = SelectTrajsC(env, env.porto[scale], query);
  auto speed_of = [](const STTrajectory& t) {
    double meters = 0.0;
    for (size_t i = 1; i < t.entries.size(); ++i) {
      meters += HaversineMeters(t.entries[i - 1].point, t.entries[i].point);
    }
    int64_t span = t.TemporalExtent().Seconds();
    return span > 0 ? meters / span * 3.6 : 0.0;
  };
  auto speeds = trajs.Map(speed_of);
  return speeds.Aggregate(
      static_cast<size_t>(0),
      [](size_t acc, const double& kmh) { return acc + (kmh > 1.0 ? 1 : 0); },
      [](size_t a, size_t b) { return a + b; });
}
// LOC-END(avg_speed)

// LOC-BEGIN(stay_point)
size_t StayPointSt4mlC(const BenchEnv& env, int scale, const STBox& query) {
  auto trajs = SelectTrajsC(env, env.porto[scale], query);
  auto extract_stay_points = [](const STTrajectory& t) {
    return StayPointsOf(t.entries, 200.0, 600);
  };
  auto stays = trajs.Map(extract_stay_points);
  return stays.Aggregate(
      static_cast<size_t>(0),
      [](size_t acc, const std::vector<StayPoint>& v) { return acc + v.size(); },
      [](size_t a, size_t b) { return a + b; });
}
// LOC-END(stay_point)

// LOC-BEGIN(hourly_flow)
size_t HourlyFlowSt4mlC(const BenchEnv& env, int scale, const STBox& query) {
  auto events = SelectEventsC(env, env.nyc[scale], query);
  auto structure = std::make_shared<const TemporalStructure>(
      TemporalStructure::RegularByInterval(query.time, 3600));
  Event2TsConverter<STEvent> converter(structure);
  auto count_cell = [](const std::vector<Unit>& arr) {
    return static_cast<int64_t>(arr.size());
  };
  auto converted = converter.Convert(
      events, [](const STEvent&) { return Unit{}; }, count_cell);
  TimeSeries<int64_t> flow = CollectAndMerge(
      converted, static_cast<int64_t>(0),
      [](int64_t a, int64_t b) { return a + b; });
  size_t total = 0;
  for (size_t i = 0; i < flow.size(); ++i) total += flow.value(i);
  return total;
}
// LOC-END(hourly_flow)

// LOC-BEGIN(grid_speed)
size_t GridSpeedSt4mlC(const BenchEnv& env, int scale, const STBox& query) {
  auto trajs = SelectTrajsC(env, env.porto[scale], query);
  auto structure = std::make_shared<const SpatialStructure>(
      SpatialStructure::Grid(query.mbr, 48, 48));
  Traj2SmConverter<STTrajectory> converter(structure);
  auto cell_mean_speed = [](const std::vector<STTrajectory>& arr) {
    double sum = 0.0;
    for (const STTrajectory& t : arr) sum += t.AverageSpeedMps() * 3.6;
    return arr.empty() ? 0.0 : sum / arr.size();
  };
  auto f = [&](const Dataset<SpatialMap<std::vector<STTrajectory>>>& rdd) {
    return MapValue(rdd, cell_mean_speed);
  };
  auto extractor = MakeExtractor(f);
  auto merged = CollectAndMerge(extractor.Extract(converter.Convert(trajs)),
                                0.0, [](double a, double b) { return a + b; });
  size_t occupied = 0;
  for (size_t i = 0; i < merged.size(); ++i) {
    if (merged.value(i) > 0) ++occupied;
  }
  return occupied;
}
// LOC-END(grid_speed)

// LOC-BEGIN(transition)
size_t TransitionSt4mlC(const BenchEnv& env, int scale, const STBox& query) {
  auto trajs = SelectTrajsC(env, env.porto[scale], query);
  auto structure = std::make_shared<const RasterStructure>(RasterStructure::Regular(
      query.mbr, 16, 16, query.time,
      std::max(1, static_cast<int>(query.time.Seconds() / 3600))));
  Traj2RasterConverter<STTrajectory> converter(structure);
  auto cell_transit = [](const std::vector<STTrajectory>& arr,
                         const Polygon& cell, const Duration& bin) {
    int64_t in = 0, out = 0;
    for (const STTrajectory& t : arr) {
      bool prev = false, first = true;
      for (const auto& e : t.entries) {
        bool inside = bin.Contains(e.time) && cell.ContainsPoint(e.point);
        if (inside && !prev && !first) ++in;
        if (!inside && prev) ++out;
        prev = inside;
        first = false;
      }
    }
    return std::pair<int64_t, int64_t>(in, out);
  };
  auto lifted = MapValuePlus(converter.Convert(trajs), cell_transit);
  auto merged = CollectAndMerge(
      lifted, std::pair<int64_t, int64_t>(0, 0),
      [](std::pair<int64_t, int64_t> a, const std::pair<int64_t, int64_t>& b) {
        return std::pair<int64_t, int64_t>(a.first + b.first,
                                           a.second + b.second);
      });
  size_t total = 0;
  for (size_t i = 0; i < merged.size(); ++i) {
    total += merged.value(i).first + merged.value(i).second;
  }
  return total;
}
// LOC-END(transition)

// LOC-BEGIN(air_over_road)
size_t AirOverRoadSt4mlC(const BenchEnv& env, int, const STBox& query) {
  auto events = SelectEventsC(env, env.air, query);
  auto structure = std::make_shared<const RasterStructure>(
      RasterStructure::CrossProduct(env.road_cells,
                                    TemporalSliding(query.time, 86400)));
  Event2RasterConverter<STEvent> converter(structure);
  auto first_index = [](const STEvent& e) {
    return std::atof(e.data.attr.c_str());
  };
  auto cell_mean = [](const std::vector<double>& values) {
    double sum = 0.0;
    for (double v : values) sum += v;
    return std::pair<double, int64_t>(sum, static_cast<int64_t>(values.size()));
  };
  auto merged = CollectAndMerge(
      converter.Convert(events, first_index, cell_mean),
      std::pair<double, int64_t>(0.0, 0),
      [](std::pair<double, int64_t> a, const std::pair<double, int64_t>& b) {
        return std::pair<double, int64_t>(a.first + b.first,
                                          a.second + b.second);
      });
  size_t covered = 0;
  for (size_t i = 0; i < merged.size(); ++i) {
    if (merged.value(i).second > 0) ++covered;
  }
  return covered;
}
// LOC-END(air_over_road)

// LOC-BEGIN(poi_count)
size_t PoiCountSt4mlC(const BenchEnv& env, int, const STBox& query) {
  STBox poi_query(query.mbr, Duration(0));
  auto events = SelectEventsC(env, env.osm, poi_query);
  auto structure = std::make_shared<const SpatialStructure>(
      SpatialStructure::Irregular(env.postal_areas));
  Event2SmConverter<STEvent> converter(structure);
  auto count_cell = [](const std::vector<Unit>& arr) {
    return static_cast<int64_t>(arr.size());
  };
  auto converted = converter.Convert(
      events, [](const STEvent&) { return Unit{}; }, count_cell);
  SpatialMap<int64_t> counts = CollectAndMerge(
      converted, static_cast<int64_t>(0),
      [](int64_t a, int64_t b) { return a + b; });
  size_t total = 0;
  for (size_t i = 0; i < counts.size(); ++i) total += counts.value(i);
  return total;
}
// LOC-END(poi_count)

}  // namespace bench
}  // namespace st4ml
