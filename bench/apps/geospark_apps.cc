// The Table 7 applications written against the GeoSpark-like baseline:
// load everything, spatially range-query with the K-D-B index, then filter
// and compute over String-typed attributes (timestamps parsed per use) with
// no conversion optimization — per-record iteration over structure cells,
// the "default solution in Spark" of §5.1.

#include <cstdlib>
#include <map>
#include <mutex>

#include "apps.h"
#include "baselines/geospark_like.h"
#include "extraction/traj_extractors.h"
#include "temporal/duration.h"

namespace st4ml {
namespace bench {

namespace {

/// A GeoSpark programmer running a batch of queries loads the RDD once and
/// caches it (Spark .cache()); the full load is still paid on the first
/// query of every application run.
Dataset<GeoObject> GeoSparkLoadCached(const BenchEnv& env,
                                      const std::string& dir, bool events) {
  static std::mutex mu;
  static std::map<std::string, Dataset<GeoObject>>* cache =
      new std::map<std::string, Dataset<GeoObject>>;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(dir);
  if (it != cache->end()) return it->second;
  GeoSparkLike geospark(env.ctx);
  auto loaded = events ? geospark.LoadAllEvents(dir) : geospark.LoadAllTrajs(dir);
  ST4ML_CHECK(loaded.ok()) << loaded.status().ToString();
  cache->emplace(dir, *loaded);
  return *loaded;
}

Dataset<GeoObject> GeoSparkSelect(const BenchEnv& env, const std::string& dir,
                                  const STBox& query, bool events) {
  GeoSparkLike geospark(env.ctx);
  Dataset<GeoObject> loaded = GeoSparkLoadCached(env, dir, events);
  auto spatial = geospark.RangeQuery(loaded, query.mbr);
  return GeoSparkLike::TemporalFilter(spatial, query.time);
}

/// The Table 1 "reformatting": align the linestring coordinates with the
/// string-encoded timestamp array.
std::vector<std::pair<Point, int64_t>> Reformat(const GeoObject& o) {
  std::vector<std::pair<Point, int64_t>> points;
  std::vector<int64_t> times = ParseGeoObjectTimes(o);
  const auto& pts = o.geom.AsLineString().points();
  for (size_t i = 0; i < pts.size() && i < times.size(); ++i) {
    points.emplace_back(pts[i], times[i]);
  }
  return points;
}

}  // namespace

// LOC-BEGIN(anomaly)
size_t AnomalyGeoSpark(const BenchEnv& env, int scale, const STBox& query) {
  auto selected = GeoSparkSelect(env, env.nyc[scale].plain_dir, query, true);
  auto anomalies = selected.Filter([](const GeoObject& o) {
    std::vector<int64_t> times = ParseGeoObjectTimes(o);
    if (times.empty()) return false;
    int h = HourOfDay(times[0]);
    return h >= 23 || h < 4;
  });
  return anomalies.Count();
}
// LOC-END(anomaly)

// LOC-BEGIN(avg_speed)
size_t AvgSpeedGeoSpark(const BenchEnv& env, int scale, const STBox& query) {
  auto selected = GeoSparkSelect(env, env.porto[scale].plain_dir, query, false);
  auto speeds = selected.Map([](const GeoObject& o) {
    std::vector<std::pair<Point, int64_t>> points = Reformat(o);
    if (points.size() < 2) return 0.0;
    double meters = 0.0;
    for (size_t i = 1; i < points.size(); ++i) {
      meters += HaversineMeters(points[i - 1].first, points[i].first);
    }
    int64_t span = points.back().second - points.front().second;
    return span > 0 ? meters / span * 3.6 : 0.0;
  });
  return speeds.Aggregate(
      static_cast<size_t>(0),
      [](size_t acc, const double& kmh) { return acc + (kmh > 1.0 ? 1 : 0); },
      [](size_t a, size_t b) { return a + b; });
}
// LOC-END(avg_speed)

// LOC-BEGIN(stay_point)
size_t StayPointGeoSpark(const BenchEnv& env, int scale, const STBox& query) {
  auto selected = GeoSparkSelect(env, env.porto[scale].plain_dir, query, false);
  auto stays = selected.Map([](const GeoObject& o) {
    std::vector<std::pair<Point, int64_t>> points = Reformat(o);
    size_t found = 0;
    size_t i = 0;
    while (i < points.size()) {
      size_t j = i + 1;
      while (j < points.size() &&
             HaversineMeters(points[i].first, points[j].first) <= 200.0) {
        ++j;
      }
      if (j - i >= 2 && points[j - 1].second - points[i].second >= 600) {
        ++found;
        i = j;
      } else {
        ++i;
      }
    }
    return found;
  });
  return stays.Aggregate(
      static_cast<size_t>(0),
      [](size_t acc, const size_t& v) { return acc + v; },
      [](size_t a, size_t b) { return a + b; });
}
// LOC-END(stay_point)

// LOC-BEGIN(hourly_flow)
size_t HourlyFlowGeoSpark(const BenchEnv& env, int scale, const STBox& query) {
  auto selected = GeoSparkSelect(env, env.nyc[scale].plain_dir, query, true);
  // No time-series structure: build the bins by hand and assign each event
  // by iterating the bins (no index over the structure).
  std::vector<Duration> bins = TemporalSliding(query.time, 3600);
  auto counts = selected.MapPartitions(
      [&bins](const std::vector<GeoObject>& part) {
        std::vector<int64_t> local(bins.size(), 0);
        for (const GeoObject& o : part) {
          std::vector<int64_t> times = ParseGeoObjectTimes(o);
          if (times.empty()) continue;
          for (size_t b = 0; b < bins.size(); ++b) {
            if (bins[b].Contains(times[0])) {
              ++local[b];
              break;
            }
          }
        }
        return std::vector<std::vector<int64_t>>{local};
      });
  size_t total = 0;
  for (const auto& local : counts.Collect()) {
    for (int64_t c : local) total += c;
  }
  return total;
}
// LOC-END(hourly_flow)

// LOC-BEGIN(grid_speed)
size_t GridSpeedGeoSpark(const BenchEnv& env, int scale, const STBox& query) {
  auto selected = GeoSparkSelect(env, env.porto[scale].plain_dir, query, false);
  std::vector<Mbr> cells;
  double dx = query.mbr.Width() / 48, dy = query.mbr.Height() / 48;
  for (int iy = 0; iy < 48; ++iy) {
    for (int ix = 0; ix < 48; ++ix) {
      cells.push_back(Mbr(query.mbr.x_min + ix * dx, query.mbr.y_min + iy * dy,
                          query.mbr.x_min + (ix + 1) * dx,
                          query.mbr.y_min + (iy + 1) * dy));
    }
  }
  auto sums = selected.MapPartitions(
      [&cells](const std::vector<GeoObject>& part) {
        std::vector<std::pair<double, int64_t>> local(cells.size(), {0.0, 0});
        for (const GeoObject& o : part) {
          std::vector<std::pair<Point, int64_t>> points = Reformat(o);
          if (points.size() < 2) continue;
          double meters = 0.0;
          for (size_t i = 1; i < points.size(); ++i) {
            meters += HaversineMeters(points[i - 1].first, points[i].first);
          }
          int64_t span = points.back().second - points.front().second;
          double kmh = span > 0 ? meters / span * 3.6 : 0.0;
          for (size_t c = 0; c < cells.size(); ++c) {  // Cartesian assignment
            if (o.geom.IntersectsMbr(cells[c])) {
              local[c].first += kmh;
              local[c].second += 1;
            }
          }
        }
        return std::vector<std::vector<std::pair<double, int64_t>>>{local};
      });
  std::vector<std::pair<double, int64_t>> merged(cells.size(), {0.0, 0});
  for (const auto& local : sums.Collect()) {
    for (size_t c = 0; c < cells.size(); ++c) {
      merged[c].first += local[c].first;
      merged[c].second += local[c].second;
    }
  }
  size_t occupied = 0;
  for (const auto& [sum, count] : merged) {
    if (count > 0 && sum > 0) ++occupied;
  }
  return occupied;
}
// LOC-END(grid_speed)

// LOC-BEGIN(transition)
size_t TransitionGeoSpark(const BenchEnv& env, int scale, const STBox& query) {
  auto selected = GeoSparkSelect(env, env.porto[scale].plain_dir, query, false);
  std::vector<Mbr> cells;
  double dx = query.mbr.Width() / 16, dy = query.mbr.Height() / 16;
  for (int iy = 0; iy < 16; ++iy) {
    for (int ix = 0; ix < 16; ++ix) {
      cells.push_back(Mbr(query.mbr.x_min + ix * dx, query.mbr.y_min + iy * dy,
                          query.mbr.x_min + (ix + 1) * dx,
                          query.mbr.y_min + (iy + 1) * dy));
    }
  }
  std::vector<Duration> bins = TemporalSliding(query.time, 3600);
  auto transit = selected.MapPartitions(
      [&cells, &bins](const std::vector<GeoObject>& part) {
        std::vector<int64_t> local(cells.size() * bins.size(), 0);
        for (const GeoObject& o : part) {
          std::vector<std::pair<Point, int64_t>> points = Reformat(o);
          for (size_t c = 0; c < cells.size(); ++c) {      // Cartesian over
            for (size_t b = 0; b < bins.size(); ++b) {     // every ST cell
              bool prev = false, first = true;
              int64_t count = 0;
              for (const auto& [p, t] : points) {
                bool inside = bins[b].Contains(t) && cells[c].ContainsPoint(p);
                if (inside && !prev && !first) ++count;
                if (!inside && prev) ++count;
                prev = inside;
                first = false;
              }
              local[b * cells.size() + c] += count;
            }
          }
        }
        return std::vector<std::vector<int64_t>>{local};
      });
  size_t total = 0;
  for (const auto& local : transit.Collect()) {
    for (int64_t c : local) total += c;
  }
  return total;
}
// LOC-END(transition)

// LOC-BEGIN(air_over_road)
size_t AirOverRoadGeoSpark(const BenchEnv& env, int, const STBox& query) {
  auto selected = GeoSparkSelect(env, env.air.plain_dir, query, true);
  std::vector<Duration> days = TemporalSliding(query.time, 86400);
  const std::vector<Polygon>& cells = env.road_cells;
  auto sums = selected.MapPartitions(
      [&cells, &days](const std::vector<GeoObject>& part) {
        std::vector<std::pair<double, int64_t>> local(
            cells.size() * days.size(), {0.0, 0});
        for (const GeoObject& o : part) {
          std::vector<int64_t> times = ParseGeoObjectTimes(o);
          if (times.empty() || !o.geom.IsPoint()) continue;
          double index = std::atof(ParseGeoObjectAux(o).c_str());
          const Point& p = o.geom.AsPoint();
          for (size_t c = 0; c < cells.size(); ++c) {    // Cartesian over
            if (!cells[c].ContainsPoint(p)) continue;    // every cell
            for (size_t d = 0; d < days.size(); ++d) {
              if (!days[d].Contains(times[0])) continue;
              local[d * cells.size() + c].first += index;
              local[d * cells.size() + c].second += 1;
            }
          }
        }
        return std::vector<std::vector<std::pair<double, int64_t>>>{local};
      });
  std::vector<int64_t> merged(cells.size() * days.size(), 0);
  for (const auto& local : sums.Collect()) {
    for (size_t i = 0; i < merged.size(); ++i) merged[i] += local[i].second;
  }
  size_t covered = 0;
  for (int64_t c : merged) {
    if (c > 0) ++covered;
  }
  return covered;
}
// LOC-END(air_over_road)

// LOC-BEGIN(poi_count)
size_t PoiCountGeoSpark(const BenchEnv& env, int, const STBox& query) {
  GeoSparkLike geospark(env.ctx);
  Dataset<GeoObject> loaded = GeoSparkLoadCached(env, env.osm.plain_dir, true);
  auto selected = geospark.RangeQuery(loaded, query.mbr);
  const std::vector<Polygon>& areas = env.postal_areas;
  auto counts = selected.MapPartitions(
      [&areas](const std::vector<GeoObject>& part) {
        std::vector<int64_t> local(areas.size(), 0);
        for (const GeoObject& o : part) {
          if (!o.geom.IsPoint()) continue;
          for (size_t a = 0; a < areas.size(); ++a) {  // Cartesian over areas
            if (areas[a].ContainsPoint(o.geom.AsPoint())) {
              ++local[a];
              break;
            }
          }
        }
        return std::vector<std::vector<int64_t>>{local};
      });
  size_t total = 0;
  for (const auto& local : counts.Collect()) {
    for (int64_t c : local) total += c;
  }
  return total;
}
// LOC-END(poi_count)

}  // namespace bench
}  // namespace st4ml
