#ifndef ST4ML_BENCH_APPS_APPS_H_
#define ST4ML_BENCH_APPS_APPS_H_

#include <cstddef>

#include "../bench_common.h"

namespace st4ml {
namespace bench {

/// The eight end-to-end applications of Table 7, each implemented four times:
///   *St4ml    — ST4ML with built-in extractors (ST4ML-B in Table 8)
///   *St4mlC   — ST4ML with customized functions over the provided APIs
///               (ST4ML-C); same answers, written against the extension points
///   *GeoSpark — the GeoSpark-like baseline (loads all, spatial-only index,
///               string attributes, Cartesian conversions)
///   *GeoMesa  — the GeoMesa-like baseline (entry-level index, grid
///               partitioning, string attributes, Cartesian conversions)
///
/// Every function returns a result checksum (count of extracted features) so
/// the compiler cannot elide work and the harness can cross-check systems.
/// `scale` selects the 25%/50%/100% dataset variant where applicable.
///
/// Source-layout contract: each implementation sits between
/// `// LOC-BEGIN(<app>)` and `// LOC-END(<app>)` markers; bench_loc counts
/// the lines between them to reproduce Table 8.

// (a) Abnormal events: NYC events occurring 23:00–04:00.
size_t AnomalySt4ml(const BenchEnv& env, int scale, const STBox& query);
size_t AnomalySt4mlC(const BenchEnv& env, int scale, const STBox& query);
size_t AnomalyGeoSpark(const BenchEnv& env, int scale, const STBox& query);
size_t AnomalyGeoMesa(const BenchEnv& env, int scale, const STBox& query);

// (b) Average speed of each Porto trajectory.
size_t AvgSpeedSt4ml(const BenchEnv& env, int scale, const STBox& query);
size_t AvgSpeedSt4mlC(const BenchEnv& env, int scale, const STBox& query);
size_t AvgSpeedGeoSpark(const BenchEnv& env, int scale, const STBox& query);
size_t AvgSpeedGeoMesa(const BenchEnv& env, int scale, const STBox& query);

// (c) Stay points with threshold (200 m, 10 min).
size_t StayPointSt4ml(const BenchEnv& env, int scale, const STBox& query);
size_t StayPointSt4mlC(const BenchEnv& env, int scale, const STBox& query);
size_t StayPointGeoSpark(const BenchEnv& env, int scale, const STBox& query);
size_t StayPointGeoMesa(const BenchEnv& env, int scale, const STBox& query);

// (d) Hourly flow: event counts in a 1-hour-interval time series.
size_t HourlyFlowSt4ml(const BenchEnv& env, int scale, const STBox& query);
size_t HourlyFlowSt4mlC(const BenchEnv& env, int scale, const STBox& query);
size_t HourlyFlowGeoSpark(const BenchEnv& env, int scale, const STBox& query);
size_t HourlyFlowGeoMesa(const BenchEnv& env, int scale, const STBox& query);

// (e) Grid speed: average trajectory speed per cell of a fine spatial map.
size_t GridSpeedSt4ml(const BenchEnv& env, int scale, const STBox& query);
size_t GridSpeedSt4mlC(const BenchEnv& env, int scale, const STBox& query);
size_t GridSpeedGeoSpark(const BenchEnv& env, int scale, const STBox& query);
size_t GridSpeedGeoMesa(const BenchEnv& env, int scale, const STBox& query);

// (f) Transition: in/out flow per cell of a (grid × 1 h) raster.
size_t TransitionSt4ml(const BenchEnv& env, int scale, const STBox& query);
size_t TransitionSt4mlC(const BenchEnv& env, int scale, const STBox& query);
size_t TransitionGeoSpark(const BenchEnv& env, int scale, const STBox& query);
size_t TransitionGeoMesa(const BenchEnv& env, int scale, const STBox& query);

// (g) Air over road: daily mean air-quality index per road cell.
size_t AirOverRoadSt4ml(const BenchEnv& env, int scale, const STBox& query);
size_t AirOverRoadSt4mlC(const BenchEnv& env, int scale, const STBox& query);
size_t AirOverRoadGeoSpark(const BenchEnv& env, int scale, const STBox& query);
size_t AirOverRoadGeoMesa(const BenchEnv& env, int scale, const STBox& query);

// (h) POI count per postal-code area.
size_t PoiCountSt4ml(const BenchEnv& env, int scale, const STBox& query);
size_t PoiCountSt4mlC(const BenchEnv& env, int scale, const STBox& query);
size_t PoiCountGeoSpark(const BenchEnv& env, int scale, const STBox& query);
size_t PoiCountGeoMesa(const BenchEnv& env, int scale, const STBox& query);

}  // namespace bench
}  // namespace st4ml

#endif  // ST4ML_BENCH_APPS_APPS_H_
