// The eight Table 7 applications written against ST4ML's built-in operators
// (the ST4ML-B rows of Table 8). Each app is Selection -> Conversion ->
// Extraction with built-in extractors.

#include <cstdlib>

#include "apps.h"
#include "conversion/parse.h"
#include "conversion/singular_to_collective.h"
#include "extraction/collective_extractors.h"
#include "extraction/event_extractors.h"
#include "extraction/traj_extractors.h"
#include "selection/selector.h"

namespace st4ml {
namespace bench {

namespace {

/// Shared glue (environment setup the paper excludes from app LoC).
Dataset<STEvent> SelectEvents(const BenchEnv& env, const ScaledDirs& dirs,
                              const STBox& query) {
  SelectorOptions options;
  options.partitioner = std::make_shared<TSTRPartitioner>(4, 4);
  Selector<EventRecord> selector(env.ctx, SelectQuery::FromBox(query), options);
  auto selected = selector.Select(dirs.st4ml_dir, dirs.st4ml_meta);
  ST4ML_CHECK(selected.ok()) << selected.status().ToString();
  return ParseEvents(*selected);
}

Dataset<STTrajectory> SelectTrajs(const BenchEnv& env, const ScaledDirs& dirs,
                                  const STBox& query) {
  SelectorOptions options;
  options.partitioner = std::make_shared<TSTRPartitioner>(4, 4);
  Selector<TrajRecord> selector(env.ctx, SelectQuery::FromBox(query), options);
  auto selected = selector.Select(dirs.st4ml_dir, dirs.st4ml_meta);
  ST4ML_CHECK(selected.ok()) << selected.status().ToString();
  return ParseTrajs(*selected);
}

}  // namespace

// LOC-BEGIN(anomaly)
size_t AnomalySt4ml(const BenchEnv& env, int scale, const STBox& query) {
  auto events = SelectEvents(env, env.nyc[scale], query);
  auto anomalies = ExtractAnomalies(events, 23, 4);
  return anomalies.Count();
}
// LOC-END(anomaly)

// LOC-BEGIN(avg_speed)
size_t AvgSpeedSt4ml(const BenchEnv& env, int scale, const STBox& query) {
  auto trajs = SelectTrajs(env, env.porto[scale], query);
  auto speeds = ExtractTrajSpeeds(trajs, SpeedUnit::kKilometersPerHour);
  size_t moving = 0;
  for (const auto& [id, kmh] : speeds.Collect()) {
    if (kmh > 1.0) ++moving;
  }
  return moving;
}
// LOC-END(avg_speed)

// LOC-BEGIN(stay_point)
size_t StayPointSt4ml(const BenchEnv& env, int scale, const STBox& query) {
  auto trajs = SelectTrajs(env, env.porto[scale], query);
  auto stays = ExtractStayPoints(trajs, 200.0, 600);
  size_t total = 0;
  for (const auto& [id, points] : stays.Collect()) total += points.size();
  return total;
}
// LOC-END(stay_point)

// LOC-BEGIN(hourly_flow)
size_t HourlyFlowSt4ml(const BenchEnv& env, int scale, const STBox& query) {
  auto events = SelectEvents(env, env.nyc[scale], query);
  auto structure = std::make_shared<const TemporalStructure>(
      TemporalStructure::RegularByInterval(query.time, 3600));
  Event2TsConverter<STEvent> converter(structure);
  TimeSeries<int64_t> flow = ExtractTsFlow(converter.Convert(events));
  size_t total = 0;
  for (size_t i = 0; i < flow.size(); ++i) total += flow.value(i);
  return total;
}
// LOC-END(hourly_flow)

// LOC-BEGIN(grid_speed)
size_t GridSpeedSt4ml(const BenchEnv& env, int scale, const STBox& query) {
  auto trajs = SelectTrajs(env, env.porto[scale], query);
  auto structure = std::make_shared<const SpatialStructure>(
      SpatialStructure::Grid(query.mbr, 48, 48));
  Traj2SmConverter<STTrajectory> converter(structure);
  SpatialMap<double> speed =
      ExtractSmSpeed(converter.Convert(trajs), SpeedUnit::kKilometersPerHour);
  size_t occupied = 0;
  for (size_t i = 0; i < speed.size(); ++i) {
    if (speed.value(i) > 0) ++occupied;
  }
  return occupied;
}
// LOC-END(grid_speed)

// LOC-BEGIN(transition)
size_t TransitionSt4ml(const BenchEnv& env, int scale, const STBox& query) {
  auto trajs = SelectTrajs(env, env.porto[scale], query);
  auto structure = std::make_shared<const RasterStructure>(RasterStructure::Regular(
      query.mbr, 16, 16, query.time,
      std::max(1, static_cast<int>(query.time.Seconds() / 3600))));
  Traj2RasterConverter<STTrajectory> converter(structure);
  auto transit = ExtractRasterTransit(converter.Convert(trajs));
  size_t total = 0;
  for (size_t i = 0; i < transit.size(); ++i) {
    total += transit.value(i).first + transit.value(i).second;
  }
  return total;
}
// LOC-END(transition)

// LOC-BEGIN(air_over_road)
size_t AirOverRoadSt4ml(const BenchEnv& env, int, const STBox& query) {
  auto events = SelectEvents(env, env.air, query);
  auto structure = std::make_shared<const RasterStructure>(
      RasterStructure::CrossProduct(
          env.road_cells, TemporalSliding(query.time, 86400)));
  Event2RasterConverter<STEvent> converter(structure);
  auto pre = [](const STEvent& e) { return std::atof(e.data.attr.c_str()); };
  auto agg = [](const std::vector<double>& values) {
    MeanAcc acc;
    for (double v : values) acc.Add(v);
    return acc;
  };
  Raster<MeanAcc> merged = CollectAndMerge(
      converter.Convert(events, pre, agg), MeanAcc{},
      [](MeanAcc a, const MeanAcc& b) { return a + b; });
  size_t covered = 0;
  for (size_t i = 0; i < merged.size(); ++i) {
    if (merged.value(i).count > 0) ++covered;
  }
  return covered;
}
// LOC-END(air_over_road)

// LOC-BEGIN(poi_count)
size_t PoiCountSt4ml(const BenchEnv& env, int, const STBox& query) {
  STBox poi_query(query.mbr, Duration(0));  // POIs carry no time
  auto events = SelectEvents(env, env.osm, poi_query);
  auto structure = std::make_shared<const SpatialStructure>(
      SpatialStructure::Irregular(env.postal_areas));
  Event2SmConverter<STEvent> converter(structure);
  SpatialMap<int64_t> counts = ExtractSmFlow(converter.Convert(events));
  size_t total = 0;
  for (size_t i = 0; i < counts.size(); ++i) total += counts.value(i);
  return total;
}
// LOC-END(poi_count)

}  // namespace bench
}  // namespace st4ml
