// Figure 9: the first Alibaba case study — daily city-wide traffic speed
// extraction on rasters (100 districts x 1-hour slots) from camera-captured
// trajectories, ST4ML vs the GeoSpark-based adoption, for each day of a
// simulated week (the paper shows a month; set ST4ML_CASE_DAYS).
//
// Expected shape (paper): extraction time grows with the day's data size for
// both systems; ST4ML is 3-7x faster throughout.

#include <cstdio>
#include <vector>

#include "baselines/geospark_like.h"
#include "bench_common.h"
#include "common/env.h"
#include "conversion/parse.h"
#include "conversion/singular_to_collective.h"
#include "extraction/collective_extractors.h"
#include "partition/str_partitioner.h"
#include "selection/on_disk_index.h"
#include "selection/selector.h"

namespace st4ml {
namespace bench {
namespace {

/// 100 polygon districts: a jittered 10x10 mesh over the city extent.
std::vector<Polygon> MakeDistricts(const Mbr& extent) {
  OsmOptions mesh;
  mesh.poi_count = 1;
  mesh.areas_x = 10;
  mesh.areas_y = 10;
  mesh.extent = extent;
  mesh.seed = 99;
  return GenerateOsm(mesh).postal_areas;
}

size_t St4mlDailySpeed(const BenchEnv& env, const std::string& data_dir,
                       const std::string& meta, const STBox& day_query,
                       std::shared_ptr<const RasterStructure> raster) {
  SelectorOptions options;
  options.partitioner = std::make_shared<TSTRPartitioner>(4, 4);
  Selector<TrajRecord> selector(env.ctx, SelectQuery::FromBox(day_query), options);
  auto selected = selector.Select(data_dir, meta);
  ST4ML_CHECK(selected.ok()) << selected.status().ToString();
  auto trajs = ParseTrajs(*selected);
  Traj2RasterConverter<STTrajectory> converter(raster);
  Raster<CellSpeed> speeds =
      ExtractRasterSpeed(converter.Convert(trajs), SpeedUnit::kKilometersPerHour);
  size_t occupied = 0;
  for (size_t i = 0; i < speeds.size(); ++i) {
    if (speeds.value(i).vehicles > 0) ++occupied;
  }
  return occupied;
}

size_t GeoSparkDailySpeed(const BenchEnv& env, const std::string& plain_dir,
                          const STBox& day_query,
                          const std::vector<Polygon>& districts,
                          const std::vector<Duration>& hours) {
  GeoSparkLike geospark(env.ctx);
  auto loaded = geospark.LoadAllTrajs(plain_dir);
  ST4ML_CHECK(loaded.ok()) << loaded.status().ToString();
  auto selected = GeoSparkLike::TemporalFilter(
      geospark.RangeQuery(*loaded, day_query.mbr), day_query.time);
  auto cells = selected.MapPartitions(
      [&districts, &hours](const std::vector<GeoObject>& part) {
        std::vector<std::pair<double, int64_t>> local(
            districts.size() * hours.size(), {0.0, 0});
        for (const GeoObject& o : part) {
          std::vector<int64_t> times = ParseGeoObjectTimes(o);
          const auto& pts = o.geom.AsLineString().points();
          if (times.size() < 2 || pts.size() != times.size()) continue;
          double meters = 0.0;
          for (size_t i = 1; i < pts.size(); ++i) {
            meters += HaversineMeters(pts[i - 1], pts[i]);
          }
          int64_t span = times.back() - times.front();
          double kmh = span > 0 ? meters / span * 3.6 : 0.0;
          for (size_t d = 0; d < districts.size(); ++d) {   // Cartesian over
            if (!o.geom.IntersectsPolygon(districts[d])) continue;
            for (size_t h = 0; h < hours.size(); ++h) {     // every ST cell
              if (times.front() > hours[h].end() ||
                  times.back() < hours[h].start()) {
                continue;
              }
              local[h * districts.size() + d].first += kmh;
              local[h * districts.size() + d].second += 1;
            }
          }
        }
        return std::vector<std::vector<std::pair<double, int64_t>>>{local};
      });
  std::vector<int64_t> merged(districts.size() * hours.size(), 0);
  for (const auto& local : cells.Collect()) {
    for (size_t i = 0; i < merged.size(); ++i) merged[i] += local[i].second;
  }
  size_t occupied = 0;
  for (int64_t c : merged) {
    if (c > 0) ++occupied;
  }
  return occupied;
}

}  // namespace
}  // namespace bench
}  // namespace st4ml

int main() {
  namespace fs = std::filesystem;
  using namespace st4ml::bench;
  using namespace st4ml;
  const BenchEnv& env = GetBenchEnv();

  int days = static_cast<int>(GetEnvInt("ST4ML_CASE_DAYS", 7));
  std::printf("== Fig. 9: case study — daily traffic speed extraction ==\n");
  std::printf("%d days of camera trajectories; 100 districts x 1 h raster\n\n",
              days);

  // Stage the month of camera data once: per-day record counts vary (weekday
  // rhythm), like the case study's Fig. 9a.
  RoadNetworkOptions road_gen;
  road_gen.nx = 16;
  road_gen.ny = 16;
  auto network = GenerateRoadNetwork(road_gen);
  const std::string root =
      GetEnvString("ST4ML_BENCH_DATA", "bench_data") + "/case_speed";
  fs::remove_all(root);

  double scale = BenchScale();
  std::vector<STBox> day_queries;
  std::vector<TrajRecord> all;
  int64_t next_id = 0;
  for (int d = 0; d < days; ++d) {
    CameraTrajOptions gen;
    gen.seed = 100 + d;
    int64_t day_start = 1596240000 + static_cast<int64_t>(d) * 86400;
    gen.day = Duration(day_start, day_start + 86399);
    // Weekday rhythm: weekends ~60% of weekday volume.
    double weekday_factor = (d % 7 == 5 || d % 7 == 6) ? 0.6 : 1.0;
    gen.count = static_cast<int64_t>(2500 * weekday_factor * scale);
    auto day_records = GenerateCameraTrajectories(*network, gen);
    for (auto& t : day_records) t.id = next_id++;
    day_queries.push_back(STBox(road_gen.extent, gen.day));
    all.insert(all.end(), day_records.begin(), day_records.end());
  }
  auto data = Dataset<TrajRecord>::Parallelize(env.ctx, all, 32);
  TSTRPartitioner partitioner(days, 8);
  ST4ML_CHECK(
      BuildOnDiskIndex(data, &partitioner, root + "/st4ml", root + "/meta").ok());
  ST4ML_CHECK(PersistDataset(data, root + "/plain").ok());

  std::vector<Polygon> districts = MakeDistricts(road_gen.extent);

  TablePrinter table({"day", "trajectories", "ST4ML", "GeoSpark-like",
                      "speedup", "cells (st4ml/geospark)"});
  for (int d = 0; d < days; ++d) {
    auto raster = std::make_shared<const RasterStructure>(
        RasterStructure::CrossProduct(
            districts, TemporalSliding(day_queries[d].time, 3600)));
    size_t st4ml_cells = 0, geospark_cells = 0;
    double t_st4ml = TimeIt([&] {
      st4ml_cells = St4mlDailySpeed(env, root + "/st4ml", root + "/meta",
                                    day_queries[d], raster);
    });
    std::vector<Duration> hours = TemporalSliding(day_queries[d].time, 3600);
    double t_geospark = TimeIt([&] {
      geospark_cells = GeoSparkDailySpeed(env, root + "/plain", day_queries[d],
                                          districts, hours);
    });
    // Count the day's trajectories for the size column.
    size_t day_count = 0;
    for (const auto& t : all) {
      if (!t.points.empty() && day_queries[d].time.Contains(t.points[0].time)) {
        ++day_count;
      }
    }
    char cells[48];
    std::snprintf(cells, sizeof(cells), "%zu/%zu", st4ml_cells, geospark_cells);
    table.AddRow({std::to_string(d + 1), FmtCount(day_count),
                  FmtSeconds(t_st4ml), FmtSeconds(t_geospark),
                  FmtRatio(t_geospark / t_st4ml), cells});
  }
  table.Print();
  fs::remove_all(root);
  return 0;
}
