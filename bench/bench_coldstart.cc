// Cold-start selection benchmark: the tentpole measurement for the
// persistent `.stix` sidecar (DESIGN.md §12). Stages one on-disk STPQ
// index, then times the SAME selective query through the two cold paths a
// fresh process can take:
//
//   parse_build  cache enabled, disk index off — the pre-sidecar cold
//                start: parse every surviving part file end to end and
//                build the in-memory index as a side effect.
//   mmap_index   cache disabled, disk index on — mmap the sidecar, walk
//                the packed tree, and ranged-read only matching records.
//
// Emits one JSON object per mode plus a summary row (bench/run_bench.sh
// writes BENCH_coldstart.json at the repo root). The bench doubles as a
// correctness gate: both paths must produce checksum-identical outputs at
// every size, and at >= 1M records the mmap path must be >= 3x faster
// than parse-and-build while reading fewer .stpq bytes.
//
// Usage: bench_coldstart [--records=N] [--reps=R]

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "st4ml.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

constexpr size_t kGateRecords = 1000000;
constexpr double kGateSpeedup = 3.0;

std::vector<EventRecord> MakeEvents(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<EventRecord> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    EventRecord r;
    r.id = static_cast<int64_t>(i);
    r.x = rng.Uniform(0, 100);
    r.y = rng.Uniform(0, 100);
    r.time = rng.UniformInt(0, 100000);
    r.attr = std::string(static_cast<size_t>(rng.UniformInt(4, 24)), 'x');
    events.push_back(std::move(r));
  }
  return events;
}

uint64_t Fnv1a(uint64_t hash, const void* data, size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t Checksum(std::vector<EventRecord> records) {
  // Selection order is partition-interleaved; checksum over a canonical
  // order so both plans hash the same set the same way.
  std::sort(records.begin(), records.end(),
            [](const EventRecord& a, const EventRecord& b) {
              return a.id < b.id;
            });
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const EventRecord& r : records) {
    hash = Fnv1a(hash, &r.id, sizeof(r.id));
    hash = Fnv1a(hash, &r.x, sizeof(r.x));
    hash = Fnv1a(hash, &r.y, sizeof(r.y));
    hash = Fnv1a(hash, &r.time, sizeof(r.time));
    hash = Fnv1a(hash, r.attr.data(), r.attr.size());
  }
  return hash;
}

struct ModeResult {
  double seconds = 0;
  uint64_t count = 0;
  uint64_t checksum = 0;
  MetricsSnapshot metrics;
};

/// One cold pass: a FRESH context per rep, so nothing carries over and
/// every timing is a true cold start for its mode. Best-of-reps.
ModeResult RunMode(const std::string& dir, const std::string& meta,
                   const STBox& query, bool disk_index, int reps) {
  ModeResult best;
  for (int rep = 0; rep < reps; ++rep) {
    auto ctx = ExecutionContext::Create();
    if (!disk_index) {
      // parse_build: the cached-index plan, starting cold — parse every
      // surviving file and build the in-memory index as a side effect.
      DatasetCache::Options cache;
      cache.budget_bytes = DatasetCache::kUnbounded;
      ctx->ConfigureCache(std::move(cache));
    }
    SelectorOptions options;
    options.use_disk_index = disk_index;
    Selector<EventRecord> selector(ctx, SelectQuery::FromBox(query), options);
    Stopwatch watch;
    auto selected = selector.Select(dir, meta);
    double seconds = watch.ElapsedSeconds();
    if (!selected.ok()) {
      std::cerr << "bench_coldstart: " << selected.status().ToString() << "\n";
      std::exit(1);
    }
    auto records = std::move(*selected).Collect();
    uint64_t count = records.size();
    uint64_t sum = Checksum(std::move(records));
    if (rep > 0 && sum != best.checksum) {
      std::cerr << "bench_coldstart: nondeterministic output across reps\n";
      std::exit(1);
    }
    if (rep == 0 || seconds < best.seconds) {
      best.seconds = seconds;
      best.metrics = ctx->MetricsSnapshot();
    }
    best.count = count;
    best.checksum = sum;
  }
  return best;
}

void EmitRow(const char* mode, size_t records, const ModeResult& r) {
  std::cout << "{\"mode\":\"" << mode << "\""
            << ",\"records\":" << records
            << ",\"cold_seconds\":" << r.seconds
            << ",\"selected\":" << r.count
            << ",\"checksum\":" << r.checksum
            << ",\"stpq_bytes_read\":" << r.metrics[Counter::kStpqBytesRead]
            << ",\"index_files_mmapped\":"
            << r.metrics[Counter::kIndexFilesMmapped]
            << ",\"index_pages_read\":" << r.metrics[Counter::kIndexPagesRead]
            << ",\"planner_mmap_index\":"
            << r.metrics[Counter::kPlannerMmapIndex]
            << ",\"planner_cached_index\":"
            << r.metrics[Counter::kPlannerCachedIndex]
            << ",\"planner_linear_scan\":"
            << r.metrics[Counter::kPlannerLinearScan] << "}" << std::endl;
}

int Run(int argc, char** argv) {
  size_t records = 200000;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--records=", 0) == 0) {
      records = std::stoul(flag.substr(10));
    } else if (flag.rfind("--reps=", 0) == 0) {
      reps = std::atoi(flag.substr(7).c_str());
    } else {
      std::cerr << "usage: bench_coldstart [--records=N] [--reps=R]\n";
      return 2;
    }
  }

  std::string dir = (fs::temp_directory_path() /
                     ("st4ml_bench_coldstart_" + std::to_string(::getpid())))
                        .string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::string meta = dir + "/index.meta";
  {
    auto ctx = ExecutionContext::Create();
    auto data =
        Dataset<EventRecord>::Parallelize(ctx, MakeEvents(records, 42), 16);
    TSTRPartitioner partitioner(3, 3);
    Status staged = BuildOnDiskIndex(data, &partitioner, dir, meta);
    if (!staged.ok()) {
      std::cerr << "bench_coldstart: " << staged.ToString() << "\n";
      return 1;
    }
  }

  // A selective window (~0.6% of the domain volume): the regime the
  // sidecar exists for — most records never deserve a parse.
  STBox query(Mbr(10, 10, 25, 25), Duration(0, 25000));

  ModeResult parse_build =
      RunMode(dir, meta, query, /*disk_index=*/false, reps);
  ModeResult mmap_index = RunMode(dir, meta, query, /*disk_index=*/true, reps);
  EmitRow("parse_build", records, parse_build);
  EmitRow("mmap_index", records, mmap_index);

  bool identical = parse_build.checksum == mmap_index.checksum &&
                   parse_build.count == mmap_index.count;
  double speedup = mmap_index.seconds > 0
                       ? parse_build.seconds / mmap_index.seconds
                       : 0;
  uint64_t baseline_bytes = parse_build.metrics[Counter::kStpqBytesRead];
  uint64_t mmap_bytes = mmap_index.metrics[Counter::kStpqBytesRead];
  bool gated = records >= kGateRecords;
  std::cout << "{\"mode\":\"summary\",\"records\":" << records
            << ",\"cold_speedup\":" << speedup
            << ",\"baseline_stpq_bytes_read\":" << baseline_bytes
            << ",\"mmap_stpq_bytes_read\":" << mmap_bytes
            << ",\"output_identical\":" << (identical ? "true" : "false")
            << ",\"gated\":" << (gated ? "true" : "false") << "}"
            << std::endl;
  fs::remove_all(dir);

  if (!identical) {
    std::cerr << "MISMATCH: mmap-index selection diverged from the "
                 "parse-and-build reference\n";
    return 1;
  }
  if (gated && speedup < kGateSpeedup) {
    std::cerr << "GATE: cold mmap select " << speedup << "x < required "
              << kGateSpeedup << "x at " << records << " records\n";
    return 1;
  }
  if (gated && mmap_bytes >= baseline_bytes) {
    std::cerr << "GATE: mmap path read " << mmap_bytes
              << " .stpq bytes, not fewer than parse-and-build's "
              << baseline_bytes << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace st4ml

int main(int argc, char** argv) { return st4ml::Run(argc, argv); }
