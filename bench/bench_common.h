#ifndef ST4ML_BENCH_BENCH_COMMON_H_
#define ST4ML_BENCH_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/stopwatch.h"
#include "datagen/generators.h"
#include "engine/dataset.h"
#include "geometry/polygon.h"
#include "index/stbox.h"
#include "mapmatching/road_network.h"

namespace st4ml {
namespace bench {

/// On-disk layouts of one dataset for the three systems under test.
struct ScaledDirs {
  std::string st4ml_dir;   ///< T-STR partitioned STPQ files
  std::string st4ml_meta;  ///< metadata file for on-disk pruning
  std::string plain_dir;   ///< unindexed STPQ files (native-Spark layout)
  std::string gm_dir;      ///< GeoMesa-like XZ2 block layout
};

/// All staged benchmark data. Staged once per (scale) into
/// <repo>/build/bench_data and reused by every bench binary; delete that
/// directory to re-stage. Record counts scale with ST4ML_SCALE (default 1.0,
/// tuned for a small 2-core container).
struct BenchEnv {
  std::shared_ptr<ExecutionContext> ctx;
  double scale = 1.0;

  /// NYC-like events and Porto-like trajectories at 25% / 50% / 100% of the
  /// full record count (the Fig. 7 data-scale sweep).
  ScaledDirs nyc[3];
  ScaledDirs porto[3];
  int64_t nyc_count[3];
  int64_t porto_count[3];

  ScaledDirs air;
  ScaledDirs osm;
  int64_t air_count = 0;
  int64_t osm_count = 0;

  Mbr nyc_extent, porto_extent, air_extent, osm_extent;
  Duration nyc_range, porto_range, air_range;

  std::vector<Polygon> postal_areas;

  /// Road cells for the "air over road" application: buffered road-segment
  /// polygons over the air-quality extent.
  std::shared_ptr<RoadNetwork> air_network;
  std::vector<Polygon> road_cells;
};

/// Stages (or re-opens) the shared benchmark data. Aborts on IO failure.
const BenchEnv& GetBenchEnv();

/// Deterministic random ST query boxes covering roughly `volume_fraction` of
/// the dataset's ST volume: each dimension is scaled by fraction^(1/3).
std::vector<STBox> MakeQueries(const Mbr& extent, const Duration& range,
                               double volume_fraction, int count,
                               uint64_t seed);

/// Deterministic random ST query boxes with an explicit shape: spatial side
/// scaled by `side_fraction` per axis, temporal window of `span_seconds`.
/// Matches how real STDML apps query (city-scale area x days-scale window).
std::vector<STBox> MakeShapedQueries(const Mbr& extent, const Duration& range,
                                     double side_fraction, int64_t span_seconds,
                                     int count, uint64_t seed);

/// Markdown-ish fixed-width table printer for bench reports.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds / counts / ratios compactly.
std::string FmtSeconds(double s);
std::string FmtCount(uint64_t n);
std::string FmtRatio(double r);
std::string FmtMb(uint64_t bytes);

/// Times `fn` once and returns seconds (bench runs are deterministic, and
/// the paper reports totals over query batches anyway).
double TimeIt(const std::function<void()>& fn);

}  // namespace bench
}  // namespace st4ml

#endif  // ST4ML_BENCH_BENCH_COMMON_H_
