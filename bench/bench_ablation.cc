// Ablations of the design choices DESIGN.md §4 calls out (the paper argues
// each qualitatively; here they are measured):
//
//  (1) §3.1  select-first-then-partition (ST4ML) vs the conventional
//      partition-first-then-select layout — the latter shuffles ALL records
//      before any filtering.
//  (2) §3.2.2 broadcast-structure conversion (ST4ML, design option 2) vs
//      shuffle-by-cell conversion (design option 1) — the latter performs a
//      full shuffle of the (replicated) singular instances.
//  (3) §2.2  reduceByKey (map-side combine) vs groupByKey.mapValues — the
//      paper's own example of operator choice; both compute hourly counts.
//
// Each row reports wall time and, where the difference is structural, the
// engine's shuffled-record counters — the distributed cost the design
// choices control.

#include <cstdio>

#include "bench_common.h"
#include "conversion/parse.h"
#include "conversion/shuffle_conversion.h"
#include "conversion/singular_to_collective.h"
#include "engine/pair_ops.h"
#include "extraction/rdd_api.h"
#include "partition/str_partitioner.h"
#include "selection/selector.h"

namespace st4ml {
namespace bench {
namespace {

void AblateSelectionOrder(const BenchEnv& env) {
  std::printf("\n--- (1) select-first vs partition-first (§3.1) ---\n");
  TablePrinter table(
      {"design", "time", "shuffled records", "shuffled bytes"});
  auto queries =
      MakeShapedQueries(env.nyc_extent, env.nyc_range, 0.4, 14 * 86400, 3, 5);

  // ST4ML: load + filter, then ST-partition the selected subset.
  env.ctx->ResetMetrics();
  double t_select_first = TimeIt([&] {
    for (const STBox& q : queries) {
      SelectorOptions options;
      options.partitioner = std::make_shared<TSTRPartitioner>(4, 8);
      Selector<EventRecord> selector(env.ctx, SelectQuery::FromBox(q), options);
      auto result = selector.Select(env.nyc[2].plain_dir);
      ST4ML_CHECK(result.ok());
    }
  });
  uint64_t sf_records = env.ctx->MetricsSnapshot().shuffle_records();
  uint64_t sf_bytes = env.ctx->MetricsSnapshot().shuffle_bytes();
  table.AddRow({"select-first (ST4ML)", FmtSeconds(t_select_first),
                FmtCount(sf_records), FmtMb(sf_bytes)});

  // Conventional: ST-partition everything, then filter.
  env.ctx->ResetMetrics();
  double t_partition_first = TimeIt([&] {
    for (const STBox& q : queries) {
      SelectorOptions load_opts;
      load_opts.partition_after_select = false;
      Selector<EventRecord> loader(env.ctx, SelectQuery::FromBox(STBox(env.nyc_extent, env.nyc_range)),
                                   load_opts);
      auto all = loader.Select(env.nyc[2].plain_dir);
      ST4ML_CHECK(all.ok());
      TSTRPartitioner partitioner(4, 8);
      auto partitioned = TrySTPartition(
          *all, &partitioner,
          [](const EventRecord& r) { return r.ComputeSTBox(); },
          [](const EventRecord& r) { return static_cast<uint64_t>(r.id); });
      ST4ML_CHECK(partitioned.ok());
      partitioned
          ->Filter([&q](const EventRecord& r) {
            return r.ComputeSTBox().Intersects(q);
          })
          .Count();
    }
  });
  uint64_t pf_records = env.ctx->MetricsSnapshot().shuffle_records();
  uint64_t pf_bytes = env.ctx->MetricsSnapshot().shuffle_bytes();
  table.AddRow({"partition-first (conventional)",
                FmtSeconds(t_partition_first), FmtCount(pf_records),
                FmtMb(pf_bytes)});
  table.Print();
}

void AblateConversionDesign(const BenchEnv& env) {
  std::printf("\n--- (2) broadcast-structure vs shuffle-by-cell (§3.2.2) ---\n");
  TablePrinter table({"design", "time", "shuffled records", "broadcasts"});

  SelectorOptions options;
  options.partitioner = std::make_shared<STRPartitioner>(16);
  Selector<EventRecord> selector(
      env.ctx, SelectQuery::FromBox(STBox(env.nyc_extent, env.nyc_range)), options);
  auto selected = selector.Select(env.nyc[1].plain_dir);
  ST4ML_CHECK(selected.ok());
  auto events = ParseEvents(*selected);
  auto structure = std::make_shared<const SpatialStructure>(
      SpatialStructure::Grid(env.nyc_extent, 32, 32));
  auto count_cell = [](const std::vector<STEvent>& arr) {
    return static_cast<int64_t>(arr.size());
  };

  env.ctx->ResetMetrics();
  int64_t total_broadcast = 0;
  double t_broadcast = TimeIt([&] {
    Event2SmConverter<STEvent> converter(structure);
    SpatialMap<int64_t> merged = CollectAndMerge(
        MapValue(converter.Convert(events), count_cell),
        static_cast<int64_t>(0), [](int64_t a, int64_t b) { return a + b; });
    for (size_t i = 0; i < merged.size(); ++i) total_broadcast += merged.value(i);
  });
  table.AddRow({"broadcast structure (ST4ML)", FmtSeconds(t_broadcast),
                FmtCount(env.ctx->MetricsSnapshot().shuffle_records()),
                FmtCount(env.ctx->MetricsSnapshot().broadcasts())});

  env.ctx->ResetMetrics();
  int64_t total_shuffle = 0;
  double t_shuffle = TimeIt([&] {
    SpatialMap<int64_t> merged = ConvertToSpatialMapByShuffle(
        events, structure, [](const std::vector<STEvent>& arr) {
          return static_cast<int64_t>(arr.size());
        });
    for (size_t i = 0; i < merged.size(); ++i) total_shuffle += merged.value(i);
  });
  table.AddRow({"shuffle by cell (rejected)", FmtSeconds(t_shuffle),
                FmtCount(env.ctx->MetricsSnapshot().shuffle_records()),
                FmtCount(env.ctx->MetricsSnapshot().broadcasts())});
  table.Print();
  ST4ML_CHECK(total_broadcast == total_shuffle)
      << "designs disagree: " << total_broadcast << " vs " << total_shuffle;
}

void AblateOperatorChoice(const BenchEnv& env) {
  std::printf("\n--- (3) reduceByKey vs groupByKey (§2.2) ---\n");
  TablePrinter table({"operator", "time", "shuffled records"});

  SelectorOptions options;
  options.partition_after_select = false;
  Selector<EventRecord> selector(
      env.ctx, SelectQuery::FromBox(STBox(env.nyc_extent, env.nyc_range)), options);
  auto events = selector.Select(env.nyc[2].plain_dir);
  ST4ML_CHECK(events.ok());
  auto keyed = events->Map([](const EventRecord& r) {
    return std::pair<int64_t, int64_t>(r.time / 3600, 1);
  });

  env.ctx->ResetMetrics();
  double t_reduce = TimeIt([&] {
    auto reduced = TryReduceByKey<int64_t, int64_t>(
        keyed, [](const int64_t& a, const int64_t& b) { return a + b; });
    ST4ML_CHECK(reduced.ok());
    reduced->Count();
  });
  table.AddRow({"reduceByKey(_+_)", FmtSeconds(t_reduce),
                FmtCount(env.ctx->MetricsSnapshot().shuffle_records())});

  env.ctx->ResetMetrics();
  double t_group = TimeIt([&] {
    auto grouped = TryGroupByKey<int64_t, int64_t>(keyed);
    ST4ML_CHECK(grouped.ok());
    grouped
        ->Map([](const std::pair<int64_t, std::vector<int64_t>>& kv) {
          int64_t sum = 0;
          for (int64_t v : kv.second) sum += v;
          return std::pair<int64_t, int64_t>(kv.first, sum);
        })
        .Count();
  });
  table.AddRow({"groupByKey.mapValues(_.sum)", FmtSeconds(t_group),
                FmtCount(env.ctx->MetricsSnapshot().shuffle_records())});
  table.Print();
}

void AblateInMemoryIndex(const BenchEnv& env) {
  std::printf("\n--- (4) per-partition R-tree filtering vs linear scan (§3.1) ---\n");
  std::printf("the Selector's `index` toggle, selective queries\n");
  TablePrinter table({"filtering", "events", "trajectories"});
  auto run = [&](bool use_rtree) {
    double total_e = 0, total_t = 0;
    for (const STBox& q : MakeShapedQueries(env.nyc_extent, env.nyc_range,
                                            0.25, 7 * 86400, 4, 21)) {
      SelectorOptions options;
      options.partition_after_select = false;
      options.use_rtree = use_rtree;
      Selector<EventRecord> selector(env.ctx, SelectQuery::FromBox(q), options);
      total_e += TimeIt([&] {
        auto r = selector.Select(env.nyc[2].plain_dir);
        ST4ML_CHECK(r.ok());
      });
    }
    for (const STBox& q : MakeShapedQueries(env.porto_extent, env.porto_range,
                                            0.25, 7 * 86400, 4, 22)) {
      SelectorOptions options;
      options.partition_after_select = false;
      options.use_rtree = use_rtree;
      Selector<TrajRecord> selector(env.ctx, SelectQuery::FromBox(q), options);
      total_t += TimeIt([&] {
        auto r = selector.Select(env.porto[2].plain_dir);
        ST4ML_CHECK(r.ok());
      });
    }
    return std::pair<double, double>(total_e, total_t);
  };
  auto [rtree_e, rtree_t] = run(true);
  auto [linear_e, linear_t] = run(false);
  table.AddRow({"3-d R-tree (ST4ML)", FmtSeconds(rtree_e), FmtSeconds(rtree_t)});
  table.AddRow({"linear scan", FmtSeconds(linear_e), FmtSeconds(linear_t)});
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace st4ml

int main() {
  using namespace st4ml::bench;
  const BenchEnv& env = GetBenchEnv();
  std::printf("== Ablations of ST4ML's design choices ==\n");
  AblateSelectionOrder(env);
  AblateConversionDesign(env);
  AblateOperatorChoice(env);
  AblateInMemoryIndex(env);
  return 0;
}
