// Table 6: efficiency of the T-STR partitioner versus the original 2-d STR
// in the two pipeline roles the paper measures:
//   (1) index construction for data loading — 10 random ST selections over
//       on-disk layouts built with each partitioner;
//   (2) companion feature extraction — partition-with-duplication followed by
//       partition-local companion search (pairs within 1 km / 15 min).
//
// Expected shape (paper): T-STR is 4.6x/1.6x faster on loading (events/
// trajectories) and 2x/7x faster on companion extraction, because temporal
// slicing both prunes irrelevant partitions and shrinks the per-partition
// pair-search space.

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "bench_common.h"
#include "conversion/parse.h"
#include "extraction/event_extractors.h"
#include "extraction/traj_extractors.h"
#include "partition/st_partition_ops.h"
#include "partition/str_partitioner.h"
#include "selection/on_disk_index.h"
#include "selection/selector.h"

namespace st4ml {
namespace bench {
namespace {

constexpr int kPartitions = 64;
constexpr double kCompanionDistM = 1000.0;
constexpr int64_t kCompanionDtS = 15 * 60;

template <typename RecordT>
std::vector<RecordT> LoadRecords(const BenchEnv& env, const ScaledDirs& dirs,
                                 const Mbr& extent, const Duration& range) {
  SelectorOptions options;
  options.partition_after_select = false;
  Selector<RecordT> selector(env.ctx, SelectQuery::FromBox(STBox(extent, range)), options);
  auto data = selector.Select(dirs.plain_dir);
  ST4ML_CHECK(data.ok()) << data.status().ToString();
  return data->Collect();
}

/// Builds an on-disk layout with `partitioner` and times 10 random
/// selections against it.
template <typename RecordT>
double TimeSelections(const BenchEnv& env, std::vector<RecordT> records,
                      STPartitioner* partitioner, const std::string& dir,
                      const Mbr& extent, const Duration& range) {
  auto data =
      Dataset<RecordT>::Parallelize(env.ctx, std::move(records), 16);
  ST4ML_CHECK(BuildOnDiskIndex(data, partitioner, dir, dir + "/meta").ok());
  // Weekly-scale temporal windows over a third of the city — the query
  // profile §4.1's motivating example argues T-STR should serve.
  auto queries = MakeShapedQueries(extent, range, 0.35, 7 * 86400, 10, 4242);
  auto run_batch = [&] {
    for (const STBox& q : queries) {
      SelectorOptions options;
      options.partition_after_select = false;
      Selector<RecordT> selector(env.ctx, SelectQuery::FromBox(q), options);
      auto result = selector.Select(dir, dir + "/meta");
      ST4ML_CHECK(result.ok()) << result.status().ToString();
    }
  };
  // Best of 3 batches (first run doubles as page-cache warmup).
  double best = 1e30;
  for (int r = 0; r < 3; ++r) best = std::min(best, TimeIt(run_batch));
  return best;
}

/// Partition-with-duplication + partition-local companion extraction.
double TimeEventCompanions(const Dataset<STEvent>& events,
                           STPartitioner* partitioner) {
  return TimeIt([&] {
    STPartitionOptions options;
    options.duplicate = true;
    auto partitioned = TrySTPartition(
        events, partitioner,
        [](const STEvent& e) { return e.ComputeSTBox(); },
        [](const STEvent& e) { return static_cast<uint64_t>(e.data.id); },
        options);
    ST4ML_CHECK(partitioned.ok());
    ExtractEventCompanions(*partitioned, kCompanionDistM, kCompanionDtS,
                           [](const STEvent& e) { return e.data.id; })
        .Count();
  });
}

double TimeTrajCompanions(const Dataset<STTrajectory>& trajs,
                          STPartitioner* partitioner) {
  return TimeIt([&] {
    STPartitionOptions options;
    options.duplicate = true;
    auto partitioned = TrySTPartition(
        trajs, partitioner,
        [](const STTrajectory& t) { return t.ComputeSTBox(); },
        [](const STTrajectory& t) { return static_cast<uint64_t>(t.data); },
        options);
    ST4ML_CHECK(partitioned.ok());
    ExtractTrajCompanions(*partitioned, kCompanionDistM, kCompanionDtS,
                          [](const STTrajectory& t) { return t.data; })
        .Count();
  });
}

}  // namespace
}  // namespace bench
}  // namespace st4ml

int main() {
  namespace fs = std::filesystem;
  using namespace st4ml::bench;
  using st4ml::STRPartitioner;
  using st4ml::TSTRPartitioner;
  const BenchEnv& env = GetBenchEnv();
  const std::string scratch =
      st4ml::GetEnvString("ST4ML_BENCH_DATA", "bench_data") + "/tstr_scratch";
  fs::remove_all(scratch);

  std::printf("== Table 6: T-STR vs 2-d STR ==\n");
  std::printf("%d partitions; companions within (1 km, 15 min)\n\n", kPartitions);

  // A subset keeps the quadratic-ish companion search tractable.
  auto events =
      LoadRecords<st4ml::EventRecord>(env, env.nyc[0], env.nyc_extent, env.nyc_range);
  if (events.size() > 30000) events.resize(30000);
  auto trajs = LoadRecords<st4ml::TrajRecord>(env, env.porto[0],
                                              env.porto_extent, env.porto_range);
  if (trajs.size() > 1200) trajs.resize(1200);

  TablePrinter table({"partitioner", "loading: events", "loading: trajs",
                      "companion: events", "companion: trajs"});

  auto event_ds = st4ml::ParseEvents(st4ml::Dataset<st4ml::EventRecord>::Parallelize(
      env.ctx, events, 16));
  auto traj_ds = st4ml::ParseTrajs(st4ml::Dataset<st4ml::TrajRecord>::Parallelize(
      env.ctx, trajs, 16));

  {
    STRPartitioner str_e(kPartitions), str_t(kPartitions);
    STRPartitioner str_ce(kPartitions), str_ct(kPartitions);
    double load_e = TimeSelections(env, events, &str_e, scratch + "/str_e",
                                   env.nyc_extent, env.nyc_range);
    double load_t = TimeSelections(env, trajs, &str_t, scratch + "/str_t",
                                   env.porto_extent, env.porto_range);
    double comp_e = TimeEventCompanions(event_ds, &str_ce);
    double comp_t = TimeTrajCompanions(traj_ds, &str_ct);
    table.AddRow({"2-d STR", FmtSeconds(load_e), FmtSeconds(load_t),
                  FmtSeconds(comp_e), FmtSeconds(comp_t)});
  }
  {
    int g = 8;  // gt = gs = sqrt(kPartitions)
    TSTRPartitioner tstr_e(g, g), tstr_t(g, g), tstr_ce(g, g), tstr_ct(g, g);
    double load_e = TimeSelections(env, events, &tstr_e, scratch + "/tstr_e",
                                   env.nyc_extent, env.nyc_range);
    double load_t = TimeSelections(env, trajs, &tstr_t, scratch + "/tstr_t",
                                   env.porto_extent, env.porto_range);
    double comp_e = TimeEventCompanions(event_ds, &tstr_ce);
    double comp_t = TimeTrajCompanions(traj_ds, &tstr_ct);
    table.AddRow({"T-STR", FmtSeconds(load_e), FmtSeconds(load_t),
                  FmtSeconds(comp_e), FmtSeconds(comp_t)});
  }
  table.Print();
  fs::remove_all(scratch);
  return 0;
}
