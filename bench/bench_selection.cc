// Figure 5: processing time (a–b) and memory usage (c–d) of loading and
// selecting event and trajectory data — ST4ML's on-disk metadata index
// versus the native full-scan layout, across query-range fractions.
//
// Expected shape (paper): the index saves up to ~60% of time; savings are
// larger at small query ranges; 42–98% of irrelevant data is pruned; the
// curves converge as the range fraction approaches 1.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "selection/selector.h"

namespace st4ml {
namespace bench {
namespace {

template <typename RecordT>
void RunSweep(const BenchEnv& env, const char* dataset_name,
              const ScaledDirs& dirs, const Mbr& extent, const Duration& range) {
  std::printf("\n--- %s: loading + selection (3 queries per range) ---\n",
              dataset_name);
  TablePrinter table({"range frac", "native", "indexed", "saving",
                      "native loaded", "indexed loaded", "selected",
                      "pruned"});
  const int repeat = static_cast<int>(GetEnvInt("ST4ML_SEL_REPEAT", 3));
  // Warm the page cache once so both layouts read from memory-backed files,
  // like the paper's repeated-runs-average methodology.
  {
    SelectorOptions options;
    options.partition_after_select = false;
    Selector<RecordT> warm(env.ctx, SelectQuery::FromBox(STBox(extent, range)), options);
    (void)warm.Select(dirs.plain_dir);
    (void)warm.Select(dirs.st4ml_dir, dirs.st4ml_meta);
  }
  for (double fraction : {0.05, 0.1, 0.2, 0.5, 1.0}) {
    auto queries = MakeQueries(extent, range, fraction, 3, 777);
    double t_native = 0, t_indexed = 0;
    uint64_t native_loaded = 0, indexed_loaded = 0, selected_bytes = 0;
    for (const STBox& q : queries) {
      SelectorOptions options;
      options.partition_after_select = false;

      // Noise-robust estimate: best of `repeat` runs per query.
      Selector<RecordT> native(env.ctx, SelectQuery::FromBox(q), options);
      double best_native = 1e30;
      for (int r = 0; r < repeat; ++r) {
        best_native = std::min(best_native, TimeIt([&] {
          auto result = native.Select(dirs.plain_dir);
          ST4ML_CHECK(result.ok()) << result.status().ToString();
        }));
      }
      t_native += best_native;
      native_loaded += native.stats().bytes_loaded;

      Selector<RecordT> indexed(env.ctx, SelectQuery::FromBox(q), options);
      double best_indexed = 1e30;
      for (int r = 0; r < repeat; ++r) {
        best_indexed = std::min(best_indexed, TimeIt([&] {
          auto result = indexed.Select(dirs.st4ml_dir, dirs.st4ml_meta);
          ST4ML_CHECK(result.ok()) << result.status().ToString();
        }));
      }
      t_indexed += best_indexed;
      indexed_loaded += indexed.stats().bytes_loaded;
      selected_bytes += indexed.stats().bytes_selected;
    }
    double saving = 1.0 - t_indexed / t_native;
    uint64_t native_irrelevant = native_loaded - selected_bytes;
    uint64_t indexed_irrelevant =
        indexed_loaded > selected_bytes ? indexed_loaded - selected_bytes : 0;
    double pruned = native_irrelevant == 0
                        ? 0.0
                        : 1.0 - static_cast<double>(indexed_irrelevant) /
                                    static_cast<double>(native_irrelevant);
    char frac_buf[16], saving_buf[16], pruned_buf[16];
    std::snprintf(frac_buf, sizeof(frac_buf), "%.2f", fraction);
    std::snprintf(saving_buf, sizeof(saving_buf), "%.0f%%", saving * 100);
    std::snprintf(pruned_buf, sizeof(pruned_buf), "%.0f%%", pruned * 100);
    table.AddRow({frac_buf, FmtSeconds(t_native), FmtSeconds(t_indexed),
                  saving_buf, FmtMb(native_loaded), FmtMb(indexed_loaded),
                  FmtMb(selected_bytes), pruned_buf});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace st4ml

int main() {
  using namespace st4ml::bench;
  const BenchEnv& env = GetBenchEnv();
  std::printf("== Fig. 5: on-disk indexing with metadata ==\n");
  std::printf("T-STR partitioned on-disk layout vs native full scan\n");
  RunSweep<st4ml::EventRecord>(env, "NYC events (Fig. 5a/5c)", env.nyc[2],
                               env.nyc_extent, env.nyc_range);
  RunSweep<st4ml::TrajRecord>(env, "Porto trajectories (Fig. 5b/5d)",
                              env.porto[2], env.porto_extent, env.porto_range);
  std::printf(
      "\n'pruned' = share of irrelevant (loaded-but-unselected) data the\n"
      "index avoided loading, the shaded area of Fig. 5c-d.\n");
  return 0;
}
