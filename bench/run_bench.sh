#!/usr/bin/env sh
# Runs the shuffle microbenchmark and records the repo's perf trajectory in
# BENCH_shuffle.json (one JSON object per line: op, records, partitions,
# records/sec for the bucketed and legacy shuffles, speedup, and the
# output/metrics equivalence checks). bench_shuffle exits non-zero on any
# bucketed-vs-legacy mismatch, so this doubles as a correctness gate.
#
# Usage: bench/run_bench.sh [path/to/bench_shuffle] [extra bench flags...]
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
bench_bin="${1:-$repo_root/build/bench/bench_shuffle}"
[ $# -gt 0 ] && shift

if [ ! -x "$bench_bin" ]; then
  echo "bench_shuffle not found at $bench_bin — build it first:" >&2
  echo "  cmake --build build --target bench_shuffle" >&2
  exit 1
fi

out="$repo_root/BENCH_shuffle.json"
tmp="$out.tmp.$$"
# POSIX sh has no pipefail, so `bench | tee` would swallow a bench failure
# and leave a silently-truncated BENCH_shuffle.json. Write to a temp file,
# check the bench's own exit status, and only then publish.
"$bench_bin" "$@" > "$tmp" || {
  status=$?
  rm -f "$tmp"
  echo "bench_shuffle failed (exit $status); $out left untouched" >&2
  exit "$status"
}
mv "$tmp" "$out"
cat "$out"
echo "wrote $out" >&2
