#!/usr/bin/env sh
# Runs a JSON-emitting microbench and records the repo's perf trajectory in
# BENCH_<name>.json at the repo root (one JSON object per line). The
# registered benches double as correctness gates — bench_shuffle exits
# non-zero on any bucketed-vs-legacy mismatch, bench_cache on any
# cached-vs-uncached output divergence — so a published BENCH file always
# reflects a run whose outputs checked out.
#
# Usage: bench/run_bench.sh [path/to/bench_binary [extra bench flags...]]
# With no arguments, runs every registered bench from ./build/bench.
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

run_one() {
  bench_bin="$1"
  shift
  if [ ! -x "$bench_bin" ]; then
    name="$(basename "$bench_bin")"
    echo "$name not found at $bench_bin — build it first:" >&2
    echo "  cmake --build build --target $name" >&2
    exit 1
  fi
  suffix="$(basename "$bench_bin")"
  suffix="${suffix#bench_}"
  out="$repo_root/BENCH_${suffix}.json"
  tmp="$out.tmp.$$"
  # POSIX sh has no pipefail, so `bench | tee` would swallow a bench failure
  # and leave a silently-truncated BENCH file. Write to a temp file, check
  # the bench's own exit status, and only then publish.
  "$bench_bin" "$@" > "$tmp" || {
    status=$?
    rm -f "$tmp"
    echo "$(basename "$bench_bin") failed (exit $status); $out left untouched" >&2
    exit "$status"
  }
  mv "$tmp" "$out"
  cat "$out"
  echo "wrote $out" >&2
}

if [ $# -eq 0 ]; then
  run_one "$repo_root/build/bench/bench_shuffle"
  run_one "$repo_root/build/bench/bench_cache"
  run_one "$repo_root/build/bench/bench_serve"
  run_one "$repo_root/build/bench/bench_simd"
  run_one "$repo_root/build/bench/bench_coldstart"
  run_one "$repo_root/build/bench/bench_ingest"
  run_one "$repo_root/build/bench/bench_scaleout"
else
  run_one "$@"
fi
