// Microbenchmarks (google-benchmark) for the primitives the macro benches
// are built from: geometry predicates, R-tree build/query, partitioner
// assignment, the engine's shuffle, and string-attribute parsing (the
// GeoObject reformatting cost the baselines pay per record).

#include <benchmark/benchmark.h>

#include "baselines/geo_object.h"
#include "common/rng.h"
#include "engine/pair_ops.h"
#include "geometry/geometry.h"
#include "index/rtree.h"
#include "partition/str_partitioner.h"

namespace st4ml {
namespace {

std::vector<STBox> RandomBoxes(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<STBox> boxes;
  boxes.reserve(n);
  for (int i = 0; i < n; ++i) {
    double x = rng.Uniform(0, 100), y = rng.Uniform(0, 100);
    int64_t t = rng.UniformInt(0, 86400);
    boxes.push_back(
        STBox(Mbr(x, y, x + 0.5, y + 0.5), Duration(t, t + 600)));
  }
  return boxes;
}

void BM_HaversineMeters(benchmark::State& state) {
  Point a(-73.98, 40.75), b(-73.95, 40.78);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HaversineMeters(a, b));
  }
}
BENCHMARK(BM_HaversineMeters);

void BM_PolygonContainsPoint(benchmark::State& state) {
  Rng rng(1);
  std::vector<Point> ring;
  int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    double angle = 2 * 3.14159265 * i / n;
    ring.push_back(Point(std::cos(angle), std::sin(angle)));
  }
  Polygon poly(ring);
  Point p(0.3, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(poly.ContainsPoint(p));
  }
}
BENCHMARK(BM_PolygonContainsPoint)->Arg(4)->Arg(16)->Arg(64);

void BM_SegmentsIntersect(benchmark::State& state) {
  Point a1(0, 0), a2(1, 1), b1(0, 1), b2(1, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SegmentsIntersect(a1, a2, b1, b2));
  }
}
BENCHMARK(BM_SegmentsIntersect);

void BM_RTreeBuild(benchmark::State& state) {
  auto boxes = RandomBoxes(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    RTree<STBox> tree;
    tree.Build(boxes);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RTreeQuery(benchmark::State& state) {
  auto boxes = RandomBoxes(static_cast<int>(state.range(0)), 3);
  RTree<STBox> tree;
  tree.Build(boxes);
  Rng rng(4);
  for (auto _ : state) {
    double x = rng.Uniform(0, 95), y = rng.Uniform(0, 95);
    int64_t t = rng.UniformInt(0, 80000);
    STBox query(Mbr(x, y, x + 5, y + 5), Duration(t, t + 3600));
    benchmark::DoNotOptimize(tree.Query(query).size());
  }
}
BENCHMARK(BM_RTreeQuery)->Arg(10000)->Arg(100000);

void BM_TstrAssign(benchmark::State& state) {
  auto boxes = RandomBoxes(20000, 5);
  TSTRPartitioner partitioner(8, 8);
  partitioner.Train(boxes);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        partitioner.Assign(boxes[i % boxes.size()], false, i));
    ++i;
  }
}
BENCHMARK(BM_TstrAssign);

void BM_ShuffleReduceByKey(benchmark::State& state) {
  auto ctx = ExecutionContext::Create(2);
  std::vector<std::pair<int, int>> data;
  int n = static_cast<int>(state.range(0));
  data.reserve(n);
  for (int i = 0; i < n; ++i) data.emplace_back(i % 128, 1);
  auto ds = Dataset<std::pair<int, int>>::Parallelize(ctx, data, 8);
  for (auto _ : state) {
    auto reduced = TryReduceByKey<int, int>(
        ds, [](const int& a, const int& b) { return a + b; });
    benchmark::DoNotOptimize(reduced->Count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ShuffleReduceByKey)->Arg(10000)->Arg(100000);

void BM_GeoObjectTimeParse(benchmark::State& state) {
  // The per-use string parsing the baselines pay (Table 1's reformatting).
  TrajRecord record;
  record.id = 7;
  for (int i = 0; i < 60; ++i) {
    record.points.push_back(TrajPointRecord{-8.6 + i * 1e-4, 41.1, 1000L + i * 15});
  }
  GeoObject o = GeoObjectFromTraj(record);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseGeoObjectTimes(o).size());
  }
}
BENCHMARK(BM_GeoObjectTimeParse);

void BM_WktRoundTrip(benchmark::State& state) {
  Geometry g(Point(-8.618643, 41.141412));
  std::string wkt = ToWkt(g);
  for (auto _ : state) {
    Geometry parsed;
    benchmark::DoNotOptimize(FromWkt(wkt, &parsed));
  }
}
BENCHMARK(BM_WktRoundTrip);

}  // namespace
}  // namespace st4ml

BENCHMARK_MAIN();
