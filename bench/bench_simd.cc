// SIMD kernel benchmark (ISSUE 7): times every registered backend against
// the scalar reference on the four batch kernels (ST-box filter, hash
// combine, distance, min/max/sum reduction) at 1M records, then a warm
// cached Selection end-to-end per backend. Every timed run is also a
// correctness gate: SIMD outputs must match scalar BIT-for-bit (the
// backend contract the property harness pins) and warm-select checksums
// must be identical across backends — any divergence exits non-zero, so a
// published BENCH_simd.json always reflects verified outputs. The box
// filter additionally gates best-SIMD >= 2x scalar at 1M records.
// Emits one JSON object per line; bench/run_bench.sh writes it to
// BENCH_simd.json.
//
// Usage: bench_simd [--records=N] [--reps=R]

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "st4ml.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;
using accel::BackendRegistry;
using accel::BoxFilterQuery;
using accel::EnvelopeColumns;
using accel::KernelBackend;

struct KernelInputs {
  EnvelopeColumns cols;
  std::vector<double> ax, ay, bx, by;
  std::vector<uint64_t> h1, h2;
};

KernelInputs MakeInputs(size_t n, uint64_t seed) {
  Rng rng(seed);
  KernelInputs in;
  in.cols.Reserve(n);
  in.ax.resize(n);
  in.ay.resize(n);
  in.bx.resize(n);
  in.by.resize(n);
  in.h1.resize(n);
  in.h2.resize(n);
  for (size_t i = 0; i < n; ++i) {
    double x = rng.Uniform(0, 100), y = rng.Uniform(0, 100);
    int64_t t = rng.UniformInt(0, 100000);
    in.cols.Append(STBox(Mbr(x, y, x + rng.Uniform(0, 2), y + rng.Uniform(0, 2)),
                         Duration(t, t + rng.UniformInt(0, 600))));
    in.ax[i] = rng.Uniform(-180, 180);
    in.ay[i] = rng.Uniform(-85, 85);
    in.bx[i] = in.ax[i] + rng.Uniform(-0.01, 0.01);
    in.by[i] = in.ay[i] + rng.Uniform(-0.01, 0.01);
    in.h1[i] = rng.Next();
    in.h2[i] = rng.Next();
  }
  return in;
}

bool SameBits(const double* a, const double* b, size_t n) {
  return std::memcmp(a, b, n * sizeof(double)) == 0;
}

/// Times `op` `reps` times, returns the best wall time.
template <typename Op>
double Best(int reps, Op op) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    op();
    double secs = watch.ElapsedSeconds();
    if (r == 0 || secs < best) best = secs;
  }
  return best;
}

void EmitKernelRow(const char* kernel, const char* backend, size_t records,
                   double seconds, double scalar_seconds, bool identical) {
  double speedup = seconds > 0 ? scalar_seconds / seconds : 0;
  std::cout << "{\"kernel\":\"" << kernel << "\""
            << ",\"backend\":\"" << backend << "\""
            << ",\"records\":" << records << ",\"seconds\":" << seconds
            << ",\"records_per_sec\":"
            << (seconds > 0 ? static_cast<double>(records) / seconds : 0)
            << ",\"speedup_vs_scalar\":" << speedup
            << ",\"output_identical\":" << (identical ? "true" : "false")
            << "}" << std::endl;
  if (!identical) {
    std::cerr << "MISMATCH: kernel " << kernel << " backend " << backend
              << " diverged from scalar\n";
    std::exit(1);
  }
}

uint64_t Fnv1a(uint64_t hash, const void* data, size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t Checksum(const std::vector<EventRecord>& records) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const EventRecord& r : records) {
    hash = Fnv1a(hash, &r.id, sizeof(r.id));
    hash = Fnv1a(hash, &r.x, sizeof(r.x));
    hash = Fnv1a(hash, &r.y, sizeof(r.y));
    hash = Fnv1a(hash, &r.time, sizeof(r.time));
    hash = Fnv1a(hash, r.attr.data(), r.attr.size());
  }
  return hash;
}

std::vector<EventRecord> MakeEvents(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<EventRecord> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    EventRecord r;
    r.id = static_cast<int64_t>(i);
    r.x = rng.Uniform(0, 100);
    r.y = rng.Uniform(0, 100);
    r.time = rng.UniformInt(0, 100000);
    r.attr = std::string(static_cast<size_t>(rng.UniformInt(4, 24)), 'x');
    events.push_back(std::move(r));
  }
  return events;
}

int Run(int argc, char** argv) {
  size_t records = 1000000;
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--records=", 0) == 0) {
      records = std::stoul(flag.substr(10));
    } else if (flag.rfind("--reps=", 0) == 0) {
      reps = std::atoi(flag.substr(7).c_str());
    } else {
      std::cerr << "usage: bench_simd [--records=N] [--reps=R]\n";
      return 2;
    }
  }

  BackendRegistry& registry = BackendRegistry::Instance();
  const KernelBackend* scalar = registry.Find("scalar");
  ST4ML_CHECK(scalar != nullptr);

  KernelInputs in = MakeInputs(records, /*seed=*/7);
  // ~half the staged boxes: the filter branch pattern matters for SIMD.
  BoxFilterQuery query{0, 0, 50, 100, 0, 100000};

  std::vector<uint8_t> ref_hits(records), hits(records);
  std::vector<uint64_t> ref_hash(records), hash(records);
  std::vector<double> ref_hav(records), ref_euc(records), dist(records);
  double ref_mms[3], mms[3];

  double scalar_filter = 0, best_simd_filter_speedup = 0;
  struct KernelTimes {
    double filter = 0, hash = 0, haversine = 0, euclidean = 0, reduce = 0;
  } scalar_times;

  for (const KernelBackend* backend : registry.Available()) {
    bool is_scalar = backend == scalar;
    const char* name = backend->name();
    auto view = in.cols.View();

    double t = Best(reps, [&] {
      backend->FilterBoxes(query, view, (is_scalar ? ref_hits : hits).data());
    });
    bool ok = is_scalar ||
              std::memcmp(ref_hits.data(), hits.data(), records) == 0;
    if (is_scalar) {
      scalar_times.filter = scalar_filter = t;
    } else if (t > 0) {
      double speedup = scalar_filter / t;
      if (speedup > best_simd_filter_speedup) best_simd_filter_speedup = speedup;
    }
    EmitKernelRow("box_filter", name, records, t, scalar_times.filter, ok);

    t = Best(reps, [&] {
      backend->CombineHashes(in.h1.data(), in.h2.data(), records,
                             (is_scalar ? ref_hash : hash).data());
    });
    ok = is_scalar || ref_hash == hash;
    if (is_scalar) scalar_times.hash = t;
    EmitKernelRow("hash_combine", name, records, t, scalar_times.hash, ok);

    t = Best(reps, [&] {
      backend->HaversineMeters(in.ax.data(), in.ay.data(), in.bx.data(),
                               in.by.data(), records,
                               (is_scalar ? ref_hav : dist).data());
    });
    ok = is_scalar || SameBits(ref_hav.data(), dist.data(), records);
    if (is_scalar) scalar_times.haversine = t;
    EmitKernelRow("haversine", name, records, t, scalar_times.haversine, ok);

    t = Best(reps, [&] {
      backend->EuclideanDistance(in.ax.data(), in.ay.data(), in.bx.data(),
                                 in.by.data(), records,
                                 (is_scalar ? ref_euc : dist).data());
    });
    ok = is_scalar || SameBits(ref_euc.data(), dist.data(), records);
    if (is_scalar) scalar_times.euclidean = t;
    EmitKernelRow("euclidean", name, records, t, scalar_times.euclidean, ok);

    t = Best(reps, [&] {
      double* out = is_scalar ? ref_mms : mms;
      backend->MinMaxSum(in.ax.data(), records, &out[0], &out[1], &out[2]);
    });
    ok = is_scalar || SameBits(ref_mms, mms, 3);
    if (is_scalar) scalar_times.reduce = t;
    EmitKernelRow("min_max_sum", name, records, t, scalar_times.reduce, ok);
  }

  // End-to-end: a warm cached Selection (columnar fast path) per backend.
  // Cache is primed once per backend so the timed pass filters the cached
  // columns directly; checksums must agree across backends.
  size_t e2e_records = std::min<size_t>(records, 200000);
  std::string dir = (fs::temp_directory_path() /
                     ("st4ml_bench_simd_" + std::to_string(::getpid())))
                        .string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::string meta = dir + "/index.meta";
  {
    auto ctx = ExecutionContext::Create();
    auto data = Dataset<EventRecord>::Parallelize(
        ctx, MakeEvents(e2e_records, 42), 16);
    TSTRPartitioner partitioner(3, 3);
    Status staged = BuildOnDiskIndex(data, &partitioner, dir, meta);
    if (!staged.ok()) {
      std::cerr << "bench_simd: " << staged.ToString() << "\n";
      return 1;
    }
  }
  STBox e2e_query(Mbr(0, 0, 100, 60), Duration(0, 100000));
  uint64_t reference_sum = 0;
  double scalar_warm = 0;
  for (const KernelBackend* backend : registry.Available()) {
    Status forced = registry.ForceBackend(backend->name());
    ST4ML_CHECK(forced.ok());
    auto ctx = ExecutionContext::Create();
    DatasetCache::Options cache_options;
    cache_options.budget_bytes = DatasetCache::kUnbounded;
    ctx->ConfigureCache(std::move(cache_options));

    Selector<EventRecord> prime(ctx, SelectQuery::FromBox(e2e_query));
    auto cold = prime.Select(dir, meta);
    if (!cold.ok()) {
      std::cerr << "bench_simd: " << cold.status().ToString() << "\n";
      return 1;
    }
    uint64_t sum = 0;
    double warm_seconds = Best(reps, [&] {
      Selector<EventRecord> warm(ctx, SelectQuery::FromBox(e2e_query));
      auto selected = warm.Select(dir, meta);
      ST4ML_CHECK(selected.ok());
      sum = Checksum(std::move(*selected).Collect());
    });
    bool is_scalar = backend == scalar;
    if (is_scalar) {
      reference_sum = sum;
      scalar_warm = warm_seconds;
    }
    double speedup = warm_seconds > 0 ? scalar_warm / warm_seconds : 0;
    bool identical = sum == reference_sum;
    std::cout << "{\"e2e\":\"warm_select\",\"backend\":\"" << backend->name()
              << "\",\"records\":" << e2e_records
              << ",\"seconds\":" << warm_seconds
              << ",\"speedup_vs_scalar\":" << speedup
              << ",\"output_identical\":" << (identical ? "true" : "false")
              << "}" << std::endl;
    if (!identical) {
      std::cerr << "MISMATCH: warm select under backend " << backend->name()
                << " changed the selected output\n";
      return 1;
    }
  }
  ST4ML_CHECK(registry.ForceBackend("").ok());
  fs::remove_all(dir);

  // Acceptance gate: on a machine with any SIMD backend, the best one must
  // beat scalar >= 2x on the box filter at 1M records. Smaller --records
  // runs (e.g. the CI correctness smoke on shared hardware) skip the perf
  // gate but keep every bit-identity check above.
  bool has_simd = registry.Available().size() > 1;
  bool gated = has_simd && records >= 1000000;
  std::cout << "{\"gate\":\"box_filter_speedup\",\"records\":" << records
            << ",\"best_simd_speedup\":" << best_simd_filter_speedup
            << ",\"required\":2.0,\"simd_available\":"
            << (has_simd ? "true" : "false")
            << ",\"enforced\":" << (gated ? "true" : "false") << ",\"pass\":"
            << (!gated || best_simd_filter_speedup >= 2.0 ? "true" : "false")
            << "}" << std::endl;
  if (gated && best_simd_filter_speedup < 2.0) {
    std::cerr << "GATE FAILED: best SIMD box filter speedup "
              << best_simd_filter_speedup << " < 2.0\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace st4ml

int main(int argc, char** argv) { return st4ml::Run(argc, argv); }
