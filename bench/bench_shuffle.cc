// Shuffle microbenchmark: the bucketed map-side shuffle (src/engine) vs the
// seed's target-side-rescan shuffle, preserved verbatim below as `legacy::`.
// Sweeps record count x partition count for ReduceByKey, GroupByKey and
// Repartition, checks the two implementations agree byte-for-byte (collected
// output AND EngineMetrics shuffle accounting), and emits one JSON object
// per line so perf PRs leave a machine-readable trajectory
// (bench/run_bench.sh writes it to BENCH_shuffle.json).
//
// Usage: bench_shuffle [--records N,N,...] [--parts N,N,...] [--reps R]

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "st4ml.h"

namespace st4ml {
namespace legacy {

// The pre-bucketing implementations: every target partition rescans ALL
// shuffled records and filters by hash — O(parts x records) target-side
// work. Kept here (not in the library) as the comparison baseline.

template <typename K, typename V, typename Reduce,
          typename Hash = std::hash<K>>
Dataset<std::pair<K, V>> ReduceByKey(const Dataset<std::pair<K, V>>& ds,
                                     Reduce reduce) {
  size_t n = ds.num_partitions();
  if (n == 0) return ds;
  const auto& ctx = ds.context();

  std::vector<std::vector<std::pair<K, V>>> combined(n);
  ctx->RunParallel(n, [&](size_t p) {
    std::unordered_map<K, V, Hash> acc;
    for (const auto& [key, value] : ds.partition(p)) {
      auto it = acc.find(key);
      if (it == acc.end()) {
        acc.emplace(key, value);
      } else {
        it->second = reduce(it->second, value);
      }
    }
    combined[p].assign(acc.begin(), acc.end());
    internal::SortByKeyIfOrdered<K, V>(&combined[p]);
  });

  uint64_t records = 0;
  uint64_t bytes = 0;
  for (const auto& part : combined) {
    records += part.size();
    for (const auto& kv : part) bytes += ApproxShuffleBytes(kv);
  }
  internal::Counters(*ctx).AddShuffle(ShuffleOp::kReduceByKey, records,
                                      bytes);

  typename Dataset<std::pair<K, V>>::Partitions out(n);
  ctx->RunParallel(n, [&](size_t target) {
    std::unordered_map<K, V, Hash> acc;
    for (const auto& part : combined) {
      for (const auto& [key, value] : part) {
        if (Hash{}(key) % n != target) continue;
        auto it = acc.find(key);
        if (it == acc.end()) {
          acc.emplace(key, value);
        } else {
          it->second = reduce(it->second, value);
        }
      }
    }
    out[target].assign(acc.begin(), acc.end());
    internal::SortByKeyIfOrdered<K, V>(&out[target]);
  });
  return Dataset<std::pair<K, V>>::FromPartitions(ctx, std::move(out));
}

template <typename K, typename V, typename Hash = std::hash<K>>
Dataset<std::pair<K, std::vector<V>>> GroupByKey(
    const Dataset<std::pair<K, V>>& ds) {
  size_t n = ds.num_partitions();
  const auto& ctx = ds.context();
  if (n == 0) return Dataset<std::pair<K, std::vector<V>>>();

  uint64_t records = 0;
  uint64_t bytes = 0;
  for (size_t p = 0; p < n; ++p) {
    records += ds.partition(p).size();
    for (const auto& kv : ds.partition(p)) bytes += ApproxShuffleBytes(kv);
  }
  internal::Counters(*ctx).AddShuffle(ShuffleOp::kGroupByKey, records,
                                      bytes);

  typename Dataset<std::pair<K, std::vector<V>>>::Partitions out(n);
  ctx->RunParallel(n, [&](size_t target) {
    std::unordered_map<K, std::vector<V>, Hash> groups;
    for (size_t p = 0; p < n; ++p) {
      for (const auto& [key, value] : ds.partition(p)) {
        if (Hash{}(key) % n != target) continue;
        groups[key].push_back(value);
      }
    }
    out[target].assign(groups.begin(), groups.end());
    internal::SortByKeyIfOrdered<K, std::vector<V>>(&out[target]);
  });
  return Dataset<std::pair<K, std::vector<V>>>::FromPartitions(ctx,
                                                               std::move(out));
}

template <typename T>
Dataset<T> Repartition(const Dataset<T>& ds, size_t num_partitions) {
  const auto& ctx = ds.context();
  typename Dataset<T>::Partitions out(num_partitions);
  uint64_t records = 0;
  uint64_t bytes = 0;
  size_t next = 0;
  for (size_t p = 0; p < ds.num_partitions(); ++p) {
    for (const T& value : ds.partition(p)) {
      records += 1;
      bytes += ApproxShuffleBytes(value);
      out[next].push_back(value);
      next = (next + 1) % num_partitions;
    }
  }
  internal::Counters(*ctx).AddShuffle(ShuffleOp::kRepartition, records,
                                      bytes);
  return Dataset<T>::FromPartitions(ctx, std::move(out));
}

}  // namespace legacy

namespace {

using KV = std::pair<int64_t, int64_t>;
// The ST4ML-shaped shuffle key: (structure cell, time bin), hashed with
// PairHash. The legacy rescan hashes every record once PER TARGET, so
// composite keys are exactly where its O(parts x records) term bites.
using CellHourKey = std::pair<int64_t, int64_t>;

struct Measurement {
  double seconds = 0;
  uint64_t shuffle_records = 0;
  uint64_t shuffle_bytes = 0;
};

/// Times `op` (shuffle only — result comparison collects outside the timed
/// region) `reps` times on a fresh metrics slate; keeps the best run and
/// one run's metrics delta.
template <typename Op>
Measurement Measure(const std::shared_ptr<ExecutionContext>& ctx, int reps,
                    Op op) {
  Measurement m;
  for (int r = 0; r < reps; ++r) {
    ctx->ResetMetrics();
    Stopwatch watch;
    op();
    double secs = watch.ElapsedSeconds();
    if (r == 0 || secs < m.seconds) m.seconds = secs;
    m.shuffle_records = ctx->MetricsSnapshot().shuffle_records();
    m.shuffle_bytes = ctx->MetricsSnapshot().shuffle_bytes();
  }
  return m;
}

void EmitRow(const std::string& op, size_t records, size_t parts,
             const Measurement& bucketed, const Measurement& target_rescan,
             bool output_identical) {
  bool metrics_identical =
      bucketed.shuffle_records == target_rescan.shuffle_records &&
      bucketed.shuffle_bytes == target_rescan.shuffle_bytes;
  double speedup =
      bucketed.seconds > 0 ? target_rescan.seconds / bucketed.seconds : 0;
  std::cout << "{\"op\":\"" << op << "\""
            << ",\"records\":" << records << ",\"partitions\":" << parts
            << ",\"bucketed_seconds\":" << bucketed.seconds
            << ",\"legacy_seconds\":" << target_rescan.seconds
            << ",\"bucketed_records_per_sec\":"
            << (bucketed.seconds > 0 ? records / bucketed.seconds : 0)
            << ",\"legacy_records_per_sec\":"
            << (target_rescan.seconds > 0 ? records / target_rescan.seconds
                                          : 0)
            << ",\"speedup\":" << speedup
            << ",\"shuffle_records\":" << bucketed.shuffle_records
            << ",\"shuffle_bytes\":" << bucketed.shuffle_bytes
            << ",\"output_identical\":"
            << (output_identical ? "true" : "false")
            << ",\"metrics_identical\":"
            << (metrics_identical ? "true" : "false") << "}" << std::endl;
  if (!output_identical || !metrics_identical) {
    std::cerr << "MISMATCH: " << op << " records=" << records
              << " parts=" << parts << "\n";
    std::exit(1);
  }
}

std::vector<KV> MakePairs(size_t records, uint64_t seed) {
  Rng rng(seed);
  std::vector<KV> pairs;
  pairs.reserve(records);
  // ~4 values per key: the map-side combine shrinks but does not collapse
  // the shuffle, so the target side still sees a large record stream.
  int64_t key_space = static_cast<int64_t>(records / 4) + 1;
  for (size_t i = 0; i < records; ++i) {
    pairs.emplace_back(rng.UniformInt(0, key_space), rng.UniformInt(-5, 5));
  }
  return pairs;
}

std::vector<std::pair<CellHourKey, int64_t>> MakeCellHourPairs(
    size_t records, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<CellHourKey, int64_t>> pairs;
  pairs.reserve(records);
  // A 64x64 structure grid x 24 hourly bins, the raster shape of the
  // paper's flow-extraction case study (Fig. 9 / Table 9).
  constexpr int64_t kCells = 64 * 64;
  for (size_t i = 0; i < records; ++i) {
    pairs.emplace_back(
        CellHourKey(rng.UniformInt(0, kCells), rng.UniformInt(0, 24)),
        rng.UniformInt(0, 100));
  }
  return pairs;
}

std::vector<size_t> ParseList(const char* arg) {
  std::vector<size_t> out;
  std::stringstream ss(arg);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoul(item));
  return out;
}

}  // namespace

int Run(int argc, char** argv) {
  std::vector<size_t> record_counts = {100000, 1000000};
  std::vector<size_t> part_counts = {8, 64, 256};
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--records" && i + 1 < argc) {
      record_counts = ParseList(argv[++i]);
    } else if (flag == "--parts" && i + 1 < argc) {
      part_counts = ParseList(argv[++i]);
    } else if (flag == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else {
      std::cerr << "usage: bench_shuffle [--records N,..] [--parts N,..] "
                   "[--reps R]\n";
      return 2;
    }
  }

  auto ctx = ExecutionContext::Create();
  for (size_t records : record_counts) {
    auto pairs = MakePairs(records, /*seed=*/records);
    auto cell_pairs = MakeCellHourPairs(records, /*seed=*/records + 1);
    for (size_t parts : part_counts) {
      auto data = Dataset<KV>::Parallelize(ctx, pairs, parts);
      auto cell_data = Dataset<std::pair<CellHourKey, int64_t>>::Parallelize(
          ctx, cell_pairs, parts);

      Dataset<KV> new_reduce, old_reduce;
      Measurement b = Measure(ctx, reps, [&] {
        auto reduced =
            TryReduceByKey<int64_t, int64_t>(data, std::plus<int64_t>());
        ST4ML_CHECK(reduced.ok());
        new_reduce = std::move(*reduced);
      });
      Measurement l = Measure(ctx, reps, [&] {
        old_reduce =
            legacy::ReduceByKey<int64_t, int64_t>(data, std::plus<int64_t>());
      });
      EmitRow("reduce_by_key", records, parts, b, l,
              std::move(new_reduce).Collect() ==
                  std::move(old_reduce).Collect());

      Dataset<std::pair<CellHourKey, int64_t>> new_cell, old_cell;
      b = Measure(ctx, reps, [&] {
        auto reduced = TryReduceByKey<CellHourKey, int64_t, std::plus<int64_t>,
                                      PairHash>(cell_data, std::plus<int64_t>());
        ST4ML_CHECK(reduced.ok());
        new_cell = std::move(*reduced);
      });
      l = Measure(ctx, reps, [&] {
        old_cell =
            legacy::ReduceByKey<CellHourKey, int64_t, std::plus<int64_t>,
                                PairHash>(cell_data, std::plus<int64_t>());
      });
      EmitRow("reduce_by_key_cell_hour", records, parts, b, l,
              std::move(new_cell).Collect() == std::move(old_cell).Collect());

      Dataset<std::pair<int64_t, std::vector<int64_t>>> new_group, old_group;
      b = Measure(ctx, reps, [&] {
        auto grouped = TryGroupByKey<int64_t, int64_t>(data);
        ST4ML_CHECK(grouped.ok());
        new_group = std::move(*grouped);
      });
      l = Measure(ctx, reps, [&] {
        old_group = legacy::GroupByKey<int64_t, int64_t>(data);
      });
      EmitRow("group_by_key", records, parts, b, l,
              std::move(new_group).Collect() ==
                  std::move(old_group).Collect());

      Dataset<std::pair<CellHourKey, std::vector<int64_t>>> new_cgroup,
          old_cgroup;
      b = Measure(ctx, reps, [&] {
        auto grouped = TryGroupByKey<CellHourKey, int64_t, PairHash>(cell_data);
        ST4ML_CHECK(grouped.ok());
        new_cgroup = std::move(*grouped);
      });
      l = Measure(ctx, reps, [&] {
        old_cgroup =
            legacy::GroupByKey<CellHourKey, int64_t, PairHash>(cell_data);
      });
      EmitRow("group_by_key_cell_hour", records, parts, b, l,
              std::move(new_cgroup).Collect() ==
                  std::move(old_cgroup).Collect());

      Dataset<KV> new_repart, old_repart;
      b = Measure(ctx, reps, [&] { new_repart = data.Repartition(parts * 2); });
      l = Measure(ctx, reps,
                  [&] { old_repart = legacy::Repartition(data, parts * 2); });
      EmitRow("repartition", records, parts, b, l,
              std::move(new_repart).Collect() ==
                  std::move(old_repart).Collect());
    }
  }
  return 0;
}

}  // namespace st4ml

int main(int argc, char** argv) { return st4ml::Run(argc, argv); }
