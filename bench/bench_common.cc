#include "bench_common.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "baselines/geomesa_like.h"
#include "common/logging.h"
#include "common/rng.h"
#include "partition/str_partitioner.h"
#include "selection/on_disk_index.h"

namespace st4ml {
namespace bench {

namespace fs = std::filesystem;

namespace {

constexpr const char* kStageMarker = "staged.ok";

std::string RootDir() {
  return GetEnvString("ST4ML_BENCH_DATA", "bench_data");
}

ScaledDirs DirsFor(const std::string& root, const std::string& name) {
  ScaledDirs dirs;
  dirs.st4ml_dir = root + "/" + name + "/st4ml";
  dirs.st4ml_meta = root + "/" + name + "/st4ml_meta";
  dirs.plain_dir = root + "/" + name + "/plain";
  dirs.gm_dir = root + "/" + name + "/geomesa";
  return dirs;
}

/// Buffered-rectangle polygons around road segments: the irregular cells the
/// air-over-road application aggregates over.
std::vector<Polygon> BufferedRoadCells(const RoadNetwork& network,
                                       double buffer_deg, size_t max_cells) {
  std::vector<Polygon> cells;
  for (size_t i = 0; i < network.num_segments() && cells.size() < max_cells;
       i += 2) {  // one direction per physical road
    Mbr box = network.segment(static_cast<int32_t>(i)).shape.ComputeMbr();
    cells.push_back(Polygon::FromMbr(box.Buffered(buffer_deg)));
  }
  return cells;
}

template <typename RecordT>
void StageOne(const std::shared_ptr<ExecutionContext>& ctx,
              std::vector<RecordT> records, const ScaledDirs& dirs,
              int tstr_gt, int tstr_gs) {
  auto data = Dataset<RecordT>::Parallelize(ctx, std::move(records), 16);
  ST4ML_CHECK(PersistDataset(data, dirs.plain_dir).ok());
  TSTRPartitioner partitioner(tstr_gt, tstr_gs);
  ST4ML_CHECK(
      BuildOnDiskIndex(data, &partitioner, dirs.st4ml_dir, dirs.st4ml_meta)
          .ok());
  GeoMesaLike geomesa(ctx);
  std::vector<RecordT> all = data.Collect();
  if constexpr (std::is_same_v<RecordT, EventRecord>) {
    ST4ML_CHECK(geomesa.IngestEvents(all, dirs.gm_dir).ok());
  } else {
    ST4ML_CHECK(geomesa.IngestTrajs(all, dirs.gm_dir).ok());
  }
}

void StageAll(BenchEnv* env) {
  const std::string root = RootDir();
  std::printf("[bench] staging datasets into %s (scale %.2f) ...\n",
              root.c_str(), env->scale);
  Stopwatch timer;
  fs::remove_all(root);
  fs::create_directories(root);

  // NYC events at three scales.
  {
    NycEventOptions gen;
    gen.count = static_cast<int64_t>(240000 * env->scale);
    auto full = GenerateNycEvents(gen);
    for (int s = 0; s < 3; ++s) {
      double frac = s == 0 ? 0.25 : (s == 1 ? 0.5 : 1.0);
      auto subset = std::vector<EventRecord>(
          full.begin(), full.begin() + static_cast<size_t>(full.size() * frac));
      env->nyc_count[s] = static_cast<int64_t>(subset.size());
      StageOne(env->ctx, std::move(subset), env->nyc[s], 6, 8);
    }
    env->nyc_extent = gen.extent;
    env->nyc_range = gen.range;
  }
  // Porto trajectories at three scales.
  {
    PortoTrajOptions gen;
    gen.count = static_cast<int64_t>(12000 * env->scale);
    auto full = GeneratePortoTrajectories(gen);
    for (int s = 0; s < 3; ++s) {
      double frac = s == 0 ? 0.25 : (s == 1 ? 0.5 : 1.0);
      auto subset = std::vector<TrajRecord>(
          full.begin(), full.begin() + static_cast<size_t>(full.size() * frac));
      env->porto_count[s] = static_cast<int64_t>(subset.size());
      StageOne(env->ctx, std::move(subset), env->porto[s], 6, 8);
    }
    env->porto_extent = gen.extent;
    env->porto_range = gen.range;
  }
  // Air quality.
  {
    AirQualityOptions gen;
    gen.stations = static_cast<int>(24 * std::max(1.0, env->scale));
    gen.replicas = 4;
    auto records = GenerateAirQuality(gen);
    env->air_count = static_cast<int64_t>(records.size());
    StageOne(env->ctx, std::move(records), env->air, 5, 6);
    env->air_extent = gen.extent;
    env->air_range = gen.range;
  }
  // OSM POIs (no temporal info — T-STR degenerates to spatial STR, which is
  // fine: all timestamps are 0).
  {
    OsmOptions gen;
    gen.poi_count = static_cast<int64_t>(40000 * env->scale);
    OsmData osm = GenerateOsm(gen);
    env->osm_count = static_cast<int64_t>(osm.pois.size());
    StageOne(env->ctx, std::move(osm.pois), env->osm, 1, 32);
    env->osm_extent = gen.extent;
  }

  std::ofstream marker(root + "/" + kStageMarker);
  marker << env->scale << "\n";
  std::printf("[bench] staging done in %.1f s\n", timer.ElapsedSeconds());
}

/// Regenerates the in-memory-only parts (polygon structures, networks) that
/// are cheap and deterministic, whether or not the on-disk staging ran.
void BuildInMemoryStructures(BenchEnv* env) {
  OsmOptions osm_gen;
  osm_gen.poi_count = 1;  // only the areas matter here
  env->postal_areas = GenerateOsm(osm_gen).postal_areas;
  env->osm_extent = osm_gen.extent;

  RoadNetworkOptions road_gen;
  road_gen.nx = 12;
  road_gen.ny = 12;
  AirQualityOptions air_gen;
  road_gen.extent = air_gen.extent;
  env->air_network = GenerateRoadNetwork(road_gen);
  env->road_cells = BufferedRoadCells(*env->air_network, 0.01, 400);
}

}  // namespace

const BenchEnv& GetBenchEnv() {
  static BenchEnv* env = [] {
    auto* e = new BenchEnv;
    e->ctx = ExecutionContext::Create();
    e->scale = BenchScale();
    const std::string root = RootDir();
    for (int s = 0; s < 3; ++s) {
      e->nyc[s] = DirsFor(root, "nyc_" + std::to_string(s));
      e->porto[s] = DirsFor(root, "porto_" + std::to_string(s));
    }
    e->air = DirsFor(root, "air");
    e->osm = DirsFor(root, "osm");

    // Re-stage unless the marker matches the requested scale.
    bool staged = false;
    std::ifstream marker(root + "/" + kStageMarker);
    if (marker) {
      double staged_scale = -1;
      marker >> staged_scale;
      staged = staged_scale == e->scale;
    }
    if (!staged) {
      StageAll(e);
    } else {
      // Restore counts/extents from generators' options (deterministic).
      NycEventOptions nyc_gen;
      e->nyc_extent = nyc_gen.extent;
      e->nyc_range = nyc_gen.range;
      PortoTrajOptions porto_gen;
      e->porto_extent = porto_gen.extent;
      e->porto_range = porto_gen.range;
      AirQualityOptions air_gen;
      e->air_extent = air_gen.extent;
      e->air_range = air_gen.range;
      for (int s = 0; s < 3; ++s) {
        double frac = s == 0 ? 0.25 : (s == 1 ? 0.5 : 1.0);
        e->nyc_count[s] = static_cast<int64_t>(240000 * e->scale * frac);
        e->porto_count[s] = static_cast<int64_t>(12000 * e->scale * frac);
      }
      int stations = static_cast<int>(24 * std::max(1.0, e->scale)) * 4;
      int64_t samples = (air_gen.range.Seconds() + air_gen.interval_s) /
                        air_gen.interval_s;
      e->air_count = static_cast<int64_t>(stations) * samples;
      e->osm_count = static_cast<int64_t>(40000 * e->scale);
    }
    BuildInMemoryStructures(e);
    return e;
  }();
  return *env;
}

std::vector<STBox> MakeQueries(const Mbr& extent, const Duration& range,
                               double volume_fraction, int count,
                               uint64_t seed) {
  Rng rng(seed);
  double side = std::cbrt(volume_fraction);
  std::vector<STBox> queries;
  queries.reserve(count);
  for (int i = 0; i < count; ++i) {
    double w = extent.Width() * side;
    double h = extent.Height() * side;
    int64_t span = std::max<int64_t>(
        1, static_cast<int64_t>(range.Seconds() * side));
    double x = rng.Uniform(extent.x_min, extent.x_max - w);
    double y = rng.Uniform(extent.y_min, extent.y_max - h);
    int64_t t = range.start() +
                rng.UniformInt(0, std::max<int64_t>(1, range.Seconds() - span));
    queries.push_back(
        STBox(Mbr(x, y, x + w, y + h), Duration(t, t + span - 1)));
  }
  return queries;
}

std::vector<STBox> MakeShapedQueries(const Mbr& extent, const Duration& range,
                                     double side_fraction, int64_t span_seconds,
                                     int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<STBox> queries;
  queries.reserve(count);
  double w = extent.Width() * side_fraction;
  double h = extent.Height() * side_fraction;
  int64_t span = std::min(span_seconds, range.Seconds());
  for (int i = 0; i < count; ++i) {
    double x = rng.Uniform(extent.x_min, extent.x_max - w);
    double y = rng.Uniform(extent.y_min, extent.y_max - h);
    int64_t t = range.start() +
                rng.UniformInt(0, std::max<int64_t>(1, range.Seconds() - span));
    queries.push_back(STBox(Mbr(x, y, x + w, y + h), Duration(t, t + span - 1)));
  }
  return queries;
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("| ");
    for (size_t i = 0; i < widths.size(); ++i) {
      std::printf("%-*s | ", static_cast<int>(widths[i]),
                  i < row.size() ? row[i].c_str() : "");
    }
    std::printf("\n");
  };
  print_row(header_);
  std::printf("|");
  for (size_t w : widths) {
    for (size_t i = 0; i < w + 2; ++i) std::printf("-");
    std::printf("|");
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string FmtSeconds(double s) {
  char buf[32];
  if (s < 0.1) {
    std::snprintf(buf, sizeof(buf), "%.0f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", s);
  }
  return buf;
}

std::string FmtCount(uint64_t n) {
  char buf[32];
  if (n >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1fM", n / 1e6);
  } else if (n >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fk", n / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(n));
  }
  return buf;
}

std::string FmtRatio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", r);
  return buf;
}

std::string FmtMb(uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f MB", bytes / 1e6);
  return buf;
}

double TimeIt(const std::function<void()>& fn) {
  Stopwatch timer;
  fn();
  return timer.ElapsedSeconds();
}

}  // namespace bench
}  // namespace st4ml
