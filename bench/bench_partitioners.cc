// Table 5: load-balance evaluation of the partitioning methods — CV
// (coefficient of variation of partition sizes; lower = better balance) and
// OV (sum of per-partition ST-MBR volumes over the global ST-MBR volume;
// lower = better ST locality) on the event and trajectory datasets.
//
// Expected shape (paper): native hash has the lowest CV but the highest OV
// (no ST awareness at all); GeoSpark's K-D-B and GeoMesa's grid preserve only
// spatial locality (high ST OV; the grid also suffers high CV under skew);
// ST4ML's T-STR is the best joint CV/OV trade-off.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "partition/balance.h"
#include "partition/baseline_partitioners.h"
#include "partition/hash_partitioner.h"
#include "partition/quadtree_partitioner.h"
#include "partition/str_partitioner.h"
#include "partition/tbalance_partitioner.h"
#include "selection/selector.h"

namespace st4ml {
namespace bench {
namespace {

constexpr int kPartitions = 256;  // paper uses 1024 on a 32-executor cluster
constexpr int kTstrGranularity = 16;  // gt = gs = sqrt(kPartitions)

template <typename RecordT>
void Evaluate(const BenchEnv& env, const char* dataset, const ScaledDirs& dirs,
              const Mbr& extent, const Duration& range, TablePrinter* table) {
  SelectorOptions options;
  options.partition_after_select = false;
  Selector<RecordT> selector(env.ctx, SelectQuery::FromBox(STBox(extent, range)), options);
  auto data_or = selector.Select(dirs.plain_dir);
  ST4ML_CHECK(data_or.ok()) << data_or.status().ToString();
  std::vector<RecordT> records = data_or->Collect();

  std::vector<STBox> boxes;
  boxes.reserve(records.size());
  for (const RecordT& r : records) boxes.push_back(r.ComputeSTBox());

  struct Candidate {
    const char* name;
    std::unique_ptr<STPartitioner> partitioner;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"Native (hash)",
                        std::make_unique<HashPartitioner>(kPartitions)});
  candidates.push_back({"GeoSpark (K-D-B)",
                        std::make_unique<KDBPartitioner>(kPartitions)});
  candidates.push_back({"GeoMesa (grid)",
                        std::make_unique<GridPartitioner>(kPartitions)});
  candidates.push_back({"ST4ML (T-STR)",
                        std::make_unique<TSTRPartitioner>(kTstrGranularity,
                                                          kTstrGranularity)});
  // Beyond Table 5: ST4ML's other partitioners, for context.
  candidates.push_back({"ST4ML (2-d STR)",
                        std::make_unique<STRPartitioner>(kPartitions)});
  candidates.push_back({"ST4ML (quad-tree)",
                        std::make_unique<QuadTreePartitioner>(kPartitions)});
  candidates.push_back({"ST4ML (T-balance)",
                        std::make_unique<TBalancePartitioner>(kPartitions)});

  for (Candidate& c : candidates) {
    c.partitioner->Train(boxes);
    int n = c.partitioner->num_partitions();
    std::vector<int> assignment(boxes.size());
    std::vector<size_t> sizes(n, 0);
    for (size_t i = 0; i < boxes.size(); ++i) {
      assignment[i] = c.partitioner->Assign(boxes[i], false, i)[0];
      ++sizes[assignment[i]];
    }
    double cv = CoefficientOfVariation(sizes);
    double ov = OverlapRatio(PartitionContentBounds(boxes, assignment, n));
    char cv_buf[24], ov_buf[24];
    std::snprintf(cv_buf, sizeof(cv_buf), "%.4f", cv);
    std::snprintf(ov_buf, sizeof(ov_buf), "%.2f", ov);
    table->AddRow({c.name, dataset, cv_buf, ov_buf});
  }
}

}  // namespace
}  // namespace bench
}  // namespace st4ml

int main() {
  using namespace st4ml::bench;
  const BenchEnv& env = GetBenchEnv();
  std::printf("== Table 5: partitioner load balance (CV) and ST locality (OV) ==\n");
  std::printf("%d partitions; T-STR granularity (%d, %d)\n\n", kPartitions,
              kTstrGranularity, kTstrGranularity);
  TablePrinter table({"partitioner", "dataset", "CV (lower=balanced)",
                      "OV (lower=ST-local)"});
  Evaluate<st4ml::EventRecord>(env, "events", env.nyc[2], env.nyc_extent,
                               env.nyc_range, &table);
  Evaluate<st4ml::TrajRecord>(env, "trajectories", env.porto[2],
                              env.porto_extent, env.porto_range, &table);
  table.Print();
  return 0;
}
