#include "extraction/collective_extractors.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "conversion/singular_to_collective.h"
#include "engine/execution_context.h"
#include "extraction/event_extractors.h"
#include "extraction/traj_extractors.h"

namespace st4ml {
namespace {

STEvent EventAt(int64_t id, double x, double y, int64_t time) {
  STEvent e;
  e.spatial = Point(x, y);
  e.temporal = Duration(time);
  e.data.id = id;
  return e;
}

STEntry EntryAt(double x, double y, int64_t time) {
  STEntry e;
  e.point = Point(x, y);
  e.time = time;
  return e;
}

TEST(AnomalyTest, WrappingHourWindowKeepsNightEvents) {
  auto ctx = ExecutionContext::Create(2);
  // Hours of day (UTC): 0, 3, 4, 12, 23.
  std::vector<STEvent> events = {
      EventAt(0, 0, 0, 0),          EventAt(1, 0, 0, 3 * 3600),
      EventAt(2, 0, 0, 4 * 3600),   EventAt(3, 0, 0, 12 * 3600),
      EventAt(4, 0, 0, 23 * 3600),
  };
  auto data = Dataset<STEvent>::Parallelize(ctx, events, 2);
  auto night = ExtractAnomalies(data, 23, 4).Collect();  // [23, 4) wraps
  std::vector<int64_t> ids;
  for (const STEvent& e : night) ids.push_back(e.data.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<int64_t>{0, 1, 4}));

  auto midday = ExtractAnomalies(data, 4, 13).Collect();  // plain window
  EXPECT_EQ(midday.size(), 2u);  // hours 4 and 12
}

TEST(StayPointTest, DetectsKnownStay) {
  // ~111m per 0.001 degrees of latitude. Points 0-3 cluster within ~40m for
  // 900 seconds, then the trajectory leaves.
  std::vector<STEntry> entries = {
      EntryAt(10.0000, 50.0000, 0),   EntryAt(10.0002, 50.0001, 300),
      EntryAt(10.0001, 50.0002, 600), EntryAt(10.0002, 50.0000, 900),
      EntryAt(10.0500, 50.0500, 1200),
  };
  auto stays = StayPointsOf(entries, /*dist_m=*/100, /*min_duration_s=*/600);
  ASSERT_EQ(stays.size(), 1u);
  EXPECT_EQ(stays[0].num_points, 4);
  EXPECT_EQ(stays[0].duration.start(), 0);
  EXPECT_EQ(stays[0].duration.end(), 900);
  EXPECT_NEAR(stays[0].center.x, 10.000125, 1e-9);

  // Too-short dwell yields no stay.
  EXPECT_TRUE(StayPointsOf(entries, 100, 1000).empty());
}

TEST(CompanionTest, FindsPairsWithinDistanceAndTime) {
  auto ctx = ExecutionContext::Create(1);
  std::vector<STEvent> events = {
      EventAt(1, 10.0, 50.0, 100),
      EventAt(2, 10.0001, 50.0001, 150),   // ~13m, 50s from id 1
      EventAt(3, 10.1, 50.1, 160),         // far away
      EventAt(4, 10.0, 50.0, 5000),        // right spot, much later
  };
  auto data = Dataset<STEvent>::Parallelize(ctx, events, 1);
  auto pairs = ExtractEventCompanions(data, /*dist_m=*/50, /*dt_s=*/120,
                                      [](const STEvent& e) { return e.data.id; })
                   .Collect();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], std::make_pair(int64_t{1}, int64_t{2}));
}

TEST(TsFlowTest, CountsPerBinAcrossPartitions) {
  auto ctx = ExecutionContext::Create(2);
  std::vector<STEvent> events;
  for (int i = 0; i < 60; ++i) {
    events.push_back(EventAt(i, 0, 0, (i % 3) * 3600 + 10));
  }
  auto data = Dataset<STEvent>::Parallelize(ctx, events, 4);
  auto structure = std::make_shared<TemporalStructure>(
      TemporalStructure::Regular(Duration(0, 3 * 3600), 3));
  TimeSeriesConverter<STEvent> converter(structure);
  TimeSeries<int64_t> flow = ExtractTsFlow(converter.Convert(data));
  ASSERT_EQ(flow.size(), 3u);
  EXPECT_EQ(flow.value(0), 20);
  EXPECT_EQ(flow.value(1), 20);
  EXPECT_EQ(flow.value(2), 20);
}

TEST(SmSpeedTest, MeanSpeedPerCell) {
  auto ctx = ExecutionContext::Create(2);
  // Two trajectories inside cell 0, with speeds ~1 m/s and ~3 m/s along
  // latitude (y) so Haversine distance is exact.
  double dy1 = 100.0 / 111194.926644559;  // 100 m in degrees of latitude
  STTrajectory slow;
  slow.data = 1;
  slow.entries = {EntryAt(0.1, 0.1, 0), EntryAt(0.1, 0.1 + dy1, 100)};
  STTrajectory fast;
  fast.data = 2;
  fast.entries = {EntryAt(0.2, 0.2, 0), EntryAt(0.2, 0.2 + 3 * dy1, 100)};
  auto data =
      Dataset<STTrajectory>::Parallelize(ctx, {slow, fast}, 2);
  auto grid = std::make_shared<SpatialStructure>(
      SpatialStructure::Grid(Mbr(0, 0, 2, 1), 2, 1));
  SpatialMapConverter<STTrajectory> converter(grid);
  SpatialMap<double> speed = ExtractSmSpeed(converter.Convert(data));
  ASSERT_EQ(speed.size(), 2u);
  EXPECT_NEAR(speed.value(0), 2.0, 0.01);  // mean of ~1 and ~3
  EXPECT_DOUBLE_EQ(speed.value(1), 0.0);   // empty cell reports 0
}

TEST(RasterTransitTest, CountsEntriesAndExitsOnCraftedTrajectory) {
  auto ctx = ExecutionContext::Create(1);
  // One cell (0,0)-(1,1), one bin [0,1000]. The trajectory starts OUTSIDE,
  // moves in (1 entry), leaves (1 exit), returns (2nd entry), stays.
  STTrajectory t;
  t.data = 7;
  t.entries = {EntryAt(5.0, 5.0, 0),   EntryAt(0.5, 0.5, 100),
               EntryAt(5.0, 5.0, 200), EntryAt(0.4, 0.4, 300),
               EntryAt(0.6, 0.6, 400)};
  auto data = Dataset<STTrajectory>::Parallelize(ctx, {t}, 1);
  auto raster = std::make_shared<RasterStructure>(
      RasterStructure::Regular(Mbr(0, 0, 10, 10), 1, 1, Duration(0, 1000), 1));
  RasterConverter<STTrajectory> converter(raster);
  Raster<std::pair<int64_t, int64_t>> transit =
      ExtractRasterTransit(converter.Convert(data));
  ASSERT_EQ(transit.size(), 1u);
  // The raster cell covers the whole extent, so "inside" tracks the bin and
  // full-extent cell: every sample is inside -> 0 transitions for cell 0 of
  // a 1x1 grid over (0,0)-(10,10). Use a finer raster for the real check.
  auto fine = std::make_shared<RasterStructure>(
      RasterStructure::Regular(Mbr(0, 0, 10, 10), 10, 10, Duration(0, 1000), 1));
  RasterConverter<STTrajectory> fine_converter(fine);
  Raster<std::pair<int64_t, int64_t>> fine_transit =
      ExtractRasterTransit(fine_converter.Convert(data));
  size_t cell00 = fine->spatial().FindCell(Point(0.5, 0.5));
  ASSERT_NE(cell00, SpatialStructure::kNoCell);
  auto [in, out] = fine_transit.value(fine->FlatIndex(cell00, 0));
  EXPECT_EQ(in, 2);
  EXPECT_EQ(out, 1);
}

TEST(TrajSpeedTest, UnitConversion) {
  auto ctx = ExecutionContext::Create(1);
  double dy = 100.0 / 111194.926644559;
  STTrajectory t;
  t.data = 3;
  t.entries = {EntryAt(0, 0, 0), EntryAt(0, dy, 100)};
  auto data = Dataset<STTrajectory>::Parallelize(ctx, {t}, 1);
  auto mps = ExtractTrajSpeeds(data, SpeedUnit::kMetersPerSecond).Collect();
  auto kmh = ExtractTrajSpeeds(data, SpeedUnit::kKilometersPerHour).Collect();
  ASSERT_EQ(mps.size(), 1u);
  EXPECT_NEAR(mps[0].second, 1.0, 0.01);
  EXPECT_NEAR(kmh[0].second, 3.6, 0.05);
}

TEST(TrajSpeedTest, SpeedStatsMatchPerTrajectorySpeeds) {
  auto ctx = ExecutionContext::Create(2);
  Rng rng(17);
  std::vector<STTrajectory> trajs;
  for (int64_t id = 0; id < 20; ++id) {
    STTrajectory t;
    t.data = id;
    int64_t time = 0;
    double x = rng.Uniform(0, 1), y = rng.Uniform(50, 51);
    for (int e = 0; e < 5; ++e) {
      t.entries.push_back(EntryAt(x, y, time));
      x += rng.Uniform(0, 0.001);
      y += rng.Uniform(0, 0.001);
      time += rng.UniformInt(30, 120);
    }
    trajs.push_back(std::move(t));
  }
  auto data = Dataset<STTrajectory>::Parallelize(ctx, trajs, 4);

  SpeedStats stats = ExtractTrajSpeedStats(data, SpeedUnit::kKilometersPerHour);
  auto speeds = ExtractTrajSpeeds(data, SpeedUnit::kKilometersPerHour).Collect();
  ASSERT_EQ(stats.count, static_cast<int64_t>(speeds.size()));
  double min = speeds[0].second, max = speeds[0].second;
  for (const auto& [id, s] : speeds) {
    min = std::min(min, s);
    max = std::max(max, s);
  }
  // min/max are order-independent on finite inputs, so plain equality holds
  // against the per-trajectory extraction regardless of backend.
  EXPECT_EQ(stats.min, min);
  EXPECT_EQ(stats.max, max);
  EXPECT_NEAR(stats.Mean(), stats.sum / stats.count, 1e-12);
  EXPECT_GT(stats.min, 0.0);
  EXPECT_GE(stats.max, stats.min);
}

TEST(FunctionExtractorTest, WrapsLambdaUnderExtractInterface) {
  auto ctx = ExecutionContext::Create(1);
  std::vector<STEvent> events = {EventAt(1, 0, 0, 0), EventAt(2, 0, 0, 10)};
  auto data = Dataset<STEvent>::Parallelize(ctx, events, 1);
  auto counter = MakeExtractor(
      [](const Dataset<STEvent>& d) { return d.Count(); });
  EXPECT_EQ(counter.Extract(data), 2u);
}

}  // namespace
}  // namespace st4ml
