#include "partition/partitioner.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/dataset.h"
#include "engine/execution_context.h"
#include "instances/instances.h"
#include "partition/balance.h"
#include "partition/baseline_partitioners.h"
#include "partition/hash_partitioner.h"
#include "partition/quadtree_partitioner.h"
#include "partition/st_partition_ops.h"
#include "partition/str_partitioner.h"
#include "partition/tbalance_partitioner.h"

namespace st4ml {
namespace {

std::vector<STBox> ClusteredBoxes(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<STBox> boxes;
  boxes.reserve(n);
  for (int i = 0; i < n; ++i) {
    double cx = rng.Bernoulli(0.5) ? 20.0 : 80.0;
    double x = rng.Gaussian(cx, 8.0), y = rng.Gaussian(50.0, 20.0);
    int64_t t = rng.UniformInt(0, 100000);
    boxes.push_back(STBox(Mbr(x, y, x + 0.5, y + 0.5), Duration(t, t + 60)));
  }
  return boxes;
}

std::vector<std::unique_ptr<STPartitioner>> AllPartitioners() {
  std::vector<std::unique_ptr<STPartitioner>> out;
  out.push_back(std::make_unique<HashPartitioner>(16));
  out.push_back(std::make_unique<STRPartitioner>(16));
  out.push_back(std::make_unique<TSTRPartitioner>(4, 4));
  out.push_back(std::make_unique<QuadTreePartitioner>(16));
  out.push_back(std::make_unique<TBalancePartitioner>(16));
  out.push_back(std::make_unique<KDBPartitioner>(16));
  out.push_back(std::make_unique<GridPartitioner>(16));
  return out;
}

TEST(PartitionerTest, PrimaryAssignmentIsSingleAndInRange) {
  auto boxes = ClusteredBoxes(2000, 5);
  for (auto& p : AllPartitioners()) {
    p->Train(boxes);
    EXPECT_GT(p->num_partitions(), 0);
    for (size_t i = 0; i < boxes.size(); ++i) {
      std::vector<int> assigned =
          p->Assign(boxes[i], /*duplicate=*/false, static_cast<uint64_t>(i));
      ASSERT_EQ(assigned.size(), 1u);
      EXPECT_GE(assigned[0], 0);
      EXPECT_LT(assigned[0], p->num_partitions());
    }
  }
}

TEST(PartitionerTest, DuplicateAssignmentIncludesPrimary) {
  auto boxes = ClusteredBoxes(500, 6);
  for (auto& p : AllPartitioners()) {
    p->Train(boxes);
    for (size_t i = 0; i < boxes.size(); ++i) {
      int primary =
          p->Assign(boxes[i], false, static_cast<uint64_t>(i))[0];
      std::vector<int> all =
          p->Assign(boxes[i], true, static_cast<uint64_t>(i));
      EXPECT_FALSE(all.empty());
      EXPECT_NE(std::find(all.begin(), all.end(), primary), all.end())
          << "duplicate assignment must contain the primary partition";
      for (int q : all) {
        EXPECT_GE(q, 0);
        EXPECT_LT(q, p->num_partitions());
      }
    }
  }
}

TEST(PartitionerTest, OutOfExtentRecordsStillLand) {
  auto boxes = ClusteredBoxes(300, 7);
  STBox far(Mbr(1e6, 1e6, 1e6 + 1, 1e6 + 1), Duration(1 << 30, (1 << 30) + 1));
  for (auto& p : AllPartitioners()) {
    p->Train(boxes);
    auto assigned = p->Assign(far, false, 999);
    ASSERT_EQ(assigned.size(), 1u);
    EXPECT_LT(assigned[0], p->num_partitions());
  }
}

TEST(PartitionerTest, StrBeatsHashOnSpatialLocality) {
  auto boxes = ClusteredBoxes(3000, 8);
  STRPartitioner str(16);
  HashPartitioner hash(16);
  str.Train(boxes);
  hash.Train(boxes);
  auto bounds_of = [&](const STPartitioner& p) {
    std::vector<int> assignment;
    assignment.reserve(boxes.size());
    for (size_t i = 0; i < boxes.size(); ++i) {
      assignment.push_back(p.Assign(boxes[i], false, i)[0]);
    }
    return PartitionContentBounds(boxes, assignment, p.num_partitions());
  };
  double str_overlap = OverlapRatio(bounds_of(str));
  double hash_overlap = OverlapRatio(bounds_of(hash));
  EXPECT_LT(str_overlap, hash_overlap);
}

TEST(PartitionerTest, TstrSlicesTimeFirst) {
  // Two well-separated temporal clusters: T-STR must never mix them in one
  // partition when trained with two temporal slices.
  std::vector<STBox> boxes;
  Rng rng(9);
  for (int i = 0; i < 400; ++i) {
    int64_t t = (i % 2 == 0) ? rng.UniformInt(0, 100)
                             : rng.UniformInt(1000000, 1000100);
    double x = rng.Uniform(0, 100), y = rng.Uniform(0, 100);
    boxes.push_back(STBox(Mbr(x, y, x, y), Duration(t, t)));
  }
  TSTRPartitioner tstr(2, 4);
  tstr.Train(boxes);
  std::vector<Duration> spans(static_cast<size_t>(tstr.num_partitions()),
                              Duration(int64_t{1} << 60, int64_t{1} << 60));
  std::vector<bool> seen(static_cast<size_t>(tstr.num_partitions()), false);
  for (size_t i = 0; i < boxes.size(); ++i) {
    int part = tstr.Assign(boxes[i], false, i)[0];
    if (!seen[part]) {
      spans[part] = boxes[i].time;
      seen[part] = true;
    } else {
      spans[part].Extend(boxes[i].time);
    }
  }
  for (size_t q = 0; q < spans.size(); ++q) {
    if (seen[q]) EXPECT_LT(spans[q].Seconds(), 500000) << "partition " << q;
  }
}

TEST(BalanceTest, CoefficientOfVariation) {
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({5, 5, 5, 5}), 0.0);
  EXPECT_GT(CoefficientOfVariation({1, 9, 1, 9}), 0.5);
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({}), 0.0);
}

TEST(STPartitionTest, RedistributesRecordsAndTrains) {
  auto ctx = ExecutionContext::Create(2);
  std::vector<STEvent> events;
  Rng rng(10);
  for (int i = 0; i < 200; ++i) {
    STEvent e;
    e.spatial = Point(rng.Uniform(0, 100), rng.Uniform(0, 100));
    e.temporal = Duration(rng.UniformInt(0, 1000));
    e.data.id = i;
    events.push_back(e);
  }
  auto data = Dataset<STEvent>::Parallelize(ctx, events, 4);
  TSTRPartitioner tstr(2, 2);
  auto partitioned = TrySTPartition(
      data, &tstr, [](const STEvent& e) { return e.ComputeSTBox(); },
      [](const STEvent& e) { return static_cast<uint64_t>(e.data.id); });
  ASSERT_TRUE(partitioned.ok()) << partitioned.status().ToString();
  EXPECT_EQ(partitioned->num_partitions(),
            static_cast<size_t>(tstr.num_partitions()));
  EXPECT_EQ(partitioned->Count(), events.size());
}

}  // namespace
}  // namespace st4ml
