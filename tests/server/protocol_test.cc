// Wire-protocol unit tests (ISSUE 6): the JSON request parser's accept and
// reject sets, the length-prefixed framing over a real socketpair (partial
// reads, oversized declarations, truncation, clean EOF), and the two
// overload primitives (token bucket, bounded admission) the daemon sheds
// load with. Everything here is deterministic — no server, no timing races
// except the one refill test that polls with a generous deadline.

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/admission.h"
#include "server/frame.h"
#include "server/json.h"
#include "server/rate_limiter.h"

namespace st4ml {
namespace server {
namespace {

// ---------------------------------------------------------------- JSON ----

TEST(JsonTest, ParsesTypicalRequest) {
  auto parsed = ParseJson(
      R"({"verb":"select","dir":"/tmp/x","mbr":[0,0,100,100],)"
      R"("time":[0,86400],"limit":42,"deep":{"flag":true,"none":null}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->IsObject());
  EXPECT_EQ(parsed->GetString("verb", ""), "select");
  EXPECT_EQ(parsed->GetString("dir", ""), "/tmp/x");
  EXPECT_EQ(parsed->GetInt("limit", -1), 42);
  EXPECT_EQ(parsed->GetInt("absent", 7), 7);
  EXPECT_EQ(parsed->GetString("absent", "dflt"), "dflt");

  std::vector<double> mbr;
  ASSERT_TRUE(parsed->GetNumberArray("mbr", 4, &mbr).ok());
  EXPECT_EQ(mbr, (std::vector<double>{0, 0, 100, 100}));
  // Wrong arity and wrong type are both validation errors, not crashes.
  std::vector<double> wrong;
  EXPECT_FALSE(parsed->GetNumberArray("mbr", 2, &wrong).ok());
  EXPECT_FALSE(parsed->GetNumberArray("verb", 1, &wrong).ok());
  EXPECT_FALSE(parsed->GetNumberArray("absent", 1, &wrong).ok());

  const JsonValue* deep = parsed->Find("deep");
  ASSERT_NE(deep, nullptr);
  const JsonValue* flag = deep->Find("flag");
  ASSERT_NE(flag, nullptr);
  EXPECT_TRUE(flag->IsBool());
  EXPECT_TRUE(flag->bool_value);
  const JsonValue* none = deep->Find("none");
  ASSERT_NE(none, nullptr);
  EXPECT_TRUE(none->IsNull());
}

// Writing a frame to a peer that already hung up must come back as an
// IOError (EPIPE), not raise SIGPIPE — whose default action would kill the
// whole daemon because one client disconnected early. A socketpair with a
// closed peer triggers the signal deterministically on the first write.
TEST(FrameTest, WriteToClosedPeerIsIOErrorNotSigpipe) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);
  Status status = WriteFrame(fds[0], R"({"verb":"ping"})");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kIOError);
  ::close(fds[0]);
}

// The wire carries doubles; every int the server trusts must go through a
// checked (or at least saturating) conversion — a blind cast of 1e300 to
// int64_t is UB.
TEST(JsonTest, IntAccessorsNeverCastOutOfRangeDoubles) {
  auto parsed = ParseJson(
      R"({"ok":5,"huge":1e300,"neg_huge":-1e300,"frac":2.5,"str":"x"})");
  ASSERT_TRUE(parsed.ok());

  int64_t out = 0;
  EXPECT_TRUE(parsed->GetCheckedInt("ok", 0, 0, 10, &out).ok());
  EXPECT_EQ(out, 5);
  // Absent key yields the default, not an error.
  EXPECT_TRUE(parsed->GetCheckedInt("absent", 42, 0, 100, &out).ok());
  EXPECT_EQ(out, 42);
  // Out-of-int64-range, non-integral, wrong type, and out-of-[min,max] are
  // all clean InvalidArgument.
  for (const char* key : {"huge", "neg_huge", "frac", "str"}) {
    Status status = parsed->GetCheckedInt(key, 0, 0, INT64_MAX, &out);
    EXPECT_FALSE(status.ok()) << key;
    EXPECT_EQ(status.code(), Status::Code::kInvalidArgument) << key;
  }
  EXPECT_FALSE(parsed->GetCheckedInt("ok", 0, 10, 20, &out).ok());

  // The unchecked accessor saturates instead of invoking UB.
  EXPECT_EQ(parsed->GetInt("huge", 0), INT64_MAX);
  EXPECT_EQ(parsed->GetInt("neg_huge", 0), INT64_MIN);
}

TEST(JsonTest, ParsesNumbersAndStringsAtRoot) {
  auto num = ParseJson("-12.5e2");
  ASSERT_TRUE(num.ok());
  EXPECT_TRUE(num->IsNumber());
  EXPECT_DOUBLE_EQ(num->number_value, -1250.0);

  auto str = ParseJson(R"("tab\tnewline\nquote\"slash\/")");
  ASSERT_TRUE(str.ok());
  EXPECT_EQ(str->string_value, "tab\tnewline\nquote\"slash/");

  auto arr = ParseJson("[1, [2, [3]], []]");
  ASSERT_TRUE(arr.ok());
  ASSERT_TRUE(arr->IsArray());
  ASSERT_EQ(arr->array.size(), 3u);
  EXPECT_TRUE(arr->array[2].array.empty());
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  auto bmp = ParseJson(R"("café")");
  ASSERT_TRUE(bmp.ok());
  EXPECT_EQ(bmp->string_value, "caf\xc3\xa9");

  // Surrogate pair: U+1F600 as UTF-8.
  auto emoji = ParseJson(R"("😀")");
  ASSERT_TRUE(emoji.ok());
  EXPECT_EQ(emoji->string_value, "\xf0\x9f\x98\x80");

  // A lone surrogate never silently produces garbage bytes.
  EXPECT_FALSE(ParseJson(R"("\ud83d")").ok());
  EXPECT_FALSE(ParseJson(R"("\ud83dx")").ok());
}

TEST(JsonTest, RejectsMalformedDocuments) {
  const char* kBad[] = {
      "",                      // empty
      "   ",                   // whitespace only
      "{",                     // unterminated object
      "[1,2",                  // unterminated array
      "\"abc",                 // unterminated string
      "{\"a\":}",              // missing value
      "{\"a\" 1}",             // missing colon
      "{\"a\":1,}",            // trailing comma
      "[1,,2]",                // double comma
      "{\"a\":1} trailing",    // trailing garbage
      "truex",                 // bad literal
      "nul",                   // truncated literal
      "\"bad\\qescape\"",      // unknown escape
      "\"bad\\u12g4\"",        // non-hex in \u
      "1e999",                 // overflows double
      "{1:2}",                 // non-string key
  };
  for (const char* text : kBad) {
    EXPECT_FALSE(ParseJson(text).ok()) << "accepted: " << text;
  }
  // Raw control characters must be escaped inside strings.
  EXPECT_FALSE(ParseJson(std::string("\"a\nb\"")).ok());
}

TEST(JsonTest, RejectsPathologicalNesting) {
  // 100 levels of arrays — past the parser's 64-level recursion guard, so
  // a hostile frame cannot overflow the daemon's stack.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  auto parsed = ParseJson(deep);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), Status::Code::kInvalidArgument);

  // 32 levels is comfortably inside the limit.
  std::string ok_depth(32, '[');
  ok_depth += std::string(32, ']');
  EXPECT_TRUE(ParseJson(ok_depth).ok());
}

// -------------------------------------------------------------- frames ----

class FramePair : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    CloseWriter();
    CloseReader();
  }
  void CloseWriter() {
    if (fds_[0] >= 0) ::close(fds_[0]);
    fds_[0] = -1;
  }
  void CloseReader() {
    if (fds_[1] >= 0) ::close(fds_[1]);
    fds_[1] = -1;
  }
  int writer() const { return fds_[0]; }
  int reader() const { return fds_[1]; }

 private:
  int fds_[2] = {-1, -1};
};

TEST_F(FramePair, RoundTripsPayloadsIncludingEmpty) {
  ASSERT_TRUE(WriteFrame(writer(), "hello st4mld").ok());
  ASSERT_TRUE(WriteFrame(writer(), "").ok());
  ASSERT_TRUE(WriteFrame(writer(), std::string("\x00\x01\xff", 3)).ok());

  auto first = ReadFrame(reader(), 1 << 20);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(*first, "hello st4mld");
  auto second = ReadFrame(reader(), 1 << 20);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, "");
  auto third = ReadFrame(reader(), 1 << 20);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*third, std::string("\x00\x01\xff", 3));
}

TEST_F(FramePair, RoundTripsLargePayloadAcrossPartialIo) {
  // Larger than any socket buffer, so both sides must loop over partial
  // reads/writes. Written from a helper thread to avoid deadlocking on a
  // full pipe.
  std::string big(3 << 20, 'x');
  for (size_t i = 0; i < big.size(); i += 4096) big[i] = 'A' + (i / 4096) % 26;
  std::thread producer(
      [&] { ASSERT_TRUE(WriteFrame(writer(), big).ok()); });
  auto got = ReadFrame(reader(), 4 << 20);
  producer.join();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, big);
}

TEST_F(FramePair, OversizedDeclarationRejectedBeforePayload) {
  ASSERT_TRUE(WriteFrame(writer(), std::string(1000, 'y')).ok());
  auto got = ReadFrame(reader(), 64);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(FramePair, CleanEofIsTheNotFoundSentinel) {
  CloseWriter();
  auto got = ReadFrame(reader(), 1 << 20);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), Status::Code::kNotFound);
}

TEST_F(FramePair, MidFrameEofIsTruncation) {
  // Header promises 100 bytes; only 10 arrive before the peer vanishes.
  unsigned char header[4] = {0, 0, 0, 100};
  ASSERT_EQ(::write(writer(), header, 4), 4);
  ASSERT_EQ(::write(writer(), "0123456789", 10), 10);
  CloseWriter();
  auto got = ReadFrame(reader(), 1 << 20);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), Status::Code::kIOError);
}

TEST_F(FramePair, EofInsideHeaderIsTruncation) {
  unsigned char partial[2] = {0, 0};
  ASSERT_EQ(::write(writer(), partial, 2), 2);
  CloseWriter();
  auto got = ReadFrame(reader(), 1 << 20);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), Status::Code::kIOError);
}

// ------------------------------------------------- overload primitives ----

TEST(AdmissionQueueTest, ShedsBeyondQueueDepthAndRecovers) {
  AdmissionQueue q(1, 0);  // one slot, no waiting room
  ASSERT_TRUE(q.Acquire().ok());
  EXPECT_EQ(q.inflight(), 1u);

  Status shed = q.Acquire();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), Status::Code::kResourceExhausted);

  q.Release();
  EXPECT_EQ(q.inflight(), 0u);
  ASSERT_TRUE(q.Acquire().ok());
  q.Release();
}

TEST(AdmissionQueueTest, QueuedWaiterWakesWhenSlotFrees) {
  AdmissionQueue q(1, 1);
  ASSERT_TRUE(q.Acquire().ok());
  Status waiter_status = Status::Internal("never ran");
  std::thread waiter([&] {
    waiter_status = q.Acquire();
    if (waiter_status.ok()) q.Release();
  });
  // Give the waiter time to park, then free the slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  q.Release();
  waiter.join();
  EXPECT_TRUE(waiter_status.ok()) << waiter_status.ToString();
}

TEST(AdmissionQueueTest, CloseRejectsNewAndQueuedButNotAdmitted) {
  AdmissionQueue q(1, 4);
  ASSERT_TRUE(q.Acquire().ok());  // admitted before close
  Status queued_status = Status::Ok();
  std::thread queued([&] { queued_status = q.Acquire(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  q.Close();
  queued.join();
  EXPECT_EQ(queued_status.code(), Status::Code::kResourceExhausted);
  EXPECT_EQ(q.Acquire().code(), Status::Code::kResourceExhausted);
  // The admitted job is not interrupted; it releases normally.
  q.Release();
  EXPECT_EQ(q.inflight(), 0u);
}

TEST(RateLimiterTest, BurstThenDryThenDisabled) {
  RateLimiter limiter(0.001, 2);  // effectively no refill within the test
  EXPECT_TRUE(limiter.TryAcquire());
  EXPECT_TRUE(limiter.TryAcquire());
  EXPECT_FALSE(limiter.TryAcquire());

  RateLimiter off(0, 1);  // rate 0 disables limiting entirely
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(off.TryAcquire());
}

TEST(RateLimiterTest, TokensRefillOverTime) {
  RateLimiter limiter(200, 1);  // 1 token every 5 ms
  EXPECT_TRUE(limiter.TryAcquire());
  // Immediately dry...
  EXPECT_FALSE(limiter.TryAcquire());
  // ...but refills; poll with a deadline far beyond the 5 ms refill so the
  // test cannot flake on a slow machine.
  bool refilled = false;
  for (int i = 0; i < 500 && !refilled; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    refilled = limiter.TryAcquire();
  }
  EXPECT_TRUE(refilled);
}

}  // namespace
}  // namespace server
}  // namespace st4ml
