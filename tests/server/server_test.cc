// End-to-end st4mld server tests (ISSUE 6): a real Server on an ephemeral
// loopback port in front of ONE warm Session, driven through the real
// Client. Pins the acceptance criteria: 8 concurrent clients with isolated
// per-job metrics, warm-cache hits on repeated selections, rate-limit
// shedding with RESOURCE_EXHAUSTED, protocol-error handling that keeps (or
// deliberately drops) the connection, and graceful shutdown that drains
// in-flight requests.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "accel/kernels.h"
#include "common/property.h"
#include "pipeline/session.h"
#include "server/client.h"
#include "server/frame.h"
#include "server/json.h"
#include "server/server.h"

namespace st4ml {
namespace server {
namespace {

ToolOptions DaemonOptions() {
  // The daemon defaults: unbounded cache (warm requests are the point),
  // modest worker pool.
  ToolOptions options;
  options.has_cache_budget = true;
  options.cache_budget_bytes = -1;
  options.num_workers = 4;
  return options;
}

/// One in-process daemon: Session + Server, started on an ephemeral port.
struct Daemon {
  explicit Daemon(ServerOptions server_options = {})
      : session(DaemonOptions()), server(&session, server_options) {
    Status started = server.Start();
    ST4ML_CHECK(started.ok()) << started.ToString();
  }
  ~Daemon() { server.Shutdown(); }

  Client Connect() {
    auto client = Client::Connect(server.port());
    ST4ML_CHECK(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  Session session;
  Server server;
};

/// Staged 400-record workload shared by most tests in this file.
testing::CacheWorkload ServeWorkload() {
  testing::CacheWorkload w;
  w.seed = 4242;
  w.num_records = 400;
  w.grid_t = 2;
  w.grid_s = 2;
  w.query = STBox(Mbr(0, 0, 100, 100), Duration(0, 100000));
  return w;
}

std::string SelectRequest(const std::string& dir, int64_t t_lo, int64_t t_hi,
                          int64_t limit = 100000) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                R"({"verb":"select","dir":"%s","mbr":[0,0,100,100],)"
                R"("time":[%lld,%lld],"limit":%lld})",
                dir.c_str(), static_cast<long long>(t_lo),
                static_cast<long long>(t_hi), static_cast<long long>(limit));
  return buf;
}

/// Calls and parses; fails the test (and returns a null value) on transport
/// or parse errors so callers can assert on fields directly.
JsonValue Call(Client& client, const std::string& request) {
  auto response = client.Call(request);
  if (!response.ok()) {
    ADD_FAILURE() << "Call failed: " << response.status().ToString();
    return JsonValue{};
  }
  auto parsed = ParseJson(*response);
  if (!parsed.ok()) {
    ADD_FAILURE() << "unparseable response: " << *response;
    return JsonValue{};
  }
  return *parsed;
}

bool Ok(const JsonValue& response) {
  const JsonValue* ok = response.Find("ok");
  return ok != nullptr && ok->IsBool() && ok->bool_value;
}

std::string ErrorCode(const JsonValue& response) {
  return response.GetString("code", "");
}

int64_t Metric(const JsonValue& response, const std::string& name) {
  const JsonValue* metrics = response.Find("metrics");
  if (metrics == nullptr) return -1;
  return metrics->GetInt(name, -1);
}

/// A bare socket to the daemon, for tests that need to misbehave in ways
/// Client cannot (hang up without reading, read without writing).
int RawConnect(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(ServerTest, PingStatsAndValidation) {
  Daemon daemon;
  Client client = daemon.Connect();

  JsonValue pong = Call(client, R"({"verb":"ping"})");
  EXPECT_TRUE(Ok(pong));

  JsonValue bad_sleep = Call(client, R"({"verb":"ping","sleep_ms":60000})");
  EXPECT_FALSE(Ok(bad_sleep));
  EXPECT_EQ(ErrorCode(bad_sleep), "INVALID_ARGUMENT");

  JsonValue stats = Call(client, R"({"verb":"stats"})");
  EXPECT_TRUE(Ok(stats));
  EXPECT_EQ(stats.GetInt("jobs_started", -1), 0);
  ASSERT_NE(stats.Find("metrics"), nullptr);

  // The daemon reports which kernel backend it computes on, and it must be
  // one the registry actually has (DESIGN.md §11).
  std::string backend = stats.GetString("backend", "");
  EXPECT_NE(accel::BackendRegistry::Instance().Find(backend), nullptr)
      << "stats reported unknown backend '" << backend << "'";
  EXPECT_GE(stats.GetInt("backend_batches", -1), 0);
  EXPECT_GE(stats.GetInt("backend_batch_records", -1), 0);
  EXPECT_GE(stats.GetInt("backend_fallback_records", -1), 0);
}

TEST(ServerTest, ProtocolErrorsKeepTheConnectionUsable) {
  Daemon daemon;
  Client client = daemon.Connect();

  // Malformed JSON: clean error, connection survives.
  JsonValue garbage = Call(client, "{this is not json");
  EXPECT_FALSE(Ok(garbage));
  EXPECT_EQ(ErrorCode(garbage), "INVALID_ARGUMENT");

  // Unknown verb: same.
  JsonValue unknown = Call(client, R"({"verb":"launch_missiles"})");
  EXPECT_FALSE(Ok(unknown));
  EXPECT_EQ(ErrorCode(unknown), "INVALID_ARGUMENT");

  // Non-object root: same.
  JsonValue array_root = Call(client, R"([1,2,3])");
  EXPECT_FALSE(Ok(array_root));

  // Missing / malformed request fields on a real verb: same.
  JsonValue no_dir = Call(client, R"({"verb":"select","mbr":[0,0,1,1],"time":[0,1]})");
  EXPECT_FALSE(Ok(no_dir));
  EXPECT_EQ(ErrorCode(no_dir), "INVALID_ARGUMENT");
  JsonValue bad_mbr = Call(client, R"({"verb":"select","dir":"/x","mbr":[0,0],"time":[0,1]})");
  EXPECT_FALSE(Ok(bad_mbr));

  // After all of that, the same connection still serves a healthy request.
  EXPECT_TRUE(Ok(Call(client, R"({"verb":"ping"})")));
}

TEST(ServerTest, OversizedFrameGetsErrorThenClose) {
  ServerOptions options;
  options.max_frame_bytes = 128;
  Daemon daemon(options);
  Client client = daemon.Connect();

  std::string huge = R"({"verb":"ping","pad":")" + std::string(500, 'p') + "\"}";
  JsonValue refused = Call(client, huge);
  EXPECT_FALSE(Ok(refused));
  EXPECT_EQ(ErrorCode(refused), "INVALID_ARGUMENT");

  // Oversized frames are protocol-fatal: the server hung up after the error.
  auto after = client.Call(R"({"verb":"ping"})");
  EXPECT_FALSE(after.ok());
}

// A client that hangs up (RST) before its response is written must cost the
// daemon ONE connection, never the process or other clients' service. The
// deterministic SIGPIPE pin is FrameTest.WriteToClosedPeerIsIOErrorNotSigpipe
// in protocol_test.cc; this covers the full server path under a hostile
// disconnect.
TEST(ServerTest, ClientHangupBeforeResponseDoesNotKillTheDaemon) {
  Daemon daemon;
  for (int round = 0; round < 3; ++round) {
    int fd = RawConnect(daemon.server.port());
    ASSERT_GE(fd, 0);
    // One round trip whose response we deliberately never read...
    ASSERT_TRUE(WriteFrame(fd, R"({"verb":"ping"})").ok());
    pollfd readable{fd, POLLIN, 0};
    ASSERT_GT(::poll(&readable, 1, 2000), 0);
    // ...then a slow request and an immediate hangup. Closing with unread
    // data pending makes the kernel send RST, so the server's response
    // write 150 ms later lands on a dead socket.
    ASSERT_TRUE(WriteFrame(fd, R"({"verb":"ping","sleep_ms":150})").ok());
    // Let the server consume the request and enter its sleep before the
    // hangup, so the RST reliably precedes the response write.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(250));

    Client alive = daemon.Connect();
    EXPECT_TRUE(Ok(Call(alive, R"({"verb":"ping"})")));
  }
}

// Wire-supplied numbers outside int64 range (or fractional where an integer
// is required) are client errors on every verb — a blind cast would be UB.
TEST(ServerTest, OutOfRangeWireNumbersAreCleanErrors) {
  Daemon daemon;
  Client client = daemon.Connect();
  for (const char* request :
       {R"({"verb":"ping","sleep_ms":1e300})",
        R"({"verb":"ping","sleep_ms":2.5})",
        R"({"verb":"select","dir":"/x","mbr":[0,0,1,1],"time":[0,1e300]})",
        R"({"verb":"select","dir":"/x","mbr":[0,0,1,1],"time":[-1e300,0]})",
        R"({"verb":"select","dir":"/x","mbr":[0,0,1,1],"time":[0,1],"limit":1e300})",
        R"({"verb":"extract","dir":"/x","mbr":[0,0,1,1],"time":[0,1],"interval":1e19})"}) {
    JsonValue response = Call(client, request);
    EXPECT_FALSE(Ok(response)) << request;
    EXPECT_EQ(ErrorCode(response), "INVALID_ARGUMENT") << request;
  }
  // The connection survived all of it.
  EXPECT_TRUE(Ok(Call(client, R"({"verb":"ping"})")));
}

// A long-lived daemon serving short connections must reap handler threads as
// it goes (not only at Shutdown), and must shed connections beyond
// max_connections at accept.
TEST(ServerTest, ConnectionThreadsAreReapedAndTheCapSheds) {
  ServerOptions options;
  options.max_connections = 4;
  Daemon daemon(options);

  // Churn 32 short-lived connections through the daemon.
  for (int i = 0; i < 32; ++i) {
    Client client = daemon.Connect();
    ASSERT_TRUE(Ok(Call(client, R"({"verb":"ping"})")));
  }
  // Once every handler has observed its hangup, the next accept reaps them
  // all; only the new connection's own thread may remain. Without the
  // reaper this reads 33.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (daemon.server.ActiveConnectionsForTest() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(daemon.server.ActiveConnectionsForTest(), 0u);
  Client fresh = daemon.Connect();
  ASSERT_TRUE(Ok(Call(fresh, R"({"verb":"ping"})")));
  EXPECT_EQ(daemon.server.ConnectionThreadsForTest(), 1u);

  // Fill the remaining slots, then one more connection is over the cap: the
  // server speaks first with RESOURCE_EXHAUSTED and hangs up.
  std::vector<Client> held;
  for (int i = 0; i < 3; ++i) {
    held.push_back(daemon.Connect());
    ASSERT_TRUE(Ok(Call(held.back(), R"({"verb":"ping"})")));
  }
  int extra = RawConnect(daemon.server.port());
  ASSERT_GE(extra, 0);
  auto shed = ReadFrame(extra, 1 << 20);
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  auto parsed = ParseJson(*shed);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(Ok(*parsed));
  EXPECT_EQ(ErrorCode(*parsed), "RESOURCE_EXHAUSTED");
  auto eof = ReadFrame(extra, 1 << 20);
  EXPECT_FALSE(eof.ok());
  ::close(extra);

  // Dropping a held connection frees a slot for the next client.
  held.pop_back();
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (daemon.server.ActiveConnectionsForTest() > 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  Client admitted = daemon.Connect();
  EXPECT_TRUE(Ok(Call(admitted, R"({"verb":"ping"})")));
}

TEST(ServerTest, SelectServesRowsAndWarmCacheHits) {
  testing::CacheWorkload w = ServeWorkload();
  testing::StagedWorkload staged(w);
  Daemon daemon;
  Client client = daemon.Connect();

  std::string request = SelectRequest(staged.dir(), 0, 100000);
  JsonValue cold = Call(client, request);
  ASSERT_TRUE(Ok(cold)) << ErrorCode(cold);
  int64_t count = cold.GetInt("count", -1);
  ASSERT_GT(count, 0);
  const JsonValue* rows = cold.Find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_TRUE(rows->IsArray());
  EXPECT_EQ(static_cast<int64_t>(rows->array.size()), count);
  // Row shape: the fields st4ml_client prints.
  EXPECT_GE(rows->array[0].GetInt("id", -1), 0);
  EXPECT_GE(rows->array[0].GetInt("time", -1), 0);
  // The cold request did real I/O.
  EXPECT_GT(Metric(cold, "cache_misses"), 0);
  EXPECT_GT(Metric(cold, "stpq_bytes_read"), 0);

  // Same query again: served from the session's warm cache, zero disk.
  JsonValue warm = Call(client, request);
  ASSERT_TRUE(Ok(warm));
  EXPECT_EQ(warm.GetInt("count", -1), count);
  EXPECT_GT(Metric(warm, "cache_hits"), 0);
  EXPECT_EQ(Metric(warm, "cache_misses"), 0);
  EXPECT_EQ(Metric(warm, "stpq_bytes_read"), 0);

  // The limit caps rows but not count.
  JsonValue limited = Call(client, SelectRequest(staged.dir(), 0, 100000, 5));
  ASSERT_TRUE(Ok(limited));
  EXPECT_EQ(limited.GetInt("count", -1), count);
  EXPECT_EQ(limited.Find("rows")->array.size(), 5u);

  // limit=0 is the count-only fast path: same count, no rows at all.
  JsonValue count_only =
      Call(client, SelectRequest(staged.dir(), 0, 100000, 0));
  ASSERT_TRUE(Ok(count_only));
  EXPECT_EQ(count_only.GetInt("count", -1), count);
  EXPECT_TRUE(count_only.Find("rows")->array.empty());

  // A dir that does not exist is a client error, not a dead daemon.
  JsonValue missing = Call(client, SelectRequest("/nonexistent/st4ml", 0, 1));
  EXPECT_FALSE(Ok(missing));
  EXPECT_NE(ErrorCode(missing), "");
  EXPECT_TRUE(Ok(Call(client, R"({"verb":"ping"})")));
}

// lookup_id pinned against the select reference: the ids the daemon served
// for a full-window select must come back, record for record, through the
// id-directed verb — with and without a spatio-temporal box.
TEST(ServerTest, LookupIdMatchesSelectReference) {
  testing::CacheWorkload w = ServeWorkload();
  testing::StagedWorkload staged(w);
  Daemon daemon;
  Client client = daemon.Connect();

  JsonValue all = Call(client, SelectRequest(staged.dir(), 0, 100000));
  ASSERT_TRUE(Ok(all));
  const JsonValue* rows = all.Find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_FALSE(rows->array.empty());
  // Per-id record counts from the reference selection.
  std::map<int64_t, int64_t> by_id;
  for (const JsonValue& row : rows->array) ++by_id[row.GetInt("id", -1)];
  std::vector<int64_t> wanted;
  for (const auto& [id, n] : by_id) {
    wanted.push_back(id);
    if (wanted.size() == 3) break;
  }
  ASSERT_EQ(wanted.size(), 3u);
  int64_t expected = 0;
  for (int64_t id : wanted) expected += by_id[id];

  char buf[512];
  std::snprintf(buf, sizeof(buf),
                R"({"verb":"lookup_id","dir":"%s","ids":[%lld,%lld,%lld],)"
                R"("limit":100000})",
                staged.dir().c_str(), static_cast<long long>(wanted[0]),
                static_cast<long long>(wanted[1]),
                static_cast<long long>(wanted[2]));
  JsonValue looked = Call(client, buf);
  ASSERT_TRUE(Ok(looked)) << ErrorCode(looked);
  EXPECT_EQ(looked.GetInt("count", -1), expected);
  const JsonValue* id_rows = looked.Find("rows");
  ASSERT_NE(id_rows, nullptr);
  for (const JsonValue& row : id_rows->array) {
    int64_t id = row.GetInt("id", -1);
    EXPECT_TRUE(std::find(wanted.begin(), wanted.end(), id) != wanted.end())
        << "lookup_id returned a record for unrequested id " << id;
  }

  // With a box the id predicate composes: a narrower window returns a
  // subset, never extra records.
  std::snprintf(buf, sizeof(buf),
                R"({"verb":"lookup_id","dir":"%s","ids":[%lld,%lld,%lld],)"
                R"("mbr":[0,0,100,100],"time":[0,50000],"limit":100000})",
                staged.dir().c_str(), static_cast<long long>(wanted[0]),
                static_cast<long long>(wanted[1]),
                static_cast<long long>(wanted[2]));
  JsonValue boxed = Call(client, buf);
  ASSERT_TRUE(Ok(boxed)) << ErrorCode(boxed);
  EXPECT_LE(boxed.GetInt("count", -1), expected);
  EXPECT_GE(boxed.GetInt("count", -1), 0);
}

TEST(ServerTest, LookupIdValidatesItsIds) {
  testing::CacheWorkload w = ServeWorkload();
  testing::StagedWorkload staged(w);
  Daemon daemon;
  Client client = daemon.Connect();

  char prefix[256];
  std::snprintf(prefix, sizeof(prefix), R"({"verb":"lookup_id","dir":"%s")",
                staged.dir().c_str());
  const std::string base(prefix);
  for (const std::string& request :
       {base + "}",                         // ids missing entirely
        base + R"(,"ids":[]})",             // empty array
        base + R"(,"ids":"7"})",            // wrong type
        base + R"(,"ids":[1,"two"]})",      // non-numeric entry
        base + R"(,"ids":[1.5]})",          // fractional
        base + R"(,"ids":[1e300]})"}) {     // out of int64 range
    JsonValue response = Call(client, request);
    EXPECT_FALSE(Ok(response)) << request;
    EXPECT_EQ(ErrorCode(response), "INVALID_ARGUMENT") << request;
  }
  // The connection survived the abuse.
  EXPECT_TRUE(Ok(Call(client, R"({"verb":"ping"})")));
}

// stats reports which datasets the daemon has served, whether their `.stix`
// sidecars are present, and the planner's per-file decisions.
TEST(ServerTest, StatsListsServedDatasetsAndPlannerCounters) {
  testing::CacheWorkload w = ServeWorkload();
  testing::StagedWorkload staged(w);
  Daemon daemon;
  Client client = daemon.Connect();

  JsonValue cold = Call(client, SelectRequest(staged.dir(), 0, 100000));
  ASSERT_TRUE(Ok(cold));
  // The daemon runs with its cache enabled, so the planner routes every
  // file through the cached-index plan (DESIGN.md §12 decision tree).
  EXPECT_GT(Metric(cold, "planner_cached_index"), 0);
  EXPECT_EQ(Metric(cold, "planner_mmap_index"), 0);

  JsonValue stats = Call(client, R"({"verb":"stats"})");
  ASSERT_TRUE(Ok(stats));
  const JsonValue* datasets = stats.Find("datasets");
  ASSERT_NE(datasets, nullptr);
  ASSERT_TRUE(datasets->IsArray());
  bool found = false;
  for (const JsonValue& row : datasets->array) {
    if (row.GetString("dir", "") != staged.dir()) continue;
    found = true;
    int64_t stpq = row.GetInt("stpq_files", -1);
    EXPECT_GT(stpq, 0);
    // Ingest bulk-loads one sidecar per part file.
    EXPECT_EQ(row.GetInt("stix_files", -1), stpq);
  }
  EXPECT_TRUE(found) << "served dataset missing from stats";
  const JsonValue* metrics = stats.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_GE(metrics->GetInt("planner_cached_index", -1), 0);
  EXPECT_GE(metrics->GetInt("index_files_mmapped", -1), 0);
  EXPECT_GE(metrics->GetInt("postings_hits", -1), 0);
}

TEST(ServerTest, ExtractBinsPartitionTheSelection) {
  testing::CacheWorkload w = ServeWorkload();
  testing::StagedWorkload staged(w);
  Daemon daemon;
  Client client = daemon.Connect();

  JsonValue selected = Call(client, SelectRequest(staged.dir(), 0, 100000));
  ASSERT_TRUE(Ok(selected));
  int64_t count = selected.GetInt("count", -1);

  char buf[512];
  std::snprintf(buf, sizeof(buf),
                R"({"verb":"extract","dir":"%s","mbr":[0,0,100,100],)"
                R"("time":[0,100000],"interval":25000})",
                staged.dir().c_str());
  JsonValue extracted = Call(client, buf);
  ASSERT_TRUE(Ok(extracted)) << ErrorCode(extracted);
  // Bin layout comes from the query's time range: 100000 / 25000 = 4 bins.
  EXPECT_EQ(extracted.GetInt("num_bins", -1), 4);
  const JsonValue* bins = extracted.Find("bins");
  ASSERT_NE(bins, nullptr);
  int64_t total = 0;
  for (const JsonValue& bin : bins->array) total += bin.GetInt("count", 0);
  // Every selected record lands in exactly one bin.
  EXPECT_EQ(total, count);
  EXPECT_EQ(extracted.GetInt("count", -1), count);
}

// The acceptance-criteria pin: >= 8 concurrent clients, each running a
// DIFFERENT query, each receiving its own job's metrics delta. The
// concurrent responses must match a serial replay of the same queries
// exactly — count AND per-job selection_records_out — which fails if any
// job's counters bleed into a neighbor's.
TEST(ServerTest, EightConcurrentClientsGetIsolatedPerJobMetrics) {
  testing::CacheWorkload w = ServeWorkload();
  testing::StagedWorkload staged(w);
  ServerOptions options;
  options.max_inflight = 8;
  Daemon daemon(options);

  constexpr int kClients = 8;
  struct Result {
    bool ok = false;
    int64_t count = -1;
    int64_t records_out = -1;
  };
  std::vector<Result> concurrent(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client = daemon.Connect();
      // Distinct temporal windows → distinct result sizes per client.
      JsonValue response =
          Call(client, SelectRequest(staged.dir(), 0, 12500 * (i + 1)));
      concurrent[i].ok = Ok(response);
      concurrent[i].count = response.GetInt("count", -1);
      concurrent[i].records_out = Metric(response, "selection_records_out");
    });
  }
  for (auto& t : threads) t.join();

  // Serial replay: the ground truth each concurrent response must match.
  Client replay = daemon.Connect();
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(concurrent[i].ok) << "client " << i;
    JsonValue serial =
        Call(replay, SelectRequest(staged.dir(), 0, 12500 * (i + 1)));
    ASSERT_TRUE(Ok(serial));
    EXPECT_EQ(concurrent[i].count, serial.GetInt("count", -1))
        << "client " << i << " count diverged under concurrency";
    EXPECT_EQ(concurrent[i].records_out,
              Metric(serial, "selection_records_out"))
        << "client " << i << " leaked a sibling job's counters";
  }
  // The widest window sees more records than the narrowest (the queries
  // really were different work).
  EXPECT_GT(concurrent[kClients - 1].count, concurrent[0].count);

  JsonValue stats = Call(replay, R"({"verb":"stats"})");
  EXPECT_GE(stats.GetInt("jobs_started", -1), kClients * 2);
}

TEST(ServerTest, RateLimitShedsJobVerbsButNotHealthChecks) {
  testing::CacheWorkload w = ServeWorkload();
  testing::StagedWorkload staged(w);
  ServerOptions options;
  options.rate_qps = 0.001;  // no meaningful refill within the test
  options.rate_burst = 1;
  Daemon daemon(options);
  Client client = daemon.Connect();

  JsonValue first = Call(client, SelectRequest(staged.dir(), 0, 100000));
  EXPECT_TRUE(Ok(first));

  JsonValue shed = Call(client, SelectRequest(staged.dir(), 0, 100000));
  EXPECT_FALSE(Ok(shed));
  EXPECT_EQ(ErrorCode(shed), "RESOURCE_EXHAUSTED");

  // ping and stats bypass the bucket: health stays observable under load.
  EXPECT_TRUE(Ok(Call(client, R"({"verb":"ping"})")));
  EXPECT_TRUE(Ok(Call(client, R"({"verb":"stats"})")));
}

TEST(ServerTest, GracefulShutdownDrainsInflightRequests) {
  Daemon daemon;
  std::atomic<bool> connected{false};
  std::atomic<bool> got_response{false};
  std::thread slow([&] {
    Client client = daemon.Connect();
    connected = true;
    // In flight for ~400 ms while Shutdown runs.
    JsonValue response = Call(client, R"({"verb":"ping","sleep_ms":400})");
    got_response = Ok(response);
  });
  while (!connected) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  daemon.server.Shutdown();  // must drain, not drop, the sleeping ping
  slow.join();
  EXPECT_TRUE(got_response.load());

  // After shutdown the port no longer accepts connections.
  auto refused = Client::Connect(daemon.server.port());
  EXPECT_FALSE(refused.ok());
}

TEST(ServerTest, ShutdownVerbSignalsTheDaemonLoop) {
  Daemon daemon;
  // Nothing requested yet: the wait times out false.
  EXPECT_FALSE(daemon.server.WaitShutdownRequested(50));

  Client client = daemon.Connect();
  JsonValue response = Call(client, R"({"verb":"shutdown"})");
  EXPECT_TRUE(Ok(response));
  // The daemon's main loop observes the request and calls Shutdown itself.
  EXPECT_TRUE(daemon.server.WaitShutdownRequested(2000));
  daemon.server.Shutdown();
}

}  // namespace
}  // namespace server
}  // namespace st4ml
