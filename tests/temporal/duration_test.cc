#include "temporal/duration.h"

#include <gtest/gtest.h>

#include "instances/structures.h"

namespace st4ml {
namespace {

TEST(DurationTest, ClosedIntervalSemantics) {
  Duration d(10, 20);
  EXPECT_TRUE(d.Contains(10));
  EXPECT_TRUE(d.Contains(20));
  EXPECT_FALSE(d.Contains(21));
  EXPECT_TRUE(d.Intersects(Duration(20, 30)));   // shared endpoint
  EXPECT_TRUE(d.Intersects(Duration(0, 10)));
  EXPECT_FALSE(d.Intersects(Duration(21, 30)));
  EXPECT_EQ(d.Seconds(), 10);
  EXPECT_TRUE(Duration(5).IsInstant());
}

TEST(DurationTest, HourOfDayHandlesNegativesAndWrap) {
  EXPECT_EQ(HourOfDay(0), 0);
  EXPECT_EQ(HourOfDay(3600), 1);
  EXPECT_EQ(HourOfDay(86400 + 2 * 3600 + 59), 2);
  EXPECT_EQ(HourOfDay(-3600), 23);
}

TEST(TemporalSlidingTest, CoversRangeWithClippedTail) {
  std::vector<Duration> bins = TemporalSliding(Duration(0, 10000), 3600);
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0].start(), 0);
  EXPECT_EQ(bins[1].start(), 3600);
  EXPECT_EQ(bins[2].start(), 7200);
  EXPECT_GE(bins[2].end(), 10000 - 1);
}

/// The cross-system agreement invariant: RegularByInterval bins must equal
/// TemporalSliding windows, bin for bin — converters and hand-rolled
/// baseline loops both derive their temporal buckets from these.
TEST(TemporalSlidingTest, MatchesRegularByIntervalStructure) {
  Duration range(1000, 1000 + 24 * 3600);
  auto windows = TemporalSliding(range, 3600);
  TemporalStructure structure =
      TemporalStructure::RegularByInterval(range, 3600);
  ASSERT_EQ(windows.size(), structure.size());
  for (size_t i = 0; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].start(), structure.bin(i).start()) << "bin " << i;
    EXPECT_EQ(windows[i].end(), structure.bin(i).end()) << "bin " << i;
  }
}

TEST(TemporalSlidingTest, RegularEqualsSlidingWhenDivisible) {
  Duration range(0, 7200);
  TemporalStructure regular = TemporalStructure::Regular(range, 2);
  auto sliding = TemporalSliding(range, 3600);
  ASSERT_EQ(regular.size(), sliding.size());
  for (size_t i = 0; i < sliding.size(); ++i) {
    EXPECT_EQ(regular.bin(i).start(), sliding[i].start());
    EXPECT_EQ(regular.bin(i).end(), sliding[i].end());
  }
}

}  // namespace
}  // namespace st4ml
