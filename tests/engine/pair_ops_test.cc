#include "engine/pair_ops.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/dataset.h"
#include "engine/execution_context.h"

namespace st4ml {
namespace {

std::vector<std::pair<int64_t, int64_t>> RandomPairs(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int64_t, int64_t>> pairs;
  pairs.reserve(n);
  for (int i = 0; i < n; ++i) {
    pairs.emplace_back(rng.UniformInt(0, 40), rng.UniformInt(-5, 5));
  }
  return pairs;
}

TEST(ReduceByKeyTest, MatchesReferenceMap) {
  auto ctx = ExecutionContext::Create(3);
  auto pairs = RandomPairs(5000, 17);
  std::map<int64_t, int64_t> expected;
  for (const auto& [k, v] : pairs) expected[k] += v;

  auto data = Dataset<std::pair<int64_t, int64_t>>::Parallelize(ctx, pairs, 8);
  auto reduced = TryReduceByKey<int64_t, int64_t>(data, std::plus<int64_t>());
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  auto collected = reduced->Collect();
  EXPECT_EQ(collected.size(), expected.size());
  for (const auto& [k, v] : collected) {
    EXPECT_EQ(v, expected.at(k)) << "key " << k;
  }
}

TEST(ReduceByKeyTest, CompositeKeysWithPairHash) {
  auto ctx = ExecutionContext::Create(2);
  using Key = std::pair<int64_t, int64_t>;
  std::vector<std::pair<Key, int64_t>> pairs = {
      {{1, 2}, 10}, {{1, 2}, 5}, {{3, 4}, 1}, {{1, 3}, 7}};
  auto data =
      Dataset<std::pair<Key, int64_t>>::Parallelize(ctx, pairs, 2);
  auto reduced = TryReduceByKey<Key, int64_t, std::plus<int64_t>, PairHash>(
      data, std::plus<int64_t>());
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  std::map<Key, int64_t> result;
  for (const auto& [k, v] : reduced->Collect()) result[k] = v;
  EXPECT_EQ(result.at(Key(1, 2)), 15);
  EXPECT_EQ(result.at(Key(3, 4)), 1);
  EXPECT_EQ(result.at(Key(1, 3)), 7);
}

TEST(GroupByKeyTest, GroupsEveryValue) {
  auto ctx = ExecutionContext::Create(3);
  auto pairs = RandomPairs(2000, 23);
  std::map<int64_t, std::vector<int64_t>> expected;
  for (const auto& [k, v] : pairs) expected[k].push_back(v);
  for (auto& [k, vs] : expected) std::sort(vs.begin(), vs.end());

  auto data = Dataset<std::pair<int64_t, int64_t>>::Parallelize(ctx, pairs, 8);
  auto grouped = TryGroupByKey<int64_t, int64_t>(data);
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  auto collected = grouped->Collect();
  EXPECT_EQ(collected.size(), expected.size());
  for (auto& [k, vs] : collected) {
    std::sort(vs.begin(), vs.end());
    EXPECT_EQ(vs, expected.at(k)) << "key " << k;
  }
}

TEST(GroupByKeyTest, CollectedGroupsAreNotGloballySorted) {
  // Keys land on hash-assigned partitions; consumers that need key order
  // must sort. This pins the contract the shuffle conversion relies on.
  auto ctx = ExecutionContext::Create(2);
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t k = 0; k < 100; ++k) pairs.emplace_back(k, k);
  auto data = Dataset<std::pair<int64_t, int64_t>>::Parallelize(ctx, pairs, 4);
  auto grouped = TryGroupByKey<int64_t, int64_t>(data);
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  auto keys_seen = grouped->Collect();
  ASSERT_EQ(keys_seen.size(), 100u);
  std::vector<int64_t> keys;
  for (const auto& [k, vs] : keys_seen) keys.push_back(k);
  std::vector<int64_t> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted.front(), 0);
  EXPECT_EQ(sorted.back(), 99);
}

}  // namespace
}  // namespace st4ml
