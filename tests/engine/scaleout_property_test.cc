// Cross-backend differential for the executor layer (DESIGN.md §14): 50
// seeded random workloads each replay the full Selection → Repartition →
// persist → extraction pipeline under the local executor (1 and 8 pool
// threads) and the multiprocess executor (1, 2 and 4 forked workers). Every
// run must Collect byte-identical output and agree with the single-threaded
// local reference on every executor-invariant counter — record flow,
// shuffle volume, pruning decisions and failure counts. Only the two
// executor-shape counters may vary: chunk claims (a claim is a pool
// artifact locally and a task grant under mp) and parallel jobs (a
// one-worker non-distributed Repartition deals sequentially without
// opening a job at all).
//
// Seeds divisible by 5 run with probabilistic faults armed on stpq/read,
// so forked workers exercise the in-worker retry path mid-comparison (the
// armed injector state is inherited across fork).
//
// The sweep is sharded into ranges of 10 so a regression names a small
// seed set instead of one 50-seed monolith.

#include "common/property.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace st4ml {
namespace testing {
namespace {

void SweepSeeds(uint64_t begin, uint64_t end) {
  for (uint64_t seed = begin; seed < end; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExpectScaleoutIdentical(RandomCacheWorkload(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ScaleoutPropertyTest, Seeds00Through09) { SweepSeeds(0, 10); }
TEST(ScaleoutPropertyTest, Seeds10Through19) { SweepSeeds(10, 20); }
TEST(ScaleoutPropertyTest, Seeds20Through29) { SweepSeeds(20, 30); }
TEST(ScaleoutPropertyTest, Seeds30Through39) { SweepSeeds(30, 40); }
TEST(ScaleoutPropertyTest, Seeds40Through49) { SweepSeeds(40, 50); }

// The invariant list must be CacheInvariantCounters minus exactly the two
// executor-shape counters — if someone adds a counter to one list and
// forgets the other, the differential silently weakens.
TEST(ScaleoutPropertyTest, InvariantCountersTrackCacheList) {
  std::vector<Counter> expected = CacheInvariantCounters();
  for (Counter shape : {Counter::kChunkClaims, Counter::kParallelJobs}) {
    expected.erase(std::find(expected.begin(), expected.end(), shape));
  }
  EXPECT_EQ(ExecutorInvariantCounters(), expected);
  EXPECT_EQ(ExecutorInvariantCounters().size(),
            CacheInvariantCounters().size() - 2);
  // The list still polices the counters that would catch a lost or
  // double-consumed result frame.
  const std::vector<Counter>& inv = ExecutorInvariantCounters();
  for (Counter c : {Counter::kSelectionRecordsOut, Counter::kShuffleRecords,
                    Counter::kTasksFailed}) {
    EXPECT_NE(std::find(inv.begin(), inv.end(), c), inv.end())
        << CounterName(c);
  }
}

}  // namespace
}  // namespace testing
}  // namespace st4ml
