#include "engine/dataset.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/broadcast.h"
#include "engine/execution_context.h"

namespace st4ml {
namespace {

std::vector<int> Iota(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(DatasetTest, ParallelizeSlicesEvenlyAndCollectsInOrder) {
  auto ctx = ExecutionContext::Create(4);
  auto data = Dataset<int>::Parallelize(ctx, Iota(10), 3);
  EXPECT_EQ(data.num_partitions(), 3u);
  EXPECT_EQ(data.Count(), 10u);
  EXPECT_EQ(data.Collect(), Iota(10));
}

TEST(DatasetTest, MapFilterFlatMap) {
  auto ctx = ExecutionContext::Create(2);
  auto data = Dataset<int>::Parallelize(ctx, Iota(100), 4);

  auto doubled = data.Map([](int v) { return v * 2; });
  EXPECT_EQ(doubled.Collect()[7], 14);

  auto evens = data.Filter([](int v) { return v % 2 == 0; });
  EXPECT_EQ(evens.Count(), 50u);

  auto repeated = data.FlatMap([](int v) {
    return std::vector<int>(static_cast<size_t>(v % 3), v);
  });
  size_t expected = 0;
  for (int v : Iota(100)) expected += static_cast<size_t>(v % 3);
  EXPECT_EQ(repeated.Count(), expected);
}

TEST(DatasetTest, MapPartitionsSeesWholeSlices) {
  auto ctx = ExecutionContext::Create(2);
  auto data = Dataset<int>::Parallelize(ctx, Iota(10), 2);
  auto sums = data.MapPartitions([](const std::vector<int>& part) {
    return std::vector<int>{std::accumulate(part.begin(), part.end(), 0)};
  });
  std::vector<int> collected = sums.Collect();
  ASSERT_EQ(collected.size(), 2u);
  EXPECT_EQ(collected[0] + collected[1], 45);
}

TEST(DatasetTest, AggregateIsDeterministic) {
  auto ctx = ExecutionContext::Create(3);
  auto data = Dataset<int>::Parallelize(ctx, Iota(1000), 7);
  for (int run = 0; run < 3; ++run) {
    long total = data.Aggregate(
        0L, [](long acc, int v) { return acc + v; },
        [](long a, long b) { return a + b; });
    EXPECT_EQ(total, 999L * 1000 / 2);
  }
}

TEST(DatasetTest, RepartitionPreservesElements) {
  auto ctx = ExecutionContext::Create(2);
  auto data = Dataset<int>::Parallelize(ctx, Iota(37), 2);
  auto wide = data.Repartition(8);
  EXPECT_EQ(wide.num_partitions(), 8u);
  std::vector<int> collected = wide.Collect();
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, Iota(37));
}

TEST(DatasetTest, RepartitionCountsShuffleMetrics) {
  auto ctx = ExecutionContext::Create(2);
  ctx->ResetMetrics();
  auto data = Dataset<int>::Parallelize(ctx, Iota(64), 2);
  data.Repartition(4).Count();
  EXPECT_GT(ctx->MetricsSnapshot().shuffle_records(), 0u);
  EXPECT_GT(ctx->MetricsSnapshot().shuffle_bytes(), 0u);
}

TEST(BroadcastTest, SharedValueAndCounter) {
  auto ctx = ExecutionContext::Create(2);
  ctx->ResetMetrics();
  Broadcast<std::string> b = MakeBroadcast(ctx, std::string("shared"));
  ASSERT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(b.value(), "shared");
  EXPECT_EQ(ctx->MetricsSnapshot().broadcasts(), 1u);

  auto data = Dataset<int>::Parallelize(ctx, Iota(10), 2);
  auto tagged = data.Map([b](int v) {
    return b.value() + ":" + std::to_string(v);
  });
  EXPECT_EQ(tagged.Collect()[3], "shared:3");
}

}  // namespace
}  // namespace st4ml
