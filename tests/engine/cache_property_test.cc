// Differential property test for the dataset cache (ISSUE 5): 50 seeded
// random workloads, each run uncached and cached at budgets {0, tiny,
// unbounded} and worker counts {1, 8}, must produce byte-identical
// Collect() output and identical non-cache counters. Seeds divisible by 5
// run with probabilistic faults armed on the stpq/read site, so spill
// reloads and cache-miss re-reads exercise the retry path mid-comparison.
// Since ISSUE 7 every seed also draws a random kernel backend and
// ExpectIdentical replays the whole grid under scalar AND that backend
// (same effect as randomizing ST4ML_BACKEND, but deterministic per seed),
// so the sweep doubles as the scalar-vs-SIMD differential on the real
// cold and warm selection paths.
//
// The sweep is sharded into ranges of 10 so a regression names a small
// seed set instead of one 50-seed monolith.

#include "common/property.h"

#include <gtest/gtest.h>

namespace st4ml {
namespace testing {
namespace {

void SweepSeeds(uint64_t begin, uint64_t end) {
  for (uint64_t seed = begin; seed < end; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExpectIdentical(RandomCacheWorkload(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(CachePropertyTest, Seeds00Through09) { SweepSeeds(0, 10); }
TEST(CachePropertyTest, Seeds10Through19) { SweepSeeds(10, 20); }
TEST(CachePropertyTest, Seeds20Through29) { SweepSeeds(20, 30); }
TEST(CachePropertyTest, Seeds30Through39) { SweepSeeds(30, 40); }
TEST(CachePropertyTest, Seeds40Through49) { SweepSeeds(40, 50); }

// The generator must actually cover the regimes the sweep claims to test:
// fault-armed seeds, empty-result queries, full-domain queries, and
// pathological 1-byte budgets all appear within the 50 seeds.
TEST(CachePropertyTest, GeneratorCoversTheInterestingRegimes) {
  int faulty = 0, one_byte_budgets = 0, non_scalar_backends = 0;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    CacheWorkload w = RandomCacheWorkload(seed);
    if (w.fault_prob > 0) ++faulty;
    if (w.tiny_budget == 1) ++one_byte_budgets;
    if (w.backend != "scalar") ++non_scalar_backends;
    EXPECT_NE(accel::BackendRegistry::Instance().Find(w.backend), nullptr)
        << "seed " << seed << " drew unavailable backend " << w.backend;
    EXPECT_GE(w.num_records, 1) << "seed " << seed;
    EXPECT_GE(w.repeats, 2) << "reuse needs at least two Selects";
  }
  EXPECT_GE(faulty, 5);
  EXPECT_GE(one_byte_budgets, 1);
  // On any multi-backend build (x86-64 always has at least sse2), the
  // sweep must actually run SIMD backends, not just draw scalar 50 times.
  if (accel::BackendRegistry::Instance().Available().size() > 1) {
    EXPECT_GE(non_scalar_backends, 10);
  }
}

}  // namespace
}  // namespace testing
}  // namespace st4ml
