#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "engine/dataset.h"
#include "engine/execution_context.h"
#include "engine/pair_ops.h"
#include "partition/st_partition_ops.h"
#include "storage/records.h"

namespace st4ml {
namespace {

// The global injector outlives every test; leave it disarmed for the next one.
class FaultToleranceTest : public ::testing::Test {
 protected:
  void TearDown() override { GlobalFaultInjector().Reset(); }
};

TEST_F(FaultToleranceTest, TryRunParallelReturnsFirstStatusError) {
  auto ctx = ExecutionContext::Create(4);
  Status status = ctx->TryRunParallel(100, [](size_t i) {
    if (i == 17) return Status::IOError("index 17 is cursed");
    return Status::Ok();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kIOError);
  EXPECT_NE(status.message().find("index 17"), std::string::npos);
  EXPECT_GE(ctx->MetricsSnapshot()[Counter::kTasksFailed], 1u);
}

TEST_F(FaultToleranceTest, FailureStopsFurtherWork) {
  // After the failing index every un-started index is dropped: with a
  // single worker the claim order is sequential, so nothing past the
  // failure runs at all.
  auto ctx = ExecutionContext::Create(1);
  std::atomic<size_t> ran{0};
  Status status = ctx->TryRunParallel(1000, [&](size_t i) {
    ran.fetch_add(1);
    if (i == 0) return Status::Internal("fail fast");
    return Status::Ok();
  });
  EXPECT_FALSE(status.ok());
  EXPECT_LT(ran.load(), 1000u);
}

TEST_F(FaultToleranceTest, ThrowingTaskBecomesInternalStatus) {
  auto ctx = ExecutionContext::Create(4);
  Status status = ctx->TryRunParallel(8, [](size_t i) -> Status {
    if (i == 3) throw std::runtime_error("boom");
    return Status::Ok();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kInternal);
  EXPECT_NE(status.message().find("boom"), std::string::npos);
}

TEST_F(FaultToleranceTest, ThrownStatusErrorKeepsItsCode) {
  auto ctx = ExecutionContext::Create(4);
  Status status = ctx->TryRunParallel(8, [](size_t i) -> Status {
    if (i == 5) throw StatusError(Status::Corruption("bad bytes"));
    return Status::Ok();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kCorruption);
}

TEST_F(FaultToleranceTest, RunParallelRethrowsOriginalExceptionOnDriver) {
  auto ctx = ExecutionContext::Create(4);
  EXPECT_THROW(ctx->RunParallel(16,
                                [](size_t i) {
                                  if (i == 9) {
                                    throw std::out_of_range("nine");
                                  }
                                }),
               std::out_of_range);
}

TEST_F(FaultToleranceTest, ThrowingDatasetMapSurfacesWithoutTerminate) {
  auto ctx = ExecutionContext::Create(4);
  auto data = Dataset<int>::Parallelize(ctx, {1, 2, 3, 4, 5, 6, 7, 8}, 4);
  EXPECT_THROW(data.Map([](const int& v) -> int {
                 if (v == 6) throw std::runtime_error("map blew up");
                 return v * 2;
               }),
               std::runtime_error);
}

TEST_F(FaultToleranceTest, ContextSurvivesFailedJobs) {
  // A failed job must not poison the pool: the next job on the same
  // context runs every index.
  auto ctx = ExecutionContext::Create(4);
  ASSERT_FALSE(
      ctx->TryRunParallel(32, [](size_t) {
           return Status::IOError("down");
         }).ok());
  std::atomic<size_t> ran{0};
  Status status = ctx->TryRunParallel(64, [&](size_t) {
    ran.fetch_add(1);
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(ran.load(), 64u);
}

TEST_F(FaultToleranceTest, RepeatedFailuresNeverDeadlock) {
  // The regression this PR fixes: a failed job used to leave done < count
  // and the driver blocked forever (when the escaping exception didn't
  // terminate the process first). Alternate failing and clean jobs enough
  // times that any lost-wakeup or missed-accounting bug would hang; under
  // TSan in CI this also proves the error path is race-free.
  auto ctx = ExecutionContext::Create(4);
  for (int round = 0; round < 50; ++round) {
    Status failed = ctx->TryRunParallel(97, [&](size_t i) {
      if (i % 13 == static_cast<size_t>(round % 13)) {
        return Status::IOError("transient");
      }
      return Status::Ok();
    });
    EXPECT_FALSE(failed.ok());
    std::atomic<size_t> ran{0};
    ASSERT_TRUE(ctx->TryRunParallel(41, [&](size_t) {
                     ran.fetch_add(1);
                     return Status::Ok();
                   }).ok());
    EXPECT_EQ(ran.load(), 41u);
  }
}

TEST_F(FaultToleranceTest, EmptyJobIsOk) {
  auto ctx = ExecutionContext::Create(2);
  EXPECT_TRUE(ctx->TryRunParallel(0, [](size_t) {
                   return Status::Internal("never called");
                 }).ok());
}

TEST_F(FaultToleranceTest, TryReduceByKeyPropagatesThrowingReducer) {
  auto ctx = ExecutionContext::Create(4);
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < 100; ++i) pairs.emplace_back(i % 5, 1);
  auto data = Dataset<std::pair<int, int>>::Parallelize(ctx, pairs, 4);
  auto result = TryReduceByKey<int, int>(data, [](int, int) -> int {
    throw std::runtime_error("reducer down");
  });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInternal);
}

TEST_F(FaultToleranceTest, LegacyReduceByKeyThrowsStatusError) {
  auto ctx = ExecutionContext::Create(4);
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < 100; ++i) pairs.emplace_back(i % 5, 1);
  auto data = Dataset<std::pair<int, int>>::Parallelize(ctx, pairs, 4);
  auto call = [&] {
    // This test pins the deprecated wrapper's throwing contract, so it is
    // the one caller allowed to keep using it.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    ReduceByKey<int, int>(data, [](int, int) -> int {
      throw std::runtime_error("down");
    });
#pragma GCC diagnostic pop
  };
  EXPECT_THROW(call(), StatusError);
}

TEST_F(FaultToleranceTest, TrySTPartitionRejectsNullPartitioner) {
  auto ctx = ExecutionContext::Create(2);
  auto data = Dataset<EventRecord>::Parallelize(
      ctx, std::vector<EventRecord>(10), 2);
  auto result = TrySTPartition(
      data, nullptr, [](const EventRecord& r) { return r.ComputeSTBox(); },
      [](const EventRecord& r) { return static_cast<uint64_t>(r.id); });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(FaultToleranceTest, InjectedTaskFaultFailsJobWithIOError) {
  auto ctx = ExecutionContext::Create(4);
  GlobalFaultInjector().FailNext(fault_site::kTaskRun, 1);
  Status status =
      ctx->TryRunParallel(50, [](size_t) { return Status::Ok(); });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kIOError);
  EXPECT_NE(status.message().find("injected fault"), std::string::npos);
  EXPECT_GE(ctx->MetricsSnapshot()[Counter::kFaultsInjected], 1u);
  // The injector is spent; the same context runs clean again.
  EXPECT_TRUE(
      ctx->TryRunParallel(50, [](size_t) { return Status::Ok(); }).ok());
}

}  // namespace
}  // namespace st4ml
