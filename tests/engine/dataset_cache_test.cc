// DatasetCache unit tests: LRU eviction order, the zero-budget pass-through,
// immediate spill of partitions larger than the budget, spill → reload
// byte equality, origin-backed entries, and concurrent access from
// RunParallel workers (exercised under TSan in CI).

#include "engine/dataset_cache.h"

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/property.h"
#include "engine/cached_dataset.h"
#include "engine/execution_context.h"
#include "storage/records.h"
#include "storage/stpq.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

bool SameRecords(const std::vector<EventRecord>& a,
                 const std::vector<EventRecord>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].x != b[i].x || a[i].y != b[i].y ||
        a[i].time != b[i].time || a[i].attr != b[i].attr) {
      return false;
    }
  }
  return true;
}

std::shared_ptr<const std::vector<EventRecord>> MakePartition(int n,
                                                              uint64_t seed) {
  return std::make_shared<const std::vector<EventRecord>>(
      testing::RandomWorkloadEvents(n, seed));
}

const std::vector<EventRecord>& AsRecords(
    const std::shared_ptr<const void>& data) {
  return *std::static_pointer_cast<const std::vector<EventRecord>>(data);
}

class DatasetCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scratch_ = (fs::temp_directory_path() /
                ("st4ml_cache_test_" + std::to_string(::getpid())))
                   .string();
    fs::remove_all(scratch_);
  }
  void TearDown() override { fs::remove_all(scratch_); }

  DatasetCache::Options OptionsWithBudget(uint64_t budget) {
    DatasetCache::Options options;
    options.budget_bytes = budget;
    options.scratch_dir = scratch_;
    return options;
  }

  std::string scratch_;
  CounterRegistry counters_;
};

// Entries without a spill function or origin are erased on eviction, which
// makes the eviction ORDER directly observable as Get misses.
TEST_F(DatasetCacheTest, EvictsLeastRecentlyUsedFirst) {
  auto part = MakePartition(8, 1);
  const uint64_t bytes = cache_internal::StpqPartitionBytes(*part);
  DatasetCache cache(OptionsWithBudget(2 * bytes), &counters_);
  const uint64_t ds = cache.NewDatasetId();
  cache.Put(ds, 0, part, bytes, nullptr, nullptr);
  cache.Put(ds, 1, part, bytes, nullptr, nullptr);
  // Touch partition 0 so partition 1 becomes the LRU victim.
  ASSERT_NE(*cache.Get(ds, 0), nullptr);
  cache.Put(ds, 2, part, bytes, nullptr, nullptr);

  EXPECT_EQ(*cache.Get(ds, 1), nullptr) << "LRU entry should have been evicted";
  EXPECT_NE(*cache.Get(ds, 0), nullptr);
  EXPECT_NE(*cache.Get(ds, 2), nullptr);
  DatasetCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_LE(stats.resident_bytes, 2 * bytes);
}

TEST_F(DatasetCacheTest, ZeroBudgetIsInertPassThrough) {
  DatasetCache cache(OptionsWithBudget(0), &counters_);
  EXPECT_FALSE(cache.enabled());
  auto part = MakePartition(4, 2);
  const uint64_t ds = cache.NewDatasetId();
  cache.Put(ds, 0, part, cache_internal::StpqPartitionBytes(*part),
            &cache_internal::SpillPartition<EventRecord>,
            &cache_internal::ReloadPartition<EventRecord>);
  auto got = cache.Get(ds, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, nullptr);
  DatasetCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.resident_entries, 0u);
  EXPECT_EQ(counters_.Snapshot()[Counter::kCacheMisses], 0u);
  EXPECT_FALSE(fs::exists(scratch_));
}

// A partition larger than the whole budget cannot stay resident: it is
// spilled to the scratch dir on insert and transparently reloaded on Get.
TEST_F(DatasetCacheTest, OversizedPartitionSpillsImmediately) {
  auto part = MakePartition(32, 3);
  const uint64_t bytes = cache_internal::StpqPartitionBytes(*part);
  DatasetCache cache(OptionsWithBudget(bytes / 2), &counters_);
  const uint64_t ds = cache.NewDatasetId();
  cache.Put(ds, 0, part, bytes, &cache_internal::SpillPartition<EventRecord>,
            &cache_internal::ReloadPartition<EventRecord>);

  DatasetCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.resident_entries, 0u);
  EXPECT_EQ(stats.resident_bytes, 0u);
  EXPECT_EQ(stats.spilled_entries, 1u);
  EXPECT_EQ(stats.spill_bytes, bytes);
  ASSERT_TRUE(fs::exists(scratch_));
  EXPECT_FALSE(fs::is_empty(scratch_));

  auto got = cache.Get(ds, 0);
  ASSERT_TRUE(got.ok());
  ASSERT_NE(*got, nullptr);
  EXPECT_TRUE(SameRecords(AsRecords(*got), *part));
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.reload_bytes, bytes);
}

// Spill + reload round-trips the records bit-for-bit, and the engine
// counters mirror the cache's own stats.
TEST_F(DatasetCacheTest, SpillReloadRoundTripsExactBytes) {
  auto part_a = MakePartition(16, 4);
  auto part_b = MakePartition(16, 5);
  const uint64_t bytes = cache_internal::StpqPartitionBytes(*part_a);
  DatasetCache cache(OptionsWithBudget(bytes + bytes / 2), &counters_);
  const uint64_t ds = cache.NewDatasetId();
  cache.Put(ds, 0, part_a, bytes,
            &cache_internal::SpillPartition<EventRecord>,
            &cache_internal::ReloadPartition<EventRecord>);
  cache.Put(ds, 1, part_b, cache_internal::StpqPartitionBytes(*part_b),
            &cache_internal::SpillPartition<EventRecord>,
            &cache_internal::ReloadPartition<EventRecord>);
  ASSERT_EQ(cache.stats().spilled_entries, 1u);

  auto got = cache.Get(ds, 0);  // the spilled one
  ASSERT_TRUE(got.ok());
  ASSERT_NE(*got, nullptr);
  EXPECT_TRUE(SameRecords(AsRecords(*got), *part_a));

  MetricsSnapshot metrics = counters_.Snapshot();
  DatasetCache::Stats stats = cache.stats();
  EXPECT_EQ(metrics[Counter::kCacheHits], stats.hits);
  EXPECT_EQ(metrics[Counter::kCacheEvictions], stats.evictions);
  EXPECT_EQ(metrics[Counter::kCacheSpillBytes], stats.spill_bytes);
  EXPECT_EQ(metrics[Counter::kCacheReloadBytes], stats.reload_bytes);
}

// PutWithOrigin entries never write scratch files: eviction just drops the
// memory and Get re-reads the durable origin file.
TEST_F(DatasetCacheTest, OriginBackedEntryReloadsWithoutSpilling) {
  auto part = MakePartition(12, 6);
  const uint64_t bytes = cache_internal::StpqPartitionBytes(*part);
  fs::create_directories(scratch_);
  const std::string origin = scratch_ + "/origin.stpq";
  ASSERT_TRUE(WriteStpqFile(origin, *part, nullptr).ok());

  DatasetCache cache(OptionsWithBudget(bytes / 2), &counters_);
  const uint64_t ds = cache.InternDatasetId("stpq:" + origin);
  EXPECT_EQ(ds, cache.InternDatasetId("stpq:" + origin)) << "ids are stable";
  cache.PutWithOrigin(ds, 0, part, bytes, origin,
                      &cache_internal::ReloadPartition<EventRecord>);

  DatasetCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.resident_entries, 0u);
  EXPECT_EQ(stats.spill_bytes, 0u) << "origin-backed eviction writes nothing";
  auto got = cache.Get(ds, 0);
  ASSERT_TRUE(got.ok());
  ASSERT_NE(*got, nullptr);
  EXPECT_TRUE(SameRecords(AsRecords(*got), *part));
  EXPECT_GT(cache.stats().reload_bytes, 0u);
  EXPECT_TRUE(fs::exists(origin)) << "origin files are never deleted";
}

TEST_F(DatasetCacheTest, DropDatasetRemovesEntriesAndSpillFiles) {
  auto part = MakePartition(16, 7);
  const uint64_t bytes = cache_internal::StpqPartitionBytes(*part);
  DatasetCache cache(OptionsWithBudget(bytes / 2), &counters_);
  const uint64_t ds = cache.NewDatasetId();
  cache.Put(ds, 0, part, bytes, &cache_internal::SpillPartition<EventRecord>,
            &cache_internal::ReloadPartition<EventRecord>);
  ASSERT_TRUE(fs::exists(scratch_));
  ASSERT_FALSE(fs::is_empty(scratch_));

  cache.DropDataset(ds);
  EXPECT_TRUE(fs::is_empty(scratch_)) << "spill files deleted with the entry";
  auto got = cache.Get(ds, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, nullptr);
}

// Many RunParallel workers hammer one budget-starved cache: every Get must
// return either the exact records that were Put or a clean miss. TSan runs
// this in CI to pin the locking discipline.
TEST_F(DatasetCacheTest, ConcurrentPutGetFromWorkers) {
  constexpr size_t kTasks = 64;
  auto ctx = ExecutionContext::Create(8);
  DatasetCache::Options options = OptionsWithBudget(4096);
  ctx->ConfigureCache(std::move(options));
  DatasetCache& cache = ctx->cache();
  const uint64_t ds = cache.NewDatasetId();

  Status status = ctx->TryRunParallel(
      "cache_stress", kTasks, [&](size_t i) -> Status {
        auto mine = MakePartition(4 + static_cast<int>(i % 13), i);
        cache.Put(ds, i, mine, cache_internal::StpqPartitionBytes(*mine),
                  &cache_internal::SpillPartition<EventRecord>,
                  &cache_internal::ReloadPartition<EventRecord>);
        // Read back my partition and a neighbor's (which may or may not be
        // inserted yet — a miss is fine, wrong bytes are not).
        for (uint64_t key : {static_cast<uint64_t>(i), (i + 7) % kTasks}) {
          auto got = cache.Get(ds, key);
          if (!got.ok()) return got.status();
          if (*got == nullptr) continue;
          auto expect = MakePartition(4 + static_cast<int>(key % 13), key);
          if (!SameRecords(AsRecords(*got), *expect)) {
            return Status::Internal("cache returned wrong partition bytes");
          }
        }
        return Status::Ok();
      });
  ASSERT_TRUE(status.ok()) << status.ToString();

  // After the storm every partition is still retrievable and intact.
  for (size_t i = 0; i < kTasks; ++i) {
    auto got = cache.Get(ds, i);
    ASSERT_TRUE(got.ok());
    ASSERT_NE(*got, nullptr) << "partition " << i;
    auto expect = MakePartition(4 + static_cast<int>(i % 13), i);
    EXPECT_TRUE(SameRecords(AsRecords(*got), *expect)) << "partition " << i;
  }
}

// CachedDataset end-to-end: persist under a thrash-sized budget, then Load
// twice — both loads collect the original records exactly.
TEST_F(DatasetCacheTest, CachedDatasetSurvivesEvictionChurn) {
  auto ctx = ExecutionContext::Create(4);
  ctx->ConfigureCache(OptionsWithBudget(512));
  auto events = testing::RandomWorkloadEvents(200, 11);
  auto ds = Dataset<EventRecord>::Parallelize(ctx, events, 8);
  CachedDataset<EventRecord> cached = ds.Persist();
  for (int pass = 0; pass < 2; ++pass) {
    auto loaded = cached.Load();
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_TRUE(SameRecords(loaded->Collect(), events)) << "pass " << pass;
  }
  EXPECT_GT(ctx->MetricsSnapshot()[Counter::kCacheEvictions], 0u);
  cached.Unpersist();
  auto after_drop = cached.Load();
  EXPECT_FALSE(after_drop.ok()) << "unpersisted dataset must not load";
}

TEST_F(DatasetCacheTest, CachedDatasetPassThroughWhenDisabled) {
  auto ctx = ExecutionContext::Create(4);
  ctx->ConfigureCache(OptionsWithBudget(0));
  auto events = testing::RandomWorkloadEvents(50, 12);
  auto ds = Dataset<EventRecord>::Parallelize(ctx, events, 4);
  CachedDataset<EventRecord> cached = ds.Persist();
  auto loaded = cached.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(SameRecords(loaded->Collect(), events));
  MetricsSnapshot metrics = ctx->MetricsSnapshot();
  EXPECT_EQ(metrics[Counter::kCacheHits], 0u);
  EXPECT_EQ(metrics[Counter::kCacheMisses], 0u);
  EXPECT_EQ(metrics[Counter::kCacheEvictions], 0u);
}

}  // namespace
}  // namespace st4ml
