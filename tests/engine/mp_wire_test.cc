// Wire-format hardening for the multiprocess executor (DESIGN.md §14), in
// the stpq_corruption_test byte-mutation style: every truncation, CRC flip,
// type-byte stomp and oversized declared length of a valid frame must
// surface as Corruption or IOError when read back over a real socketpair —
// never as a successfully parsed frame with different bytes, and never as
// an allocation driven by a corrupt length word. The value codecs get the
// same treatment: round-trips are byte-exact (including the zero-record
// shuffle bucket), and mutated payloads fail closed.

#include <unistd.h>

#include <sys/socket.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/mp/codec.h"
#include "engine/mp/wire.h"
#include "engine/pair_ops.h"
#include "storage/records.h"

namespace st4ml {
namespace mp {
namespace {

/// Feeds `bytes` to ReadMpFrame through a real socketpair (the transport
/// the executor uses), closing the write end so a short feed reads as a
/// peer death, exactly like a worker dying mid-frame.
StatusOr<MpFrame> ReadFromBytes(const std::string& bytes) {
  int sv[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(sv[0], bytes.data() + off, bytes.size() - off);
    EXPECT_GT(n, 0);
    off += static_cast<size_t>(n);
  }
  ::close(sv[0]);
  auto frame = ReadMpFrame(sv[1], nullptr);
  ::close(sv[1]);
  return frame;
}

std::string ValidFrame(MpFrameType type, const std::string& payload) {
  std::string bytes;
  AppendMpFrame(&bytes, type, payload);
  return bytes;
}

TEST(MpWireTest, RoundTripsEveryFrameType) {
  for (MpFrameType type :
       {MpFrameType::kGrant, MpFrameType::kResult, MpFrameType::kDone,
        MpFrameType::kTaskError, MpFrameType::kShutdown}) {
    std::string payload = "payload for type " +
                          std::to_string(static_cast<int>(type));
    auto frame = ReadFromBytes(ValidFrame(type, payload));
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->type, type);
    EXPECT_EQ(frame->payload, payload);
  }
}

TEST(MpWireTest, EmptyPayloadRoundTrips) {
  auto frame = ReadFromBytes(ValidFrame(MpFrameType::kShutdown, ""));
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->payload, "");
}

TEST(MpWireTest, CleanEofIsNotFoundTornFrameIsIOError) {
  auto eof = ReadFromBytes("");
  EXPECT_EQ(eof.status().code(), Status::Code::kNotFound);

  std::string valid = ValidFrame(MpFrameType::kResult, "some result bytes");
  for (size_t cut = 1; cut < valid.size(); ++cut) {
    auto torn = ReadFromBytes(valid.substr(0, cut));
    ASSERT_FALSE(torn.ok()) << "cut at " << cut << " parsed";
    EXPECT_EQ(torn.status().code(), Status::Code::kIOError)
        << "cut at " << cut << ": " << torn.status().ToString();
  }
}

TEST(MpWireTest, EveryCrcBitFlipIsCorruption) {
  std::string valid = ValidFrame(MpFrameType::kResult, "checksummed");
  // Header layout: u8 type | u32 len | u32 crc — CRC lives at bytes [5, 9).
  for (size_t byte = 5; byte < 9; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = valid;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      auto frame = ReadFromBytes(mutated);
      ASSERT_FALSE(frame.ok()) << "byte " << byte << " bit " << bit;
      EXPECT_EQ(frame.status().code(), Status::Code::kCorruption)
          << frame.status().ToString();
    }
  }
}

TEST(MpWireTest, EveryPayloadBitFlipIsCorruption) {
  std::string valid = ValidFrame(MpFrameType::kDone, "abcd");
  for (size_t byte = kMpFrameHeaderBytes; byte < valid.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = valid;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      auto frame = ReadFromBytes(mutated);
      ASSERT_FALSE(frame.ok()) << "byte " << byte << " bit " << bit;
      EXPECT_EQ(frame.status().code(), Status::Code::kCorruption)
          << frame.status().ToString();
    }
  }
}

TEST(MpWireTest, UnknownTypeByteIsCorruption) {
  std::string valid = ValidFrame(MpFrameType::kGrant, "grant");
  for (uint8_t bad : {uint8_t{0}, uint8_t{6}, uint8_t{99}, uint8_t{255}}) {
    std::string mutated = valid;
    mutated[0] = static_cast<char>(bad);
    auto frame = ReadFromBytes(mutated);
    ASSERT_FALSE(frame.ok()) << "type byte " << static_cast<int>(bad);
    EXPECT_EQ(frame.status().code(), Status::Code::kCorruption);
  }
}

TEST(MpWireTest, OversizedDeclaredLengthRejectedBeforeAllocation) {
  // A frame whose length word claims > kMaxMpFramePayload, with no payload
  // behind it: the reader must reject on the declared length alone instead
  // of trying to read (or reserve) a gigabyte.
  std::string bytes = ValidFrame(MpFrameType::kResult, "x");
  uint32_t huge = kMaxMpFramePayload + 1;
  std::memcpy(&bytes[1], &huge, sizeof(huge));
  auto frame = ReadFromBytes(bytes);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), Status::Code::kCorruption)
      << frame.status().ToString();
}

TEST(MpWireTest, EventRecordVectorRoundTripIsByteExact) {
  std::vector<EventRecord> records;
  for (int i = 0; i < 20; ++i) {
    EventRecord r;
    r.id = i;
    r.x = 1.5 * i;
    r.y = -2.25 * i;
    r.time = 1000 * i;
    r.attr = std::string(static_cast<size_t>(i % 7), 'z');
    records.push_back(std::move(r));
  }
  std::string bytes;
  EncodeToString(records, &bytes);
  std::vector<EventRecord> decoded;
  ASSERT_TRUE(DecodeFromString(bytes, &decoded).ok());
  ASSERT_EQ(decoded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded[i].id, records[i].id);
    EXPECT_EQ(decoded[i].x, records[i].x);
    EXPECT_EQ(decoded[i].y, records[i].y);
    EXPECT_EQ(decoded[i].time, records[i].time);
    EXPECT_EQ(decoded[i].attr, records[i].attr);
  }
}

TEST(MpWireTest, TrailingGarbageAfterValidValueIsCorruption) {
  std::string bytes;
  EncodeToString(std::pair<int64_t, int64_t>(7, -3), &bytes);
  bytes.push_back('\0');
  std::pair<int64_t, int64_t> out;
  Status status = DecodeFromString(bytes, &out);
  EXPECT_EQ(status.code(), Status::Code::kCorruption) << status.ToString();
}

TEST(MpWireTest, ImplausibleVectorCountRejectedBeforeAllocation) {
  std::string bytes;
  EncodeToString(std::vector<int64_t>{1, 2, 3}, &bytes);
  uint64_t huge = ~uint64_t{0} / 2;
  std::memcpy(&bytes[0], &huge, sizeof(huge));
  std::vector<int64_t> out;
  Status status = DecodeFromString(bytes, &out);
  EXPECT_EQ(status.code(), Status::Code::kCorruption) << status.ToString();
}

using Bucketed = internal::BucketedPartition<int64_t, int64_t>;

Bucketed MakeBucketed() {
  Bucketed b;
  b.records = {{1, 10}, {2, 20}, {5, 50}};
  b.offsets = {0, 1, 1, 3};  // target 1 is a zero-record bucket
  return b;
}

TEST(MpWireTest, ZeroRecordBucketRoundTrips) {
  Bucketed empty;
  empty.offsets = {0, 0, 0, 0};  // 3 targets, nothing shuffled anywhere
  std::string bytes;
  EncodeToString(empty, &bytes);
  Bucketed decoded;
  ASSERT_TRUE(DecodeFromString(bytes, &decoded).ok());
  EXPECT_TRUE(decoded.records.empty());
  EXPECT_EQ(decoded.offsets, empty.offsets);

  Bucketed mixed = MakeBucketed();
  bytes.clear();
  EncodeToString(mixed, &bytes);
  ASSERT_TRUE(DecodeFromString(bytes, &decoded).ok());
  EXPECT_EQ(decoded.records, mixed.records);
  EXPECT_EQ(decoded.offsets, mixed.offsets);
}

TEST(MpWireTest, MalformedBucketOffsetsAreCorruption) {
  // Each mutation produces structurally decodable vectors whose offsets
  // violate the bucket invariants — exactly what a bit of luck with a CRC
  // collision would have to produce to smuggle wrong records through.
  std::vector<Bucketed> bad;
  bad.push_back(MakeBucketed());
  bad.back().offsets = {};  // no offsets at all
  bad.push_back(MakeBucketed());
  bad.back().offsets = {1, 2, 2, 3};  // does not start at 0
  bad.push_back(MakeBucketed());
  bad.back().offsets = {0, 1, 1, 2};  // does not end at records.size()
  bad.push_back(MakeBucketed());
  bad.back().offsets = {0, 2, 1, 3};  // not monotone
  for (size_t i = 0; i < bad.size(); ++i) {
    std::string bytes;
    EncodeToString(bad[i], &bytes);
    Bucketed decoded;
    Status status = DecodeFromString(bytes, &decoded);
    EXPECT_EQ(status.code(), Status::Code::kCorruption)
        << "mutation " << i << ": " << status.ToString();
  }
}

}  // namespace
}  // namespace mp
}  // namespace st4ml
