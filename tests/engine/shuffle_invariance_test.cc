// Pins the shuffle determinism contract the bucketed map-side shuffle must
// honor: ReduceByKey / GroupByKey / Repartition results AND the
// EngineMetrics shuffle accounting are byte-identical regardless of how
// many workers execute the job or how many partitions the data is split
// into (for metrics, per fixed partition count).

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/dataset.h"
#include "engine/execution_context.h"
#include "engine/pair_ops.h"

namespace st4ml {
namespace {

constexpr int kWorkerCounts[] = {1, 2, 8};
constexpr size_t kPartitionCounts[] = {1, 3, 8, 64};

std::vector<std::pair<int64_t, int64_t>> RandomPairs(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int64_t, int64_t>> pairs;
  pairs.reserve(n);
  for (int i = 0; i < n; ++i) {
    pairs.emplace_back(rng.UniformInt(0, 200), rng.UniformInt(-50, 50));
  }
  return pairs;
}

struct ShuffleRun {
  uint64_t records = 0;
  uint64_t bytes = 0;
};

/// Runs `op` on a fresh context and returns its shuffle metrics delta.
template <typename Op>
ShuffleRun Metered(int workers, Op op) {
  auto ctx = ExecutionContext::Create(workers);
  ctx->ResetMetrics();
  op(ctx);
  return {ctx->MetricsSnapshot().shuffle_records(), ctx->MetricsSnapshot().shuffle_bytes()};
}

TEST(ShuffleInvarianceTest, ReduceByKeyIdenticalAcrossWorkersAndPartitions) {
  auto pairs = RandomPairs(20000, 41);
  for (size_t parts : kPartitionCounts) {
    std::vector<std::pair<int64_t, int64_t>> reference;
    ShuffleRun reference_run;
    for (int workers : kWorkerCounts) {
      std::vector<std::pair<int64_t, int64_t>> collected;
      ShuffleRun run = Metered(workers, [&](auto ctx) {
        auto data = Dataset<std::pair<int64_t, int64_t>>::Parallelize(
            ctx, pairs, parts);
        auto reduced =
            TryReduceByKey<int64_t, int64_t>(data, std::plus<int64_t>());
        ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
        collected = reduced->Collect();
      });
      if (workers == kWorkerCounts[0]) {
        reference = collected;
        reference_run = run;
        continue;
      }
      EXPECT_EQ(collected, reference)
          << "workers=" << workers << " parts=" << parts;
      EXPECT_EQ(run.records, reference_run.records);
      EXPECT_EQ(run.bytes, reference_run.bytes);
    }
  }
}

TEST(ShuffleInvarianceTest,
     ReduceByKeyNonCommutativeReduceOrderIsDeterministic) {
  // String concatenation is order-sensitive; identical output across worker
  // counts proves the per-key reduce sequence itself is pinned, not just
  // the key set.
  Rng rng(97);
  std::vector<std::pair<int64_t, std::string>> pairs;
  for (int i = 0; i < 3000; ++i) {
    pairs.emplace_back(rng.UniformInt(0, 30), std::to_string(i));
  }
  auto concat = [](const std::string& a, const std::string& b) {
    return a + "," + b;
  };
  for (size_t parts : kPartitionCounts) {
    std::vector<std::pair<int64_t, std::string>> reference;
    for (int workers : kWorkerCounts) {
      auto ctx = ExecutionContext::Create(workers);
      auto data = Dataset<std::pair<int64_t, std::string>>::Parallelize(
          ctx, pairs, parts);
      auto reduced = TryReduceByKey<int64_t, std::string>(data, concat);
      ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
      auto collected = reduced->Collect();
      if (workers == kWorkerCounts[0]) {
        reference = collected;
        continue;
      }
      EXPECT_EQ(collected, reference)
          << "workers=" << workers << " parts=" << parts;
    }
  }
}

TEST(ShuffleInvarianceTest, GroupByKeyIdenticalAcrossWorkersAndPartitions) {
  auto pairs = RandomPairs(20000, 43);
  for (size_t parts : kPartitionCounts) {
    std::vector<std::pair<int64_t, std::vector<int64_t>>> reference;
    ShuffleRun reference_run;
    for (int workers : kWorkerCounts) {
      std::vector<std::pair<int64_t, std::vector<int64_t>>> collected;
      ShuffleRun run = Metered(workers, [&](auto ctx) {
        auto data = Dataset<std::pair<int64_t, int64_t>>::Parallelize(
            ctx, pairs, parts);
        auto grouped = TryGroupByKey<int64_t, int64_t>(data);
        ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
        collected = grouped->Collect();
      });
      if (workers == kWorkerCounts[0]) {
        reference = collected;
        reference_run = run;
        continue;
      }
      EXPECT_EQ(collected, reference)
          << "workers=" << workers << " parts=" << parts;
      EXPECT_EQ(run.records, reference_run.records);
      EXPECT_EQ(run.bytes, reference_run.bytes);
    }
    // GroupByKey shuffles every record, whatever the layout.
    EXPECT_EQ(reference_run.records, pairs.size()) << "parts=" << parts;
  }
}

TEST(ShuffleInvarianceTest, CompositeKeysViaPairHash) {
  using Key = std::pair<int64_t, int64_t>;
  Rng rng(59);
  std::vector<std::pair<Key, int64_t>> pairs;
  for (int i = 0; i < 10000; ++i) {
    pairs.emplace_back(Key(rng.UniformInt(0, 20), rng.UniformInt(0, 20)),
                       rng.UniformInt(-5, 5));
  }
  for (size_t parts : kPartitionCounts) {
    std::vector<std::pair<Key, int64_t>> reference;
    for (int workers : kWorkerCounts) {
      auto ctx = ExecutionContext::Create(workers);
      auto data =
          Dataset<std::pair<Key, int64_t>>::Parallelize(ctx, pairs, parts);
      auto reduced = TryReduceByKey<Key, int64_t, std::plus<int64_t>, PairHash>(
          data, std::plus<int64_t>());
      ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
      auto collected = reduced->Collect();
      if (workers == kWorkerCounts[0]) {
        reference = collected;
        continue;
      }
      EXPECT_EQ(collected, reference)
          << "workers=" << workers << " parts=" << parts;
    }
  }
}

TEST(ShuffleInvarianceTest, RepartitionLayoutAndMetricsAreInvariant) {
  Rng rng(61);
  std::vector<int64_t> values;
  for (int i = 0; i < 9973; ++i) values.push_back(rng.UniformInt(0, 1 << 20));
  for (size_t src_parts : {size_t{1}, size_t{5}}) {
    for (size_t dst_parts : kPartitionCounts) {
      // Per-partition contents must match, not just the collected union:
      // the round-robin layout is part of the contract.
      std::vector<std::vector<int64_t>> reference;
      ShuffleRun reference_run;
      for (int workers : kWorkerCounts) {
        std::vector<std::vector<int64_t>> layout;
        ShuffleRun run = Metered(workers, [&](auto ctx) {
          auto data = Dataset<int64_t>::Parallelize(ctx, values, src_parts);
          auto wide = data.Repartition(dst_parts);
          for (size_t p = 0; p < wide.num_partitions(); ++p) {
            layout.push_back(wide.partition(p));
          }
        });
        if (workers == kWorkerCounts[0]) {
          reference = layout;
          reference_run = run;
          continue;
        }
        EXPECT_EQ(layout, reference)
            << "workers=" << workers << " src=" << src_parts
            << " dst=" << dst_parts;
        EXPECT_EQ(run.records, reference_run.records);
        EXPECT_EQ(run.bytes, reference_run.bytes);
      }
      EXPECT_EQ(reference_run.records, values.size());
    }
  }
}

TEST(ShuffleInvarianceTest, RvalueRepartitionMovesMatchLvalueCopies) {
  Rng rng(67);
  std::vector<std::string> values;
  for (int i = 0; i < 2000; ++i) {
    values.push_back("record-" + std::to_string(rng.UniformInt(0, 1 << 16)));
  }
  auto ctx = ExecutionContext::Create(4);
  auto copied =
      Dataset<std::string>::Parallelize(ctx, values, 3).Repartition(7);
  auto via_lvalue = Dataset<std::string>::Parallelize(ctx, values, 3);
  auto from_lvalue = via_lvalue.Repartition(7);
  for (size_t p = 0; p < 7; ++p) {
    EXPECT_EQ(copied.partition(p), from_lvalue.partition(p)) << "p=" << p;
  }
  // The lvalue source must survive its Repartition untouched.
  EXPECT_EQ(via_lvalue.Collect().size(), values.size());
  std::vector<std::string> survived = via_lvalue.Collect();
  std::vector<std::string> original = values;
  std::sort(survived.begin(), survived.end());
  std::sort(original.begin(), original.end());
  EXPECT_EQ(survived, original);
}

TEST(ShuffleInvarianceTest, RvalueCollectMovesMatchLvalueCopies) {
  auto pairs = RandomPairs(5000, 71);
  auto ctx = ExecutionContext::Create(4);
  auto data =
      Dataset<std::pair<int64_t, int64_t>>::Parallelize(ctx, pairs, 6);
  auto grouped = TryGroupByKey<int64_t, int64_t>(data);
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  auto copied = grouped->Collect();  // lvalue: copies
  auto moved =
      std::move(*grouped).Collect();  // rvalue + sole owner: moves
  EXPECT_EQ(copied, moved);
}

}  // namespace
}  // namespace st4ml
