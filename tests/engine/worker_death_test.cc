// Worker-death drills for the multiprocess executor (DESIGN.md §14): a
// scripted SIGKILL (the mp/worker_kill site, driven deterministically via
// MpOptions) murders a worker mid-shuffle and the job must still produce
// byte-identical results — the driver detects the EOF, reclaims the dead
// worker's unfinished grant, re-issues it to a survivor or a respawn, and
// keeps every already-consumed result frame (delivery is exactly-once and
// index-addressed, so a partially-reported grant resumes at the first
// unreported index). A permanently-dying fleet must fail with a clean
// Status — never a hang — once the RetryPolicy grant bound or the respawn
// budget is exhausted.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/dataset.h"
#include "engine/execution_context.h"
#include "engine/pair_ops.h"

namespace st4ml {
namespace {

using Pair = std::pair<int64_t, int64_t>;

std::vector<Pair> RandomPairs(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Pair> pairs;
  pairs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    pairs.emplace_back(rng.UniformInt(0, 60), rng.UniformInt(-9, 9));
  }
  return pairs;
}

// 16 partitions under 2 workers gives chunk = 16 / (2*4) = 2, i.e. 8
// grants per phase — enough that every worker sees several grants and a
// mid-job death always leaves reclaimable work.
constexpr int kPartitions = 16;

std::vector<Pair> LocalReference(const std::vector<Pair>& pairs) {
  auto ctx = ExecutionContext::Create(2);
  auto data = Dataset<Pair>::Parallelize(ctx, pairs, kPartitions);
  auto reduced = TryReduceByKey<int64_t, int64_t>(data, std::plus<int64_t>());
  ST4ML_CHECK(reduced.ok()) << reduced.status().ToString();
  return reduced->Collect();
}

ExecutorSpec MpSpec(int workers) {
  ExecutorSpec spec;
  spec.kind = ExecutorSpec::Kind::kMultiProcess;
  spec.workers = workers;
  spec.mp.num_workers = workers;
  return spec;
}

TEST(WorkerDeathTest, KillBeforeProducingStillByteIdentical) {
  auto pairs = RandomPairs(4000, 11);
  std::vector<Pair> reference = LocalReference(pairs);

  ExecutorSpec spec = MpSpec(2);
  spec.mp.kill_worker = 0;
  spec.mp.kill_after_grants = 1;  // dies on its second grant, before work
  auto ctx = ExecutionContext::Create(spec);
  auto data = Dataset<Pair>::Parallelize(ctx, pairs, kPartitions);
  auto reduced = TryReduceByKey<int64_t, int64_t>(data, std::plus<int64_t>());
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  EXPECT_EQ(reduced->Collect(), reference);

  MetricsSnapshot metrics = ctx->MetricsSnapshot();
  EXPECT_EQ(metrics[Counter::kWorkersLost], 1u);
  EXPECT_GE(metrics[Counter::kChunksReclaimed], 1u);
  // 2 initial forks for the map phase plus the respawn replacing the dead
  // slot, plus 2 for the (kill-disarmed) merge phase.
  EXPECT_GE(metrics[Counter::kWorkersSpawned], 3u);
  EXPECT_GT(metrics[Counter::kShuffleNetBytes], 0u);
}

TEST(WorkerDeathTest, KillMidGrantResumesAtFirstUnreportedIndex) {
  auto pairs = RandomPairs(4000, 29);
  std::vector<Pair> reference = LocalReference(pairs);

  ExecutorSpec spec = MpSpec(2);
  spec.mp.kill_worker = 1;
  spec.mp.kill_after_grants = 0;
  spec.mp.kill_after_results = 1;  // one result frame escapes, then SIGKILL
  auto ctx = ExecutionContext::Create(spec);
  auto data = Dataset<Pair>::Parallelize(ctx, pairs, kPartitions);
  auto reduced = TryReduceByKey<int64_t, int64_t>(data, std::plus<int64_t>());
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  EXPECT_EQ(reduced->Collect(), reference);

  MetricsSnapshot metrics = ctx->MetricsSnapshot();
  EXPECT_EQ(metrics[Counter::kWorkersLost], 1u);
  EXPECT_GE(metrics[Counter::kChunksReclaimed], 1u);
}

// 50 rounds, each with a freshly scripted death at a varying point in the
// grant schedule, must all complete correctly — the reclaim/respawn loop
// can never deadlock, drop a bucket, or double-deliver one.
TEST(WorkerDeathTest, FiftyFailingRoundsNeverDeadlock) {
  auto pairs = RandomPairs(2000, 43);
  std::vector<Pair> reference = LocalReference(pairs);

  uint64_t deaths = 0;
  uint64_t reclaims = 0;
  for (int round = 0; round < 50; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    ExecutorSpec spec = MpSpec(2);
    spec.mp.kill_worker = round % 2;
    spec.mp.kill_after_grants = round % 4;
    spec.mp.kill_after_results = round % 3;
    auto ctx = ExecutionContext::Create(spec);
    auto data = Dataset<Pair>::Parallelize(ctx, pairs, kPartitions);
    auto reduced =
        TryReduceByKey<int64_t, int64_t>(data, std::plus<int64_t>());
    ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
    ASSERT_EQ(reduced->Collect(), reference);
    MetricsSnapshot metrics = ctx->MetricsSnapshot();
    EXPECT_LE(metrics[Counter::kWorkersLost], 1u);
    deaths += metrics[Counter::kWorkersLost];
    reclaims += metrics[Counter::kChunksReclaimed];
  }
  // Some scripts kill after the grant fully reported (nothing to reclaim)
  // or name a grant index the schedule never reaches (nobody dies) — but
  // across the sweep the kill must fire often, and many of those deaths
  // must leave unfinished work behind.
  EXPECT_GE(deaths, 25u);
  EXPECT_GE(reclaims, 10u);
}

TEST(WorkerDeathTest, KillOnceDisarmsForLaterJobsOnTheSameBackend) {
  auto pairs = RandomPairs(3000, 57);
  std::vector<Pair> reference = LocalReference(pairs);

  ExecutorSpec spec = MpSpec(2);
  spec.mp.kill_worker = 0;
  spec.mp.kill_after_grants = 0;
  ASSERT_TRUE(spec.mp.kill_once);
  auto ctx = ExecutionContext::Create(spec);
  for (int job = 0; job < 3; ++job) {
    SCOPED_TRACE("job " + std::to_string(job));
    auto data = Dataset<Pair>::Parallelize(ctx, pairs, kPartitions);
    auto reduced =
        TryReduceByKey<int64_t, int64_t>(data, std::plus<int64_t>());
    ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
    EXPECT_EQ(reduced->Collect(), reference);
  }
  // Exactly one death across the whole multi-job pipeline: the script
  // disarmed itself the first time the driver observed the kill.
  EXPECT_EQ(ctx->MetricsSnapshot()[Counter::kWorkersLost], 1u);
}

TEST(WorkerDeathTest, PermanentlyDyingFleetFailsCleanlyNeverHangs) {
  auto pairs = RandomPairs(2000, 71);

  ExecutorSpec spec = MpSpec(2);
  spec.mp.kill_worker = MpOptions::kEveryWorker;
  spec.mp.kill_after_grants = 0;
  spec.mp.kill_once = false;  // respawns die too — nobody ever finishes
  auto ctx = ExecutionContext::Create(spec);
  auto data = Dataset<Pair>::Parallelize(ctx, pairs, kPartitions);
  auto reduced = TryReduceByKey<int64_t, int64_t>(data, std::plus<int64_t>());
  ASSERT_FALSE(reduced.ok());
  EXPECT_EQ(reduced.status().code(), Status::Code::kIOError)
      << reduced.status().ToString();

  MetricsSnapshot metrics = ctx->MetricsSnapshot();
  EXPECT_GE(metrics[Counter::kWorkersLost], 2u);
  // The backend is not poisoned: disarm the script and the same context
  // runs the job to completion with a fresh fleet.
  spec.mp.kill_worker = MpOptions::kNoKill;
  auto healthy_ctx = ExecutionContext::Create(spec);
  auto healthy_data =
      Dataset<Pair>::Parallelize(healthy_ctx, pairs, kPartitions);
  auto healthy =
      TryReduceByKey<int64_t, int64_t>(healthy_data, std::plus<int64_t>());
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_EQ(healthy->Collect(), LocalReference(pairs));
}

// GroupByKey ships variable-length value buckets (a different codec shape
// than reduce's combined pairs); a death mid-shuffle must not corrupt them.
TEST(WorkerDeathTest, GroupByKeySurvivesAKill) {
  auto pairs = RandomPairs(3000, 83);
  std::map<int64_t, std::vector<int64_t>> expected;
  for (const auto& [k, v] : pairs) expected[k].push_back(v);
  for (auto& [k, vs] : expected) std::sort(vs.begin(), vs.end());

  ExecutorSpec spec = MpSpec(2);
  spec.mp.kill_worker = 0;
  spec.mp.kill_after_grants = 1;
  auto ctx = ExecutionContext::Create(spec);
  auto data = Dataset<Pair>::Parallelize(ctx, pairs, kPartitions);
  auto grouped = TryGroupByKey<int64_t, int64_t>(data);
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  auto collected = grouped->Collect();
  ASSERT_EQ(collected.size(), expected.size());
  for (auto& [k, vs] : collected) {
    std::sort(vs.begin(), vs.end());
    EXPECT_EQ(vs, expected.at(k)) << "key " << k;
  }
  EXPECT_EQ(ctx->MetricsSnapshot()[Counter::kWorkersLost], 1u);
}

}  // namespace
}  // namespace st4ml
