// Session/Job API tests (ISSUE 6): one warm Session shared by many Jobs,
// each Job keeping an EXACT private copy of every counter delta it causes —
// even when jobs run concurrently from different threads on the shared
// worker pool — plus the Pipeline::Reset fail-then-succeed contract and a
// TSan-friendly stress over the whole stack (jobs + cache + tracer).

#include <array>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/property.h"
#include "pipeline/session.h"
#include "selection/selector.h"

namespace st4ml {
namespace {

testing::CacheWorkload FullDomainWorkload(uint64_t seed, int num_records) {
  testing::CacheWorkload w;
  w.seed = seed;
  w.num_records = num_records;
  w.grid_t = 2;
  w.grid_s = 2;
  w.query = STBox(Mbr(0, 0, 100, 100), Duration(0, 100000));
  return w;
}

// Eight threads, one shared Session: each thread runs one Job over a
// DIFFERENT amount of conversion work. If per-job counter attribution ever
// leaked between concurrent jobs (a sibling's worker chunk landing in the
// wrong registry), the exact-equality assertions below would catch it.
TEST(SessionTest, ConcurrentJobsKeepExactPerJobCounters) {
  Session session(ExecutionContext::Create(4));
  constexpr int kJobs = 8;
  std::array<MetricsSnapshot, kJobs> per_job;
  std::array<uint64_t, kJobs> expected{};
  std::vector<std::thread> threads;
  threads.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    expected[i] = 100 * static_cast<uint64_t>(i + 1);
    threads.emplace_back([&, i] {
      Job job = session.StartJob("iso/" + std::to_string(i));
      std::vector<int> values(expected[i], i);
      auto ds = Dataset<int>::Parallelize(session.context(),
                                          std::move(values), 8);
      auto mapped = job.pipeline().Run(
          "conversion",
          [](const Dataset<int>& in) {
            return in.Map([](const int& v) { return v + 1; });
          },
          ds);
      // Force engine-parallel work so worker threads must re-install this
      // job's counter sink (the cross-thread attribution under test).
      ASSERT_EQ(mapped.Collect().size(), expected[i]);
      job.Finish();
      per_job[i] = job.Metrics();
    });
  }
  for (auto& t : threads) t.join();

  uint64_t total_in = 0;
  for (int i = 0; i < kJobs; ++i) {
    EXPECT_EQ(per_job[i][Counter::kConversionRecordsIn], expected[i])
        << "job " << i << " saw a sibling's conversion records";
    EXPECT_EQ(per_job[i][Counter::kConversionRecordsOut], expected[i])
        << "job " << i;
    EXPECT_GT(per_job[i][Counter::kParallelJobs], 0u)
        << "job " << i << " ran no parallel work — the test proved nothing";
    total_in += per_job[i][Counter::kConversionRecordsIn];
  }
  // The session totals are exactly the sum of the per-job deltas: counters
  // are copied to the job registry, never moved out of the session's.
  EXPECT_EQ(session.Metrics()[Counter::kConversionRecordsIn], total_in);
  EXPECT_EQ(session.jobs_started(), static_cast<uint64_t>(kJobs));
}

// The satellite bugfix pin: a Pipeline whose stage failed latches the error
// (ok() stays false), and Reset() makes the SAME pipeline usable again — on
// the same Session, with the same staged data, producing the same records a
// healthy job sees.
TEST(SessionTest, PipelineResetRecoversAfterFailedStage) {
  testing::CacheWorkload w = FullDomainWorkload(91, 300);
  testing::StagedWorkload staged(w);
  Session session(ExecutionContext::Create(2));

  // Reference: a healthy job on this session.
  uint64_t reference_count = 0;
  {
    Job job = session.StartJob("reference");
    Selector<EventRecord> selector(session.context(), SelectQuery::FromBox(w.query));
    auto selected = job.pipeline().Run(
        "selection", [&] { return selector.Select(staged.dir(), staged.meta()); });
    ASSERT_TRUE(selected.ok()) << selected.status().ToString();
    reference_count = selected->Count();
    ASSERT_GT(reference_count, 0u);
  }

  Job job = session.StartJob("fail-then-succeed");
  {
    Selector<EventRecord> selector(session.context(), SelectQuery::FromBox(w.query));
    auto missing = job.pipeline().Run("selection", [&] {
      return selector.Select(staged.dir() + "/missing",
                             staged.meta() + ".missing");
    });
    ASSERT_FALSE(missing.ok());
  }
  EXPECT_FALSE(job.ok());
  // The latched status names the failing stage.
  EXPECT_NE(job.status().message().find("stage selection"), std::string::npos)
      << job.status().ToString();

  job.pipeline().Reset();
  EXPECT_TRUE(job.ok()) << "Reset must clear the latched failure";

  Selector<EventRecord> selector(session.context(), SelectQuery::FromBox(w.query));
  auto selected = job.pipeline().Run(
      "selection", [&] { return selector.Select(staged.dir(), staged.meta()); });
  ASSERT_TRUE(selected.ok()) << selected.status().ToString();
  EXPECT_EQ(selected->Count(), reference_count);
  EXPECT_TRUE(job.ok());
  job.Finish();
}

// With a tracer attached, every span a job produces nests under that job's
// kJob root: job → pipeline → stage. Concurrent daemon jobs rely on this to
// keep their span trees disjoint.
TEST(SessionTest, JobSpansNestUnderJobRoot) {
  ToolOptions options;
  options.trace_path =
      (std::filesystem::temp_directory_path() / "st4ml_session_span.json")
          .string();
  Session session(options);
  ASSERT_NE(session.tracer(), nullptr);
  {
    Job job = session.StartJob("traced-job");
    job.pipeline().Run("stage_a", [] { return 1; });
    job.Finish();
  }

  uint64_t job_span = 0, pipeline_span = 0;
  bool found_stage = false;
  auto spans = session.tracer()->Spans();
  for (const SpanRecord& s : spans) {
    if (std::strcmp(s.category, span_category::kJob) == 0 &&
        s.name == "traced-job") {
      EXPECT_EQ(s.parent, 0u) << "job spans are roots";
      job_span = s.id;
    }
  }
  ASSERT_NE(job_span, 0u) << "no job-category span recorded";
  for (const SpanRecord& s : spans) {
    if (std::strcmp(s.category, span_category::kPipeline) == 0 &&
        s.parent == job_span) {
      pipeline_span = s.id;
    }
  }
  ASSERT_NE(pipeline_span, 0u) << "pipeline span not parented under the job";
  for (const SpanRecord& s : spans) {
    if (std::strcmp(s.category, span_category::kStage) == 0 &&
        s.name == "stage_a") {
      EXPECT_EQ(s.parent, pipeline_span);
      found_stage = true;
    }
  }
  EXPECT_TRUE(found_stage);
  std::filesystem::remove(options.trace_path);
}

// Stress for TSan: 8 threads x 4 jobs each against ONE Session with the
// cache enabled and a tracer attached — every moving part of the daemon's
// request path (job registry install/uninstall, cache hits, span recording,
// shared worker pool) racing at once. Each job still asserts its OWN
// selection_records_out, so this doubles as isolation-under-load.
TEST(SessionTest, ConcurrentJobStressWithSharedCache) {
  testing::CacheWorkload w = FullDomainWorkload(17, 250);
  testing::StagedWorkload staged(w);

  ToolOptions options;
  options.has_cache_budget = true;
  options.cache_budget_bytes = -1;  // unbounded — the daemon default
  options.num_workers = 4;
  options.trace_path =
      (std::filesystem::temp_directory_path() / "st4ml_session_stress.json")
          .string();
  Session session(options);

  // Warm-up job: establishes the reference count and primes the cache.
  uint64_t reference = 0;
  {
    Job job = session.StartJob("warmup");
    Selector<EventRecord> selector(session.context(), SelectQuery::FromBox(w.query));
    auto selected = job.pipeline().Run(
        "selection", [&] { return selector.Select(staged.dir(), staged.meta()); });
    ASSERT_TRUE(selected.ok()) << selected.status().ToString();
    job.Finish();
    reference = job.Metrics()[Counter::kSelectionRecordsOut];
    ASSERT_GT(reference, 0u);
  }

  constexpr int kThreads = 8;
  constexpr int kJobsPerThread = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        Job job = session.StartJob("stress/" + std::to_string(t) + "/" +
                                   std::to_string(j));
        Selector<EventRecord> selector(session.context(), SelectQuery::FromBox(w.query));
        auto selected = job.pipeline().Run("selection", [&] {
          return selector.Select(staged.dir(), staged.meta());
        });
        if (!selected.ok()) {
          ++failures;
          continue;
        }
        auto repartitioned = job.pipeline().Run(
            "conversion",
            [](const Dataset<EventRecord>& ds) { return ds.Repartition(3); },
            *selected);
        if (repartitioned.Count() == 0) ++failures;
        job.Finish();
        if (!job.ok() ||
            job.Metrics()[Counter::kSelectionRecordsOut] != reference) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The warm cache actually served the stress jobs.
  EXPECT_GT(session.Metrics()[Counter::kCacheHits], 0u);
  std::filesystem::remove(options.trace_path);
}

}  // namespace
}  // namespace st4ml
