#include "datagen/generators.h"

#include <cstdint>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace st4ml {
namespace {

TEST(GeneratorsTest, NycEventsAreDeterministicAndInBounds) {
  NycEventOptions options;
  options.count = 5000;
  auto a = GenerateNycEvents(options);
  auto b = GenerateNycEvents(options);
  ASSERT_EQ(a.size(), 5000u);
  ASSERT_EQ(b.size(), a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].attr, b[i].attr);
    EXPECT_TRUE(options.extent.ContainsPoint(Point(a[i].x, a[i].y)));
    EXPECT_TRUE(options.range.Contains(a[i].time));
    EXPECT_NE(a[i].attr.find("fare="), std::string::npos);
  }
  options.seed = 999;
  auto c = GenerateNycEvents(options);
  EXPECT_NE(c[0].x, a[0].x);  // different seed diverges
}

TEST(GeneratorsTest, PortoTrajectoriesHaveOrderedSamples) {
  PortoTrajOptions options;
  options.count = 400;
  auto trajs = GeneratePortoTrajectories(options);
  ASSERT_EQ(trajs.size(), 400u);
  for (const TrajRecord& t : trajs) {
    ASSERT_GE(t.points.size(), 2u);
    for (size_t i = 1; i < t.points.size(); ++i) {
      EXPECT_EQ(t.points[i].time - t.points[i - 1].time, 15);
      EXPECT_TRUE(
          options.extent.ContainsPoint(Point(t.points[i].x, t.points[i].y)));
    }
  }
}

TEST(GeneratorsTest, AirQualityCountInvariant) {
  AirQualityOptions options;
  auto readings = GenerateAirQuality(options);
  size_t per_station =
      static_cast<size_t>((options.range.Seconds() + options.interval_s) /
                          options.interval_s);
  EXPECT_EQ(readings.size(), static_cast<size_t>(options.stations) *
                                 static_cast<size_t>(options.replicas) *
                                 per_station);
  // Every reading parses as a number.
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_GT(std::atof(readings[i].attr.c_str()), 0.0);
  }
}

TEST(GeneratorsTest, OsmPostalAreasTileTheExtent) {
  OsmOptions options;
  options.poi_count = 100;
  OsmData osm = GenerateOsm(options);
  EXPECT_EQ(osm.pois.size(), 100u);
  EXPECT_EQ(osm.postal_areas.size(),
            static_cast<size_t>(options.areas_x * options.areas_y));
  // Every POI, and every random probe, lies in at least one postal area —
  // the areas share jittered corners, so they tile without gaps.
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    Point p(rng.Uniform(options.extent.x_min, options.extent.x_max),
            rng.Uniform(options.extent.y_min, options.extent.y_max));
    int containing = 0;
    for (const Polygon& area : osm.postal_areas) {
      if (area.ContainsPoint(p)) ++containing;
    }
    EXPECT_GE(containing, 1) << "uncovered point " << p.x << "," << p.y;
  }
}

TEST(GeneratorsTest, RoadNetworkPairsForwardAndReverse) {
  RoadNetworkOptions options;
  auto network = GenerateRoadNetwork(options);
  ASSERT_NE(network, nullptr);
  EXPECT_EQ(network->num_nodes(),
            static_cast<size_t>(options.nx * options.ny));
  ASSERT_GT(network->num_segments(), 0u);
  ASSERT_EQ(network->num_segments() % 2, 0u);
  for (size_t s = 0; s + 1 < network->num_segments(); s += 2) {
    const RoadSegment& forward = network->segment(static_cast<int32_t>(s));
    const RoadSegment& reverse = network->segment(static_cast<int32_t>(s + 1));
    EXPECT_EQ(forward.id, -reverse.id);
    EXPECT_EQ(forward.from_node, reverse.to_node);
    EXPECT_EQ(forward.to_node, reverse.from_node);
    EXPECT_GT(forward.length_m, 0.0);
  }
  // Grid interior nodes have degree >= 2 outgoing segments.
  int isolated = 0;
  for (size_t n = 0; n < network->num_nodes(); ++n) {
    if (network->outgoing(static_cast<int32_t>(n)).empty()) ++isolated;
  }
  EXPECT_EQ(isolated, 0);
}

TEST(GeneratorsTest, CameraTrajectoriesStayWithinDayAndNetwork) {
  RoadNetworkOptions road_options;
  auto network = GenerateRoadNetwork(road_options);
  CameraTrajOptions options;
  options.count = 300;
  auto trajs = GenerateCameraTrajectories(*network, options);
  ASSERT_GT(trajs.size(), 250u);  // a few may be skipped as too short
  Mbr roamable = network->extent().Buffered(0.01);
  for (const TrajRecord& t : trajs) {
    ASSERT_GE(t.points.size(), 2u);
    for (size_t i = 0; i < t.points.size(); ++i) {
      EXPECT_TRUE(options.day.Contains(t.points[i].time))
          << "sample outside the day";
      EXPECT_TRUE(roamable.ContainsPoint(Point(t.points[i].x, t.points[i].y)));
      if (i > 0) EXPECT_GT(t.points[i].time, t.points[i - 1].time);
    }
  }
  // Deterministic for a fixed seed.
  auto again = GenerateCameraTrajectories(*network, options);
  ASSERT_EQ(again.size(), trajs.size());
  EXPECT_EQ(again[5].points[0].time, trajs[5].points[0].time);
}

}  // namespace
}  // namespace st4ml
