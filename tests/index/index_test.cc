#include "index/rtree.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/stbox.h"
#include "index/zcurve.h"

namespace st4ml {
namespace {

std::vector<STBox> RandomBoxes(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<STBox> boxes;
  boxes.reserve(n);
  for (int i = 0; i < n; ++i) {
    double x = rng.Uniform(0, 100), y = rng.Uniform(0, 100);
    int64_t t = rng.UniformInt(0, 10000);
    boxes.push_back(STBox(Mbr(x, y, x + rng.Uniform(0, 5), y + rng.Uniform(0, 5)),
                          Duration(t, t + rng.UniformInt(0, 500))));
  }
  return boxes;
}

TEST(STBoxTest, IntersectsNeedsAllThreeAxes) {
  STBox a(Mbr(0, 0, 10, 10), Duration(0, 100));
  EXPECT_TRUE(a.Intersects(STBox(Mbr(5, 5, 15, 15), Duration(50, 150))));
  EXPECT_FALSE(a.Intersects(STBox(Mbr(5, 5, 15, 15), Duration(101, 150))));
  EXPECT_FALSE(a.Intersects(STBox(Mbr(11, 5, 15, 15), Duration(50, 150))));
}

TEST(STBoxTest, ExtendFromEmpty) {
  STBox box;
  box.Extend(STBox(Mbr(1, 1, 2, 2), Duration(10, 20)));
  box.Extend(STBox(Mbr(5, 0, 6, 1), Duration(5, 12)));
  EXPECT_EQ(box.mbr.x_max, 6);
  EXPECT_EQ(box.time.start(), 5);
  EXPECT_EQ(box.time.end(), 20);
}

TEST(RTreeTest, QueryMatchesLinearScan) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    std::vector<STBox> boxes = RandomBoxes(500, seed);
    RTree<STBox> tree;
    tree.Build(boxes);
    std::vector<STBox> queries = RandomBoxes(25, seed + 100);
    for (const STBox& q : queries) {
      std::vector<size_t> hits = tree.Query(q);
      std::sort(hits.begin(), hits.end());
      std::vector<size_t> expected;
      for (size_t i = 0; i < boxes.size(); ++i) {
        if (boxes[i].Intersects(q)) expected.push_back(i);
      }
      EXPECT_EQ(hits, expected);
    }
  }
}

TEST(RTreeTest, EmptyAndSingleton) {
  RTree<STBox> tree;
  tree.Build({});
  EXPECT_TRUE(tree.Query(STBox(Mbr(0, 0, 1, 1), Duration(0, 1))).empty());

  tree.Build({STBox(Mbr(0, 0, 1, 1), Duration(0, 10))});
  EXPECT_EQ(tree.Query(STBox(Mbr(0.5, 0.5, 2, 2), Duration(5, 6))).size(), 1u);
  EXPECT_TRUE(tree.Query(STBox(Mbr(2, 2, 3, 3), Duration(5, 6))).empty());
}

TEST(RTreeTest, BoxFnOverloadKeepsOriginalIndices) {
  struct Item {
    int payload;
    STBox box;
  };
  std::vector<Item> items;
  for (int i = 0; i < 50; ++i) {
    double x = static_cast<double>(i);
    items.push_back({i, STBox(Mbr(x, 0, x + 0.5, 1), Duration(i, i + 1))});
  }
  RTree<Item> tree;
  tree.Build(items, [](const Item& it) { return it.box; });
  std::vector<size_t> hits =
      tree.Query(STBox(Mbr(10.2, 0, 12.4, 1), Duration(0, 100)));
  std::sort(hits.begin(), hits.end());
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(tree.item(hits[0]).payload, 10);
  EXPECT_EQ(tree.item(hits[2]).payload, 12);
}

TEST(ZCurveTest, MortonBasics) {
  EXPECT_EQ(MortonInterleave16(0, 0), 0u);
  EXPECT_EQ(MortonInterleave16(1, 0), 1u);
  EXPECT_EQ(MortonInterleave16(0, 1), 2u);
  EXPECT_EQ(MortonInterleave16(1, 1), 3u);
}

TEST(ZCurveTest, EncodeIsMonotoneWithinCell) {
  Z2Curve curve(Mbr(0, 0, 100, 100), 8);
  // Nearby points share a prefix far more often than far-apart ones do.
  uint32_t a = curve.Encode(Point(10, 10));
  uint32_t b = curve.Encode(Point(10.01, 10.01));
  uint32_t c = curve.Encode(Point(90, 90));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace st4ml
