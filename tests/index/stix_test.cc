#include "index/stix.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "engine/execution_context.h"
#include "selection/on_disk_index.h"
#include "selection/selector.h"
#include "storage/records.h"
#include "storage/stpq.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("st4ml_stix_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<EventRecord> RandomEvents(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<EventRecord> events;
  events.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    EventRecord r;
    r.id = rng.UniformInt(0, n / 3);  // repeated ids -> real postings lists
    r.x = rng.Uniform(0, 100);
    r.y = rng.Uniform(0, 100);
    r.time = rng.UniformInt(0, 100000);
    r.attr = std::string(static_cast<size_t>(rng.UniformInt(0, 8)), 'x');
    events.push_back(std::move(r));
  }
  return events;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void Dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Stages one .stpq + .stix pair and returns the .stpq path.
std::string StagePair(const std::string& dir,
                      const std::vector<EventRecord>& events) {
  std::string path = dir + "/part-00000.stpq";
  Status wrote = WriteStpqFile(path, events);
  ST4ML_CHECK(wrote.ok()) << wrote.ToString();
  Status built = BuildStixForStpq(path, events);
  ST4ML_CHECK(built.ok()) << built.ToString();
  return path;
}

std::vector<uint32_t> BruteForceBox(const std::vector<EventRecord>& events,
                                    const STBox& box) {
  std::vector<uint32_t> hits;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].ComputeSTBox().Intersects(box)) {
      hits.push_back(static_cast<uint32_t>(i));
    }
  }
  return hits;
}

TEST(StixTest, QueryBoxMatchesBruteForce) {
  std::string dir = TempDir("roundtrip");
  auto events = RandomEvents(1200, 17);
  std::string path = StagePair(dir, events);
  auto index = StixIndex::Open(StixPathFor(path), path);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->record_count(), events.size());

  std::vector<STBox> queries = {
      STBox(Mbr(10, 10, 40, 40), Duration(0, 50000)),
      STBox(Mbr(0, 0, 100, 100), Duration(0, 100000)),   // everything
      STBox(Mbr(70, 70, 70.5, 70.5), Duration(90000, 90010)),
      STBox(Mbr(200, 200, 300, 300), Duration(0, 100000)),  // nothing
  };
  for (const STBox& box : queries) {
    std::vector<uint32_t> hits;
    StixQueryStats stats;
    index->QueryBox(accel::BoxFilterQuery::FromBox(box), &hits, &stats);
    EXPECT_EQ(hits, BruteForceBox(events, box));
    EXPECT_TRUE(std::is_sorted(hits.begin(), hits.end()));
    EXPECT_GT(stats.pages_read, 0u);  // at least the root's page
  }
}

TEST(StixTest, LookupIdsMatchesBruteForce) {
  std::string dir = TempDir("lookup");
  auto events = RandomEvents(900, 23);
  std::string path = StagePair(dir, events);
  auto index = StixIndex::Open(StixPathFor(path), path);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  std::vector<int64_t> ids = {0, 3, 57, 123, 299, 1000000};  // last: absent
  std::sort(ids.begin(), ids.end());
  STBox box(Mbr(0, 0, 60, 60), Duration(0, 70000));
  for (bool apply_box : {false, true}) {
    std::vector<uint32_t> hits;
    StixQueryStats stats;
    index->LookupIds(ids, accel::BoxFilterQuery::FromBox(box), apply_box,
                     &hits, &stats);
    std::vector<uint32_t> expected;
    for (size_t i = 0; i < events.size(); ++i) {
      if (!std::binary_search(ids.begin(), ids.end(), events[i].id)) continue;
      if (apply_box && !events[i].ComputeSTBox().Intersects(box)) continue;
      expected.push_back(static_cast<uint32_t>(i));
    }
    EXPECT_EQ(hits, expected) << "apply_box=" << apply_box;
    if (!apply_box) {
      // Every posting resolved for a present id counts.
      EXPECT_EQ(stats.postings_hits, expected.size());
    }
  }
}

TEST(StixTest, EmptyPartitionRoundTrips) {
  std::string dir = TempDir("empty");
  std::vector<EventRecord> none;
  std::string path = StagePair(dir, none);
  auto index = StixIndex::Open(StixPathFor(path), path);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->record_count(), 0u);
  std::vector<uint32_t> hits;
  StixQueryStats stats;
  index->QueryBox(accel::BoxFilterQuery::FromBox(
                      STBox(Mbr(0, 0, 100, 100), Duration(0, 100000))),
                  &hits, &stats);
  EXPECT_TRUE(hits.empty());
}

TEST(StixTest, TrajSidecarRoundTrips) {
  std::string dir = TempDir("traj");
  std::vector<TrajRecord> trajs;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    TrajRecord t;
    t.id = i % 40;
    int npoints = static_cast<int>(rng.UniformInt(1, 12));
    for (int p = 0; p < npoints; ++p) {
      t.points.push_back({rng.Uniform(0, 50), rng.Uniform(0, 50),
                          rng.UniformInt(0, 10000)});
    }
    trajs.push_back(std::move(t));
  }
  std::string path = dir + "/part-00000.stpq";
  ASSERT_TRUE(WriteStpqFile(path, trajs).ok());
  ASSERT_TRUE(BuildStixForStpq(path, trajs).ok());
  auto index = StixIndex::Open(StixPathFor(path), path);
  ASSERT_TRUE(index.ok()) << index.status().ToString();

  STBox box(Mbr(10, 10, 30, 30), Duration(2000, 8000));
  std::vector<uint32_t> hits;
  StixQueryStats stats;
  index->QueryBox(accel::BoxFilterQuery::FromBox(box), &hits, &stats);
  std::vector<uint32_t> expected;
  for (size_t i = 0; i < trajs.size(); ++i) {
    if (trajs[i].ComputeSTBox().Intersects(box)) {
      expected.push_back(static_cast<uint32_t>(i));
    }
  }
  EXPECT_EQ(hits, expected);
}

class StixCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TempDir("corrupt");
    events_ = RandomEvents(400, 41);
    stpq_ = StagePair(dir_, events_);
    stix_ = StixPathFor(stpq_);
    pristine_ = Slurp(stix_);
    ASSERT_GE(pristine_.size(), sizeof(StixHeader));
  }

  /// Applies `mutate` to a pristine copy, dumps it, and expects Open to
  /// fail with InvalidArgument whose message contains `expect_substr`.
  void ExpectRejected(const std::string& expect_substr,
                      const std::function<void(std::string*)>& mutate) {
    std::string bytes = pristine_;
    mutate(&bytes);
    Dump(stix_, bytes);
    auto index = StixIndex::Open(stix_, stpq_);
    ASSERT_FALSE(index.ok()) << "accepted a sidecar with " << expect_substr;
    EXPECT_EQ(index.status().code(), Status::Code::kInvalidArgument)
        << index.status().ToString();
    EXPECT_NE(index.status().message().find(expect_substr), std::string::npos)
        << index.status().ToString();
  }

  StixHeader HeaderOf(const std::string& bytes) {
    StixHeader h;
    std::memcpy(&h, bytes.data(), sizeof(h));
    return h;
  }

  void PutHeader(std::string* bytes, const StixHeader& h) {
    std::memcpy(bytes->data(), &h, sizeof(h));
  }

  std::string dir_, stpq_, stix_, pristine_;
  std::vector<EventRecord> events_;
};

TEST_F(StixCorruptionTest, RejectsBadMagic) {
  ExpectRejected("bad stix magic",
                 [](std::string* b) { (*b)[0] = 'Z'; });
}

TEST_F(StixCorruptionTest, RejectsUnsupportedVersion) {
  ExpectRejected("unsupported stix version", [&](std::string* b) {
    StixHeader h = HeaderOf(*b);
    h.version = 99;
    PutHeader(b, h);
  });
}

TEST_F(StixCorruptionTest, RejectsTruncatedHeader) {
  Dump(stix_, pristine_.substr(0, 40));
  auto index = StixIndex::Open(stix_, stpq_);
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(index.status().message().find("truncated stix header"),
            std::string::npos);
}

TEST_F(StixCorruptionTest, RejectsTruncatedPageTable) {
  Dump(stix_, pristine_.substr(0, pristine_.size() / 2));
  auto index = StixIndex::Open(stix_, stpq_);
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(index.status().message().find("truncated stix page table"),
            std::string::npos);
}

TEST_F(StixCorruptionTest, RejectsCountOverflow) {
  ExpectRejected("stix count overflow", [&](std::string* b) {
    StixHeader h = HeaderOf(*b);
    h.record_count = ~uint64_t{0} - 3;  // layout math would wrap
    PutHeader(b, h);
  });
}

TEST_F(StixCorruptionTest, RejectsRecordOffsetsPastEof) {
  ExpectRejected("stix record offsets past EOF", [&](std::string* b) {
    StixHeader h = HeaderOf(*b);
    uint64_t last =
        h.section_off[kStixRecOffsets] + h.record_count * sizeof(uint64_t);
    uint64_t huge = h.source_size + (1 << 20);
    std::memcpy(b->data() + last, &huge, sizeof(huge));
  });
}

TEST_F(StixCorruptionTest, RejectsOrderPermutationBreak) {
  ExpectRejected("stix order is not a permutation", [&](std::string* b) {
    StixHeader h = HeaderOf(*b);
    uint32_t dup = 0;
    std::memcpy(b->data() + h.section_off[kStixOrder] + sizeof(uint32_t),
                &dup, sizeof(dup));
    std::memcpy(b->data() + h.section_off[kStixOrder], &dup, sizeof(dup));
  });
}

TEST_F(StixCorruptionTest, RejectsStaleSidecar) {
  // Rewrite the source with different records: size|mtime no longer match.
  auto other = RandomEvents(500, 99);
  ASSERT_TRUE(WriteStpqFile(stpq_, other).ok());
  auto index = StixIndex::Open(stix_, stpq_);
  ASSERT_FALSE(index.ok());
  EXPECT_NE(index.status().message().find("stale stix sidecar"),
            std::string::npos);
}

TEST_F(StixCorruptionTest, RejectsSameSizeSameMtimeRewriteByFingerprint) {
  // The adversarial rewrite size|mtime alone cannot catch: replace the
  // source with a file of the SAME byte size and restore its mtime. The
  // record count changes (2 fat-attr events -> 3 empty-attr events, equal
  // total bytes), so the stpq-header fingerprint in the staleness key must
  // still flag the sidecar as stale.
  std::string dir = TempDir("fingerprint");
  std::string path = dir + "/part-00000.stpq";
  std::vector<EventRecord> two(2);
  two[0].id = 1;
  two[0].attr = std::string(18, 'a');
  two[1].id = 2;
  two[1].attr = std::string(18, 'b');
  ASSERT_TRUE(WriteStpqFile(path, two).ok());
  ASSERT_TRUE(BuildStixForStpq(path, two).ok());
  uint64_t size_before = fs::file_size(path);
  fs::file_time_type mtime_before = fs::last_write_time(path);

  std::vector<EventRecord> three(3);  // empty attrs: 3*36 == 2*36 + 2*18
  three[0].id = 7;
  three[1].id = 8;
  three[2].id = 9;
  ASSERT_TRUE(WriteStpqFile(path, three).ok());
  ASSERT_EQ(fs::file_size(path), size_before);
  fs::last_write_time(path, mtime_before);

  auto index = StixIndex::Open(StixPathFor(path), path);
  ASSERT_FALSE(index.ok())
      << "same-size same-mtime rewrite accepted: the fingerprint is dead";
  EXPECT_NE(index.status().message().find("stale stix sidecar"),
            std::string::npos)
      << index.status().ToString();
}

TEST_F(StixCorruptionTest, MtimeStampOfMissingFileIsAnError) {
  // FileMtimeStamp used to swallow stat failures into a 0 stamp, which made
  // "source vanished" indistinguishable from a real epoch mtime. It must
  // propagate the error.
  auto stamp = FileMtimeStamp(dir_ + "/does-not-exist.stpq");
  ASSERT_FALSE(stamp.ok());
  auto fingerprint = StpqHeaderFingerprint(dir_ + "/does-not-exist.stpq");
  ASSERT_FALSE(fingerprint.ok());
}

TEST_F(StixCorruptionTest, BuildStixPropagatesUnreadableSource) {
  Status built =
      BuildStixForStpq(dir_ + "/missing-source.stpq", events_);
  ASSERT_FALSE(built.ok());
}

TEST_F(StixCorruptionTest, MissingSidecarIsNotFound) {
  fs::remove(stix_);
  auto index = StixIndex::Open(stix_, stpq_);
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), Status::Code::kNotFound);
}

/// A corrupt sidecar must DEMOTE the file to a linear scan, not fail or
/// mis-serve the query — and the executed-plan counters must say so.
TEST_F(StixCorruptionTest, SelectorDemotesCorruptSidecarToLinearScan) {
  std::string bytes = pristine_;
  bytes[0] = 'Z';
  Dump(stix_, bytes);

  auto ctx = ExecutionContext::Create(2);
  STBox box(Mbr(0, 0, 100, 100), Duration(0, 100000));
  SelectorOptions options;
  options.use_disk_index = true;
  Selector<EventRecord> selector(ctx, SelectQuery::FromBox(box), options);
  auto selected = selector.Select(dir_);
  ASSERT_TRUE(selected.ok()) << selected.status().ToString();
  EXPECT_EQ(selected->Count(), BruteForceBox(events_, box).size());
  auto m = ctx->MetricsSnapshot();
  EXPECT_EQ(m[Counter::kPlannerMmapIndex], 0u);
  EXPECT_EQ(m[Counter::kPlannerLinearScan], 1u);
  EXPECT_EQ(m[Counter::kIndexFilesMmapped], 0u);
}

TEST(StixSelectorTest, MmapSelectCountsIndexTraffic) {
  std::string dir = TempDir("counters");
  auto events = RandomEvents(1500, 7);
  std::string path = StagePair(dir, events);

  auto ctx = ExecutionContext::Create(2);
  STBox box(Mbr(10, 10, 30, 30), Duration(0, 40000));
  SelectorOptions options;
  options.use_disk_index = true;
  Selector<EventRecord> selector(ctx, SelectQuery::FromBox(box), options);
  auto selected = selector.Select(dir);
  ASSERT_TRUE(selected.ok()) << selected.status().ToString();
  EXPECT_EQ(selected->Count(), BruteForceBox(events, box).size());

  auto m = ctx->MetricsSnapshot();
  EXPECT_EQ(m[Counter::kPlannerMmapIndex], 1u);
  EXPECT_EQ(m[Counter::kPlannerLinearScan], 0u);
  EXPECT_EQ(m[Counter::kIndexFilesMmapped], 1u);
  EXPECT_GT(m[Counter::kIndexPagesRead], 0u);
  // Ranged reads: strictly fewer .stpq bytes than the whole file.
  EXPECT_GT(m[Counter::kStpqBytesRead], 0u);
  EXPECT_LT(m[Counter::kStpqBytesRead], FileSizeBytes(path));
}

TEST(StixSelectorTest, PostingsHitsCountOnIdLookup) {
  std::string dir = TempDir("postings");
  auto events = RandomEvents(800, 13);
  StagePair(dir, events);

  auto ctx = ExecutionContext::Create(2);
  SelectorOptions options;
  options.use_disk_index = true;
  Selector<EventRecord> selector(
      ctx, SelectQuery::FromIds({1, 2, 3, 4, 5}), options);
  auto selected = selector.Select(dir);
  ASSERT_TRUE(selected.ok()) << selected.status().ToString();
  size_t expected = 0;
  for (const EventRecord& r : events) {
    if (r.id >= 1 && r.id <= 5) ++expected;
  }
  ASSERT_GT(expected, 0u);
  EXPECT_EQ(selected->Count(), expected);
  auto m = ctx->MetricsSnapshot();
  EXPECT_EQ(m[Counter::kPostingsHits], expected);
}

}  // namespace
}  // namespace st4ml
