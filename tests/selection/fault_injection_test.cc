// Fault-injection coverage for the I/O boundaries: a transient injected
// STPQ failure is retried to a byte-identical result (with the retries
// visible in the metrics snapshot), and a persistent one surfaces as an
// IOError Status instead of killing the process.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "common/rng.h"
#include "engine/execution_context.h"
#include "selection/on_disk_index.h"
#include "selection/selector.h"
#include "storage/records.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("st4ml_fault_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<EventRecord> RandomEvents(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<EventRecord> events;
  events.reserve(n);
  for (int i = 0; i < n; ++i) {
    EventRecord r;
    r.id = i;
    r.x = rng.Uniform(0, 100);
    r.y = rng.Uniform(0, 100);
    r.time = rng.UniformInt(0, 100000);
    r.attr = "e";
    events.push_back(r);
  }
  return events;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalFaultInjector().Reset();
    ctx_ = ExecutionContext::Create(2);
    events_ = RandomEvents(2000, 17);
    dir_ = TempDir("index");
    meta_ = dir_ + "/index.meta";
    auto data = Dataset<EventRecord>::Parallelize(ctx_, events_, 4);
    TSTRPartitioner partitioner(3, 3);
    ASSERT_TRUE(BuildOnDiskIndex(data, &partitioner, dir_, meta_).ok());
  }

  void TearDown() override { GlobalFaultInjector().Reset(); }

  // Serializes a selection result so two runs can be compared byte for
  // byte, not just record-count for record-count.
  std::string ResultBytes(const Dataset<EventRecord>& selected,
                          const std::string& tag) {
    std::string path = dir_ + "/result_" + tag + ".stpq";
    EXPECT_TRUE(WriteStpqFile(path, selected.Collect()).ok());
    return Slurp(path);
  }

  std::shared_ptr<ExecutionContext> ctx_;
  std::vector<EventRecord> events_;
  std::string dir_;
  std::string meta_;
};

TEST_F(FaultInjectionTest, TransientReadFaultIsRetriedToIdenticalBytes) {
  STBox query(Mbr(10, 10, 80, 80), Duration(0, 90000));

  Selector<EventRecord> clean(ctx_, SelectQuery::FromBox(query));
  auto clean_result = clean.Select(dir_, meta_);
  ASSERT_TRUE(clean_result.ok()) << clean_result.status().ToString();
  std::string clean_bytes = ResultBytes(*clean_result, "clean");

  ctx_->ResetMetrics();
  GlobalFaultInjector().FailNext(fault_site::kStpqRead, 1);
  Selector<EventRecord> faulted(ctx_, SelectQuery::FromBox(query));  // default retry: 3 attempts
  auto faulted_result = faulted.Select(dir_, meta_);
  ASSERT_TRUE(faulted_result.ok()) << faulted_result.status().ToString();

  EXPECT_EQ(ResultBytes(*faulted_result, "faulted"), clean_bytes);
  EXPECT_GE(GlobalFaultInjector().injected_count(), 1u);
  auto snapshot = ctx_->MetricsSnapshot();
  EXPECT_GE(snapshot[Counter::kTasksRetried], 1u);
  EXPECT_EQ(snapshot[Counter::kTasksFailed], 0u);
}

TEST_F(FaultInjectionTest, PersistentReadFaultSurfacesAsIOError) {
  // More scripted failures than every file's retry budget combined: some
  // load task exhausts its attempts and the Select must fail with the
  // injected IOError — no throw, no deadlock, no partial result.
  GlobalFaultInjector().FailNext(fault_site::kStpqRead, 1000);
  STBox query(Mbr(0, 0, 100, 100), Duration(0, 100000));
  Selector<EventRecord> selector(ctx_, SelectQuery::FromBox(query));
  auto result = selector.Select(dir_, meta_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kIOError);
  EXPECT_GE(ctx_->MetricsSnapshot()[Counter::kTasksFailed], 1u);
  GlobalFaultInjector().Reset();

  // The same selector works once the fault clears.
  auto retried = selector.Select(dir_, meta_);
  EXPECT_TRUE(retried.ok()) << retried.status().ToString();
}

TEST_F(FaultInjectionTest, TransientWriteFaultIsRetriedDuringIndexBuild) {
  std::string dir = TempDir("rebuild");
  ctx_->ResetMetrics();
  GlobalFaultInjector().FailNext(fault_site::kStpqWrite, 1);
  auto data = Dataset<EventRecord>::Parallelize(ctx_, events_, 4);
  TSTRPartitioner partitioner(2, 2);
  ASSERT_TRUE(
      BuildOnDiskIndex(data, &partitioner, dir, dir + "/index.meta").ok());
  EXPECT_GE(ctx_->MetricsSnapshot()[Counter::kTasksRetried], 1u);

  // The rebuilt index serves the full query set.
  STBox query(Mbr(0, 0, 100, 100), Duration(0, 100000));
  Selector<EventRecord> selector(ctx_, SelectQuery::FromBox(query));
  auto result = selector.Select(dir, dir + "/index.meta");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Count(), events_.size());
}

TEST_F(FaultInjectionTest, PersistentWriteFaultFailsIndexBuild) {
  std::string dir = TempDir("failbuild");
  GlobalFaultInjector().FailNext(fault_site::kStpqWrite, 1000);
  auto data = Dataset<EventRecord>::Parallelize(ctx_, events_, 4);
  TSTRPartitioner partitioner(2, 2);
  Status status =
      BuildOnDiskIndex(data, &partitioner, dir, dir + "/index.meta");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kIOError);
  EXPECT_NE(status.message().find("injected fault"), std::string::npos);
}

TEST(FaultInjectorTest, ScriptedModeFiresExactlyNTimes) {
  FaultInjector injector;
  injector.FailNext("some/site", 2);
  EXPECT_FALSE(injector.MaybeFail("some/site").ok());
  EXPECT_FALSE(injector.MaybeFail("some/site").ok());
  EXPECT_TRUE(injector.MaybeFail("some/site").ok());
  EXPECT_EQ(injector.injected_count(), 2u);
  // Other sites are untouched.
  EXPECT_TRUE(injector.MaybeFail("other/site").ok());
}

TEST(FaultInjectorTest, ProbabilisticModeIsSeedDeterministic) {
  FaultInjector a;
  FaultInjector b;
  a.ArmProbabilistic("site", 0.3, 99);
  b.ArmProbabilistic("site", 0.3, 99);
  std::vector<bool> fires_a;
  std::vector<bool> fires_b;
  for (int i = 0; i < 200; ++i) {
    fires_a.push_back(!a.MaybeFail("site").ok());
    fires_b.push_back(!b.MaybeFail("site").ok());
  }
  EXPECT_EQ(fires_a, fires_b);
  // p = 0.3 over 200 draws fires at least once and not always.
  EXPECT_GT(a.injected_count(), 0u);
  EXPECT_LT(a.injected_count(), 200u);
}

TEST(FaultInjectorTest, ResetDisarms) {
  FaultInjector injector;
  injector.FailNext("site", 100);
  EXPECT_FALSE(injector.MaybeFail("site").ok());
  injector.Reset();
  EXPECT_TRUE(injector.MaybeFail("site").ok());
  EXPECT_EQ(injector.injected_count(), 0u);
}

TEST(FaultInjectorTest, InjectedErrorNamesSiteAndDetail) {
  FaultInjector injector;
  injector.FailNext("stpq/read", 1);
  Status status = injector.MaybeFail("stpq/read", "/data/part-00001.stpq");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kIOError);
  EXPECT_NE(status.message().find("stpq/read"), std::string::npos);
  EXPECT_NE(status.message().find("part-00001"), std::string::npos);
}

}  // namespace
}  // namespace st4ml
