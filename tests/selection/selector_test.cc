#include "selection/selector.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/execution_context.h"
#include "selection/on_disk_index.h"
#include "storage/records.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("st4ml_selector_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<EventRecord> RandomEvents(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<EventRecord> events;
  events.reserve(n);
  for (int i = 0; i < n; ++i) {
    EventRecord r;
    r.id = i;
    r.x = rng.Uniform(0, 100);
    r.y = rng.Uniform(0, 100);
    r.time = rng.UniformInt(0, 100000);
    r.attr = "e";
    events.push_back(r);
  }
  return events;
}

std::vector<int64_t> SortedIds(const Dataset<EventRecord>& data) {
  std::vector<int64_t> ids;
  for (const EventRecord& r : data.Collect()) ids.push_back(r.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<int64_t> ReferenceIds(const std::vector<EventRecord>& events,
                                  const STBox& query) {
  std::vector<int64_t> ids;
  for (const EventRecord& r : events) {
    if (r.ComputeSTBox().Intersects(query)) ids.push_back(r.id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

class SelectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_ = ExecutionContext::Create(2);
    events_ = RandomEvents(3000, 31);
    dir_ = TempDir("index");
    meta_ = dir_ + "/index.meta";
    auto data = Dataset<EventRecord>::Parallelize(ctx_, events_, 4);
    TSTRPartitioner partitioner(4, 4);
    ASSERT_TRUE(BuildOnDiskIndex(data, &partitioner, dir_, meta_).ok());
  }

  std::shared_ptr<ExecutionContext> ctx_;
  std::vector<EventRecord> events_;
  std::string dir_;
  std::string meta_;
};

TEST_F(SelectorTest, FullScanMatchesReferencePredicate) {
  std::vector<STBox> queries = {
      STBox(Mbr(10, 10, 40, 40), Duration(0, 50000)),
      STBox(Mbr(0, 0, 100, 100), Duration(0, 100000)),
      STBox(Mbr(70, 70, 71, 71), Duration(90000, 90001)),
      STBox(Mbr(200, 200, 300, 300), Duration(0, 100000)),  // empty result
  };
  for (const STBox& query : queries) {
    Selector<EventRecord> selector(ctx_, query);
    auto selected = selector.Select(dir_);
    ASSERT_TRUE(selected.ok()) << selected.status().ToString();
    EXPECT_EQ(SortedIds(*selected), ReferenceIds(events_, query));
  }
}

TEST_F(SelectorTest, MetaPrunedEqualsFullScan) {
  std::vector<STBox> queries = {
      STBox(Mbr(10, 10, 40, 40), Duration(0, 50000)),
      STBox(Mbr(50, 0, 100, 30), Duration(25000, 75000)),
      STBox(Mbr(0, 0, 5, 5), Duration(0, 5000)),
  };
  for (const STBox& query : queries) {
    Selector<EventRecord> full(ctx_, query);
    Selector<EventRecord> pruned(ctx_, query);
    auto full_result = full.Select(dir_);
    auto pruned_result = pruned.Select(dir_, meta_);
    ASSERT_TRUE(full_result.ok());
    ASSERT_TRUE(pruned_result.ok()) << pruned_result.status().ToString();
    EXPECT_EQ(SortedIds(*pruned_result), SortedIds(*full_result));
  }
}

TEST_F(SelectorTest, PruningLoadsFewerBytesOnSelectiveQuery) {
  STBox query(Mbr(5, 5, 15, 15), Duration(0, 10000));
  Selector<EventRecord> full(ctx_, query);
  Selector<EventRecord> pruned(ctx_, query);
  ASSERT_TRUE(full.Select(dir_).ok());
  ASSERT_TRUE(pruned.Select(dir_, meta_).ok());
  EXPECT_GT(full.stats().bytes_loaded, 0u);
  EXPECT_LT(pruned.stats().bytes_loaded, full.stats().bytes_loaded);
  EXPECT_EQ(pruned.stats().bytes_selected, full.stats().bytes_selected);
}

TEST_F(SelectorTest, RtreeRefineMatchesLinearRefine) {
  STBox query(Mbr(20, 20, 60, 60), Duration(10000, 80000));
  SelectorOptions with_tree;
  with_tree.use_rtree = true;
  SelectorOptions linear;
  linear.use_rtree = false;
  Selector<EventRecord> a(ctx_, query, with_tree);
  Selector<EventRecord> b(ctx_, query, linear);
  auto ra = a.Select(dir_, meta_);
  auto rb = b.Select(dir_, meta_);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(SortedIds(*ra), SortedIds(*rb));
}

TEST_F(SelectorTest, PartitionAfterSelectRedistributes) {
  STBox query(Mbr(0, 0, 100, 100), Duration(0, 100000));
  SelectorOptions options;
  options.partitioner = std::make_shared<TSTRPartitioner>(2, 2);
  options.partition_after_select = true;
  Selector<EventRecord> selector(ctx_, query, options);
  auto selected = selector.Select(dir_, meta_);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->num_partitions(),
            static_cast<size_t>(options.partitioner->num_partitions()));
  EXPECT_EQ(SortedIds(*selected), ReferenceIds(events_, query));
}

TEST_F(SelectorTest, PersistDatasetSupportsFullScanOnly) {
  std::string plain = TempDir("plain");
  auto data = Dataset<EventRecord>::Parallelize(ctx_, events_, 3);
  ASSERT_TRUE(PersistDataset(data, plain).ok());
  STBox query(Mbr(30, 30, 70, 70), Duration(20000, 60000));
  Selector<EventRecord> selector(ctx_, query);
  auto selected = selector.Select(plain);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(SortedIds(*selected), ReferenceIds(events_, query));
}

}  // namespace
}  // namespace st4ml
