#include "selection/selector.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/execution_context.h"
#include "selection/on_disk_index.h"
#include "storage/records.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("st4ml_selector_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<EventRecord> RandomEvents(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<EventRecord> events;
  events.reserve(n);
  for (int i = 0; i < n; ++i) {
    EventRecord r;
    r.id = i;
    r.x = rng.Uniform(0, 100);
    r.y = rng.Uniform(0, 100);
    r.time = rng.UniformInt(0, 100000);
    r.attr = "e";
    events.push_back(r);
  }
  return events;
}

std::vector<int64_t> SortedIds(const Dataset<EventRecord>& data) {
  std::vector<int64_t> ids;
  for (const EventRecord& r : data.Collect()) ids.push_back(r.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<int64_t> ReferenceIds(const std::vector<EventRecord>& events,
                                  const STBox& query) {
  std::vector<int64_t> ids;
  for (const EventRecord& r : events) {
    if (r.ComputeSTBox().Intersects(query)) ids.push_back(r.id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

class SelectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_ = ExecutionContext::Create(2);
    events_ = RandomEvents(3000, 31);
    dir_ = TempDir("index");
    meta_ = dir_ + "/index.meta";
    auto data = Dataset<EventRecord>::Parallelize(ctx_, events_, 4);
    TSTRPartitioner partitioner(4, 4);
    ASSERT_TRUE(BuildOnDiskIndex(data, &partitioner, dir_, meta_).ok());
  }

  std::shared_ptr<ExecutionContext> ctx_;
  std::vector<EventRecord> events_;
  std::string dir_;
  std::string meta_;
};

TEST_F(SelectorTest, FullScanMatchesReferencePredicate) {
  std::vector<STBox> queries = {
      STBox(Mbr(10, 10, 40, 40), Duration(0, 50000)),
      STBox(Mbr(0, 0, 100, 100), Duration(0, 100000)),
      STBox(Mbr(70, 70, 71, 71), Duration(90000, 90001)),
      STBox(Mbr(200, 200, 300, 300), Duration(0, 100000)),  // empty result
  };
  for (const STBox& query : queries) {
    Selector<EventRecord> selector(ctx_, SelectQuery::FromBox(query));
    auto selected = selector.Select(dir_);
    ASSERT_TRUE(selected.ok()) << selected.status().ToString();
    EXPECT_EQ(SortedIds(*selected), ReferenceIds(events_, query));
  }
}

TEST_F(SelectorTest, MetaPrunedEqualsFullScan) {
  std::vector<STBox> queries = {
      STBox(Mbr(10, 10, 40, 40), Duration(0, 50000)),
      STBox(Mbr(50, 0, 100, 30), Duration(25000, 75000)),
      STBox(Mbr(0, 0, 5, 5), Duration(0, 5000)),
  };
  for (const STBox& query : queries) {
    Selector<EventRecord> full(ctx_, SelectQuery::FromBox(query));
    Selector<EventRecord> pruned(ctx_, SelectQuery::FromBox(query));
    auto full_result = full.Select(dir_);
    auto pruned_result = pruned.Select(dir_, meta_);
    ASSERT_TRUE(full_result.ok());
    ASSERT_TRUE(pruned_result.ok()) << pruned_result.status().ToString();
    EXPECT_EQ(SortedIds(*pruned_result), SortedIds(*full_result));
  }
}

TEST_F(SelectorTest, PruningLoadsFewerBytesOnSelectiveQuery) {
  STBox query(Mbr(5, 5, 15, 15), Duration(0, 10000));
  // Pin the linear-scan plan: under the mmap index BOTH selectors already
  // read only matching bytes, which is a different assertion (below).
  SelectorOptions options;
  options.use_disk_index = false;
  Selector<EventRecord> full(ctx_, SelectQuery::FromBox(query), options);
  Selector<EventRecord> pruned(ctx_, SelectQuery::FromBox(query), options);
  ASSERT_TRUE(full.Select(dir_).ok());
  ASSERT_TRUE(pruned.Select(dir_, meta_).ok());
  EXPECT_GT(full.stats().bytes_loaded, 0u);
  EXPECT_LT(pruned.stats().bytes_loaded, full.stats().bytes_loaded);
  EXPECT_EQ(pruned.stats().bytes_selected, full.stats().bytes_selected);
}

TEST_F(SelectorTest, MmapIndexMatchesLinearScanAndReadsFewerBytes) {
  STBox query(Mbr(5, 5, 25, 25), Duration(0, 30000));
  SelectorOptions with_index;
  with_index.use_disk_index = true;
  SelectorOptions without;
  without.use_disk_index = false;
  Selector<EventRecord> indexed(ctx_, SelectQuery::FromBox(query), with_index);
  Selector<EventRecord> scanned(ctx_, SelectQuery::FromBox(query), without);
  auto ri = indexed.Select(dir_, meta_);
  auto rs = scanned.Select(dir_, meta_);
  ASSERT_TRUE(ri.ok()) << ri.status().ToString();
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(SortedIds(*ri), SortedIds(*rs));
  EXPECT_EQ(SortedIds(*ri), ReferenceIds(events_, query));
  // The selective query keeps a small fraction; ranged reads must beat
  // parsing the surviving files end to end.
  EXPECT_GT(scanned.stats().bytes_loaded, 0u);
  EXPECT_LT(indexed.stats().bytes_loaded, scanned.stats().bytes_loaded);
  EXPECT_EQ(indexed.stats().bytes_selected, scanned.stats().bytes_selected);
}

TEST_F(SelectorTest, IdPredicateComposesIdenticallyAcrossPlans) {
  std::vector<int64_t> wanted = {7, 250, 251, 252, 1999, 2998, 5000};
  SelectQuery id_only = SelectQuery::FromIds(wanted);
  SelectQuery id_and_box = SelectQuery::FromIds(wanted);
  id_and_box.box = STBox(Mbr(0, 0, 60, 60), Duration(0, 100000));
  for (const SelectQuery& query : {id_only, id_and_box}) {
    std::vector<int64_t> expected;
    for (const EventRecord& r : events_) {
      if (query.MatchesId(r.id) && r.ComputeSTBox().Intersects(query.box)) {
        expected.push_back(r.id);
      }
    }
    std::sort(expected.begin(), expected.end());
    for (bool disk_index : {false, true}) {
      SelectorOptions options;
      options.use_disk_index = disk_index;
      Selector<EventRecord> selector(ctx_, query, options);
      auto selected = selector.Select(dir_, meta_);
      ASSERT_TRUE(selected.ok()) << selected.status().ToString();
      EXPECT_EQ(SortedIds(*selected), expected)
          << "disk_index=" << disk_index;
    }
  }
}

TEST_F(SelectorTest, EmptyIdSetMatchesNothing) {
  SelectQuery query = SelectQuery::FromBox(
      STBox(Mbr(0, 0, 100, 100), Duration(0, 100000)));
  query.SetIds({});
  for (bool disk_index : {false, true}) {
    SelectorOptions options;
    options.use_disk_index = disk_index;
    Selector<EventRecord> selector(ctx_, query, options);
    auto selected = selector.Select(dir_, meta_);
    ASSERT_TRUE(selected.ok());
    EXPECT_EQ(selected->Count(), 0u) << "disk_index=" << disk_index;
  }
}

TEST_F(SelectorTest, DeprecatedBoxConstructorStillSelects) {
  // The legacy STBox spelling must keep working (and agreeing with the
  // SelectQuery one) until its callers are gone for good.
  STBox query(Mbr(10, 10, 40, 40), Duration(0, 50000));
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  Selector<EventRecord> legacy(ctx_, query);
#pragma GCC diagnostic pop
  auto selected = legacy.Select(dir_, meta_);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(SortedIds(*selected), ReferenceIds(events_, query));
}

TEST_F(SelectorTest, RtreeRefineMatchesLinearRefine) {
  STBox query(Mbr(20, 20, 60, 60), Duration(10000, 80000));
  SelectorOptions with_tree;
  with_tree.use_rtree = true;
  SelectorOptions linear;
  linear.use_rtree = false;
  Selector<EventRecord> a(ctx_, SelectQuery::FromBox(query), with_tree);
  Selector<EventRecord> b(ctx_, SelectQuery::FromBox(query), linear);
  auto ra = a.Select(dir_, meta_);
  auto rb = b.Select(dir_, meta_);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(SortedIds(*ra), SortedIds(*rb));
}

TEST_F(SelectorTest, PartitionAfterSelectRedistributes) {
  STBox query(Mbr(0, 0, 100, 100), Duration(0, 100000));
  SelectorOptions options;
  options.partitioner = std::make_shared<TSTRPartitioner>(2, 2);
  options.partition_after_select = true;
  Selector<EventRecord> selector(ctx_, SelectQuery::FromBox(query), options);
  auto selected = selector.Select(dir_, meta_);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->num_partitions(),
            static_cast<size_t>(options.partitioner->num_partitions()));
  EXPECT_EQ(SortedIds(*selected), ReferenceIds(events_, query));
}

TEST_F(SelectorTest, PersistDatasetSupportsFullScanOnly) {
  std::string plain = TempDir("plain");
  auto data = Dataset<EventRecord>::Parallelize(ctx_, events_, 3);
  ASSERT_TRUE(PersistDataset(data, plain).ok());
  STBox query(Mbr(30, 30, 70, 70), Duration(20000, 60000));
  Selector<EventRecord> selector(ctx_, SelectQuery::FromBox(query));
  auto selected = selector.Select(plain);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(SortedIds(*selected), ReferenceIds(events_, query));
}

}  // namespace
}  // namespace st4ml
