// Regression tests for the two CLI flag-parsing bugfixes in this PR:
//  - strict GetInt: `--limit=10x` / `--cache-budget=abc` must be a named
//    usage error (CheckIntFlags fails), never a silently truncated 10 or 0;
//  - SelectQueryFromFlags range-checks `--time` BEFORE the int64 cast:
//    `--time=0,1e300` (UB if cast) and fractional endpoints are usage
//    errors, in-range integral endpoints still parse.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tool_flags.h"

namespace st4ml {
namespace tools {
namespace {

// Builds a Flags over the given argument strings (argv[0] is the tool name
// and is skipped by the parser, same as in main()).
class ArgvFlags {
 public:
  explicit ArgvFlags(std::vector<std::string> args) : storage_(std::move(args)) {
    argv_.push_back(const_cast<char*>("test_tool"));
    for (std::string& arg : storage_) {
      argv_.push_back(const_cast<char*>(arg.c_str()));
    }
    flags_ = std::make_unique<Flags>(static_cast<int>(argv_.size()),
                                     argv_.data());
  }
  const Flags& get() const { return *flags_; }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> argv_;
  std::unique_ptr<Flags> flags_;
};

TEST(FlagsTest, ValidIntegersParse) {
  ArgvFlags args({"--limit=10", "--cache-budget=-1", "--workers=8"});
  EXPECT_EQ(args.get().GetInt("limit", 0), 10);
  EXPECT_EQ(args.get().GetInt("cache-budget", 0), -1);
  EXPECT_EQ(args.get().GetInt("workers", 0), 8);
  EXPECT_TRUE(args.get().ok());
  EXPECT_TRUE(CheckIntFlags(args.get(), "test_tool"));
}

TEST(FlagsTest, TrailingGarbageIsANamedUsageError) {
  ArgvFlags args({"--limit=10x"});
  // The old lax strtoll would happily return 10 here; the strict parser
  // must keep the default AND record the error by flag name.
  EXPECT_EQ(args.get().GetInt("limit", 100), 100);
  EXPECT_FALSE(args.get().ok());
  ASSERT_EQ(args.get().errors().size(), 1u);
  EXPECT_NE(args.get().errors()[0].find("--limit=10x"), std::string::npos);
  EXPECT_FALSE(CheckIntFlags(args.get(), "test_tool"));
}

TEST(FlagsTest, NonNumericValueIsAUsageError) {
  ArgvFlags args({"--cache-budget=abc"});
  EXPECT_EQ(args.get().GetInt("cache-budget", 0), 0);
  EXPECT_FALSE(args.get().ok());
  ASSERT_EQ(args.get().errors().size(), 1u);
  EXPECT_NE(args.get().errors()[0].find("--cache-budget=abc"),
            std::string::npos);
}

TEST(FlagsTest, OutOfRangeIntegerIsAUsageError) {
  ArgvFlags args({"--limit=99999999999999999999999999"});
  args.get().GetInt("limit", 7);
  EXPECT_FALSE(args.get().ok());
}

TEST(FlagsTest, AbsentFlagKeepsDefaultWithoutError) {
  ArgvFlags args({});
  EXPECT_EQ(args.get().GetInt("limit", 42), 42);
  EXPECT_TRUE(args.get().ok());
}

TEST(FlagsTest, MultipleBadFlagsAllReported) {
  ArgvFlags args({"--limit=1z", "--seal-records=x"});
  args.get().GetInt("limit", 0);
  args.get().GetInt("seal-records", 0);
  EXPECT_EQ(args.get().errors().size(), 2u);
}

TEST(FlagsTest, HasMatchesBareAndValuedSpellings) {
  ArgvFlags args({"--follow", "--count-only", "--limit=3"});
  EXPECT_TRUE(args.get().Has("follow"));
  EXPECT_TRUE(args.get().Has("count-only"));
  EXPECT_TRUE(args.get().Has("limit"));
  EXPECT_FALSE(args.get().Has("flush"));
}

TEST(SelectQueryFromFlagsTest, IntegralTimeEndpointsParse) {
  ArgvFlags args(
      {"--mbr=0,0,10,10", "--time=1577836800,1585612800", "--limit=5"});
  SelectQuery query;
  ASSERT_TRUE(SelectQueryFromFlags(args.get(), "test_tool", &query));
  EXPECT_EQ(query.box.time.start(), 1577836800);
  EXPECT_EQ(query.box.time.end(), 1585612800);
  EXPECT_EQ(query.limit, 5);
}

TEST(SelectQueryFromFlagsTest, HugeTimeEndpointIsAUsageErrorNotUb) {
  // 1e300 is far outside int64 range: casting it is undefined behavior, so
  // the flag parser must reject it before any cast happens.
  ArgvFlags args({"--mbr=0,0,10,10", "--time=0,1e300"});
  SelectQuery query;
  EXPECT_FALSE(SelectQueryFromFlags(args.get(), "test_tool", &query));
}

TEST(SelectQueryFromFlagsTest, NegativeHugeTimeEndpointRejected) {
  ArgvFlags args({"--mbr=0,0,10,10", "--time=-1e300,0"});
  SelectQuery query;
  EXPECT_FALSE(SelectQueryFromFlags(args.get(), "test_tool", &query));
}

TEST(SelectQueryFromFlagsTest, ExactInt64BoundaryRejectedAboveMax) {
  // 2^63 itself is NOT representable as int64; the check is `>=`.
  ArgvFlags args({"--mbr=0,0,10,10", "--time=0,9223372036854775808"});
  SelectQuery query;
  EXPECT_FALSE(SelectQueryFromFlags(args.get(), "test_tool", &query));
}

TEST(SelectQueryFromFlagsTest, FractionalTimeEndpointRejected) {
  ArgvFlags args({"--mbr=0,0,10,10", "--time=0.5,100"});
  SelectQuery query;
  EXPECT_FALSE(SelectQueryFromFlags(args.get(), "test_tool", &query));
}

TEST(SelectQueryFromFlagsTest, IdsAloneAreAValidPredicate) {
  ArgvFlags args({"--ids=1,2,3"});
  SelectQuery query;
  ASSERT_TRUE(SelectQueryFromFlags(args.get(), "test_tool", &query));
  EXPECT_TRUE(query.has_ids);
}

TEST(SelectQueryFromFlagsTest, NoPredicateIsAUsageError) {
  ArgvFlags args({"--limit=10"});
  SelectQuery query;
  EXPECT_FALSE(SelectQueryFromFlags(args.get(), "test_tool", &query));
}

}  // namespace
}  // namespace tools
}  // namespace st4ml
