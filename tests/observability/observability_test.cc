// Pins the observability subsystem's contracts: the Chrome trace export is
// valid JSON whose spans nest pipeline → stage → operation → task in stage
// order, the typed counters reproduce the legacy EngineMetrics shuffle
// accounting (totals == per-operator sums) on the shuffle-invariance
// scenarios, tracing changes NO counter (traced and untraced runs snapshot
// identically), and the metrics JSON matches MetricsSnapshot() exactly.

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/dataset.h"
#include "engine/execution_context.h"
#include "engine/pair_ops.h"
#include "observability/counters.h"
#include "observability/trace_export.h"
#include "observability/tracer.h"
#include "pipeline/pipeline.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// A minimal JSON reader (objects, arrays, strings, numbers, bools, null) —
// just enough to validate the exporters without an external dependency.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    pos_ = 0;
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u':
            // Good enough for these tests: skip the four hex digits.
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;
            out->push_back('?');
            break;
          default: out->push_back(esc); break;
        }
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      SkipSpace();
      if (Consume('}')) return true;
      for (;;) {
        std::string key;
        if (!ParseString(&key) || !Consume(':')) return false;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->object.emplace_back(std::move(key), std::move(value));
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      SkipSpace();
      if (Consume(']')) return true;
      for (;;) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::kBool;
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::kNull;
      pos_ += 4;
      return true;
    }
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out->number = std::strtod(start, &end);
    if (end == start) return false;
    out->kind = JsonValue::kNumber;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::vector<std::pair<int64_t, int64_t>> RandomPairs(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<int64_t, int64_t>> pairs;
  pairs.reserve(n);
  for (int i = 0; i < n; ++i) {
    pairs.emplace_back(rng.UniformInt(0, 200), rng.UniformInt(-50, 50));
  }
  return pairs;
}

/// The reference workload: one traced "pipeline" with a shuffle per stage.
void RunStagedWorkload(const std::shared_ptr<ExecutionContext>& ctx) {
  auto pairs = RandomPairs(5000, 17);
  Pipeline pipeline(ctx, "test_pipeline");
  auto data = pipeline.Run("selection", [&] {
    return Dataset<std::pair<int64_t, int64_t>>::Parallelize(ctx, pairs, 6);
  });
  auto reduced = pipeline.Run(
      "conversion",
      [](const Dataset<std::pair<int64_t, int64_t>>& in) {
        return TryReduceByKey<int64_t, int64_t>(in, std::plus<int64_t>());
      },
      data);
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  pipeline.Run(
      "extraction",
      [](const Dataset<std::pair<int64_t, int64_t>>& in) {
        return in.Collect().size();
      },
      *reduced);
}

TEST(TraceExportTest, ChromeTraceIsValidJsonWithNestedSpans) {
  auto ctx = ExecutionContext::Create(4);
  auto tracer = std::make_shared<Tracer>();
  ctx->set_tracer(tracer);
  RunStagedWorkload(ctx);

  std::string path = TempPath("st4ml_observability_trace.json");
  ASSERT_TRUE(WriteChromeTrace(*tracer, path).ok());
  JsonValue root;
  ASSERT_TRUE(JsonReader(ReadFile(path)).Parse(&root)) << "invalid JSON";
  fs::remove(path);

  ASSERT_EQ(root.kind, JsonValue::kObject);
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);
  ASSERT_FALSE(events->array.empty());

  // Index span_id -> (category, parent_id, name); verify event shape.
  struct Node {
    std::string cat;
    std::string name;
    uint64_t parent = 0;
  };
  std::map<uint64_t, Node> nodes;
  for (const JsonValue& event : events->array) {
    ASSERT_EQ(event.kind, JsonValue::kObject);
    for (const char* field : {"name", "cat", "ph"}) {
      const JsonValue* v = event.Find(field);
      ASSERT_NE(v, nullptr) << field;
      EXPECT_EQ(v->kind, JsonValue::kString) << field;
    }
    EXPECT_EQ(event.Find("ph")->str, "X");
    for (const char* field : {"pid", "tid", "ts", "dur"}) {
      const JsonValue* v = event.Find(field);
      ASSERT_NE(v, nullptr) << field;
      EXPECT_EQ(v->kind, JsonValue::kNumber) << field;
      EXPECT_GE(v->number, 0) << field;
    }
    const JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_EQ(args->kind, JsonValue::kObject);
    const JsonValue* id = args->Find("span_id");
    const JsonValue* parent = args->Find("parent_id");
    ASSERT_NE(id, nullptr);
    ASSERT_NE(parent, nullptr);
    Node node;
    node.cat = event.Find("cat")->str;
    node.name = event.Find("name")->str;
    node.parent = static_cast<uint64_t>(parent->number);
    nodes[static_cast<uint64_t>(id->number)] = node;
  }

  // Depth of each span via parent links; categories must layer
  // pipeline(0) → stage(1) → operation(2) → task(3).
  std::function<int(uint64_t)> depth_of = [&](uint64_t id) -> int {
    const Node& node = nodes.at(id);
    return node.parent == 0 ? 0 : depth_of(node.parent) + 1;
  };
  std::map<std::string, int> max_depth_by_cat;
  int pipelines = 0;
  std::vector<std::string> stage_names;  // in span-id (creation) order
  for (const auto& [id, node] : nodes) {
    int depth = depth_of(id);
    max_depth_by_cat[node.cat] = std::max(max_depth_by_cat[node.cat], depth);
    if (node.cat == "pipeline") {
      ++pipelines;
      EXPECT_EQ(depth, 0);
    }
    if (node.cat == "stage") {
      EXPECT_EQ(depth, 1);
      EXPECT_EQ(nodes.at(node.parent).cat, "pipeline");
      stage_names.push_back(node.name);
    }
    if (node.cat == "operation" && nodes.at(node.parent).cat == "stage") {
      EXPECT_EQ(depth, 2);
    }
    if (node.cat == "task") {
      EXPECT_EQ(nodes.at(node.parent).cat, "operation");
    }
  }
  EXPECT_EQ(pipelines, 1);
  // Stage spans appear in pipeline order.
  ASSERT_EQ(stage_names.size(), 3u);
  EXPECT_EQ(stage_names[0], "selection");
  EXPECT_EQ(stage_names[1], "conversion");
  EXPECT_EQ(stage_names[2], "extraction");
  // >= 3 nested levels: a task under an operation under a stage.
  EXPECT_GE(max_depth_by_cat["task"], 3);
}

TEST(CounterRegistryTest, PerOperatorShuffleSlotsPartitionTheTotals) {
  auto pairs = RandomPairs(20000, 41);
  for (size_t parts : {size_t{1}, size_t{3}, size_t{8}, size_t{64}}) {
    for (int workers : {1, 2, 8}) {
      auto ctx = ExecutionContext::Create(workers);
      auto data = Dataset<std::pair<int64_t, int64_t>>::Parallelize(
          ctx, pairs, parts);
      auto reduced =
          TryReduceByKey<int64_t, int64_t>(data, std::plus<int64_t>());
      ASSERT_TRUE(reduced.ok());
      auto grouped = TryGroupByKey<int64_t, int64_t>(data);
      ASSERT_TRUE(grouped.ok());
      data.Repartition(parts * 2);
      MetricsSnapshot snap = ctx->MetricsSnapshot();

      uint64_t per_op_records = snap[Counter::kShuffleRecordsReduceByKey] +
                                snap[Counter::kShuffleRecordsGroupByKey] +
                                snap[Counter::kShuffleRecordsRepartition] +
                                snap[Counter::kShuffleRecordsStPartition];
      uint64_t per_op_bytes = snap[Counter::kShuffleBytesReduceByKey] +
                              snap[Counter::kShuffleBytesGroupByKey] +
                              snap[Counter::kShuffleBytesRepartition] +
                              snap[Counter::kShuffleBytesStPartition];
      EXPECT_EQ(snap.shuffle_records(), per_op_records)
          << "workers=" << workers << " parts=" << parts;
      EXPECT_EQ(snap.shuffle_bytes(), per_op_bytes);
      // GroupByKey and Repartition each move every record.
      EXPECT_EQ(snap[Counter::kShuffleRecordsGroupByKey], pairs.size());
      EXPECT_EQ(snap[Counter::kShuffleRecordsRepartition], pairs.size());
      EXPECT_GT(snap[Counter::kShuffleRecordsReduceByKey], 0u);
      EXPECT_GT(snap[Counter::kParallelJobs], 0u);
      EXPECT_GT(snap[Counter::kChunkClaims], 0u);
    }
  }
}

TEST(CounterRegistryTest, TracingChangesNoCounter) {
  // The zero-cost-when-off contract's observable half: a traced run and an
  // untraced run of the same workload produce IDENTICAL snapshots.
  auto untraced = ExecutionContext::Create(4);
  RunStagedWorkload(untraced);

  auto traced = ExecutionContext::Create(4);
  traced->set_tracer(std::make_shared<Tracer>());
  RunStagedWorkload(traced);

  EXPECT_TRUE(untraced->MetricsSnapshot() == traced->MetricsSnapshot());
  // And the no-op side recorded no spans anywhere (nullptr tracer).
  EXPECT_EQ(untraced->tracer(), nullptr);
}

TEST(TraceExportTest, MetricsJsonMatchesSnapshotExactly) {
  auto ctx = ExecutionContext::Create(4);
  RunStagedWorkload(ctx);
  MetricsSnapshot snap = ctx->MetricsSnapshot();

  std::string path = TempPath("st4ml_observability_metrics.json");
  ASSERT_TRUE(WriteMetricsJson(snap, path).ok());
  JsonValue root;
  ASSERT_TRUE(JsonReader(ReadFile(path)).Parse(&root)) << "invalid JSON";
  fs::remove(path);

  ASSERT_EQ(root.kind, JsonValue::kObject);
  ASSERT_EQ(root.object.size(), kNumCounters);
  for (size_t i = 0; i < kNumCounters; ++i) {
    Counter c = static_cast<Counter>(i);
    const JsonValue* value = root.Find(CounterName(c));
    ASSERT_NE(value, nullptr) << CounterName(c);
    ASSERT_EQ(value->kind, JsonValue::kNumber);
    EXPECT_EQ(static_cast<uint64_t>(value->number), snap[c])
        << CounterName(c);
  }
}

TEST(TracerTest, ResetMetricsZeroesEverySlot) {
  auto ctx = ExecutionContext::Create(2);
  RunStagedWorkload(ctx);
  ASSERT_GT(ctx->MetricsSnapshot().shuffle_records(), 0u);
  ctx->ResetMetrics();
  MetricsSnapshot zero;
  EXPECT_TRUE(ctx->MetricsSnapshot() == zero);
}

TEST(TracerTest, ScopedSpanIsInertOnNullTracer) {
  ScopedSpan span(nullptr, span_category::kOperation, "noop");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.id(), 0u);
  span.AddArg("ignored", 1);  // must not crash
}

}  // namespace
}  // namespace st4ml
