#include "geometry/geometry.h"

#include <gtest/gtest.h>

#include "geometry/linestring.h"
#include "geometry/mbr.h"
#include "geometry/point.h"
#include "geometry/polygon.h"

namespace st4ml {
namespace {

TEST(MbrTest, InclusivePredicates) {
  Mbr box(0, 0, 10, 10);
  EXPECT_TRUE(box.ContainsPoint(Point(0, 0)));
  EXPECT_TRUE(box.ContainsPoint(Point(10, 10)));
  EXPECT_FALSE(box.ContainsPoint(Point(10.001, 5)));
  EXPECT_TRUE(box.Intersects(Mbr(10, 10, 20, 20)));  // edge touch counts
  EXPECT_FALSE(box.Intersects(Mbr(11, 11, 20, 20)));
}

TEST(MbrTest, EmptyAndExtend) {
  Mbr box;
  EXPECT_TRUE(box.IsEmpty());
  box.Extend(Point(3, 4));
  EXPECT_FALSE(box.IsEmpty());
  box.Extend(Point(-1, 7));
  EXPECT_EQ(box.x_min, -1);
  EXPECT_EQ(box.y_max, 7);
  Mbr buffered = box.Buffered(0.5);
  EXPECT_EQ(buffered.x_min, -1.5);
  EXPECT_EQ(buffered.y_max, 7.5);
}

TEST(PointTest, Distances) {
  EXPECT_DOUBLE_EQ(EuclideanDistance(Point(0, 0), Point(3, 4)), 5.0);
  // One degree of latitude is ~111 km.
  double meters = HaversineMeters(Point(0, 0), Point(0, 1));
  EXPECT_NEAR(meters, 111195.0, 500.0);
}

TEST(PointTest, SegmentsIntersect) {
  EXPECT_TRUE(SegmentsIntersect(Point(0, 0), Point(2, 2),
                                Point(0, 2), Point(2, 0)));
  EXPECT_FALSE(SegmentsIntersect(Point(0, 0), Point(1, 0),
                                 Point(0, 1), Point(1, 1)));
}

TEST(LineStringTest, IntersectsMbr) {
  // A segment that crosses the box without any vertex inside.
  LineString crossing({Point(-1, 5), Point(11, 5)});
  EXPECT_TRUE(crossing.IntersectsMbr(Mbr(0, 0, 10, 10)));
  LineString outside({Point(-5, -5), Point(-1, -1)});
  EXPECT_FALSE(outside.IntersectsMbr(Mbr(0, 0, 10, 10)));
}

TEST(PolygonTest, ContainsPointMatchesMbrOnRectangles) {
  // FromMbr rectangles must agree with Mbr::ContainsPoint everywhere,
  // boundary included — the irregular-cell and grid-cell code paths rely on
  // this to produce identical assignments.
  Mbr box(1, 2, 5, 6);
  Polygon rect = Polygon::FromMbr(box);
  Point probes[] = {Point(1, 2), Point(5, 6),   Point(3, 4), Point(1, 6),
                    Point(0.9, 4), Point(5.1, 4), Point(3, 1.9)};
  for (const Point& p : probes) {
    EXPECT_EQ(rect.ContainsPoint(p), box.ContainsPoint(p))
        << "(" << p.x << ", " << p.y << ")";
  }
}

TEST(PolygonTest, IntersectsLineString) {
  Polygon rect = Polygon::FromMbr(Mbr(0, 0, 10, 10));
  EXPECT_TRUE(rect.IntersectsLineString(LineString({Point(5, 5), Point(6, 6)})));
  EXPECT_TRUE(
      rect.IntersectsLineString(LineString({Point(-1, 5), Point(11, 5)})));
  EXPECT_FALSE(
      rect.IntersectsLineString(LineString({Point(20, 20), Point(30, 30)})));
}

TEST(GeometryTest, MbrOfEachShape) {
  EXPECT_EQ(Geometry(Point(2, 3)).ComputeMbr().x_min, 2);
  Geometry line(LineString({Point(0, 1), Point(4, -1)}));
  Mbr box = line.ComputeMbr();
  EXPECT_EQ(box.x_max, 4);
  EXPECT_EQ(box.y_min, -1);
}

TEST(GeometryTest, WktRoundTrip) {
  Geometry point(Point(1.5, -2.25));
  Geometry line(LineString({Point(0, 0), Point(1, 1), Point(2, 0)}));
  Geometry polygon(Polygon::FromMbr(Mbr(0, 0, 3, 3)));
  for (const Geometry& g : {point, line, polygon}) {
    std::string wkt = ToWkt(g);
    Geometry parsed;
    ASSERT_TRUE(FromWkt(wkt, &parsed).ok()) << wkt;
    EXPECT_EQ(ToWkt(parsed), wkt);
  }
}

TEST(GeometryTest, FromWktRejectsGarbage) {
  Geometry parsed;
  EXPECT_FALSE(FromWkt("CIRCLE (1 2)", &parsed).ok());
}

}  // namespace
}  // namespace st4ml
