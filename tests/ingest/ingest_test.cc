// Crash-safe streaming ingestion (DESIGN.md §13): WAL framing round trips,
// torn tails, injected faults at wal/append, wal/seal and ingest/compact,
// reopen-and-replay exactly the acked records, exactly-once across the
// compaction boundary, and the merged SelectIngest view mid-stream.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "engine/execution_context.h"
#include "ingest/ingestor.h"
#include "ingest/wal.h"
#include "selection/selector.h"
#include "storage/records.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

class IngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("st4ml_ingest_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    GlobalFaultInjector().Reset();
  }

  void TearDown() override {
    GlobalFaultInjector().Reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_;
};

EventRecord MakeEvent(int64_t id, int64_t time, const std::string& attr = "") {
  EventRecord r;
  r.id = id;
  r.x = static_cast<double>(id) * 0.5;
  r.y = static_cast<double>(id) * -0.25;
  r.time = time;
  r.attr = attr;
  return r;
}

// Everything ever ingested, via the merged staged+compacted read path.
std::vector<EventRecord> SelectAll(const std::string& dir) {
  auto ctx = ExecutionContext::Create(2);
  SelectQuery query = SelectQuery::FromBox(
      STBox(Mbr(-1e9, -1e9, 1e9, 1e9), Duration(-1000000000, 1000000000)));
  Selector<EventRecord> selector(ctx, query);
  auto selected = selector.SelectIngest(dir);
  ST4ML_CHECK(selected.ok()) << selected.status().ToString();
  return selected->Collect();
}

std::multiset<int64_t> Ids(const std::vector<EventRecord>& records) {
  std::multiset<int64_t> ids;
  for (const EventRecord& r : records) ids.insert(r.id);
  return ids;
}

// ---------------------------------------------------------------- WAL layer

TEST_F(IngestTest, WalRoundTripSealedStrict) {
  std::string path = dir_ + "/s00000000-b0.stwal";
  auto writer = WalWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  std::vector<EventRecord> in = {
      MakeEvent(1, 10, ""), MakeEvent(2, 20, "attr=a"),
      MakeEvent(3, 30, std::string(500, 'x')),
      MakeEvent(-4, -30, "quotes\"and,commas")};
  for (const EventRecord& r : in) {
    ASSERT_TRUE(writer->Append(r).ok());
  }
  ASSERT_TRUE(fs::exists(path + ".open"));
  ASSERT_FALSE(fs::exists(path));
  ASSERT_TRUE(writer->Seal().ok());
  ASSERT_TRUE(fs::exists(path));
  ASSERT_FALSE(fs::exists(path + ".open"));

  auto read = ReadWalSegment(path, /*strict=*/true);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_FALSE(read->torn_tail);
  EXPECT_EQ(read->good_bytes, fs::file_size(path));
  ASSERT_EQ(read->records.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(read->records[i].id, in[i].id);
    EXPECT_EQ(read->records[i].x, in[i].x);
    EXPECT_EQ(read->records[i].y, in[i].y);
    EXPECT_EQ(read->records[i].time, in[i].time);
    EXPECT_EQ(read->records[i].attr, in[i].attr);
  }
}

TEST_F(IngestTest, WalTornTailTolerantVsStrict) {
  std::string path = dir_ + "/s00000000-b0.stwal";
  auto writer = WalWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(writer->Append(MakeEvent(i, i)).ok());
  writer->Abandon();  // crash: no fsync, no rename — segment stays .open

  std::string open_path = path + ".open";
  uint64_t full = fs::file_size(open_path);
  fs::resize_file(open_path, full - 5);  // tear the last frame

  auto tolerant = ReadWalSegment(open_path, /*strict=*/false);
  ASSERT_TRUE(tolerant.ok()) << tolerant.status().ToString();
  EXPECT_TRUE(tolerant->torn_tail);
  ASSERT_EQ(tolerant->records.size(), 2u);
  EXPECT_EQ(tolerant->records[0].id, 0);
  EXPECT_EQ(tolerant->records[1].id, 1);
  EXPECT_LT(tolerant->good_bytes, full - 5);

  auto strict = ReadWalSegment(open_path, /*strict=*/true);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), Status::Code::kCorruption);
}

TEST_F(IngestTest, WalCrcFlipIsCorruptionWhenSealed) {
  std::string path = dir_ + "/s00000000-b0.stwal";
  auto writer = WalWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(writer->Append(MakeEvent(i, i)).ok());
  ASSERT_TRUE(writer->Seal().ok());

  // Flip one payload byte of the SECOND frame.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    auto size = static_cast<int64_t>(f.tellg());
    f.seekp(size - 3);
    char c;
    f.seekg(size - 3);
    f.read(&c, 1);
    c ^= 0x5A;
    f.seekp(size - 3);
    f.write(&c, 1);
  }
  auto strict = ReadWalSegment(path, /*strict=*/true);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), Status::Code::kCorruption);

  auto tolerant = ReadWalSegment(path, /*strict=*/false);
  ASSERT_TRUE(tolerant.ok());
  EXPECT_TRUE(tolerant->torn_tail);
  EXPECT_EQ(tolerant->records.size(), 1u);
}

TEST_F(IngestTest, WalImplausibleLengthWordIsTornNotHugeAlloc) {
  std::string path = dir_ + "/s00000000-b0.stwal";
  auto writer = WalWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(MakeEvent(7, 7)).ok());
  writer->Abandon();
  // Append a garbage frame whose length word claims 4 GB.
  {
    std::ofstream f(path + ".open", std::ios::app | std::ios::binary);
    uint32_t huge = 0xFFFFFFF0u;
    f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
    f.write("garbage", 7);
  }
  auto tolerant = ReadWalSegment(path + ".open", /*strict=*/false);
  ASSERT_TRUE(tolerant.ok());
  EXPECT_TRUE(tolerant->torn_tail);
  EXPECT_EQ(tolerant->records.size(), 1u);
}

// ------------------------------------------------------- crash and recovery

IngestorOptions ScriptedOptions() {
  IngestorOptions options;
  options.bucket_seconds = 100;
  options.seal_records = 4;
  options.start_compactor = false;  // tests drive CompactNow themselves
  return options;
}

TEST_F(IngestTest, CrashBeforeFlushReplaysExactlyAckedRecords) {
  {
    auto ingestor = Ingestor::Open(dir_, ScriptedOptions());
    ASSERT_TRUE(ingestor.ok()) << ingestor.status().ToString();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*ingestor)->Append(MakeEvent(i, i * 37)).ok());
    }
    // Destructor drops writers without sealing — the crash.
  }
  auto ctx = ExecutionContext::Create(2);
  auto reopened = Ingestor::Open(dir_, ScriptedOptions(), ctx.get());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->Stats().replayed, 10u);
  EXPECT_EQ((*reopened)->Stats().staged, 10u);
  EXPECT_EQ(ctx->MetricsSnapshot()[Counter::kWalReplayedRecords], 10u);

  std::multiset<int64_t> expected;
  for (int i = 0; i < 10; ++i) expected.insert(i);
  EXPECT_EQ(Ids(SelectAll(dir_)), expected);
}

TEST_F(IngestTest, ReplayIsIdempotentAcrossRepeatedCrashes) {
  {
    auto ingestor = Ingestor::Open(dir_, ScriptedOptions());
    ASSERT_TRUE(ingestor.ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE((*ingestor)->Append(MakeEvent(i, i)).ok());
    }
  }
  for (int round = 0; round < 3; ++round) {
    auto reopened = Ingestor::Open(dir_, ScriptedOptions());
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ((*reopened)->Stats().staged, 6u) << "round " << round;
    // Crash again without flushing: replay must not duplicate or lose.
  }
  EXPECT_EQ(SelectAll(dir_).size(), 6u);
}

TEST_F(IngestTest, FaultedAppendIsNeverAckedAndNeverReplayed) {
  {
    auto ingestor = Ingestor::Open(dir_, ScriptedOptions());
    ASSERT_TRUE(ingestor.ok());
    ASSERT_TRUE((*ingestor)->Append(MakeEvent(1, 10)).ok());
    GlobalFaultInjector().FailNext(fault_site::kWalAppend, 1);
    Status failed = (*ingestor)->Append(MakeEvent(2, 20));
    ASSERT_FALSE(failed.ok());  // never acked
    ASSERT_TRUE((*ingestor)->Append(MakeEvent(3, 30)).ok());
  }
  auto reopened = Ingestor::Open(dir_, ScriptedOptions());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Stats().replayed, 2u);
  std::multiset<int64_t> expected = {1, 3};
  EXPECT_EQ(Ids(SelectAll(dir_)), expected);
}

TEST_F(IngestTest, SealFaultLeavesSegmentOpenAndFlushRetrySucceeds) {
  auto ingestor = Ingestor::Open(dir_, ScriptedOptions());
  ASSERT_TRUE(ingestor.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*ingestor)->Append(MakeEvent(i, i)).ok());
  }
  GlobalFaultInjector().FailNext(fault_site::kWalSeal, 1);
  Status flushed = (*ingestor)->Flush();
  ASSERT_FALSE(flushed.ok());  // the seal failed; records stay staged
  EXPECT_EQ((*ingestor)->Stats().staged, 3u);
  EXPECT_EQ(Ids(SelectAll(dir_)).size(), 3u);  // still served from the WAL

  ASSERT_TRUE((*ingestor)->Flush().ok());  // retry with the fault disarmed
  IngestorStats stats = (*ingestor)->Stats();
  EXPECT_EQ(stats.staged, 0u);
  EXPECT_EQ(stats.compacted, 3u);
  EXPECT_EQ(Ids(SelectAll(dir_)).size(), 3u);
}

TEST_F(IngestTest, CompactFaultRetriesWithoutLossOrDuplication) {
  auto ctx = ExecutionContext::Create(2);
  auto ingestor = Ingestor::Open(dir_, ScriptedOptions(), ctx.get());
  ASSERT_TRUE(ingestor.ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*ingestor)->Append(MakeEvent(i, i * 50)).ok());
  }
  GlobalFaultInjector().FailNext(fault_site::kIngestCompact, 1);
  ASSERT_FALSE((*ingestor)->Flush().ok());
  EXPECT_EQ((*ingestor)->Stats().compacted, 0u);
  EXPECT_EQ(SelectAll(dir_).size(), 8u);  // all still staged, all visible

  ASSERT_TRUE((*ingestor)->Flush().ok());
  IngestorStats stats = (*ingestor)->Stats();
  EXPECT_EQ(stats.compacted, 8u);
  EXPECT_EQ(stats.staged, 0u);
  EXPECT_GE(ctx->MetricsSnapshot()[Counter::kCompactionsRun], 1u);

  std::multiset<int64_t> expected;
  for (int i = 0; i < 8; ++i) expected.insert(i);
  EXPECT_EQ(Ids(SelectAll(dir_)), expected);
}

// --------------------------------------------- exactly-once merged serving

TEST_F(IngestTest, ExactlyOnceAcrossCompactionBoundary) {
  auto ingestor = Ingestor::Open(dir_, ScriptedOptions());
  ASSERT_TRUE(ingestor.ok());
  // 18 records over 5 buckets at seal_records=4: three buckets seal, two
  // keep an open writer — so the compaction below leaves a staged tail.
  std::multiset<int64_t> expected;
  for (int i = 0; i < 18; ++i) {
    ASSERT_TRUE((*ingestor)->Append(MakeEvent(i, (i % 5) * 100)).ok());
    expected.insert(i);
  }
  // Compact the sealed prefix; the unsealed tail stays staged.
  ASSERT_TRUE((*ingestor)->CompactNow().ok());
  IngestorStats stats = (*ingestor)->Stats();
  EXPECT_GT(stats.compacted, 0u);
  EXPECT_GT(stats.staged, 0u);  // mixed regime: both sources live
  EXPECT_EQ(stats.compacted + stats.staged, 18u);
  EXPECT_EQ(Ids(SelectAll(dir_)), expected);

  // More appends after the compaction, then another partial cycle.
  for (int i = 18; i < 30; ++i) {
    ASSERT_TRUE((*ingestor)->Append(MakeEvent(i, (i % 5) * 100)).ok());
    expected.insert(i);
  }
  ASSERT_TRUE((*ingestor)->CompactNow().ok());
  EXPECT_EQ(Ids(SelectAll(dir_)), expected);

  ASSERT_TRUE((*ingestor)->Flush().ok());
  EXPECT_EQ((*ingestor)->Stats().staged, 0u);
  EXPECT_EQ(Ids(SelectAll(dir_)), expected);
}

TEST_F(IngestTest, WalSegmentsScannedCounterCountsStagedServes) {
  auto ingestor = Ingestor::Open(dir_, ScriptedOptions());
  ASSERT_TRUE(ingestor.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*ingestor)->Append(MakeEvent(i, i)).ok());
  }
  auto ctx = ExecutionContext::Create(2);
  Selector<EventRecord> selector(
      ctx, SelectQuery::FromBox(
               STBox(Mbr(-1e9, -1e9, 1e9, 1e9), Duration(-1000, 1000))));
  auto selected = selector.SelectIngest(dir_);
  ASSERT_TRUE(selected.ok()) << selected.status().ToString();
  EXPECT_EQ(selected->Collect().size(), 3u);
  EXPECT_GE(ctx->MetricsSnapshot()[Counter::kWalSegmentsScanned], 1u);

  ASSERT_TRUE((*ingestor)->Flush().ok());
  auto ctx2 = ExecutionContext::Create(2);
  Selector<EventRecord> after(
      ctx2, SelectQuery::FromBox(
                STBox(Mbr(-1e9, -1e9, 1e9, 1e9), Duration(-1000, 1000))));
  auto compacted = after.SelectIngest(dir_);
  ASSERT_TRUE(compacted.ok());
  EXPECT_EQ(compacted->Collect().size(), 3u);
  // Everything is compacted now; no WAL segment should be scanned.
  EXPECT_EQ(ctx2->MetricsSnapshot()[Counter::kWalSegmentsScanned], 0u);
}

TEST_F(IngestTest, EmptyIngestDirectorySelectsEmpty) {
  auto ingestor = Ingestor::Open(dir_, ScriptedOptions());
  ASSERT_TRUE(ingestor.ok());
  EXPECT_EQ(SelectAll(dir_).size(), 0u);
}

TEST_F(IngestTest, ConsumedSegmentsAreDeletedOneCycleLater) {
  auto ingestor = Ingestor::Open(dir_, ScriptedOptions());
  ASSERT_TRUE(ingestor.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*ingestor)->Append(MakeEvent(i, 0)).ok());
  }
  ASSERT_TRUE((*ingestor)->Flush().ok());  // cycle 1: consumed, kept on disk
  size_t after_first = ListWalSegments(dir_ + "/wal").size();
  EXPECT_GE(after_first, 1u);  // grace window for cross-process readers

  for (int i = 4; i < 8; ++i) {
    ASSERT_TRUE((*ingestor)->Append(MakeEvent(i, 0)).ok());
  }
  ASSERT_TRUE((*ingestor)->Flush().ok());  // cycle 2 deletes cycle 1's files
  for (const std::string& segment : ListWalSegments(dir_ + "/wal")) {
    auto read = ReadWalSegment(segment, /*strict=*/false);
    ASSERT_TRUE(read.ok());
    for (const EventRecord& r : read->records) {
      EXPECT_GE(r.id, 4) << "cycle-1 segment survived two cycles: " << segment;
    }
  }
  EXPECT_EQ(SelectAll(dir_).size(), 8u);
}

TEST_F(IngestTest, MaxOpenBucketsCapsWriterFds) {
  IngestorOptions options = ScriptedOptions();
  options.max_open_buckets = 4;
  options.seal_records = 1000;  // only the cap can seal
  auto ingestor = Ingestor::Open(dir_, options);
  ASSERT_TRUE(ingestor.ok());
  // 12 distinct buckets, far over the cap of 4 concurrently open writers.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE((*ingestor)->Append(MakeEvent(i, i * 1000)).ok());
  }
  size_t sealed = 0;
  for (const std::string& segment : ListWalSegments(dir_ + "/wal")) {
    if (segment.size() > 6 &&
        segment.compare(segment.size() - 6, 6, ".stwal") == 0) {
      ++sealed;
    }
  }
  EXPECT_GE(sealed, 8u);  // every writer past the cap was sealed on rotation
  EXPECT_EQ(SelectAll(dir_).size(), 12u);
  ASSERT_TRUE((*ingestor)->Flush().ok());
  EXPECT_EQ(SelectAll(dir_).size(), 12u);
}

// REVIEW regression: after a flush left EVERY on-disk segment consumed, a
// reopened ingestor must not mint a sequence number whose name is still in
// the manifest's consumed set — a reused name is invisible to reads and the
// next recovery deletes it, permanently losing acked records.
TEST_F(IngestTest, ReopenAfterFullCompactionDoesNotReuseConsumedNames) {
  std::multiset<int64_t> expected;
  {
    auto ingestor = Ingestor::Open(dir_, ScriptedOptions());
    ASSERT_TRUE(ingestor.ok()) << ingestor.status().ToString();
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*ingestor)->Append(MakeEvent(i, 0)).ok());
      expected.insert(i);
    }
    ASSERT_TRUE((*ingestor)->Flush().ok());
    // Consumed files sit in the grace window; the manifest carries their
    // names into the next process.
  }
  {
    auto reopened = Ingestor::Open(dir_, ScriptedOptions());
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ((*reopened)->Stats().replayed, 0u);
    ASSERT_TRUE((*reopened)->Append(MakeEvent(100, 0)).ok());
    expected.insert(100);
    // The fresh segment must be visible mid-stream despite the consumed
    // set still naming the same bucket's earlier segments.
    EXPECT_EQ(Ids(SelectAll(dir_)), expected);
    // Crash without flushing.
  }
  auto again = Ingestor::Open(dir_, ScriptedOptions());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->Stats().replayed, 1u);  // record 100 survives recovery
  EXPECT_EQ(Ids(SelectAll(dir_)), expected);
}

// REVIEW regression: a parked `.open` straggler (fsync succeeded, seal
// rename failed) is recorded in the consumed set under its SEALED name, so
// the grace-window read and the next recovery both treat it as consumed —
// exactly once, not replayed.
TEST_F(IngestTest, ParkedOpenSegmentIsConsumedExactlyOnce) {
  std::string sealed_path = dir_ + "/wal/s00000000-b0.stwal";
  std::multiset<int64_t> expected = {1};
  {
    auto ingestor = Ingestor::Open(dir_, ScriptedOptions());
    ASSERT_TRUE(ingestor.ok());
    ASSERT_TRUE((*ingestor)->Append(MakeEvent(1, 0)).ok());
    // A directory squatting on the sealed name makes the seal's rename
    // fail AFTER its fsync+close: the segment is parked `.open` and the
    // flush's compaction consumes it tolerantly.
    fs::create_directories(sealed_path);
    ASSERT_TRUE((*ingestor)->Flush().ok());
    fs::remove_all(sealed_path);
    IngestorStats stats = (*ingestor)->Stats();
    EXPECT_EQ(stats.compacted, 1u);
    EXPECT_EQ(stats.staged, 0u);
    // Grace window: the `.open` file is still on disk but consumed — a
    // merged read must not double-count it.
    ASSERT_TRUE(fs::exists(sealed_path + ".open"));
    EXPECT_EQ(Ids(SelectAll(dir_)), expected);
    // Crash before the deferred delete.
  }
  auto reopened = Ingestor::Open(dir_, ScriptedOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->Stats().replayed, 0u);  // consumed, not replayed
  EXPECT_FALSE(fs::exists(sealed_path + ".open"));
  EXPECT_EQ(Ids(SelectAll(dir_)), expected);
}

// REVIEW regression: a batch failing on its SECOND bucket must roll the
// first bucket's frames back — nothing staged, so the advertised
// retry-the-whole-batch contract cannot duplicate records.
TEST_F(IngestTest, AppendBatchPartialFailureStagesNothing) {
  std::multiset<int64_t> expected = {1};
  std::string blocked = dir_ + "/wal/s00000001-b5.stwal.open";
  {
    auto ingestor = Ingestor::Open(dir_, ScriptedOptions());
    ASSERT_TRUE(ingestor.ok());
    ASSERT_TRUE((*ingestor)->Append(MakeEvent(1, 0)).ok());  // bucket 0
    // Squat on the name the batch's SECOND bucket (time 500 → bucket 5,
    // seq 1) would create: bucket 0's frames write first, then bucket 5's
    // writer creation fails.
    fs::create_directories(blocked);
    std::vector<EventRecord> batch = {MakeEvent(2, 0), MakeEvent(3, 500)};
    ASSERT_FALSE((*ingestor)->AppendBatch(batch).ok());
    EXPECT_EQ((*ingestor)->Stats().staged, 1u);  // only the pre-batch record
    EXPECT_EQ(Ids(SelectAll(dir_)), expected);

    fs::remove_all(blocked);
    ASSERT_TRUE((*ingestor)->AppendBatch(batch).ok());  // whole-batch retry
    expected = {1, 2, 3};
    EXPECT_EQ((*ingestor)->Stats().staged, 3u);
    EXPECT_EQ(Ids(SelectAll(dir_)), expected);
    // Crash without flushing.
  }
  auto reopened = Ingestor::Open(dir_, ScriptedOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->Stats().replayed, 3u);
  // Flush strict-parses the re-sealed segments: the rolled-back-then-
  // rewritten bucket must frame cleanly end to end.
  ASSERT_TRUE((*reopened)->Flush().ok());
  EXPECT_EQ(Ids(SelectAll(dir_)), expected);
}

// REVIEW regression: a crash between creating a segment and flushing its
// header leaves a 0-byte or short-headered `.open` file; recovery must
// clean it up (nothing in it was ever acked) instead of refusing to open
// the directory — while still reserving its sequence number.
TEST_F(IngestTest, HeaderlessOpenSegmentIsCleanedUpNotFatal) {
  // Direct reader contract first, on a scratch file outside the wal dir.
  std::string scratch = dir_ + "/zero.stwal";
  { std::ofstream f(scratch, std::ios::binary); }
  auto strict = ReadWalSegment(scratch, /*strict=*/true);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), Status::Code::kCorruption);
  auto tolerant = ReadWalSegment(scratch, /*strict=*/false);
  ASSERT_TRUE(tolerant.ok()) << tolerant.status().ToString();
  EXPECT_TRUE(tolerant->torn_tail);
  EXPECT_EQ(tolerant->good_bytes, 0u);
  EXPECT_TRUE(tolerant->records.empty());

  {
    auto ingestor = Ingestor::Open(dir_, ScriptedOptions());
    ASSERT_TRUE(ingestor.ok());
    ASSERT_TRUE((*ingestor)->Append(MakeEvent(1, 0)).ok());
  }
  { std::ofstream f(dir_ + "/wal/s00000007-b0.stwal.open"); }  // 0 bytes
  {
    std::ofstream f(dir_ + "/wal/s00000008-b0.stwal.open", std::ios::binary);
    f.write("STW", 3);  // torn mid-header
  }
  auto reopened = Ingestor::Open(dir_, ScriptedOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->Stats().replayed, 1u);
  EXPECT_EQ(Ids(SelectAll(dir_)), std::multiset<int64_t>{1});
  // The headerless debris is gone...
  EXPECT_EQ(ListWalSegments(dir_ + "/wal").size(), 1u);
  // ...but its sequence numbers stay reserved: the next new segment mints
  // seq 9, not a recycled 7 or 8.
  ASSERT_TRUE((*reopened)->Append(MakeEvent(2, 500)).ok());
  bool minted_past_debris = false;
  for (const std::string& segment : ListWalSegments(dir_ + "/wal")) {
    if (segment.find("s00000009") != std::string::npos) {
      minted_past_debris = true;
    }
  }
  EXPECT_TRUE(minted_past_debris);
}

TEST_F(IngestTest, RecoveryTruncatesTornTailAndReseals) {
  {
    auto ingestor = Ingestor::Open(dir_, ScriptedOptions());
    ASSERT_TRUE(ingestor.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*ingestor)->Append(MakeEvent(i, 0)).ok());
    }
  }
  // Tear the active segment's last frame, as a crash mid-write would.
  std::vector<std::string> segments = ListWalSegments(dir_ + "/wal");
  ASSERT_EQ(segments.size(), 1u);
  ASSERT_NE(segments[0].find(".open"), std::string::npos);
  fs::resize_file(segments[0], fs::file_size(segments[0]) - 3);

  auto reopened = Ingestor::Open(dir_, ScriptedOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->Stats().replayed, 2u);  // the torn record dropped
  // The re-sealed segment must now parse STRICTLY end to end.
  segments = ListWalSegments(dir_ + "/wal");
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].find(".open"), std::string::npos);
  auto strict = ReadWalSegment(segments[0], /*strict=*/true);
  ASSERT_TRUE(strict.ok()) << strict.status().ToString();
  EXPECT_EQ(strict->records.size(), 2u);
  EXPECT_EQ(Ids(SelectAll(dir_)).size(), 2u);
}

}  // namespace
}  // namespace st4ml
