// Differential property: a SelectIngest over a streamed directory — records
// appended one by one, an arbitrary prefix compacted, the tail still staged
// in the WAL — must be byte-identical (as an unordered multiset of records)
// to a batch BuildOnDiskIndex + Select over the same events. 20 seeds vary
// the record count, bucket width, seal threshold, and how much of the
// stream is compacted (including none and all).

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/property.h"
#include "ingest/ingestor.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

// Canonical unordered serialization: sort by every field, then concatenate
// the byte-exact record encodings. Two record sets agree iff these match.
std::string CanonicalBytes(std::vector<EventRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const EventRecord& a, const EventRecord& b) {
              if (a.id != b.id) return a.id < b.id;
              if (a.time != b.time) return a.time < b.time;
              if (a.x != b.x) return a.x < b.x;
              if (a.y != b.y) return a.y < b.y;
              return a.attr < b.attr;
            });
  std::string bytes;
  for (const EventRecord& r : records) {
    testing::AppendRecordBytes(&bytes, r);
  }
  return bytes;
}

std::vector<EventRecord> SelectAllBatch(const std::string& dir,
                                        const std::string& meta) {
  auto ctx = ExecutionContext::Create(2);
  Selector<EventRecord> selector(
      ctx, SelectQuery::FromBox(
               STBox(Mbr(-1000, -1000, 1000, 1000), Duration(-1, 200000))));
  auto selected = selector.Select(dir, meta);
  ST4ML_CHECK(selected.ok()) << selected.status().ToString();
  return selected->Collect();
}

std::vector<EventRecord> SelectAllStreamed(const std::string& dir) {
  auto ctx = ExecutionContext::Create(2);
  Selector<EventRecord> selector(
      ctx, SelectQuery::FromBox(
               STBox(Mbr(-1000, -1000, 1000, 1000), Duration(-1, 200000))));
  auto selected = selector.SelectIngest(dir);
  ST4ML_CHECK(selected.ok()) << selected.status().ToString();
  return selected->Collect();
}

TEST(IngestPropertyTest, StreamedSelectMatchesBatchIngestAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 104729 + 17);
    int n = static_cast<int>(rng.UniformInt(1, 400));
    std::vector<EventRecord> events = testing::RandomWorkloadEvents(n, seed);

    std::string base = (fs::temp_directory_path() /
                        ("st4ml_ingest_prop_" + std::to_string(seed) + "_" +
                         std::to_string(::getpid())))
                           .string();
    std::string batch_dir = base + "/batch";
    std::string stream_dir = base + "/stream";
    fs::remove_all(base);
    fs::create_directories(batch_dir);

    // Reference: the batch pipeline every earlier PR pinned.
    {
      auto ctx = ExecutionContext::Create(2);
      auto data = Dataset<EventRecord>::Parallelize(ctx, events, 4);
      TSTRPartitioner partitioner(2, 2);
      Status built = BuildOnDiskIndex(data, &partitioner, batch_dir,
                                      batch_dir + "/index.meta");
      ASSERT_TRUE(built.ok()) << "seed " << seed << ": " << built.ToString();
    }
    std::string expected =
        CanonicalBytes(SelectAllBatch(batch_dir, batch_dir + "/index.meta"));

    // Streamed: append one by one, compact an arbitrary prefix, leave the
    // tail staged. The merged view must already match, mid-stream.
    IngestorOptions options;
    options.bucket_seconds = rng.UniformInt(50, 40000);
    options.seal_records = static_cast<uint64_t>(rng.UniformInt(1, 64));
    options.start_compactor = false;
    auto ingestor = Ingestor::Open(stream_dir, options);
    ASSERT_TRUE(ingestor.ok()) << ingestor.status().ToString();

    size_t compact_at = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(events.size())));
    for (size_t i = 0; i < events.size(); ++i) {
      ASSERT_TRUE((*ingestor)->Append(events[i]).ok()) << "seed " << seed;
      if (i + 1 == compact_at) {
        ASSERT_TRUE((*ingestor)->CompactNow().ok()) << "seed " << seed;
      }
    }
    EXPECT_EQ(CanonicalBytes(SelectAllStreamed(stream_dir)), expected)
        << "seed " << seed << ": merged staged+compacted view diverged "
        << "from batch ingest (compacted prefix " << compact_at << " of "
        << events.size() << ")";

    // After a full flush the all-compacted view must STILL match.
    ASSERT_TRUE((*ingestor)->Flush().ok()) << "seed " << seed;
    EXPECT_EQ(CanonicalBytes(SelectAllStreamed(stream_dir)), expected)
        << "seed " << seed << ": fully compacted view diverged from batch";

    // And so must a recovery replay: crash (no seal) + reopen.
    ingestor->reset();
    auto reopened = Ingestor::Open(stream_dir, options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(CanonicalBytes(SelectAllStreamed(stream_dir)), expected)
        << "seed " << seed << ": post-recovery view diverged from batch";

    std::error_code ec;
    fs::remove_all(base, ec);
  }
}

}  // namespace
}  // namespace st4ml
