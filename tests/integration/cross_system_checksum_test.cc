// Cross-system result-equality harness: every Table-7 application must
// produce the SAME checksum on ST4ML (built-in), ST4ML (customized),
// GeoSpark-like, and GeoMesa-like — the property that makes the Table 7/8
// timing comparisons meaningful. Runs the real bench app implementations
// against small staged datasets (ST4ML_SCALE=0.05).

#include <cstdint>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "../../bench/apps/apps.h"

namespace st4ml {
namespace bench {
namespace {

constexpr int64_t kHour = 3600;
constexpr int64_t kDay = 86400;

struct SystemResults {
  size_t st4ml;
  size_t st4ml_custom;
  size_t geospark;
  size_t geomesa;
};

using AppFn = size_t (*)(const BenchEnv&, int, const STBox&);

SystemResults RunAll(AppFn st4ml, AppFn st4ml_custom, AppFn geospark,
                     AppFn geomesa, const STBox& query) {
  const BenchEnv& env = GetBenchEnv();
  constexpr int kFullScale = 2;  // the 100% variant of the staged data
  return SystemResults{st4ml(env, kFullScale, query),
                       st4ml_custom(env, kFullScale, query),
                       geospark(env, kFullScale, query),
                       geomesa(env, kFullScale, query)};
}

void ExpectAllEqual(const SystemResults& r, bool expect_nonzero = true) {
  EXPECT_EQ(r.st4ml, r.st4ml_custom) << "ST4ML-B vs ST4ML-C";
  EXPECT_EQ(r.st4ml, r.geospark) << "ST4ML vs GeoSpark";
  EXPECT_EQ(r.st4ml, r.geomesa) << "ST4ML vs GeoMesa";
  if (expect_nonzero) {
    EXPECT_GT(r.st4ml, 0u) << "checksum should be non-trivial";
  }
}

/// Full spatial extent, hour-aligned temporal window from the range start.
STBox QueryOver(const Mbr& extent, const Duration& range, int64_t span_s) {
  return STBox(extent, Duration(range.start(), range.start() + span_s));
}

TEST(CrossSystemChecksumTest, Anomaly) {
  const BenchEnv& env = GetBenchEnv();
  ExpectAllEqual(RunAll(AnomalySt4ml, AnomalySt4mlC, AnomalyGeoSpark,
                        AnomalyGeoMesa,
                        QueryOver(env.nyc_extent, env.nyc_range, 60 * kDay)));
}

TEST(CrossSystemChecksumTest, AvgSpeed) {
  const BenchEnv& env = GetBenchEnv();
  ExpectAllEqual(
      RunAll(AvgSpeedSt4ml, AvgSpeedSt4mlC, AvgSpeedGeoSpark, AvgSpeedGeoMesa,
             QueryOver(env.porto_extent, env.porto_range, 60 * kDay)));
}

TEST(CrossSystemChecksumTest, StayPoint) {
  const BenchEnv& env = GetBenchEnv();
  // The (200 m, 10 min) threshold finds few stays in the small staged
  // variant — the equality across systems is the property, not the count.
  ExpectAllEqual(
      RunAll(StayPointSt4ml, StayPointSt4mlC, StayPointGeoSpark,
             StayPointGeoMesa,
             QueryOver(env.porto_extent, env.porto_range, 60 * kDay)),
      /*expect_nonzero=*/false);
}

TEST(CrossSystemChecksumTest, HourlyFlow) {
  const BenchEnv& env = GetBenchEnv();
  ExpectAllEqual(
      RunAll(HourlyFlowSt4ml, HourlyFlowSt4mlC, HourlyFlowGeoSpark,
             HourlyFlowGeoMesa,
             QueryOver(env.nyc_extent, env.nyc_range, 14 * kDay)));
}

TEST(CrossSystemChecksumTest, GridSpeed) {
  const BenchEnv& env = GetBenchEnv();
  ExpectAllEqual(
      RunAll(GridSpeedSt4ml, GridSpeedSt4mlC, GridSpeedGeoSpark,
             GridSpeedGeoMesa,
             QueryOver(env.porto_extent, env.porto_range, 30 * kDay)));
}

TEST(CrossSystemChecksumTest, Transition) {
  const BenchEnv& env = GetBenchEnv();
  // The raster's hour bins must nest inside the query window exactly, so the
  // span is a whole number of hours.
  ExpectAllEqual(
      RunAll(TransitionSt4ml, TransitionSt4mlC, TransitionGeoSpark,
             TransitionGeoMesa,
             QueryOver(env.porto_extent, env.porto_range, 2 * kDay)));
}

TEST(CrossSystemChecksumTest, AirOverRoad) {
  const BenchEnv& env = GetBenchEnv();
  ExpectAllEqual(
      RunAll(AirOverRoadSt4ml, AirOverRoadSt4mlC, AirOverRoadGeoSpark,
             AirOverRoadGeoMesa,
             QueryOver(env.air_extent, env.air_range, 7 * kDay)));
}

TEST(CrossSystemChecksumTest, PoiCount) {
  const BenchEnv& env = GetBenchEnv();
  ExpectAllEqual(RunAll(PoiCountSt4ml, PoiCountSt4mlC, PoiCountGeoSpark,
                        PoiCountGeoMesa,
                        QueryOver(env.osm_extent, Duration(0, 0), kHour)));
}

}  // namespace
}  // namespace bench
}  // namespace st4ml

int main(int argc, char** argv) {
  // Must run before the first GetBenchEnv(): stage small datasets in a
  // dedicated directory so this test never clashes with full bench runs.
  setenv("ST4ML_SCALE", "0.05", /*overwrite=*/1);
  setenv("ST4ML_BENCH_DATA", "checksum_bench_data", /*overwrite=*/1);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
