// Integration test for cache-backed reuse (ISSUE 5, satellite 4): one
// pipeline runs the same Selection twice, then two extractors over one
// persisted Conversion result. The second Select and the second extractor
// must be served from the DatasetCache: stpq/read io bytes and cache
// misses must NOT grow on the second pass, while cache hits must.

#include <gtest/gtest.h>

#include "common/property.h"
#include "st4ml.h"

namespace st4ml {
namespace {

TEST(CacheReuseTest, SecondPassIsServedFromCache) {
  testing::CacheWorkload w;
  w.seed = 77;
  w.num_records = 400;
  w.grid_t = 2;
  w.grid_s = 2;
  w.query = STBox(Mbr(0, 0, 100, 100), Duration(0, 100000));
  testing::StagedWorkload staged(w);

  auto ctx = ExecutionContext::Create(4);
  DatasetCache::Options cache_options;
  cache_options.budget_bytes = DatasetCache::kUnbounded;
  ctx->ConfigureCache(std::move(cache_options));
  Pipeline pipeline(ctx, "cache_reuse");

  // ---- Selection, cold pass: every surviving file is read from disk.
  Selector<EventRecord> selector_a(ctx, SelectQuery::FromBox(w.query));
  auto first = pipeline.Run("selection", [&] {
    return selector_a.Select(staged.dir(), staged.meta());
  });
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  MetricsSnapshot cold = ctx->MetricsSnapshot();
  ASSERT_GT(cold[Counter::kStpqBytesRead], 0u);
  ASSERT_GT(cold[Counter::kStpqFilesRead], 0u);
  ASSERT_GT(cold[Counter::kCacheMisses], 0u);
  ASSERT_EQ(cold[Counter::kCacheHits], 0u);

  // ---- Selection, warm pass: an INDEPENDENT selector over the same data
  // (interned file keys are shared) must not touch the files again.
  Selector<EventRecord> selector_b(ctx, SelectQuery::FromBox(w.query));
  auto second = pipeline.Run("selection", [&] {
    return selector_b.Select(staged.dir(), staged.meta());
  });
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  MetricsSnapshot warm = ctx->MetricsSnapshot();
  EXPECT_EQ(warm[Counter::kStpqBytesRead], cold[Counter::kStpqBytesRead])
      << "second Select re-read file bytes instead of hitting the cache";
  EXPECT_EQ(warm[Counter::kStpqFilesRead], cold[Counter::kStpqFilesRead]);
  EXPECT_EQ(warm[Counter::kCacheMisses], cold[Counter::kCacheMisses])
      << "second Select missed the cache";
  EXPECT_GT(warm[Counter::kCacheHits], 0u);
  // Both passes scanned (consulted) the same partitions and selected the
  // same records — the cache changed the I/O, not the answer.
  EXPECT_EQ(warm[Counter::kPartitionsScanned],
            2 * cold[Counter::kPartitionsScanned]);
  std::string bytes_a, bytes_b;
  for (const EventRecord& r : first->Collect()) {
    testing::AppendRecordBytes(&bytes_a, r);
  }
  for (const EventRecord& r : second->Collect()) {
    testing::AppendRecordBytes(&bytes_b, r);
  }
  EXPECT_EQ(bytes_a, bytes_b);

  // ---- Conversion result persisted once, consumed by two extractors.
  auto converted = pipeline.Run(
      "conversion",
      [&](const Dataset<EventRecord>& ds) { return ds.Repartition(4); },
      *second);
  CachedDataset<EventRecord> persisted = pipeline.Persist(converted);
  MetricsSnapshot after_persist = ctx->MetricsSnapshot();

  uint64_t counts[2] = {0, 0};
  int64_t time_sums[2] = {0, 0};
  for (int extractor = 0; extractor < 2; ++extractor) {
    auto loaded = persisted.Load();
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    counts[extractor] = loaded->Count();
    time_sums[extractor] = loaded->Aggregate(
        int64_t{0},
        [](int64_t acc, const EventRecord& r) { return acc + r.time; },
        [](int64_t a, int64_t b) { return a + b; });
  }
  EXPECT_EQ(counts[0], converted.Count());
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(time_sums[0], time_sums[1]);

  // Feeding two extractors from the persisted dataset costs zero file I/O
  // (unbounded budget: nothing spilled, both loads are pure memory hits).
  MetricsSnapshot final_metrics = ctx->MetricsSnapshot();
  EXPECT_EQ(final_metrics[Counter::kStpqBytesRead],
            cold[Counter::kStpqBytesRead]);
  EXPECT_EQ(final_metrics[Counter::kCacheMisses],
            after_persist[Counter::kCacheMisses]);
  EXPECT_GT(final_metrics[Counter::kCacheHits],
            after_persist[Counter::kCacheHits]);
  EXPECT_EQ(final_metrics[Counter::kCacheSpillBytes], 0u);

  pipeline.Finish();
  EXPECT_TRUE(pipeline.ok()) << pipeline.status().ToString();
}

}  // namespace
}  // namespace st4ml
