#include "common/status.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/execution_context.h"
#include "selection/selector.h"
#include "storage/records.h"
#include "storage/stpq.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("st4ml_status_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<EventRecord> SomeEvents(int n) {
  std::vector<EventRecord> events;
  for (int i = 0; i < n; ++i) {
    EventRecord r;
    r.id = i;
    r.x = 0.1 * i;
    r.y = 0.2 * i;
    r.time = 100 + i;
    r.attr = "e" + std::to_string(i);
    events.push_back(r);
  }
  return events;
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::Corruption("bad magic");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kCorruption);
  EXPECT_EQ(s.message(), "bad magic");
  EXPECT_NE(s.ToString().find("bad magic"), std::string::npos);
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);

  StatusOr<int> bad = Status::NotFound("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kNotFound);
}

TEST(StatusOrTest, ReturnIfErrorMacroPropagates) {
  auto inner = []() -> Status { return Status::IOError("disk gone"); };
  auto outer = [&]() -> StatusOr<int> {
    ST4ML_RETURN_IF_ERROR(inner());
    return 1;
  };
  auto result = outer();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kIOError);
}

TEST(StatusPipelineTest, MissingFileIsNotFound) {
  auto result = ReadStpqEvents("/definitely/not/a/file.stpq");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kNotFound);
}

TEST(StatusPipelineTest, BadMagicIsCorruption) {
  std::string dir = TempDir("magic");
  std::string path = dir + "/bad.stpq";
  std::ofstream(path, std::ios::binary) << "NOTAMAGICFILE_AT_ALL";
  auto result = ReadStpqEvents(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
}

TEST(StatusPipelineTest, TruncatedFileIsCorruption) {
  std::string dir = TempDir("trunc");
  std::string path = dir + "/part-00000.stpq";
  ASSERT_TRUE(WriteStpqFile(path, SomeEvents(10)).ok());
  // Chop the tail off a valid file.
  auto size = fs::file_size(path);
  fs::resize_file(path, size - 7);
  auto result = ReadStpqEvents(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
}

TEST(StatusPipelineTest, WrongKindIsCorruption) {
  std::string dir = TempDir("kind");
  std::string path = dir + "/part-00000.stpq";
  ASSERT_TRUE(WriteStpqFile(path, SomeEvents(3)).ok());
  auto result = ReadStpqTrajs(path);  // events on disk, trajs requested
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
}

/// The satellite scenario: a corrupt STPQ file inside a selected directory
/// must surface as a Corruption status from the full load -> select
/// pipeline, not as a crash or a silently short result.
TEST(StatusPipelineTest, SelectorPropagatesCorruption) {
  std::string dir = TempDir("select");
  ASSERT_TRUE(WriteStpqFile(dir + "/part-00000.stpq", SomeEvents(8)).ok());
  ASSERT_TRUE(WriteStpqFile(dir + "/part-00001.stpq", SomeEvents(8)).ok());
  {
    // Corrupt the second file's body while keeping a plausible size.
    std::fstream f(dir + "/part-00001.stpq",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(0);
    f << "STPQX";  // wrong magic tail
  }

  auto ctx = ExecutionContext::Create(2);
  STBox query(Mbr(-10, -10, 10, 10), Duration(0, 1000));
  Selector<EventRecord> selector(ctx, SelectQuery::FromBox(query));
  auto selected = selector.Select(dir);
  ASSERT_FALSE(selected.ok());
  EXPECT_EQ(selected.status().code(), Status::Code::kCorruption);
}

TEST(StatusPipelineTest, SelectorOnEmptyDirIsNotFound) {
  std::string dir = TempDir("empty");
  auto ctx = ExecutionContext::Create(2);
  Selector<EventRecord> selector(ctx, SelectQuery::FromBox(STBox(Mbr(0, 0, 1, 1), Duration(0, 1))));
  auto selected = selector.Select(dir);
  ASSERT_FALSE(selected.ok());
  EXPECT_EQ(selected.status().code(), Status::Code::kNotFound);
}

TEST(StatusPipelineTest, MetaPrunedSelectSkipsCorruptFileOutsideQuery) {
  // Pruning means a corrupt file whose envelope misses the query is never
  // opened — the pipeline stays Ok. This is a property of the on-disk
  // metadata, worth pinning.
  std::string dir = TempDir("pruned");
  ASSERT_TRUE(WriteStpqFile(dir + "/part-00000.stpq", SomeEvents(4)).ok());
  std::ofstream(dir + "/part-00001.stpq", std::ios::binary) << "garbage";

  std::vector<StpqPartMeta> meta(2);
  meta[0].file = "part-00000.stpq";
  meta[0].box = STBox(Mbr(0, 0, 2, 2), Duration(100, 110));
  meta[0].count = 4;
  meta[1].file = "part-00001.stpq";
  meta[1].box = STBox(Mbr(50, 50, 60, 60), Duration(5000, 6000));
  meta[1].count = 1;
  ASSERT_TRUE(WriteStpqMeta(dir + "/index.meta", meta).ok());

  auto ctx = ExecutionContext::Create(2);
  STBox query(Mbr(-1, -1, 3, 3), Duration(0, 1000));
  Selector<EventRecord> selector(ctx, SelectQuery::FromBox(query));
  auto selected = selector.Select(dir, dir + "/index.meta");
  ASSERT_TRUE(selected.ok()) << selected.status().ToString();
  EXPECT_EQ(selected->Count(), 4u);

  // Widen the query to cover the corrupt file: now it must be opened, and
  // the corruption must propagate.
  Selector<EventRecord> wide(ctx, SelectQuery::FromBox(STBox(Mbr(-100, -100, 100, 100), Duration(0, 9000))));
  auto bad = wide.Select(dir, dir + "/index.meta");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kCorruption);
}

}  // namespace
}  // namespace st4ml
