#ifndef ST4ML_TESTS_COMMON_PROPERTY_H_
#define ST4ML_TESTS_COMMON_PROPERTY_H_

// Differential / property-test harness for the dataset cache (ISSUE 5):
// seeded generators produce random ST workloads — records, query ranges,
// ingest layouts, worker counts, cache budgets including 0 and "tiny,
// forces eviction on every insert" — and ExpectIdentical runs the same
// Selection → persist → extraction pipeline cached and uncached, asserting
// byte-identical collected output and identical non-cache counters. Any
// divergence means the cache changed WHAT was computed, not just how fast.
//
// The harness is deliberately reusable: dataset_cache_test builds targeted
// regressions on the generators, cache_property_test sweeps 50 seeds
// through ExpectIdentical (some with ST4ML-style probabilistic faults armed
// on the stpq/read site so spill-reload exercises the retry path), and the
// integration and bench code reuse the workload staging.

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "accel/kernels.h"
#include "common/fault_injector.h"
#include "common/rng.h"
#include "engine/cached_dataset.h"
#include "engine/execution_context.h"
#include "pipeline/pipeline.h"
#include "selection/on_disk_index.h"
#include "selection/selector.h"
#include "storage/records.h"

namespace st4ml {
namespace testing {

/// One randomized workload. `tiny_budget` is sized against the staged file
/// bytes so that it usually cannot hold even one file — every insert
/// evicts, the "thrash" regime the spill path lives in.
struct CacheWorkload {
  uint64_t seed = 0;
  int num_records = 200;
  int grid_t = 2;            // TSTRPartitioner temporal slices
  int grid_s = 2;            // TSTRPartitioner spatial slices per axis
  uint64_t tiny_budget = 256;
  double fault_prob = 0.0;   // > 0 arms stpq/read probabilistically
  int repeats = 2;           // Select calls per run (reuse on repeat)
  /// Kernel backend this workload runs under ("" = widest available).
  /// ExpectIdentical ALWAYS also runs the scalar reference, so every seed
  /// is a scalar-vs-SIMD differential on top of the cache differential.
  std::string backend;
  STBox query;
};

inline std::vector<EventRecord> RandomWorkloadEvents(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<EventRecord> events;
  events.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    EventRecord r;
    r.id = i;
    r.x = rng.Uniform(0, 100);
    r.y = rng.Uniform(0, 100);
    r.time = rng.UniformInt(0, 100000);
    r.attr = std::string(static_cast<size_t>(rng.UniformInt(0, 20)), 'a');
    events.push_back(std::move(r));
  }
  return events;
}

inline CacheWorkload RandomCacheWorkload(uint64_t seed) {
  Rng rng(seed * 7919 + 1);
  CacheWorkload w;
  w.seed = seed;
  w.num_records = static_cast<int>(rng.UniformInt(40, 600));
  w.grid_t = static_cast<int>(rng.UniformInt(1, 3));
  w.grid_s = static_cast<int>(rng.UniformInt(1, 3));
  // Mostly thrash-sized; occasionally pathological 1-byte.
  w.tiny_budget = rng.Bernoulli(0.2)
                      ? 1
                      : static_cast<uint64_t>(rng.UniformInt(64, 4096));
  w.fault_prob = seed % 5 == 0 ? 0.1 : 0.0;
  w.repeats = 2;
  // Random compiled-in-and-supported backend, so the seed sweep exercises
  // every dispatch target (on top of ExpectIdentical's scalar reference).
  const auto& available = accel::BackendRegistry::Instance().Available();
  w.backend =
      available[rng.UniformInt(0, static_cast<int64_t>(available.size()) - 1)]
          ->name();
  // A random sub-box; occasionally everything or (nearly) nothing.
  double x1 = rng.Uniform(0, 80), y1 = rng.Uniform(0, 80);
  double x2 = x1 + rng.Uniform(5, 100 - x1), y2 = y1 + rng.Uniform(5, 100 - y1);
  int64_t t1 = rng.UniformInt(0, 60000);
  int64_t t2 = t1 + rng.UniformInt(1000, 100000 - t1);
  if (rng.Bernoulli(0.15)) {  // full-domain query
    x1 = 0; y1 = 0; x2 = 100; y2 = 100; t1 = 0; t2 = 100000;
  } else if (rng.Bernoulli(0.1)) {  // query that misses all data
    x1 = 200; y1 = 200; x2 = 210; y2 = 210;
  }
  w.query = STBox(Mbr(x1, y1, x2, y2), Duration(t1, t2));
  return w;
}

/// Stages one workload's records as an on-disk index in a temp dir; removed
/// on destruction.
class StagedWorkload {
 public:
  explicit StagedWorkload(const CacheWorkload& w) {
    namespace fs = std::filesystem;
    dir_ = (fs::temp_directory_path() /
            ("st4ml_prop_" + std::to_string(w.seed) + "_" +
             std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    meta_ = dir_ + "/index.meta";
    auto ctx = ExecutionContext::Create(2);
    ctx->ConfigureCache({});  // staging never caches
    auto data = Dataset<EventRecord>::Parallelize(
        ctx, RandomWorkloadEvents(w.num_records, w.seed), 4);
    TSTRPartitioner partitioner(w.grid_t, w.grid_s);
    Status built = BuildOnDiskIndex(data, &partitioner, dir_, meta_);
    ST4ML_CHECK(built.ok()) << built.ToString();
  }

  ~StagedWorkload() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  const std::string& dir() const { return dir_; }
  const std::string& meta() const { return meta_; }

 private:
  std::string dir_;
  std::string meta_;
};

/// Appends a byte-exact serialization of `r` — the harness's "Collect() is
/// byte-identical" currency (no temp files, no fault-injection sites).
inline void AppendRecordBytes(std::string* out, const EventRecord& r) {
  auto append = [out](const void* p, size_t n) {
    out->append(static_cast<const char*>(p), n);
  };
  append(&r.id, sizeof(r.id));
  append(&r.x, sizeof(r.x));
  append(&r.y, sizeof(r.y));
  append(&r.time, sizeof(r.time));
  uint32_t len = static_cast<uint32_t>(r.attr.size());
  append(&len, sizeof(len));
  out->append(r.attr);
}

struct PipelineRun {
  Status status;          // first failure, or OK
  std::string output;     // serialized Collect() of every stage output
  MetricsSnapshot metrics;
};

/// Runs the differential pipeline once: `repeats` metadata-pruned Selects
/// over the same query (the selector-cache reuse), then persist the last
/// selection and run two extractors against Load() (the CachedDataset
/// reuse). Every collected record and extracted value is appended to
/// `output` in order, so two runs agree iff their outputs match bytewise.
/// `disk_index` toggles the mmap'd `.stix` plan for cache-less runs (with a
/// cache enabled the planner always prefers it, so the knob is inert there).
/// A non-empty `executor` spec ("mp:2", say) overrides the plain
/// `workers`-thread local pool — the knob the scale-out differential
/// (ExpectScaleoutIdentical) sweeps.
inline PipelineRun RunCachePipeline(const CacheWorkload& w,
                                    const StagedWorkload& staged,
                                    uint64_t budget, int workers,
                                    bool disk_index = true,
                                    const std::string& executor = "") {
  PipelineRun run;
  std::shared_ptr<ExecutionContext> ctx;
  if (executor.empty()) {
    ctx = ExecutionContext::Create(workers);
  } else {
    auto spec = ExecutorSpec::Parse(executor);
    ST4ML_CHECK(spec.ok()) << spec.status().ToString();
    ctx = ExecutionContext::Create(*spec);
  }
  DatasetCache::Options cache_options;
  cache_options.budget_bytes = budget;
  // Fault runs re-attempt aggressively (and without backoff, for speed):
  // p = 0.1 over 8 attempts makes a persistent failure vanishingly rare,
  // so the differential comparison never aborts on an injected fault.
  cache_options.retry.max_attempts = 8;
  cache_options.retry.initial_backoff = std::chrono::milliseconds(0);
  ctx->ConfigureCache(std::move(cache_options));

  if (w.fault_prob > 0) {
    GlobalFaultInjector().Reset();
    GlobalFaultInjector().ArmProbabilistic(fault_site::kStpqRead,
                                           w.fault_prob, w.seed);
  }

  SelectorOptions selector_options;
  selector_options.retry.max_attempts = 8;
  selector_options.retry.initial_backoff = std::chrono::milliseconds(0);
  selector_options.use_disk_index = disk_index;

  Pipeline pipeline(ctx, "cache_property");
  Dataset<EventRecord> last;
  for (int r = 0; r < w.repeats; ++r) {
    Selector<EventRecord> selector(ctx, SelectQuery::FromBox(w.query), selector_options);
    auto selected = pipeline.Run("selection", [&] {
      return selector.Select(staged.dir(), staged.meta());
    });
    if (!selected.ok()) {
      run.status = selected.status();
      GlobalFaultInjector().Reset();
      return run;
    }
    for (const EventRecord& rec : selected->Collect()) {
      AppendRecordBytes(&run.output, rec);
    }
    last = *selected;
  }

  // "Conversion": a real shuffle, so the shuffle counters have something to
  // disagree about if the cache ever perturbed record flow.
  auto converted = pipeline.Run(
      "conversion",
      [&](const Dataset<EventRecord>& ds) { return ds.Repartition(3); },
      last);

  // Persist once, extract twice — the paper's many-extractors pattern.
  CachedDataset<EventRecord> cached = pipeline.Persist(converted);
  for (int extractor = 0; extractor < 2; ++extractor) {
    auto loaded = cached.Load();
    if (!loaded.ok()) {
      run.status = loaded.status();
      GlobalFaultInjector().Reset();
      return run;
    }
    auto sums = pipeline.Run("extraction", [&] {
      struct Acc {
        uint64_t count = 0;
        int64_t id_sum = 0;
        int64_t time_sum = 0;
      };
      return loaded->Aggregate(
          Acc{},
          [extractor](Acc acc, const EventRecord& r) {
            ++acc.count;
            acc.id_sum += r.id * (extractor + 1);
            acc.time_sum += r.time;
            return acc;
          },
          [](Acc a, Acc b) {
            a.count += b.count;
            a.id_sum += b.id_sum;
            a.time_sum += b.time_sum;
            return a;
          });
    });
    AppendRecordBytes(&run.output,
                      EventRecord{static_cast<int64_t>(sums.count),
                                  static_cast<double>(sums.id_sum), 0.0,
                                  sums.time_sum, ""});
  }

  GlobalFaultInjector().Reset();
  pipeline.Finish();
  run.status = pipeline.status();
  run.metrics = ctx->MetricsSnapshot();
  return run;
}

/// The counters a correct cache must NOT change: everything about record
/// flow and shuffle volume. Deliberately excluded: the stpq_* I/O family
/// (the cache exists to shrink reads), tasks_retried / faults_injected
/// (fault runs draw differently when reads are skipped), and the cache_*
/// family itself.
inline const std::vector<Counter>& CacheInvariantCounters() {
  static const std::vector<Counter> kCounters = {
      Counter::kShuffleRecords,
      Counter::kShuffleBytes,
      Counter::kBroadcasts,
      Counter::kShuffleRecordsReduceByKey,
      Counter::kShuffleBytesReduceByKey,
      Counter::kShuffleRecordsGroupByKey,
      Counter::kShuffleBytesGroupByKey,
      Counter::kShuffleRecordsRepartition,
      Counter::kShuffleBytesRepartition,
      Counter::kShuffleRecordsStPartition,
      Counter::kShuffleBytesStPartition,
      Counter::kPartitionsPruned,
      Counter::kPartitionsScanned,
      Counter::kSelectionRecordsOut,
      Counter::kSelectionBytesSelected,
      Counter::kConversionRecordsIn,
      Counter::kConversionRecordsOut,
      Counter::kExtractionRecordsIn,
      Counter::kExtractionRecordsOut,
      Counter::kParallelJobs,
      Counter::kChunkClaims,
      Counter::kTasksFailed,
  };
  return kCounters;
}

/// Forces a kernel backend for a scope; restores the automatic choice (env
/// override, else widest ISA) on exit — including early GTest ASSERT
/// returns, so one failing seed can't leak a forced backend into the next.
class ScopedBackend {
 public:
  explicit ScopedBackend(const std::string& name) {
    Status status = accel::BackendRegistry::Instance().ForceBackend(name);
    ST4ML_CHECK(status.ok()) << status.ToString();
  }
  ~ScopedBackend() { accel::BackendRegistry::Instance().ForceBackend(""); }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;
};

/// Runs `w` uncached (budget 0) and cached (budgets {0, tiny, unbounded})
/// at worker counts {1, 8}, under the scalar backend and then under the
/// workload's backend (when different), asserting:
///  - every run's output is byte-identical to the single-worker uncached
///    SCALAR reference (cache, worker-count AND backend invariance — cold
///    and warm paths both go through the kernels, so this is the
///    scalar-vs-SIMD differential the accel contract promises), and
///  - each cached run's invariant counters equal the uncached run's at the
///    SAME worker count and backend (executor-shape counters legitimately
///    vary with workers... but not with caching or with the backend).
inline void ExpectIdentical(const CacheWorkload& w) {
  StagedWorkload staged(w);
  const uint64_t budgets[] = {0, w.tiny_budget, DatasetCache::kUnbounded};
  std::vector<std::string> backends = {"scalar"};
  std::string alt =
      w.backend.empty()
          ? accel::BackendRegistry::Instance().Available().back()->name()
          : w.backend;
  if (alt != "scalar") backends.push_back(alt);
  std::string reference;
  bool have_reference = false;
  for (const std::string& backend : backends) {
    ScopedBackend forced(backend);
    for (int workers : {1, 8}) {
      // The reference run is linear-scan (disk index off): the seed path
      // every other plan must reproduce byte for byte.
      PipelineRun uncached = RunCachePipeline(w, staged, 0, workers,
                                              /*disk_index=*/false);
      ASSERT_TRUE(uncached.status.ok())
          << "seed " << w.seed << " uncached workers " << workers
          << " backend " << backend << ": " << uncached.status.ToString();
      if (!have_reference) {
        reference = uncached.output;
        have_reference = true;
      }
      EXPECT_EQ(uncached.output, reference)
          << "seed " << w.seed << ": uncached output varies with workers="
          << workers << " backend=" << backend;
      // Disk-index differential: the same cache-less run served through the
      // mmap'd .stix sidecars must agree bytewise AND keep every record-flow
      // counter (only the I/O-shape counters may change — exactly the
      // index's job).
      PipelineRun mmapped = RunCachePipeline(w, staged, 0, workers,
                                             /*disk_index=*/true);
      ASSERT_TRUE(mmapped.status.ok())
          << "seed " << w.seed << " disk-index workers " << workers
          << " backend " << backend << ": " << mmapped.status.ToString();
      EXPECT_EQ(mmapped.output, reference)
          << "seed " << w.seed << ": disk-index output diverged at workers "
          << workers << " backend " << backend;
      for (Counter c : CacheInvariantCounters()) {
        EXPECT_EQ(mmapped.metrics[c], uncached.metrics[c])
            << "seed " << w.seed << ": counter " << CounterName(c)
            << " diverged with the disk index at workers " << workers
            << " backend " << backend;
      }
      for (uint64_t budget : budgets) {
        PipelineRun cached = RunCachePipeline(w, staged, budget, workers);
        ASSERT_TRUE(cached.status.ok())
            << "seed " << w.seed << " budget " << budget << " workers "
            << workers << " backend " << backend << ": "
            << cached.status.ToString();
        EXPECT_EQ(cached.output, reference)
            << "seed " << w.seed << ": cached output diverged at budget "
            << budget << " workers " << workers << " backend " << backend;
        for (Counter c : CacheInvariantCounters()) {
          EXPECT_EQ(cached.metrics[c], uncached.metrics[c])
              << "seed " << w.seed << ": counter " << CounterName(c)
              << " diverged at budget " << budget << " workers " << workers
              << " backend " << backend;
        }
      }
    }
  }
}

/// The counters a correct EXECUTOR must not change: record flow, shuffle
/// volume, selection and pruning decisions, task failures. This is
/// CacheInvariantCounters minus the two executor-shape counters:
/// kChunkClaims (a claim is a pool artifact locally and a task GRANT under
/// mp, so its count tracks worker count and grant sizing) and
/// kParallelJobs (a one-worker non-distributed Repartition deals
/// sequentially without opening a job at all — a scheduling choice, not a
/// record-flow difference).
inline std::vector<Counter> ExecutorInvariantCounters() {
  std::vector<Counter> counters = CacheInvariantCounters();
  for (Counter shape : {Counter::kChunkClaims, Counter::kParallelJobs}) {
    counters.erase(std::find(counters.begin(), counters.end(), shape));
  }
  return counters;
}

/// The scale-out differential (DESIGN.md §14): replays one seeded workload
/// through the full pipeline under the local executor (worker counts 1 and
/// 8) and the multiprocess executor (1, 2 and 4 forked workers), asserting
/// every run Collects byte-identical output and agrees on every
/// executor-invariant counter with the single-threaded local reference.
/// All runs are cache-off and disk-index-on: the mp planner bypasses the
/// driver-resident DatasetCache by design, so parity against a cached local
/// run is not a contract — plan parity is.
inline void ExpectScaleoutIdentical(const CacheWorkload& w) {
  StagedWorkload staged(w);
  PipelineRun reference = RunCachePipeline(w, staged, 0, 1);
  ASSERT_TRUE(reference.status.ok())
      << "seed " << w.seed << " local:1: " << reference.status.ToString();
  struct Run {
    const char* label;
    int workers;          // local pool size (executor empty)
    const char* executor; // "" = local
  };
  const Run runs[] = {
      {"local:8", 8, ""},
      {"mp:1", 1, "mp:1"},
      {"mp:2", 1, "mp:2"},
      {"mp:4", 1, "mp:4"},
  };
  for (const Run& r : runs) {
    PipelineRun got =
        RunCachePipeline(w, staged, 0, r.workers, /*disk_index=*/true,
                         r.executor);
    ASSERT_TRUE(got.status.ok())
        << "seed " << w.seed << " " << r.label << ": "
        << got.status.ToString();
    EXPECT_EQ(got.output, reference.output)
        << "seed " << w.seed << ": output diverged under " << r.label;
    for (Counter c : ExecutorInvariantCounters()) {
      EXPECT_EQ(got.metrics[c], reference.metrics[c])
          << "seed " << w.seed << ": counter " << CounterName(c)
          << " diverged under " << r.label;
    }
  }
}

}  // namespace testing
}  // namespace st4ml

#endif  // ST4ML_TESTS_COMMON_PROPERTY_H_
