#include "common/rng.h"

#include <gtest/gtest.h>

namespace st4ml {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.5, 4.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 4.5);
  }
}

TEST(RngTest, UniformIntIsInclusiveAndCoversEnds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, GaussianLooksCentered) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.Gaussian();
  EXPECT_NEAR(sum / kSamples, 0.0, 0.05);
}

TEST(RngTest, BernoulliTracksProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace st4ml
