#include "common/retry.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "common/status.h"
#include "observability/counters.h"

namespace st4ml {
namespace {

// Backoff-free policy so the bounded-attempt tests run instantly.
RetryPolicy FastPolicy(int attempts) {
  RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.initial_backoff = std::chrono::milliseconds(0);
  return policy;
}

TEST(RetryTest, TransientIOErrorIsRetriedToSuccess) {
  CounterRegistry counters;
  uint64_t attempts = 0;
  int calls = 0;
  Status status = FastPolicy(3).Run(
      [&]() -> Status {
        ++calls;
        if (calls < 3) return Status::IOError("flaky");
        return Status::Ok();
      },
      &counters, &attempts);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(attempts, 3u);
  EXPECT_EQ(counters.value(Counter::kTasksRetried), 2u);
}

TEST(RetryTest, DeterministicErrorsAreNotRetried) {
  CounterRegistry counters;
  uint64_t attempts = 0;
  int calls = 0;
  Status status = FastPolicy(5).Run(
      [&]() -> Status {
        ++calls;
        return Status::Corruption("bad bytes never heal");
      },
      &counters, &attempts);
  EXPECT_EQ(status.code(), Status::Code::kCorruption);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(attempts, 1u);
  EXPECT_EQ(counters.value(Counter::kTasksRetried), 0u);
}

TEST(RetryTest, AttemptsAreBounded) {
  CounterRegistry counters;
  int calls = 0;
  Status status = FastPolicy(3).Run(
      [&]() -> Status {
        ++calls;
        return Status::IOError("always down");
      },
      &counters);
  EXPECT_EQ(status.code(), Status::Code::kIOError);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(counters.value(Counter::kTasksRetried), 2u);
}

TEST(RetryTest, StatusOrValueSurvivesRetry) {
  int calls = 0;
  auto result = FastPolicy(2).Run([&]() -> StatusOr<int> {
    ++calls;
    if (calls == 1) return Status::IOError("first read fails");
    return 42;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(calls, 2);
}

TEST(RetryTest, NonePolicyIsASingleCall) {
  int calls = 0;
  Status status = RetryPolicy::None().Run([&]() -> Status {
    ++calls;
    return Status::IOError("down");
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, NonPositiveMaxAttemptsBehavesAsOne) {
  int calls = 0;
  RetryPolicy policy = FastPolicy(0);
  Status status = policy.Run([&]() -> Status {
    ++calls;
    return Status::IOError("down");
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace st4ml
