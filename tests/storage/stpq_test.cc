#include "storage/stpq.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("st4ml_stpq_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<EventRecord> RandomEvents(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<EventRecord> events;
  for (int i = 0; i < n; ++i) {
    EventRecord r;
    r.id = i;
    r.x = rng.Uniform(-180, 180);
    r.y = rng.Uniform(-90, 90);
    r.time = rng.UniformInt(0, 1 << 30);
    r.attr = std::string(static_cast<size_t>(rng.UniformInt(0, 20)), 'a');
    events.push_back(r);
  }
  return events;
}

std::vector<TrajRecord> RandomTrajs(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<TrajRecord> trajs;
  for (int i = 0; i < n; ++i) {
    TrajRecord t;
    t.id = i;
    int points = static_cast<int>(rng.UniformInt(1, 30));
    for (int k = 0; k < points; ++k) {
      TrajPointRecord p;
      p.x = rng.Uniform(0, 10);
      p.y = rng.Uniform(0, 10);
      p.time = 1000 + k * 15;
      t.points.push_back(p);
    }
    trajs.push_back(t);
  }
  return trajs;
}

TEST(StpqTest, EventRoundTrip) {
  std::string dir = TempDir("events");
  auto events = RandomEvents(100, 1);
  ASSERT_TRUE(WriteStpqFile(dir + "/e.stpq", events).ok());
  auto loaded = ReadStpqEvents(dir + "/e.stpq");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ((*loaded)[i].id, events[i].id);
    EXPECT_DOUBLE_EQ((*loaded)[i].x, events[i].x);
    EXPECT_DOUBLE_EQ((*loaded)[i].y, events[i].y);
    EXPECT_EQ((*loaded)[i].time, events[i].time);
    EXPECT_EQ((*loaded)[i].attr, events[i].attr);
  }
}

TEST(StpqTest, TrajRoundTrip) {
  std::string dir = TempDir("trajs");
  auto trajs = RandomTrajs(40, 2);
  ASSERT_TRUE(WriteStpqFile(dir + "/t.stpq", trajs).ok());
  auto loaded = ReadStpqTrajs(dir + "/t.stpq");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), trajs.size());
  for (size_t i = 0; i < trajs.size(); ++i) {
    ASSERT_EQ((*loaded)[i].points.size(), trajs[i].points.size());
    EXPECT_DOUBLE_EQ((*loaded)[i].points.back().x, trajs[i].points.back().x);
    EXPECT_EQ((*loaded)[i].points.back().time, trajs[i].points.back().time);
  }
}

TEST(StpqTest, EmptyFileRoundTrip) {
  std::string dir = TempDir("zero");
  ASSERT_TRUE(WriteStpqFile(dir + "/z.stpq", std::vector<EventRecord>{}).ok());
  auto loaded = ReadStpqEvents(dir + "/z.stpq");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST(StpqTest, RecordBytesMatchesOnDiskGrowth) {
  std::string dir = TempDir("bytes");
  auto events = RandomEvents(50, 3);
  ASSERT_TRUE(WriteStpqFile(dir + "/b.stpq", events).ok());
  uint64_t expected = 0;
  for (const auto& r : events) expected += StpqRecordBytes(r);
  uint64_t file_size = FileSizeBytes(dir + "/b.stpq");
  // header: magic + kind + count
  EXPECT_EQ(file_size, expected + 5 + 1 + 8);
}

TEST(StpqTest, ListStpqFilesIsSortedAndFiltered) {
  std::string dir = TempDir("list");
  ASSERT_TRUE(
      WriteStpqFile(dir + "/part-00002.stpq", RandomEvents(1, 4)).ok());
  ASSERT_TRUE(
      WriteStpqFile(dir + "/part-00000.stpq", RandomEvents(1, 5)).ok());
  std::ofstream(dir + "/notes.txt") << "ignore me";
  auto files = ListStpqFiles(dir);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_NE(files[0].find("part-00000"), std::string::npos);
  EXPECT_NE(files[1].find("part-00002"), std::string::npos);
}

TEST(StpqTest, MetaRoundTrip) {
  std::string dir = TempDir("meta");
  std::vector<StpqPartMeta> meta(2);
  meta[0].file = "part-00000.stpq";
  meta[0].box = STBox(Mbr(-1.5, 2.25, 3.75, 8.0), Duration(100, 900));
  meta[0].count = 42;
  meta[1].file = "part-00001.stpq";
  meta[1].box = STBox();  // empty partition: inverted envelope
  meta[1].count = 0;
  ASSERT_TRUE(WriteStpqMeta(dir + "/idx.meta", meta).ok());
  auto loaded = ReadStpqMeta(dir + "/idx.meta");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].file, "part-00000.stpq");
  EXPECT_DOUBLE_EQ((*loaded)[0].box.mbr.x_min, -1.5);
  EXPECT_EQ((*loaded)[0].box.time.end(), 900);
  EXPECT_EQ((*loaded)[0].count, 42u);
  // The empty partition's envelope must still never match anything.
  STBox everything(Mbr(-1e9, -1e9, 1e9, 1e9),
                   Duration(-(int64_t{1} << 40), int64_t{1} << 40));
  EXPECT_FALSE((*loaded)[1].box.Intersects(everything));
}

}  // namespace
}  // namespace st4ml
