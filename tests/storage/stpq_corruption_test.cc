// Corrupt-input matrix for the STPQ readers: every malformed file must come
// back as a Corruption/NotFound Status — never a throw, a crash, or a
// header-driven giant allocation.

#include "storage/stpq.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/stix.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("st4ml_stpq_corrupt_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<EventRecord> SomeEvents(int n) {
  Rng rng(7);
  std::vector<EventRecord> events;
  for (int i = 0; i < n; ++i) {
    EventRecord r;
    r.id = i;
    r.x = rng.Uniform(0, 10);
    r.y = rng.Uniform(0, 10);
    r.time = rng.UniformInt(0, 1000);
    r.attr = "abc";
    events.push_back(r);
  }
  return events;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void Dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

template <typename T>
void Append(std::string* bytes, const T& value) {
  bytes->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

// Layout refresher: "STPQ1" | kind u8 | count u64 | records. The count
// field starts at byte 6.
constexpr size_t kCountOffset = sizeof(kStpqMagic) + 1;

TEST(StpqCorruptionTest, MissingFileIsNotFound) {
  std::string dir = TempDir("missing");
  auto loaded = ReadStpqEvents(dir + "/nope.stpq");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kNotFound);
}

TEST(StpqCorruptionTest, BadMagicIsCorruption) {
  std::string dir = TempDir("magic");
  std::string path = dir + "/bad.stpq";
  ASSERT_TRUE(WriteStpqFile(path, SomeEvents(3)).ok());
  std::string bytes = Slurp(path);
  bytes[0] = 'X';
  Dump(path, bytes);
  auto loaded = ReadStpqEvents(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST(StpqCorruptionTest, EmptyFileIsCorruption) {
  std::string dir = TempDir("empty");
  std::string path = dir + "/empty.stpq";
  Dump(path, "");
  auto loaded = ReadStpqEvents(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST(StpqCorruptionTest, TruncatedHeaderIsCorruption) {
  std::string dir = TempDir("header");
  std::string path = dir + "/short.stpq";
  std::string bytes(kStpqMagic, sizeof(kStpqMagic));
  bytes.push_back(static_cast<char>(kStpqKindEvent));
  Dump(path, bytes);  // magic + kind, no count
  auto loaded = ReadStpqEvents(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST(StpqCorruptionTest, WrongRecordKindIsCorruption) {
  std::string dir = TempDir("kind");
  std::string path = dir + "/traj.stpq";
  ASSERT_TRUE(
      WriteStpqFile(path, std::vector<TrajRecord>(2)).ok());
  auto loaded = ReadStpqEvents(path);  // events reader on a traj file
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST(StpqCorruptionTest, OversizedCountDoesNotOverAllocate) {
  // A count claiming ~2^60 records in a tiny file must fail as Corruption
  // when the records run out — and must NOT reserve() count slots first
  // (the clamp caps the reserve at file_bytes / min_record_size, so this
  // test completes without exhausting memory).
  std::string dir = TempDir("count");
  std::string path = dir + "/huge.stpq";
  ASSERT_TRUE(WriteStpqFile(path, SomeEvents(2)).ok());
  std::string bytes = Slurp(path);
  uint64_t huge = uint64_t{1} << 60;
  std::memcpy(&bytes[kCountOffset], &huge, sizeof(huge));
  Dump(path, bytes);
  auto loaded = ReadStpqEvents(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST(StpqCorruptionTest, OversizedTrajCountDoesNotOverAllocate) {
  std::string dir = TempDir("tcount");
  std::string path = dir + "/huge.stpq";
  ASSERT_TRUE(WriteStpqFile(path, std::vector<TrajRecord>(1)).ok());
  std::string bytes = Slurp(path);
  uint64_t huge = uint64_t{1} << 61;
  std::memcpy(&bytes[kCountOffset], &huge, sizeof(huge));
  Dump(path, bytes);
  auto loaded = ReadStpqTrajs(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST(StpqCorruptionTest, OverflowingPointCountIsCorruption) {
  // npoints chosen so that npoints * 24 wraps a u64 to a SMALL number: the
  // old `n * 24 > file_bytes` check passed and resize(n) then threw
  // length_error. The divide-form check must reject it as Corruption.
  std::string dir = TempDir("points");
  std::string path = dir + "/wrap.stpq";
  std::string bytes(kStpqMagic, sizeof(kStpqMagic));
  bytes.push_back(static_cast<char>(kStpqKindTraj));
  Append(&bytes, uint64_t{1});                     // one record
  Append(&bytes, int64_t{5});                      // id
  uint64_t wrapping = (uint64_t{1} << 63) + 2;     // * 24 wraps to 48
  Append(&bytes, wrapping);                        // npoints
  Dump(path, bytes);
  auto loaded = ReadStpqTrajs(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
  EXPECT_NE(loaded.status().message().find("point count"), std::string::npos);
}

TEST(StpqCorruptionTest, ImplausibleAttrLengthIsCorruption) {
  // An attr_len bigger than the whole file must be rejected before the
  // resize(len) allocation, not after a 4 GiB read attempt.
  std::string dir = TempDir("attr");
  std::string path = dir + "/attr.stpq";
  std::string bytes(kStpqMagic, sizeof(kStpqMagic));
  bytes.push_back(static_cast<char>(kStpqKindEvent));
  Append(&bytes, uint64_t{1});
  Append(&bytes, int64_t{1});    // id
  Append(&bytes, double{1.0});   // x
  Append(&bytes, double{2.0});   // y
  Append(&bytes, int64_t{3});    // time
  Append(&bytes, uint32_t{0xFFFFFFFF});  // attr_len
  Dump(path, bytes);
  auto loaded = ReadStpqEvents(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
  EXPECT_NE(loaded.status().message().find("attr length"), std::string::npos);
}

TEST(StpqCorruptionTest, TruncatedEventTailIsCorruption) {
  std::string dir = TempDir("tail");
  std::string path = dir + "/tail.stpq";
  ASSERT_TRUE(WriteStpqFile(path, SomeEvents(10)).ok());
  std::string bytes = Slurp(path);
  Dump(path, bytes.substr(0, bytes.size() - 7));
  auto loaded = ReadStpqEvents(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST(StpqCorruptionTest, TruncatedTrajTailIsCorruption) {
  std::string dir = TempDir("ttail");
  std::string path = dir + "/tail.stpq";
  TrajRecord t;
  t.id = 1;
  for (int i = 0; i < 8; ++i) {
    TrajPointRecord p;
    p.x = i;
    p.y = i;
    p.time = i;
    t.points.push_back(p);
  }
  ASSERT_TRUE(WriteStpqFile(path, std::vector<TrajRecord>{t}).ok());
  std::string bytes = Slurp(path);
  Dump(path, bytes.substr(0, bytes.size() - 3));
  auto loaded = ReadStpqTrajs(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST(StpqCorruptionTest, BadMetaHeaderIsCorruption) {
  std::string dir = TempDir("meta");
  std::string path = dir + "/idx.meta";
  Dump(path, "stpq-meta v999\n");
  auto loaded = ReadStpqMeta(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST(StpqCorruptionTest, BadMetaLineIsCorruption) {
  std::string dir = TempDir("metaline");
  std::string path = dir + "/idx.meta";
  Dump(path, "stpq-meta v1\npart-00000.stpq not-a-number\n");
  auto loaded = ReadStpqMeta(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

// ---- atomic publish: writers stage into `<path>.tmp` and rename into
// place, so a torn write can never leave a half-written file under the
// final name.

TEST(StpqCorruptionTest, TornPublishLeavesOriginalIntact) {
  std::string dir = TempDir("tornpub");
  std::string path = dir + "/part.stpq";
  auto original = SomeEvents(5);
  ASSERT_TRUE(WriteStpqFile(path, original).ok());
  std::string before = Slurp(path);

  // Sabotage the staging path: a DIRECTORY at `<path>.tmp` makes the tmp
  // open fail, simulating a publish torn before the rename.
  fs::create_directories(path + ".tmp");
  Status rewrite = WriteStpqFile(path, SomeEvents(50));
  ASSERT_FALSE(rewrite.ok());
  // The previously published file is byte-identical and still loads: a
  // failed publish must be invisible to readers.
  EXPECT_EQ(Slurp(path), before);
  auto loaded = ReadStpqEvents(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), original.size());
  fs::remove_all(path + ".tmp");
}

TEST(StpqCorruptionTest, SuccessfulPublishLeavesNoTmpDebris) {
  std::string dir = TempDir("pubclean");
  std::string path = dir + "/part.stpq";
  ASSERT_TRUE(WriteStpqFile(path, SomeEvents(5)).ok());
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  ASSERT_TRUE(BuildStixForStpq(path, SomeEvents(5)).ok());
  EXPECT_FALSE(fs::exists(StixPathFor(path) + ".tmp"));
}

TEST(StpqCorruptionTest, TornStixPublishLeavesOldSidecarIntact) {
  std::string dir = TempDir("tornstix");
  std::string path = dir + "/part.stpq";
  auto events = SomeEvents(50);
  ASSERT_TRUE(WriteStpqFile(path, events).ok());
  ASSERT_TRUE(BuildStixForStpq(path, events).ok());
  std::string stix = StixPathFor(path);
  std::string before = Slurp(stix);

  fs::create_directories(stix + ".tmp");
  ASSERT_FALSE(BuildStixForStpq(path, events).ok());
  EXPECT_EQ(Slurp(stix), before);
  // The surviving sidecar still validates against its source.
  EXPECT_TRUE(StixIndex::Open(stix, path).ok());
  fs::remove_all(stix + ".tmp");
}

// ---- ranged reads: a sidecar that disagrees with its file must surface as
// Corruption from ReadRecordsAt, never as silently wrong records.

TEST(StpqCorruptionTest, RangedReadVerifiesPromisedByteRun) {
  std::string dir = TempDir("range");
  std::string path = dir + "/part.stpq";
  auto events = SomeEvents(5);
  ASSERT_TRUE(WriteStpqFile(path, events).ok());
  uint64_t first_bytes = StpqRecordBytes(events[0]);

  auto reader = StpqReader::Open(path, kStpqKindEvent);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  std::vector<EventRecord> out;
  // Promise one record but a byte run that spans two: parse must notice
  // the leftover bytes instead of returning a short read.
  Status mismatched = reader->ReadRecordsAt(
      kStpqHeaderBytes, kStpqHeaderBytes + first_bytes + 4, 1, &out);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.code(), Status::Code::kCorruption);
}

TEST(StpqCorruptionTest, RangedReadRejectsRunPastEof) {
  std::string dir = TempDir("rangeeof");
  std::string path = dir + "/part.stpq";
  ASSERT_TRUE(WriteStpqFile(path, SomeEvents(3)).ok());
  auto reader = StpqReader::Open(path, kStpqKindEvent);
  ASSERT_TRUE(reader.ok());
  std::vector<EventRecord> out;
  uint64_t eof = reader->file_bytes();
  Status past = reader->ReadRecordsAt(eof - 4, eof + 64, 1, &out);
  ASSERT_FALSE(past.ok());
  EXPECT_EQ(past.code(), Status::Code::kCorruption);
}

// ---- `.stix` sidecar: a damaged index must be rejected by Open's
// validation (InvalidArgument), leaving the planner to fall back to a
// linear scan of the intact .stpq. The full mutation matrix lives in
// stix_test.cc; this spot-checks the reader-facing contract.

TEST(StpqCorruptionTest, StixBadMagicIsInvalidArgument) {
  std::string dir = TempDir("stixmagic");
  std::string path = dir + "/part.stpq";
  auto events = SomeEvents(50);
  ASSERT_TRUE(WriteStpqFile(path, events).ok());
  ASSERT_TRUE(BuildStixForStpq(path, events).ok());
  std::string stix = StixPathFor(path);
  std::string bytes = Slurp(stix);
  bytes[0] = 'Q';
  Dump(stix, bytes);
  auto index = StixIndex::Open(stix, path);
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), Status::Code::kInvalidArgument);
  // The data file itself is untouched and still loads.
  EXPECT_TRUE(ReadStpqEvents(path).ok());
}

TEST(StpqCorruptionTest, StixTruncationIsInvalidArgument) {
  std::string dir = TempDir("stixtrunc");
  std::string path = dir + "/part.stpq";
  auto events = SomeEvents(50);
  ASSERT_TRUE(WriteStpqFile(path, events).ok());
  ASSERT_TRUE(BuildStixForStpq(path, events).ok());
  std::string stix = StixPathFor(path);
  std::string bytes = Slurp(stix);
  Dump(stix, bytes.substr(0, bytes.size() / 3));
  auto index = StixIndex::Open(stix, path);
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), Status::Code::kInvalidArgument);
}

TEST(StpqCorruptionTest, StixStaleAfterSourceRewriteIsInvalidArgument) {
  std::string dir = TempDir("stixstale");
  std::string path = dir + "/part.stpq";
  auto events = SomeEvents(50);
  ASSERT_TRUE(WriteStpqFile(path, events).ok());
  ASSERT_TRUE(BuildStixForStpq(path, events).ok());
  ASSERT_TRUE(WriteStpqFile(path, SomeEvents(60)).ok());  // invalidates
  auto index = StixIndex::Open(StixPathFor(path), path);
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(index.status().message().find("stale"), std::string::npos);
}

}  // namespace
}  // namespace st4ml
