#include "storage/csv.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/json.h"
#include "storage/text_import.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("st4ml_text_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TEST(CsvTest, RoundTripWithQuoting) {
  std::string dir = TempDir("csv");
  std::string path = dir + "/out.csv";
  std::vector<std::vector<std::string>> rows = {
      {"1", "plain", "3.5"},
      {"2", "with,comma", "4.5"},
      {"3", "with\"quote", "5.5"},
  };
  ASSERT_TRUE(WriteCsv(path, {"id", "label", "value"}, rows).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 4u);  // header + 3 rows
  EXPECT_EQ((*loaded)[0][1], "label");
  EXPECT_EQ((*loaded)[2][1], "with,comma");
  EXPECT_EQ((*loaded)[3][1], "with\"quote");
}

TEST(CsvTest, WidthMismatchIsInvalidArgument) {
  std::string dir = TempDir("width");
  auto status = WriteCsv(dir + "/bad.csv", {"a", "b"}, {{"only-one"}});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
}

TEST(JsonTest, ObjectRendering) {
  JsonObject obj;
  obj.Add("name", "st4ml").Add("count", int64_t{42}).Add("ratio", 0.5);
  obj.Add("ok", true).AddRaw("nested", "[1,2]");
  std::string json = obj.Str();
  EXPECT_NE(json.find("\"name\":\"st4ml\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"nested\":[1,2]"), std::string::npos) << json;
}

TEST(JsonTest, QuoteEscapesControlCharacters) {
  std::string quoted = JsonQuote("a\"b\\c\nd");
  EXPECT_EQ(quoted, "\"a\\\"b\\\\c\\nd\"");
}

TEST(TextImportTest, EventsCsv) {
  std::string dir = TempDir("events");
  std::string path = dir + "/events.csv";
  std::ofstream(path) << "id,x,y,time,attr\n"
                      << "7,-73.99,40.75,1600000000,cab\n"
                      << "8,-73.95,40.70,1600000100,\n";
  auto events = ImportEventsCsv(path);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[0].id, 7);
  EXPECT_DOUBLE_EQ((*events)[0].x, -73.99);
  EXPECT_EQ((*events)[0].attr, "cab");
  EXPECT_EQ((*events)[1].time, 1600000100);
}

TEST(TextImportTest, TrajsCsvGroupsAndSortsByTime) {
  std::string dir = TempDir("trajs");
  std::string path = dir + "/trajs.csv";
  std::ofstream(path) << "id,x,y,time\n"
                      << "1,0.0,0.0,30\n"
                      << "2,5.0,5.0,10\n"
                      << "1,1.0,1.0,10\n"
                      << "1,2.0,2.0,20\n";
  auto trajs = ImportTrajsCsv(path);
  ASSERT_TRUE(trajs.ok()) << trajs.status().ToString();
  ASSERT_EQ(trajs->size(), 2u);
  const TrajRecord& first = (*trajs)[0].id == 1 ? (*trajs)[0] : (*trajs)[1];
  ASSERT_EQ(first.points.size(), 3u);
  EXPECT_EQ(first.points[0].time, 10);
  EXPECT_EQ(first.points[2].time, 30);
  EXPECT_DOUBLE_EQ(first.points[0].x, 1.0);
}

TEST(TextImportTest, MalformedNumberIsCorruption) {
  std::string dir = TempDir("bad");
  std::string path = dir + "/bad.csv";
  std::ofstream(path) << "id,x,y,time,attr\n"
                      << "1,not-a-number,2.0,100,x\n";
  auto events = ImportEventsCsv(path);
  ASSERT_FALSE(events.ok());
  EXPECT_EQ(events.status().code(), Status::Code::kCorruption);
}

}  // namespace
}  // namespace st4ml
