#include "mapmatching/hmm_map_matcher.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "engine/execution_context.h"
#include "mapmatching/road_network.h"

namespace st4ml {
namespace {

/// A 4-node corridor: three segment pairs laid out west-to-east then north.
///
///   n0 --(1)-- n1 --(2)-- n2
///                          |
///                         (3)
///                          |
///                         n3
std::shared_ptr<RoadNetwork> CorridorNetwork() {
  auto network = std::make_shared<RoadNetwork>();
  int32_t n0 = network->AddNode(Point(116.00, 40.00));
  int32_t n1 = network->AddNode(Point(116.01, 40.00));
  int32_t n2 = network->AddNode(Point(116.02, 40.00));
  int32_t n3 = network->AddNode(Point(116.02, 40.01));
  auto add_pair = [&](int64_t id, int32_t a, int32_t b) {
    RoadSegment forward;
    forward.id = id;
    forward.shape = LineString({network->node(a), network->node(b)});
    forward.from_node = a;
    forward.to_node = b;
    forward.length_m = forward.shape.LengthMeters();
    network->AddSegment(forward);
    RoadSegment reverse = forward;
    reverse.id = -id;
    reverse.shape = LineString({network->node(b), network->node(a)});
    reverse.from_node = b;
    reverse.to_node = a;
    network->AddSegment(reverse);
  };
  add_pair(1, n0, n1);
  add_pair(2, n1, n2);
  add_pair(3, n2, n3);
  return network;
}

STTrajectory CorridorDrive() {
  STTrajectory t;
  t.data = 99;
  int64_t time = 0;
  // Eastbound along segment 1 then 2, slightly north of the centerline.
  for (double x = 116.001; x < 116.0195; x += 0.003) {
    STEntry e;
    e.point = Point(x, 40.00005);
    e.time = time;
    time += 30;
    t.entries.push_back(e);
  }
  // Northbound along segment 3.
  for (double y = 40.002; y < 40.0095; y += 0.003) {
    STEntry e;
    e.point = Point(116.02005, y);
    e.time = time;
    time += 30;
    t.entries.push_back(e);
  }
  return t;
}

TEST(MapMatchingTest, SnapsCorridorDriveToExpectedSegments) {
  auto ctx = ExecutionContext::Create(1);
  auto network = CorridorNetwork();
  STTrajectory drive = CorridorDrive();
  auto data = Dataset<STTrajectory>::Parallelize(ctx, {drive}, 1);
  auto matched = MapMatchTrajectories(data, network, MapMatchOptions{}).Collect();
  ASSERT_EQ(matched.size(), 1u);
  const Trajectory<int64_t, int64_t>& result = matched[0];
  EXPECT_EQ(result.data, 99);
  ASSERT_EQ(result.entries.size(), drive.entries.size());

  // Times survive matching; segment magnitudes progress 1 -> 2 -> 3 without
  // ever stepping backwards along the corridor.
  int64_t prev_mag = 1;
  for (size_t i = 0; i < result.entries.size(); ++i) {
    EXPECT_EQ(result.entries[i].time, drive.entries[i].time);
    int64_t mag = std::llabs(result.entries[i].value);
    EXPECT_GE(mag, 1);
    EXPECT_LE(mag, 3);
    EXPECT_GE(mag, prev_mag) << "sample " << i << " stepped backwards";
    prev_mag = mag;
  }
  EXPECT_EQ(std::llabs(result.entries.front().value), 1);
  EXPECT_EQ(std::llabs(result.entries.back().value), 3);
}

TEST(MapMatchingTest, DropsSamplesBeyondCandidateRadius) {
  auto ctx = ExecutionContext::Create(1);
  auto network = CorridorNetwork();
  STTrajectory t;
  t.data = 5;
  STEntry on_road;
  on_road.point = Point(116.005, 40.0001);
  on_road.time = 0;
  STEntry off_road;
  off_road.point = Point(117.5, 41.5);  // ~140 km away
  off_road.time = 30;
  STEntry back;
  back.point = Point(116.006, 40.0001);
  back.time = 60;
  t.entries = {on_road, off_road, back};
  auto data = Dataset<STTrajectory>::Parallelize(ctx, {t}, 1);
  auto matched = MapMatchTrajectories(data, network, MapMatchOptions{}).Collect();
  ASSERT_EQ(matched.size(), 1u);
  ASSERT_EQ(matched[0].entries.size(), 2u);
  EXPECT_EQ(matched[0].entries[0].time, 0);
  EXPECT_EQ(matched[0].entries[1].time, 60);
  EXPECT_EQ(std::llabs(matched[0].entries[0].value), 1);
}

TEST(MapMatchingTest, ContinuityBreaksNearestSegmentTies) {
  auto ctx = ExecutionContext::Create(1);
  auto network = CorridorNetwork();
  // Samples hug segment 1, then one ambiguous sample sits at the shared node
  // n1 (equidistant from segments 1 and 2). Transition continuity must keep
  // it on a segment adjacent to the previous one rather than teleporting.
  STTrajectory t;
  t.data = 6;
  int64_t time = 0;
  for (double x : {116.002, 116.005, 116.008, 116.01}) {
    STEntry e;
    e.point = Point(x, 40.0);
    e.time = time;
    time += 30;
    t.entries.push_back(e);
  }
  auto data = Dataset<STTrajectory>::Parallelize(ctx, {t}, 1);
  auto matched = MapMatchTrajectories(data, network, MapMatchOptions{}).Collect();
  ASSERT_EQ(matched.size(), 1u);
  for (const auto& entry : matched[0].entries) {
    EXPECT_LE(std::llabs(entry.value), 2);
  }
}

TEST(RoadNetworkTest, AdjacencyFollowsFromNode) {
  auto network = CorridorNetwork();
  EXPECT_EQ(network->num_nodes(), 4u);
  EXPECT_EQ(network->num_segments(), 6u);
  // Outgoing of n1: segment 2 (n1->n2) and reverse segment -1 (n1->n0).
  std::vector<int64_t> ids;
  for (int32_t s : network->outgoing(1)) ids.push_back(network->segment(s).id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<int64_t>{-1, 2}));
  EXPECT_TRUE(network->extent().ContainsPoint(Point(116.01, 40.005)));
}

}  // namespace
}  // namespace st4ml
