#include "baselines/geospark_like.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/geomesa_like.h"
#include "common/rng.h"
#include "selection/on_disk_index.h"
#include "selection/selector.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("st4ml_baselines_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<EventRecord> RandomEvents(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<EventRecord> events;
  events.reserve(n);
  for (int i = 0; i < n; ++i) {
    EventRecord r;
    r.id = i;
    r.x = rng.Uniform(0, 50);
    r.y = rng.Uniform(0, 50);
    r.time = rng.UniformInt(0, 50000);
    r.attr = "a";
    events.push_back(r);
  }
  return events;
}

std::vector<int64_t> SortedIds(const std::vector<GeoObject>& objects) {
  std::vector<int64_t> ids;
  for (const GeoObject& o : objects) ids.push_back(o.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(GeoObjectTest, EventRoundTripKeepsStringTimes) {
  EventRecord r;
  r.id = 12;
  r.x = 1.5;
  r.y = 2.5;
  r.time = 777;
  r.attr = "fare=3";
  GeoObject o = GeoObjectFromEvent(r);
  EXPECT_EQ(o.id, 12);
  EXPECT_EQ(ParseGeoObjectTimes(o), (std::vector<int64_t>{777}));
  EXPECT_EQ(ParseGeoObjectAux(o), "fare=3");
}

TEST(GeoObjectTest, TrajTimesAreCommaJoined) {
  TrajRecord t;
  t.id = 3;
  t.points = {{0.0, 0.0, 10}, {1.0, 1.0, 20}, {2.0, 2.0, 30}};
  GeoObject o = GeoObjectFromTraj(t);
  EXPECT_EQ(ParseGeoObjectTimes(o), (std::vector<int64_t>{10, 20, 30}));
}

class BaselineEqualityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_ = ExecutionContext::Create(2);
    events_ = RandomEvents(2000, 51);
    auto data = Dataset<EventRecord>::Parallelize(ctx_, events_, 4);

    plain_dir_ = TempDir("plain");
    ASSERT_TRUE(PersistDataset(data, plain_dir_).ok());

    st4ml_dir_ = TempDir("st4ml");
    meta_ = st4ml_dir_ + "/index.meta";
    TSTRPartitioner partitioner(4, 4);
    ASSERT_TRUE(BuildOnDiskIndex(data, &partitioner, st4ml_dir_, meta_).ok());

    geomesa_dir_ = TempDir("geomesa");
    GeoMesaLike geomesa(ctx_);
    ASSERT_TRUE(geomesa.IngestEvents(events_, geomesa_dir_).ok());
  }

  std::shared_ptr<ExecutionContext> ctx_;
  std::vector<EventRecord> events_;
  std::string plain_dir_;
  std::string st4ml_dir_;
  std::string meta_;
  std::string geomesa_dir_;
};

TEST_F(BaselineEqualityTest, AllThreeSystemsSelectTheSameRecords) {
  std::vector<STBox> queries = {
      STBox(Mbr(5, 5, 20, 20), Duration(0, 25000)),
      STBox(Mbr(0, 0, 50, 50), Duration(0, 50000)),
      STBox(Mbr(30, 10, 45, 18), Duration(40000, 48000)),
  };
  for (const STBox& query : queries) {
    // ST4ML: metadata-pruned selection.
    Selector<EventRecord> selector(ctx_, SelectQuery::FromBox(query));
    auto st4ml_result = selector.Select(st4ml_dir_, meta_);
    ASSERT_TRUE(st4ml_result.ok());
    std::vector<int64_t> st4ml_ids;
    for (const EventRecord& r : st4ml_result->Collect()) {
      st4ml_ids.push_back(r.id);
    }
    std::sort(st4ml_ids.begin(), st4ml_ids.end());

    // GeoSpark: load everything, spatial range query, temporal afterthought.
    GeoSparkLike geospark(ctx_);
    auto loaded = geospark.LoadAllEvents(plain_dir_);
    ASSERT_TRUE(loaded.ok());
    auto spatial = geospark.RangeQuery(*loaded, query.mbr);
    auto both = GeoSparkLike::TemporalFilter(spatial, query.time);
    std::vector<int64_t> geospark_ids = SortedIds(both.Collect());

    // GeoMesa: Z2-block-pruned selection with the same refine predicates.
    GeoMesaLike geomesa(ctx_);
    auto mesa = geomesa.SelectEvents(geomesa_dir_, query.mbr, query.time);
    ASSERT_TRUE(mesa.ok()) << mesa.status().ToString();
    std::vector<int64_t> geomesa_ids = SortedIds(mesa->Collect());

    EXPECT_EQ(geospark_ids, st4ml_ids);
    EXPECT_EQ(geomesa_ids, st4ml_ids);
  }
}

TEST_F(BaselineEqualityTest, GeoMesaIngestWritesPrunableBlocks) {
  size_t total_blocks = ListStpqFiles(geomesa_dir_).size();
  EXPECT_GT(total_blocks, 1u);
  // A tiny spatial query must not need every block: compare bytes loaded by
  // an exhaustive GeoSpark scan vs the GeoMesa selection path indirectly, by
  // asserting the pruned record superset matches after refine (above) while
  // the block count exceeds one, i.e. pruning is at least possible.
  GeoMesaLike geomesa(ctx_);
  auto tiny = geomesa.SelectEvents(geomesa_dir_, Mbr(1, 1, 2, 2),
                                   Duration(0, 50000));
  ASSERT_TRUE(tiny.ok());
  std::vector<int64_t> expected;
  for (const EventRecord& r : events_) {
    if (Mbr(1, 1, 2, 2).ContainsPoint(Point(r.x, r.y))) {
      expected.push_back(r.id);
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(SortedIds(tiny->Collect()), expected);
}

TEST(GeoSparkTrajTest, TrajSpanPredicateMatchesStpqBoxes) {
  auto ctx = ExecutionContext::Create(2);
  Rng rng(52);
  std::vector<TrajRecord> trajs;
  for (int i = 0; i < 300; ++i) {
    TrajRecord t;
    t.id = i;
    int64_t start = rng.UniformInt(0, 40000);
    int points = static_cast<int>(rng.UniformInt(2, 10));
    double x = rng.Uniform(0, 50), y = rng.Uniform(0, 50);
    for (int k = 0; k < points; ++k) {
      t.points.push_back({x + k * 0.01, y, start + k * 15});
    }
    trajs.push_back(t);
  }
  std::string dir = TempDir("trajs");
  auto data = Dataset<TrajRecord>::Parallelize(ctx, trajs, 3);
  ASSERT_TRUE(PersistDataset(data, dir).ok());

  STBox query(Mbr(10, 10, 35, 35), Duration(10000, 30000));
  GeoSparkLike geospark(ctx);
  auto loaded = geospark.LoadAllTrajs(dir);
  ASSERT_TRUE(loaded.ok());
  auto selected = GeoSparkLike::TemporalFilter(
      geospark.RangeQuery(*loaded, query.mbr), query.time);
  std::vector<int64_t> expected;
  for (const TrajRecord& t : trajs) {
    if (t.ComputeSTBox().Intersects(query)) expected.push_back(t.id);
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(SortedIds(selected.Collect()), expected);
}

}  // namespace
}  // namespace st4ml
