#include "conversion/singular_to_collective.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "conversion/shuffle_conversion.h"
#include "engine/execution_context.h"
#include "engine/pair_ops.h"

namespace st4ml {
namespace {

std::vector<STEvent> RandomEvents(int n, uint64_t seed, const Mbr& extent,
                                  const Duration& range) {
  Rng rng(seed);
  std::vector<STEvent> events;
  events.reserve(n);
  for (int i = 0; i < n; ++i) {
    STEvent e;
    e.spatial = Point(rng.Uniform(extent.x_min, extent.x_max),
                      rng.Uniform(extent.y_min, extent.y_max));
    e.temporal = Duration(rng.UniformInt(range.start(), range.end()));
    e.data.id = i;
    events.push_back(e);
  }
  return events;
}

std::vector<STTrajectory> RandomTrajs(int n, uint64_t seed, const Mbr& extent,
                                      const Duration& range) {
  Rng rng(seed);
  std::vector<STTrajectory> trajs;
  trajs.reserve(n);
  for (int i = 0; i < n; ++i) {
    STTrajectory t;
    t.data = i;
    int points = static_cast<int>(rng.UniformInt(2, 12));
    int64_t start = rng.UniformInt(range.start(), range.end() - 600);
    double x = rng.Uniform(extent.x_min, extent.x_max);
    double y = rng.Uniform(extent.y_min, extent.y_max);
    for (int k = 0; k < points; ++k) {
      STEntry entry;
      entry.point = Point(x, y);
      entry.time = start + k * 60;
      t.entries.push_back(entry);
      x += rng.Uniform(-0.4, 0.4);
      y += rng.Uniform(-0.4, 0.4);
    }
    trajs.push_back(t);
  }
  return trajs;
}

/// Merged per-bin event counts across partitions, as one flat vector.
template <typename Coll>
std::vector<std::vector<int64_t>> MergedIds(const std::vector<Coll>& pieces) {
  std::vector<std::vector<int64_t>> ids;
  if (pieces.empty()) return ids;
  ids.resize(pieces[0].size());
  for (const Coll& piece : pieces) {
    for (size_t i = 0; i < piece.size(); ++i) {
      for (const auto& item : piece.value(i)) {
        if constexpr (std::is_same_v<std::decay_t<decltype(item)>, STEvent>) {
          ids[i].push_back(item.data.id);
        } else {
          ids[i].push_back(item.data);
        }
      }
    }
  }
  for (auto& bucket : ids) std::sort(bucket.begin(), bucket.end());
  return ids;
}

class ConversionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_ = ExecutionContext::Create(2);
    extent_ = Mbr(0, 0, 10, 10);
    range_ = Duration(0, 36000);
    events_ = RandomEvents(800, 41, extent_, range_);
    trajs_ = RandomTrajs(200, 42, extent_, range_);
    event_data_ = Dataset<STEvent>::Parallelize(ctx_, events_, 4);
    traj_data_ = Dataset<STTrajectory>::Parallelize(ctx_, trajs_, 4);
  }

  std::shared_ptr<ExecutionContext> ctx_;
  Mbr extent_;
  Duration range_;
  std::vector<STEvent> events_;
  std::vector<STTrajectory> trajs_;
  Dataset<STEvent> event_data_;
  Dataset<STTrajectory> traj_data_;
};

TEST_F(ConversionTest, EventToTimeSeriesFirstBinSemantics) {
  auto structure =
      std::make_shared<TemporalStructure>(TemporalStructure::Regular(range_, 10));
  TimeSeriesConverter<STEvent> converter(structure);
  auto series = converter.Convert(event_data_).Collect();
  auto merged = MergedIds(series);

  std::vector<std::vector<int64_t>> expected(structure->size());
  for (const STEvent& e : events_) {
    for (size_t i = 0; i < structure->size(); ++i) {
      if (structure->bin(i).Contains(e.temporal.start())) {
        expected[i].push_back(e.data.id);  // FIRST containing bin only
        break;
      }
    }
  }
  for (auto& bucket : expected) std::sort(bucket.begin(), bucket.end());
  EXPECT_EQ(merged, expected);
}

TEST_F(ConversionTest, TrajToTimeSeriesJoinsEveryIntersectingBin) {
  auto structure =
      std::make_shared<TemporalStructure>(TemporalStructure::Regular(range_, 6));
  TimeSeriesConverter<STTrajectory> converter(structure);
  auto merged = MergedIds(converter.Convert(traj_data_).Collect());

  std::vector<std::vector<int64_t>> expected(structure->size());
  for (const STTrajectory& t : trajs_) {
    Duration span = t.TemporalExtent();
    for (size_t i = 0; i < structure->size(); ++i) {
      if (structure->bin(i).Intersects(span)) expected[i].push_back(t.data);
    }
  }
  for (auto& bucket : expected) std::sort(bucket.begin(), bucket.end());
  EXPECT_EQ(merged, expected);
}

TEST_F(ConversionTest, NaiveAndRtreeStrategiesAgreeOnGrid) {
  auto grid = std::make_shared<SpatialStructure>(
      SpatialStructure::Grid(extent_, 5, 5));
  SpatialMapConverter<STEvent> naive(grid, ConversionStrategy::kNaive);
  SpatialMapConverter<STEvent> rtree(grid, ConversionStrategy::kRTree);
  SpatialMapConverter<STEvent> automatic(grid, ConversionStrategy::kAuto);
  auto a = MergedIds(naive.Convert(event_data_).Collect());
  auto b = MergedIds(rtree.Convert(event_data_).Collect());
  auto c = MergedIds(automatic.Convert(event_data_).Collect());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST_F(ConversionTest, NaiveAndRtreeStrategiesAgreeOnOverlappingIrregular) {
  // Overlapping cells exercise first-match semantics in the indexed path.
  std::vector<Polygon> cells;
  for (int i = 0; i < 12; ++i) {
    double x = (i % 4) * 2.5, y = (i / 4) * 3.0;
    cells.push_back(Polygon::FromMbr(Mbr(x, y, x + 3.5, y + 4.0)));
  }
  auto irregular =
      std::make_shared<SpatialStructure>(SpatialStructure::Irregular(cells));
  SpatialMapConverter<STEvent> naive(irregular, ConversionStrategy::kNaive);
  SpatialMapConverter<STEvent> rtree(irregular, ConversionStrategy::kRTree);
  EXPECT_EQ(MergedIds(naive.Convert(event_data_).Collect()),
            MergedIds(rtree.Convert(event_data_).Collect()));

  SpatialMapConverter<STTrajectory> tn(irregular, ConversionStrategy::kNaive);
  SpatialMapConverter<STTrajectory> tr(irregular, ConversionStrategy::kRTree);
  EXPECT_EQ(MergedIds(tn.Convert(traj_data_).Collect()),
            MergedIds(tr.Convert(traj_data_).Collect()));
}

TEST_F(ConversionTest, RasterCrossProductSemantics) {
  auto raster = std::make_shared<RasterStructure>(
      RasterStructure::Regular(extent_, 3, 3, range_, 4));
  RasterConverter<STTrajectory> converter(raster);
  auto merged = MergedIds(converter.Convert(traj_data_).Collect());

  const SpatialStructure& s = raster->spatial();
  const TemporalStructure& ts = raster->temporal();
  std::vector<std::vector<int64_t>> expected(raster->size());
  for (const STTrajectory& t : trajs_) {
    LineString shape = t.Shape();
    Duration span = t.TemporalExtent();
    for (size_t bin = 0; bin < ts.size(); ++bin) {
      if (!ts.bin(bin).Intersects(span)) continue;
      for (size_t cell = 0; cell < s.size(); ++cell) {
        if (shape.IntersectsMbr(s.cell_mbr(cell))) {
          expected[raster->FlatIndex(cell, bin)].push_back(t.data);
        }
      }
    }
  }
  for (auto& bucket : expected) std::sort(bucket.begin(), bucket.end());
  EXPECT_EQ(merged, expected);
}

TEST_F(ConversionTest, PreAndAggRunPerPartition) {
  auto structure =
      std::make_shared<TemporalStructure>(TemporalStructure::Regular(range_, 5));
  TimeSeriesConverter<STEvent> converter(structure);
  auto counts = converter
                    .Convert(
                        event_data_, [](const STEvent&) { return int64_t{1}; },
                        [](const std::vector<int64_t>& ones) {
                          return static_cast<int64_t>(ones.size());
                        })
                    .Collect();
  std::vector<int64_t> total(structure->size(), 0);
  for (const auto& piece : counts) {
    for (size_t i = 0; i < piece.size(); ++i) total[i] += piece.value(i);
  }
  int64_t sum = 0;
  for (int64_t c : total) sum += c;
  EXPECT_EQ(sum, static_cast<int64_t>(events_.size()));
}

TEST_F(ConversionTest, BroadcastAndShuffleDesignsAgree) {
  auto grid = std::make_shared<SpatialStructure>(
      SpatialStructure::Grid(extent_, 4, 4));
  auto count = [](const std::vector<STEvent>& items) {
    return static_cast<int64_t>(items.size());
  };
  ctx_->ResetMetrics();
  SpatialMapConverter<STEvent> broadcast_conv(grid);
  auto pieces = broadcast_conv.Convert(event_data_, conversion_internal::IdentityPre{},
                                       count)
                    .Collect();
  std::vector<int64_t> broadcast_counts(grid->size(), 0);
  for (const auto& piece : pieces) {
    for (size_t i = 0; i < piece.size(); ++i) {
      broadcast_counts[i] += piece.value(i);
    }
  }
  uint64_t broadcasts = ctx_->MetricsSnapshot().broadcasts();
  uint64_t shuffled_before = ctx_->MetricsSnapshot().shuffle_records();

  auto shuffled = ConvertToSpatialMapByShuffle(event_data_, grid, count);
  EXPECT_EQ(shuffled.values(), broadcast_counts);
  // The broadcast design ships the structure, not the records.
  EXPECT_GE(broadcasts, 1u);
  EXPECT_EQ(shuffled_before, 0u);
  EXPECT_GT(ctx_->MetricsSnapshot().shuffle_records(), 0u);
}

}  // namespace
}  // namespace st4ml
