#include "instances/structures.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/polygon.h"

namespace st4ml {
namespace {

TEST(TemporalStructureTest, RegularSplitsEvenly) {
  TemporalStructure ts = TemporalStructure::Regular(Duration(0, 7200), 2);
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.bin(0).start(), 0);
  EXPECT_EQ(ts.bin(1).start(), 3600);
}

TEST(TemporalStructureTest, FindBinReturnsFirstContaining) {
  TemporalStructure ts = TemporalStructure::Regular(Duration(0, 7200), 2);
  EXPECT_EQ(ts.FindBin(0), 0u);
  EXPECT_EQ(ts.FindBin(3599), 0u);
  EXPECT_EQ(ts.FindBin(3600), 0u);  // boundary: FIRST containing bin wins
  EXPECT_EQ(ts.FindBin(3601), 1u);
  EXPECT_EQ(ts.FindBin(7200), 1u);
  EXPECT_EQ(ts.FindBin(9999), TemporalStructure::kNoBin);
  EXPECT_EQ(ts.FindBin(-1), TemporalStructure::kNoBin);
}

TEST(TemporalStructureTest, IntersectingBinsByExtentOverlap) {
  TemporalStructure ts = TemporalStructure::Regular(Duration(0, 10800), 3);
  std::vector<size_t> bins = ts.IntersectingBins(Duration(3000, 7300));
  EXPECT_EQ(bins, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(ts.IntersectingBins(Duration(100, 200)),
            (std::vector<size_t>{0}));
  EXPECT_TRUE(ts.IntersectingBins(Duration(20000, 20001)).empty());
}

TEST(TemporalStructureTest, IrregularKeepsGivenBins) {
  TemporalStructure ts = TemporalStructure::Irregular(
      {Duration(0, 10), Duration(100, 200), Duration(150, 300)});
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.FindBin(160), 1u);  // first containing, despite overlap
}

TEST(SpatialStructureTest, GridRowMajorLayout) {
  SpatialStructure grid = SpatialStructure::Grid(Mbr(0, 0, 4, 2), 4, 2);
  ASSERT_EQ(grid.size(), 8u);
  EXPECT_TRUE(grid.is_grid());
  // y-outer, x-inner: cell 0 at (x=[0,1], y=[0,1]), cell 1 at x=[1,2] ...
  EXPECT_DOUBLE_EQ(grid.cell_mbr(0).x_min, 0.0);
  EXPECT_DOUBLE_EQ(grid.cell_mbr(1).x_min, 1.0);
  EXPECT_DOUBLE_EQ(grid.cell_mbr(4).y_min, 1.0);
  EXPECT_DOUBLE_EQ(grid.cell_mbr(7).x_max, 4.0);
  EXPECT_DOUBLE_EQ(grid.cell_mbr(7).y_max, 2.0);
}

TEST(SpatialStructureTest, FindCellFirstMatchOnSharedEdges) {
  SpatialStructure grid = SpatialStructure::Grid(Mbr(0, 0, 2, 2), 2, 2);
  // The shared edge x=1 belongs to BOTH cells 0 and 1; first match wins.
  EXPECT_EQ(grid.FindCell(Point(1.0, 0.5)), 0u);
  EXPECT_EQ(grid.FindCell(Point(1.5, 0.5)), 1u);
  EXPECT_EQ(grid.FindCell(Point(0.5, 1.5)), 2u);
  EXPECT_EQ(grid.FindCell(Point(3.0, 0.5)), SpatialStructure::kNoCell);
}

TEST(SpatialStructureTest, ContainingCellsListsAllOnBoundary) {
  SpatialStructure grid = SpatialStructure::Grid(Mbr(0, 0, 2, 2), 2, 2);
  std::vector<size_t> cells = grid.ContainingCells(Point(1.0, 1.0));
  EXPECT_EQ(cells, (std::vector<size_t>{0, 1, 2, 3}));  // corner of all four
  EXPECT_EQ(grid.ContainingCells(Point(0.5, 0.5)), (std::vector<size_t>{0}));
}

TEST(SpatialStructureTest, IntersectingCellsForLine) {
  SpatialStructure grid = SpatialStructure::Grid(Mbr(0, 0, 4, 4), 4, 4);
  // A diagonal crossing the lower-left quadrant.
  LineString diag({Point(0.5, 0.5), Point(1.5, 1.5)});
  std::vector<size_t> cells = grid.IntersectingCells(diag);
  // Crosses cells (0,0), (1,0)?, (0,1)?, (1,1): the exact rectangle predicate
  // counts edge touches, so at least the two diagonal cells appear.
  EXPECT_NE(std::find(cells.begin(), cells.end(), 0u), cells.end());
  EXPECT_NE(std::find(cells.begin(), cells.end(), 5u), cells.end());
}

TEST(SpatialStructureTest, IrregularUsesPolygonPredicates) {
  std::vector<Polygon> cells = {Polygon::FromMbr(Mbr(0, 0, 1, 1)),
                                Polygon::FromMbr(Mbr(2, 2, 3, 3))};
  SpatialStructure irregular = SpatialStructure::Irregular(cells);
  EXPECT_FALSE(irregular.is_grid());
  EXPECT_EQ(irregular.FindCell(Point(0.5, 0.5)), 0u);
  EXPECT_EQ(irregular.FindCell(Point(2.5, 2.5)), 1u);
  EXPECT_EQ(irregular.FindCell(Point(1.5, 1.5)), SpatialStructure::kNoCell);
  LineString through({Point(-1, 0.5), Point(5, 0.5)});
  EXPECT_EQ(irregular.IntersectingCells(through), (std::vector<size_t>{0}));
}

TEST(RasterStructureTest, BinMajorFlatLayout) {
  RasterStructure raster =
      RasterStructure::Regular(Mbr(0, 0, 2, 2), 2, 2, Duration(0, 7200), 2);
  EXPECT_EQ(raster.num_cells(), 4u);
  EXPECT_EQ(raster.num_bins(), 2u);
  EXPECT_EQ(raster.size(), 8u);
  EXPECT_EQ(raster.FlatIndex(3, 1), 1u * 4u + 3u);
  EXPECT_EQ(raster.bin(5).start(), 3600);   // flat 5 -> bin 1
  EXPECT_DOUBLE_EQ(raster.cell(5).mbr().x_min, 1.0);  // flat 5 -> cell 1
}

}  // namespace
}  // namespace st4ml
