// Kernel backend differential tests (ISSUE 7): every compiled-in backend
// the CPU supports must produce BIT-identical outputs to the scalar
// reference on every kernel, across the inputs that break naive SIMD
// ports — NaN/±inf coordinates, empty batches, batch sizes straddling the
// vector width (w-1, w, w+1), unaligned tails (offset base pointers),
// inverted (degenerate) boxes on both the record and the query side —
// plus registry dispatch: CPUID-gated availability, ST4ML_BACKEND /
// ForceBackend override semantics, and the PairHash == HashCombine
// contract the batched shuffle hashing depends on.

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "accel/hash_mix.h"
#include "accel/kernels.h"
#include "common/rng.h"
#include "engine/pair_ops.h"
#include "geometry/point.h"

namespace st4ml {
namespace accel {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Batch sizes around every vector width in play (SSE2: 2, AVX2: 4,
/// MinMaxSum stride: 8), plus empty and "large with a ragged tail".
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 64, 1001};

/// A deterministic coordinate stream with adversarial values sprinkled in:
/// every 13th value is NaN, every 17th ±inf, every 11th a denormal-ish
/// tiny, occasionally -0.0.
std::vector<double> AdversarialDoubles(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    if (i % 13 == 5) {
      v[i] = kNaN;
    } else if (i % 17 == 3) {
      v[i] = (i % 2 == 0) ? kInf : -kInf;
    } else if (i % 11 == 7) {
      v[i] = 1e-310;  // subnormal range
    } else if (i % 23 == 9) {
      v[i] = -0.0;
    } else {
      v[i] = rng.Uniform(-180, 180);
    }
  }
  return v;
}

std::vector<int64_t> RandomTimes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = rng.UniformInt(-100000, 100000);
  return v;
}

/// All backends beyond scalar that this binary + CPU can run.
std::vector<const KernelBackend*> SimdBackends() {
  std::vector<const KernelBackend*> out;
  for (const KernelBackend* b : BackendRegistry::Instance().Available()) {
    if (std::string(b->name()) != "scalar") out.push_back(b);
  }
  return out;
}

const KernelBackend& Scalar() {
  const KernelBackend* s = BackendRegistry::Instance().Find("scalar");
  EXPECT_NE(s, nullptr);
  return *s;
}

/// Bitwise comparison of double outputs — EXPECT_EQ would treat NaN !=
/// NaN and 0.0 == -0.0, both wrong for a bit-identity contract.
void ExpectSameBits(const std::vector<double>& a, const std::vector<double>& b,
                    const char* what, const char* backend) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t ba, bb;
    std::memcpy(&ba, &a[i], sizeof(ba));
    std::memcpy(&bb, &b[i], sizeof(bb));
    ASSERT_EQ(ba, bb) << what << " diverged on backend " << backend
                      << " at index " << i << ": scalar=" << a[i] << " simd="
                      << b[i];
  }
}

/// Envelope columns with adversarial coordinates; roughly half the boxes
/// are proper (min <= max), the rest inverted or NaN-poisoned.
struct TestColumns {
  std::vector<double> x_min, y_min, x_max, y_max;
  std::vector<int64_t> t_min, t_max;

  explicit TestColumns(size_t n, uint64_t seed) {
    x_min = AdversarialDoubles(n, seed + 1);
    y_min = AdversarialDoubles(n, seed + 2);
    x_max = AdversarialDoubles(n, seed + 3);
    y_max = AdversarialDoubles(n, seed + 4);
    t_min = RandomTimes(n, seed + 5);
    t_max = RandomTimes(n, seed + 6);
    // Make about half the boxes proper so hits actually occur.
    for (size_t i = 0; i < n; i += 2) {
      if (x_min[i] > x_max[i]) std::swap(x_min[i], x_max[i]);
      if (y_min[i] > y_max[i]) std::swap(y_min[i], y_max[i]);
      if (t_min[i] > t_max[i]) std::swap(t_min[i], t_max[i]);
    }
  }

  EnvelopeView View(size_t offset = 0) const {
    EnvelopeView v;
    v.x_min = x_min.data() + offset;
    v.y_min = y_min.data() + offset;
    v.x_max = x_max.data() + offset;
    v.y_max = y_max.data() + offset;
    v.t_min = t_min.data() + offset;
    v.t_max = t_max.data() + offset;
    v.size = x_min.size() - offset;
    return v;
  }
};

const BoxFilterQuery kQueries[] = {
    {-50.0, -50.0, 50.0, 50.0, -5000, 5000},  // plain window
    {-kInf, -kInf, kInf, kInf, INT64_MIN, INT64_MAX},  // everything
    {10.0, 10.0, -10.0, -10.0, 0, 100},  // inverted (degenerate) query box
    {kNaN, kNaN, kNaN, kNaN, 0, 0},      // NaN query never matches
    {0.0, 0.0, 0.0, 0.0, 0, 0},          // point query
};

TEST(AccelFilterBoxes, MatchesScalarBitForBitOnAdversarialBatches) {
  for (const KernelBackend* simd : SimdBackends()) {
    for (size_t n : kSizes) {
      TestColumns cols(n, 42 + n);
      for (const BoxFilterQuery& q : kQueries) {
        std::vector<uint8_t> expected(n + 1, 0xee), actual(n + 1, 0xbb);
        Scalar().FilterBoxes(q, cols.View(), expected.data());
        simd->FilterBoxes(q, cols.View(), actual.data());
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(expected[i], actual[i])
              << "hit bitmap diverged on " << simd->name() << " n=" << n
              << " index " << i;
          ASSERT_TRUE(actual[i] == 0 || actual[i] == 1);
        }
        // One-past-the-end byte untouched: kernels write exactly n hits.
        ASSERT_EQ(expected[n], 0xee);
        ASSERT_EQ(actual[n], 0xbb);
      }
    }
  }
}

TEST(AccelFilterBoxes, UnalignedTailsMatchScalar) {
  const size_t kN = 67;
  TestColumns cols(kN, 7);
  const BoxFilterQuery q = kQueries[0];
  // Offsetting the base pointers by 1..7 elements breaks any 16/32-byte
  // alignment assumption; outputs must still match scalar exactly.
  for (const KernelBackend* simd : SimdBackends()) {
    for (size_t offset = 1; offset < 8; ++offset) {
      size_t n = kN - offset;
      std::vector<uint8_t> expected(n), actual(n);
      Scalar().FilterBoxes(q, cols.View(offset), expected.data());
      simd->FilterBoxes(q, cols.View(offset), actual.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(expected[i], actual[i])
            << simd->name() << " offset=" << offset << " index " << i;
      }
    }
  }
}

TEST(AccelFilterBoxes, AgreesWithStboxIntersectsOnProperBoxes) {
  // The kernel predicate IS STBox::Intersects (record side folded in,
  // query side host-checked): spot-check against the real thing.
  Rng rng(99);
  const size_t kN = 200;
  EnvelopeColumns cols;
  std::vector<STBox> boxes;
  for (size_t i = 0; i < kN; ++i) {
    double x1 = rng.Uniform(-100, 100), x2 = rng.Uniform(-100, 100);
    double y1 = rng.Uniform(-100, 100), y2 = rng.Uniform(-100, 100);
    int64_t t1 = rng.UniformInt(-1000, 1000), t2 = rng.UniformInt(-1000, 1000);
    STBox box(Mbr(std::min(x1, x2), std::min(y1, y2), std::max(x1, x2),
                  std::max(y1, y2)),
              Duration(std::min(t1, t2), std::max(t1, t2)));
    boxes.push_back(box);
    cols.Append(box);
  }
  STBox query(Mbr(-20, -20, 30, 30), Duration(-100, 500));
  std::vector<uint8_t> hits(kN);
  for (const KernelBackend* backend : BackendRegistry::Instance().Available()) {
    backend->FilterBoxes(BoxFilterQuery::FromBox(query), cols.View(),
                         hits.data());
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i] != 0, boxes[i].Intersects(query))
          << backend->name() << " disagrees with STBox::Intersects at " << i;
    }
  }
}

TEST(AccelCombineHashes, MatchesHashCombineLaneWise) {
  for (const KernelBackend* backend : BackendRegistry::Instance().Available()) {
    for (size_t n : kSizes) {
      Rng rng(1000 + n);
      std::vector<uint64_t> h1(n), h2(n), out(n, 0xdead);
      for (size_t i = 0; i < n; ++i) {
        // Adversarial corners amid random values.
        h1[i] = i % 7 == 0 ? 0 : rng.Next();
        h2[i] = i % 5 == 0 ? ~uint64_t{0} : rng.Next();
      }
      backend->CombineHashes(h1.data(), h2.data(), n, out.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], HashCombine(h1[i], h2[i]))
            << backend->name() << " n=" << n << " index " << i;
      }
    }
  }
}

TEST(AccelCombineHashes, PairHashIsExactlyHashCombine) {
  // The batched shuffle path computes component hashes into columns and
  // combines them with the kernel; it produces the same bucket targets as
  // per-record PairHash ONLY if PairHash is exactly HashCombine of the
  // component std::hashes. Pin that contract.
  Rng rng(4242);
  for (int i = 0; i < 1000; ++i) {
    std::pair<int64_t, int64_t> key{static_cast<int64_t>(rng.Next()),
                                    static_cast<int64_t>(rng.Next())};
    uint64_t expected = HashCombine(
        static_cast<uint64_t>(std::hash<int64_t>{}(key.first)),
        static_cast<uint64_t>(std::hash<int64_t>{}(key.second)));
    ASSERT_EQ(static_cast<uint64_t>(PairHash{}(key)), expected);
  }
}

TEST(AccelDistances, HaversineAndEuclideanMatchScalarBitForBit) {
  for (const KernelBackend* simd : SimdBackends()) {
    for (size_t n : kSizes) {
      std::vector<double> ax = AdversarialDoubles(n, 1),
                          ay = AdversarialDoubles(n, 2),
                          bx = AdversarialDoubles(n, 3),
                          by = AdversarialDoubles(n, 4);
      std::vector<double> expected(n), actual(n);
      Scalar().HaversineMeters(ax.data(), ay.data(), bx.data(), by.data(), n,
                               expected.data());
      simd->HaversineMeters(ax.data(), ay.data(), bx.data(), by.data(), n,
                            actual.data());
      ExpectSameBits(expected, actual, "haversine", simd->name());
      Scalar().EuclideanDistance(ax.data(), ay.data(), bx.data(), by.data(), n,
                                 expected.data());
      simd->EuclideanDistance(ax.data(), ay.data(), bx.data(), by.data(), n,
                              actual.data());
      ExpectSameBits(expected, actual, "euclidean", simd->name());
    }
  }
}

TEST(AccelDistances, MatchTheGeometryInlines) {
  // The kernels must compute exactly what the pre-accel per-element calls
  // computed — AverageSpeedMps and the checksum audit depend on it.
  const size_t kN = 64;
  std::vector<double> ax = AdversarialDoubles(kN, 5),
                      ay = AdversarialDoubles(kN, 6),
                      bx = AdversarialDoubles(kN, 7),
                      by = AdversarialDoubles(kN, 8);
  std::vector<double> hav(kN), euc(kN);
  const KernelBackend& active = Active();
  active.HaversineMeters(ax.data(), ay.data(), bx.data(), by.data(), kN,
                         hav.data());
  active.EuclideanDistance(ax.data(), ay.data(), bx.data(), by.data(), kN,
                           euc.data());
  for (size_t i = 0; i < kN; ++i) {
    Point a(ax[i], ay[i]), b(bx[i], by[i]);
    double expect_h = HaversineMeters(a, b);
    double expect_e = EuclideanDistance(a, b);
    uint64_t got, want;
    std::memcpy(&got, &hav[i], 8);
    std::memcpy(&want, &expect_h, 8);
    ASSERT_EQ(got, want) << "haversine kernel != geometry inline at " << i;
    std::memcpy(&got, &euc[i], 8);
    std::memcpy(&want, &expect_e, 8);
    ASSERT_EQ(got, want) << "euclidean kernel != geometry inline at " << i;
  }
}

TEST(AccelMinMaxSum, MatchesScalarBitForBitIncludingNaN) {
  for (const KernelBackend* simd : SimdBackends()) {
    for (size_t n : kSizes) {
      std::vector<double> v = AdversarialDoubles(n, 2000 + n);
      double mn_s, mx_s, sm_s, mn_v, mx_v, sm_v;
      Scalar().MinMaxSum(v.data(), n, &mn_s, &mx_s, &sm_s);
      simd->MinMaxSum(v.data(), n, &mn_v, &mx_v, &sm_v);
      uint64_t a, b;
      std::memcpy(&a, &mn_s, 8);
      std::memcpy(&b, &mn_v, 8);
      ASSERT_EQ(a, b) << "min diverged on " << simd->name() << " n=" << n;
      std::memcpy(&a, &mx_s, 8);
      std::memcpy(&b, &mx_v, 8);
      ASSERT_EQ(a, b) << "max diverged on " << simd->name() << " n=" << n;
      std::memcpy(&a, &sm_s, 8);
      std::memcpy(&b, &sm_v, 8);
      ASSERT_EQ(a, b) << "sum diverged on " << simd->name() << " n=" << n;
    }
  }
}

TEST(AccelMinMaxSum, EmptyAndCleanInputs) {
  for (const KernelBackend* backend : BackendRegistry::Instance().Available()) {
    double mn, mx, sm;
    backend->MinMaxSum(nullptr, 0, &mn, &mx, &sm);
    EXPECT_EQ(mn, kInf) << backend->name();
    EXPECT_EQ(mx, -kInf) << backend->name();
    EXPECT_EQ(sm, 0.0) << backend->name();

    // A clean (finite) input has an order-independent min/max: sanity-check
    // the kernel against the obvious answers.
    std::vector<double> v;
    for (int i = 0; i < 100; ++i) v.push_back(static_cast<double>(50 - i));
    backend->MinMaxSum(v.data(), v.size(), &mn, &mx, &sm);
    EXPECT_EQ(mn, -49.0) << backend->name();
    EXPECT_EQ(mx, 50.0) << backend->name();
    EXPECT_EQ(sm, 50.0) << backend->name();  // sum of 50..-49
  }
}

TEST(AccelRegistry, ScalarAlwaysAvailableAndFirst) {
  const auto& available = BackendRegistry::Instance().Available();
  ASSERT_FALSE(available.empty());
  EXPECT_STREQ(available.front()->name(), "scalar");
#if defined(__x86_64__)
  // x86-64 baseline: the SSE2 backend must be compiled in and registered.
  EXPECT_NE(BackendRegistry::Instance().Find("sse2"), nullptr);
#endif
}

TEST(AccelRegistry, ForceBackendOverridesAndRestores) {
  BackendRegistry& registry = BackendRegistry::Instance();
  const std::string before = registry.active_name();

  ASSERT_TRUE(registry.ForceBackend("scalar").ok());
  EXPECT_STREQ(registry.active_name(), "scalar");

  Status bad = registry.ForceBackend("avx512-from-the-future");
  EXPECT_EQ(bad.code(), Status::Code::kInvalidArgument);
  // A rejected force leaves the active backend untouched.
  EXPECT_STREQ(registry.active_name(), "scalar");
  // The error names the valid choices.
  EXPECT_NE(bad.message().find("scalar"), std::string::npos);

  ASSERT_TRUE(registry.ForceBackend("").ok());  // back to automatic
  EXPECT_EQ(std::string(registry.active_name()), before);
}

TEST(AccelRegistry, CountersAccumulate) {
  BackendRegistry& registry = BackendRegistry::Instance();
  uint64_t batches = registry.batches();
  uint64_t batch_records = registry.batch_records();
  uint64_t fallback = registry.fallback_records();
  registry.CountBatch(128);
  registry.CountFallback(7);
  EXPECT_EQ(registry.batches(), batches + 1);
  EXPECT_EQ(registry.batch_records(), batch_records + 128);
  EXPECT_EQ(registry.fallback_records(), fallback + 7);
}

}  // namespace
}  // namespace accel
}  // namespace st4ml
