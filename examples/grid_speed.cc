// Grid speed (paper app e): mean trajectory speed per cell of a spatial
// grid, computed with the broadcast converter + collective extractor.

#include <cstdio>
#include <memory>

#include "st4ml.h"

int main() {
  using namespace st4ml;
  auto ctx = ExecutionContext::Create();

  PortoTrajOptions gen;
  gen.count = 2000;
  auto records = GeneratePortoTrajectories(gen);
  auto trajs =
      ParseTrajs(Dataset<TrajRecord>::Parallelize(ctx, records, 4));

  auto grid = std::make_shared<SpatialStructure>(
      SpatialStructure::Grid(gen.extent, 8, 8));
  SpatialMapConverter<STTrajectory> converter(grid);
  Pipeline pipeline(ctx, "grid_speed");
  auto cells = pipeline.Run(
      "conversion",
      [&](const Dataset<STTrajectory>& parsed) {
        return converter.Convert(parsed);
      },
      trajs);
  SpatialMap<double> speed = pipeline.Run(
      "extraction",
      [](const Dataset<SpatialMap<std::vector<STTrajectory>>>& converted) {
        return ExtractSmSpeed(converted, SpeedUnit::kKilometersPerHour);
      },
      cells);
  pipeline.Finish();

  for (size_t row = 0; row < 8; ++row) {
    for (size_t col = 0; col < 8; ++col) {
      std::printf("%6.1f", speed.value(row * 8 + col));
    }
    std::printf("\n");
  }
  std::printf("cells: %zu, broadcasts: %llu\n", speed.size(),
              static_cast<unsigned long long>(ctx->MetricsSnapshot().broadcasts()));
  return 0;
}
