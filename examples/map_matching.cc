// Map matching: snap noisy camera trajectories onto a road network with the
// HMM matcher, then count per-segment traversals.

#include <cstdio>
#include <cstdlib>
#include <map>

#include "st4ml.h"

int main() {
  using namespace st4ml;
  auto ctx = ExecutionContext::Create();

  RoadNetworkOptions road_gen;
  auto network = GenerateRoadNetwork(road_gen);
  CameraTrajOptions traj_gen;
  traj_gen.count = 300;
  auto records = GenerateCameraTrajectories(*network, traj_gen);
  auto trajs = ParseTrajs(Dataset<TrajRecord>::Parallelize(ctx, records, 4));

  auto matched = MapMatchTrajectories(trajs, network, MapMatchOptions{});

  std::map<int64_t, int64_t> traversals;
  for (const auto& trip : matched.Collect()) {
    for (const auto& entry : trip.entries) {
      ++traversals[std::llabs(entry.value)];
    }
  }
  std::printf("matched %zu trajectories over %zu segments used\n",
              matched.Count(), traversals.size());
  int shown = 0;
  for (const auto& [segment, count] : traversals) {
    if (++shown > 5) break;
    std::printf("  segment %lld: %lld samples\n",
                static_cast<long long>(segment),
                static_cast<long long>(count));
  }
  return 0;
}
