// Partitioner comparison (paper §5 / Table 5 in miniature): balance and
// overlap of the ST partitioners on a skewed synthetic workload.

#include <cstdio>
#include <memory>
#include <vector>

#include "st4ml.h"

int main() {
  using namespace st4ml;

  NycEventOptions gen;
  gen.count = 20000;
  std::vector<STBox> boxes;
  for (const EventRecord& r : GenerateNycEvents(gen)) {
    boxes.push_back(r.ComputeSTBox());
  }

  struct Entry {
    const char* name;
    std::unique_ptr<STPartitioner> partitioner;
  };
  std::vector<Entry> entries;
  entries.push_back({"hash", std::make_unique<HashPartitioner>(16)});
  entries.push_back({"grid", std::make_unique<GridPartitioner>(16)});
  entries.push_back({"kdb", std::make_unique<KDBPartitioner>(16)});
  entries.push_back({"quadtree", std::make_unique<QuadTreePartitioner>(16)});
  entries.push_back({"str", std::make_unique<STRPartitioner>(16)});
  entries.push_back({"t-str", std::make_unique<TSTRPartitioner>(4, 4)});
  entries.push_back({"t-balance", std::make_unique<TBalancePartitioner>(16)});

  std::printf("%-10s %8s %8s\n", "scheme", "cv", "overlap");
  for (Entry& e : entries) {
    e.partitioner->Train(boxes);
    int n = e.partitioner->num_partitions();
    std::vector<size_t> counts(static_cast<size_t>(n), 0);
    std::vector<int> assignment;
    assignment.reserve(boxes.size());
    for (size_t i = 0; i < boxes.size(); ++i) {
      int p = e.partitioner->Assign(boxes[i], false, i)[0];
      ++counts[static_cast<size_t>(p)];
      assignment.push_back(p);
    }
    double cv = CoefficientOfVariation(counts);
    double overlap = OverlapRatio(PartitionContentBounds(boxes, assignment, n));
    std::printf("%-10s %8.3f %8.3f\n", e.name, cv, overlap);
  }
  return 0;
}
