// Hourly flow over a selected window (paper app d): select NYC-like events
// through the on-disk index, convert to an hourly time series, extract
// per-bin counts.

#include <cstdio>
#include <filesystem>
#include <memory>

#include "st4ml.h"

int main() {
  using namespace st4ml;
  auto ctx = ExecutionContext::Create();

  // Stage a small synthetic dataset into a fresh on-disk index.
  NycEventOptions gen;
  gen.count = 20000;
  auto records = GenerateNycEvents(gen);
  std::string dir = "example_hourly_flow_data";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  auto data = Dataset<EventRecord>::Parallelize(ctx, records, 4);
  TSTRPartitioner partitioner(4, 4);
  Status built = BuildOnDiskIndex(data, &partitioner, dir, dir + "/index.meta");
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.ToString().c_str());
    return 1;
  }

  // The three paper stages, each under a Pipeline stage span — with a
  // tracer attached (none here) the trace nests pipeline → stage →
  // operation → task automatically.
  STBox query(gen.extent,
              Duration(gen.range.start(), gen.range.start() + 86400));
  Selector<EventRecord> selector(ctx, SelectQuery::FromBox(query));
  Pipeline pipeline(ctx, "hourly_flow");

  // Selection: one city-scale day.
  auto selected = pipeline.Run(
      "selection", [&] { return selector.Select(dir, dir + "/index.meta"); });
  if (!selected.ok()) {
    std::fprintf(stderr, "%s\n", selected.status().ToString().c_str());
    return 1;
  }

  // Conversion + extraction: hour bins, event counts.
  auto structure = std::make_shared<TemporalStructure>(
      TemporalStructure::RegularByInterval(query.time, 3600));
  TimeSeriesConverter<STEvent> converter(structure);
  auto series = pipeline.Run(
      "conversion",
      [&](const Dataset<STEvent>& events) { return converter.Convert(events); },
      ParseEvents(*selected));
  TimeSeries<int64_t> flow = pipeline.Run(
      "extraction",
      [](const Dataset<TimeSeries<std::vector<STEvent>>>& binned) {
        return ExtractTsFlow(binned);
      },
      series);
  pipeline.Finish();

  for (size_t i = 0; i < flow.size(); ++i) {
    std::printf("hour %02zu: %lld events\n", i,
                static_cast<long long>(flow.value(i)));
  }
  std::printf("pruning: loaded %llu bytes, kept %llu\n",
              static_cast<unsigned long long>(selector.stats().bytes_loaded),
              static_cast<unsigned long long>(selector.stats().bytes_selected));
  return 0;
}
