// Stay-point detection (paper app c): per-trajectory dwell regions with the
// (200 m, 10 min) threshold.

#include <cstdio>

#include "st4ml.h"

int main() {
  using namespace st4ml;
  auto ctx = ExecutionContext::Create();

  PortoTrajOptions gen;
  gen.count = 3000;
  auto trajs =
      ParseTrajs(Dataset<TrajRecord>::Parallelize(ctx, GeneratePortoTrajectories(gen), 4));

  auto stays = ExtractStayPoints(trajs, /*dist_m=*/200, /*min_duration_s=*/600);
  size_t trips_with_stays = 0;
  size_t total_stays = 0;
  for (const auto& [trip_id, stay_list] : stays.Collect()) {
    if (!stay_list.empty()) ++trips_with_stays;
    total_stays += stay_list.size();
  }
  std::printf("%zu stays across %zu of %zu trajectories\n", total_stays,
              trips_with_stays, trajs.Count());
  return 0;
}
