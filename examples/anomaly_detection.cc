// Abnormal-event detection (paper app a): events in the 23:00-04:00 window,
// straight from records to a filtered instance dataset.

#include <cstdio>

#include "st4ml.h"

int main() {
  using namespace st4ml;
  auto ctx = ExecutionContext::Create();

  NycEventOptions gen;
  gen.count = 30000;
  auto events =
      ParseEvents(Dataset<EventRecord>::Parallelize(ctx, GenerateNycEvents(gen), 4));

  auto anomalies = ExtractAnomalies(events, 23, 4);
  size_t night = anomalies.Count();
  size_t total = events.Count();
  std::printf("%zu of %zu events fall in the 23:00-04:00 window (%.1f%%)\n",
              night, total, 100.0 * static_cast<double>(night) /
                                static_cast<double>(total));

  // Show a few.
  auto sample = anomalies.Collect();
  for (size_t i = 0; i < sample.size() && i < 3; ++i) {
    std::printf("  id=%lld at (%.4f, %.4f) hour=%d\n",
                static_cast<long long>(sample[i].data.id), sample[i].spatial.x,
                sample[i].spatial.y, HourOfDay(sample[i].temporal.start()));
  }
  return 0;
}
