#ifndef ST4ML_INDEX_STIX_H_
#define ST4ML_INDEX_STIX_H_

// STIX — the persistent external-memory ST index (ROADMAP #2, DESIGN.md
// §12). At ingest time an STR bulk loader runs over each STPQ partition and
// serializes a page-oriented packed R-tree PLUS a trajectory-id inverted
// index (postings lists per id) into a sidecar `part-NNNNN.stix` next to
// the `part-NNNNN.stpq`. At query time the sidecar is mmap'd, so a COLD
// selection walks index pages, refines leaf hits through the vectorized
// FilterBoxes kernel over mmap'd SoA envelope columns, and then seeks and
// reads only the bytes of matching records — instead of parsing the whole
// file and building an R-tree in memory first. Warm paths keep the
// in-memory cached index (DatasetCache); the QueryPlanner picks per file.
//
// Invalidation: the header embeds the source file's size and mtime — the
// same key the dataset cache uses — PLUS a fingerprint of the source's
// STPQ header, so even a same-size rewrite landing within one mtime tick
// invalidates the sidecar and the planner falls back to a linear scan
// instead of serving stale hits.
//
// File layout (native-endian, like STPQ — never leaves the machine):
//   StixHeader | 64-byte-aligned sections:
//     nodes        StixNode[node_count]   packed STR tree, root LAST
//     order        u32[n]                 leaf position -> record index
//     x_min..t_max f64[n] x4, i64[n] x2   envelope columns in LEAF order
//     rec_offsets  u64[n + 1]             record byte offsets, RECORD order
//     id_dir       StixIdEntry[id_count]  sorted by id
//     postings     u32[n]                 leaf positions, grouped by id
//
// Columns live in leaf order so a leaf hit is a CONTIGUOUS column run: the
// query path points an EnvelopeView straight into the mapped pages (the
// view has no alignment requirement) and runs the active SIMD backend over
// them, zero-copy. `order` maps refined hits back to record indices and
// `rec_offsets` turns those into the byte runs StpqReader reads.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "accel/kernels.h"
#include "common/env.h"
#include "common/status.h"
#include "index/stbox.h"
#include "storage/stpq.h"

namespace st4ml {

inline constexpr char kStixMagic[4] = {'S', 'T', 'I', 'X'};
inline constexpr uint32_t kStixVersion = 2;
/// The transfer unit kIndexPagesRead counts: 4 KiB, the mmap page size.
inline constexpr uint64_t kStixPageBytes = 4096;
/// STR fan-out, matching the in-memory RTree so both halves of the index
/// prune comparably.
inline constexpr uint32_t kStixNodeCapacity = 16;
inline constexpr uint64_t kStixSectionAlign = 64;

/// Section order in the offset table (and in the file).
enum StixSection : uint32_t {
  kStixNodes = 0,
  kStixOrder,
  kStixColXMin,
  kStixColYMin,
  kStixColXMax,
  kStixColYMax,
  kStixColTMin,
  kStixColTMax,
  kStixRecOffsets,
  kStixIdDir,
  kStixPostings,
  kStixNumSections,
};

/// One packed STR node, exactly 64 bytes so nodes never straddle more
/// mapped pages than they must. Children always precede their parent
/// (bottom-up packing), so a root-to-leaf walk only ever moves to LOWER
/// node indices — Open exploits that for a cycle-free structural check.
struct StixNode {
  double x_min = 0.0;
  double y_min = 0.0;
  double x_max = 0.0;
  double y_max = 0.0;
  int64_t t_min = 0;
  int64_t t_max = 0;
  uint32_t first = 0;  // leaf: first leaf position; internal: first child
  uint32_t count = 0;
  uint32_t leaf = 0;  // 1 = leaf
  uint32_t pad = 0;
};
static_assert(sizeof(StixNode) == 64, "StixNode must pack to 64 bytes");

/// One inverted-index directory entry: this id's postings run.
struct StixIdEntry {
  int64_t id = 0;
  uint64_t first = 0;  // index into the postings section
  uint64_t count = 0;
};
static_assert(sizeof(StixIdEntry) == 24, "StixIdEntry must pack to 24 bytes");

struct StixHeader {
  char magic[4] = {0, 0, 0, 0};
  uint32_t version = 0;
  uint64_t record_count = 0;
  uint64_t node_count = 0;
  uint64_t id_count = 0;
  uint64_t source_size = 0;   // .stpq size at build time (invalidation key)
  int64_t source_mtime = 0;   // .stpq mtime at build time (invalidation key)
  // FNV-1a of the source's STPQ header bytes: catches a same-size rewrite
  // that lands within one mtime tick (count or kind changed), which the
  // size|mtime pair alone cannot.
  uint64_t source_fingerprint = 0;
  uint64_t file_bytes = 0;    // total .stix size the layout implies
  uint64_t section_off[kStixNumSections] = {};
};
static_assert(sizeof(StixHeader) == 152, "StixHeader must pack to 152 bytes");

/// Sidecar path for an STPQ partition: the extension swapped to `.stix`.
std::string StixPathFor(const std::string& stpq_path);

/// The ST4ML_DISK_INDEX env knob: any value but "off" (the default is on)
/// lets the QueryPlanner consider mmap'd sidecars. SelectorOptions reads
/// this once at construction; tests override the field directly.
inline bool DiskIndexEnabledByEnv() {
  return GetEnvString("ST4ML_DISK_INDEX", "on") != "off";
}

/// Everything the bulk loader needs about one partition, in record order.
struct StixBuildInput {
  std::vector<STBox> boxes;       // record envelopes (ComputeSTBox)
  std::vector<int64_t> ids;       // record ids
  std::vector<uint64_t> offsets;  // n + 1 byte offsets into the .stpq
};

/// Serializes `input` as a sidecar at `stix_path`, keyed to a source file
/// of `source_size` bytes / `source_mtime` / `source_fingerprint`. The file
/// is staged under `<stix_path>.tmp` and published by atomic rename. When
/// non-null, `io_bytes` accumulates the bytes written (the STPQ writer
/// convention).
Status WriteStixFile(const std::string& stix_path, const StixBuildInput& input,
                     uint64_t source_size, int64_t source_mtime,
                     uint64_t source_fingerprint, uint64_t* io_bytes = nullptr);

/// Stat-based invalidation stamp of one file, matching what WriteStixFile
/// embeds and what StixIndex::Open re-checks. An unreadable mtime is an
/// ERROR, never stamp 0 — a zero stamp would validate against any sidecar
/// built from an equally unreadable state.
StatusOr<int64_t> FileMtimeStamp(const std::string& path);

/// FNV-1a over the first kStpqHeaderBytes of `stpq_path` — the content half
/// of the sidecar invalidation key. Errors if the header can't be read.
StatusOr<uint64_t> StpqHeaderFingerprint(const std::string& stpq_path);

/// The STR bulk loader for one just-written partition: computes envelopes,
/// ids and record byte offsets from `records` (which must be exactly the
/// records inside `stpq_path`), stats the file for the invalidation key,
/// and writes the sidecar next to it.
template <typename RecordT>
Status BuildStixForStpq(const std::string& stpq_path,
                        const std::vector<RecordT>& records,
                        uint64_t* io_bytes = nullptr) {
  StixBuildInput input;
  input.boxes.reserve(records.size());
  input.ids.reserve(records.size());
  input.offsets.reserve(records.size() + 1);
  uint64_t offset = kStpqHeaderBytes;
  input.offsets.push_back(offset);
  for (const RecordT& r : records) {
    input.boxes.push_back(r.ComputeSTBox());
    input.ids.push_back(r.id);
    offset += StpqRecordBytes(r);
    input.offsets.push_back(offset);
  }
  StatusOr<int64_t> mtime = FileMtimeStamp(stpq_path);
  if (!mtime.ok()) return mtime.status();
  StatusOr<uint64_t> fingerprint = StpqHeaderFingerprint(stpq_path);
  if (!fingerprint.ok()) return fingerprint.status();
  return WriteStixFile(StixPathFor(stpq_path), input, FileSizeBytes(stpq_path),
                       *mtime, *fingerprint, io_bytes);
}

/// Per-query index observability, fed into kIndexPagesRead / kPostingsHits.
struct StixQueryStats {
  uint64_t pages_read = 0;     // distinct 4 KiB index pages touched
  uint64_t postings_hits = 0;  // postings entries resolved for queried ids
};

/// A validated, mmap'd sidecar. Open performs the FULL corruption audit up
/// front — magic/version, exact section layout against the header counts,
/// node structure (children strictly below parents, leaf runs in bounds),
/// `order` a permutation, record offsets monotone and inside the source
/// file, id directory sorted with postings runs in bounds — plus the
/// staleness check against the live `.stpq`, so the query methods can walk
/// raw mapped memory without per-access checks. The audit is a few
/// sequential integer scans over the mapped pages: a fraction of the
/// parse-and-build it replaces. Any violation returns InvalidArgument (bad
/// bytes) or IOError (can't map), and the planner falls back to the
/// linear-scan plan.
class StixIndex {
 public:
  static StatusOr<StixIndex> Open(const std::string& stix_path,
                                  const std::string& stpq_path);

  StixIndex() = default;
  ~StixIndex();
  StixIndex(StixIndex&& other) noexcept;
  StixIndex& operator=(StixIndex&& other) noexcept;
  StixIndex(const StixIndex&) = delete;
  StixIndex& operator=(const StixIndex&) = delete;

  uint64_t record_count() const { return header_.record_count; }
  uint64_t node_count() const { return header_.node_count; }
  uint64_t id_count() const { return header_.id_count; }
  uint64_t file_bytes() const { return header_.file_bytes; }
  const StixHeader& header() const { return header_; }

  /// Record indices (ascending) whose envelope intersects `query` — the
  /// exact FilterBoxes predicate, so results are byte-identical to a
  /// linear kernel scan of the parsed file. The CALLER does the query-side
  /// emptiness check, as everywhere else in the kernel contract.
  void QueryBox(const accel::BoxFilterQuery& query,
                std::vector<uint32_t>* hits, StixQueryStats* stats) const;

  /// Record indices (ascending) whose id is in `ids` (sorted unique) AND —
  /// when `apply_box` — whose envelope passes `query`, refined through the
  /// stored columns with the same kernel predicate.
  void LookupIds(const std::vector<int64_t>& ids,
                 const accel::BoxFilterQuery& query, bool apply_box,
                 std::vector<uint32_t>* hits, StixQueryStats* stats) const;

  /// Byte offset of record `index` in the source .stpq (index may be n:
  /// the end offset of the last record).
  uint64_t RecordOffset(uint64_t index) const { return rec_offsets_[index]; }

 private:
  Status Validate(const std::string& stix_path, const std::string& stpq_path);
  void Unmap();

  StixHeader header_;
  const uint8_t* base_ = nullptr;
  size_t map_len_ = 0;
  const StixNode* nodes_ = nullptr;
  const uint32_t* order_ = nullptr;
  const double* col_x_min_ = nullptr;
  const double* col_y_min_ = nullptr;
  const double* col_x_max_ = nullptr;
  const double* col_y_max_ = nullptr;
  const int64_t* col_t_min_ = nullptr;
  const int64_t* col_t_max_ = nullptr;
  const uint64_t* rec_offsets_ = nullptr;
  const StixIdEntry* id_dir_ = nullptr;
  const uint32_t* postings_ = nullptr;
};

}  // namespace st4ml

#endif  // ST4ML_INDEX_STIX_H_
