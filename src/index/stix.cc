#include "index/stix.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "storage/atomic_publish.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

/// Byte offsets of every section plus the total file size, derived ONLY
/// from the three header counts — the writer lays files out with it and
/// Open recomputes it to audit an untrusted header. Counts are capped at
/// 2^32 before this runs, so no product here can overflow.
struct StixLayout {
  uint64_t off[kStixNumSections] = {};
  uint64_t total = 0;
};

StixLayout ComputeStixLayout(uint64_t records, uint64_t nodes, uint64_t ids) {
  auto align = [](uint64_t v) {
    return (v + kStixSectionAlign - 1) / kStixSectionAlign * kStixSectionAlign;
  };
  StixLayout layout;
  uint64_t pos = sizeof(StixHeader);
  auto place = [&](StixSection s, uint64_t bytes) {
    pos = align(pos);
    layout.off[s] = pos;
    pos += bytes;
  };
  place(kStixNodes, nodes * sizeof(StixNode));
  place(kStixOrder, records * sizeof(uint32_t));
  place(kStixColXMin, records * sizeof(double));
  place(kStixColYMin, records * sizeof(double));
  place(kStixColXMax, records * sizeof(double));
  place(kStixColYMax, records * sizeof(double));
  place(kStixColTMin, records * sizeof(int64_t));
  place(kStixColTMax, records * sizeof(int64_t));
  place(kStixRecOffsets, (records + 1) * sizeof(uint64_t));
  place(kStixIdDir, ids * sizeof(StixIdEntry));
  place(kStixPostings, records * sizeof(uint32_t));
  layout.total = pos;
  return layout;
}

/// A record envelope that can match SOME query: non-inverted, NaN-free.
/// Degenerate envelopes are skipped when extending node boxes (they can
/// never match, and a NaN must not poison a node box into pruning valid
/// siblings — the same rule MakeIndexedFile applies to the file envelope).
bool ValidBox(const STBox& box) {
  return box.mbr.x_min <= box.mbr.x_max && box.mbr.y_min <= box.mbr.y_max &&
         box.time.start() <= box.time.end();
}

StixNode EmptyNode() {
  StixNode node;
  node.x_min = 1.0;  // inverted: matches nothing until extended
  node.x_max = 0.0;
  node.y_min = 1.0;
  node.y_max = 0.0;
  node.t_min = 1;
  node.t_max = 0;
  return node;
}

void ExtendNode(StixNode* node, double x_min, double y_min, double x_max,
                double y_max, int64_t t_min, int64_t t_max) {
  if (node->x_min > node->x_max) {  // still empty: adopt
    node->x_min = x_min;
    node->y_min = y_min;
    node->x_max = x_max;
    node->y_max = y_max;
    node->t_min = t_min;
    node->t_max = t_max;
    return;
  }
  node->x_min = std::min(node->x_min, x_min);
  node->y_min = std::min(node->y_min, y_min);
  node->x_max = std::max(node->x_max, x_max);
  node->y_max = std::max(node->y_max, y_max);
  node->t_min = std::min(node->t_min, t_min);
  node->t_max = std::max(node->t_max, t_max);
}

bool NodeValid(const StixNode& node) {
  return node.x_min <= node.x_max && node.y_min <= node.y_max &&
         node.t_min <= node.t_max;
}

/// Node-vs-query intersection: the same closed-interval predicate as
/// STBox::Intersects, with the query-side emptiness test hoisted to the
/// query entry points (kernel contract). An empty node matches nothing.
bool NodeIntersects(const accel::BoxFilterQuery& q, const StixNode& node) {
  return NodeValid(node) && node.x_min <= q.x_max && q.x_min <= node.x_max &&
         node.y_min <= q.y_max && q.y_min <= node.y_max &&
         node.t_min <= q.t_max && q.t_min <= node.t_max;
}

/// Distinct 4 KiB pages a query touched. Absolute file byte ranges go in;
/// pages_read comes out once per query.
class PageTouches {
 public:
  void Touch(uint64_t begin, uint64_t bytes) {
    if (bytes == 0) return;
    uint64_t first = begin / kStixPageBytes;
    uint64_t last = (begin + bytes - 1) / kStixPageBytes;
    for (uint64_t p = first; p <= last; ++p) pages_.insert(p);
  }
  uint64_t count() const { return pages_.size(); }

 private:
  std::unordered_set<uint64_t> pages_;
};

/// The 3-d STR ordering (slabs by x, sub-slabs by y, runs by t), mirroring
/// RTree::Pack but over precomputed sort keys with NaN replaced by 0 — a
/// NaN coordinate must not break the comparators' strict weak ordering.
std::vector<uint32_t> StrOrder(const std::vector<STBox>& boxes) {
  const size_t n = boxes.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  if (n == 0) return order;

  auto key = [](double a, double b) {
    double sum = a + b;
    return std::isnan(sum) ? 0.0 : sum;
  };
  std::vector<double> kx(n), ky(n), kt(n);
  for (size_t i = 0; i < n; ++i) {
    kx[i] = key(boxes[i].mbr.x_min, boxes[i].mbr.x_max);
    ky[i] = key(boxes[i].mbr.y_min, boxes[i].mbr.y_max);
    kt[i] = static_cast<double>(boxes[i].time.start()) +
            static_cast<double>(boxes[i].time.end());
  }

  const size_t cap = kStixNodeCapacity;
  size_t leaves = (n + cap - 1) / cap;
  size_t s =
      static_cast<size_t>(std::ceil(std::cbrt(static_cast<double>(leaves))));
  size_t slab = s * s * cap;
  size_t subslab = s * cap;

  std::sort(order.begin(), order.end(),
            [&](uint32_t a, uint32_t b) { return kx[a] < kx[b]; });
  for (size_t lo = 0; lo < n; lo += slab) {
    size_t hi = std::min(lo + slab, n);
    std::sort(order.begin() + lo, order.begin() + hi,
              [&](uint32_t a, uint32_t b) { return ky[a] < ky[b]; });
    for (size_t slo = lo; slo < hi; slo += subslab) {
      size_t shi = std::min(slo + subslab, hi);
      std::sort(order.begin() + slo, order.begin() + shi,
                [&](uint32_t a, uint32_t b) { return kt[a] < kt[b]; });
    }
  }
  return order;
}

}  // namespace

std::string StixPathFor(const std::string& stpq_path) {
  return fs::path(stpq_path).replace_extension(".stix").string();
}

StatusOr<int64_t> FileMtimeStamp(const std::string& path) {
  std::error_code ec;
  auto mtime = fs::last_write_time(path, ec);
  if (ec) return Status::IOError("cannot stat mtime of " + path);
  return static_cast<int64_t>(mtime.time_since_epoch().count());
}

StatusOr<uint64_t> StpqHeaderFingerprint(const std::string& stpq_path) {
  std::ifstream in(stpq_path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot read stpq header of " + stpq_path);
  }
  char header[kStpqHeaderBytes];
  in.read(header, sizeof(header));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(header))) {
    return Status::IOError("cannot read stpq header of " + stpq_path);
  }
  uint64_t hash = 14695981039346656037ull;  // FNV-1a offset basis
  for (char c : header) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;  // FNV-1a prime
  }
  return hash;
}

Status WriteStixFile(const std::string& stix_path, const StixBuildInput& input,
                     uint64_t source_size, int64_t source_mtime,
                     uint64_t source_fingerprint, uint64_t* io_bytes) {
  const uint64_t n = input.boxes.size();
  if (input.ids.size() != n || input.offsets.size() != n + 1) {
    return Status::InvalidArgument("stix build input arrays disagree for " +
                                   stix_path);
  }
  if (n > UINT32_MAX) {
    return Status::InvalidArgument("too many records for a stix sidecar: " +
                                   stix_path);
  }

  // STR bulk load: order the records, pack leaves over consecutive runs,
  // then internal levels bottom-up until one root (root is the LAST node).
  std::vector<uint32_t> order = StrOrder(input.boxes);
  std::vector<StixNode> nodes;
  size_t level_begin = 0;
  for (uint64_t lo = 0; lo < n; lo += kStixNodeCapacity) {
    StixNode node = EmptyNode();
    node.leaf = 1;
    node.first = static_cast<uint32_t>(lo);
    node.count = static_cast<uint32_t>(
        std::min<uint64_t>(kStixNodeCapacity, n - lo));
    for (uint32_t i = 0; i < node.count; ++i) {
      const STBox& box = input.boxes[order[lo + i]];
      if (!ValidBox(box)) continue;
      ExtendNode(&node, box.mbr.x_min, box.mbr.y_min, box.mbr.x_max,
                 box.mbr.y_max, box.time.start(), box.time.end());
    }
    nodes.push_back(node);
  }
  while (nodes.size() - level_begin > 1) {
    size_t level_end = nodes.size();
    for (size_t lo = level_begin; lo < level_end; lo += kStixNodeCapacity) {
      StixNode node = EmptyNode();
      node.leaf = 0;
      node.first = static_cast<uint32_t>(lo);
      node.count = static_cast<uint32_t>(
          std::min<size_t>(kStixNodeCapacity, level_end - lo));
      for (uint32_t i = 0; i < node.count; ++i) {
        const StixNode& child = nodes[lo + i];
        if (!NodeValid(child)) continue;
        ExtendNode(&node, child.x_min, child.y_min, child.x_max, child.y_max,
                   child.t_min, child.t_max);
      }
      nodes.push_back(node);
    }
    level_begin = level_end;
  }

  // Envelope columns in LEAF order, so a leaf hit refines over one
  // contiguous zero-copy column run.
  std::vector<double> cx_min(n), cy_min(n), cx_max(n), cy_max(n);
  std::vector<int64_t> ct_min(n), ct_max(n);
  for (uint64_t j = 0; j < n; ++j) {
    const STBox& box = input.boxes[order[j]];
    cx_min[j] = box.mbr.x_min;
    cy_min[j] = box.mbr.y_min;
    cx_max[j] = box.mbr.x_max;
    cy_max[j] = box.mbr.y_max;
    ct_min[j] = box.time.start();
    ct_max[j] = box.time.end();
  }

  // Inverted index: postings are LEAF positions grouped by id (directory
  // sorted by id), so a lookup refines straight over the stored columns.
  std::vector<std::pair<int64_t, uint32_t>> by_id;
  by_id.reserve(n);
  for (uint64_t j = 0; j < n; ++j) {
    by_id.emplace_back(input.ids[order[j]], static_cast<uint32_t>(j));
  }
  std::sort(by_id.begin(), by_id.end());
  std::vector<StixIdEntry> id_dir;
  std::vector<uint32_t> postings;
  postings.reserve(n);
  for (uint64_t j = 0; j < n;) {
    StixIdEntry entry;
    entry.id = by_id[j].first;
    entry.first = postings.size();
    while (j < n && by_id[j].first == entry.id) {
      postings.push_back(by_id[j].second);
      ++j;
    }
    entry.count = postings.size() - entry.first;
    id_dir.push_back(entry);
  }

  StixLayout layout = ComputeStixLayout(n, nodes.size(), id_dir.size());
  StixHeader header;
  std::memcpy(header.magic, kStixMagic, sizeof(kStixMagic));
  header.version = kStixVersion;
  header.record_count = n;
  header.node_count = nodes.size();
  header.id_count = id_dir.size();
  header.source_size = source_size;
  header.source_mtime = source_mtime;
  header.source_fingerprint = source_fingerprint;
  header.file_bytes = layout.total;
  for (uint32_t s = 0; s < kStixNumSections; ++s) {
    header.section_off[s] = layout.off[s];
  }

  std::error_code ec;
  fs::path parent = fs::path(stix_path).parent_path();
  if (!parent.empty()) fs::create_directories(parent, ec);
  // Staged write + atomic publish, like every persistent writer: a reader
  // racing a rebuild sees the old sidecar or the new one, never a torn one.
  std::string tmp = TmpPathFor(stix_path);
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + stix_path);
  }
  uint64_t pos = 0;
  auto write_raw = [&](const void* data, uint64_t bytes) {
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(bytes));
    pos += bytes;
  };
  auto pad_to = [&](uint64_t target) {
    static constexpr char kZeros[kStixSectionAlign] = {};
    while (pos < target) {
      uint64_t chunk = std::min<uint64_t>(sizeof(kZeros), target - pos);
      write_raw(kZeros, chunk);
    }
  };
  write_raw(&header, sizeof(header));
  auto section = [&](StixSection s, const void* data, uint64_t bytes) {
    pad_to(layout.off[s]);
    write_raw(data, bytes);
  };
  section(kStixNodes, nodes.data(), nodes.size() * sizeof(StixNode));
  section(kStixOrder, order.data(), order.size() * sizeof(uint32_t));
  section(kStixColXMin, cx_min.data(), n * sizeof(double));
  section(kStixColYMin, cy_min.data(), n * sizeof(double));
  section(kStixColXMax, cx_max.data(), n * sizeof(double));
  section(kStixColYMax, cy_max.data(), n * sizeof(double));
  section(kStixColTMin, ct_min.data(), n * sizeof(int64_t));
  section(kStixColTMax, ct_max.data(), n * sizeof(int64_t));
  section(kStixRecOffsets, input.offsets.data(), (n + 1) * sizeof(uint64_t));
  section(kStixIdDir, id_dir.data(), id_dir.size() * sizeof(StixIdEntry));
  section(kStixPostings, postings.data(), postings.size() * sizeof(uint32_t));

  // Same explicit flush/close epilogue as the STPQ writers: the
  // destructor's flush is too late to report an error from.
  out.flush();
  if (!out.good()) {
    out.close();
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + stix_path);
  }
  out.close();
  if (out.fail()) {
    std::remove(tmp.c_str());
    return Status::IOError("failed to close " + stix_path);
  }
  ST4ML_RETURN_IF_ERROR(PublishFileAtomic(tmp, stix_path));
  if (io_bytes != nullptr) *io_bytes += pos;
  return Status::Ok();
}

StixIndex::~StixIndex() { Unmap(); }

void StixIndex::Unmap() {
  if (base_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(base_), map_len_);
    base_ = nullptr;
    map_len_ = 0;
  }
}

StixIndex::StixIndex(StixIndex&& other) noexcept { *this = std::move(other); }

StixIndex& StixIndex::operator=(StixIndex&& other) noexcept {
  if (this == &other) return *this;
  Unmap();
  header_ = other.header_;
  base_ = other.base_;
  map_len_ = other.map_len_;
  nodes_ = other.nodes_;
  order_ = other.order_;
  col_x_min_ = other.col_x_min_;
  col_y_min_ = other.col_y_min_;
  col_x_max_ = other.col_x_max_;
  col_y_max_ = other.col_y_max_;
  col_t_min_ = other.col_t_min_;
  col_t_max_ = other.col_t_max_;
  rec_offsets_ = other.rec_offsets_;
  id_dir_ = other.id_dir_;
  postings_ = other.postings_;
  other.base_ = nullptr;
  other.map_len_ = 0;
  return *this;
}

StatusOr<StixIndex> StixIndex::Open(const std::string& stix_path,
                                    const std::string& stpq_path) {
  StixIndex index;
  ST4ML_RETURN_IF_ERROR(index.Validate(stix_path, stpq_path));
  return index;
}

Status StixIndex::Validate(const std::string& stix_path,
                           const std::string& stpq_path) {
  int fd = ::open(stix_path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such stix file: " + stix_path);
    }
    return Status::IOError("cannot open " + stix_path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + stix_path);
  }
  const uint64_t actual_bytes = static_cast<uint64_t>(st.st_size);
  if (actual_bytes < sizeof(StixHeader)) {
    ::close(fd);
    return Status::InvalidArgument("truncated stix header in " + stix_path);
  }
  void* map = ::mmap(nullptr, actual_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping outlives the descriptor
  if (map == MAP_FAILED) {
    return Status::IOError("cannot mmap " + stix_path);
  }
  base_ = static_cast<const uint8_t*>(map);
  map_len_ = static_cast<size_t>(actual_bytes);

  std::memcpy(&header_, base_, sizeof(header_));
  if (std::memcmp(header_.magic, kStixMagic, sizeof(kStixMagic)) != 0) {
    return Status::InvalidArgument("bad stix magic in " + stix_path);
  }
  if (header_.version != kStixVersion) {
    return Status::InvalidArgument("unsupported stix version in " + stix_path);
  }
  // Count-overflow guards BEFORE the layout audit: with every count capped
  // at 2^32 the layout arithmetic below cannot wrap, so a forged header
  // cannot alias a bogus section on top of a plausible file size.
  const uint64_t n = header_.record_count;
  if (n > UINT32_MAX || header_.node_count > UINT32_MAX ||
      header_.id_count > n) {
    return Status::InvalidArgument("stix count overflow in " + stix_path);
  }
  if ((n == 0) != (header_.node_count == 0)) {
    return Status::InvalidArgument("stix node/record counts disagree in " +
                                   stix_path);
  }
  StixLayout layout =
      ComputeStixLayout(n, header_.node_count, header_.id_count);
  if (header_.file_bytes != layout.total || actual_bytes != layout.total) {
    return Status::InvalidArgument("truncated stix page table in " +
                                   stix_path);
  }
  for (uint32_t s = 0; s < kStixNumSections; ++s) {
    if (header_.section_off[s] != layout.off[s]) {
      return Status::InvalidArgument("bad stix section layout in " +
                                     stix_path);
    }
  }

  nodes_ = reinterpret_cast<const StixNode*>(base_ + layout.off[kStixNodes]);
  order_ = reinterpret_cast<const uint32_t*>(base_ + layout.off[kStixOrder]);
  col_x_min_ =
      reinterpret_cast<const double*>(base_ + layout.off[kStixColXMin]);
  col_y_min_ =
      reinterpret_cast<const double*>(base_ + layout.off[kStixColYMin]);
  col_x_max_ =
      reinterpret_cast<const double*>(base_ + layout.off[kStixColXMax]);
  col_y_max_ =
      reinterpret_cast<const double*>(base_ + layout.off[kStixColYMax]);
  col_t_min_ =
      reinterpret_cast<const int64_t*>(base_ + layout.off[kStixColTMin]);
  col_t_max_ =
      reinterpret_cast<const int64_t*>(base_ + layout.off[kStixColTMax]);
  rec_offsets_ =
      reinterpret_cast<const uint64_t*>(base_ + layout.off[kStixRecOffsets]);
  id_dir_ =
      reinterpret_cast<const StixIdEntry*>(base_ + layout.off[kStixIdDir]);
  postings_ =
      reinterpret_cast<const uint32_t*>(base_ + layout.off[kStixPostings]);

  // Node structure: children strictly below their parent (the bottom-up
  // packing invariant), leaf runs inside the record range, no empty nodes.
  for (uint64_t i = 0; i < header_.node_count; ++i) {
    const StixNode& node = nodes_[i];
    const uint64_t first = node.first;
    const uint64_t count = node.count;
    if (count == 0) {
      return Status::InvalidArgument("empty stix node in " + stix_path);
    }
    if (node.leaf != 0) {
      if (first + count > n) {
        return Status::InvalidArgument("stix leaf run out of bounds in " +
                                       stix_path);
      }
    } else if (first + count > i) {
      return Status::InvalidArgument("stix child range out of bounds in " +
                                     stix_path);
    }
  }
  // `order` and `postings` must each be a permutation of the record
  // positions — duplicates would return duplicated records.
  std::vector<bool> seen(static_cast<size_t>(n), false);
  for (uint64_t j = 0; j < n; ++j) {
    if (order_[j] >= n || seen[order_[j]]) {
      return Status::InvalidArgument("stix order is not a permutation in " +
                                     stix_path);
    }
    seen[order_[j]] = true;
  }
  seen.assign(static_cast<size_t>(n), false);
  for (uint64_t j = 0; j < n; ++j) {
    if (postings_[j] >= n || seen[postings_[j]]) {
      return Status::InvalidArgument(
          "stix postings are not a permutation in " + stix_path);
    }
    seen[postings_[j]] = true;
  }
  // Record offsets: monotone, starting at or after the STPQ header, ending
  // inside the source file — a postings/leaf hit can never resolve to a
  // byte range past EOF.
  if (n > 0 && rec_offsets_[0] < kStpqHeaderBytes) {
    return Status::InvalidArgument("stix record offsets below header in " +
                                   stix_path);
  }
  for (uint64_t j = 0; j < n; ++j) {
    if (rec_offsets_[j] > rec_offsets_[j + 1]) {
      return Status::InvalidArgument("stix record offsets not monotone in " +
                                     stix_path);
    }
  }
  if (rec_offsets_[n] > header_.source_size) {
    return Status::InvalidArgument("stix record offsets past EOF in " +
                                   stix_path);
  }
  // Id directory: sorted, postings runs in bounds and covering exactly
  // the postings section.
  uint64_t postings_total = 0;
  for (uint64_t d = 0; d < header_.id_count; ++d) {
    const StixIdEntry& entry = id_dir_[d];
    if (d > 0 && id_dir_[d - 1].id >= entry.id) {
      return Status::InvalidArgument("stix id directory unsorted in " +
                                     stix_path);
    }
    if (entry.first + entry.count > n || entry.count == 0) {
      return Status::InvalidArgument("stix postings run out of bounds in " +
                                     stix_path);
    }
    postings_total += entry.count;
  }
  if (postings_total != n) {
    return Status::InvalidArgument("stix postings do not cover records in " +
                                   stix_path);
  }
  // Staleness: the sidecar must describe the CURRENT source file. The
  // size|mtime pair is the dataset cache's key; the header fingerprint
  // additionally catches a same-size rewrite within one mtime tick. An
  // unreadable stat or header on the source is treated as stale — serving
  // index hits for a file we cannot even inspect would be worse.
  StatusOr<int64_t> mtime = FileMtimeStamp(stpq_path);
  StatusOr<uint64_t> fingerprint = StpqHeaderFingerprint(stpq_path);
  if (!mtime.ok() || !fingerprint.ok() ||
      FileSizeBytes(stpq_path) != header_.source_size ||
      *mtime != header_.source_mtime ||
      *fingerprint != header_.source_fingerprint) {
    return Status::InvalidArgument("stale stix sidecar for " + stpq_path);
  }
  return Status::Ok();
}

void StixIndex::QueryBox(const accel::BoxFilterQuery& query,
                         std::vector<uint32_t>* hits,
                         StixQueryStats* stats) const {
  hits->clear();
  if (header_.node_count == 0) return;
  PageTouches pages;
  const uint64_t nodes_off = header_.section_off[kStixNodes];

  // Root-to-leaf walk over the mapped nodes; every visited node is a page
  // touch whether or not it prunes.
  std::vector<uint32_t> stack;
  stack.push_back(static_cast<uint32_t>(header_.node_count - 1));
  std::vector<std::pair<uint32_t, uint32_t>> runs;
  while (!stack.empty()) {
    uint32_t idx = stack.back();
    stack.pop_back();
    const StixNode& node = nodes_[idx];
    pages.Touch(nodes_off + idx * sizeof(StixNode), sizeof(StixNode));
    if (!NodeIntersects(query, node)) continue;
    if (node.leaf != 0) {
      runs.emplace_back(node.first, node.first + node.count);
    } else {
      for (uint32_t c = 0; c < node.count; ++c) stack.push_back(node.first + c);
    }
  }
  std::sort(runs.begin(), runs.end());
  // Coalesce adjacent leaf runs into maximal contiguous column spans: one
  // kernel pass (and one page-touch accounting) per span.
  size_t out = 0;
  for (const auto& run : runs) {
    if (out > 0 && run.first <= runs[out - 1].second) {
      runs[out - 1].second = std::max(runs[out - 1].second, run.second);
    } else {
      runs[out++] = run;
    }
  }
  runs.resize(out);

  std::vector<uint8_t> bitmap;
  for (const auto& [lo, hi] : runs) {
    const size_t len = hi - lo;
    accel::EnvelopeView view{col_x_min_ + lo, col_y_min_ + lo,
                             col_x_max_ + lo, col_y_max_ + lo,
                             col_t_min_ + lo, col_t_max_ + lo, len};
    bitmap.assign(len, 0);
    accel::Active().FilterBoxes(query, view, bitmap.data());
    accel::BackendRegistry::Instance().CountBatch(len);
    for (uint32_t s = kStixColXMin; s <= kStixColTMax; ++s) {
      // Every column is 8 bytes wide (f64 or i64).
      pages.Touch(header_.section_off[s] + static_cast<uint64_t>(lo) * 8,
                  len * 8);
    }
    pages.Touch(header_.section_off[kStixOrder] +
                    static_cast<uint64_t>(lo) * sizeof(uint32_t),
                len * sizeof(uint32_t));
    for (size_t j = 0; j < len; ++j) {
      if (bitmap[j] != 0) hits->push_back(order_[lo + j]);
    }
  }
  std::sort(hits->begin(), hits->end());
  if (stats != nullptr) stats->pages_read += pages.count();
}

void StixIndex::LookupIds(const std::vector<int64_t>& ids,
                          const accel::BoxFilterQuery& query, bool apply_box,
                          std::vector<uint32_t>* hits,
                          StixQueryStats* stats) const {
  hits->clear();
  if (header_.id_count == 0) return;
  PageTouches pages;
  const uint64_t dir_off = header_.section_off[kStixIdDir];
  const uint64_t post_off = header_.section_off[kStixPostings];

  std::vector<uint32_t> candidates;
  for (int64_t id : ids) {
    // Manual binary search so every probed directory entry counts as a
    // page touch — that IS the I/O an external-memory lookup pays.
    uint64_t lo = 0;
    uint64_t hi = header_.id_count;
    const StixIdEntry* found = nullptr;
    while (lo < hi) {
      uint64_t mid = lo + (hi - lo) / 2;
      pages.Touch(dir_off + mid * sizeof(StixIdEntry), sizeof(StixIdEntry));
      if (id_dir_[mid].id < id) {
        lo = mid + 1;
      } else if (id_dir_[mid].id > id) {
        hi = mid;
      } else {
        found = &id_dir_[mid];
        break;
      }
    }
    if (found == nullptr) continue;
    pages.Touch(post_off + found->first * sizeof(uint32_t),
                found->count * sizeof(uint32_t));
    if (stats != nullptr) stats->postings_hits += found->count;
    for (uint64_t p = 0; p < found->count; ++p) {
      candidates.push_back(postings_[found->first + p]);
    }
  }

  if (apply_box && !candidates.empty()) {
    // Gather the candidates' envelopes into a small SoA batch and refine
    // through ONE kernel pass — the exact predicate every other path uses.
    const size_t len = candidates.size();
    std::vector<double> gx_min(len), gy_min(len), gx_max(len), gy_max(len);
    std::vector<int64_t> gt_min(len), gt_max(len);
    for (size_t j = 0; j < len; ++j) {
      const uint32_t pos = candidates[j];
      gx_min[j] = col_x_min_[pos];
      gy_min[j] = col_y_min_[pos];
      gx_max[j] = col_x_max_[pos];
      gy_max[j] = col_y_max_[pos];
      gt_min[j] = col_t_min_[pos];
      gt_max[j] = col_t_max_[pos];
      for (uint32_t s = kStixColXMin; s <= kStixColTMax; ++s) {
        pages.Touch(header_.section_off[s] + static_cast<uint64_t>(pos) * 8,
                    8);
      }
    }
    accel::EnvelopeView view{gx_min.data(), gy_min.data(), gx_max.data(),
                             gy_max.data(), gt_min.data(), gt_max.data(),
                             len};
    std::vector<uint8_t> bitmap(len, 0);
    accel::Active().FilterBoxes(query, view, bitmap.data());
    accel::BackendRegistry::Instance().CountBatch(len);
    size_t kept = 0;
    for (size_t j = 0; j < len; ++j) {
      if (bitmap[j] != 0) candidates[kept++] = candidates[j];
    }
    candidates.resize(kept);
  }

  for (uint32_t pos : candidates) {
    pages.Touch(header_.section_off[kStixOrder] +
                    static_cast<uint64_t>(pos) * sizeof(uint32_t),
                sizeof(uint32_t));
    hits->push_back(order_[pos]);
  }
  std::sort(hits->begin(), hits->end());
  if (stats != nullptr) stats->pages_read += pages.count();
}

}  // namespace st4ml
