#ifndef ST4ML_INDEX_RTREE_H_
#define ST4ML_INDEX_RTREE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "index/stbox.h"

namespace st4ml {

/// A 3-d (x, y, t) R-tree bulk-loaded with Sort-Tile-Recursive packing.
///
/// The payload type `T` is stored by value; `Build` takes a function mapping
/// each item to its STBox envelope (defaulted to identity when T is STBox).
/// `Query` returns the ORIGINAL indices of matching items, so callers can
/// join results back against side arrays — this is what the conversion
/// stage's broadcast R-tree over structure cells relies on.
template <typename T>
class RTree {
 public:
  static constexpr size_t kNodeCapacity = 16;

  RTree() = default;

  /// Bulk load from items that are themselves STBoxes.
  void Build(const std::vector<T>& items) {
    Build(items, [](const T& item) -> const STBox& { return item; });
  }

  template <typename BoxFn>
  void Build(const std::vector<T>& items, BoxFn box_of) {
    items_ = items;
    boxes_.clear();
    boxes_.reserve(items_.size());
    for (const T& item : items_) boxes_.push_back(box_of(item));
    Pack();
  }

  size_t size() const { return items_.size(); }
  const T& item(size_t i) const { return items_[i]; }
  const STBox& box(size_t i) const { return boxes_[i]; }

  /// Original indices of every item whose envelope intersects `query`.
  std::vector<size_t> Query(const STBox& query) const {
    std::vector<size_t> out;
    QueryVisit(query, [&out](size_t i) { out.push_back(i); });
    return out;
  }

  /// Calls `visit(original_index)` for every match; avoids the result vector.
  template <typename Visit>
  void QueryVisit(const STBox& query, Visit visit) const {
    if (nodes_.empty()) return;
    QueryNode(nodes_.size() - 1, query, visit);
  }

 private:
  struct Node {
    STBox box;
    uint32_t first = 0;  // entry index (leaf) or node index (internal)
    uint32_t count = 0;
    bool leaf = true;
  };

  void Pack() {
    order_.resize(boxes_.size());
    std::iota(order_.begin(), order_.end(), size_t{0});
    nodes_.clear();
    if (order_.empty()) return;

    // 3-d STR: slabs by x, sub-slabs by y, runs by t, then pack leaves of
    // kNodeCapacity consecutive entries.
    size_t n = order_.size();
    size_t leaves = (n + kNodeCapacity - 1) / kNodeCapacity;
    size_t s = static_cast<size_t>(
        std::ceil(std::cbrt(static_cast<double>(leaves))));
    size_t slab = s * s * kNodeCapacity;
    size_t subslab = s * kNodeCapacity;

    auto center_x = [this](size_t i) {
      return boxes_[i].mbr.x_min + boxes_[i].mbr.x_max;
    };
    auto center_y = [this](size_t i) {
      return boxes_[i].mbr.y_min + boxes_[i].mbr.y_max;
    };
    auto center_t = [this](size_t i) {
      return boxes_[i].time.start() + boxes_[i].time.end();
    };

    std::sort(order_.begin(), order_.end(),
              [&](size_t a, size_t b) { return center_x(a) < center_x(b); });
    for (size_t lo = 0; lo < n; lo += slab) {
      size_t hi = std::min(lo + slab, n);
      std::sort(order_.begin() + lo, order_.begin() + hi,
                [&](size_t a, size_t b) { return center_y(a) < center_y(b); });
      for (size_t slo = lo; slo < hi; slo += subslab) {
        size_t shi = std::min(slo + subslab, hi);
        std::sort(
            order_.begin() + slo, order_.begin() + shi,
            [&](size_t a, size_t b) { return center_t(a) < center_t(b); });
      }
    }

    // Leaf level over consecutive runs of the STR ordering.
    size_t level_begin = nodes_.size();
    for (size_t lo = 0; lo < n; lo += kNodeCapacity) {
      Node node;
      node.leaf = true;
      node.first = static_cast<uint32_t>(lo);
      node.count = static_cast<uint32_t>(std::min(kNodeCapacity, n - lo));
      for (size_t i = 0; i < node.count; ++i) {
        node.box.Extend(boxes_[order_[lo + i]]);
      }
      nodes_.push_back(node);
    }

    // Internal levels: group consecutive child nodes until a single root.
    while (nodes_.size() - level_begin > 1) {
      size_t level_end = nodes_.size();
      for (size_t lo = level_begin; lo < level_end; lo += kNodeCapacity) {
        Node node;
        node.leaf = false;
        node.first = static_cast<uint32_t>(lo);
        node.count = static_cast<uint32_t>(
            std::min(kNodeCapacity, level_end - lo));
        for (size_t i = 0; i < node.count; ++i) {
          node.box.Extend(nodes_[lo + i].box);
        }
        nodes_.push_back(node);
      }
      level_begin = level_end;
    }
  }

  template <typename Visit>
  void QueryNode(size_t node_idx, const STBox& query, Visit& visit) const {
    const Node& node = nodes_[node_idx];
    if (!node.box.Intersects(query)) return;
    if (node.leaf) {
      for (size_t i = 0; i < node.count; ++i) {
        size_t entry = order_[node.first + i];
        if (boxes_[entry].Intersects(query)) visit(entry);
      }
      return;
    }
    for (size_t i = 0; i < node.count; ++i) {
      QueryNode(node.first + i, query, visit);
    }
  }

  std::vector<T> items_;
  std::vector<STBox> boxes_;
  std::vector<size_t> order_;
  std::vector<Node> nodes_;
};

}  // namespace st4ml

#endif  // ST4ML_INDEX_RTREE_H_
