#ifndef ST4ML_INDEX_ZCURVE_H_
#define ST4ML_INDEX_ZCURVE_H_

#include <cstdint>

#include "geometry/mbr.h"
#include "geometry/point.h"

namespace st4ml {

/// Interleaves the low 16 bits of x and y into a 32-bit Morton code.
inline uint32_t MortonInterleave16(uint32_t x, uint32_t y) {
  auto spread = [](uint32_t v) {
    v &= 0xFFFF;
    v = (v | (v << 8)) & 0x00FF00FF;
    v = (v | (v << 4)) & 0x0F0F0F0F;
    v = (v | (v << 2)) & 0x33333333;
    v = (v | (v << 1)) & 0x55555555;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

/// The Z2 space-filling curve GeoMesa keys points with: a point in `extent`
/// maps to the Morton code of its cell in a 2^bits x 2^bits grid.
class Z2Curve {
 public:
  Z2Curve() = default;
  Z2Curve(const Mbr& extent, int bits) : extent_(extent), bits_(bits) {}

  uint32_t Encode(const Point& p) const {
    uint32_t max_cell = (1u << bits_) - 1;
    double fx = extent_.Width() > 0 ? (p.x - extent_.x_min) / extent_.Width()
                                    : 0.0;
    double fy = extent_.Height() > 0 ? (p.y - extent_.y_min) / extent_.Height()
                                     : 0.0;
    uint32_t cx = ClampCell(fx, max_cell);
    uint32_t cy = ClampCell(fy, max_cell);
    return MortonInterleave16(cx, cy);
  }

  int bits() const { return bits_; }
  const Mbr& extent() const { return extent_; }

 private:
  static uint32_t ClampCell(double frac, uint32_t max_cell) {
    if (frac <= 0.0) return 0;
    if (frac >= 1.0) return max_cell;
    return static_cast<uint32_t>(frac * (max_cell + 1));
  }

  Mbr extent_;
  int bits_ = 8;
};

}  // namespace st4ml

#endif  // ST4ML_INDEX_ZCURVE_H_
