#ifndef ST4ML_INDEX_STBOX_H_
#define ST4ML_INDEX_STBOX_H_

#include "geometry/mbr.h"
#include "temporal/duration.h"

namespace st4ml {

/// A spatio-temporal bounding box: a 2-d MBR extruded over a closed time
/// interval. This is the envelope every instance and every partition exposes,
/// and the unit the partitioners, on-disk metadata, and R-trees all speak.
struct STBox {
  Mbr mbr;
  Duration time;

  STBox() = default;
  STBox(const Mbr& mbr_in, const Duration& time_in)
      : mbr(mbr_in), time(time_in) {}

  bool Intersects(const STBox& other) const {
    return mbr.Intersects(other.mbr) && time.Intersects(other.time);
  }

  bool Contains(const STBox& other) const {
    return mbr.Contains(other.mbr) && time.Contains(other.time);
  }

  void Extend(const STBox& other) {
    if (mbr.IsEmpty()) {
      *this = other;
      return;
    }
    mbr.Extend(other.mbr);
    time.Extend(other.time);
  }

  /// Spatio-temporal volume (area x seconds); degenerate extents count as 0.
  double Volume() const {
    return mbr.Area() * static_cast<double>(time.Seconds());
  }
};

}  // namespace st4ml

#endif  // ST4ML_INDEX_STBOX_H_
