// SSE2 backend: 2-wide double lanes. Compiled unconditionally on x86-64
// (SSE2 is baseline), registered whenever the CPU reports sse2. Pinned
// bit-identical to backend_scalar.cc — see the per-kernel notes for how
// each vector form maps onto the scalar contract.

#include "accel/kernels.h"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <cmath>
#include <limits>

#include "accel/hash_mix.h"
#include "geometry/point.h"

namespace st4ml {
namespace accel {
namespace {

/// 64-bit lane-wise wrapping multiply. SSE2 has no 64-bit mullo, so build
/// it from 32x32->64 partial products: lo*lo plus the two cross terms
/// shifted up 32 (the hi*hi term overflows past bit 63 and drops out of a
/// wrapping multiply entirely).
inline __m128i MulLo64(__m128i a, __m128i b) {
  __m128i lo = _mm_mul_epu32(a, b);
  __m128i cross = _mm_add_epi64(_mm_mul_epu32(_mm_srli_epi64(a, 32), b),
                                _mm_mul_epu32(a, _mm_srli_epi64(b, 32)));
  return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

inline __m128i SplitMix64x2(__m128i z) {
  const __m128i kGolden = _mm_set1_epi64x(0x9e3779b97f4a7c15ULL);
  const __m128i kMix1 = _mm_set1_epi64x(0xbf58476d1ce4e5b9ULL);
  const __m128i kMix2 = _mm_set1_epi64x(0x94d049bb133111ebULL);
  z = _mm_add_epi64(z, kGolden);
  z = MulLo64(_mm_xor_si128(z, _mm_srli_epi64(z, 30)), kMix1);
  z = MulLo64(_mm_xor_si128(z, _mm_srli_epi64(z, 27)), kMix2);
  return _mm_xor_si128(z, _mm_srli_epi64(z, 31));
}

class Sse2BackendImpl final : public KernelBackend {
 public:
  const char* name() const override { return "sse2"; }

  void FilterBoxes(const BoxFilterQuery& q, const EnvelopeView& b,
                   uint8_t* hits) const override {
    const __m128d qx_min = _mm_set1_pd(q.x_min);
    const __m128d qx_max = _mm_set1_pd(q.x_max);
    const __m128d qy_min = _mm_set1_pd(q.y_min);
    const __m128d qy_max = _mm_set1_pd(q.y_max);
    size_t i = 0;
    for (; i + 2 <= b.size; i += 2) {
      __m128d bx_min = _mm_loadu_pd(b.x_min + i);
      __m128d bx_max = _mm_loadu_pd(b.x_max + i);
      __m128d by_min = _mm_loadu_pd(b.y_min + i);
      __m128d by_max = _mm_loadu_pd(b.y_max + i);
      // cmple is false on NaN operands, exactly like the scalar <=.
      __m128d m = _mm_and_pd(_mm_cmple_pd(bx_min, bx_max),
                             _mm_cmple_pd(by_min, by_max));
      m = _mm_and_pd(m, _mm_cmple_pd(qx_min, bx_max));
      m = _mm_and_pd(m, _mm_cmple_pd(bx_min, qx_max));
      m = _mm_and_pd(m, _mm_cmple_pd(qy_min, by_max));
      m = _mm_and_pd(m, _mm_cmple_pd(by_min, qy_max));
      int bits = _mm_movemask_pd(m);
      // SSE2 has no 64-bit integer compare (that's SSE4.2), so the two
      // time-interval terms stay scalar per lane.
      hits[i] = ((bits & 1) != 0 && q.t_min <= b.t_max[i] &&
                 b.t_min[i] <= q.t_max)
                    ? 1
                    : 0;
      hits[i + 1] = ((bits & 2) != 0 && q.t_min <= b.t_max[i + 1] &&
                     b.t_min[i + 1] <= q.t_max)
                        ? 1
                        : 0;
    }
    for (; i < b.size; ++i) {
      bool hit = b.x_min[i] <= b.x_max[i] && b.y_min[i] <= b.y_max[i] &&
                 q.x_min <= b.x_max[i] && b.x_min[i] <= q.x_max &&
                 q.y_min <= b.y_max[i] && b.y_min[i] <= q.y_max &&
                 q.t_min <= b.t_max[i] && b.t_min[i] <= q.t_max;
      hits[i] = hit ? 1 : 0;
    }
  }

  void CombineHashes(const uint64_t* h1, const uint64_t* h2, size_t n,
                     uint64_t* out) const override {
    const __m128i kGolden = _mm_set1_epi64x(0x9e3779b97f4a7c15ULL);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      __m128i a =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(h1 + i));
      __m128i b =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(h2 + i));
      // h1 ^ (h2 + golden + (h1 << 6) + (h1 >> 2)), then SplitMix64.
      __m128i inner = _mm_add_epi64(b, kGolden);
      inner = _mm_add_epi64(inner, _mm_slli_epi64(a, 6));
      inner = _mm_add_epi64(inner, _mm_srli_epi64(a, 2));
      __m128i z = SplitMix64x2(_mm_xor_si128(a, inner));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), z);
    }
    for (; i < n; ++i) out[i] = HashCombine(h1[i], h2[i]);
  }

  void HaversineMeters(const double* ax, const double* ay, const double* bx,
                       const double* by, size_t n,
                       double* out) const override {
    // Scalar in every backend: libm sin/cos/asin have no bit-exact vector
    // counterpart (kernels.h).
    for (size_t i = 0; i < n; ++i) {
      out[i] = st4ml::HaversineMeters(Point(ax[i], ay[i]), Point(bx[i], by[i]));
    }
  }

  void EuclideanDistance(const double* ax, const double* ay, const double* bx,
                         const double* by, size_t n,
                         double* out) const override {
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      __m128d dx = _mm_sub_pd(_mm_loadu_pd(ax + i), _mm_loadu_pd(bx + i));
      __m128d dy = _mm_sub_pd(_mm_loadu_pd(ay + i), _mm_loadu_pd(by + i));
      __m128d d = _mm_sqrt_pd(
          _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)));
      _mm_storeu_pd(out + i, d);
    }
    for (; i < n; ++i) {
      double dx = ax[i] - bx[i];
      double dy = ay[i] - by[i];
      out[i] = std::sqrt(dx * dx + dy * dy);
    }
  }

  void MinMaxSum(const double* v, size_t n, double* min_out, double* max_out,
                 double* sum_out) const override {
    // The 8-lane contract as 4 two-wide accumulators: vector k holds lanes
    // {2k, 2k+1}, so consuming 8 consecutive elements per iteration lands
    // element j of each block in lane j — the same strided subsequences the
    // scalar backend folds. min_pd/max_pd(acc, v) match the scalar ternary
    // including NaN handling (unordered compare keeps the second operand).
    const double kInf = std::numeric_limits<double>::infinity();
    __m128d mn[4], mx[4], sm[4];
    for (int k = 0; k < 4; ++k) {
      mn[k] = _mm_set1_pd(kInf);
      mx[k] = _mm_set1_pd(-kInf);
      sm[k] = _mm_setzero_pd();
    }
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      for (int k = 0; k < 4; ++k) {
        __m128d x = _mm_loadu_pd(v + i + 2 * k);
        mn[k] = _mm_min_pd(mn[k], x);
        mx[k] = _mm_max_pd(mx[k], x);
        sm[k] = _mm_add_pd(sm[k], x);
      }
    }
    double mn_l[8], mx_l[8], sm_l[8];
    for (int k = 0; k < 4; ++k) {
      _mm_storeu_pd(mn_l + 2 * k, mn[k]);
      _mm_storeu_pd(mx_l + 2 * k, mx[k]);
      _mm_storeu_pd(sm_l + 2 * k, sm[k]);
    }
    for (; i < n; ++i) {
      // i - (n & ~7) == i % 8 here: the vector loop consumed a multiple of
      // eight elements, so the tail keeps the contract's lane mapping.
      int j = static_cast<int>(i % 8);
      double x = v[i];
      mn_l[j] = mn_l[j] < x ? mn_l[j] : x;
      mx_l[j] = mx_l[j] > x ? mx_l[j] : x;
      sm_l[j] += x;
    }
    double mn_all = mn_l[0], mx_all = mx_l[0], sm_all = sm_l[0];
    for (int j = 1; j < 8; ++j) {
      mn_all = mn_all < mn_l[j] ? mn_all : mn_l[j];
      mx_all = mx_all > mx_l[j] ? mx_all : mx_l[j];
      sm_all += sm_l[j];
    }
    *min_out = mn_all;
    *max_out = mx_all;
    *sum_out = sm_all;
  }
};

}  // namespace

const KernelBackend* Sse2Backend() {
  static const Sse2BackendImpl backend;
  return &backend;
}

}  // namespace accel
}  // namespace st4ml

#else  // !defined(__SSE2__)

namespace st4ml {
namespace accel {

const KernelBackend* Sse2Backend() { return nullptr; }

}  // namespace accel
}  // namespace st4ml

#endif
