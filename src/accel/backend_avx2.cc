// AVX2 backend: 4-wide double and 64-bit integer lanes. This is the ONLY
// translation unit compiled with -mavx2 (per-file COMPILE_OPTIONS in
// src/CMakeLists.txt) — and deliberately WITHOUT -mfma, so the compiler
// cannot contract mul+add sequences into fused ops that would round
// differently from the scalar backend. Registered only when
// __builtin_cpu_supports("avx2") says the running CPU has it.

#include "accel/kernels.h"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <cmath>
#include <limits>

#include "accel/hash_mix.h"
#include "geometry/point.h"

namespace st4ml {
namespace accel {
namespace {

/// 64-bit lane-wise wrapping multiply — AVX2 still has no 64-bit mullo
/// (that arrives with AVX-512DQ), so compose it from 32x32->64 partials.
inline __m256i MulLo64(__m256i a, __m256i b) {
  __m256i lo = _mm256_mul_epu32(a, b);
  __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

inline __m256i SplitMix64x4(__m256i z) {
  const __m256i kGolden = _mm256_set1_epi64x(0x9e3779b97f4a7c15ULL);
  const __m256i kMix1 = _mm256_set1_epi64x(0xbf58476d1ce4e5b9ULL);
  const __m256i kMix2 = _mm256_set1_epi64x(0x94d049bb133111ebULL);
  z = _mm256_add_epi64(z, kGolden);
  z = MulLo64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)), kMix1);
  z = MulLo64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)), kMix2);
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

class Avx2BackendImpl final : public KernelBackend {
 public:
  const char* name() const override { return "avx2"; }

  void FilterBoxes(const BoxFilterQuery& q, const EnvelopeView& b,
                   uint8_t* hits) const override {
    const __m256d qx_min = _mm256_set1_pd(q.x_min);
    const __m256d qx_max = _mm256_set1_pd(q.x_max);
    const __m256d qy_min = _mm256_set1_pd(q.y_min);
    const __m256d qy_max = _mm256_set1_pd(q.y_max);
    const __m256i qt_min = _mm256_set1_epi64x(q.t_min);
    const __m256i qt_max = _mm256_set1_epi64x(q.t_max);
    size_t i = 0;
    for (; i + 4 <= b.size; i += 4) {
      __m256d bx_min = _mm256_loadu_pd(b.x_min + i);
      __m256d bx_max = _mm256_loadu_pd(b.x_max + i);
      __m256d by_min = _mm256_loadu_pd(b.y_min + i);
      __m256d by_max = _mm256_loadu_pd(b.y_max + i);
      __m256i bt_min =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.t_min + i));
      __m256i bt_max =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.t_max + i));
      // _CMP_LE_OQ is false on NaN, matching the scalar <=.
      __m256d m = _mm256_and_pd(_mm256_cmp_pd(bx_min, bx_max, _CMP_LE_OQ),
                                _mm256_cmp_pd(by_min, by_max, _CMP_LE_OQ));
      m = _mm256_and_pd(m, _mm256_cmp_pd(qx_min, bx_max, _CMP_LE_OQ));
      m = _mm256_and_pd(m, _mm256_cmp_pd(bx_min, qx_max, _CMP_LE_OQ));
      m = _mm256_and_pd(m, _mm256_cmp_pd(qy_min, by_max, _CMP_LE_OQ));
      m = _mm256_and_pd(m, _mm256_cmp_pd(by_min, qy_max, _CMP_LE_OQ));
      // a <= b over int64 as NOT (a > b); AVX2 has only cmpgt for 64-bit.
      __m256i t_ok = _mm256_andnot_si256(
          _mm256_cmpgt_epi64(qt_min, bt_max),
          _mm256_andnot_si256(_mm256_cmpgt_epi64(bt_min, qt_max),
                              _mm256_set1_epi64x(-1)));
      m = _mm256_and_pd(m, _mm256_castsi256_pd(t_ok));
      int bits = _mm256_movemask_pd(m);
      hits[i] = (bits & 1) ? 1 : 0;
      hits[i + 1] = (bits & 2) ? 1 : 0;
      hits[i + 2] = (bits & 4) ? 1 : 0;
      hits[i + 3] = (bits & 8) ? 1 : 0;
    }
    for (; i < b.size; ++i) {
      bool hit = b.x_min[i] <= b.x_max[i] && b.y_min[i] <= b.y_max[i] &&
                 q.x_min <= b.x_max[i] && b.x_min[i] <= q.x_max &&
                 q.y_min <= b.y_max[i] && b.y_min[i] <= q.y_max &&
                 q.t_min <= b.t_max[i] && b.t_min[i] <= q.t_max;
      hits[i] = hit ? 1 : 0;
    }
  }

  void CombineHashes(const uint64_t* h1, const uint64_t* h2, size_t n,
                     uint64_t* out) const override {
    const __m256i kGolden = _mm256_set1_epi64x(0x9e3779b97f4a7c15ULL);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h1 + i));
      __m256i b =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h2 + i));
      __m256i inner = _mm256_add_epi64(b, kGolden);
      inner = _mm256_add_epi64(inner, _mm256_slli_epi64(a, 6));
      inner = _mm256_add_epi64(inner, _mm256_srli_epi64(a, 2));
      __m256i z = SplitMix64x4(_mm256_xor_si256(a, inner));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), z);
    }
    for (; i < n; ++i) out[i] = HashCombine(h1[i], h2[i]);
  }

  void HaversineMeters(const double* ax, const double* ay, const double* bx,
                       const double* by, size_t n,
                       double* out) const override {
    // Scalar in every backend: libm sin/cos/asin have no bit-exact vector
    // counterpart (kernels.h).
    for (size_t i = 0; i < n; ++i) {
      out[i] = st4ml::HaversineMeters(Point(ax[i], ay[i]), Point(bx[i], by[i]));
    }
  }

  void EuclideanDistance(const double* ax, const double* ay, const double* bx,
                         const double* by, size_t n,
                         double* out) const override {
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      __m256d dx =
          _mm256_sub_pd(_mm256_loadu_pd(ax + i), _mm256_loadu_pd(bx + i));
      __m256d dy =
          _mm256_sub_pd(_mm256_loadu_pd(ay + i), _mm256_loadu_pd(by + i));
      __m256d d = _mm256_sqrt_pd(
          _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
      _mm256_storeu_pd(out + i, d);
    }
    for (; i < n; ++i) {
      double dx = ax[i] - bx[i];
      double dy = ay[i] - by[i];
      out[i] = std::sqrt(dx * dx + dy * dy);
    }
  }

  void MinMaxSum(const double* v, size_t n, double* min_out, double* max_out,
                 double* sum_out) const override {
    // The 8-lane contract as 2 four-wide accumulators: vector k holds
    // lanes {4k .. 4k+3}; see backend_scalar.cc for the canonical form.
    const double kInf = std::numeric_limits<double>::infinity();
    __m256d mn[2], mx[2], sm[2];
    for (int k = 0; k < 2; ++k) {
      mn[k] = _mm256_set1_pd(kInf);
      mx[k] = _mm256_set1_pd(-kInf);
      sm[k] = _mm256_setzero_pd();
    }
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      for (int k = 0; k < 2; ++k) {
        __m256d x = _mm256_loadu_pd(v + i + 4 * k);
        mn[k] = _mm256_min_pd(mn[k], x);
        mx[k] = _mm256_max_pd(mx[k], x);
        sm[k] = _mm256_add_pd(sm[k], x);
      }
    }
    double mn_l[8], mx_l[8], sm_l[8];
    for (int k = 0; k < 2; ++k) {
      _mm256_storeu_pd(mn_l + 4 * k, mn[k]);
      _mm256_storeu_pd(mx_l + 4 * k, mx[k]);
      _mm256_storeu_pd(sm_l + 4 * k, sm[k]);
    }
    for (; i < n; ++i) {
      int j = static_cast<int>(i % 8);
      double x = v[i];
      mn_l[j] = mn_l[j] < x ? mn_l[j] : x;
      mx_l[j] = mx_l[j] > x ? mx_l[j] : x;
      sm_l[j] += x;
    }
    double mn_all = mn_l[0], mx_all = mx_l[0], sm_all = sm_l[0];
    for (int j = 1; j < 8; ++j) {
      mn_all = mn_all < mn_l[j] ? mn_all : mn_l[j];
      mx_all = mx_all > mx_l[j] ? mx_all : mx_l[j];
      sm_all += sm_l[j];
    }
    *min_out = mn_all;
    *max_out = mx_all;
    *sum_out = sm_all;
  }
};

}  // namespace

const KernelBackend* Avx2Backend() {
  static const Avx2BackendImpl backend;
  return &backend;
}

}  // namespace accel
}  // namespace st4ml

#else  // AVX2 not compiled in

namespace st4ml {
namespace accel {

const KernelBackend* Avx2Backend() { return nullptr; }

}  // namespace accel
}  // namespace st4ml

#endif
