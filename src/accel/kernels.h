#ifndef ST4ML_ACCEL_KERNELS_H_
#define ST4ML_ACCEL_KERNELS_H_

// Vectorized columnar kernels behind a runtime CPU backend registry
// (DESIGN.md §11). STPQ is columnar on disk but the hot loops — ST-box
// containment in Selector, shuffle key hashing in BucketByTarget, distance
// math in the speed extractors — evaluated one record at a time. This layer
// restructures those loops around batch kernels over SoA columns, with a
// scalar reference backend that defines the exact semantics and SIMD
// backends (SSE2/AVX2, selected at runtime via CPUID) that must reproduce
// the scalar outputs BIT-FOR-BIT. The differential property harness
// (tests/common/property.h) and bench_simd's built-in comparison gate pin
// that contract: a backend is a speedup, never a different answer.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/stbox.h"

namespace st4ml {
namespace accel {

/// An ST query against envelope columns, flattened from an STBox. Closed
/// intervals on every axis, exactly like STBox::Intersects. The CALLER is
/// responsible for the query-side emptiness check (an inverted query box
/// matches nothing); the kernel folds the record-side emptiness check into
/// its predicate. FromBox copies the fields out of an STBox.
struct BoxFilterQuery {
  double x_min = 0.0;
  double y_min = 0.0;
  double x_max = 0.0;
  double y_max = 0.0;
  int64_t t_min = 0;
  int64_t t_max = 0;

  static BoxFilterQuery FromBox(const STBox& box) {
    return BoxFilterQuery{box.mbr.x_min, box.mbr.y_min, box.mbr.x_max,
                          box.mbr.y_max, box.time.start(), box.time.end()};
  }
};

/// A borrowed view over per-record envelope columns (SoA): record i's ST
/// envelope is ([x_min[i], x_max[i]] x [y_min[i], y_max[i]]) over
/// [t_min[i], t_max[i]]. Point records (events) simply have min == max.
/// No alignment requirement — kernels handle unaligned bases and tails.
struct EnvelopeView {
  const double* x_min = nullptr;
  const double* y_min = nullptr;
  const double* x_max = nullptr;
  const double* y_max = nullptr;
  const int64_t* t_min = nullptr;
  const int64_t* t_max = nullptr;
  size_t size = 0;
};

/// Owning envelope columns, materialized ONCE per partition (one
/// ComputeSTBox pass) and then filtered per query by the batch kernel —
/// the Selector stores these alongside its cached R-tree so a warm daemon
/// query refines columns directly instead of recomputing every record's
/// envelope (the old per-query ComputeSTBox loop).
class EnvelopeColumns {
 public:
  void Reserve(size_t n) {
    x_min_.reserve(n);
    y_min_.reserve(n);
    x_max_.reserve(n);
    y_max_.reserve(n);
    t_min_.reserve(n);
    t_max_.reserve(n);
  }

  void Append(const STBox& box) {
    x_min_.push_back(box.mbr.x_min);
    y_min_.push_back(box.mbr.y_min);
    x_max_.push_back(box.mbr.x_max);
    y_max_.push_back(box.mbr.y_max);
    t_min_.push_back(box.time.start());
    t_max_.push_back(box.time.end());
  }

  size_t size() const { return x_min_.size(); }
  bool empty() const { return x_min_.empty(); }

  EnvelopeView View() const {
    return EnvelopeView{x_min_.data(), y_min_.data(), x_max_.data(),
                        y_max_.data(), t_min_.data(), t_max_.data(),
                        x_min_.size()};
  }

 private:
  std::vector<double> x_min_, y_min_, x_max_, y_max_;
  std::vector<int64_t> t_min_, t_max_;
};

/// One CPU kernel backend. Implementations are stateless and thread-safe;
/// every method writes exactly its output range and nothing else. All
/// backends are pinned byte-identical to the scalar reference — the scalar
/// bodies in backend_scalar.cc ARE the semantics, including the fixed
/// lane/accumulation structure of the reductions (see MinMaxSum).
class KernelBackend {
 public:
  virtual ~KernelBackend() = default;

  /// "scalar", "sse2", "avx2" — the ST4ML_BACKEND / --backend vocabulary.
  virtual const char* name() const = 0;

  /// hits[i] = 1 iff record i's envelope is non-empty and intersects `q`
  /// (same closed-interval predicate as STBox::Intersects with the
  /// query-side emptiness test hoisted to the caller), else 0. NaN
  /// coordinates never match, exactly as in the scalar predicate.
  virtual void FilterBoxes(const BoxFilterQuery& q, const EnvelopeView& boxes,
                           uint8_t* hits) const = 0;

  /// out[i] = HashCombine(h1[i], h2[i]) — the PairHash combine, batched.
  virtual void CombineHashes(const uint64_t* h1, const uint64_t* h2, size_t n,
                             uint64_t* out) const = 0;

  /// out[i] = great-circle meters between (ax[i], ay[i]) and (bx[i], by[i]),
  /// bit-identical to geometry's HaversineMeters. Deliberately scalar in
  /// every backend: sin/cos/asin have no bit-exact vector form without
  /// vendoring a vector libm, and cross-backend identity outranks the win
  /// (DESIGN.md §11). The batch shape keeps call sites ready for one.
  virtual void HaversineMeters(const double* ax, const double* ay,
                               const double* bx, const double* by, size_t n,
                               double* out) const = 0;

  /// out[i] = sqrt(dx*dx + dy*dy) — every operation IEEE-exact (vector
  /// sqrt is correctly rounded), so SIMD lanes reproduce scalar bits.
  virtual void EuclideanDistance(const double* ax, const double* ay,
                                 const double* bx, const double* by, size_t n,
                                 double* out) const = 0;

  /// Column min / max / sum with a FIXED 8-lane-strided accumulation
  /// structure: lane j folds elements j, j+8, j+16, ... in index order
  /// (min as `acc = acc < v ? acc : v`, max as `acc = acc > v ? acc : v` —
  /// the SSE min_pd/max_pd NaN semantics — sum as `acc += v`), then the
  /// eight lanes combine left to right. Scalar implements the same eight
  /// lanes, so every backend is bit-identical even under reordering-
  /// sensitive float addition and NaN propagation. Empty input yields
  /// (+inf, -inf, 0).
  virtual void MinMaxSum(const double* v, size_t n, double* min_out,
                         double* max_out, double* sum_out) const = 0;
};

/// The process-wide backend registry: knows every compiled-in backend,
/// filters them by runtime CPU support (CPUID via __builtin_cpu_supports),
/// and picks the active one — best available by default, overridable with
/// ST4ML_BACKEND=scalar|sse2|avx2 or programmatically (the tools' --backend
/// flag, the property harness's per-seed randomization). Also the home of
/// the two batch-dispatch counters the observability layer surfaces.
class BackendRegistry {
 public:
  static BackendRegistry& Instance();

  /// The active backend. Never null — scalar is always compiled in.
  const KernelBackend& backend() const {
    return *active_.load(std::memory_order_acquire);
  }
  const char* active_name() const { return backend().name(); }

  /// Every compiled-in backend the running CPU supports, scalar first.
  const std::vector<const KernelBackend*>& Available() const {
    return available_;
  }

  /// Registered backend by name, or null when not compiled in / not
  /// supported by this CPU.
  const KernelBackend* Find(const std::string& name) const;

  /// Forces the active backend ("" restores the automatic choice: the
  /// ST4ML_BACKEND env override when set and valid, else the best
  /// available). InvalidArgument for names that are unknown, not compiled
  /// in, or not supported by this CPU. Thread-safe, but meant for startup
  /// and test seams — not for flipping mid-pipeline.
  Status ForceBackend(const std::string& name);

  /// Batch-dispatch observability: CountBatch is one batched kernel
  /// invocation; CountFallback accounts records a host path processed
  /// per-record because no batch kernel applies (non-batchable key types,
  /// partitioner-virtual assignment). Surfaced by the st4mld `stats` verb
  /// and the per-stage stderr summary.
  void CountBatch(uint64_t records) const {
    batches_.fetch_add(1, std::memory_order_relaxed);
    batch_records_.fetch_add(records, std::memory_order_relaxed);
  }
  void CountFallback(uint64_t records) const {
    fallback_records_.fetch_add(records, std::memory_order_relaxed);
  }
  uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  uint64_t batch_records() const {
    return batch_records_.load(std::memory_order_relaxed);
  }
  uint64_t fallback_records() const {
    return fallback_records_.load(std::memory_order_relaxed);
  }

 private:
  BackendRegistry();

  const KernelBackend* AutoChoice() const;

  std::vector<const KernelBackend*> available_;
  std::atomic<const KernelBackend*> active_{nullptr};
  mutable std::atomic<uint64_t> batches_{0};
  mutable std::atomic<uint64_t> batch_records_{0};
  mutable std::atomic<uint64_t> fallback_records_{0};
};

/// Shorthand for the hot paths: the currently active backend.
inline const KernelBackend& Active() {
  return BackendRegistry::Instance().backend();
}

/// Backend factories (one .cc each, so only backend_avx2.cc is compiled
/// with -mavx2). A factory returns null when its ISA is not compiled in.
const KernelBackend* ScalarBackend();
const KernelBackend* Sse2Backend();
const KernelBackend* Avx2Backend();

}  // namespace accel
}  // namespace st4ml

#endif  // ST4ML_ACCEL_KERNELS_H_
