#ifndef ST4ML_ACCEL_HASH_MIX_H_
#define ST4ML_ACCEL_HASH_MIX_H_

#include <cstdint>

namespace st4ml {

/// SplitMix64 finalizer (Vigna): full-avalanche mix of a 64-bit value using
/// only adds, xors, shifts and wrapping multiplies — every operation has an
/// exact SIMD equivalent, so the batched CombineHashes kernel can reproduce
/// it bit-for-bit lane-wise (DESIGN.md §11).
inline uint64_t SplitMix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// THE hash combine for composite shuffle keys: the boost-style combine the
/// repo used to ship, fed through a SplitMix64 finalizer so low-entropy key
/// components (dense cell ids x small hour bins) still spread over all 64
/// bits — weak combines skew the `hash % num_targets` bucketing and with it
/// the shuffle's load balance. PairHash (engine/pair_ops.h) and the batched
/// CombineHashes kernel (accel/kernels.h) are both defined as exactly this
/// function; the differential bench gates that they never diverge.
inline uint64_t HashCombine(uint64_t h1, uint64_t h2) {
  return SplitMix64(h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) +
                          (h1 >> 2)));
}

}  // namespace st4ml

#endif  // ST4ML_ACCEL_HASH_MIX_H_
