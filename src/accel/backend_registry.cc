// Backend discovery and runtime dispatch (DESIGN.md §11). The registry is
// built once: each factory returns null when its ISA wasn't compiled in,
// and compiled-in SIMD backends are additionally gated on the running CPU
// via __builtin_cpu_supports — so a binary built with -mavx2 for the one
// translation unit still starts (and silently runs sse2/scalar) on an
// older machine. Selection order: ForceBackend override > ST4ML_BACKEND
// env > widest available.

#include <cstdlib>

#include "accel/kernels.h"

namespace st4ml {
namespace accel {
namespace {

// __builtin_cpu_supports only takes string literals, so one probe per ISA.
bool CpuHasSse2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("sse2");
#else
  return false;
#endif
}

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

BackendRegistry::BackendRegistry() {
  available_.push_back(ScalarBackend());  // always present, always first
  if (const KernelBackend* sse2 = Sse2Backend();
      sse2 != nullptr && CpuHasSse2()) {
    available_.push_back(sse2);
  }
  if (const KernelBackend* avx2 = Avx2Backend();
      avx2 != nullptr && CpuHasAvx2()) {
    available_.push_back(avx2);
  }
  active_.store(AutoChoice(), std::memory_order_release);
}

BackendRegistry& BackendRegistry::Instance() {
  static BackendRegistry registry;
  return registry;
}

const KernelBackend* BackendRegistry::Find(const std::string& name) const {
  for (const KernelBackend* backend : available_) {
    if (name == backend->name()) return backend;
  }
  return nullptr;
}

const KernelBackend* BackendRegistry::AutoChoice() const {
  if (const char* env = std::getenv("ST4ML_BACKEND");
      env != nullptr && env[0] != '\0') {
    if (const KernelBackend* named = Find(env)) return named;
    // An unknown/unsupported env value falls through to the best backend
    // rather than aborting startup: the env var is a tuning knob, and the
    // tools' --backend flag is the strict path (ForceBackend errors).
  }
  return available_.back();  // widest ISA registers last
}

Status BackendRegistry::ForceBackend(const std::string& name) {
  if (name.empty()) {
    active_.store(AutoChoice(), std::memory_order_release);
    return Status::Ok();
  }
  const KernelBackend* named = Find(name);
  if (named == nullptr) {
    std::string names;
    for (const KernelBackend* backend : available_) {
      if (!names.empty()) names += ", ";
      names += backend->name();
    }
    return Status::InvalidArgument("unknown or unsupported backend '" + name +
                                   "' (available: " + names + ")");
  }
  active_.store(named, std::memory_order_release);
  return Status::Ok();
}

}  // namespace accel
}  // namespace st4ml
