// Scalar reference backend — THE semantics every SIMD backend must
// reproduce bit-for-bit (DESIGN.md §11). Each kernel body here is written
// in the exact shape the vector backends mirror lane-wise: the filter
// predicate is the STBox::Intersects comparison chain (so NaN behaves
// identically), the reductions use the fixed 8-lane-strided accumulation
// structure, and the distance kernels call the very same geometry inlines
// the pre-accel code paths used.

#include <cmath>
#include <limits>

#include "accel/hash_mix.h"
#include "accel/kernels.h"
#include "geometry/point.h"

namespace st4ml {
namespace accel {
namespace {

class ScalarBackendImpl final : public KernelBackend {
 public:
  const char* name() const override { return "scalar"; }

  void FilterBoxes(const BoxFilterQuery& q, const EnvelopeView& b,
                   uint8_t* hits) const override {
    for (size_t i = 0; i < b.size; ++i) {
      // Record-side emptiness (min <= max; an inverted/default Mbr or a NaN
      // coordinate fails) plus the closed-interval overlap tests from
      // Mbr::Intersects and Duration::Intersects. Every comparison is
      // written so that any NaN operand yields "no hit", matching the
      // short-circuit scalar predicate.
      bool hit = b.x_min[i] <= b.x_max[i] && b.y_min[i] <= b.y_max[i] &&
                 q.x_min <= b.x_max[i] && b.x_min[i] <= q.x_max &&
                 q.y_min <= b.y_max[i] && b.y_min[i] <= q.y_max &&
                 q.t_min <= b.t_max[i] && b.t_min[i] <= q.t_max;
      hits[i] = hit ? 1 : 0;
    }
  }

  void CombineHashes(const uint64_t* h1, const uint64_t* h2, size_t n,
                     uint64_t* out) const override {
    for (size_t i = 0; i < n; ++i) out[i] = HashCombine(h1[i], h2[i]);
  }

  void HaversineMeters(const double* ax, const double* ay, const double* bx,
                       const double* by, size_t n,
                       double* out) const override {
    for (size_t i = 0; i < n; ++i) {
      out[i] = st4ml::HaversineMeters(Point(ax[i], ay[i]), Point(bx[i], by[i]));
    }
  }

  void EuclideanDistance(const double* ax, const double* ay, const double* bx,
                         const double* by, size_t n,
                         double* out) const override {
    for (size_t i = 0; i < n; ++i) {
      double dx = ax[i] - bx[i];
      double dy = ay[i] - by[i];
      out[i] = std::sqrt(dx * dx + dy * dy);
    }
  }

  void MinMaxSum(const double* v, size_t n, double* min_out, double* max_out,
                 double* sum_out) const override {
    // The 8-lane-strided contract from kernels.h, spelled out with real
    // lanes so the scalar result is structurally the same computation the
    // SSE2 (4x2 lanes) and AVX2 (2x4 lanes) backends perform — NOT a naive
    // left-to-right fold, which would produce different float-addition
    // rounding and different NaN propagation than the vector forms.
    double mn[8], mx[8], sm[8];
    for (int j = 0; j < 8; ++j) {
      mn[j] = std::numeric_limits<double>::infinity();
      mx[j] = -std::numeric_limits<double>::infinity();
      sm[j] = 0.0;
    }
    for (size_t i = 0; i < n; ++i) {
      int j = static_cast<int>(i % 8);
      double x = v[i];
      // `cond ? new : acc` with the comparison on (acc, new) is exactly
      // _mm_min_pd/_mm_max_pd: returns the SECOND operand when the compare
      // is false OR unordered, so a NaN element replaces the accumulator
      // and a NaN accumulator is replaced by the next element.
      mn[j] = mn[j] < x ? mn[j] : x;
      mx[j] = mx[j] > x ? mx[j] : x;
      sm[j] += x;
    }
    double mn_all = mn[0], mx_all = mx[0], sm_all = sm[0];
    for (int j = 1; j < 8; ++j) {
      mn_all = mn_all < mn[j] ? mn_all : mn[j];
      mx_all = mx_all > mx[j] ? mx_all : mx[j];
      sm_all += sm[j];
    }
    *min_out = mn_all;
    *max_out = mx_all;
    *sum_out = sm_all;
  }
};

}  // namespace

const KernelBackend* ScalarBackend() {
  static const ScalarBackendImpl backend;
  return &backend;
}

}  // namespace accel
}  // namespace st4ml
