#ifndef ST4ML_PIPELINE_SESSION_H_
#define ST4ML_PIPELINE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "common/status.h"
#include "engine/execution_context.h"
#include "pipeline/pipeline.h"

namespace st4ml {

/// The option set every entry point shares — the four batch CLIs, the
/// st4mld daemon, tests and benches all parse their knobs into ONE of these
/// and hand it to Session::Configure, instead of each re-implementing
/// --cache-budget / --trace / --metrics-json plumbing.
struct ToolOptions {
  /// When false the context keeps its default budget (the
  /// ST4ML_CACHE_BUDGET_BYTES env knob; off when unset).
  bool has_cache_budget = false;
  /// Explicit budget: 0 disables the cache, negative means unbounded.
  int64_t cache_budget_bytes = 0;
  /// Non-empty: attach a Tracer and write a Chrome-trace JSON here on
  /// ExportArtifacts.
  std::string trace_path;
  /// Non-empty: write the flat metrics JSON here on ExportArtifacts.
  std::string metrics_json_path;
  /// 0 sizes the worker pool to the hardware.
  int num_workers = 0;
  /// Non-empty: force the accel kernel backend ("scalar" | "sse2" |
  /// "avx2") instead of the automatic choice (the ST4ML_BACKEND env knob,
  /// else the widest ISA this CPU supports). An unknown or unsupported
  /// name surfaces on Session::configure_status() so tools can refuse to
  /// start instead of silently computing on the wrong backend.
  std::string backend;
  /// Non-empty: the executor backend spec ("local", "local:<N>",
  /// "mp:<N>" — DESIGN.md §14) instead of the automatic choice (the
  /// ST4ML_EXECUTOR env knob, else a local pool of `num_workers` threads).
  /// A malformed spec — or an executor change on a live session — surfaces
  /// on Session::configure_status(), same contract as `backend`.
  std::string executor;
};

class Job;

/// One long-lived engine instance: a warm ExecutionContext (worker pool +
/// DatasetCache + counters) with its tracer and cache wired from a
/// ToolOptions. A batch CLI owns one Session for its single pipeline; the
/// daemon owns one Session for its whole lifetime and starts one Job per
/// request — every Job shares the session's scheduler and cache, which is
/// exactly what makes the second request warm.
///
/// Thread safety: Configure and ExportArtifacts are for the owning thread;
/// StartJob may be called from any thread (the daemon's per-connection
/// workers do), and concurrent Jobs are isolated — see Job.
class Session {
 public:
  /// Creates a fresh context sized per `options` and configures it.
  explicit Session(const ToolOptions& options = {});
  /// Adopts an existing context (tests that pre-build one).
  explicit Session(std::shared_ptr<ExecutionContext> ctx);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Applies cache budget, tracer wiring and the accel backend override
  /// from `options` and remembers the export paths. Call between jobs, not
  /// while one is in flight. Errors (an unknown --backend) land on
  /// configure_status() rather than a return value so the constructor can
  /// share the path.
  void Configure(const ToolOptions& options);

  /// OK unless the last Configure was handed an invalid option (currently:
  /// an unknown or unsupported backend name). Tools check this right after
  /// constructing the Session and exit non-zero on failure.
  const Status& configure_status() const { return configure_status_; }

  const std::shared_ptr<ExecutionContext>& context() const { return ctx_; }
  Tracer* tracer() const { return ctx_->tracer(); }

  /// Session-wide cumulative counters (every job, plus engine work done
  /// outside any job). Per-job deltas live on the Job.
  MetricsSnapshot Metrics() const { return ctx_->MetricsSnapshot(); }

  /// Jobs handed out so far (monotonic; also each Job's id).
  uint64_t jobs_started() const {
    return next_job_id_.load(std::memory_order_relaxed) - 1;
  }

  /// Opens a new Job named `name`. The Job is bound to the CALLING thread
  /// (its counter scope is thread-local): run its pipeline and Finish() it
  /// on that same thread.
  Job StartJob(std::string name);

  /// Writes the configured artifacts (Chrome trace, metrics JSON) and, when
  /// tracing, the per-stage summary table to `summary_out`. Returns false
  /// after reporting on stderr if any write fails, so tools can exit
  /// non-zero. A no-op Session (no paths configured) returns true.
  bool ExportArtifacts(const char* tool, std::FILE* summary_out = stderr);

 private:
  std::shared_ptr<ExecutionContext> ctx_;
  ToolOptions options_;
  Status configure_status_;
  /// The resolved executor spec this session's context was built on (empty
  /// for a Session adopting a pre-built context, which manages its own
  /// executor). The context cannot be rebuilt mid-flight, so a later
  /// Configure naming a DIFFERENT spec is a configure_status_ error.
  std::string executor_spec_;
  std::atomic<uint64_t> next_job_id_{1};
};

/// One pipeline run inside a Session: owns a private CounterRegistry that
/// receives an exact copy of every counter delta the job causes (via the
/// thread-local ScopedJobCounters sink, which the engine re-installs on
/// worker threads running this job's chunks), a job-category root span under
/// which the whole pipeline → stage → operation → task tree nests, and the
/// Pipeline facade itself. Concurrent Jobs on one Session therefore share
/// the scheduler and the cache but never interleave counters or spans.
///
/// Move-only and THREAD-BOUND: create, drive, and Finish/destroy a Job on
/// one thread. Metrics() may be read from anywhere after Finish().
class Job {
 public:
  Job(Job&&) = default;
  Job& operator=(Job&&) = delete;
  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  ~Job() { Finish(); }

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }

  /// The stage runner for this job; alive until Finish().
  Pipeline& pipeline() { return *pipeline_; }

  /// This job's own counter deltas — unaffected by sibling jobs.
  MetricsSnapshot Metrics() const { return counters_->Snapshot(); }

  bool ok() const { return pipeline_->ok(); }
  const Status& status() const { return pipeline_->status(); }

  /// Closes the pipeline and job spans and uninstalls the job counter
  /// scope (idempotent; the destructor calls it). After Finish() the job's
  /// metrics are final and the thread's counter attribution reverts to
  /// whatever enclosed the job.
  void Finish();

 private:
  friend class Session;
  Job(std::shared_ptr<ExecutionContext> ctx, std::string name, uint64_t id);

  std::shared_ptr<ExecutionContext> ctx_;
  std::string name_;
  uint64_t id_ = 0;
  // Order matters: the guard and spans must die before the registry, and
  // Finish() tears down in reverse-construction order.
  std::unique_ptr<CounterRegistry> counters_;
  std::unique_ptr<ScopedJobCounters> scope_;
  std::unique_ptr<ScopedSpan> root_;
  std::unique_ptr<Pipeline> pipeline_;
};

}  // namespace st4ml

#endif  // ST4ML_PIPELINE_SESSION_H_
