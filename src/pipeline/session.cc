#include "pipeline/session.h"

#include "accel/kernels.h"
#include "engine/dataset_cache.h"
#include "observability/trace_export.h"

namespace st4ml {

namespace {

std::shared_ptr<ExecutionContext> MakeContext(const ToolOptions& options) {
  return options.num_workers > 0 ? ExecutionContext::Create(options.num_workers)
                                 : ExecutionContext::Create();
}

}  // namespace

Session::Session(const ToolOptions& options) : ctx_(MakeContext(options)) {
  Configure(options);
}

Session::Session(std::shared_ptr<ExecutionContext> ctx)
    : ctx_(std::move(ctx)) {}

void Session::Configure(const ToolOptions& options) {
  options_ = options;
  // Empty restores the automatic choice, so a daemon reconfigured without
  // the override returns to env/CPUID selection.
  configure_status_ =
      accel::BackendRegistry::Instance().ForceBackend(options.backend);
  if (options.has_cache_budget) {
    DatasetCache::Options cache;
    cache.budget_bytes =
        options.cache_budget_bytes < 0
            ? DatasetCache::kUnbounded
            : static_cast<uint64_t>(options.cache_budget_bytes);
    ctx_->ConfigureCache(std::move(cache));
  }
  if (!options.trace_path.empty() && ctx_->tracer() == nullptr) {
    ctx_->set_tracer(std::make_shared<Tracer>());
  }
}

Job Session::StartJob(std::string name) {
  return Job(ctx_, std::move(name),
             next_job_id_.fetch_add(1, std::memory_order_relaxed));
}

bool Session::ExportArtifacts(const char* tool, std::FILE* summary_out) {
  bool ok = true;
  Tracer* tracer = ctx_->tracer();
  if (tracer != nullptr && !options_.trace_path.empty()) {
    Status status = WriteChromeTrace(*tracer, options_.trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", tool, status.ToString().c_str());
      ok = false;
    }
    PrintStageSummary(*tracer, ctx_->MetricsSnapshot(), summary_out);
  }
  if (!options_.metrics_json_path.empty()) {
    Status status =
        WriteMetricsJson(ctx_->MetricsSnapshot(), options_.metrics_json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", tool, status.ToString().c_str());
      ok = false;
    }
  }
  return ok;
}

Job::Job(std::shared_ptr<ExecutionContext> ctx, std::string name, uint64_t id)
    : ctx_(std::move(ctx)),
      name_(std::move(name)),
      id_(id),
      counters_(std::make_unique<CounterRegistry>()),
      scope_(std::make_unique<ScopedJobCounters>(counters_.get())),
      root_(std::make_unique<ScopedSpan>(ctx_->tracer(), span_category::kJob,
                                         name_)),
      pipeline_(std::make_unique<Pipeline>(ctx_, name_)) {
  root_->AddArg("job_id", id_);
}

void Job::Finish() {
  if (pipeline_ != nullptr) pipeline_->Finish();
  if (root_ != nullptr) root_->End();
  scope_.reset();
}

}  // namespace st4ml
