#include "pipeline/session.h"

#include "accel/kernels.h"
#include "common/env.h"
#include "engine/dataset_cache.h"
#include "observability/trace_export.h"

namespace st4ml {

namespace {

/// The executor spec an options set asks for: the explicit option wins,
/// then the ST4ML_EXECUTOR env knob; `*explicit_spec` records whether
/// either was present (absent means "whatever the session already runs").
StatusOr<ExecutorSpec> ResolveExecutorSpec(const ToolOptions& options,
                                           bool* explicit_spec) {
  std::string text = options.executor.empty()
                         ? GetEnvString("ST4ML_EXECUTOR", "")
                         : options.executor;
  *explicit_spec = !text.empty();
  auto spec = ExecutorSpec::Parse(text);
  if (!spec.ok()) return spec;
  // A bare "local" defers to --workers, same sizing the default path uses.
  if (spec->kind == ExecutorSpec::Kind::kLocal && spec->workers == 0) {
    spec->workers = options.num_workers;
  }
  return spec;
}

}  // namespace

Session::Session(const ToolOptions& options) {
  bool explicit_spec = false;
  auto spec = ResolveExecutorSpec(options, &explicit_spec);
  if (spec.ok()) {
    executor_spec_ = spec->ToString();
    ctx_ = ExecutionContext::Create(*spec);
  } else {
    // Configure below re-resolves and surfaces the parse error on
    // configure_status(); until then run local so the Session is usable.
    executor_spec_ = ExecutorSpec().ToString();
    ctx_ = ExecutionContext::Create();
  }
  Configure(options);
}

Session::Session(std::shared_ptr<ExecutionContext> ctx)
    : ctx_(std::move(ctx)) {}

void Session::Configure(const ToolOptions& options) {
  options_ = options;
  // Empty restores the automatic choice, so a daemon reconfigured without
  // the override returns to env/CPUID selection.
  configure_status_ =
      accel::BackendRegistry::Instance().ForceBackend(options.backend);
  bool explicit_spec = false;
  auto spec = ResolveExecutorSpec(options, &explicit_spec);
  if (configure_status_.ok() && explicit_spec) {
    if (!spec.ok()) {
      configure_status_ = spec.status();
    } else if (!executor_spec_.empty() &&
               spec->ToString() != executor_spec_) {
      // The context (pool or worker fleet) was built at construction; an
      // executor swap needs a new Session, not a reconfigure.
      configure_status_ = Status::InvalidArgument(
          "executor cannot change on a live session (running " +
          executor_spec_ + ", asked for " + spec->ToString() + ")");
    }
  }
  if (options.has_cache_budget) {
    DatasetCache::Options cache;
    cache.budget_bytes =
        options.cache_budget_bytes < 0
            ? DatasetCache::kUnbounded
            : static_cast<uint64_t>(options.cache_budget_bytes);
    ctx_->ConfigureCache(std::move(cache));
  }
  if (!options.trace_path.empty() && ctx_->tracer() == nullptr) {
    ctx_->set_tracer(std::make_shared<Tracer>());
  }
}

Job Session::StartJob(std::string name) {
  return Job(ctx_, std::move(name),
             next_job_id_.fetch_add(1, std::memory_order_relaxed));
}

bool Session::ExportArtifacts(const char* tool, std::FILE* summary_out) {
  bool ok = true;
  Tracer* tracer = ctx_->tracer();
  if (tracer != nullptr && !options_.trace_path.empty()) {
    Status status = WriteChromeTrace(*tracer, options_.trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", tool, status.ToString().c_str());
      ok = false;
    }
    PrintStageSummary(*tracer, ctx_->MetricsSnapshot(), summary_out);
  }
  if (!options_.metrics_json_path.empty()) {
    Status status =
        WriteMetricsJson(ctx_->MetricsSnapshot(), options_.metrics_json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", tool, status.ToString().c_str());
      ok = false;
    }
  }
  return ok;
}

Job::Job(std::shared_ptr<ExecutionContext> ctx, std::string name, uint64_t id)
    : ctx_(std::move(ctx)),
      name_(std::move(name)),
      id_(id),
      counters_(std::make_unique<CounterRegistry>()),
      scope_(std::make_unique<ScopedJobCounters>(counters_.get())),
      root_(std::make_unique<ScopedSpan>(ctx_->tracer(), span_category::kJob,
                                         name_)),
      pipeline_(std::make_unique<Pipeline>(ctx_, name_)) {
  root_->AddArg("job_id", id_);
}

void Job::Finish() {
  if (pipeline_ != nullptr) pipeline_->Finish();
  if (root_ != nullptr) root_->End();
  scope_.reset();
}

}  // namespace st4ml
