#ifndef ST4ML_PIPELINE_PIPELINE_H_
#define ST4ML_PIPELINE_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>

#include "common/status.h"
#include "engine/cached_dataset.h"
#include "engine/execution_context.h"

namespace st4ml {

namespace pipeline_internal {

/// Extracts the Status from a stage result that carries one (a Status
/// itself, or any StatusOr). Only instantiated for types where ok() exists.
template <typename T>
Status StatusOf(const T& value) {
  if constexpr (std::is_same_v<std::decay_t<T>, Status>) {
    return value;
  } else {
    return value.status();
  }
}

/// Same code, message prefixed with the failing stage's name.
inline Status PrefixStage(const std::string& stage, const Status& s) {
  std::string msg = "stage " + stage + ": " + s.message();
  switch (s.code()) {
    case Status::Code::kNotFound: return Status::NotFound(std::move(msg));
    case Status::Code::kCorruption: return Status::Corruption(std::move(msg));
    case Status::Code::kIOError: return Status::IOError(std::move(msg));
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    default: return Status::Internal(std::move(msg));
  }
}

/// Best-effort record count of a stage input or output. Understands
/// Datasets (Count), collective structures and containers (size), and
/// StatusOr wrappers (count the value when ok). Sets *counted to whether a
/// count was actually obtainable.
template <typename T>
uint64_t CountOf(const T& value, bool* counted) {
  if constexpr (requires { value.Count(); }) {
    *counted = true;
    return static_cast<uint64_t>(value.Count());
  } else if constexpr (requires { value.size(); }) {
    *counted = true;
    return static_cast<uint64_t>(value.size());
  } else if constexpr (requires {
                         value.ok();
                         *value;
                       }) {
    if (value.ok()) return CountOf(*value, counted);
    *counted = false;
    return 0;
  } else {
    *counted = false;
    return 0;
  }
}

template <typename A, typename... Rest>
const A& FirstArg(const A& a, const Rest&...) {
  return a;
}

}  // namespace pipeline_internal

/// The uniform front door to a Selection → Conversion → Extraction run.
/// A Pipeline opens one pipeline-category span for its whole lifetime, and
/// each Run(stage_name, fn, args...) executes `fn(args...)` under a
/// stage-category span — so with a tracer attached the trace nests
/// pipeline → stage → operation → task with no per-stage plumbing in the
/// application. Without a tracer every span is inert and Run is a plain
/// std::invoke.
///
/// Stage spans are annotated with records_in (from the first countable
/// argument) and records_out (from a countable result; StatusOr results are
/// counted when ok). The canonical stage names "conversion" and
/// "extraction" additionally feed the per-stage record counters; the
/// selection counters are owned by the Selector itself, which knows the
/// exact post-filter record and byte counts.
///
/// Failure surfacing: when a stage returns a Status or StatusOr that is not
/// ok, its span gets a `failed` arg and the FIRST such status is latched on
/// the pipeline — check ok()/status() after the last stage (tools do, and
/// exit non-zero with the message instead of silently producing partial
/// output). Later stages still run if the caller passes them a failed
/// StatusOr; stages should short-circuit on their inputs as usual.
class Pipeline {
 public:
  Pipeline(std::shared_ptr<ExecutionContext> ctx, std::string name)
      : ctx_(std::move(ctx)),
        span_(ctx_->tracer(), span_category::kPipeline, std::move(name)) {}

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  ~Pipeline() { Finish(); }

  const std::shared_ptr<ExecutionContext>& context() const { return ctx_; }

  /// Closes the pipeline span (idempotent). Call before exporting a trace
  /// so the pipeline span carries its real duration instead of being
  /// clipped at export time.
  void Finish() { span_.End(); }

  /// True until a stage returns a non-ok Status/StatusOr.
  bool ok() const { return status_.ok(); }

  /// The first stage failure, or Ok. Stage names are in the status message's
  /// "stage <name>: " prefix.
  const Status& status() const { return status_; }

  /// Clears the latched stage failure so the SAME Pipeline can run further
  /// stages after one failed — a long-lived caller (the daemon's Session,
  /// a REPL) must not carry one request's error into the next. The pipeline
  /// span is left as-is: Reset rewinds the error latch, not the trace.
  void Reset() { status_ = Status(); }

  /// Runs `fn(args...)` as one named stage and returns its result.
  template <typename Fn, typename... Args>
  auto Run(const std::string& stage_name, Fn&& fn, Args&&... args) {
    using Result = std::invoke_result_t<Fn, Args...>;
    ScopedSpan stage(ctx_->tracer(), span_category::kStage, stage_name);
    uint64_t records_in = 0;
    bool have_in = false;
    if constexpr (sizeof...(Args) > 0) {
      records_in =
          pipeline_internal::CountOf(pipeline_internal::FirstArg(args...),
                                     &have_in);
    }
    if (have_in) stage.AddArg("records_in", records_in);
    if constexpr (std::is_void_v<Result>) {
      std::invoke(std::forward<Fn>(fn), std::forward<Args>(args)...);
      AccountStage(stage_name, have_in, records_in, false, 0);
    } else {
      Result result =
          std::invoke(std::forward<Fn>(fn), std::forward<Args>(args)...);
      bool have_out = false;
      uint64_t records_out = pipeline_internal::CountOf(result, &have_out);
      if (have_out) stage.AddArg("records_out", records_out);
      if constexpr (requires { result.ok(); }) {
        if (!result.ok()) {
          stage.AddArg("failed", 1);
          if (status_.ok()) {
            status_ = pipeline_internal::PrefixStage(
                stage_name, pipeline_internal::StatusOf(result));
          }
        }
      }
      AccountStage(stage_name, have_in, records_in, have_out, records_out);
      return result;
    }
  }

  /// Persists `ds` in the context's dataset cache under a "persist" stage
  /// span — the one-liner for the paper's extraction pattern (§3.3): persist
  /// the post-Conversion dataset once, then run many extractors against the
  /// returned handle's Load() instead of recomputing or re-reading it.
  template <typename T>
  CachedDataset<T> Persist(const Dataset<T>& ds) {
    ScopedSpan stage(ctx_->tracer(), span_category::kStage, "persist");
    stage.AddArg("records_in", ds.Count());
    return ds.Persist();
  }

 private:
  void AccountStage(const std::string& stage_name, bool have_in,
                    uint64_t records_in, bool have_out,
                    uint64_t records_out) {
    CounterRegistry& counters = internal::Counters(*ctx_);
    if (stage_name == "conversion") {
      if (have_in) counters.Add(Counter::kConversionRecordsIn, records_in);
      if (have_out) counters.Add(Counter::kConversionRecordsOut, records_out);
    } else if (stage_name == "extraction") {
      if (have_in) counters.Add(Counter::kExtractionRecordsIn, records_in);
      if (have_out) counters.Add(Counter::kExtractionRecordsOut, records_out);
    }
  }

  std::shared_ptr<ExecutionContext> ctx_;
  ScopedSpan span_;
  Status status_;
};

}  // namespace st4ml

#endif  // ST4ML_PIPELINE_PIPELINE_H_
