#include "mapmatching/hmm_map_matcher.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>
#include <vector>

#include "index/rtree.h"
#include "index/stbox.h"

namespace st4ml {
namespace {

constexpr double kMetersPerDegree = 111320.0;
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Great-circle-ish distance from a sample to a segment, via a local
/// equirectangular projection around the sample (fine at snap scales).
double MetersToSegment(const Point& p, const Point& a, const Point& b) {
  double kx = kMetersPerDegree * std::cos(p.y * M_PI / 180.0);
  double ky = kMetersPerDegree;
  Point pm(p.x * kx, p.y * ky);
  Point am(a.x * kx, a.y * ky);
  Point bm(b.x * kx, b.y * ky);
  Point closest;
  return std::sqrt(PointToSegmentDistanceSq(pm, am, bm, &closest));
}

double MetersToShape(const Point& p, const LineString& shape) {
  const std::vector<Point>& pts = shape.points();
  if (pts.empty()) return std::numeric_limits<double>::infinity();
  if (pts.size() == 1) return MetersToSegment(p, pts[0], pts[0]);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 1; i < pts.size(); ++i) {
    best = std::min(best, MetersToSegment(p, pts[i - 1], pts[i]));
  }
  return best;
}

struct Candidate {
  int32_t segment = 0;
  double emission_log = 0.0;  // Gaussian in the snap distance
};

/// Transition plausibility between consecutive snaps: staying put beats a
/// U-turn onto the paired reverse segment, which beats rolling onto an
/// adjacent segment, which beats teleporting across the graph.
double TransitionLog(const RoadNetwork& network, int32_t from, int32_t to) {
  if (from == to) return 0.0;
  const RoadSegment& a = network.segment(from);
  const RoadSegment& b = network.segment(to);
  if (std::llabs(a.id) == std::llabs(b.id)) return -0.7;
  if (a.to_node == b.from_node || a.from_node == b.from_node ||
      a.to_node == b.to_node || a.from_node == b.to_node) {
    return -1.2;
  }
  return -4.0;
}

Trajectory<int64_t, int64_t> MatchOne(const STTrajectory& traj,
                                      const RoadNetwork& network,
                                      const RTree<int32_t>& index,
                                      const MapMatchOptions& options) {
  Trajectory<int64_t, int64_t> out;
  out.data = traj.data;

  // Per-sample candidate sets: segments within the search radius.
  std::vector<std::vector<Candidate>> layers;
  std::vector<size_t> layer_entry;  // index into traj.entries
  for (size_t i = 0; i < traj.entries.size(); ++i) {
    const STEntry& e = traj.entries[i];
    double lat_scale = std::max(0.1, std::cos(e.point.y * M_PI / 180.0));
    double radius_deg = options.candidate_radius_m / (kMetersPerDegree * lat_scale);
    STBox probe(Mbr(e.point).Buffered(radius_deg),
                Duration(std::numeric_limits<int64_t>::min() / 4,
                         std::numeric_limits<int64_t>::max() / 4));
    std::vector<size_t> hits = index.Query(probe);
    std::sort(hits.begin(), hits.end());
    std::vector<Candidate> layer;
    for (size_t h : hits) {
      int32_t seg = index.item(h);
      double d = MetersToShape(e.point, network.segment(seg).shape);
      if (d > options.candidate_radius_m) continue;
      double z = d / options.sigma_z_m;
      layer.push_back(Candidate{seg, -0.5 * z * z});
    }
    if (layer.empty()) continue;  // unreachable sample: dropped
    layers.push_back(std::move(layer));
    layer_entry.push_back(i);
  }
  if (layers.empty()) return out;

  // Viterbi over the candidate layers.
  std::vector<std::vector<double>> score(layers.size());
  std::vector<std::vector<int>> parent(layers.size());
  for (size_t t = 0; t < layers.size(); ++t) {
    score[t].assign(layers[t].size(), kNegInf);
    parent[t].assign(layers[t].size(), -1);
    for (size_t c = 0; c < layers[t].size(); ++c) {
      if (t == 0) {
        score[t][c] = layers[t][c].emission_log;
        continue;
      }
      double best = kNegInf;
      int best_prev = -1;
      for (size_t p = 0; p < layers[t - 1].size(); ++p) {
        double s = score[t - 1][p] + TransitionLog(network,
                                                   layers[t - 1][p].segment,
                                                   layers[t][c].segment);
        if (s > best) {
          best = s;
          best_prev = static_cast<int>(p);
        }
      }
      score[t][c] = best + layers[t][c].emission_log;
      parent[t][c] = best_prev;
    }
  }

  size_t last = layers.size() - 1;
  int cursor = 0;
  for (size_t c = 1; c < score[last].size(); ++c) {
    if (score[last][c] > score[last][static_cast<size_t>(cursor)]) {
      cursor = static_cast<int>(c);
    }
  }
  std::vector<int> path(layers.size(), 0);
  for (size_t t = last;; --t) {
    path[t] = cursor;
    if (t == 0) break;
    cursor = parent[t][static_cast<size_t>(cursor)];
  }

  out.entries.reserve(layers.size());
  for (size_t t = 0; t < layers.size(); ++t) {
    const Candidate& c = layers[t][static_cast<size_t>(path[t])];
    TimedValue<int64_t> entry;
    entry.value = network.segment(c.segment).id;
    entry.time = traj.entries[layer_entry[t]].time;
    out.entries.push_back(entry);
  }
  return out;
}

}  // namespace

Dataset<Trajectory<int64_t, int64_t>> MapMatchTrajectories(
    const Dataset<STTrajectory>& trajs,
    std::shared_ptr<const RoadNetwork> network,
    const MapMatchOptions& options) {
  ST4ML_CHECK(network != nullptr) << "map matching needs a road network";

  // One shared snap index over every segment envelope (time axis is inert).
  auto index = std::make_shared<RTree<int32_t>>();
  std::vector<int32_t> ids(network->num_segments());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int32_t>(i);
  Duration all_time(std::numeric_limits<int64_t>::min() / 4,
                    std::numeric_limits<int64_t>::max() / 4);
  index->Build(ids, [&](int32_t seg) {
    return STBox(network->segment(seg).shape.ComputeMbr(), all_time);
  });

  return trajs.Map([network, index, options](const STTrajectory& t) {
    return MatchOne(t, *network, *index, options);
  });
}

}  // namespace st4ml
