#ifndef ST4ML_MAPMATCHING_HMM_MAP_MATCHER_H_
#define ST4ML_MAPMATCHING_HMM_MAP_MATCHER_H_

#include <cstdint>
#include <memory>

#include "engine/dataset.h"
#include "instances/instances.h"
#include "mapmatching/road_network.h"

namespace st4ml {

/// Knobs for the HMM map matcher (Newson-Krumm style): `sigma_z_m` is the
/// GPS noise deviation behind the Gaussian emission, `candidate_radius_m`
/// caps the snap-candidate search around each sample.
struct MapMatchOptions {
  double sigma_z_m = 25.0;
  double candidate_radius_m = 150.0;
};

/// The built-in trajectory-to-trajectory conversion (paper §3.2.2): snaps
/// each trajectory sample to a road segment with a per-trajectory Viterbi
/// pass over the candidate segments. The result keeps the trip id as `data`
/// and carries one (segment id, time) entry per input sample; samples with
/// no segment within reach are dropped.
Dataset<Trajectory<int64_t, int64_t>> MapMatchTrajectories(
    const Dataset<STTrajectory>& trajs,
    std::shared_ptr<const RoadNetwork> network, const MapMatchOptions& options);

}  // namespace st4ml

#endif  // ST4ML_MAPMATCHING_HMM_MAP_MATCHER_H_
