#ifndef ST4ML_MAPMATCHING_ROAD_NETWORK_H_
#define ST4ML_MAPMATCHING_ROAD_NETWORK_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "geometry/linestring.h"
#include "geometry/mbr.h"
#include "geometry/point.h"

namespace st4ml {

/// One directed road segment. Every physical edge appears twice, as a
/// forward/reverse pair stored consecutively; the pair shares |id|, with the
/// reverse direction carrying the negated id (so consumers can collapse the
/// two with llabs, and iterate physical edges with a stride of 2).
struct RoadSegment {
  int64_t id = 0;
  LineString shape;
  int32_t from_node = 0;
  int32_t to_node = 0;
  double length_m = 0.0;
};

/// An in-memory directed road graph: nodes, segments, and per-node outgoing
/// adjacency. Map matching snaps trajectory samples onto segments; the flow
/// case study uses segments as raster "cells".
class RoadNetwork {
 public:
  size_t num_nodes() const { return nodes_.size(); }
  const Point& node(int32_t index) const {
    return nodes_[static_cast<size_t>(index)];
  }

  size_t num_segments() const { return segments_.size(); }
  const RoadSegment& segment(int32_t index) const {
    return segments_[static_cast<size_t>(index)];
  }

  /// Indices of segments leaving `node`.
  const std::vector<int32_t>& outgoing(int32_t node) const {
    return outgoing_[static_cast<size_t>(node)];
  }

  /// Bounding box over every node.
  const Mbr& extent() const { return extent_; }

  int32_t AddNode(const Point& p) {
    nodes_.push_back(p);
    outgoing_.emplace_back();
    extent_.Extend(p);
    return static_cast<int32_t>(nodes_.size() - 1);
  }

  /// Appends a segment and wires it into the adjacency lists.
  int32_t AddSegment(RoadSegment segment) {
    ST4ML_CHECK(segment.from_node >= 0 &&
                static_cast<size_t>(segment.from_node) < nodes_.size())
        << "bad from_node";
    ST4ML_CHECK(segment.to_node >= 0 &&
                static_cast<size_t>(segment.to_node) < nodes_.size())
        << "bad to_node";
    int32_t index = static_cast<int32_t>(segments_.size());
    outgoing_[static_cast<size_t>(segment.from_node)].push_back(index);
    segments_.push_back(std::move(segment));
    return index;
  }

 private:
  std::vector<Point> nodes_;
  std::vector<RoadSegment> segments_;
  std::vector<std::vector<int32_t>> outgoing_;
  Mbr extent_;
};

}  // namespace st4ml

#endif  // ST4ML_MAPMATCHING_ROAD_NETWORK_H_
