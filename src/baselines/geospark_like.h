#ifndef ST4ML_BASELINES_GEOSPARK_LIKE_H_
#define ST4ML_BASELINES_GEOSPARK_LIKE_H_

#include <memory>
#include <string>

#include "baselines/geo_object.h"
#include "common/status.h"
#include "engine/dataset.h"
#include "engine/execution_context.h"
#include "geometry/mbr.h"
#include "temporal/duration.h"

namespace st4ml {

/// A faithful miniature of the GeoSpark/Sedona workflow: load EVERYTHING
/// into generic geometry objects, run a spatial RangeQuery, then bolt the
/// temporal filter on afterwards by re-parsing string times — there is no
/// temporal index and no ST-aware storage to prune with.
class GeoSparkLike {
 public:
  explicit GeoSparkLike(std::shared_ptr<ExecutionContext> ctx)
      : ctx_(std::move(ctx)) {}

  /// Full-directory loads (plain STPQ dirs) — GeoSpark has no metadata to
  /// skip files with, so every byte is read.
  StatusOr<Dataset<GeoObject>> LoadAllEvents(const std::string& dir);
  StatusOr<Dataset<GeoObject>> LoadAllTrajs(const std::string& dir);

  /// Envelope-vs-rectangle spatial selection.
  Dataset<GeoObject> RangeQuery(const Dataset<GeoObject>& data,
                                const Mbr& range) const;

  /// Temporal refinement over the string time lists: keeps objects whose
  /// [first, last] time span intersects `range`.
  static Dataset<GeoObject> TemporalFilter(const Dataset<GeoObject>& data,
                                           const Duration& range);

 private:
  std::shared_ptr<ExecutionContext> ctx_;
};

}  // namespace st4ml

#endif  // ST4ML_BASELINES_GEOSPARK_LIKE_H_
