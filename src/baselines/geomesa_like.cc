#include "baselines/geomesa_like.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <utility>
#include <vector>

#include "index/zcurve.h"
#include "storage/stpq.h"

namespace st4ml {
namespace {

constexpr size_t kBlocks = 64;

std::string BlockFileName(size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "block-%03zu.stpq", index);
  return name;
}

Point CenterOf(const STBox& box) {
  return Point((box.mbr.x_min + box.mbr.x_max) / 2.0,
               (box.mbr.y_min + box.mbr.y_max) / 2.0);
}

/// Z2-orders records and writes them in ~kBlocks key-ordered blocks plus a
/// per-block envelope sidecar (the "index" selection prunes with).
template <typename RecordT>
Status IngestRecords(const std::vector<RecordT>& records,
                     const std::string& dir) {
  std::vector<STBox> boxes;
  boxes.reserve(records.size());
  Mbr extent;
  for (const RecordT& r : records) {
    boxes.push_back(r.ComputeSTBox());
    extent.Extend(CenterOf(boxes.back()));
  }
  if (extent.IsEmpty()) extent = Mbr(0.0, 0.0, 1.0, 1.0);
  Z2Curve curve(extent, 8);

  std::vector<size_t> order(records.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return curve.Encode(CenterOf(boxes[a])) < curve.Encode(CenterOf(boxes[b]));
  });

  size_t blocks = std::min(kBlocks, std::max<size_t>(records.size(), 1));
  std::vector<StpqPartMeta> meta;
  meta.reserve(blocks);
  for (size_t b = 0; b < blocks; ++b) {
    size_t lo = records.size() * b / blocks;
    size_t hi = records.size() * (b + 1) / blocks;
    std::vector<RecordT> block;
    block.reserve(hi - lo);
    STBox bounds;
    for (size_t i = lo; i < hi; ++i) {
      block.push_back(records[order[i]]);
      bounds.Extend(boxes[order[i]]);
    }
    std::string name = BlockFileName(b);
    ST4ML_RETURN_IF_ERROR(WriteStpqFile(dir + "/" + name, block));
    StpqPartMeta entry;
    entry.file = std::move(name);
    entry.box = bounds;
    entry.count = block.size();
    meta.push_back(std::move(entry));
  }
  return WriteStpqMeta(dir + "/blocks.meta", meta);
}

bool MatchesQuery(const GeoObject& o, const Mbr& range, const Duration& time) {
  if (!o.geom.ComputeMbr().Intersects(range)) return false;
  std::vector<int64_t> times = ParseGeoObjectTimes(o);
  if (times.empty()) return false;
  return Duration(times.front(), times.back()).Intersects(time);
}

template <typename RecordT, typename ToObject>
StatusOr<Dataset<GeoObject>> SelectRecords(
    const std::shared_ptr<ExecutionContext>& ctx, const std::string& dir,
    const Mbr& range, const Duration& time, ToObject to_object) {
  auto meta = ReadStpqMeta(dir + "/blocks.meta");
  if (!meta.ok()) return meta.status();
  STBox query(range, time);
  Dataset<GeoObject>::Partitions parts;
  for (const StpqPartMeta& block : *meta) {
    if (!block.box.Intersects(query)) continue;
    auto records = ReadStpqFile<RecordT>(dir + "/" + block.file);
    if (!records.ok()) return records.status();
    std::vector<GeoObject> kept;
    for (const RecordT& r : *records) {
      GeoObject o = to_object(r);
      if (MatchesQuery(o, range, time)) kept.push_back(std::move(o));
    }
    parts.push_back(std::move(kept));
  }
  if (parts.empty()) parts.emplace_back();  // no block matched: empty result
  return Dataset<GeoObject>::FromPartitions(ctx, std::move(parts));
}

}  // namespace

Status GeoMesaLike::IngestEvents(const std::vector<EventRecord>& records,
                                 const std::string& dir) {
  return IngestRecords(records, dir);
}

Status GeoMesaLike::IngestTrajs(const std::vector<TrajRecord>& records,
                                const std::string& dir) {
  return IngestRecords(records, dir);
}

StatusOr<Dataset<GeoObject>> GeoMesaLike::SelectEvents(const std::string& dir,
                                                       const Mbr& range,
                                                       const Duration& time) {
  return SelectRecords<EventRecord>(
      ctx_, dir, range, time,
      [](const EventRecord& r) { return GeoObjectFromEvent(r); });
}

StatusOr<Dataset<GeoObject>> GeoMesaLike::SelectTrajs(const std::string& dir,
                                                      const Mbr& range,
                                                      const Duration& time) {
  return SelectRecords<TrajRecord>(
      ctx_, dir, range, time,
      [](const TrajRecord& r) { return GeoObjectFromTraj(r); });
}

}  // namespace st4ml
