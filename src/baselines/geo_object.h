#ifndef ST4ML_BASELINES_GEO_OBJECT_H_
#define ST4ML_BASELINES_GEO_OBJECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/geometry.h"
#include "storage/records.h"

namespace st4ml {

/// How the baseline systems actually hold spatio-temporal records: a JTS-like
/// geometry plus STRING-typed times and attributes that every operator must
/// re-parse at every use (the paper's Table 1 cost, reproduced faithfully so
/// the end-to-end comparison is honest).
struct GeoObject {
  int64_t id = 0;
  Geometry geom;
  std::string times;  // comma-joined epoch seconds
  std::string aux;    // opaque attribute payload
};

GeoObject GeoObjectFromEvent(const EventRecord& record);
GeoObject GeoObjectFromTraj(const TrajRecord& record);

/// Re-parses the comma-joined time list — deliberately paid per call.
std::vector<int64_t> ParseGeoObjectTimes(const GeoObject& object);

/// "Parses" the attribute payload (a copy, like deserializing a field).
std::string ParseGeoObjectAux(const GeoObject& object);

}  // namespace st4ml

#endif  // ST4ML_BASELINES_GEO_OBJECT_H_
