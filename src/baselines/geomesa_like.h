#ifndef ST4ML_BASELINES_GEOMESA_LIKE_H_
#define ST4ML_BASELINES_GEOMESA_LIKE_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/geo_object.h"
#include "common/status.h"
#include "engine/dataset.h"
#include "engine/execution_context.h"
#include "geometry/mbr.h"
#include "storage/records.h"
#include "temporal/duration.h"

namespace st4ml {

/// A faithful miniature of the GeoMesa workflow: ingestion keys records on a
/// Z2 space-filling curve and stores them in key-ordered blocks with block
/// envelopes, so selection can prune blocks — spatially indexed storage, but
/// the curve is purely spatial, so long-time queries still open most blocks
/// (the gap T-STR closes).
class GeoMesaLike {
 public:
  explicit GeoMesaLike(std::shared_ptr<ExecutionContext> ctx)
      : ctx_(std::move(ctx)) {}

  Status IngestEvents(const std::vector<EventRecord>& records,
                      const std::string& dir);
  Status IngestTrajs(const std::vector<TrajRecord>& records,
                     const std::string& dir);

  /// Block-pruned selection, refined per object with the same envelope +
  /// time-span predicates the other systems use.
  StatusOr<Dataset<GeoObject>> SelectEvents(const std::string& dir,
                                            const Mbr& range,
                                            const Duration& time);
  StatusOr<Dataset<GeoObject>> SelectTrajs(const std::string& dir,
                                           const Mbr& range,
                                           const Duration& time);

 private:
  std::shared_ptr<ExecutionContext> ctx_;
};

}  // namespace st4ml

#endif  // ST4ML_BASELINES_GEOMESA_LIKE_H_
