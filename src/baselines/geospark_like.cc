#include "baselines/geospark_like.h"

#include <utility>
#include <vector>

#include "storage/stpq.h"

namespace st4ml {

StatusOr<Dataset<GeoObject>> GeoSparkLike::LoadAllEvents(
    const std::string& dir) {
  std::vector<std::string> paths = ListStpqFiles(dir);
  if (paths.empty()) return Status::NotFound("no STPQ files under " + dir);
  Dataset<GeoObject>::Partitions parts;
  parts.reserve(paths.size());
  for (const std::string& path : paths) {
    auto records = ReadStpqEvents(path);
    if (!records.ok()) return records.status();
    std::vector<GeoObject> objects;
    objects.reserve(records->size());
    for (const EventRecord& r : *records) {
      objects.push_back(GeoObjectFromEvent(r));
    }
    parts.push_back(std::move(objects));
  }
  return Dataset<GeoObject>::FromPartitions(ctx_, std::move(parts));
}

StatusOr<Dataset<GeoObject>> GeoSparkLike::LoadAllTrajs(
    const std::string& dir) {
  std::vector<std::string> paths = ListStpqFiles(dir);
  if (paths.empty()) return Status::NotFound("no STPQ files under " + dir);
  Dataset<GeoObject>::Partitions parts;
  parts.reserve(paths.size());
  for (const std::string& path : paths) {
    auto records = ReadStpqTrajs(path);
    if (!records.ok()) return records.status();
    std::vector<GeoObject> objects;
    objects.reserve(records->size());
    for (const TrajRecord& r : *records) {
      objects.push_back(GeoObjectFromTraj(r));
    }
    parts.push_back(std::move(objects));
  }
  return Dataset<GeoObject>::FromPartitions(ctx_, std::move(parts));
}

Dataset<GeoObject> GeoSparkLike::RangeQuery(const Dataset<GeoObject>& data,
                                            const Mbr& range) const {
  return data.Filter([range](const GeoObject& o) {
    return o.geom.ComputeMbr().Intersects(range);
  });
}

Dataset<GeoObject> GeoSparkLike::TemporalFilter(const Dataset<GeoObject>& data,
                                                const Duration& range) {
  return data.Filter([range](const GeoObject& o) {
    std::vector<int64_t> times = ParseGeoObjectTimes(o);
    if (times.empty()) return false;
    return Duration(times.front(), times.back()).Intersects(range);
  });
}

}  // namespace st4ml
