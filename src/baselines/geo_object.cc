#include "baselines/geo_object.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace st4ml {
namespace {

std::string FormatTime(int64_t t) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, t);
  return buf;
}

}  // namespace

GeoObject GeoObjectFromEvent(const EventRecord& record) {
  GeoObject object;
  object.id = record.id;
  object.geom = Geometry(Point(record.x, record.y));
  object.times = FormatTime(record.time);
  object.aux = record.attr;
  return object;
}

GeoObject GeoObjectFromTraj(const TrajRecord& record) {
  GeoObject object;
  object.id = record.id;
  std::vector<Point> points;
  points.reserve(record.points.size());
  for (const TrajPointRecord& p : record.points) {
    points.emplace_back(p.x, p.y);
    if (!object.times.empty()) object.times += ',';
    object.times += FormatTime(p.time);
  }
  object.geom = Geometry(LineString(std::move(points)));
  return object;
}

std::vector<int64_t> ParseGeoObjectTimes(const GeoObject& object) {
  std::vector<int64_t> times;
  const char* cursor = object.times.c_str();
  while (*cursor != '\0') {
    char* end = nullptr;
    times.push_back(std::strtoll(cursor, &end, 10));
    if (end == cursor) break;  // malformed tail; keep what parsed
    cursor = *end == ',' ? end + 1 : end;
  }
  return times;
}

std::string ParseGeoObjectAux(const GeoObject& object) { return object.aux; }

}  // namespace st4ml
