#ifndef ST4ML_SERVER_JSON_H_
#define ST4ML_SERVER_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace st4ml {
namespace server {

/// A parsed JSON value — the request half of the wire protocol (responses
/// are built with the existing JsonObject writer). Deliberately a plain
/// tagged struct: requests are tiny, and the daemon only ever walks them
/// once through the typed accessors below.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool IsNull() const { return type == Type::kNull; }
  bool IsBool() const { return type == Type::kBool; }
  bool IsNumber() const { return type == Type::kNumber; }
  bool IsString() const { return type == Type::kString; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsObject() const { return type == Type::kObject; }

  /// Member lookup on an object; nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const;

  /// Typed member access with defaults, for optional request fields.
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  /// Saturates values beyond int64 range (the wire carries doubles; an
  /// unchecked cast of e.g. 1e300 would be UB) and truncates fractions.
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;

  /// Integer request-field validation in one place: absent → `default_value`;
  /// non-number, non-integral, or outside [min, max] → InvalidArgument. Job
  /// verbs use this so a hostile double (1e300, 1.5) is a clean client error.
  Status GetCheckedInt(const std::string& key, int64_t default_value,
                       int64_t min, int64_t max, int64_t* out) const;

  /// Requires `key` to be an array of exactly `count` numbers (request
  /// validation for mbr/time).
  Status GetNumberArray(const std::string& key, size_t count,
                        std::vector<double>* out) const;

  /// Integer-array request field (the lookup_id `ids` list): absent leaves
  /// `out` empty and is Ok — the caller decides whether the field was
  /// required. Present, it must be a non-empty array of at most `max_count`
  /// int64-exact numbers, each validated like GetCheckedInt, so a hostile
  /// 1e300 or 1.5 entry is a clean client error.
  Status GetCheckedIntArray(const std::string& key, size_t max_count,
                            std::vector<int64_t>* out) const;
};

/// Parses one JSON document (any value type at the root). Rejects trailing
/// garbage, unterminated strings/containers, bad escapes, bad numbers, and
/// nesting deeper than 64 levels — a malformed frame must become a clean
/// InvalidArgument, never UB. \uXXXX escapes decode to UTF-8 (surrogate
/// pairs included).
StatusOr<JsonValue> ParseJson(const std::string& text);

}  // namespace server
}  // namespace st4ml

#endif  // ST4ML_SERVER_JSON_H_
