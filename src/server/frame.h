#ifndef ST4ML_SERVER_FRAME_H_
#define ST4ML_SERVER_FRAME_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace st4ml {
namespace server {

/// Wire framing for the st4mld protocol (DESIGN.md §10): every message is a
/// 4-byte big-endian payload length followed by that many bytes of JSON.
/// Length-prefixing keeps the reader trivially robust — no delimiter
/// scanning, no partial-JSON buffering — and makes oversized requests
/// rejectable before a single payload byte is parsed.

/// Writes one frame (length prefix + payload) to `fd`, looping over partial
/// writes and EINTR. IOError on any write failure or peer reset.
Status WriteFrame(int fd, const std::string& payload);

/// Reads one complete frame from `fd`.
///   - Clean EOF at a frame boundary (peer closed between requests) returns
///     NotFound("connection closed") — the server's loop-exit sentinel, not
///     an error worth logging.
///   - EOF mid-frame returns IOError (truncated frame).
///   - A declared length above `max_bytes` returns InvalidArgument WITHOUT
///     reading the payload, so a hostile 4 GiB prefix cannot make the
///     server allocate.
StatusOr<std::string> ReadFrame(int fd, size_t max_bytes);

}  // namespace server
}  // namespace st4ml

#endif  // ST4ML_SERVER_FRAME_H_
