#include "server/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace st4ml {
namespace server {

namespace {

constexpr int kMaxDepth = 64;

/// Recursive-descent parser over [pos, end). All Parse* leave `pos` one past
/// the value they consumed.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    ST4ML_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Status::InvalidArgument("JSON nested deeper than 64 levels");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON input");
    }
    switch (text_[pos_]) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      case 't':
      case 'f': return ParseLiteral(out);
      case 'n': return ParseLiteral(out);
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Status::InvalidArgument("expected string key in JSON object");
      }
      std::string key;
      ST4ML_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) {
        return Status::InvalidArgument("expected ':' in JSON object");
      }
      JsonValue value;
      ST4ML_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) {
        return Status::InvalidArgument("expected ',' or '}' in JSON object");
      }
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      JsonValue value;
      ST4ML_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) {
        return Status::InvalidArgument("expected ',' or ']' in JSON array");
      }
    }
  }

  Status ParseLiteral(JsonValue* out) {
    auto matches = [&](const char* literal) {
      size_t n = std::string(literal).size();
      if (text_.compare(pos_, n, literal) != 0) return false;
      pos_ += n;
      return true;
    };
    if (matches("true")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      return Status::Ok();
    }
    if (matches("false")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      return Status::Ok();
    }
    if (matches("null")) {
      out->type = JsonValue::Type::kNull;
      return Status::Ok();
    }
    return Status::InvalidArgument("unrecognized JSON literal");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("unexpected character in JSON");
    }
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(parsed)) {
      return Status::InvalidArgument("malformed JSON number '" + token + "'");
    }
    out->type = JsonValue::Type::kNumber;
    out->number_value = parsed;
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c == '\\') {
        ST4ML_RETURN_IF_ERROR(ParseEscape(out));
        continue;
      }
      if (c < 0x20) {
        return Status::InvalidArgument("unescaped control char in string");
      }
      out->push_back(static_cast<char>(c));
      ++pos_;
    }
    return Status::InvalidArgument("unterminated JSON string");
  }

  Status ParseEscape(std::string* out) {
    ++pos_;  // backslash
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("dangling escape in JSON string");
    }
    char c = text_[pos_++];
    switch (c) {
      case '"': out->push_back('"'); return Status::Ok();
      case '\\': out->push_back('\\'); return Status::Ok();
      case '/': out->push_back('/'); return Status::Ok();
      case 'b': out->push_back('\b'); return Status::Ok();
      case 'f': out->push_back('\f'); return Status::Ok();
      case 'n': out->push_back('\n'); return Status::Ok();
      case 'r': out->push_back('\r'); return Status::Ok();
      case 't': out->push_back('\t'); return Status::Ok();
      case 'u': return ParseUnicodeEscape(out);
      default: return Status::InvalidArgument("bad escape in JSON string");
    }
  }

  Status ParseUnicodeEscape(std::string* out) {
    uint32_t code = 0;
    ST4ML_RETURN_IF_ERROR(ParseHex4(&code));
    // Surrogate pair: a high surrogate must be followed by \u + low.
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        return Status::InvalidArgument("lone high surrogate in JSON string");
      }
      pos_ += 2;
      uint32_t low = 0;
      ST4ML_RETURN_IF_ERROR(ParseHex4(&low));
      if (low < 0xDC00 || low > 0xDFFF) {
        return Status::InvalidArgument("bad surrogate pair in JSON string");
      }
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      return Status::InvalidArgument("lone low surrogate in JSON string");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return Status::Ok();
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) {
      return Status::InvalidArgument("truncated \\u escape in JSON string");
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Status::InvalidArgument("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& default_value) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->IsString() ? value->string_value
                                               : default_value;
}

namespace {

// 2^63 is exactly representable as a double; INT64_MAX is not, so the usable
// range for a UB-free cast is [-2^63, 2^63).
constexpr double kInt64Lo = -9223372036854775808.0;
constexpr double kInt64Hi = 9223372036854775808.0;

}  // namespace

int64_t JsonValue::GetInt(const std::string& key, int64_t default_value) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || !value->IsNumber()) return default_value;
  double v = value->number_value;
  if (v >= kInt64Hi) return INT64_MAX;
  if (v < kInt64Lo) return INT64_MIN;
  return static_cast<int64_t>(v);
}

Status JsonValue::GetCheckedInt(const std::string& key, int64_t default_value,
                                int64_t min, int64_t max, int64_t* out) const {
  const JsonValue* value = Find(key);
  if (value == nullptr) {
    *out = default_value;
    return Status::Ok();
  }
  if (!value->IsNumber()) {
    return Status::InvalidArgument("'" + key + "' must be a number");
  }
  double v = value->number_value;
  if (v < kInt64Lo || v >= kInt64Hi || v != std::floor(v)) {
    return Status::InvalidArgument("'" + key + "' must be an integer");
  }
  int64_t n = static_cast<int64_t>(v);
  if (n < min || n > max) {
    std::string range = max == INT64_MAX
                            ? ">= " + std::to_string(min)
                            : "in [" + std::to_string(min) + ", " +
                                  std::to_string(max) + "]";
    return Status::InvalidArgument("'" + key + "' must be " + range);
  }
  *out = n;
  return Status::Ok();
}

double JsonValue::GetDouble(const std::string& key,
                            double default_value) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->IsNumber() ? value->number_value
                                               : default_value;
}

Status JsonValue::GetCheckedIntArray(const std::string& key, size_t max_count,
                                     std::vector<int64_t>* out) const {
  out->clear();
  const JsonValue* value = Find(key);
  if (value == nullptr) return Status::Ok();
  if (!value->IsArray() || value->array.empty()) {
    return Status::InvalidArgument("'" + key +
                                   "' must be a non-empty array of integers");
  }
  if (value->array.size() > max_count) {
    return Status::InvalidArgument("'" + key + "' holds more than " +
                                   std::to_string(max_count) + " entries");
  }
  out->reserve(value->array.size());
  for (const JsonValue& element : value->array) {
    if (!element.IsNumber()) {
      return Status::InvalidArgument("'" + key +
                                     "' must be a non-empty array of integers");
    }
    double v = element.number_value;
    if (v < kInt64Lo || v >= kInt64Hi || v != std::floor(v)) {
      return Status::InvalidArgument("'" + key +
                                     "' entries must be integers in int64 range");
    }
    out->push_back(static_cast<int64_t>(v));
  }
  return Status::Ok();
}

Status JsonValue::GetNumberArray(const std::string& key, size_t count,
                                 std::vector<double>* out) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || !value->IsArray() || value->array.size() != count) {
    return Status::InvalidArgument("'" + key + "' must be an array of " +
                                   std::to_string(count) + " numbers");
  }
  out->clear();
  out->reserve(count);
  for (const JsonValue& element : value->array) {
    if (!element.IsNumber()) {
      return Status::InvalidArgument("'" + key + "' must be an array of " +
                                     std::to_string(count) + " numbers");
    }
    out->push_back(element.number_value);
  }
  return Status::Ok();
}

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace server
}  // namespace st4ml
