#include "server/frame.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

namespace st4ml {
namespace server {

namespace {

/// MSG_NOSIGNAL: a peer that hung up before its response must surface as an
/// EPIPE IOError on this one connection, not raise SIGPIPE and kill the
/// whole daemon.
Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

/// Reads exactly `size` bytes. *eof is set when the peer closed before the
/// first byte (only meaningful on error return).
Status ReadAll(int fd, char* data, size_t size, bool* eof) {
  *eof = false;
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      *eof = (got == 0);
      return Status::IOError("truncated frame: peer closed mid-read");
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > UINT32_MAX) {
    return Status::InvalidArgument("frame payload exceeds 4 GiB");
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>((len >> 24) & 0xFF),
                    static_cast<char>((len >> 16) & 0xFF),
                    static_cast<char>((len >> 8) & 0xFF),
                    static_cast<char>(len & 0xFF)};
  ST4ML_RETURN_IF_ERROR(WriteAll(fd, prefix, sizeof(prefix)));
  return WriteAll(fd, payload.data(), payload.size());
}

StatusOr<std::string> ReadFrame(int fd, size_t max_bytes) {
  char prefix[4];
  bool eof = false;
  Status status = ReadAll(fd, prefix, sizeof(prefix), &eof);
  if (!status.ok()) {
    if (eof) return Status::NotFound("connection closed");
    return status;
  }
  uint32_t len = (static_cast<uint32_t>(static_cast<unsigned char>(prefix[0]))
                  << 24) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(prefix[1]))
                  << 16) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(prefix[2]))
                  << 8) |
                 static_cast<uint32_t>(static_cast<unsigned char>(prefix[3]));
  if (len > max_bytes) {
    return Status::InvalidArgument("frame of " + std::to_string(len) +
                                   " bytes exceeds limit of " +
                                   std::to_string(max_bytes));
  }
  std::string payload(len, '\0');
  if (len > 0) {
    ST4ML_RETURN_IF_ERROR(ReadAll(fd, payload.data(), len, &eof));
  }
  return payload;
}

}  // namespace server
}  // namespace st4ml
