#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <map>
#include <shared_mutex>
#include <utility>

#include "accel/kernels.h"
#include "conversion/parse.h"
#include "conversion/singular_to_collective.h"
#include "extraction/collective_extractors.h"
#include "index/stix.h"
#include "selection/select_query.h"
#include "selection/selector.h"
#include "server/frame.h"
#include "storage/ingest_manifest.h"
#include "storage/json.h"

namespace st4ml {
namespace server {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk: return "OK";
    case Status::Code::kNotFound: return "NOT_FOUND";
    case Status::Code::kCorruption: return "CORRUPTION";
    case Status::Code::kIOError: return "IO_ERROR";
    case Status::Code::kInvalidArgument: return "INVALID_ARGUMENT";
    case Status::Code::kInternal: return "INTERNAL";
    case Status::Code::kResourceExhausted: return "RESOURCE_EXHAUSTED";
  }
  return "INTERNAL";
}

std::string ErrorResponse(const Status& status) {
  JsonObject obj;
  obj.Add("ok", false)
      .Add("code", CodeName(status.code()))
      .Add("error", status.message());
  return obj.Str();
}

/// The per-job counter subset worth shipping to a client: enough to verify
/// cache behavior (the CI smoke asserts cache_hits > 0 on the second
/// request), record flow, and which plan the planner actually executed per
/// file, without dumping all 39 slots per response.
std::string MetricsJson(const MetricsSnapshot& m) {
  JsonObject obj;
  obj.Add("cache_hits", m[Counter::kCacheHits])
      .Add("cache_misses", m[Counter::kCacheMisses])
      .Add("stpq_bytes_read", m[Counter::kStpqBytesRead])
      .Add("partitions_pruned", m[Counter::kPartitionsPruned])
      .Add("partitions_scanned", m[Counter::kPartitionsScanned])
      .Add("selection_records_out", m[Counter::kSelectionRecordsOut])
      .Add("parallel_jobs", m[Counter::kParallelJobs])
      .Add("index_files_mmapped", m[Counter::kIndexFilesMmapped])
      .Add("index_pages_read", m[Counter::kIndexPagesRead])
      .Add("postings_hits", m[Counter::kPostingsHits])
      .Add("planner_mmap_index", m[Counter::kPlannerMmapIndex])
      .Add("planner_cached_index", m[Counter::kPlannerCachedIndex])
      .Add("planner_linear_scan", m[Counter::kPlannerLinearScan]);
  return obj.Str();
}

/// Largest id list a lookup_id/select request may carry — bounds the memory
/// one frame can pin before any work starts.
constexpr size_t kMaxRequestIds = 65536;

/// Largest record batch one append frame may carry, for the same reason.
constexpr size_t kMaxAppendRecords = 65536;

/// Parses the shared job-verb query fields into the ONE SelectQuery type.
/// `require_box` is set for select/extract (mbr+time mandatory, unchanged
/// wire contract); lookup_id passes false — omitting both means the id
/// predicate alone drives selection, but a client that sends either of
/// mbr/time must send a complete, valid box.
Status ParseQuery(const JsonValue& request, bool require_box,
                  std::string* dir, SelectQuery* query) {
  *dir = request.GetString("dir", "");
  if (dir->empty()) {
    return Status::InvalidArgument("missing required field 'dir'");
  }
  *query = SelectQuery();
  if (require_box || request.Find("mbr") != nullptr ||
      request.Find("time") != nullptr) {
    std::vector<double> mbr;
    std::vector<double> time;
    ST4ML_RETURN_IF_ERROR(request.GetNumberArray("mbr", 4, &mbr));
    ST4ML_RETURN_IF_ERROR(request.GetNumberArray("time", 2, &time));
    // The wire carries doubles; casting e.g. 1e300 to int64_t is UB, so the
    // bounds are validated before the cast ([-2^63, 2^63) — the double-exact
    // range; INT64_MAX itself is not representable).
    for (double t : time) {
      if (t < -9223372036854775808.0 || t >= 9223372036854775808.0 ||
          t != std::floor(t)) {
        return Status::InvalidArgument(
            "'time' values must be integers in int64 range");
      }
    }
    query->box = STBox(Mbr(mbr[0], mbr[1], mbr[2], mbr[3]),
                       Duration(static_cast<int64_t>(time[0]),
                                static_cast<int64_t>(time[1])));
  } else {
    query->box = SelectQuery::EverythingBox();
  }
  std::vector<int64_t> ids;
  ST4ML_RETURN_IF_ERROR(request.GetCheckedIntArray("ids", kMaxRequestIds, &ids));
  if (!ids.empty()) query->SetIds(std::move(ids));
  return Status::Ok();
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

Server::Server(Session* session, ServerOptions options)
    : session_(session),
      options_(options),
      admission_(options.max_inflight, options.queue_depth),
      rate_limiter_(options.rate_qps, options.rate_burst) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status =
        Status::IOError(std::string("bind 127.0.0.1:") +
                        std::to_string(options_.port) + ": " +
                        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  // Non-blocking listener + self-pipe: the accept loop polls both, so
  // Shutdown wakes it portably (shutdown(2) on a listening socket is
  // Linux-only behavior) and a connection that vanishes between poll and
  // accept just returns EAGAIN instead of blocking forever.
  ::fcntl(listen_fd_, F_SETFL, O_NONBLOCK);
  if (::pipe(wake_pipe_) < 0) {
    Status status =
        Status::IOError(std::string("pipe: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void Server::AcceptLoop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Shutdown's wake byte.
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      return;
    }
    // Each accept doubles as the reap point for handler threads that
    // finished since the last one — a churny daemon stays at O(live
    // connections) threads instead of one per connection ever served.
    ReapFinishedThreads();
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      if (open_fds_.size() >= options_.max_connections) {
        shed = true;
      } else {
        uint64_t conn_id = next_conn_id_++;
        open_fds_.insert(fd);
        conn_threads_.emplace(
            conn_id,
            std::thread([this, conn_id, fd] { HandleConnection(conn_id, fd); }));
      }
    }
    if (shed) {
      // Over the connection cap: tell the client why, then hang up. Written
      // outside mu_ — a slow reader must not block the whole server.
      WriteFrame(fd, ErrorResponse(Status::ResourceExhausted(
                         "too many connections (limit " +
                         std::to_string(options_.max_connections) + ")")));
      ::close(fd);
    }
  }
}

void Server::ReapFinishedThreads() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    done.swap(finished_threads_);
  }
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

void Server::HandleConnection(uint64_t conn_id, int fd) {
  for (;;) {
    StatusOr<std::string> frame = ReadFrame(fd, options_.max_frame_bytes);
    if (!frame.ok()) {
      // Oversized declared length: tell the client why before hanging up.
      // Everything else (clean close, truncation, reset) is just the end
      // of the connection.
      if (frame.status().code() == Status::Code::kInvalidArgument) {
        WriteFrame(fd, ErrorResponse(frame.status()));
      }
      break;
    }
    bool close_after = false;
    std::string response = HandleRequest(*frame, &close_after);
    if (!WriteFrame(fd, response).ok()) break;
    if (close_after) break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  open_fds_.erase(fd);
  ::close(fd);
  // Move this thread's own handle to the finished list for the accept loop
  // (or Shutdown) to join — a thread cannot join itself. Skipped during
  // Shutdown, which is already joining the conn_threads_ map it swapped out.
  auto it = conn_threads_.find(conn_id);
  if (it != conn_threads_.end()) {
    finished_threads_.push_back(std::move(it->second));
    conn_threads_.erase(it);
  }
}

std::string Server::HandleRequest(const std::string& payload,
                                  bool* close_after) {
  *close_after = false;
  StatusOr<JsonValue> parsed = ParseJson(payload);
  // Malformed JSON is a clean error and the connection STAYS OPEN — a
  // client bug in one request shouldn't tear down its session.
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  if (!parsed->IsObject()) {
    return ErrorResponse(
        Status::InvalidArgument("request must be a JSON object"));
  }
  std::string verb = parsed->GetString("verb", "");

  if (verb == "ping") {
    int64_t sleep_ms = 0;
    Status status = parsed->GetCheckedInt("sleep_ms", 0, 0, 5000, &sleep_ms);
    if (!status.ok()) return ErrorResponse(status);
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    JsonObject obj;
    obj.Add("ok", true).Add("verb", "ping");
    return obj.Str();
  }
  if (verb == "stats") return HandleStats();
  if (verb == "shutdown") {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_requested_ = true;
    }
    shutdown_cv_.notify_all();
    *close_after = true;
    JsonObject obj;
    obj.Add("ok", true).Add("verb", "shutdown");
    return obj.Str();
  }

  if (verb == "ingest_status") return HandleIngestStatus(*parsed);

  if (verb == "select" || verb == "lookup_id" || verb == "extract" ||
      verb == "append" || verb == "flush") {
    if (!rate_limiter_.TryAcquire()) {
      return ErrorResponse(
          Status::ResourceExhausted("request rate limit exceeded"));
    }
    AdmissionTicket ticket(&admission_);
    if (!ticket.admitted()) return ErrorResponse(ticket.status());
    if (verb == "extract") return HandleExtract(*parsed);
    if (verb == "append") return HandleAppend(*parsed);
    if (verb == "flush") return HandleFlush(*parsed);
    return HandleSelect(*parsed, /*lookup_by_id=*/verb == "lookup_id");
  }

  return ErrorResponse(
      Status::InvalidArgument("unknown verb '" + verb + "'"));
}

void Server::RecordServedDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  served_dirs_.insert(dir);
}

std::string Server::HandleStats() {
  MetricsSnapshot m = session_->Metrics();
  const accel::BackendRegistry& accel = accel::BackendRegistry::Instance();
  // Per-dataset index coverage: for every dir a job verb has served, how
  // many .stpq part files exist and how many of them have a .stix sidecar —
  // the operator's answer to "why is this dataset cold-selecting via linear
  // scan". Walked at stats time (not cached) so a rebuilt index shows up
  // without a daemon restart. std::map keeps the listing deterministic.
  std::map<std::string, std::pair<uint64_t, uint64_t>> datasets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& dir : served_dirs_) datasets[dir] = {0, 0};
  }
  for (auto& [dir, counts] : datasets) {
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) continue;
    for (const auto& entry : it) {
      if (entry.path().extension() != ".stpq") continue;
      ++counts.first;
      std::error_code exists_ec;
      if (std::filesystem::exists(StixPathFor(entry.path().string()),
                                  exists_ec)) {
        ++counts.second;
      }
    }
  }
  std::string dataset_rows = "[";
  bool first = true;
  for (const auto& [dir, counts] : datasets) {
    JsonObject row;
    row.Add("dir", dir)
        .Add("stpq_files", counts.first)
        .Add("stix_files", counts.second);
    if (!first) dataset_rows += ",";
    dataset_rows += row.Str();
    first = false;
  }
  dataset_rows += "]";

  JsonObject obj;
  obj.Add("ok", true)
      .Add("verb", "stats")
      .Add("jobs_started", session_->jobs_started())
      .Add("inflight", static_cast<uint64_t>(admission_.inflight()))
      // Which kernel backend this daemon computes on, and how much of the
      // work actually went through batch kernels vs per-record fallbacks —
      // the first thing to check when a warm deployment is slower than the
      // bench says it should be.
      .Add("backend", accel.active_name())
      .Add("backend_batches", accel.batches())
      .Add("backend_batch_records", accel.batch_records())
      .Add("backend_fallback_records", accel.fallback_records())
      .AddRaw("datasets", dataset_rows)
      .AddRaw("metrics", MetricsJson(m));
  return obj.Str();
}

Ingestor* Server::FindIngestor(const std::string& dir) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  auto it = ingestors_.find(dir);
  return it == ingestors_.end() ? nullptr : it->second.get();
}

StatusOr<Ingestor*> Server::IngestorFor(const std::string& dir) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  auto it = ingestors_.find(dir);
  if (it != ingestors_.end()) return it->second.get();
  auto opened =
      Ingestor::Open(dir, IngestorOptions{}, session_->context().get());
  if (!opened.ok()) return opened.status();
  Ingestor* raw = opened->get();
  ingestors_.emplace(dir, std::move(*opened));
  return raw;
}

std::string Server::HandleAppend(const JsonValue& request) {
  auto start = std::chrono::steady_clock::now();
  std::string dir = request.GetString("dir", "");
  if (dir.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("missing required field 'dir'"));
  }
  const JsonValue* records = request.Find("records");
  if (records == nullptr || !records->IsArray() || records->array.empty()) {
    return ErrorResponse(Status::InvalidArgument(
        "'records' must be a non-empty array of record objects"));
  }
  if (records->array.size() > kMaxAppendRecords) {
    return ErrorResponse(Status::InvalidArgument(
        "'records' exceeds the per-request limit of " +
        std::to_string(kMaxAppendRecords)));
  }
  std::vector<EventRecord> batch;
  batch.reserve(records->array.size());
  for (const JsonValue& row : records->array) {
    if (!row.IsObject()) {
      return ErrorResponse(
          Status::InvalidArgument("each record must be a JSON object"));
    }
    EventRecord r;
    Status status = row.GetCheckedInt("id", 0, INT64_MIN, INT64_MAX, &r.id);
    if (status.ok() && row.Find("id") == nullptr) {
      status = Status::InvalidArgument("record missing required field 'id'");
    }
    if (status.ok()) {
      status = row.GetCheckedInt("time", 0, INT64_MIN, INT64_MAX, &r.time);
    }
    if (status.ok() && row.Find("time") == nullptr) {
      status = Status::InvalidArgument("record missing required field 'time'");
    }
    if (!status.ok()) return ErrorResponse(status);
    const JsonValue* x = row.Find("x");
    const JsonValue* y = row.Find("y");
    if (x == nullptr || !x->IsNumber() || y == nullptr || !y->IsNumber()) {
      return ErrorResponse(
          Status::InvalidArgument("record fields 'x' and 'y' must be numbers"));
    }
    r.x = x->number_value;
    r.y = y->number_value;
    r.attr = row.GetString("attr", "");
    batch.push_back(std::move(r));
  }
  RecordServedDir(dir);
  auto ingestor = IngestorFor(dir);
  if (!ingestor.ok()) return ErrorResponse(ingestor.status());
  // AppendBatch is all-or-nothing: an error means NO record of the batch
  // was staged or acked (earlier buckets' frames are rolled back), so the
  // client can resend the whole batch without duplicating records.
  Status appended = (*ingestor)->AppendBatch(batch);
  if (!appended.ok()) return ErrorResponse(appended);
  JsonObject obj;
  obj.Add("ok", true)
      .Add("verb", "append")
      .Add("appended", static_cast<uint64_t>(batch.size()))
      .Add("elapsed_us", ElapsedUs(start));
  return obj.Str();
}

std::string Server::HandleFlush(const JsonValue& request) {
  auto start = std::chrono::steady_clock::now();
  std::string dir = request.GetString("dir", "");
  if (dir.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("missing required field 'dir'"));
  }
  auto ingestor = IngestorFor(dir);
  if (!ingestor.ok()) return ErrorResponse(ingestor.status());
  Status flushed = (*ingestor)->Flush();
  if (!flushed.ok()) return ErrorResponse(flushed);
  IngestorStats stats = (*ingestor)->Stats();
  JsonObject obj;
  obj.Add("ok", true)
      .Add("verb", "flush")
      .Add("compacted", stats.compacted)
      .Add("generation", stats.generation)
      .Add("elapsed_us", ElapsedUs(start));
  return obj.Str();
}

std::string Server::HandleIngestStatus(const JsonValue& request) {
  std::string dir = request.GetString("dir", "");
  if (dir.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("missing required field 'dir'"));
  }
  auto ingestor = IngestorFor(dir);
  if (!ingestor.ok()) return ErrorResponse(ingestor.status());
  IngestorStats stats = (*ingestor)->Stats();
  JsonObject obj;
  obj.Add("ok", true)
      .Add("verb", "ingest_status")
      .Add("appended", stats.appended)
      .Add("replayed", stats.replayed)
      .Add("staged", stats.staged)
      .Add("compacted", stats.compacted)
      .Add("compactions", stats.compactions)
      .Add("wal_segments", stats.wal_segments)
      .Add("generation", stats.generation)
      // What a crash-recovery check wants in ONE number: every record this
      // directory must serve right now.
      .Add("total", stats.staged + stats.compacted);
  return obj.Str();
}

std::string Server::HandleSelect(const JsonValue& request, bool lookup_by_id) {
  auto start = std::chrono::steady_clock::now();
  const char* verb = lookup_by_id ? "lookup_id" : "select";
  std::string dir;
  SelectQuery query;
  Status status =
      ParseQuery(request, /*require_box=*/!lookup_by_id, &dir, &query);
  if (!status.ok()) return ErrorResponse(status);
  if (lookup_by_id && !query.has_ids) {
    return ErrorResponse(
        Status::InvalidArgument("missing required field 'ids'"));
  }
  int64_t limit = 0;
  status = request.GetCheckedInt("limit", 100, 0, INT64_MAX, &limit);
  if (!status.ok()) return ErrorResponse(status);
  query.limit = limit;
  query.count_only = limit == 0;
  RecordServedDir(dir);

  // An ingest directory — one with a live Ingestor, or streaming state on
  // disk — is served from the MERGED view: compacted partitions + staged
  // WAL tail. The ingestor's snapshot lock (shared) spans the whole
  // selection so the compactor cannot delete a listed segment mid-read.
  Ingestor* live = FindIngestor(dir);
  std::error_code ec;
  bool ingest_dir =
      live != nullptr ||
      std::filesystem::exists(IngestManifestPath(dir), ec) ||
      std::filesystem::exists(dir + "/wal", ec);

  Job job = session_->StartJob(lookup_by_id ? "serve/lookup_id"
                                            : "serve/select");
  Selector<EventRecord> selector(session_->context(), query);
  auto selected = job.pipeline().Run("selection", [&] {
    if (ingest_dir) {
      if (live != nullptr) {
        std::shared_lock<std::shared_mutex> snapshot(live->snapshot_mu());
        return selector.SelectIngest(dir);
      }
      return selector.SelectIngest(dir);
    }
    return selector.Select(dir, dir + "/index.meta");
  });
  job.Finish();
  if (!job.ok()) return ErrorResponse(job.status());

  // limit == 0 is the count-only fast path: no materialization, no sort,
  // no row serialization — what a dashboard poll or a latency bench wants.
  uint64_t count;
  std::string rows = "[";
  if (limit == 0) {
    count = static_cast<uint64_t>(selected->Count());
  } else {
    std::vector<EventRecord> records = selected->Collect();
    std::sort(records.begin(), records.end(),
              [](const EventRecord& a, const EventRecord& b) {
                return a.id < b.id;
              });
    count = static_cast<uint64_t>(records.size());
    size_t shown = std::min(records.size(), static_cast<size_t>(limit));
    for (size_t i = 0; i < shown; ++i) {
      const EventRecord& r = records[i];
      JsonObject row;
      row.Add("id", r.id)
          .Add("x", r.x)
          .Add("y", r.y)
          .Add("time", r.time)
          .Add("attr", r.attr);
      if (i > 0) rows += ",";
      rows += row.Str();
    }
  }
  rows += "]";

  JsonObject obj;
  obj.Add("ok", true)
      .Add("verb", verb)
      .Add("job_id", job.id())
      .Add("count", count)
      .AddRaw("rows", rows)
      .AddRaw("metrics", MetricsJson(job.Metrics()))
      .Add("elapsed_us", ElapsedUs(start));
  return obj.Str();
}

std::string Server::HandleExtract(const JsonValue& request) {
  auto start = std::chrono::steady_clock::now();
  std::string dir;
  SelectQuery query;
  Status status = ParseQuery(request, /*require_box=*/true, &dir, &query);
  if (!status.ok()) return ErrorResponse(status);
  int64_t interval_s = 0;
  status = request.GetCheckedInt("interval", 3600, 1, INT64_MAX, &interval_s);
  if (!status.ok()) return ErrorResponse(status);
  RecordServedDir(dir);

  Job job = session_->StartJob("serve/extract");
  Selector<EventRecord> selector(session_->context(), query);
  auto selected = job.pipeline().Run(
      "selection", [&] { return selector.Select(dir, dir + "/index.meta"); });
  if (selected.ok()) {
    // The bin layout comes from the QUERY's time range, not the data's, so
    // the same request always yields the same bins regardless of which
    // records currently match.
    auto structure = std::make_shared<TemporalStructure>(
        TemporalStructure::RegularByInterval(query.box.time, interval_s));
    auto events = job.pipeline().Run(
        "parse",
        [](const Dataset<EventRecord>& raw) { return ParseEvents(raw); },
        *selected);
    TimeSeriesConverter<STEvent> converter(structure);
    auto series = job.pipeline().Run(
        "conversion",
        [&](const Dataset<STEvent>& parsed) {
          return converter.Convert(parsed);
        },
        events);
    TimeSeries<int64_t> flow = job.pipeline().Run(
        "extraction",
        [&](const decltype(series)& converted) {
          return ExtractTsFlow(converted);
        },
        series);
    job.Finish();
    if (!job.ok()) return ErrorResponse(job.status());

    std::string bins = "[";
    int64_t total = 0;
    for (size_t i = 0; i < flow.size(); ++i) {
      JsonObject bin;
      bin.Add("bin", static_cast<int64_t>(i))
          .Add("start", flow.bin(i).start())
          .Add("end", flow.bin(i).end())
          .Add("count", flow.value(i));
      if (i > 0) bins += ",";
      bins += bin.Str();
      total += flow.value(i);
    }
    bins += "]";

    JsonObject obj;
    obj.Add("ok", true)
        .Add("verb", "extract")
        .Add("job_id", job.id())
        .Add("count", total)
        .Add("num_bins", static_cast<uint64_t>(flow.size()))
        .AddRaw("bins", bins)
        .AddRaw("metrics", MetricsJson(job.Metrics()))
        .Add("elapsed_us", ElapsedUs(start));
    return obj.Str();
  }
  job.Finish();
  return ErrorResponse(job.status());
}

size_t Server::ActiveConnectionsForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  return open_fds_.size();
}

size_t Server::ConnectionThreadsForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  return conn_threads_.size() + finished_threads_.size();
}

bool Server::WaitShutdownRequested(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                        [this] { return shutdown_requested_; });
  return shutdown_requested_;
}

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    // Unblock idle connection readers; SHUT_RD only, so a handler that is
    // mid-job can still WRITE its response before its loop exits.
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RD);
  }
  // Queued-but-unadmitted jobs are shed; admitted ones run to completion.
  admission_.Close();
  // One byte down the self-pipe pops the accept loop out of poll().
  if (wake_pipe_[1] >= 0) {
    char byte = 0;
    ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
    (void)ignored;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain every handler: still-live ones (conn_threads_) and ones that
  // finished but were never reaped by an accept (finished_threads_).
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(finished_threads_);
    for (auto& [id, thread] : conn_threads_) threads.push_back(std::move(thread));
    conn_threads_.clear();
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  // Graceful stop drains the streaming side too: seal + compact every open
  // ingest directory so a clean restart replays nothing. (A SIGKILL skips
  // this, of course — that is exactly what WAL recovery is for.)
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    for (auto& [dir, ingestor] : ingestors_) ingestor->Flush();
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) {
      ::close(wake_pipe_[i]);
      wake_pipe_[i] = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace server
}  // namespace st4ml
