#ifndef ST4ML_SERVER_CLIENT_H_
#define ST4ML_SERVER_CLIENT_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace st4ml {
namespace server {

/// Blocking client for the st4mld protocol — what st4ml_client and the
/// server tests speak. One Client is one connection; Call() frames the
/// request, waits for the response frame, and hands back the raw JSON (the
/// caller decides whether to parse or just print it).
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&&) = delete;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to st4mld on 127.0.0.1:`port`.
  static StatusOr<Client> Connect(int port);

  bool connected() const { return fd_ >= 0; }

  /// One request/response round trip. `max_response_bytes` guards the
  /// client against a runaway response the same way the server guards
  /// against runaway requests.
  StatusOr<std::string> Call(const std::string& request_json,
                             size_t max_response_bytes = 64 << 20);

  void Close();

 private:
  int fd_ = -1;
};

}  // namespace server
}  // namespace st4ml

#endif  // ST4ML_SERVER_CLIENT_H_
