#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "server/frame.h"

namespace st4ml {
namespace server {

StatusOr<Client> Client::Connect(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::IOError(std::string("connect 127.0.0.1:") +
                                    std::to_string(port) + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return status;
  }
  Client client;
  client.fd_ = fd;
  return client;
}

StatusOr<std::string> Client::Call(const std::string& request_json,
                                   size_t max_response_bytes) {
  if (fd_ < 0) return Status::Internal("client not connected");
  ST4ML_RETURN_IF_ERROR(WriteFrame(fd_, request_json));
  StatusOr<std::string> response = ReadFrame(fd_, max_response_bytes);
  if (!response.ok() &&
      response.status().code() == Status::Code::kNotFound) {
    // The frame layer's clean-EOF sentinel; for a client mid-call it means
    // the server hung up without answering.
    return Status::IOError("server closed the connection");
  }
  return response;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace server
}  // namespace st4ml
