#ifndef ST4ML_SERVER_ADMISSION_H_
#define ST4ML_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "common/status.h"

namespace st4ml {
namespace server {

/// Bounded admission for job-verb requests: at most `max_inflight` jobs run
/// concurrently, at most `queue_depth` callers wait for a slot, and anything
/// beyond that is shed immediately with ResourceExhausted. The two bounds
/// are the daemon's back-pressure story — a burst parks briefly instead of
/// oversubscribing the shared worker pool, while a sustained overload fails
/// fast instead of building an unbounded latency queue.
class AdmissionQueue {
 public:
  AdmissionQueue(size_t max_inflight, size_t queue_depth)
      : max_inflight_(max_inflight), queue_depth_(queue_depth) {}

  /// Blocks until a slot frees (fair enough: whoever wakes first wins) or
  /// the queue is Closed. Sheds with ResourceExhausted when the wait queue
  /// itself is full. On Ok the caller MUST Release() when its job finishes.
  Status Acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return Status::ResourceExhausted("server shutting down");
    if (inflight_ < max_inflight_) {
      ++inflight_;
      return Status::Ok();
    }
    if (waiting_ >= queue_depth_) {
      return Status::ResourceExhausted(
          "server at capacity (" + std::to_string(max_inflight_) +
          " in flight, " + std::to_string(queue_depth_) + " queued)");
    }
    ++waiting_;
    cv_.wait(lock, [this] { return closed_ || inflight_ < max_inflight_; });
    --waiting_;
    if (closed_) return Status::ResourceExhausted("server shutting down");
    ++inflight_;
    return Status::Ok();
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
    }
    cv_.notify_one();
  }

  /// Shutdown: queued waiters are rejected; already-admitted jobs are NOT
  /// interrupted — the server drains them before closing sockets.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t inflight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return inflight_;
  }

 private:
  const size_t max_inflight_;
  const size_t queue_depth_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t inflight_ = 0;
  size_t waiting_ = 0;
  bool closed_ = false;
};

/// RAII pairing for Acquire/Release: releases on destruction when admitted.
class AdmissionTicket {
 public:
  explicit AdmissionTicket(AdmissionQueue* queue)
      : queue_(queue), status_(queue->Acquire()) {}
  ~AdmissionTicket() {
    if (status_.ok()) queue_->Release();
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  bool admitted() const { return status_.ok(); }
  const Status& status() const { return status_; }

 private:
  AdmissionQueue* queue_;
  Status status_;
};

}  // namespace server
}  // namespace st4ml

#endif  // ST4ML_SERVER_ADMISSION_H_
