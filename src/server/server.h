#ifndef ST4ML_SERVER_SERVER_H_
#define ST4ML_SERVER_SERVER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "ingest/ingestor.h"
#include "pipeline/session.h"
#include "server/admission.h"
#include "server/json.h"
#include "server/rate_limiter.h"

namespace st4ml {
namespace server {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back with
  /// port() — tests and the --port-file flag do).
  int port = 0;
  /// Job-verb concurrency cap and wait-queue depth (see AdmissionQueue).
  size_t max_inflight = 8;
  size_t queue_depth = 16;
  /// Steady job-verb request rate; 0 disables rate limiting.
  double rate_qps = 0;
  double rate_burst = 8;
  /// Largest request frame accepted before the payload is even read.
  size_t max_frame_bytes = 4 << 20;
  /// Concurrent-connection (and so per-connection-thread) cap; connections
  /// beyond it are shed at accept with a RESOURCE_EXHAUSTED frame.
  size_t max_connections = 64;
};

/// The st4mld core: accepts connections on 127.0.0.1, reads length-prefixed
/// JSON requests, and serves them against ONE shared Session — every request
/// runs as its own Job on the session's warm ExecutionContext, so the cache
/// and worker pool persist across requests (the entire point of the daemon,
/// DESIGN.md §10).
///
/// Verbs:
///   ping      {"verb":"ping"[,"sleep_ms":N<=5000]}        liveness / drain
///   stats     {"verb":"stats"}           session counters + dataset indexes
///   select    {"verb":"select","dir":D,"mbr":[4],"time":[2]
///              [,"ids":[...]][,"limit":N]}
///   lookup_id {"verb":"lookup_id","dir":D,"ids":[...]
///              [,"mbr":[4],"time":[2]][,"limit":N]}
///   extract   {"verb":"extract","dir":D,"mbr":[4],"time":[2]
///              [,"interval":S]}
///   append    {"verb":"append","dir":D,"records":[{"id":I,"x":X,"y":Y,
///              "time":T[,"attr":S]},...]}       streaming WAL ingestion
///   flush     {"verb":"flush","dir":D}    seal + compact everything staged
///   ingest_status {"verb":"ingest_status","dir":D}     Ingestor counters
///   shutdown  {"verb":"shutdown"}                         graceful stop
///
/// append/flush/ingest_status serve a per-dir Ingestor (lazily opened, with
/// crash recovery, on first use); a select against an ingest directory is
/// answered from the MERGED view — compacted partitions plus the staged WAL
/// tail — under the ingestor's snapshot lock, so every acked record appears
/// exactly once even mid-compaction (DESIGN.md §13).
///
/// select/lookup_id/extract all parse into the ONE SelectQuery type; a
/// lookup_id with no mbr/time spans everything and lets the id postings
/// (disk index) or id filter (other plans) drive selection alone.
///
/// Responses are {"ok":true,...} or {"ok":false,"code":C,"error":M} with C
/// in {NOT_FOUND, INVALID_ARGUMENT, IO_ERROR, CORRUPTION, INTERNAL,
/// RESOURCE_EXHAUSTED}. Job verbs attach the request's OWN metrics delta
/// (per-job counters, not session totals) plus elapsed_us.
///
/// Overload: select/lookup_id/extract pass the token-bucket rate limiter and
/// the bounded admission queue; both shed with RESOURCE_EXHAUSTED. ping/stats
/// bypass both so health stays observable under load.
///
/// Shutdown is graceful: stop accepting, unblock idle readers, let in-flight
/// handlers finish and write their responses, then join every thread.
class Server {
 public:
  Server(Session* session, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and starts the accept loop. IOError if the port is taken.
  Status Start();

  /// The bound port (valid after Start; useful with options.port == 0).
  int port() const { return port_; }

  /// Blocks up to `timeout_ms` for a client's shutdown verb. Returns true
  /// once one arrived — the daemon's main loop alternates this with its
  /// signal-flag check, then calls Shutdown() itself.
  bool WaitShutdownRequested(int timeout_ms);

  /// Graceful stop; idempotent. Safe to call with requests in flight — they
  /// complete and their responses are written before sockets close.
  void Shutdown();

  /// Currently open client connections (test hook).
  size_t ActiveConnectionsForTest();
  /// Per-connection threads not yet joined: live handlers plus handlers that
  /// finished since the last accept-side reap (test hook for the reaper —
  /// a long-lived daemon must not accumulate one thread per connection ever
  /// served).
  size_t ConnectionThreadsForTest();

 private:
  void AcceptLoop();
  /// Joins handler threads that have finished since the last call; runs on
  /// the accept thread so churny short connections are reaped as new ones
  /// arrive rather than only at Shutdown.
  void ReapFinishedThreads();
  void HandleConnection(uint64_t conn_id, int fd);
  /// One request frame → one response payload. Sets *close_after for
  /// protocol-fatal inputs (oversized frame).
  std::string HandleRequest(const std::string& payload, bool* close_after);
  /// select and lookup_id share one implementation: both run the Selector on
  /// a SelectQuery and render sorted rows; lookup_id just makes `ids`
  /// mandatory and mbr/time optional.
  std::string HandleSelect(const JsonValue& request, bool lookup_by_id);
  std::string HandleExtract(const JsonValue& request);
  std::string HandleAppend(const JsonValue& request);
  std::string HandleFlush(const JsonValue& request);
  std::string HandleIngestStatus(const JsonValue& request);
  std::string HandleStats();
  /// The lazily-opened Ingestor serving `dir` (crash recovery runs on first
  /// open). One Ingestor per directory for the daemon's lifetime.
  StatusOr<Ingestor*> IngestorFor(const std::string& dir);
  /// The live ingestor for `dir` when one is already open, else nullptr —
  /// the select path uses this to decide merged vs batch serving without
  /// opening one as a side effect.
  Ingestor* FindIngestor(const std::string& dir);
  /// Remembers a dataset dir a job verb touched, so stats can report each
  /// one's on-disk index coverage.
  void RecordServedDir(const std::string& dir);

  Session* session_;
  ServerOptions options_;
  AdmissionQueue admission_;
  RateLimiter rate_limiter_;

  int listen_fd_ = -1;
  int port_ = 0;
  /// Self-pipe that unblocks the accept loop's poll() on Shutdown —
  /// shutdown(2) on a LISTENING socket only works on Linux, so it is not
  /// relied on for wakeup.
  int wake_pipe_[2] = {-1, -1};
  std::thread accept_thread_;

  std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool stopping_ = false;
  /// Live handler threads by connection id; a handler moves its own handle
  /// into finished_threads_ on exit, where the accept loop (or Shutdown)
  /// joins it.
  uint64_t next_conn_id_ = 0;
  std::unordered_map<uint64_t, std::thread> conn_threads_;
  std::vector<std::thread> finished_threads_;
  std::unordered_set<int> open_fds_;
  /// Dataset dirs served so far (guarded by mu_); stats walks each one to
  /// report how many .stpq files have a .stix sidecar next to them.
  std::unordered_set<std::string> served_dirs_;

  /// Streaming ingestion state, its own lock: opening an Ingestor runs
  /// recovery I/O and must not stall connection bookkeeping under mu_.
  std::mutex ingest_mu_;
  std::map<std::string, std::unique_ptr<Ingestor>> ingestors_;
};

}  // namespace server
}  // namespace st4ml

#endif  // ST4ML_SERVER_SERVER_H_
