#ifndef ST4ML_SERVER_RATE_LIMITER_H_
#define ST4ML_SERVER_RATE_LIMITER_H_

#include <algorithm>
#include <chrono>
#include <mutex>

namespace st4ml {
namespace server {

/// Token-bucket limiter for job-verb requests (select/extract). Refill is
/// computed lazily from the monotonic clock on each TryAcquire — no refill
/// thread to manage or shut down. `rate_qps == 0` disables limiting.
///
/// st4mld applies this only to verbs that start engine jobs: ping/stats
/// must keep answering while the bucket is dry, or the operator loses
/// exactly the health signal that explains the 429s.
class RateLimiter {
 public:
  /// `burst` is the bucket capacity (and initial fill): how many requests
  /// may land back-to-back before the steady `rate_qps` drip governs.
  RateLimiter(double rate_qps, double burst)
      : rate_qps_(rate_qps),
        burst_(std::max(burst, 1.0)),
        tokens_(std::max(burst, 1.0)),
        last_refill_(Clock::now()) {}

  /// Consumes one token if available. Never blocks: a dry bucket is the
  /// caller's cue to shed with RESOURCE_EXHAUSTED, not to queue.
  bool TryAcquire() {
    if (rate_qps_ <= 0) return true;
    std::lock_guard<std::mutex> lock(mu_);
    Clock::time_point now = Clock::now();
    double elapsed = std::chrono::duration<double>(now - last_refill_).count();
    last_refill_ = now;
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_qps_);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

 private:
  using Clock = std::chrono::steady_clock;

  const double rate_qps_;
  const double burst_;
  std::mutex mu_;
  double tokens_;
  Clock::time_point last_refill_;
};

}  // namespace server
}  // namespace st4ml

#endif  // ST4ML_SERVER_RATE_LIMITER_H_
