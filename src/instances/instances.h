#ifndef ST4ML_INSTANCES_INSTANCES_H_
#define ST4ML_INSTANCES_INSTANCES_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "accel/kernels.h"
#include "common/logging.h"
#include "geometry/linestring.h"
#include "geometry/point.h"
#include "index/stbox.h"
#include "instances/structures.h"

namespace st4ml {

/// Empty payload for instances whose mere presence is the signal.
struct Unit {};

/// One (value, time) sample of a typed trajectory.
template <typename V>
struct TimedValue {
  V value{};
  int64_t time = 0;
};

/// A generic typed trajectory: per-object data plus timed entries. The
/// output of trajectory-to-trajectory conversions like map matching
/// (Trajectory<int64_t, int64_t>: trip id + per-sample road-segment ids).
template <typename DataT, typename ValueT>
struct Trajectory {
  DataT data{};
  std::vector<TimedValue<ValueT>> entries;
};

/// One spatial sample of an ST trajectory.
struct STEntry {
  Point point;
  int64_t time = 0;
};

/// Typed data carried by an STEvent.
struct EventData {
  int64_t id = 0;
  std::string attr;
};

/// The singular "event" instance: one location, one (possibly degenerate)
/// time interval, typed data — no string parsing at use sites (Table 1).
struct STEvent {
  Point spatial;
  Duration temporal;
  EventData data;

  STBox ComputeSTBox() const { return STBox(Mbr(spatial), temporal); }
};

/// The singular "trajectory" instance: id plus time-ordered spatial entries.
struct STTrajectory {
  int64_t data = 0;
  std::vector<STEntry> entries;

  Duration TemporalExtent() const {
    if (entries.empty()) return Duration();
    return Duration(entries.front().time, entries.back().time);
  }

  LineString Shape() const {
    std::vector<Point> points;
    points.reserve(entries.size());
    for (const STEntry& e : entries) points.push_back(e.point);
    return LineString(std::move(points));
  }

  /// Whole-trajectory mean speed: great-circle length over elapsed time.
  /// Segment distances go through the batched HaversineMeters kernel a
  /// chunk at a time (consecutive points gathered into SoA spans); the sum
  /// stays a sequential left-to-right fold over the per-segment results,
  /// so the value is bit-identical to the old one-segment-at-a-time loop
  /// on every backend (the cross-system checksum audit pins this).
  double AverageSpeedMps() const {
    constexpr size_t kChunk = 256;
    double ax[kChunk], ay[kChunk], bx[kChunk], by[kChunk], dist[kChunk];
    const accel::KernelBackend& kernels = accel::Active();
    double meters = 0.0;
    for (size_t seg = 1; seg < entries.size(); seg += kChunk) {
      const size_t len = std::min(kChunk, entries.size() - seg);
      for (size_t i = 0; i < len; ++i) {
        ax[i] = entries[seg + i - 1].point.x;
        ay[i] = entries[seg + i - 1].point.y;
        bx[i] = entries[seg + i].point.x;
        by[i] = entries[seg + i].point.y;
      }
      kernels.HaversineMeters(ax, ay, bx, by, len, dist);
      for (size_t i = 0; i < len; ++i) meters += dist[i];
    }
    if (entries.size() > 1) {
      accel::BackendRegistry::Instance().CountBatch(entries.size() - 1);
    }
    int64_t span = TemporalExtent().Seconds();
    return span > 0 ? meters / static_cast<double>(span) : 0.0;
  }

  STBox ComputeSTBox() const {
    Mbr mbr;
    for (const STEntry& e : entries) mbr.Extend(e.point);
    return STBox(mbr, TemporalExtent());
  }
};

/// A detected stay: the visited region's representative point and dwell.
struct StayPoint {
  Point center;
  Duration duration;
  int64_t num_points = 0;
};

/// Collective instances: a structure shared across partitions plus one value
/// per structure cell. Conversion emits one per engine partition holding
/// that partition's contribution; CollectAndMerge folds them into one.

template <typename V>
class TimeSeries {
 public:
  TimeSeries() = default;
  TimeSeries(std::shared_ptr<const TemporalStructure> structure,
             std::vector<V> values)
      : structure_(std::move(structure)), values_(std::move(values)) {
    ST4ML_CHECK(values_.size() == structure_->size())
        << "value count must match bin count";
  }
  TimeSeries(std::shared_ptr<const TemporalStructure> structure, const V& init)
      : TimeSeries(structure,
                   std::vector<V>(structure ? structure->size() : 0, init)) {}

  size_t size() const { return values_.size(); }
  const V& value(size_t i) const { return values_[i]; }
  V& mutable_value(size_t i) { return values_[i]; }
  const std::vector<V>& values() const { return values_; }
  const Duration& bin(size_t i) const { return structure_->bin(i); }
  const std::shared_ptr<const TemporalStructure>& structure() const {
    return structure_;
  }

 private:
  std::shared_ptr<const TemporalStructure> structure_;
  std::vector<V> values_;
};

template <typename V>
class SpatialMap {
 public:
  SpatialMap() = default;
  SpatialMap(std::shared_ptr<const SpatialStructure> structure,
             std::vector<V> values)
      : structure_(std::move(structure)), values_(std::move(values)) {
    ST4ML_CHECK(values_.size() == structure_->size())
        << "value count must match cell count";
  }
  SpatialMap(std::shared_ptr<const SpatialStructure> structure, const V& init)
      : SpatialMap(structure,
                   std::vector<V>(structure ? structure->size() : 0, init)) {}

  size_t size() const { return values_.size(); }
  const V& value(size_t i) const { return values_[i]; }
  V& mutable_value(size_t i) { return values_[i]; }
  const std::vector<V>& values() const { return values_; }
  const Polygon& cell(size_t i) const { return structure_->cell(i); }
  const std::shared_ptr<const SpatialStructure>& structure() const {
    return structure_;
  }

 private:
  std::shared_ptr<const SpatialStructure> structure_;
  std::vector<V> values_;
};

template <typename V>
class Raster {
 public:
  Raster() = default;
  Raster(std::shared_ptr<const RasterStructure> structure,
         std::vector<V> values)
      : structure_(std::move(structure)), values_(std::move(values)) {
    ST4ML_CHECK(values_.size() == structure_->size())
        << "value count must match cell x bin count";
  }
  Raster(std::shared_ptr<const RasterStructure> structure, const V& init)
      : Raster(structure,
               std::vector<V>(structure ? structure->size() : 0, init)) {}

  size_t size() const { return values_.size(); }
  const V& value(size_t i) const { return values_[i]; }
  V& mutable_value(size_t i) { return values_[i]; }
  const std::vector<V>& values() const { return values_; }
  const Polygon& cell(size_t i) const { return structure_->cell(i); }
  const Duration& bin(size_t i) const { return structure_->bin(i); }
  const std::shared_ptr<const RasterStructure>& structure() const {
    return structure_;
  }

 private:
  std::shared_ptr<const RasterStructure> structure_;
  std::vector<V> values_;
};

}  // namespace st4ml

#endif  // ST4ML_INSTANCES_INSTANCES_H_
