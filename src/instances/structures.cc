#include "instances/structures.h"

namespace st4ml {

TemporalStructure TemporalStructure::Regular(const Duration& range,
                                             int num_bins) {
  TemporalStructure structure;
  structure.range_ = range;
  if (num_bins <= 0) return structure;
  int64_t seconds = range.Seconds();
  structure.bins_.reserve(num_bins);
  for (int i = 0; i < num_bins; ++i) {
    int64_t lo = range.start() + seconds * i / num_bins;
    int64_t hi = range.start() + seconds * (i + 1) / num_bins;
    structure.bins_.push_back(Duration(lo, hi));
  }
  if (seconds % num_bins == 0) {
    structure.regular_ = true;
    structure.width_ = seconds / num_bins;
  }
  return structure;
}

TemporalStructure TemporalStructure::RegularByInterval(const Duration& range,
                                                       int64_t interval_s) {
  TemporalStructure structure;
  structure.range_ = range;
  structure.bins_ = TemporalSliding(range, interval_s);
  structure.regular_ = !structure.bins_.empty();
  structure.width_ = interval_s;
  return structure;
}

TemporalStructure TemporalStructure::Irregular(std::vector<Duration> bins) {
  TemporalStructure structure;
  structure.bins_ = std::move(bins);
  if (!structure.bins_.empty()) {
    structure.range_ = structure.bins_.front();
    for (const Duration& bin : structure.bins_) structure.range_.Extend(bin);
  }
  return structure;
}

size_t TemporalStructure::FindBin(int64_t t) const {
  if (bins_.empty()) return kNoBin;
  if (regular_ && width_ > 0) {
    if (t < bins_.front().start() || t > bins_.back().end()) return kNoBin;
    size_t idx = static_cast<size_t>((t - bins_.front().start()) / width_);
    if (idx >= bins_.size()) idx = bins_.size() - 1;
    // Closed bins share boundaries: step back to the FIRST containing bin so
    // arithmetic lookup agrees with a front-to-back scan.
    while (idx > 0 && bins_[idx - 1].Contains(t)) --idx;
    return bins_[idx].Contains(t) ? idx : kNoBin;
  }
  for (size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i].Contains(t)) return i;
  }
  return kNoBin;
}

std::vector<size_t> TemporalStructure::IntersectingBins(
    const Duration& d) const {
  std::vector<size_t> out;
  if (regular_ && width_ > 0 && !bins_.empty()) {
    if (d.end() < bins_.front().start() || d.start() > bins_.back().end()) {
      return out;
    }
    int64_t base = bins_.front().start();
    int64_t lo_raw = d.start() < base ? 0 : (d.start() - base) / width_;
    size_t lo = static_cast<size_t>(lo_raw);
    if (lo >= bins_.size()) lo = bins_.size() - 1;
    while (lo > 0 && bins_[lo - 1].Intersects(d)) --lo;
    for (size_t i = lo; i < bins_.size() && bins_[i].start() <= d.end(); ++i) {
      if (bins_[i].Intersects(d)) out.push_back(i);
    }
    return out;
  }
  for (size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i].Intersects(d)) out.push_back(i);
  }
  return out;
}

SpatialStructure SpatialStructure::Grid(const Mbr& extent, int nx, int ny) {
  SpatialStructure structure;
  structure.extent_ = extent;
  structure.grid_ = true;
  structure.nx_ = nx;
  structure.ny_ = ny;
  // Row-major, y outer — and the same arithmetic as the baselines' loops, so
  // cell boundaries are bitwise identical.
  double dx = extent.Width() / nx;
  double dy = extent.Height() / ny;
  structure.cells_.reserve(static_cast<size_t>(nx) * ny);
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      Mbr cell(extent.x_min + ix * dx, extent.y_min + iy * dy,
               extent.x_min + (ix + 1) * dx, extent.y_min + (iy + 1) * dy);
      structure.mbrs_.push_back(cell);
      structure.cells_.push_back(Polygon::FromMbr(cell));
    }
  }
  return structure;
}

SpatialStructure SpatialStructure::Irregular(std::vector<Polygon> cells) {
  SpatialStructure structure;
  structure.cells_ = std::move(cells);
  structure.mbrs_.reserve(structure.cells_.size());
  for (const Polygon& cell : structure.cells_) {
    structure.mbrs_.push_back(cell.mbr());
    structure.extent_.Extend(cell.mbr());
  }
  return structure;
}

size_t SpatialStructure::FindCell(const Point& p) const {
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].ContainsPoint(p)) return i;
  }
  return kNoCell;
}

std::vector<size_t> SpatialStructure::IntersectingCells(
    const LineString& line) const {
  std::vector<size_t> out;
  Mbr line_mbr = line.ComputeMbr();
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (!line_mbr.Intersects(mbrs_[i])) continue;
    bool hit = grid_ ? line.IntersectsMbr(mbrs_[i])
                     : cells_[i].IntersectsLineString(line);
    if (hit) out.push_back(i);
  }
  return out;
}

std::vector<size_t> SpatialStructure::ContainingCells(const Point& p) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].ContainsPoint(p)) out.push_back(i);
  }
  return out;
}

RasterStructure RasterStructure::Regular(const Mbr& extent, int nx, int ny,
                                         const Duration& range, int num_bins) {
  RasterStructure structure;
  structure.spatial_ = SpatialStructure::Grid(extent, nx, ny);
  structure.temporal_ = TemporalStructure::Regular(range, num_bins);
  return structure;
}

RasterStructure RasterStructure::CrossProduct(std::vector<Polygon> cells,
                                              std::vector<Duration> bins) {
  RasterStructure structure;
  structure.spatial_ = SpatialStructure::Irregular(std::move(cells));
  structure.temporal_ = TemporalStructure::Irregular(std::move(bins));
  return structure;
}

}  // namespace st4ml
