#ifndef ST4ML_INSTANCES_STRUCTURES_H_
#define ST4ML_INSTANCES_STRUCTURES_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "geometry/mbr.h"
#include "geometry/polygon.h"
#include "temporal/duration.h"

namespace st4ml {

/// The temporal skeleton of a TimeSeries: an ordered list of closed time
/// bins. Adjacent regular bins share their boundary instant; assignment of
/// an instant is always "first bin in order that contains it", so every
/// instant lands in exactly one bin and agrees with a naive front-to-back
/// scan over the bins (which is what the baselines do).
class TemporalStructure {
 public:
  TemporalStructure() = default;

  /// `num_bins` equal-width bins spanning `range`.
  static TemporalStructure Regular(const Duration& range, int num_bins);

  /// Bins of `interval_s` seconds covering `range` — identical, bin for bin,
  /// to TemporalSliding(range, interval_s).
  static TemporalStructure RegularByInterval(const Duration& range,
                                             int64_t interval_s);

  /// Explicit, possibly irregular bins.
  static TemporalStructure Irregular(std::vector<Duration> bins);

  size_t size() const { return bins_.size(); }
  const Duration& bin(size_t i) const { return bins_[i]; }
  const std::vector<Duration>& bins() const { return bins_; }
  const Duration& range() const { return range_; }

  static constexpr size_t kNoBin = static_cast<size_t>(-1);

  /// Index of the FIRST bin containing instant `t`, or kNoBin.
  size_t FindBin(int64_t t) const;

  /// Indices of every bin intersecting `d`, in order.
  std::vector<size_t> IntersectingBins(const Duration& d) const;

 private:
  std::vector<Duration> bins_;
  Duration range_;
  // Regular-bin fast path: with equal-width bins the first containing bin is
  // computable arithmetically (minus a one-step boundary correction).
  bool regular_ = false;
  int64_t width_ = 0;
};

/// The spatial skeleton of a SpatialMap: an ordered list of cells. Grid
/// cells are built row-major (y outer, x inner) with the exact same
/// floating-point arithmetic the hand-rolled baseline loops use, so the two
/// sides test bitwise-identical rectangles.
class SpatialStructure {
 public:
  SpatialStructure() = default;

  static SpatialStructure Grid(const Mbr& extent, int nx, int ny);
  static SpatialStructure Irregular(std::vector<Polygon> cells);

  size_t size() const { return cells_.size(); }
  const Polygon& cell(size_t i) const { return cells_[i]; }
  const std::vector<Polygon>& cells() const { return cells_; }
  const Mbr& cell_mbr(size_t i) const { return mbrs_[i]; }
  bool is_grid() const { return grid_; }
  const Mbr& extent() const { return extent_; }

  static constexpr size_t kNoCell = static_cast<size_t>(-1);

  /// Index of the FIRST cell containing `p` (front-to-back scan order), or
  /// kNoCell.
  size_t FindCell(const Point& p) const;

  /// Indices of every cell the polyline intersects, in order. Grid cells use
  /// the exact rectangle predicate; irregular cells the polygon one.
  std::vector<size_t> IntersectingCells(const LineString& line) const;

  /// Indices of every cell containing `p`, in order.
  std::vector<size_t> ContainingCells(const Point& p) const;

 private:
  std::vector<Polygon> cells_;
  std::vector<Mbr> mbrs_;
  Mbr extent_;
  bool grid_ = false;
  int nx_ = 0;
  int ny_ = 0;
};

/// The skeleton of a Raster: the cross product of spatial cells and temporal
/// bins, laid out bin-major (index = bin * num_cells + cell) like the
/// baselines' flat arrays.
class RasterStructure {
 public:
  RasterStructure() = default;

  /// nx x ny grid cells x `num_bins` equal temporal bins.
  static RasterStructure Regular(const Mbr& extent, int nx, int ny,
                                 const Duration& range, int num_bins);

  /// Arbitrary cells x arbitrary bins.
  static RasterStructure CrossProduct(std::vector<Polygon> cells,
                                      std::vector<Duration> bins);

  size_t num_cells() const { return spatial_.size(); }
  size_t num_bins() const { return temporal_.size(); }
  size_t size() const { return num_cells() * num_bins(); }

  const SpatialStructure& spatial() const { return spatial_; }
  const TemporalStructure& temporal() const { return temporal_; }

  const Polygon& cell(size_t flat) const {
    return spatial_.cell(flat % num_cells());
  }
  const Duration& bin(size_t flat) const {
    return temporal_.bin(flat / num_cells());
  }
  size_t FlatIndex(size_t cell, size_t bin) const {
    return bin * num_cells() + cell;
  }

 private:
  SpatialStructure spatial_;
  TemporalStructure temporal_;
};

}  // namespace st4ml

#endif  // ST4ML_INSTANCES_STRUCTURES_H_
