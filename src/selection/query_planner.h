#ifndef ST4ML_SELECTION_QUERY_PLANNER_H_
#define ST4ML_SELECTION_QUERY_PLANNER_H_

#include <filesystem>
#include <string>

#include "engine/dataset_cache.h"
#include "index/stix.h"
#include "observability/counters.h"

namespace st4ml {

/// How one file is served by a Select (DESIGN.md §12 decision tree).
enum class FilePlan : uint8_t {
  kLinearScan = 0,   // parse the whole file, filter in memory (seed path)
  kCachedIndex = 1,  // in-memory cached index: hit, or miss-load-and-admit
  kMmapIndex = 2,    // mmap the .stix sidecar, read only matching bytes
  kWalScan = 3,      // staged `.stwal` segment: frame-parse + filter
};
inline constexpr size_t kNumFilePlans = 4;

inline const char* FilePlanName(FilePlan plan) {
  switch (plan) {
    case FilePlan::kLinearScan:
      return "scan";
    case FilePlan::kCachedIndex:
      return "cached";
    case FilePlan::kMmapIndex:
      return "mmap";
    case FilePlan::kWalScan:
      return "wal";
  }
  return "unknown";
}

/// Picks, PER FILE, which plan a Select executes. Precedence:
///
///  1. A `.stwal` staging segment can ONLY be frame-scanned (kWalScan):
///     WAL segments carry no sidecar and are too short-lived to cache —
///     the compactor retires them into indexed partitions.
///  2. An enabled DatasetCache always wins (kCachedIndex) — on a hit the
///     warm in-memory index answers with zero I/O, and on a miss the file
///     is loaded ONCE and admitted so every later query is warm. That is
///     the daemon's reason to exist; the mmap index must not starve it.
///  3. Otherwise, with the disk index enabled and a sidecar present,
///     kMmapIndex: cold selection becomes an index-page walk plus ranged
///     record reads.
///  4. Otherwise kLinearScan — the seed behavior, and the fallback a
///     corrupt or stale sidecar demotes an intended kMmapIndex to at
///     execution time (the planner's stat cannot see bad bytes).
///
/// The plan here is INTENT (one existence stat, no parsing); the Selector
/// records the plan each file was actually served by into the
/// kPlanner{MmapIndex,CachedIndex,LinearScan} / kWalSegmentsScanned
/// counters.
class QueryPlanner {
 public:
  QueryPlanner(DatasetCache* cache, bool use_disk_index)
      : cache_(cache), use_disk_index_(use_disk_index) {}

  /// True for WAL staging segments, sealed (`.stwal`) or active
  /// (`.stwal.open`) — the suffixes src/ingest/wal.h writes.
  static bool IsWalSegmentPath(const std::string& path) {
    auto ends_with = [&](const char* suffix) {
      size_t n = std::char_traits<char>::length(suffix);
      return path.size() >= n &&
             path.compare(path.size() - n, n, suffix) == 0;
    };
    return ends_with(".stwal") || ends_with(".stwal.open");
  }

  FilePlan Plan(const std::string& path) const {
    if (IsWalSegmentPath(path)) return FilePlan::kWalScan;
    if (cache_ != nullptr) return FilePlan::kCachedIndex;
    if (use_disk_index_) {
      std::error_code ec;
      if (std::filesystem::exists(StixPathFor(path), ec)) {
        return FilePlan::kMmapIndex;
      }
    }
    return FilePlan::kLinearScan;
  }

  /// Folds per-file EXECUTED plans into the planner counters.
  static void CountExecuted(CounterRegistry& counters, uint64_t mmap_files,
                            uint64_t cached_files, uint64_t scan_files,
                            uint64_t wal_files = 0) {
    if (mmap_files > 0) counters.Add(Counter::kPlannerMmapIndex, mmap_files);
    if (cached_files > 0) {
      counters.Add(Counter::kPlannerCachedIndex, cached_files);
    }
    if (scan_files > 0) counters.Add(Counter::kPlannerLinearScan, scan_files);
    if (wal_files > 0) counters.Add(Counter::kWalSegmentsScanned, wal_files);
  }

 private:
  DatasetCache* cache_;
  bool use_disk_index_;
};

}  // namespace st4ml

#endif  // ST4ML_SELECTION_QUERY_PLANNER_H_
