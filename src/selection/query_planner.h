#ifndef ST4ML_SELECTION_QUERY_PLANNER_H_
#define ST4ML_SELECTION_QUERY_PLANNER_H_

#include <filesystem>
#include <string>

#include "engine/dataset_cache.h"
#include "index/stix.h"
#include "observability/counters.h"

namespace st4ml {

/// How one STPQ file is served by a Select (DESIGN.md §12 decision tree).
enum class FilePlan : uint8_t {
  kLinearScan = 0,   // parse the whole file, filter in memory (seed path)
  kCachedIndex = 1,  // in-memory cached index: hit, or miss-load-and-admit
  kMmapIndex = 2,    // mmap the .stix sidecar, read only matching bytes
};

inline const char* FilePlanName(FilePlan plan) {
  switch (plan) {
    case FilePlan::kLinearScan:
      return "scan";
    case FilePlan::kCachedIndex:
      return "cached";
    case FilePlan::kMmapIndex:
      return "mmap";
  }
  return "unknown";
}

/// Picks, PER FILE, which of the three plans a Select executes. Precedence:
///
///  1. An enabled DatasetCache always wins (kCachedIndex) — on a hit the
///     warm in-memory index answers with zero I/O, and on a miss the file
///     is loaded ONCE and admitted so every later query is warm. That is
///     the daemon's reason to exist; the mmap index must not starve it.
///  2. Otherwise, with the disk index enabled and a sidecar present,
///     kMmapIndex: cold selection becomes an index-page walk plus ranged
///     record reads.
///  3. Otherwise kLinearScan — the seed behavior, and the fallback a
///     corrupt or stale sidecar demotes an intended kMmapIndex to at
///     execution time (the planner's stat cannot see bad bytes).
///
/// The plan here is INTENT (one existence stat, no parsing); the Selector
/// records the plan each file was actually served by into the
/// kPlanner{MmapIndex,CachedIndex,LinearScan} counters.
class QueryPlanner {
 public:
  QueryPlanner(DatasetCache* cache, bool use_disk_index)
      : cache_(cache), use_disk_index_(use_disk_index) {}

  FilePlan Plan(const std::string& stpq_path) const {
    if (cache_ != nullptr) return FilePlan::kCachedIndex;
    if (use_disk_index_) {
      std::error_code ec;
      if (std::filesystem::exists(StixPathFor(stpq_path), ec)) {
        return FilePlan::kMmapIndex;
      }
    }
    return FilePlan::kLinearScan;
  }

  /// Folds per-file EXECUTED plans into the planner counters.
  static void CountExecuted(CounterRegistry& counters, uint64_t mmap_files,
                            uint64_t cached_files, uint64_t scan_files) {
    if (mmap_files > 0) counters.Add(Counter::kPlannerMmapIndex, mmap_files);
    if (cached_files > 0) {
      counters.Add(Counter::kPlannerCachedIndex, cached_files);
    }
    if (scan_files > 0) counters.Add(Counter::kPlannerLinearScan, scan_files);
  }

 private:
  DatasetCache* cache_;
  bool use_disk_index_;
};

}  // namespace st4ml

#endif  // ST4ML_SELECTION_QUERY_PLANNER_H_
