#ifndef ST4ML_SELECTION_SELECTOR_H_
#define ST4ML_SELECTION_SELECTOR_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "engine/dataset.h"
#include "index/rtree.h"
#include "partition/partitioner.h"
#include "partition/st_partition_ops.h"
#include "partition/str_partitioner.h"
#include "storage/stpq.h"

namespace st4ml {

struct SelectorOptions {
  /// When set (and partition_after_select is true), the selected records are
  /// ST-partitioned for the downstream stages — select FIRST, partition the
  /// small result, not the other way around (the paper's ordering).
  std::shared_ptr<STPartitioner> partitioner;
  bool partition_after_select = true;
  /// Refine loaded files through a per-file R-tree instead of a linear scan.
  /// Same records either way; this is the in-memory half of the index.
  bool use_rtree = true;
  /// Per-file load retry: transient IOErrors (a flaky filesystem, an
  /// injected fault) are re-attempted with backoff before failing the
  /// Select; deterministic errors (NotFound, Corruption) fail immediately.
  RetryPolicy retry;
};

/// I/O accounting, accumulated across Select calls: how many file bytes were
/// read, and how many bytes of records survived the ST predicate. The gap
/// between the two is what metadata pruning saves.
struct SelectorStats {
  uint64_t bytes_loaded = 0;
  uint64_t bytes_selected = 0;
};

/// The selection stage (paper §3.1): load persisted records intersecting an
/// ST query. One-argument Select scans a plain directory end to end; the
/// two-argument form prunes whole files through the on-disk metadata first
/// and only opens survivors.
template <typename RecordT>
class Selector {
 public:
  Selector(std::shared_ptr<ExecutionContext> ctx, const STBox& query,
           SelectorOptions options = {})
      : ctx_(std::move(ctx)), query_(query), options_(std::move(options)) {}

  /// Full scan of every STPQ file in `dir`.
  StatusOr<Dataset<RecordT>> Select(const std::string& dir) {
    std::vector<std::string> paths = ListStpqFiles(dir);
    if (paths.empty()) {
      return Status::NotFound("no STPQ files under " + dir);
    }
    return LoadAndFilter(paths);
  }

  /// Metadata-pruned selection over a directory written by BuildOnDiskIndex.
  StatusOr<Dataset<RecordT>> Select(const std::string& dir,
                                    const std::string& meta_path) {
    auto meta = ReadStpqMeta(meta_path);
    if (!meta.ok()) return meta.status();
    std::vector<std::string> paths;
    for (const StpqPartMeta& part : *meta) {
      // Empty partitions have inverted envelopes and never match.
      if (part.box.Intersects(query_)) {
        paths.push_back(dir + "/" + part.file);
      }
    }
    internal::Counters(*ctx_).Add(Counter::kPartitionsPruned,
                                  meta->size() - paths.size());
    return LoadAndFilter(paths);
  }

  const SelectorStats& stats() const { return stats_; }

 private:
  /// Loads and ST-filters `paths` IN PARALLEL, one Status-returning task
  /// per file, so a per-file IOError propagates to the caller instead of
  /// failing the process (and a transient one is retried per
  /// options_.retry before it counts as a failure). Partition i of the
  /// result is always file i — the parallel fill is index-addressed, so the
  /// output is byte-identical to the old sequential load.
  StatusOr<Dataset<RecordT>> LoadAndFilter(
      const std::vector<std::string>& paths) {
    ScopedSpan op(ctx_->tracer(), span_category::kOperation,
                  "selection/load_filter");
    CounterRegistry& counters = internal::Counters(*ctx_);
    Tracer* tracer = ctx_->tracer();
    const uint64_t op_span = op.id();
    typename Dataset<RecordT>::Partitions parts(paths.size());
    // Per-file accounting slots, folded into stats_/counters on the driver
    // after the join — worker tasks never touch shared mutable state.
    std::vector<uint64_t> read_bytes(paths.size(), 0);
    std::vector<uint64_t> selected_bytes(paths.size(), 0);
    auto load_task = [&](size_t i) -> Status {
      ScopedSpan io(tracer, span_category::kIo, "stpq_read", op_span);
      uint64_t attempts = 0;
      auto records = options_.retry.Run(
          [&]() -> StatusOr<std::vector<RecordT>> {
            uint64_t bytes = 0;
            auto loaded = ReadStpqFile<RecordT>(paths[i], &bytes);
            if (loaded.ok()) read_bytes[i] = bytes;
            return loaded;
          },
          &counters, &attempts);
      io.AddArg("bytes", read_bytes[i]);
      if (attempts > 1) io.AddArg("attempts", attempts);
      if (!records.ok()) return records.status();
      parts[i] =
          FilterRecords(std::move(records).value(), &selected_bytes[i]);
      return Status::Ok();
    };
    ST4ML_RETURN_IF_ERROR(
        ctx_->TryRunParallel("selection/load_filter", paths.size(),
                             load_task));
    uint64_t records_out = 0;
    uint64_t loaded_bytes = 0;
    uint64_t kept_bytes = 0;
    for (size_t i = 0; i < paths.size(); ++i) {
      records_out += parts[i].size();
      loaded_bytes += read_bytes[i];
      kept_bytes += selected_bytes[i];
    }
    stats_.bytes_loaded += loaded_bytes;
    stats_.bytes_selected += kept_bytes;
    counters.Add(Counter::kStpqBytesRead, loaded_bytes);
    counters.Add(Counter::kStpqFilesRead, paths.size());
    counters.Add(Counter::kPartitionsScanned, paths.size());
    counters.Add(Counter::kSelectionRecordsOut, records_out);
    counters.Add(Counter::kSelectionBytesSelected, kept_bytes);
    op.AddArg("files", paths.size());
    op.AddArg("records_out", records_out);
    auto selected = Dataset<RecordT>::FromPartitions(ctx_, std::move(parts));
    if (options_.partitioner != nullptr && options_.partition_after_select) {
      auto partitioned = TrySTPartition(
          selected, options_.partitioner.get(),
          [](const RecordT& r) { return r.ComputeSTBox(); },
          [](const RecordT& r) { return static_cast<uint64_t>(r.id); });
      if (!partitioned.ok()) return partitioned.status();
      selected = std::move(partitioned).value();
    }
    return selected;
  }

  std::vector<RecordT> FilterRecords(std::vector<RecordT> records,
                                     uint64_t* bytes_selected) {
    std::vector<RecordT> kept;
    if (options_.use_rtree) {
      std::vector<STBox> boxes;
      boxes.reserve(records.size());
      for (const RecordT& r : records) boxes.push_back(r.ComputeSTBox());
      RTree<STBox> tree;
      tree.Build(boxes);
      std::vector<size_t> hits = tree.Query(query_);
      // The tree reports leaf order; restore record order so both refine
      // paths return identical datasets.
      std::sort(hits.begin(), hits.end());
      kept.reserve(hits.size());
      for (size_t i : hits) kept.push_back(std::move(records[i]));
    } else {
      for (RecordT& r : records) {
        if (r.ComputeSTBox().Intersects(query_)) kept.push_back(std::move(r));
      }
    }
    for (const RecordT& r : kept) *bytes_selected += StpqRecordBytes(r);
    return kept;
  }

  std::shared_ptr<ExecutionContext> ctx_;
  STBox query_;
  SelectorOptions options_;
  SelectorStats stats_;
};

}  // namespace st4ml

#endif  // ST4ML_SELECTION_SELECTOR_H_
