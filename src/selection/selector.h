#ifndef ST4ML_SELECTION_SELECTOR_H_
#define ST4ML_SELECTION_SELECTOR_H_

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <type_traits>
#include <utility>
#include <vector>

#include "accel/kernels.h"
#include "common/retry.h"
#include "common/status.h"
#include "engine/cached_dataset.h"
#include "engine/dataset.h"
#include "engine/mp/distributed.h"
#include "index/rtree.h"
#include "index/stix.h"
#include "ingest/wal.h"
#include "partition/partitioner.h"
#include "partition/st_partition_ops.h"
#include "partition/str_partitioner.h"
#include "selection/query_planner.h"
#include "selection/select_query.h"
#include "storage/ingest_manifest.h"
#include "storage/stpq.h"

namespace st4ml {

namespace selection_internal {

/// What the selector caches per STPQ file: the raw records PLUS the
/// per-record envelopes in TWO forms, so a warm hit skips the file read,
/// the parse AND every per-record ComputeSTBox — only the columnar filter
/// and the copy of matching records remain:
///   - `cols`: SoA envelope columns, the warm refinement path — one
///     vectorized FilterBoxes kernel pass per query (DESIGN.md §11);
///   - `tree`: the per-record R-tree (when the admitting selector refines
///     through trees), kept alongside the columns for the cold
///     `use_rtree` path and entries reloaded after eviction.
/// `envelope` is the union of all non-degenerate record envelopes: a warm
/// query that misses it skips the per-record pass entirely. The cache
/// budget accounts the serialized record bytes; columns and tree are index
/// overhead on top, as for the on-disk index itself.
template <typename RecordT>
struct IndexedStpqFile {
  std::vector<RecordT> records;
  accel::EnvelopeColumns cols;  // per-record envelopes, SoA
  STBox envelope;               // union of valid record envelopes
  RTree<STBox> tree;  // over per-record envelopes; empty when !has_tree
  bool has_tree = false;
};

template <typename RecordT>
std::shared_ptr<const IndexedStpqFile<RecordT>> MakeIndexedFile(
    std::vector<RecordT> records, bool build_tree) {
  auto file = std::make_shared<IndexedStpqFile<RecordT>>();
  file->records = std::move(records);
  std::vector<STBox> boxes;
  boxes.reserve(file->records.size());
  file->cols.Reserve(file->records.size());
  for (const RecordT& r : file->records) {
    boxes.push_back(r.ComputeSTBox());
    file->cols.Append(boxes.back());
    // The file envelope skips degenerate boxes (inverted — e.g. an empty
    // trajectory — or NaN coordinates): they can never match a query, and
    // a NaN must not poison the union into rejecting the whole file.
    const Mbr& m = boxes.back().mbr;
    if (m.x_min <= m.x_max && m.y_min <= m.y_max) {
      file->envelope.Extend(boxes.back());
    }
  }
  if (build_tree) {
    file->tree.Build(boxes);
    file->has_tree = true;
  }
  return file;
}

/// Cache reload fn: re-reads the origin file and rebuilds the tree, so an
/// entry that was evicted under memory pressure comes back fully indexed.
template <typename RecordT>
StatusOr<std::shared_ptr<const void>> ReloadIndexedFile(
    const std::string& path, uint64_t* io_bytes) {
  auto loaded = ReadStpqFile<RecordT>(path, io_bytes);
  if (!loaded.ok()) return loaded.status();
  return std::shared_ptr<const void>(
      MakeIndexedFile<RecordT>(std::move(*loaded), /*build_tree=*/true));
}

/// One file's complete Select outcome: the selected records plus every
/// per-file accounting slot LoadAndFilter folds after the join. Returning
/// it by value (instead of writing slot arrays from the task) is what lets
/// the load run in a forked worker — the whole outcome crosses the wire in
/// one result frame and the driver does the folding, same as in-process.
template <typename RecordT>
struct FileLoadResult {
  std::vector<RecordT> records;
  uint64_t read_bytes = 0;
  uint64_t selected_bytes = 0;
  uint64_t pages_read = 0;
  uint64_t postings_hits = 0;
  uint8_t file_read = 0;
  uint8_t plan_run = 0;  // FilePlan actually executed (kLinearScan default)
  uint8_t mmapped = 0;
};

}  // namespace selection_internal

namespace mp {

/// Fixed-width stats first (cheap to reject on a torn payload), the record
/// vector last. plan_run is range-checked by the store, not here: the codec
/// proves the bytes well-formed, the job proves them consistent.
template <typename RecordT>
struct WireCodec<selection_internal::FileLoadResult<RecordT>,
                 std::enable_if_t<kHasWireCodec<RecordT>>> {
  static void Encode(const selection_internal::FileLoadResult<RecordT>& v,
                     std::string* out) {
    AppendRaw(out, v.read_bytes);
    AppendRaw(out, v.selected_bytes);
    AppendRaw(out, v.pages_read);
    AppendRaw(out, v.postings_hits);
    AppendRaw(out, v.file_read);
    AppendRaw(out, v.plan_run);
    AppendRaw(out, v.mmapped);
    WireCodec<std::vector<RecordT>>::Encode(v.records, out);
  }
  static Status Decode(WireCursor* cur,
                       selection_internal::FileLoadResult<RecordT>* out) {
    ST4ML_RETURN_IF_ERROR(ReadRaw(cur, &out->read_bytes));
    ST4ML_RETURN_IF_ERROR(ReadRaw(cur, &out->selected_bytes));
    ST4ML_RETURN_IF_ERROR(ReadRaw(cur, &out->pages_read));
    ST4ML_RETURN_IF_ERROR(ReadRaw(cur, &out->postings_hits));
    ST4ML_RETURN_IF_ERROR(ReadRaw(cur, &out->file_read));
    ST4ML_RETURN_IF_ERROR(ReadRaw(cur, &out->plan_run));
    ST4ML_RETURN_IF_ERROR(ReadRaw(cur, &out->mmapped));
    return WireCodec<std::vector<RecordT>>::Decode(cur, &out->records);
  }
};

}  // namespace mp

struct SelectorOptions {
  /// When set (and partition_after_select is true), the selected records are
  /// ST-partitioned for the downstream stages — select FIRST, partition the
  /// small result, not the other way around (the paper's ordering).
  std::shared_ptr<STPartitioner> partitioner;
  bool partition_after_select = true;
  /// Refine loaded files through a per-file R-tree instead of a linear scan.
  /// Same records either way; this is the in-memory half of the index.
  bool use_rtree = true;
  /// Per-file load retry: transient IOErrors (a flaky filesystem, an
  /// injected fault) are re-attempted with backoff before failing the
  /// Select; deterministic errors (NotFound, Corruption) fail immediately.
  RetryPolicy retry;
  /// Serve repeated loads of the same file from the context's DatasetCache
  /// (when its budget enables it): the pre-filter records are cached per
  /// file together with their built R-tree, so later selections with
  /// overlapping ST ranges query the in-memory index instead of re-reading
  /// and re-indexing the file. Off, or with the cache disabled, every
  /// Select reads its files — the seed behavior.
  bool use_cache = true;
  /// Let the QueryPlanner serve COLD files (no enabled cache) from their
  /// mmap'd `.stix` sidecar when one is present and valid: index pages are
  /// walked, leaf hits refine through the kernel over mapped columns, and
  /// only matching record bytes are read. Results are byte-identical to
  /// the linear scan (the differential property harness pins it); only the
  /// I/O counters differ. Defaults from ST4ML_DISK_INDEX ("off" disables).
  bool use_disk_index = DiskIndexEnabledByEnv();
};

/// I/O accounting, accumulated across Select calls: how many file bytes were
/// read, and how many bytes of records survived the ST predicate. The gap
/// between the two is what metadata pruning (and the mmap index's ranged
/// reads) save.
struct SelectorStats {
  uint64_t bytes_loaded = 0;
  uint64_t bytes_selected = 0;
};

/// The selection stage (paper §3.1): load persisted records matching a
/// SelectQuery — ST box AND optional id set. One-argument Select scans a
/// plain directory end to end; the two-argument form prunes whole files
/// through the on-disk metadata first and only opens survivors. Per file,
/// the QueryPlanner picks the cached-index, mmap-index, or linear-scan
/// plan; every plan returns byte-identical records.
template <typename RecordT>
class Selector {
 public:
  Selector(std::shared_ptr<ExecutionContext> ctx, SelectQuery query,
           SelectorOptions options = {})
      : ctx_(std::move(ctx)),
        query_(std::move(query)),
        options_(std::move(options)) {}

  /// Legacy spelling, predating SelectQuery: a bare ST box.
  [[deprecated("construct with a SelectQuery (SelectQuery::FromBox)")]]
  Selector(std::shared_ptr<ExecutionContext> ctx, const STBox& query,
           SelectorOptions options = {})
      : Selector(std::move(ctx), SelectQuery::FromBox(query),
                 std::move(options)) {}

  /// Full scan of every STPQ file in `dir`.
  StatusOr<Dataset<RecordT>> Select(const std::string& dir) {
    std::vector<std::string> paths = ListStpqFiles(dir);
    if (paths.empty()) {
      return Status::NotFound("no STPQ files under " + dir);
    }
    return LoadAndFilter(paths);
  }

  /// Metadata-pruned selection over a directory written by BuildOnDiskIndex.
  StatusOr<Dataset<RecordT>> Select(const std::string& dir,
                                    const std::string& meta_path) {
    auto meta = ReadStpqMeta(meta_path);
    if (!meta.ok()) return meta.status();
    std::vector<std::string> paths;
    for (const StpqPartMeta& part : *meta) {
      // Empty partitions have inverted envelopes and never match.
      if (part.box.Intersects(query_.box)) {
        paths.push_back(dir + "/" + part.file);
      }
    }
    internal::Counters(*ctx_).Add(Counter::kPartitionsPruned,
                                  meta->size() - paths.size());
    return LoadAndFilter(paths);
  }

  /// Merged selection over a streaming-ingest directory (DESIGN.md §13):
  /// ONE SelectQuery is answered from the compacted partitions the
  /// `ingest.manifest` lists PLUS the staged WAL tail — every acked record
  /// exactly once, mid-stream. Segments are listed BEFORE the manifest is
  /// read, so a segment consumed between the two steps is both skipped (the
  /// newer manifest marks it consumed) and covered (the same manifest lists
  /// its partition). A directory with no manifest and no segments selects
  /// an empty dataset, not NotFound — "nothing ingested yet" is an answer.
  StatusOr<Dataset<RecordT>> SelectIngest(const std::string& dir) {
    std::vector<std::string> segments = ListWalSegments(dir + "/wal");
    IngestManifest manifest;
    auto read = ReadIngestManifest(IngestManifestPath(dir));
    if (read.ok()) {
      manifest = std::move(*read);
    } else if (read.status().code() != Status::Code::kNotFound) {
      return read.status();
    }
    std::vector<std::string> paths;
    for (const StpqPartMeta& part : manifest.parts) {
      if (part.box.Intersects(query_.box)) {
        paths.push_back(dir + "/" + part.file);
      }
    }
    internal::Counters(*ctx_).Add(Counter::kPartitionsPruned,
                                  manifest.parts.size() - paths.size());
    std::vector<std::string> consumed(manifest.consumed);
    std::sort(consumed.begin(), consumed.end());
    for (const std::string& segment : segments) {
      std::string name = std::filesystem::path(segment).filename().string();
      // A consumed segment's records already live in a listed partition;
      // its not-yet-deleted file must not be double counted. An active
      // `.open` segment is consulted under its sealed name too, in case a
      // rename committed between the listing and this check.
      if (name.size() > 5 && name.compare(name.size() - 5, 5, ".open") == 0) {
        name.resize(name.size() - 5);
      }
      if (!std::binary_search(consumed.begin(), consumed.end(), name)) {
        paths.push_back(segment);
      }
    }
    return LoadAndFilter(paths);
  }

  const SelectorStats& stats() const { return stats_; }
  const SelectQuery& query() const { return query_; }

 private:
  /// Loads and filters `paths` IN PARALLEL, one Status-returning task
  /// per file, so a per-file IOError propagates to the caller instead of
  /// failing the process (and a transient one is retried per
  /// options_.retry before it counts as a failure). Partition i of the
  /// result is always file i — the parallel fill is index-addressed, so the
  /// output is byte-identical to the old sequential load.
  ///
  /// Each file executes the plan the QueryPlanner picked:
  ///   - kCachedIndex: probe the DatasetCache; a hit refines the warm
  ///     in-memory index, a miss loads the file once and admits it. The
  ///     cache key folds in size|mtime, so a rewritten file gets a fresh
  ///     entry instead of stale bytes.
  ///   - kMmapIndex: mmap the validated `.stix` sidecar, walk index pages,
  ///     refine leaf hits through the kernel over mapped columns, and
  ///     ranged-read ONLY the matching record bytes. A sidecar that fails
  ///     its validation audit demotes the file to a linear scan.
  ///   - kLinearScan: full parse + in-memory filter (the seed path).
  /// Every plan evaluates the same envelopes against the same query, so
  /// the selected output is byte-identical across plans; only the I/O and
  /// planner counters differ.
  StatusOr<Dataset<RecordT>> LoadAndFilter(
      const std::vector<std::string>& paths) {
    ScopedSpan op(ctx_->tracer(), span_category::kOperation,
                  "selection/load_filter");
    CounterRegistry& counters = internal::Counters(*ctx_);
    Tracer* tracer = ctx_->tracer();
    const uint64_t op_span = op.id();
    // The DatasetCache lives in driver memory: a forked worker's Put is
    // invisible and a Get would serve a stale copy-on-write snapshot, so a
    // distributed executor plans as if the cache were disabled (workers
    // serve files from the sidecar index or a linear scan instead).
    DatasetCache* cache =
        options_.use_cache && !ctx_->distributed() && ctx_->cache().enabled()
            ? &ctx_->cache()
            : nullptr;
    QueryPlanner planner(cache, options_.use_disk_index);
    typename Dataset<RecordT>::Partitions parts(paths.size());
    // Per-file accounting slots, folded into stats_/counters on the driver
    // after the join. Tasks return everything through a FileLoadResult —
    // the slots are filled only by the index-addressed store, which runs
    // in-process whichever executor produced the result.
    using FileLoad = selection_internal::FileLoadResult<RecordT>;
    std::vector<uint64_t> read_bytes(paths.size(), 0);
    std::vector<uint64_t> selected_bytes(paths.size(), 0);
    std::vector<uint8_t> file_read(paths.size(), 0);
    std::vector<uint8_t> plan_run(paths.size(),
                                  static_cast<uint8_t>(FilePlan::kLinearScan));
    std::vector<uint8_t> mmapped(paths.size(), 0);
    std::vector<uint64_t> pages_read(paths.size(), 0);
    std::vector<uint64_t> postings_hits(paths.size(), 0);
    auto load_task = [&](size_t i) -> StatusOr<FileLoad> {
      FileLoad out;
      ScopedSpan io(tracer, span_category::kIo, "stpq_read", op_span);
      const FilePlan plan = planner.Plan(paths[i]);
      if (plan == FilePlan::kWalScan) {
        out.plan_run = static_cast<uint8_t>(FilePlan::kWalScan);
        io.AddArg("plan_wal", 1);
        if constexpr (std::is_same_v<RecordT, EventRecord>) {
          // Tolerant read: a merged Select may race the live appender, and
          // the only incomplete frame a segment can legally carry is the
          // in-flight tail — unacked by definition, so correct to exclude.
          auto result = ReadWalSegment(paths[i], /*strict=*/false);
          if (!result.ok()) return result.status();
          out.read_bytes = result->good_bytes;
          out.file_read = 1;
          out.records =
              FilterRecords(std::move(result->records), &out.selected_bytes);
          return out;
        } else {
          return Status::InvalidArgument("WAL staging holds event records: " +
                                         paths[i]);
        }
      }
      if (plan == FilePlan::kCachedIndex) {
        // Only planned when `cache` is non-null, which implies a
        // non-distributed executor: this branch always runs in-process.
        out.plan_run = static_cast<uint8_t>(FilePlan::kCachedIndex);
        io.AddArg("plan_cached", 1);
        uint64_t key = cache->InternDatasetId(FileCacheName(paths[i]));
        auto got = cache->Get(key, 0);
        if (!got.ok()) return got.status();
        if (*got != nullptr) {
          // Hit: query the cached pre-built index and copy only the
          // matching records; no file I/O, no parse, no tree build.
          auto file = std::static_pointer_cast<
              const selection_internal::IndexedStpqFile<RecordT>>(*got);
          out.records = FilterIndexed(*file, &out.selected_bytes);
          return out;
        }
        uint64_t attempts = 0;
        auto records = options_.retry.Run(
            [&]() -> StatusOr<std::vector<RecordT>> {
              uint64_t bytes = 0;
              auto loaded = ReadStpqFile<RecordT>(paths[i], &bytes);
              if (loaded.ok()) out.read_bytes = bytes;
              return loaded;
            },
            &counters, &attempts);
        io.AddArg("bytes", out.read_bytes);
        if (attempts > 1) io.AddArg("attempts", attempts);
        if (!records.ok()) return records.status();
        out.file_read = 1;
        // Miss: admit the records (indexed, when this selector refines
        // through the tree), with the source file as the reload path —
        // eviction drops memory without writing anything.
        auto file = selection_internal::MakeIndexedFile<RecordT>(
            std::move(records).value(), options_.use_rtree);
        cache->PutWithOrigin(key, 0, file, out.read_bytes, paths[i],
                             &selection_internal::ReloadIndexedFile<RecordT>);
        out.records = FilterIndexed(*file, &out.selected_bytes);
        return out;
      }
      if (plan == FilePlan::kMmapIndex) {
        auto served = ServeViaStix(paths[i], &out.records, &out.read_bytes,
                                   &out.selected_bytes, &out.file_read,
                                   &out.pages_read, &out.postings_hits,
                                   &out.mmapped, counters);
        if (!served.ok()) return served.status();  // hard I/O or corruption
        if (*served) {
          out.plan_run = static_cast<uint8_t>(FilePlan::kMmapIndex);
          io.AddArg("plan_mmap", 1);
          io.AddArg("bytes", out.read_bytes);
          return out;
        }
        // Invalid / stale sidecar: fall through to the linear scan.
      }
      out.plan_run = static_cast<uint8_t>(FilePlan::kLinearScan);
      io.AddArg("plan_scan", 1);
      uint64_t attempts = 0;
      auto records = options_.retry.Run(
          [&]() -> StatusOr<std::vector<RecordT>> {
            uint64_t bytes = 0;
            auto loaded = ReadStpqFile<RecordT>(paths[i], &bytes);
            if (loaded.ok()) out.read_bytes = bytes;
            return loaded;
          },
          &counters, &attempts);
      io.AddArg("bytes", out.read_bytes);
      if (attempts > 1) io.AddArg("attempts", attempts);
      if (!records.ok()) return records.status();
      out.file_read = 1;
      out.records =
          FilterRecords(std::move(records).value(), &out.selected_bytes);
      return out;
    };
    auto load_store = [&](size_t i, FileLoad&& result) -> Status {
      if (result.plan_run >= kNumFilePlans) {
        return Status::Corruption("selection plan id out of range");
      }
      read_bytes[i] = result.read_bytes;
      selected_bytes[i] = result.selected_bytes;
      file_read[i] = result.file_read;
      plan_run[i] = result.plan_run;
      mmapped[i] = result.mmapped;
      pages_read[i] = result.pages_read;
      postings_hits[i] = result.postings_hits;
      parts[i] = std::move(result.records);
      return Status::Ok();
    };
    ST4ML_RETURN_IF_ERROR(mp::RunDistributed<FileLoad>(
        *ctx_, "selection/load_filter", paths.size(), load_task, load_store));
    uint64_t records_out = 0;
    uint64_t loaded_bytes = 0;
    uint64_t kept_bytes = 0;
    uint64_t files_read = 0;
    uint64_t plan_counts[kNumFilePlans] = {};
    uint64_t files_mmapped = 0;
    uint64_t pages_total = 0;
    uint64_t postings_total = 0;
    for (size_t i = 0; i < paths.size(); ++i) {
      records_out += parts[i].size();
      loaded_bytes += read_bytes[i];
      kept_bytes += selected_bytes[i];
      files_read += file_read[i];
      plan_counts[plan_run[i]] += 1;
      files_mmapped += mmapped[i];
      pages_total += pages_read[i];
      postings_total += postings_hits[i];
    }
    stats_.bytes_loaded += loaded_bytes;
    stats_.bytes_selected += kept_bytes;
    counters.Add(Counter::kStpqBytesRead, loaded_bytes);
    counters.Add(Counter::kStpqFilesRead, files_read);
    // Scanned counts files CONSULTED (pruned + scanned == total), whether
    // their bytes came from disk, the cache, or the mmap'd index.
    counters.Add(Counter::kPartitionsScanned, paths.size());
    counters.Add(Counter::kSelectionRecordsOut, records_out);
    counters.Add(Counter::kSelectionBytesSelected, kept_bytes);
    QueryPlanner::CountExecuted(
        counters, plan_counts[static_cast<size_t>(FilePlan::kMmapIndex)],
        plan_counts[static_cast<size_t>(FilePlan::kCachedIndex)],
        plan_counts[static_cast<size_t>(FilePlan::kLinearScan)],
        plan_counts[static_cast<size_t>(FilePlan::kWalScan)]);
    if (files_mmapped > 0) {
      counters.Add(Counter::kIndexFilesMmapped, files_mmapped);
    }
    if (pages_total > 0) counters.Add(Counter::kIndexPagesRead, pages_total);
    if (postings_total > 0) {
      counters.Add(Counter::kPostingsHits, postings_total);
    }
    op.AddArg("files", paths.size());
    op.AddArg("records_out", records_out);
    auto selected = Dataset<RecordT>::FromPartitions(ctx_, std::move(parts));
    if (options_.partitioner != nullptr && options_.partition_after_select) {
      auto partitioned = TrySTPartition(
          selected, options_.partitioner.get(),
          [](const RecordT& r) { return r.ComputeSTBox(); },
          [](const RecordT& r) { return static_cast<uint64_t>(r.id); });
      if (!partitioned.ok()) return partitioned.status();
      selected = std::move(partitioned).value();
    }
    return selected;
  }

  /// The kMmapIndex plan for one file. Returns false (not an error) when
  /// the sidecar is missing, stale, or fails its validation audit — the
  /// caller demotes the file to a linear scan, which is also what the
  /// corruption-hardening contract promises (DESIGN.md §12). Returns a
  /// non-OK Status only for hard failures AFTER a valid index: a ranged
  /// read that misses its promised byte run (Corruption) or an I/O error
  /// the retry policy could not absorb.
  StatusOr<bool> ServeViaStix(const std::string& path,
                              std::vector<RecordT>* out, uint64_t* read_bytes,
                              uint64_t* selected_bytes, uint8_t* file_read,
                              uint64_t* pages, uint64_t* postings,
                              uint8_t* mmapped, CounterRegistry& counters) {
    auto opened = StixIndex::Open(StixPathFor(path), path);
    if (!opened.ok()) return false;
    *mmapped = 1;
    StixIndex index = std::move(*opened);
    StixQueryStats qstats;
    std::vector<uint32_t> hits;
    // Query-side emptiness stays a host check (kernel contract): an
    // inverted query box matches nothing and touches no pages.
    if (!query_.box.mbr.IsEmpty()) {
      const auto q = accel::BoxFilterQuery::FromBox(query_.box);
      if (query_.has_ids) {
        index.LookupIds(query_.ids, q, /*apply_box=*/true, &hits, &qstats);
      } else {
        index.QueryBox(q, &hits, &qstats);
      }
    }
    *pages = qstats.pages_read;
    *postings = qstats.postings_hits;
    out->clear();
    if (hits.empty()) return true;  // no match: the .stpq is never opened
    constexpr uint8_t kind = std::is_same_v<RecordT, EventRecord>
                                 ? kStpqKindEvent
                                 : kStpqKindTraj;
    uint64_t attempts = 0;
    Status read = options_.retry.Run(
        [&]() -> Status {
          out->clear();
          auto reader = StpqReader::Open(path, kind);
          if (!reader.ok()) return reader.status();
          if (reader->record_count() != index.record_count()) {
            return Status::Corruption(
                "stix sidecar record count disagrees with " + path);
          }
          // Coalesce consecutive hit indices into maximal byte runs: one
          // seek-and-read per run, records emerging in ascending record
          // order — byte-identical to the linear filter.
          size_t a = 0;
          while (a < hits.size()) {
            size_t b = a + 1;
            while (b < hits.size() && hits[b] == hits[b - 1] + 1) ++b;
            ST4ML_RETURN_IF_ERROR(reader->template ReadRecordsAt<RecordT>(
                index.RecordOffset(hits[a]),
                index.RecordOffset(hits[b - 1] + 1),
                b - a, out));
            a = b;
          }
          *read_bytes = reader->bytes_read();
          return Status::Ok();
        },
        &counters, &attempts);
    if (!read.ok()) return read;
    *file_read = 1;
    for (const RecordT& r : *out) *selected_bytes += StpqRecordBytes(r);
    return true;
  }

  /// Cache key for one STPQ file: path plus size and mtime, so a rewritten
  /// file (re-ingest into the same directory) gets a fresh entry instead
  /// of serving stale records. Costs one stat per file per Select — noise
  /// next to the read it saves.
  static std::string FileCacheName(const std::string& path) {
    std::error_code ec;
    uint64_t size = FileSizeBytes(path);
    auto mtime = std::filesystem::last_write_time(path, ec);
    int64_t stamp =
        ec ? 0 : static_cast<int64_t>(mtime.time_since_epoch().count());
    return "stpq:" + path + "|" + std::to_string(size) + "|" +
           std::to_string(stamp);
  }

  /// Drops hits whose record id is outside the query's id set. A no-op
  /// without an id predicate; hit order is preserved.
  void FilterHitsById(const std::vector<RecordT>& records,
                      std::vector<size_t>* hits) {
    if (!query_.has_ids) return;
    size_t kept = 0;
    for (size_t i : *hits) {
      if (query_.MatchesId(records[i].id)) (*hits)[kept++] = i;
    }
    hits->resize(kept);
  }

  /// Indices of the records matching the query, in record order (the tree
  /// reports leaf order; sorting restores it so every refine path returns
  /// identical datasets). The linear path computes each record's envelope
  /// once into columns and runs the vectorized FilterBoxes kernel over
  /// them — the same closed-interval predicate STBox::Intersects applies,
  /// so tree and linear refinement stay byte-identical. The id predicate
  /// composes afterwards (AND), identically on every path.
  std::vector<size_t> MatchIndices(const std::vector<RecordT>& records) {
    std::vector<size_t> hits;
    if (options_.use_rtree) {
      // Per-record tree refinement — not a batch kernel pass, so these
      // records count as fallback work in the backend registry.
      accel::BackendRegistry::Instance().CountFallback(records.size());
      std::vector<STBox> boxes;
      boxes.reserve(records.size());
      for (const RecordT& r : records) boxes.push_back(r.ComputeSTBox());
      RTree<STBox> tree;
      tree.Build(boxes);
      hits = tree.Query(query_.box);
      std::sort(hits.begin(), hits.end());
    } else {
      // The kernel predicate folds in record-side degeneracy but leaves
      // the query-side emptiness test to the host — an inverted query
      // matches nothing, exactly as Intersects would report.
      if (query_.box.mbr.IsEmpty() || records.empty()) return hits;
      accel::EnvelopeColumns cols;
      cols.Reserve(records.size());
      for (const RecordT& r : records) cols.Append(r.ComputeSTBox());
      hits = KernelMatch(cols);
    }
    FilterHitsById(records, &hits);
    return hits;
  }

  /// One vectorized pass of the active backend's FilterBoxes kernel over
  /// envelope columns; returns matching indices in record order.
  std::vector<size_t> KernelMatch(const accel::EnvelopeColumns& cols) {
    const accel::EnvelopeView view = cols.View();
    std::vector<uint8_t> bitmap(view.size);
    accel::Active().FilterBoxes(accel::BoxFilterQuery::FromBox(query_.box),
                                view, bitmap.data());
    accel::BackendRegistry::Instance().CountBatch(view.size);
    std::vector<size_t> hits;
    for (size_t i = 0; i < view.size; ++i) {
      if (bitmap[i] != 0) hits.push_back(i);
    }
    return hits;
  }

  /// Filter over a cached indexed file (borrowed, shared with the cache):
  /// the warm columnar fast path. A query outside the file's envelope
  /// union returns without touching a record; otherwise one FilterBoxes
  /// kernel pass over the cached SoA columns produces the hit bitmap and
  /// only MATCHING records are copied out — a warm hit never pays for the
  /// records the query rejects, and never recomputes an envelope. The
  /// columns hold exactly the envelopes the cached tree was built over and
  /// the kernel applies exactly the STBox::Intersects predicate, so the
  /// output is byte-identical to the tree and uncached paths (the
  /// differential property harness pins this across backends). Entries
  /// without columns fall back to the tree / per-record refinement.
  std::vector<RecordT> FilterIndexed(
      const selection_internal::IndexedStpqFile<RecordT>& file,
      uint64_t* bytes_selected) {
    if (!query_.box.Intersects(file.envelope)) return {};
    std::vector<size_t> hits;
    if (file.cols.size() == file.records.size() && !file.cols.empty()) {
      hits = KernelMatch(file.cols);
      FilterHitsById(file.records, &hits);
    } else if (options_.use_rtree && file.has_tree) {
      accel::BackendRegistry::Instance().CountFallback(file.records.size());
      hits = file.tree.Query(query_.box);
      std::sort(hits.begin(), hits.end());
      FilterHitsById(file.records, &hits);
    } else {
      // MatchIndices counts its records as batch or fallback itself, and
      // applies the id predicate itself.
      hits = MatchIndices(file.records);
    }
    std::vector<RecordT> kept;
    kept.reserve(hits.size());
    for (size_t i : hits) kept.push_back(file.records[i]);
    for (const RecordT& r : kept) *bytes_selected += StpqRecordBytes(r);
    return kept;
  }

  /// Filter over owned records (the uncached load path): matches are moved.
  std::vector<RecordT> FilterRecords(std::vector<RecordT>&& records,
                                     uint64_t* bytes_selected) {
    std::vector<size_t> hits = MatchIndices(records);
    std::vector<RecordT> kept;
    kept.reserve(hits.size());
    for (size_t i : hits) kept.push_back(std::move(records[i]));
    for (const RecordT& r : kept) *bytes_selected += StpqRecordBytes(r);
    return kept;
  }

  std::shared_ptr<ExecutionContext> ctx_;
  SelectQuery query_;
  SelectorOptions options_;
  SelectorStats stats_;
};

}  // namespace st4ml

#endif  // ST4ML_SELECTION_SELECTOR_H_
