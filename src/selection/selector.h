#ifndef ST4ML_SELECTION_SELECTOR_H_
#define ST4ML_SELECTION_SELECTOR_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/dataset.h"
#include "index/rtree.h"
#include "partition/partitioner.h"
#include "partition/st_partition_ops.h"
#include "partition/str_partitioner.h"
#include "storage/stpq.h"

namespace st4ml {

struct SelectorOptions {
  /// When set (and partition_after_select is true), the selected records are
  /// ST-partitioned for the downstream stages — select FIRST, partition the
  /// small result, not the other way around (the paper's ordering).
  std::shared_ptr<STPartitioner> partitioner;
  bool partition_after_select = true;
  /// Refine loaded files through a per-file R-tree instead of a linear scan.
  /// Same records either way; this is the in-memory half of the index.
  bool use_rtree = true;
};

/// I/O accounting, accumulated across Select calls: how many file bytes were
/// read, and how many bytes of records survived the ST predicate. The gap
/// between the two is what metadata pruning saves.
struct SelectorStats {
  uint64_t bytes_loaded = 0;
  uint64_t bytes_selected = 0;
};

/// The selection stage (paper §3.1): load persisted records intersecting an
/// ST query. One-argument Select scans a plain directory end to end; the
/// two-argument form prunes whole files through the on-disk metadata first
/// and only opens survivors.
template <typename RecordT>
class Selector {
 public:
  Selector(std::shared_ptr<ExecutionContext> ctx, const STBox& query,
           SelectorOptions options = {})
      : ctx_(std::move(ctx)), query_(query), options_(std::move(options)) {}

  /// Full scan of every STPQ file in `dir`.
  StatusOr<Dataset<RecordT>> Select(const std::string& dir) {
    std::vector<std::string> paths = ListStpqFiles(dir);
    if (paths.empty()) {
      return Status::NotFound("no STPQ files under " + dir);
    }
    return LoadAndFilter(paths);
  }

  /// Metadata-pruned selection over a directory written by BuildOnDiskIndex.
  StatusOr<Dataset<RecordT>> Select(const std::string& dir,
                                    const std::string& meta_path) {
    auto meta = ReadStpqMeta(meta_path);
    if (!meta.ok()) return meta.status();
    std::vector<std::string> paths;
    for (const StpqPartMeta& part : *meta) {
      // Empty partitions have inverted envelopes and never match.
      if (part.box.Intersects(query_)) {
        paths.push_back(dir + "/" + part.file);
      }
    }
    internal::Counters(*ctx_).Add(Counter::kPartitionsPruned,
                                  meta->size() - paths.size());
    return LoadAndFilter(paths);
  }

  const SelectorStats& stats() const { return stats_; }

 private:
  StatusOr<Dataset<RecordT>> LoadAndFilter(
      const std::vector<std::string>& paths) {
    ScopedSpan op(ctx_->tracer(), span_category::kOperation,
                  "selection/load_filter");
    CounterRegistry& counters = internal::Counters(*ctx_);
    typename Dataset<RecordT>::Partitions parts;
    parts.reserve(paths.size());
    uint64_t records_out = 0;
    const uint64_t selected_before = stats_.bytes_selected;
    for (const std::string& path : paths) {
      uint64_t read_bytes = 0;
      ScopedSpan io(ctx_->tracer(), span_category::kIo, "stpq_read", op.id());
      auto records = ReadStpqFile<RecordT>(path, &read_bytes);
      stats_.bytes_loaded += read_bytes;
      counters.Add(Counter::kStpqBytesRead, read_bytes);
      counters.Add(Counter::kStpqFilesRead, 1);
      io.AddArg("bytes", read_bytes);
      if (!records.ok()) return records.status();
      parts.push_back(FilterRecords(std::move(records).value()));
      records_out += parts.back().size();
    }
    counters.Add(Counter::kPartitionsScanned, paths.size());
    counters.Add(Counter::kSelectionRecordsOut, records_out);
    counters.Add(Counter::kSelectionBytesSelected,
                 stats_.bytes_selected - selected_before);
    op.AddArg("files", paths.size());
    op.AddArg("records_out", records_out);
    auto selected = Dataset<RecordT>::FromPartitions(ctx_, std::move(parts));
    if (options_.partitioner != nullptr && options_.partition_after_select) {
      selected = STPartition(
          selected, options_.partitioner.get(),
          [](const RecordT& r) { return r.ComputeSTBox(); },
          [](const RecordT& r) { return static_cast<uint64_t>(r.id); });
    }
    return selected;
  }

  std::vector<RecordT> FilterRecords(std::vector<RecordT> records) {
    std::vector<RecordT> kept;
    if (options_.use_rtree) {
      std::vector<STBox> boxes;
      boxes.reserve(records.size());
      for (const RecordT& r : records) boxes.push_back(r.ComputeSTBox());
      RTree<STBox> tree;
      tree.Build(boxes);
      std::vector<size_t> hits = tree.Query(query_);
      // The tree reports leaf order; restore record order so both refine
      // paths return identical datasets.
      std::sort(hits.begin(), hits.end());
      kept.reserve(hits.size());
      for (size_t i : hits) kept.push_back(std::move(records[i]));
    } else {
      for (RecordT& r : records) {
        if (r.ComputeSTBox().Intersects(query_)) kept.push_back(std::move(r));
      }
    }
    for (const RecordT& r : kept) stats_.bytes_selected += StpqRecordBytes(r);
    return kept;
  }

  std::shared_ptr<ExecutionContext> ctx_;
  STBox query_;
  SelectorOptions options_;
  SelectorStats stats_;
};

}  // namespace st4ml

#endif  // ST4ML_SELECTION_SELECTOR_H_
