#ifndef ST4ML_SELECTION_ON_DISK_INDEX_H_
#define ST4ML_SELECTION_ON_DISK_INDEX_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "engine/dataset.h"
#include "index/stix.h"
#include "partition/partitioner.h"
#include "storage/stpq.h"

namespace st4ml {

namespace selection_internal {

inline std::string PartFileName(size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "part-%05zu.stpq", index);
  return name;
}

/// One partition file write, re-attempted per `retry`: a transient IOError
/// (disk pressure, injected fault) is retried with backoff; the truncating
/// writer makes a re-attempt idempotent. Retries are charged to
/// kTasksRetried so they show in the metrics snapshot.
template <typename RecordT>
Status WritePartFileWithRetry(const std::string& path,
                              const std::vector<RecordT>& records,
                              const RetryPolicy& retry,
                              CounterRegistry& counters) {
  uint64_t written = 0;
  Status status = retry.Run(
      [&]() -> Status {
        uint64_t bytes = 0;
        Status write = WriteStpqFile(path, records, &bytes);
        if (write.ok()) written = bytes;
        return write;
      },
      &counters);
  if (!status.ok()) return status;
  counters.Add(Counter::kStpqBytesWritten, written);
  counters.Add(Counter::kStpqFilesWritten, 1);
  return Status::Ok();
}

/// The STR bulk-load step of ingestion: serializes the partition's packed
/// R-tree + id postings sidecar next to its just-written `.stpq`, retried
/// like the part file itself (the truncating writer is idempotent). Runs
/// AFTER the part file is durable so the sidecar's size|mtime key matches
/// what a later Open stats.
template <typename RecordT>
Status WriteStixWithRetry(const std::string& stpq_path,
                          const std::vector<RecordT>& records,
                          const RetryPolicy& retry,
                          CounterRegistry& counters) {
  // Sidecar bytes stay OUT of kStpqBytesWritten: that counter means STPQ
  // record bytes, and its read-side twin likewise never counts index pages
  // (those are kIndexPagesRead currency).
  return retry.Run(
      [&]() -> Status { return BuildStixForStpq(stpq_path, records); },
      &counters);
}

}  // namespace selection_internal

/// Writes a dataset to `dir` as one STPQ file per engine partition, with no
/// ST layout and no metadata — the "plain storage" a full-scan selection has
/// to read end to end.
template <typename RecordT>
Status PersistDataset(const Dataset<RecordT>& data, const std::string& dir,
                      const RetryPolicy& retry = {}) {
  CounterRegistry& counters = internal::Counters(*data.context());
  for (size_t p = 0; p < data.num_partitions(); ++p) {
    ST4ML_RETURN_IF_ERROR(selection_internal::WritePartFileWithRetry(
        dir + "/" + selection_internal::PartFileName(p), data.partition(p),
        retry, counters));
  }
  return Status::Ok();
}

/// ST4ML's ingestion (paper §3.1 + ROADMAP #2): train `partitioner` on
/// every record envelope, place each record in its ONE primary partition,
/// write one STPQ file per partition, bulk-load each partition's `.stix`
/// sidecar index (STR-packed R-tree + id postings — the persistent
/// external-memory index cold selection mmaps), and record each file's
/// tight ST envelope in a metadata sidecar. Selection later prunes whole
/// files against that metadata before touching their bytes, and serves
/// survivors through the planner's best per-file plan. Pass
/// `build_sidecar_index = false` to get the PR-7-era layout (no `.stix`).
template <typename RecordT>
Status BuildOnDiskIndex(const Dataset<RecordT>& data,
                        STPartitioner* partitioner, const std::string& dir,
                        const std::string& meta_path,
                        const RetryPolicy& retry = {},
                        bool build_sidecar_index = true) {
  if (partitioner == nullptr) {
    return Status::InvalidArgument("BuildOnDiskIndex requires a partitioner");
  }
  std::vector<RecordT> records = data.Collect();
  std::vector<STBox> boxes;
  boxes.reserve(records.size());
  for (const RecordT& r : records) boxes.push_back(r.ComputeSTBox());
  partitioner->Train(boxes);

  int n = partitioner->num_partitions();
  if (n <= 0) return Status::Internal("partitioner produced no partitions");
  std::vector<std::vector<RecordT>> parts(static_cast<size_t>(n));
  std::vector<STBox> bounds(static_cast<size_t>(n));
  for (size_t i = 0; i < records.size(); ++i) {
    // Single assignment: on disk every record lives exactly once, or
    // selection would return duplicates.
    int p = partitioner->Assign(boxes[i], /*duplicate=*/false,
                                static_cast<uint64_t>(records[i].id))[0];
    if (p < 0 || p >= n) {
      return Status::Internal("partition assignment out of range");
    }
    parts[static_cast<size_t>(p)].push_back(std::move(records[i]));
    bounds[static_cast<size_t>(p)].Extend(boxes[i]);
  }

  CounterRegistry& counters = internal::Counters(*data.context());
  std::vector<StpqPartMeta> meta;
  meta.reserve(parts.size());
  for (size_t p = 0; p < parts.size(); ++p) {
    std::string name = selection_internal::PartFileName(p);
    ST4ML_RETURN_IF_ERROR(selection_internal::WritePartFileWithRetry(
        dir + "/" + name, parts[p], retry, counters));
    if (build_sidecar_index) {
      ST4ML_RETURN_IF_ERROR(selection_internal::WriteStixWithRetry(
          dir + "/" + name, parts[p], retry, counters));
    }
    StpqPartMeta entry;
    entry.file = std::move(name);
    entry.box = bounds[p];
    entry.count = parts[p].size();
    meta.push_back(std::move(entry));
  }
  return retry.Run([&] { return WriteStpqMeta(meta_path, meta); }, &counters);
}

}  // namespace st4ml

#endif  // ST4ML_SELECTION_ON_DISK_INDEX_H_
