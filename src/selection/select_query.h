#ifndef ST4ML_SELECTION_SELECT_QUERY_H_
#define ST4ML_SELECTION_SELECT_QUERY_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "index/stbox.h"

namespace st4ml {

/// The ONE spelling of a selection predicate. Before this type existed the
/// same predicate was threaded positionally through three slightly different
/// shapes — `Selector`'s STBox constructor argument, the CLI tools'
/// --mbr/--time flag pair, and the server's `select` JSON verb — and none of
/// them could ask for a record by id at all. Every entry point now constructs
/// a SelectQuery and every consumer (Selector, QueryPlanner, the st4mld
/// verbs) reads the same struct.
///
/// Semantics:
///  - `box` is the closed-interval ST predicate, exactly STBox::Intersects
///    against each record's ComputeSTBox() envelope. EverythingBox() (the
///    FromIds default) matches every record with a valid envelope.
///  - `ids`, when `has_ids` is set, restricts matches to records whose id is
///    in the set (sorted + deduplicated by SetIds, so MatchesId is a binary
///    search). Id and box predicates compose with AND.
///  - `limit` / `count_only` are RESPONSE shaping, not selection predicates:
///    the Selector returns the full deterministic match set (keeping the
///    parallel per-file fill byte-identical across plans and backends) and
///    the entry point truncates or counts when rendering. Negative limit
///    means unlimited.
struct SelectQuery {
  STBox box;
  std::vector<int64_t> ids;  // sorted, deduplicated; consulted iff has_ids
  bool has_ids = false;
  int64_t limit = -1;  // < 0: unlimited
  bool count_only = false;

  /// A box every valid record envelope intersects. The time extent stays at
  /// a quarter of the int64 range so code that subtracts interval endpoints
  /// (Duration::Seconds) cannot overflow on a query box.
  static STBox EverythingBox() {
    const double dmax = std::numeric_limits<double>::max();
    const int64_t tmax = std::numeric_limits<int64_t>::max() / 4;
    return STBox(Mbr(-dmax, -dmax, dmax, dmax), Duration(-tmax, tmax));
  }

  static SelectQuery FromBox(const STBox& box) {
    SelectQuery query;
    query.box = box;
    return query;
  }

  /// Id-only lookup: the box defaults to EverythingBox, so the ST predicate
  /// never rejects; callers may still tighten `box` afterwards.
  static SelectQuery FromIds(std::vector<int64_t> ids) {
    SelectQuery query;
    query.box = EverythingBox();
    query.SetIds(std::move(ids));
    return query;
  }

  /// Installs the id set (sorted + deduplicated). An EMPTY set with has_ids
  /// set matches nothing — distinct from no id predicate at all.
  void SetIds(std::vector<int64_t> id_set) {
    std::sort(id_set.begin(), id_set.end());
    id_set.erase(std::unique(id_set.begin(), id_set.end()), id_set.end());
    ids = std::move(id_set);
    has_ids = true;
  }

  bool MatchesId(int64_t id) const {
    if (!has_ids) return true;
    return std::binary_search(ids.begin(), ids.end(), id);
  }
};

}  // namespace st4ml

#endif  // ST4ML_SELECTION_SELECT_QUERY_H_
