#ifndef ST4ML_PARTITION_STR_PARTITIONER_H_
#define ST4ML_PARTITION_STR_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "geometry/mbr.h"
#include "partition/partitioner.h"

namespace st4ml {

namespace partition_internal {

/// A 2-d Sort-Tile-Recursive tiling: gx equal-count x slabs, each cut into
/// gy equal-count y tiles. Outer boundaries extend to infinity so the tiling
/// covers all of space. Reused by every STR-family partitioner.
struct StrTiling {
  int gx = 1;
  int gy = 1;
  std::vector<double> x_splits;               // gx - 1 ascending cuts
  std::vector<std::vector<double>> y_splits;  // per slab, gy - 1 ascending

  int num_tiles() const { return gx * gy; }

  /// Tile of a center point (the primary assignment).
  int TileOf(double x, double y) const;

  /// Appends `base + tile` for every tile whose (closed) bounds intersect
  /// `mbr`. Always a superset of the center's tile.
  void IntersectingTiles(const Mbr& mbr, int base, std::vector<int>* out) const;
};

/// Builds the tiling from envelope centers by equal-count quantiles.
StrTiling BuildStrTiling(const std::vector<const STBox*>& boxes, int gx,
                         int gy);

}  // namespace partition_internal

/// Pure-spatial STR partitioner (the paper's STR baseline): one global 2-d
/// tiling of roughly `num_partitions` tiles, time ignored.
class STRPartitioner : public STPartitioner {
 public:
  explicit STRPartitioner(int num_partitions);

  void Train(const std::vector<STBox>& boxes) override;
  int num_partitions() const override { return tiling_.num_tiles(); }
  std::vector<int> Assign(const STBox& box, bool duplicate,
                          uint64_t record_id) const override;

 private:
  partition_internal::StrTiling tiling_;
};

/// The paper's T-STR partitioner: equal-count TEMPORAL slices first, then an
/// independent 2-d STR tiling inside each slice. Time gets priority because
/// ML feature queries are long in time and narrow in space; slicing time
/// first keeps each partition's time span tight, which is what makes the
/// on-disk metadata pruning in the selection stage effective.
class TSTRPartitioner : public STPartitioner {
 public:
  /// `temporal_slices` time slices, roughly `spatial_tiles` tiles per slice.
  TSTRPartitioner(int temporal_slices, int spatial_tiles);

  void Train(const std::vector<STBox>& boxes) override;
  int num_partitions() const override {
    return static_cast<int>(tilings_.size()) * tiles_per_slice_;
  }
  std::vector<int> Assign(const STBox& box, bool duplicate,
                          uint64_t record_id) const override;

 private:
  int temporal_slices_;
  int gsx_;
  int gsy_;
  int tiles_per_slice_;
  std::vector<int64_t> t_splits_;  // temporal_slices - 1 ascending cuts
  std::vector<partition_internal::StrTiling> tilings_;  // one per slice
};

}  // namespace st4ml

#endif  // ST4ML_PARTITION_STR_PARTITIONER_H_
