#include "partition/baseline_partitioners.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace st4ml {

KDBPartitioner::KDBPartitioner(int num_partitions)
    : num_partitions_(num_partitions) {
  ST4ML_CHECK(num_partitions > 0) << "num_partitions must be positive";
}

int KDBPartitioner::BuildNode(std::vector<std::pair<double, double>>* centers,
                              size_t lo, size_t hi, int target, bool x_axis) {
  int index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  if (target <= 1 || hi - lo <= 1) {
    nodes_[index].leaf_id = next_leaf_++;
    return index;
  }
  int left_target = target / 2;
  int right_target = target - left_target;
  size_t mid = lo + (hi - lo) * static_cast<size_t>(left_target) /
                   static_cast<size_t>(target);
  if (mid == lo) mid = lo + 1;
  auto by_axis = [x_axis](const std::pair<double, double>& a,
                          const std::pair<double, double>& b) {
    return x_axis ? a.first < b.first : a.second < b.second;
  };
  std::nth_element(centers->begin() + lo, centers->begin() + mid,
                   centers->begin() + hi, by_axis);
  nodes_[index].x_axis = x_axis;
  nodes_[index].split =
      x_axis ? (*centers)[mid].first : (*centers)[mid].second;
  int left = BuildNode(centers, lo, mid, left_target, !x_axis);
  int right = BuildNode(centers, mid, hi, right_target, !x_axis);
  nodes_[index].left = left;
  nodes_[index].right = right;
  return index;
}

void KDBPartitioner::Train(const std::vector<STBox>& boxes) {
  std::vector<std::pair<double, double>> centers;
  centers.reserve(boxes.size());
  for (const STBox& b : boxes) {
    centers.emplace_back((b.mbr.x_min + b.mbr.x_max) / 2.0,
                         (b.mbr.y_min + b.mbr.y_max) / 2.0);
  }
  nodes_.clear();
  next_leaf_ = 0;
  root_ = BuildNode(&centers, 0, centers.size(), num_partitions_, true);
}

void KDBPartitioner::CollectIntersecting(int node, const Mbr& query,
                                         std::vector<int>* out) const {
  const Node& n = nodes_[node];
  if (n.leaf_id >= 0) {
    out->push_back(n.leaf_id);
    return;
  }
  double lo = n.x_axis ? query.x_min : query.y_min;
  double hi = n.x_axis ? query.x_max : query.y_max;
  if (lo <= n.split) CollectIntersecting(n.left, query, out);
  if (hi >= n.split) CollectIntersecting(n.right, query, out);
}

std::vector<int> KDBPartitioner::Assign(const STBox& box, bool duplicate,
                                        uint64_t record_id) const {
  (void)record_id;
  if (root_ < 0) return {0};
  if (!duplicate) {
    double cx = (box.mbr.x_min + box.mbr.x_max) / 2.0;
    double cy = (box.mbr.y_min + box.mbr.y_max) / 2.0;
    int node = root_;
    while (nodes_[node].leaf_id < 0) {
      const Node& n = nodes_[node];
      double v = n.x_axis ? cx : cy;
      node = v >= n.split ? n.right : n.left;
    }
    return {nodes_[node].leaf_id};
  }
  std::vector<int> out;
  CollectIntersecting(root_, box.mbr, &out);
  std::sort(out.begin(), out.end());
  return out;
}

GridPartitioner::GridPartitioner(int num_partitions) {
  ST4ML_CHECK(num_partitions > 0) << "num_partitions must be positive";
  g_ = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(num_partitions))));
  if (g_ < 1) g_ = 1;
}

void GridPartitioner::Train(const std::vector<STBox>& boxes) {
  extent_ = Mbr();
  for (const STBox& b : boxes) {
    extent_.Extend(Point((b.mbr.x_min + b.mbr.x_max) / 2.0,
                         (b.mbr.y_min + b.mbr.y_max) / 2.0));
  }
  if (extent_.IsEmpty()) extent_ = Mbr(0.0, 0.0, 1.0, 1.0);
}

int GridPartitioner::CellOf(double x, double y) const {
  double dx = extent_.Width() / g_;
  double dy = extent_.Height() / g_;
  int ix = dx > 0.0
               ? std::clamp(static_cast<int>((x - extent_.x_min) / dx), 0,
                            g_ - 1)
               : 0;
  int iy = dy > 0.0
               ? std::clamp(static_cast<int>((y - extent_.y_min) / dy), 0,
                            g_ - 1)
               : 0;
  return iy * g_ + ix;
}

std::vector<int> GridPartitioner::Assign(const STBox& box, bool duplicate,
                                         uint64_t record_id) const {
  (void)record_id;
  double cx = (box.mbr.x_min + box.mbr.x_max) / 2.0;
  double cy = (box.mbr.y_min + box.mbr.y_max) / 2.0;
  if (!duplicate) return {CellOf(cx, cy)};
  int lo = CellOf(box.mbr.x_min, box.mbr.y_min);
  int hi = CellOf(box.mbr.x_max, box.mbr.y_max);
  int ix_lo = lo % g_, iy_lo = lo / g_;
  int ix_hi = hi % g_, iy_hi = hi / g_;
  std::vector<int> out;
  for (int iy = iy_lo; iy <= iy_hi; ++iy) {
    for (int ix = ix_lo; ix <= ix_hi; ++ix) {
      out.push_back(iy * g_ + ix);
    }
  }
  return out;
}

}  // namespace st4ml
