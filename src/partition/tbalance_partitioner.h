#ifndef ST4ML_PARTITION_TBALANCE_PARTITIONER_H_
#define ST4ML_PARTITION_TBALANCE_PARTITIONER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "partition/partitioner.h"

namespace st4ml {

/// Temporal-only equal-count slicing (the "T-balance" baseline): perfect
/// temporal locality and balance, no spatial awareness at all. The lower
/// bound T-STR improves on by sub-tiling each slice spatially.
class TBalancePartitioner : public STPartitioner {
 public:
  explicit TBalancePartitioner(int num_partitions)
      : num_partitions_(num_partitions) {
    ST4ML_CHECK(num_partitions > 0) << "num_partitions must be positive";
  }

  void Train(const std::vector<STBox>& boxes) override {
    std::vector<int64_t> ts;
    ts.reserve(boxes.size());
    for (const STBox& b : boxes) {
      ts.push_back(b.time.start() / 2 + b.time.end() / 2);
    }
    std::sort(ts.begin(), ts.end());
    splits_.clear();
    if (ts.empty()) return;
    for (int k = 1; k < num_partitions_; ++k) {
      splits_.push_back(ts[ts.size() * static_cast<size_t>(k) /
                           num_partitions_]);
    }
  }

  int num_partitions() const override { return num_partitions_; }

  std::vector<int> Assign(const STBox& box, bool duplicate,
                          uint64_t record_id) const override {
    (void)record_id;
    int64_t tc = box.time.start() / 2 + box.time.end() / 2;
    int primary = static_cast<int>(
        std::upper_bound(splits_.begin(), splits_.end(), tc) -
        splits_.begin());
    if (!duplicate) return {primary};
    std::vector<int> out;
    for (int s = 0; s < num_partitions_; ++s) {
      bool after_lo = s == 0 || box.time.end() >= splits_[s - 1];
      bool before_hi = s == num_partitions_ - 1 || box.time.start() <= splits_[s];
      if (after_lo && before_hi) out.push_back(s);
    }
    return out;
  }

 private:
  int num_partitions_;
  std::vector<int64_t> splits_;
};

}  // namespace st4ml

#endif  // ST4ML_PARTITION_TBALANCE_PARTITIONER_H_
