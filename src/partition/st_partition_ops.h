#ifndef ST4ML_PARTITION_ST_PARTITION_OPS_H_
#define ST4ML_PARTITION_ST_PARTITION_OPS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/dataset.h"
#include "partition/partitioner.h"

namespace st4ml {

struct STPartitionOptions {
  /// Replicate each record into EVERY partition its envelope intersects
  /// instead of only its primary. Needed by partition-local operators
  /// (companion detection) that must see boundary-crossing neighbors.
  bool duplicate = false;
};

/// Repartitions a dataset by spatio-temporal locality: trains `partitioner`
/// on every record envelope, then moves each record to its assigned
/// partition(s). A full shuffle — each placed record is charged to the
/// engine metrics, which is exactly the cost the T-STR experiments weigh
/// against the locality it buys.
///
/// The Try* spelling reports a bad partitioner (null, trained to nothing,
/// out-of-range assignment) as a Status; the legacy spelling throws the
/// equivalent StatusError.
template <typename T, typename BoxFn, typename IdFn>
StatusOr<Dataset<T>> TrySTPartition(const Dataset<T>& data,
                                    STPartitioner* partitioner, BoxFn box_of,
                                    IdFn id_of,
                                    STPartitionOptions options = {}) {
  if (partitioner == nullptr) {
    return Status::InvalidArgument("STPartition requires a partitioner");
  }
  ScopedSpan op(data.context()->tracer(), span_category::kOperation,
                "st_partition");
  std::vector<T> records = data.Collect();
  std::vector<STBox> boxes;
  boxes.reserve(records.size());
  for (const T& r : records) boxes.push_back(box_of(r));
  partitioner->Train(boxes);

  int n = partitioner->num_partitions();
  if (n <= 0) return Status::Internal("partitioner produced no partitions");
  typename Dataset<T>::Partitions parts(static_cast<size_t>(n));
  uint64_t moved = 0;
  uint64_t bytes = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    uint64_t id = static_cast<uint64_t>(id_of(records[i]));
    for (int p : partitioner->Assign(boxes[i], options.duplicate, id)) {
      if (p < 0 || p >= n) {
        return Status::Internal("partition assignment out of range");
      }
      parts[static_cast<size_t>(p)].push_back(records[i]);
      moved += 1;
      bytes += ApproxShuffleBytes(records[i]);
    }
  }
  internal::Counters(*data.context())
      .AddShuffle(ShuffleOp::kStPartition, moved, bytes);
  op.AddArg("records", moved);
  op.AddArg("bytes", bytes);
  return Dataset<T>::FromPartitions(data.context(), std::move(parts));
}

/// Legacy value-returning spelling: throws StatusError on failure.
template <typename T, typename BoxFn, typename IdFn>
[[deprecated("use TrySTPartition: Status-returning, never throws")]]
Dataset<T> STPartition(const Dataset<T>& data, STPartitioner* partitioner,
                       BoxFn box_of, IdFn id_of,
                       STPartitionOptions options = {}) {
  auto result = TrySTPartition(data, partitioner, box_of, id_of, options);
  if (!result.ok()) throw StatusError(result.status());
  return std::move(result).value();
}

}  // namespace st4ml

#endif  // ST4ML_PARTITION_ST_PARTITION_OPS_H_
