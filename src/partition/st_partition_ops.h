#ifndef ST4ML_PARTITION_ST_PARTITION_OPS_H_
#define ST4ML_PARTITION_ST_PARTITION_OPS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "engine/dataset.h"
#include "partition/partitioner.h"

namespace st4ml {

struct STPartitionOptions {
  /// Replicate each record into EVERY partition its envelope intersects
  /// instead of only its primary. Needed by partition-local operators
  /// (companion detection) that must see boundary-crossing neighbors.
  bool duplicate = false;
};

/// Repartitions a dataset by spatio-temporal locality: trains `partitioner`
/// on every record envelope, then moves each record to its assigned
/// partition(s). A full shuffle — each placed record is charged to the
/// engine metrics, which is exactly the cost the T-STR experiments weigh
/// against the locality it buys.
template <typename T, typename BoxFn, typename IdFn>
Dataset<T> STPartition(const Dataset<T>& data, STPartitioner* partitioner,
                       BoxFn box_of, IdFn id_of,
                       STPartitionOptions options = {}) {
  ST4ML_CHECK(partitioner != nullptr) << "null partitioner";
  ScopedSpan op(data.context()->tracer(), span_category::kOperation,
                "st_partition");
  std::vector<T> records = data.Collect();
  std::vector<STBox> boxes;
  boxes.reserve(records.size());
  for (const T& r : records) boxes.push_back(box_of(r));
  partitioner->Train(boxes);

  int n = partitioner->num_partitions();
  ST4ML_CHECK(n > 0) << "partitioner produced no partitions";
  typename Dataset<T>::Partitions parts(static_cast<size_t>(n));
  uint64_t moved = 0;
  uint64_t bytes = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    uint64_t id = static_cast<uint64_t>(id_of(records[i]));
    for (int p : partitioner->Assign(boxes[i], options.duplicate, id)) {
      ST4ML_CHECK(p >= 0 && p < n) << "assignment out of range";
      parts[static_cast<size_t>(p)].push_back(records[i]);
      moved += 1;
      bytes += ApproxShuffleBytes(records[i]);
    }
  }
  internal::Counters(*data.context())
      .AddShuffle(ShuffleOp::kStPartition, moved, bytes);
  op.AddArg("records", moved);
  op.AddArg("bytes", bytes);
  return Dataset<T>::FromPartitions(data.context(), std::move(parts));
}

}  // namespace st4ml

#endif  // ST4ML_PARTITION_ST_PARTITION_OPS_H_
