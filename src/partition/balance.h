#ifndef ST4ML_PARTITION_BALANCE_H_
#define ST4ML_PARTITION_BALANCE_H_

#include <cstddef>
#include <vector>

#include "index/stbox.h"

namespace st4ml {

/// Partition-quality metrics (the paper's Table 6 axes): how even are the
/// partition sizes, and how much do partition envelopes overlap — overlap is
/// what forces a query to touch multiple partitions.

/// Standard deviation over mean of the partition sizes; 0 when perfectly
/// balanced or when there is no data.
double CoefficientOfVariation(const std::vector<size_t>& sizes);

/// Tight ST bounds of each partition's actual content. `assignment[i]` is the
/// partition of `boxes[i]`; partitions that received nothing stay empty.
std::vector<STBox> PartitionContentBounds(const std::vector<STBox>& boxes,
                                          const std::vector<int>& assignment,
                                          int num_partitions);

/// Sum of per-partition ST volumes over the volume of their union; 1.0 means
/// disjoint partitions, larger means overlap. 0 when nothing has volume.
double OverlapRatio(const std::vector<STBox>& bounds);

}  // namespace st4ml

#endif  // ST4ML_PARTITION_BALANCE_H_
