#ifndef ST4ML_PARTITION_BASELINE_PARTITIONERS_H_
#define ST4ML_PARTITION_BASELINE_PARTITIONERS_H_

#include <cstdint>
#include <vector>

#include "geometry/mbr.h"
#include "partition/partitioner.h"

namespace st4ml {

/// KDB-tree baseline: recursive equal-count median splits over envelope
/// centers, alternating x and y. Spatially adaptive but, like all the
/// spatial-only baselines, blind to time.
class KDBPartitioner : public STPartitioner {
 public:
  explicit KDBPartitioner(int num_partitions);

  void Train(const std::vector<STBox>& boxes) override;
  int num_partitions() const override { return num_partitions_; }
  std::vector<int> Assign(const STBox& box, bool duplicate,
                          uint64_t record_id) const override;

 private:
  struct Node {
    double split = 0.0;
    bool x_axis = true;
    int left = -1;   // node index; -1 when this node is a leaf
    int right = -1;
    int leaf_id = -1;
  };

  // Builds the subtree over centers[lo, hi) targeting `target` leaves;
  // returns the node index.
  int BuildNode(std::vector<std::pair<double, double>>* centers, size_t lo,
                size_t hi, int target, bool x_axis);
  void CollectIntersecting(int node, const Mbr& query,
                           std::vector<int>* out) const;

  int num_partitions_;
  std::vector<Node> nodes_;
  int root_ = -1;
  int next_leaf_ = 0;
};

/// Uniform-grid baseline: a fixed g x g grid over the sample extent. The
/// simplest spatial scheme and the most skew-sensitive one.
class GridPartitioner : public STPartitioner {
 public:
  explicit GridPartitioner(int num_partitions);

  void Train(const std::vector<STBox>& boxes) override;
  int num_partitions() const override { return g_ * g_; }
  std::vector<int> Assign(const STBox& box, bool duplicate,
                          uint64_t record_id) const override;

 private:
  int CellOf(double x, double y) const;

  int g_;
  Mbr extent_;
};

}  // namespace st4ml

#endif  // ST4ML_PARTITION_BASELINE_PARTITIONERS_H_
