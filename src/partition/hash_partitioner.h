#ifndef ST4ML_PARTITION_HASH_PARTITIONER_H_
#define ST4ML_PARTITION_HASH_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "partition/partitioner.h"

namespace st4ml {

/// Spark's default: records land by id hash, ignoring space and time
/// entirely. Perfectly balanced, zero locality — the baseline every ST-aware
/// partitioner is measured against.
class HashPartitioner : public STPartitioner {
 public:
  explicit HashPartitioner(int num_partitions)
      : num_partitions_(num_partitions) {
    ST4ML_CHECK(num_partitions > 0) << "num_partitions must be positive";
  }

  void Train(const std::vector<STBox>& boxes) override { (void)boxes; }

  int num_partitions() const override { return num_partitions_; }

  std::vector<int> Assign(const STBox& box, bool duplicate,
                          uint64_t record_id) const override {
    (void)box;
    (void)duplicate;  // hashing has no notion of a neighboring partition
    uint64_t h = Mix(record_id);
    return {static_cast<int>(h % static_cast<uint64_t>(num_partitions_))};
  }

 private:
  // splitmix64 finalizer: sequential ids must not land sequentially.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  int num_partitions_;
};

}  // namespace st4ml

#endif  // ST4ML_PARTITION_HASH_PARTITIONER_H_
