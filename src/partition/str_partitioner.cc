#include "partition/str_partitioner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace st4ml {
namespace partition_internal {

namespace {

double CenterX(const STBox& b) { return (b.mbr.x_min + b.mbr.x_max) / 2.0; }
double CenterY(const STBox& b) { return (b.mbr.y_min + b.mbr.y_max) / 2.0; }

int64_t CenterT(const STBox& b) {
  return b.time.start() / 2 + b.time.end() / 2;
}

/// `count - 1` equal-count cuts of a sorted value list.
template <typename V>
std::vector<V> QuantileCuts(std::vector<V> sorted, int count) {
  std::vector<V> cuts;
  if (sorted.empty() || count <= 1) return cuts;
  cuts.reserve(count - 1);
  for (int k = 1; k < count; ++k) {
    size_t idx = sorted.size() * static_cast<size_t>(k) / count;
    cuts.push_back(sorted[idx]);
  }
  return cuts;
}

}  // namespace

int StrTiling::TileOf(double x, double y) const {
  int slab = static_cast<int>(
      std::upper_bound(x_splits.begin(), x_splits.end(), x) -
      x_splits.begin());
  const std::vector<double>& cuts = y_splits[slab];
  int tile = static_cast<int>(std::upper_bound(cuts.begin(), cuts.end(), y) -
                              cuts.begin());
  return slab * gy + tile;
}

void StrTiling::IntersectingTiles(const Mbr& mbr, int base,
                                  std::vector<int>* out) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (int slab = 0; slab < gx; ++slab) {
    double x_lo = slab == 0 ? -kInf : x_splits[slab - 1];
    double x_hi = slab == gx - 1 ? kInf : x_splits[slab];
    if (mbr.x_min > x_hi || mbr.x_max < x_lo) continue;
    const std::vector<double>& cuts = y_splits[slab];
    for (int tile = 0; tile < gy; ++tile) {
      double y_lo = tile == 0 ? -kInf : cuts[tile - 1];
      double y_hi = tile == gy - 1 ? kInf : cuts[tile];
      if (mbr.y_min > y_hi || mbr.y_max < y_lo) continue;
      out->push_back(base + slab * gy + tile);
    }
  }
}

StrTiling BuildStrTiling(const std::vector<const STBox*>& boxes, int gx,
                         int gy) {
  StrTiling tiling;
  tiling.gx = gx;
  tiling.gy = gy;

  std::vector<double> xs;
  xs.reserve(boxes.size());
  for (const STBox* b : boxes) xs.push_back(CenterX(*b));
  std::sort(xs.begin(), xs.end());
  tiling.x_splits = QuantileCuts(xs, gx);

  // Slab membership by sort rank (not by re-applying the cuts): ties on the
  // cut value do not matter for split QUALITY, only for balance, and ranks
  // keep the per-slab counts exactly even.
  std::vector<const STBox*> by_x = boxes;
  std::sort(by_x.begin(), by_x.end(), [](const STBox* a, const STBox* b) {
    return CenterX(*a) < CenterX(*b);
  });
  tiling.y_splits.resize(gx);
  for (int slab = 0; slab < gx; ++slab) {
    size_t lo = by_x.size() * static_cast<size_t>(slab) / gx;
    size_t hi = by_x.size() * static_cast<size_t>(slab + 1) / gx;
    std::vector<double> ys;
    ys.reserve(hi - lo);
    for (size_t i = lo; i < hi; ++i) ys.push_back(CenterY(*by_x[i]));
    std::sort(ys.begin(), ys.end());
    tiling.y_splits[slab] = QuantileCuts(ys, gy);
  }
  return tiling;
}

}  // namespace partition_internal

namespace {

/// Splits ~n tiles into gx x gy with gx = ceil(sqrt(n)).
void GridShape(int n, int* gx, int* gy) {
  *gx = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
  if (*gx < 1) *gx = 1;
  *gy = (n + *gx - 1) / *gx;
  if (*gy < 1) *gy = 1;
}

}  // namespace

STRPartitioner::STRPartitioner(int num_partitions) {
  ST4ML_CHECK(num_partitions > 0) << "num_partitions must be positive";
  GridShape(num_partitions, &tiling_.gx, &tiling_.gy);
  tiling_.y_splits.resize(tiling_.gx);
}

void STRPartitioner::Train(const std::vector<STBox>& boxes) {
  std::vector<const STBox*> ptrs;
  ptrs.reserve(boxes.size());
  for (const STBox& b : boxes) ptrs.push_back(&b);
  int gx = tiling_.gx;
  int gy = tiling_.gy;
  tiling_ = partition_internal::BuildStrTiling(ptrs, gx, gy);
}

std::vector<int> STRPartitioner::Assign(const STBox& box, bool duplicate,
                                        uint64_t record_id) const {
  (void)record_id;
  if (!duplicate) {
    return {tiling_.TileOf(partition_internal::CenterX(box),
                           partition_internal::CenterY(box))};
  }
  std::vector<int> out;
  tiling_.IntersectingTiles(box.mbr, 0, &out);
  return out;
}

TSTRPartitioner::TSTRPartitioner(int temporal_slices, int spatial_tiles)
    : temporal_slices_(temporal_slices) {
  ST4ML_CHECK(temporal_slices > 0 && spatial_tiles > 0)
      << "slice and tile counts must be positive";
  GridShape(spatial_tiles, &gsx_, &gsy_);
  tiles_per_slice_ = gsx_ * gsy_;
  tilings_.resize(temporal_slices_);
  for (auto& tiling : tilings_) {
    tiling.gx = gsx_;
    tiling.gy = gsy_;
    tiling.y_splits.resize(gsx_);
  }
}

void TSTRPartitioner::Train(const std::vector<STBox>& boxes) {
  std::vector<int64_t> ts;
  ts.reserve(boxes.size());
  for (const STBox& b : boxes) ts.push_back(partition_internal::CenterT(b));
  std::sort(ts.begin(), ts.end());
  t_splits_.clear();
  for (int k = 1; k < temporal_slices_; ++k) {
    if (ts.empty()) break;
    t_splits_.push_back(ts[ts.size() * static_cast<size_t>(k) /
                           temporal_slices_]);
  }

  // Slice membership by time-center rank, then an independent 2-d STR
  // tiling per slice — this is what lets spatial boundaries adapt to where
  // the data actually was during each time slice.
  std::vector<const STBox*> by_t;
  by_t.reserve(boxes.size());
  for (const STBox& b : boxes) by_t.push_back(&b);
  std::sort(by_t.begin(), by_t.end(), [](const STBox* a, const STBox* b) {
    return partition_internal::CenterT(*a) < partition_internal::CenterT(*b);
  });
  tilings_.assign(temporal_slices_, partition_internal::StrTiling{});
  for (int s = 0; s < temporal_slices_; ++s) {
    size_t lo = by_t.size() * static_cast<size_t>(s) / temporal_slices_;
    size_t hi = by_t.size() * static_cast<size_t>(s + 1) / temporal_slices_;
    std::vector<const STBox*> slice(by_t.begin() + lo, by_t.begin() + hi);
    tilings_[s] = partition_internal::BuildStrTiling(slice, gsx_, gsy_);
  }
}

std::vector<int> TSTRPartitioner::Assign(const STBox& box, bool duplicate,
                                         uint64_t record_id) const {
  (void)record_id;
  if (!duplicate) {
    int slice = static_cast<int>(
        std::upper_bound(t_splits_.begin(), t_splits_.end(),
                         partition_internal::CenterT(box)) -
        t_splits_.begin());
    int tile = tilings_[slice].TileOf(partition_internal::CenterX(box),
                                      partition_internal::CenterY(box));
    return {slice * tiles_per_slice_ + tile};
  }
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  std::vector<int> out;
  for (int s = 0; s < temporal_slices_; ++s) {
    int64_t t_lo = s == 0 ? kMin : t_splits_[s - 1];
    int64_t t_hi = s == temporal_slices_ - 1 ? kMax : t_splits_[s];
    if (box.time.start() > t_hi || box.time.end() < t_lo) continue;
    tilings_[s].IntersectingTiles(box.mbr, s * tiles_per_slice_, &out);
  }
  return out;
}

}  // namespace st4ml
