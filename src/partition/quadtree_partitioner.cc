#include "partition/quadtree_partitioner.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "common/logging.h"

namespace st4ml {

QuadTreePartitioner::QuadTreePartitioner(int target_partitions)
    : target_partitions_(target_partitions) {
  ST4ML_CHECK(target_partitions > 0) << "target_partitions must be positive";
  nodes_.push_back(Node{});
  leaf_of_node_.push_back(0);
}

void QuadTreePartitioner::Train(const std::vector<STBox>& boxes) {
  extent_ = Mbr();
  std::vector<std::pair<double, double>> centers;
  centers.reserve(boxes.size());
  for (const STBox& b : boxes) {
    double cx = (b.mbr.x_min + b.mbr.x_max) / 2.0;
    double cy = (b.mbr.y_min + b.mbr.y_max) / 2.0;
    centers.emplace_back(cx, cy);
    extent_.Extend(Point(cx, cy));
  }
  if (extent_.IsEmpty()) extent_ = Mbr(0.0, 0.0, 1.0, 1.0);

  nodes_.clear();
  Node root;
  root.bounds = extent_;
  nodes_.push_back(root);
  std::vector<std::vector<size_t>> members(1);
  members[0].resize(centers.size());
  for (size_t i = 0; i < centers.size(); ++i) members[0][i] = i;

  // Greedily quarter the heaviest leaf until we reach the target. A leaf
  // with < 4 points cannot usefully split, which bounds the loop.
  auto heavier = [&members](int a, int b) {
    return members[a].size() < members[b].size();
  };
  std::priority_queue<int, std::vector<int>, decltype(heavier)> heap(heavier);
  heap.push(0);
  int leaves = 1;
  while (leaves + 3 <= std::max(target_partitions_, 1) && !heap.empty()) {
    int node = heap.top();
    heap.pop();
    if (members[node].size() < 4) break;
    Node parent = nodes_[node];
    double mx = (parent.bounds.x_min + parent.bounds.x_max) / 2.0;
    double my = (parent.bounds.y_min + parent.bounds.y_max) / 2.0;
    nodes_[node].mx = mx;
    nodes_[node].my = my;
    nodes_[node].first_child = static_cast<int>(nodes_.size());
    for (int q = 0; q < 4; ++q) {
      Node child;
      bool right = (q & 1) != 0;
      bool top = (q & 2) != 0;
      child.bounds = Mbr(right ? mx : parent.bounds.x_min,
                         top ? my : parent.bounds.y_min,
                         right ? parent.bounds.x_max : mx,
                         top ? parent.bounds.y_max : my);
      nodes_.push_back(child);
      members.emplace_back();
    }
    for (size_t i : members[node]) {
      int q = (centers[i].first >= mx ? 1 : 0) |
              (centers[i].second >= my ? 2 : 0);
      members[nodes_[node].first_child + q].push_back(i);
    }
    members[node].clear();
    members[node].shrink_to_fit();
    for (int q = 0; q < 4; ++q) heap.push(nodes_[node].first_child + q);
    leaves += 3;
  }

  // Dense leaf ids in node order, so assignments are deterministic.
  leaf_of_node_.assign(nodes_.size(), -1);
  int next = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].first_child < 0) leaf_of_node_[i] = next++;
  }
  num_leaves_ = static_cast<size_t>(next);
}

int QuadTreePartitioner::LeafAt(double x, double y) const {
  // Clamp so out-of-extent records still land in the nearest border leaf.
  x = std::clamp(x, extent_.x_min, extent_.x_max);
  y = std::clamp(y, extent_.y_min, extent_.y_max);
  int node = 0;
  while (nodes_[node].first_child >= 0) {
    int q = (x >= nodes_[node].mx ? 1 : 0) | (y >= nodes_[node].my ? 2 : 0);
    node = nodes_[node].first_child + q;
  }
  return leaf_of_node_[node];
}

void QuadTreePartitioner::CollectIntersecting(int node, const Mbr& query,
                                              std::vector<int>* out) const {
  if (!nodes_[node].bounds.Intersects(query)) return;
  if (nodes_[node].first_child < 0) {
    out->push_back(leaf_of_node_[node]);
    return;
  }
  for (int q = 0; q < 4; ++q) {
    CollectIntersecting(nodes_[node].first_child + q, query, out);
  }
}

std::vector<int> QuadTreePartitioner::Assign(const STBox& box, bool duplicate,
                                             uint64_t record_id) const {
  (void)record_id;
  double cx = (box.mbr.x_min + box.mbr.x_max) / 2.0;
  double cy = (box.mbr.y_min + box.mbr.y_max) / 2.0;
  if (!duplicate) return {LeafAt(cx, cy)};
  // Clamp the envelope into the extent so border records match border
  // leaves; fall back to the primary if the clamp degenerates.
  Mbr clamped(std::clamp(box.mbr.x_min, extent_.x_min, extent_.x_max),
              std::clamp(box.mbr.y_min, extent_.y_min, extent_.y_max),
              std::clamp(box.mbr.x_max, extent_.x_min, extent_.x_max),
              std::clamp(box.mbr.y_max, extent_.y_min, extent_.y_max));
  std::vector<int> out;
  CollectIntersecting(0, clamped, &out);
  if (out.empty()) out.push_back(LeafAt(cx, cy));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace st4ml
