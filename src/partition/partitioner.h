#ifndef ST4ML_PARTITION_PARTITIONER_H_
#define ST4ML_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "index/stbox.h"

namespace st4ml {

/// A spatio-temporal partitioner: trained once on (a sample of) record
/// envelopes, then consulted per record.
///
/// Assign contracts:
///  - `duplicate == false`: exactly one partition id — the PRIMARY, chosen
///    from the record's ST center, so every record has one home and on-disk
///    layouts never store a record twice.
///  - `duplicate == true`: every partition the envelope intersects (always
///    including the primary), for operators like companion detection that
///    need boundary-crossing records visible on both sides.
///
/// Out-of-extent records are clamped into the nearest partition rather than
/// dropped: partitioning must be total or selection would silently lose
/// records that arrive after training.
class STPartitioner {
 public:
  virtual ~STPartitioner() = default;

  /// Learns partition boundaries from record envelopes.
  virtual void Train(const std::vector<STBox>& boxes) = 0;

  virtual int num_partitions() const = 0;

  /// Partition ids for one record (see class comment). `record_id` feeds
  /// content-independent schemes like hash partitioning.
  virtual std::vector<int> Assign(const STBox& box, bool duplicate,
                                  uint64_t record_id) const = 0;
};

}  // namespace st4ml

#endif  // ST4ML_PARTITION_PARTITIONER_H_
