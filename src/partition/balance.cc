#include "partition/balance.h"

#include <cmath>

#include "common/logging.h"

namespace st4ml {

double CoefficientOfVariation(const std::vector<size_t>& sizes) {
  if (sizes.empty()) return 0.0;
  double n = static_cast<double>(sizes.size());
  double mean = 0.0;
  for (size_t s : sizes) mean += static_cast<double>(s);
  mean /= n;
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (size_t s : sizes) {
    double d = static_cast<double>(s) - mean;
    var += d * d;
  }
  return std::sqrt(var / n) / mean;
}

std::vector<STBox> PartitionContentBounds(const std::vector<STBox>& boxes,
                                          const std::vector<int>& assignment,
                                          int num_partitions) {
  ST4ML_CHECK(boxes.size() == assignment.size())
      << "one assignment per box required";
  std::vector<STBox> bounds(static_cast<size_t>(num_partitions));
  for (size_t i = 0; i < boxes.size(); ++i) {
    int p = assignment[i];
    ST4ML_CHECK(p >= 0 && p < num_partitions) << "assignment out of range";
    bounds[static_cast<size_t>(p)].Extend(boxes[i]);
  }
  return bounds;
}

double OverlapRatio(const std::vector<STBox>& bounds) {
  double total = 0.0;
  STBox hull;
  for (const STBox& b : bounds) {
    if (b.mbr.IsEmpty()) continue;  // partition received nothing
    total += b.Volume();
    hull.Extend(b);
  }
  if (hull.mbr.IsEmpty()) return 0.0;
  double union_volume = hull.Volume();
  return union_volume > 0.0 ? total / union_volume : 0.0;
}

}  // namespace st4ml
