#ifndef ST4ML_PARTITION_QUADTREE_PARTITIONER_H_
#define ST4ML_PARTITION_QUADTREE_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "geometry/mbr.h"
#include "partition/partitioner.h"

namespace st4ml {

/// Spatial quadtree baseline: starting from the sample extent, repeatedly
/// quarter the most populated leaf until at least `target_partitions` leaves
/// exist. Adapts to density like STR, but with axis-midpoint splits, so
/// skewed data yields deep trees and uneven leaves — which is the point of
/// benchmarking it.
class QuadTreePartitioner : public STPartitioner {
 public:
  explicit QuadTreePartitioner(int target_partitions);

  void Train(const std::vector<STBox>& boxes) override;
  int num_partitions() const override {
    return static_cast<int>(leaf_of_node_.empty() ? 1 : num_leaves_);
  }
  std::vector<int> Assign(const STBox& box, bool duplicate,
                          uint64_t record_id) const override;

 private:
  struct Node {
    Mbr bounds;
    double mx = 0.0;  // split center (valid when internal)
    double my = 0.0;
    int first_child = -1;  // four consecutive children; -1 for a leaf
  };

  int LeafAt(double x, double y) const;
  void CollectIntersecting(int node, const Mbr& query,
                           std::vector<int>* out) const;

  int target_partitions_;
  std::vector<Node> nodes_;
  std::vector<int> leaf_of_node_;  // node index -> dense leaf id (-1 internal)
  size_t num_leaves_ = 1;
  Mbr extent_;
};

}  // namespace st4ml

#endif  // ST4ML_PARTITION_QUADTREE_PARTITIONER_H_
