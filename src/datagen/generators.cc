#include "datagen/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "geometry/linestring.h"
#include "geometry/point.h"

namespace st4ml {
namespace {

double Clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

Point ClampToExtent(const Point& p, const Mbr& extent) {
  return Point(Clamp(p.x, extent.x_min, extent.x_max),
               Clamp(p.y, extent.y_min, extent.y_max));
}

}  // namespace

std::vector<EventRecord> GenerateNycEvents(const NycEventOptions& options) {
  Rng rng(options.seed);
  const Mbr& ext = options.extent;

  // A handful of pickup hotspots plus a uniform background, the classic
  // taxi-demand shape: dense downtown clusters over a city-wide sprinkle.
  constexpr int kHotspots = 6;
  Point centers[kHotspots];
  for (Point& c : centers) {
    c = Point(rng.Uniform(ext.x_min, ext.x_max),
              rng.Uniform(ext.y_min, ext.y_max));
  }
  double sx = (ext.x_max - ext.x_min) / 30.0;
  double sy = (ext.y_max - ext.y_min) / 30.0;

  std::vector<EventRecord> records;
  records.reserve(static_cast<size_t>(std::max<int64_t>(options.count, 0)));
  for (int64_t i = 0; i < options.count; ++i) {
    EventRecord r;
    r.id = i;
    Point p;
    if (rng.Bernoulli(0.7)) {
      const Point& c = centers[rng.UniformInt(0, kHotspots - 1)];
      p = Point(rng.Gaussian(c.x, sx), rng.Gaussian(c.y, sy));
    } else {
      p = Point(rng.Uniform(ext.x_min, ext.x_max),
                rng.Uniform(ext.y_min, ext.y_max));
    }
    p = ClampToExtent(p, ext);
    r.x = p.x;
    r.y = p.y;
    r.time = rng.UniformInt(options.range.start(), options.range.end());
    char attr[48];
    std::snprintf(attr, sizeof(attr), "fare=%.2f;passengers=%d",
                  rng.Uniform(3.0, 60.0),
                  static_cast<int>(rng.UniformInt(1, 4)));
    r.attr = attr;
    records.push_back(std::move(r));
  }
  return records;
}

std::vector<TrajRecord> GeneratePortoTrajectories(
    const PortoTrajOptions& options) {
  Rng rng(options.seed);
  const Mbr& ext = options.extent;
  constexpr int64_t kSampleSeconds = 15;

  std::vector<TrajRecord> records;
  records.reserve(static_cast<size_t>(std::max<int64_t>(options.count, 0)));
  for (int64_t i = 0; i < options.count; ++i) {
    int n = static_cast<int>(rng.UniformInt(20, 80));
    TrajRecord r;
    r.id = i;
    r.points.reserve(static_cast<size_t>(n));

    Point p(rng.Uniform(ext.x_min, ext.x_max),
            rng.Uniform(ext.y_min, ext.y_max));
    double heading = rng.Uniform(0.0, 2.0 * M_PI);
    double speed_mps = rng.Uniform(5.0, 15.0);
    int64_t t = rng.UniformInt(
        options.range.start(),
        options.range.end() - static_cast<int64_t>(n) * kSampleSeconds);
    for (int k = 0; k < n; ++k) {
      TrajPointRecord sample;
      sample.x = p.x;
      sample.y = p.y;
      sample.time = t;
      r.points.push_back(sample);
      t += kSampleSeconds;

      // Smoothly wandering heading; step size from the speed and cadence.
      heading += rng.Gaussian(0.0, 0.35);
      double meters = speed_mps * static_cast<double>(kSampleSeconds);
      double dlat = meters * std::cos(heading) / 111320.0;
      double dlon = meters * std::sin(heading) /
                    (111320.0 * std::max(0.1, std::cos(p.y * M_PI / 180.0)));
      p = ClampToExtent(Point(p.x + dlon, p.y + dlat), ext);
    }
    records.push_back(std::move(r));
  }
  return records;
}

std::vector<EventRecord> GenerateAirQuality(const AirQualityOptions& options) {
  Rng rng(options.seed);
  const Mbr& ext = options.extent;

  std::vector<Point> stations;
  std::vector<double> base_aqi;
  stations.reserve(static_cast<size_t>(std::max(options.stations, 0)));
  for (int s = 0; s < options.stations; ++s) {
    stations.emplace_back(rng.Uniform(ext.x_min, ext.x_max),
                          rng.Uniform(ext.y_min, ext.y_max));
    base_aqi.push_back(rng.Uniform(30.0, 160.0));
  }

  std::vector<EventRecord> records;
  int64_t next_id = 0;
  for (int s = 0; s < options.stations; ++s) {
    for (int replica = 0; replica < options.replicas; ++replica) {
      for (int64_t t = options.range.start(); t <= options.range.end();
           t += options.interval_s) {
        EventRecord r;
        r.id = next_id++;
        r.x = stations[static_cast<size_t>(s)].x;
        r.y = stations[static_cast<size_t>(s)].y;
        r.time = t;
        // Daily pollution rhythm around the station's base level.
        double daily =
            20.0 * std::sin(2.0 * M_PI *
                            static_cast<double>(HourOfDay(t)) / 24.0);
        double aqi = std::max(
            1.0, base_aqi[static_cast<size_t>(s)] + daily + rng.Gaussian(0, 6));
        char attr[24];
        std::snprintf(attr, sizeof(attr), "%.1f", aqi);
        r.attr = attr;
        records.push_back(std::move(r));
      }
    }
  }
  return records;
}

OsmData GenerateOsm(const OsmOptions& options) {
  Rng rng(options.seed);
  const Mbr& ext = options.extent;
  OsmData data;

  data.pois.reserve(static_cast<size_t>(std::max<int64_t>(options.poi_count, 0)));
  for (int64_t i = 0; i < options.poi_count; ++i) {
    EventRecord r;
    r.id = i;
    r.x = rng.Uniform(ext.x_min, ext.x_max);
    r.y = rng.Uniform(ext.y_min, ext.y_max);
    r.time = 0;  // POIs carry no temporal information
    char attr[24];
    std::snprintf(attr, sizeof(attr), "poi:%d",
                  static_cast<int>(rng.UniformInt(0, 9)));
    r.attr = attr;
    data.pois.push_back(std::move(r));
  }

  // Shared jittered corner grid, so neighbouring postal areas tile the
  // extent exactly: no gaps, no overlap.
  int ax = std::max(options.areas_x, 1);
  int ay = std::max(options.areas_y, 1);
  double w = (ext.x_max - ext.x_min) / ax;
  double h = (ext.y_max - ext.y_min) / ay;
  std::vector<Point> corners(static_cast<size_t>((ax + 1) * (ay + 1)));
  for (int j = 0; j <= ay; ++j) {
    for (int i = 0; i <= ax; ++i) {
      double x = ext.x_min + i * w;
      double y = ext.y_min + j * h;
      if (i > 0 && i < ax) x += rng.Uniform(-0.25, 0.25) * w;
      if (j > 0 && j < ay) y += rng.Uniform(-0.25, 0.25) * h;
      corners[static_cast<size_t>(j * (ax + 1) + i)] = Point(x, y);
    }
  }
  auto corner = [&](int i, int j) -> const Point& {
    return corners[static_cast<size_t>(j * (ax + 1) + i)];
  };
  data.postal_areas.reserve(static_cast<size_t>(ax * ay));
  for (int j = 0; j < ay; ++j) {
    for (int i = 0; i < ax; ++i) {
      data.postal_areas.push_back(Polygon(
          {corner(i, j), corner(i + 1, j), corner(i + 1, j + 1),
           corner(i, j + 1)}));
    }
  }
  return data;
}

std::shared_ptr<RoadNetwork> GenerateRoadNetwork(
    const RoadNetworkOptions& options) {
  Rng rng(options.seed);
  const Mbr& ext = options.extent;
  int nx = std::max(options.nx, 2);
  int ny = std::max(options.ny, 2);
  double w = (ext.x_max - ext.x_min) / (nx - 1);
  double h = (ext.y_max - ext.y_min) / (ny - 1);

  auto network = std::make_shared<RoadNetwork>();
  std::vector<int32_t> node_ids(static_cast<size_t>(nx * ny));
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      Point p(ext.x_min + i * w + rng.Uniform(-0.18, 0.18) * w,
              ext.y_min + j * h + rng.Uniform(-0.18, 0.18) * h);
      node_ids[static_cast<size_t>(j * nx + i)] =
          network->AddNode(ClampToExtent(p, ext));
    }
  }

  int64_t next_edge = 1;
  auto add_edge_pair = [&](int32_t a, int32_t b) {
    const Point& pa = network->node(a);
    const Point& pb = network->node(b);
    double meters = HaversineMeters(pa, pb);
    RoadSegment forward;
    forward.id = next_edge;
    forward.shape = LineString({pa, pb});
    forward.from_node = a;
    forward.to_node = b;
    forward.length_m = meters;
    network->AddSegment(std::move(forward));
    RoadSegment reverse;
    reverse.id = -next_edge;
    reverse.shape = LineString({pb, pa});
    reverse.from_node = b;
    reverse.to_node = a;
    reverse.length_m = meters;
    network->AddSegment(std::move(reverse));
    ++next_edge;
  };
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      int32_t here = node_ids[static_cast<size_t>(j * nx + i)];
      if (i + 1 < nx) {
        add_edge_pair(here, node_ids[static_cast<size_t>(j * nx + i + 1)]);
      }
      if (j + 1 < ny) {
        add_edge_pair(here, node_ids[static_cast<size_t>((j + 1) * nx + i)]);
      }
    }
  }
  return network;
}

std::vector<TrajRecord> GenerateCameraTrajectories(
    const RoadNetwork& network, const CameraTrajOptions& options) {
  ST4ML_CHECK(network.num_nodes() > 0) << "camera trips need a road network";
  Rng rng(options.seed);

  std::vector<TrajRecord> records;
  records.reserve(static_cast<size_t>(std::max<int64_t>(options.count, 0)));
  for (int64_t i = 0; i < options.count; ++i) {
    // Table 9 profile: ~9 camera captures over ~27 minutes.
    int n = static_cast<int>(rng.UniformInt(6, 12));
    int64_t total_s = rng.UniformInt(20 * 60, 34 * 60);
    int64_t start = rng.UniformInt(options.day.start(),
                                   std::max(options.day.start(),
                                            options.day.end() - total_s));
    int64_t dt = total_s / std::max(n - 1, 1);

    TrajRecord r;
    r.id = i;
    r.points.reserve(static_cast<size_t>(n));
    int32_t node =
        static_cast<int32_t>(rng.UniformInt(0, static_cast<int64_t>(
                                                   network.num_nodes()) - 1));
    int32_t prev_segment = -1;
    for (int k = 0; k < n; ++k) {
      const Point& at = network.node(node);
      TrajPointRecord sample;
      // Cameras sit at intersections; GPS-grade jitter on the fix.
      sample.x = at.x + rng.Gaussian(0.0, 0.0002);
      sample.y = at.y + rng.Gaussian(0.0, 0.0002);
      sample.time = start + static_cast<int64_t>(k) * dt;
      r.points.push_back(sample);

      const std::vector<int32_t>& out = network.outgoing(node);
      if (out.empty()) break;
      // Prefer not to U-turn straight back along the paired segment.
      int32_t pick = out[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(out.size()) - 1))];
      if (prev_segment >= 0 && out.size() > 1) {
        int64_t prev_edge = std::llabs(network.segment(prev_segment).id);
        for (int attempt = 0; attempt < 4; ++attempt) {
          if (std::llabs(network.segment(pick).id) != prev_edge) break;
          pick = out[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(out.size()) - 1))];
        }
      }
      prev_segment = pick;
      node = network.segment(pick).to_node;
    }
    if (r.points.size() < 2) continue;
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace st4ml
