#ifndef ST4ML_DATAGEN_GENERATORS_H_
#define ST4ML_DATAGEN_GENERATORS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "geometry/mbr.h"
#include "geometry/polygon.h"
#include "mapmatching/road_network.h"
#include "storage/records.h"
#include "temporal/duration.h"

namespace st4ml {

/// Deterministic synthetic stand-ins for the paper's evaluation datasets
/// (§6.1). Each generator is seeded, so any two runs — and any two systems
/// staging from the same options — see byte-identical records.

/// NYC taxi-style point events: hotspot-clustered pickups over ~90 days.
struct NycEventOptions {
  int64_t count = 240000;
  Mbr extent = Mbr(-74.05, 40.60, -73.75, 40.90);
  Duration range = Duration(1577836800, 1577836800 + 90 * 86400);
  uint64_t seed = 1;
};
std::vector<EventRecord> GenerateNycEvents(const NycEventOptions& options);

/// Porto-style GPS trajectories: random-walk trips at 15 s sampling.
struct PortoTrajOptions {
  int64_t count = 12000;
  Mbr extent = Mbr(-8.70, 41.10, -8.52, 41.22);
  Duration range = Duration(1577836800, 1577836800 + 90 * 86400);
  uint64_t seed = 2;
};
std::vector<TrajRecord> GeneratePortoTrajectories(
    const PortoTrajOptions& options);

/// Air-quality sensor readings: fixed stations reporting on a fixed cadence,
/// replicated `replicas` times (the paper inflates this dataset the same
/// way). Exactly stations x replicas x (range.Seconds()/interval_s + 1)
/// records come out — the staging cache keys on that invariant.
struct AirQualityOptions {
  int stations = 24;
  int replicas = 4;
  Mbr extent = Mbr(116.00, 39.60, 116.80, 40.20);
  Duration range = Duration(1577836800, 1577836800 + 30 * 86400);
  int64_t interval_s = 3600;
  uint64_t seed = 3;
};
std::vector<EventRecord> GenerateAirQuality(const AirQualityOptions& options);

/// OSM-style extract: timeless POI points plus a jittered postal-area mesh
/// that tiles the extent exactly (shared cell boundaries, no gaps).
struct OsmOptions {
  int64_t poi_count = 40000;
  int areas_x = 8;
  int areas_y = 8;
  Mbr extent = Mbr(-0.60, 51.20, 0.40, 51.80);
  uint64_t seed = 7;
};
struct OsmData {
  std::vector<EventRecord> pois;
  std::vector<Polygon> postal_areas;
};
OsmData GenerateOsm(const OsmOptions& options);

/// A jittered nx x ny grid road graph. Every physical edge becomes a
/// consecutive forward/reverse segment pair sharing |id|.
struct RoadNetworkOptions {
  int nx = 12;
  int ny = 12;
  Mbr extent = Mbr(116.00, 39.60, 116.80, 40.20);
  uint64_t seed = 11;
};
std::shared_ptr<RoadNetwork> GenerateRoadNetwork(
    const RoadNetworkOptions& options);

/// Sparse camera-captured trajectories for the Alibaba case studies: short
/// intersection-to-intersection walks over a road network (~9 points,
/// ~27 minutes — the Table 9 data profile).
struct CameraTrajOptions {
  int64_t count = 2000;
  Duration day = Duration(1596240000, 1596240000 + 86399);
  uint64_t seed = 13;
};
std::vector<TrajRecord> GenerateCameraTrajectories(
    const RoadNetwork& network, const CameraTrajOptions& options);

}  // namespace st4ml

#endif  // ST4ML_DATAGEN_GENERATORS_H_
