#ifndef ST4ML_TEMPORAL_DURATION_H_
#define ST4ML_TEMPORAL_DURATION_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace st4ml {

/// A closed time interval [start, end] in epoch seconds. An instant is an
/// interval with start == end.
class Duration {
 public:
  Duration() = default;
  explicit Duration(int64_t instant) : start_(instant), end_(instant) {}
  Duration(int64_t start, int64_t end) : start_(start), end_(end) {}

  int64_t start() const { return start_; }
  int64_t end() const { return end_; }
  int64_t Seconds() const { return end_ - start_; }
  bool IsInstant() const { return start_ == end_; }

  bool Contains(int64_t t) const { return t >= start_ && t <= end_; }
  bool Contains(const Duration& other) const {
    return other.start_ >= start_ && other.end_ <= end_;
  }
  bool Intersects(const Duration& other) const {
    return start_ <= other.end_ && other.start_ <= end_;
  }

  void Extend(const Duration& other) {
    start_ = std::min(start_, other.start_);
    end_ = std::max(end_, other.end_);
  }

  bool operator==(const Duration& other) const {
    return start_ == other.start_ && end_ == other.end_;
  }

 private:
  int64_t start_ = 0;
  int64_t end_ = 0;
};

/// Hour of day [0, 23] of an epoch-seconds instant, in UTC.
inline int HourOfDay(int64_t epoch_seconds) {
  int64_t sec = ((epoch_seconds % 86400) + 86400) % 86400;
  return static_cast<int>(sec / 3600);
}

/// Splits `range` into consecutive windows of `step_s` seconds. Every window
/// is [t, t + step_s); the last window is clipped to the range end so the
/// full range is covered. This is THE temporal binning used across the repo:
/// TemporalStructure::RegularByInterval must produce identical bins so that
/// ST4ML converters and the hand-rolled baseline loops agree.
std::vector<Duration> TemporalSliding(const Duration& range, int64_t step_s);

}  // namespace st4ml

#endif  // ST4ML_TEMPORAL_DURATION_H_
