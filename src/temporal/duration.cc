#include "temporal/duration.h"

namespace st4ml {

std::vector<Duration> TemporalSliding(const Duration& range, int64_t step_s) {
  std::vector<Duration> windows;
  if (step_s <= 0 || range.Seconds() < 0) return windows;
  for (int64_t t = range.start(); t <= range.end(); t += step_s) {
    windows.push_back(Duration(t, std::min(t + step_s, range.end())));
    if (t + step_s >= range.end()) break;
  }
  if (windows.empty()) windows.push_back(range);
  return windows;
}

}  // namespace st4ml
