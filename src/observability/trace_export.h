#ifndef ST4ML_OBSERVABILITY_TRACE_EXPORT_H_
#define ST4ML_OBSERVABILITY_TRACE_EXPORT_H_

#include <cstdio>
#include <string>

#include "common/status.h"
#include "observability/counters.h"
#include "observability/tracer.h"

namespace st4ml {

/// Writes the tracer's spans as Chrome trace format JSON — loadable in
/// chrome://tracing and Perfetto (ui.perfetto.dev). Each span becomes one
/// complete ("ph":"X") event; `args` carries the span id, parent id, and
/// every numeric annotation, so the stage → operation → task nesting is
/// recoverable even across worker-thread rows. Spans still open at export
/// time are closed at the tracer's current clock.
Status WriteChromeTrace(const Tracer& tracer, const std::string& path);

/// Writes every counter of the snapshot as one flat JSON object keyed by
/// CounterName(), e.g. {"shuffle_records":123,...}.
Status WriteMetricsJson(const MetricsSnapshot& snapshot,
                        const std::string& path);

/// Prints a per-stage wall-clock/record summary table to `out` (the CLI
/// tools pass stderr): one row per stage-category span, in start order,
/// with the span's records arg when present, then the engine totals.
void PrintStageSummary(const Tracer& tracer, const MetricsSnapshot& snapshot,
                       std::FILE* out);

}  // namespace st4ml

#endif  // ST4ML_OBSERVABILITY_TRACE_EXPORT_H_
