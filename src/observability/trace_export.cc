#include "observability/trace_export.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <inttypes.h>
#include <vector>

#include "accel/kernels.h"
#include "storage/json.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

Status OpenForWrite(const std::string& path, std::ofstream* out) {
  std::error_code ec;
  fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) fs::create_directories(parent, ec);
  out->open(path, std::ios::trunc);
  if (!out->is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  return Status::Ok();
}

std::string SpanArgsJson(const SpanRecord& span) {
  JsonObject args;
  args.Add("span_id", span.id).Add("parent_id", span.parent);
  for (const auto& [key, value] : span.args) args.Add(key, value);
  return args.Str();
}

}  // namespace

Status WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  std::vector<SpanRecord> spans = tracer.Spans();
  int64_t now = tracer.NowMicros();
  std::ofstream out;
  ST4ML_RETURN_IF_ERROR(OpenForWrite(path, &out));
  out << "{\"traceEvents\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    int64_t end = span.end_us < 0 ? now : span.end_us;
    JsonObject event;
    event.Add("name", span.name)
        .Add("cat", span.category)
        .Add("ph", "X")
        .Add("pid", 1)
        .Add("tid", static_cast<int64_t>(span.tid))
        .Add("ts", span.start_us)
        .Add("dur", std::max<int64_t>(end - span.start_us, 0))
        .AddRaw("args", SpanArgsJson(span));
    if (i > 0) out << ",";
    out << "\n" << event.Str();
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  if (!out.good()) return Status::IOError("short write to " + path);
  return Status::Ok();
}

Status WriteMetricsJson(const MetricsSnapshot& snapshot,
                        const std::string& path) {
  std::ofstream out;
  ST4ML_RETURN_IF_ERROR(OpenForWrite(path, &out));
  JsonObject object;
  for (size_t i = 0; i < kNumCounters; ++i) {
    object.Add(CounterName(static_cast<Counter>(i)), snapshot.values[i]);
  }
  out << object.Str() << "\n";
  if (!out.good()) return Status::IOError("short write to " + path);
  return Status::Ok();
}

void PrintStageSummary(const Tracer& tracer, const MetricsSnapshot& snapshot,
                       std::FILE* out) {
  std::vector<SpanRecord> spans = tracer.Spans();
  int64_t now = tracer.NowMicros();
  std::fprintf(out, "%-16s %10s %12s\n", "stage", "wall_ms", "records");
  for (const SpanRecord& span : spans) {
    if (span.category != span_category::kStage) continue;
    int64_t end = span.end_us < 0 ? now : span.end_us;
    double wall_ms = static_cast<double>(end - span.start_us) / 1000.0;
    // The Pipeline facade annotates stage spans with records_out.
    uint64_t records = 0;
    bool have_records = false;
    for (const auto& [key, value] : span.args) {
      if (key == "records_out") {
        records = value;
        have_records = true;
      }
    }
    if (have_records) {
      std::fprintf(out, "%-16s %10.2f %12" PRIu64 "\n", span.name.c_str(),
                   wall_ms, records);
    } else {
      std::fprintf(out, "%-16s %10.2f %12s\n", span.name.c_str(), wall_ms,
                   "-");
    }
  }
  std::fprintf(out,
               "totals: shuffle %" PRIu64 " records / %" PRIu64
               " bytes, %" PRIu64 " broadcasts, stpq %" PRIu64
               " bytes read (%" PRIu64 " pruned / %" PRIu64
               " scanned parts)\n",
               snapshot.shuffle_records(), snapshot.shuffle_bytes(),
               snapshot.broadcasts(), snapshot[Counter::kStpqBytesRead],
               snapshot[Counter::kPartitionsPruned],
               snapshot[Counter::kPartitionsScanned]);
  // Kernel dispatch line: which backend ran, and how much of the work hit
  // batch kernels vs per-record fallbacks. Registry-wide (process scope),
  // not per-snapshot — dispatch identity doesn't vary per job.
  const accel::BackendRegistry& accel = accel::BackendRegistry::Instance();
  std::fprintf(out,
               "backend: %s, %" PRIu64 " batches / %" PRIu64
               " records batched, %" PRIu64 " records on fallback paths\n",
               accel.active_name(), accel.batches(), accel.batch_records(),
               accel.fallback_records());
}

}  // namespace st4ml
