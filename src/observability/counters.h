#ifndef ST4ML_OBSERVABILITY_COUNTERS_H_
#define ST4ML_OBSERVABILITY_COUNTERS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace st4ml {

/// Every counter the engine maintains, one fixed slot each. The registry is
/// a flat array of atomics, so adding a counter costs one relaxed fetch_add
/// and a snapshot is a plain loop — no maps, no strings, no locks.
///
/// Semantics:
///  - The kShuffle* totals are the legacy EngineMetrics accounting: records
///    and ApproxShuffleBytes that crossed a partition boundary, summed over
///    every operator. The per-operator kShuffle*<Op> slots partition those
///    totals exactly (totals == sum over operators, by construction).
///  - kStpqBytes{Read,Written} count the on-disk STPQ bytes actually
///    consumed/produced, headers included.
///  - kPartitions{Pruned,Scanned} count whole files the on-disk index
///    skipped vs opened during selection.
///  - k{Selection,Conversion,Extraction}RecordsOut are the per-stage record
///    flow the Pipeline facade maintains for its canonical stage names.
///  - kParallelJobs / kChunkClaims count RunParallel calls and successful
///    chunk claims; both are bumped whether or not tracing is enabled, so a
///    traced run and an untraced run produce identical snapshots.
///  - kTasksFailed counts worker tasks that returned a non-OK Status or
///    threw; kTasksRetried counts RetryPolicy re-attempts at the I/O
///    boundaries; kFaultsInjected counts engine-boundary faults the
///    FaultInjector fired (DESIGN.md §8 failure semantics).
///  - kCache{Hits,Misses,Evictions} count DatasetCache lookups that found /
///    did not find an entry and LRU evictions under the byte budget;
///    kCacheSpillBytes / kCacheReloadBytes count STPQ bytes the cache wrote
///    to and read back from its scratch or origin files (DESIGN.md §9).
///    A disabled cache (budget 0) touches none of these.
///  - kIndexFilesMmapped counts `.stix` sidecars a selection mmapped;
///    kIndexPagesRead counts the distinct 4 KiB index pages those queries
///    touched (nodes walked, column runs refined, postings resolved);
///    kPostingsHits counts inverted-index postings entries resolved for
///    requested ids (DESIGN.md §12).
///  - kPlanner{MmapIndex,CachedIndex,LinearScan} count the per-file plan the
///    QueryPlanner actually EXECUTED: an intended mmap plan whose sidecar
///    fails validation falls back to — and is counted as — a linear scan.
///  - kWalSegmentsScanned counts `.stwal` staging segments a merged Select
///    served records from (the kWalScan plan); kWalReplayedRecords counts
///    records recovered from WAL segments when an Ingestor reopens a
///    directory after a crash; kCompactionsRun counts background compaction
///    cycles that published at least one partition (DESIGN.md §13).
///  - kWorkersSpawned / kWorkersLost count multiprocess-executor worker
///    forks (including respawns) and workers that died before finishing;
///    kChunksReclaimed counts task grants a dead worker left unfinished
///    that the driver re-granted to survivors; kShuffleNetBytes counts
///    frame bytes (headers + payloads) that actually crossed the driver ↔
///    worker sockets (DESIGN.md §14). The local executor touches none of
///    these.
enum class Counter : uint32_t {
  kShuffleRecords = 0,
  kShuffleBytes,
  kBroadcasts,
  kShuffleRecordsReduceByKey,
  kShuffleBytesReduceByKey,
  kShuffleRecordsGroupByKey,
  kShuffleBytesGroupByKey,
  kShuffleRecordsRepartition,
  kShuffleBytesRepartition,
  kShuffleRecordsStPartition,
  kShuffleBytesStPartition,
  kStpqBytesRead,
  kStpqBytesWritten,
  kStpqFilesRead,
  kStpqFilesWritten,
  kPartitionsPruned,
  kPartitionsScanned,
  kSelectionRecordsOut,
  kSelectionBytesSelected,
  kConversionRecordsIn,
  kConversionRecordsOut,
  kExtractionRecordsIn,
  kExtractionRecordsOut,
  kParallelJobs,
  kChunkClaims,
  kTasksFailed,
  kTasksRetried,
  kFaultsInjected,
  kCacheHits,
  kCacheMisses,
  kCacheEvictions,
  kCacheSpillBytes,
  kCacheReloadBytes,
  kIndexFilesMmapped,
  kIndexPagesRead,
  kPostingsHits,
  kPlannerMmapIndex,
  kPlannerCachedIndex,
  kPlannerLinearScan,
  kWalSegmentsScanned,
  kWalReplayedRecords,
  kCompactionsRun,
  kWorkersSpawned,
  kWorkersLost,
  kChunksReclaimed,
  kShuffleNetBytes,
  kNumCounters,
};

inline constexpr size_t kNumCounters =
    static_cast<size_t>(Counter::kNumCounters);

/// Stable snake_case names, used by the metrics JSON exporter and tests.
inline const char* CounterName(Counter c) {
  constexpr const char* kNames[kNumCounters] = {
      "shuffle_records",
      "shuffle_bytes",
      "broadcasts",
      "shuffle_records_reduce_by_key",
      "shuffle_bytes_reduce_by_key",
      "shuffle_records_group_by_key",
      "shuffle_bytes_group_by_key",
      "shuffle_records_repartition",
      "shuffle_bytes_repartition",
      "shuffle_records_st_partition",
      "shuffle_bytes_st_partition",
      "stpq_bytes_read",
      "stpq_bytes_written",
      "stpq_files_read",
      "stpq_files_written",
      "partitions_pruned",
      "partitions_scanned",
      "selection_records_out",
      "selection_bytes_selected",
      "conversion_records_in",
      "conversion_records_out",
      "extraction_records_in",
      "extraction_records_out",
      "parallel_jobs",
      "chunk_claims",
      "tasks_failed",
      "tasks_retried",
      "faults_injected",
      "cache_hits",
      "cache_misses",
      "cache_evictions",
      "cache_spill_bytes",
      "cache_reload_bytes",
      "index_files_mmapped",
      "index_pages_read",
      "postings_hits",
      "planner_mmap_index",
      "planner_cached_index",
      "planner_linear_scan",
      "wal_segments_scanned",
      "wal_replayed_records",
      "compactions_run",
      "workers_spawned",
      "workers_lost",
      "chunks_reclaimed",
      "shuffle_net_bytes",
  };
  return kNames[static_cast<size_t>(c)];
}

/// The shuffle-moving operators, for per-operator byte attribution.
enum class ShuffleOp : uint32_t {
  kReduceByKey,
  kGroupByKey,
  kRepartition,
  kStPartition,
};

/// An immutable, value-typed copy of every counter — what applications,
/// tests and benches read. Taken atomically slot-by-slot (each slot is
/// internally consistent; the engine only publishes whole-operation deltas,
/// so between operations a snapshot is exact).
struct MetricsSnapshot {
  std::array<uint64_t, kNumCounters> values{};

  uint64_t operator[](Counter c) const {
    return values[static_cast<size_t>(c)];
  }

  // Named spellings of the legacy EngineMetrics trio, so migrated callers
  // read `snapshot.shuffle_records()` where they read
  // `metrics().shuffle_records()` before.
  uint64_t shuffle_records() const { return (*this)[Counter::kShuffleRecords]; }
  uint64_t shuffle_bytes() const { return (*this)[Counter::kShuffleBytes]; }
  uint64_t broadcasts() const { return (*this)[Counter::kBroadcasts]; }

  bool operator==(const MetricsSnapshot& other) const {
    return values == other.values;
  }
};

class CounterRegistry;

namespace internal {
/// The job-scoped counter sink installed on the current thread (nullptr when
/// no job is active). Every CounterRegistry::Add forwards its delta here in
/// addition to the registry's own slot, which is how one shared engine
/// serving several concurrent pipelines keeps an EXACT per-job copy of each
/// counter: the Session/Job layer installs a job's registry on the driver
/// thread (ScopedJobCounters) and the engine re-installs it on whichever
/// worker thread runs one of that job's chunks — so a delta is attributed to
/// the job that caused it, never to a neighbor sharing the pool.
inline thread_local CounterRegistry* tls_job_counters = nullptr;
}  // namespace internal

/// The mutable registry behind ExecutionContext::MetricsSnapshot(). Only the
/// engine writes it (via internal::Counters); everyone else sees snapshots.
class CounterRegistry {
 public:
  void Add(Counter c, uint64_t delta) {
    AddSlot(c, delta);
    CounterRegistry* job = internal::tls_job_counters;
    // AddSlot, not Add: the job registry must not forward back into itself.
    if (job != nullptr && job != this) job->AddSlot(c, delta);
  }

  /// One shuffle's accounting: bumps the legacy totals and the per-operator
  /// attribution in lockstep, so totals always equal the per-op sum.
  void AddShuffle(ShuffleOp op, uint64_t records, uint64_t bytes) {
    Add(Counter::kShuffleRecords, records);
    Add(Counter::kShuffleBytes, bytes);
    switch (op) {
      case ShuffleOp::kReduceByKey:
        Add(Counter::kShuffleRecordsReduceByKey, records);
        Add(Counter::kShuffleBytesReduceByKey, bytes);
        break;
      case ShuffleOp::kGroupByKey:
        Add(Counter::kShuffleRecordsGroupByKey, records);
        Add(Counter::kShuffleBytesGroupByKey, bytes);
        break;
      case ShuffleOp::kRepartition:
        Add(Counter::kShuffleRecordsRepartition, records);
        Add(Counter::kShuffleBytesRepartition, bytes);
        break;
      case ShuffleOp::kStPartition:
        Add(Counter::kShuffleRecordsStPartition, records);
        Add(Counter::kShuffleBytesStPartition, bytes);
        break;
    }
  }

  void AddBroadcast() { Add(Counter::kBroadcasts, 1); }

  void Reset() {
    for (auto& value : values_) value.store(0, std::memory_order_relaxed);
  }

  MetricsSnapshot Snapshot() const {
    MetricsSnapshot snap;
    for (size_t i = 0; i < kNumCounters; ++i) {
      snap.values[i] = values_[i].load(std::memory_order_relaxed);
    }
    return snap;
  }

  uint64_t value(Counter c) const {
    return values_[static_cast<size_t>(c)].load(std::memory_order_relaxed);
  }

 private:
  void AddSlot(Counter c, uint64_t delta) {
    values_[static_cast<size_t>(c)].fetch_add(delta,
                                              std::memory_order_relaxed);
  }

  std::array<std::atomic<uint64_t>, kNumCounters> values_{};
};

/// RAII installer of a job-scoped counter sink on the CURRENT thread: while
/// alive, every counter delta recorded on this thread (and, via the engine,
/// on worker threads running this job's chunks) is also added to `job`.
/// Nests: the previous sink is restored on destruction. Thread-bound by
/// construction — create and destroy on the same thread.
class ScopedJobCounters {
 public:
  explicit ScopedJobCounters(CounterRegistry* job)
      : prev_(internal::tls_job_counters) {
    internal::tls_job_counters = job;
  }
  ~ScopedJobCounters() { internal::tls_job_counters = prev_; }

  ScopedJobCounters(const ScopedJobCounters&) = delete;
  ScopedJobCounters& operator=(const ScopedJobCounters&) = delete;

 private:
  CounterRegistry* prev_;
};

}  // namespace st4ml

#endif  // ST4ML_OBSERVABILITY_COUNTERS_H_
