#ifndef ST4ML_OBSERVABILITY_TRACER_H_
#define ST4ML_OBSERVABILITY_TRACER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stopwatch.h"

namespace st4ml {

/// Span categories, ordered from coarse to fine. They double as the `cat`
/// field of the Chrome trace export, so Perfetto can filter by level.
namespace span_category {
inline constexpr const char* kJob = "job";
inline constexpr const char* kPipeline = "pipeline";
inline constexpr const char* kStage = "stage";
inline constexpr const char* kOperation = "operation";
inline constexpr const char* kTask = "task";
inline constexpr const char* kIo = "io";
}  // namespace span_category

/// One recorded span. Times are microseconds since the tracer's epoch
/// (construction); `end_us < 0` marks a span that is still open.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;  // 0 = root (no parent)
  std::string name;
  const char* category = span_category::kOperation;
  uint32_t tid = 0;  // dense per-tracer thread index, 0 = first seen
  int64_t start_us = 0;
  int64_t end_us = -1;
  /// Numeric annotations (records, bytes, chunk claims, ...), exported as
  /// the Chrome trace event's "args" object.
  std::vector<std::pair<std::string, uint64_t>> args;
};

/// Collects nested spans (pipeline → stage → operation → per-worker task)
/// with wall-clock timestamps. Thread-safe: Begin/End/AddArg may be called
/// from any thread (worker task spans are), guarded by one mutex — spans
/// are rare next to the per-record work they bracket.
///
/// Tracing is OFF unless an ExecutionContext is given a Tracer; every
/// instrumentation site checks a raw pointer and no-ops on nullptr, so the
/// disabled cost is one predictable branch per *operation* (never per
/// record). The current-span stack (auto-parenting for ScopedSpan) is kept
/// PER THREAD: each driver thread — a CLI main, or one daemon connection
/// running its own Job — parents its scoped spans under its own open spans
/// only, so concurrent jobs sharing one tracer never interleave their span
/// trees. Worker-task spans use explicit parents and touch no stack.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span under an explicit parent (0 for root). Returns its id.
  uint64_t BeginSpan(const char* category, std::string name,
                     uint64_t parent) {
    int64_t now = clock_.ElapsedMicros();
    std::lock_guard<std::mutex> lock(mu_);
    SpanRecord span;
    span.id = spans_.size() + 1;
    span.parent = parent;
    span.name = std::move(name);
    span.category = category;
    span.tid = ThreadIndexLocked();
    span.start_us = now;
    spans_.push_back(std::move(span));
    return spans_.back().id;
  }

  /// Opens a span under the CALLING THREAD's current span and makes it this
  /// thread's current.
  uint64_t BeginScopedSpan(const char* category, std::string name) {
    int64_t now = clock_.ElapsedMicros();
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<uint64_t>& current = CurrentStackLocked();
    SpanRecord span;
    span.id = spans_.size() + 1;
    span.parent = current.empty() ? 0 : current.back();
    span.name = std::move(name);
    span.category = category;
    span.tid = ThreadIndexLocked();
    span.start_us = now;
    spans_.push_back(std::move(span));
    current.push_back(spans_.back().id);
    return spans_.back().id;
  }

  void EndSpan(uint64_t id) {
    int64_t now = clock_.ElapsedMicros();
    std::lock_guard<std::mutex> lock(mu_);
    if (id == 0 || id > spans_.size()) return;
    spans_[id - 1].end_us = now;
    std::vector<uint64_t>& current = CurrentStackLocked();
    if (!current.empty() && current.back() == id) current.pop_back();
  }

  void AddSpanArg(uint64_t id, std::string key, uint64_t value) {
    std::lock_guard<std::mutex> lock(mu_);
    if (id == 0 || id > spans_.size()) return;
    spans_[id - 1].args.emplace_back(std::move(key), value);
  }

  /// The innermost open span of the CALLING THREAD, for explicit parenting
  /// of spans created on worker threads. 0 when this thread has none open.
  uint64_t CurrentSpan() const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = current_.find(std::this_thread::get_id());
    return it == current_.end() || it->second.empty() ? 0 : it->second.back();
  }

  /// Copies every span recorded so far. Open spans keep end_us = -1; the
  /// exporter closes them at export time.
  std::vector<SpanRecord> Spans() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }

  /// Microseconds since the tracer's epoch — the exporter's "now".
  int64_t NowMicros() const { return clock_.ElapsedMicros(); }

 private:
  uint32_t ThreadIndexLocked() {
    auto [it, inserted] =
        tids_.emplace(std::this_thread::get_id(),
                      static_cast<uint32_t>(tids_.size()));
    return it->second;
  }

  std::vector<uint64_t>& CurrentStackLocked() {
    return current_[std::this_thread::get_id()];
  }

  Stopwatch clock_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  /// Per-thread open-span stacks (one per driver thread; worker task spans
  /// never push). Bounded by thread count, never cleared — spans outlive
  /// the threads that opened them, the stacks are just parents-in-progress.
  std::unordered_map<std::thread::id, std::vector<uint64_t>> current_;
  std::unordered_map<std::thread::id, uint32_t> tids_;
};

/// RAII span. Default-constructed or built against a null tracer it is
/// inert — the no-op tracer instrumentation sites rely on.
///
/// Two parenting modes:
///  - ScopedSpan(tracer, cat, name): parent = tracer's current span, and
///    this span becomes current until destruction. Driver thread only.
///  - ScopedSpan(tracer, cat, name, parent): explicit parent, does not
///    touch the current stack — safe from worker threads (task spans).
class ScopedSpan {
 public:
  ScopedSpan() = default;

  ScopedSpan(Tracer* tracer, const char* category, std::string name)
      : tracer_(tracer) {
    if (tracer_ != nullptr) {
      id_ = tracer_->BeginScopedSpan(category, std::move(name));
    }
  }

  ScopedSpan(Tracer* tracer, const char* category, std::string name,
             uint64_t parent)
      : tracer_(tracer) {
    if (tracer_ != nullptr) {
      id_ = tracer_->BeginSpan(category, std::move(name), parent);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { End(); }

  /// Ends the span early (idempotent; the destructor is then a no-op).
  void End() {
    if (tracer_ != nullptr && id_ != 0) {
      tracer_->EndSpan(id_);
      id_ = 0;
    }
  }

  void AddArg(std::string key, uint64_t value) {
    if (tracer_ != nullptr && id_ != 0) {
      tracer_->AddSpanArg(id_, std::move(key), value);
    }
  }

  uint64_t id() const { return id_; }
  bool active() const { return tracer_ != nullptr && id_ != 0; }

 private:
  Tracer* tracer_ = nullptr;
  uint64_t id_ = 0;
};

}  // namespace st4ml

#endif  // ST4ML_OBSERVABILITY_TRACER_H_
