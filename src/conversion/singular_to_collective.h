#ifndef ST4ML_CONVERSION_SINGULAR_TO_COLLECTIVE_H_
#define ST4ML_CONVERSION_SINGULAR_TO_COLLECTIVE_H_

#include <algorithm>
#include <limits>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "engine/broadcast.h"
#include "engine/dataset.h"
#include "index/rtree.h"
#include "instances/instances.h"

namespace st4ml {

/// How a converter locates the structure cells/bins an instance belongs to.
///
/// Every strategy assigns instances to EXACTLY the same cells — they differ
/// only in how candidates are found. This invariant is what lets the
/// ablation bench assert that the broadcast design and the shuffle design
/// produce identical results, and what keeps ST4ML's answers equal to the
/// baselines' hand-rolled scans.
enum class ConversionStrategy {
  /// Regular structures use arithmetic lookup; irregular spatial structures
  /// use a broadcast R-tree over cell envelopes (the paper's design).
  kAuto,
  /// Front-to-back scan over every cell/bin per instance — what the
  /// baselines do, kept as the reference implementation.
  kNaive,
  /// Force the broadcast R-tree even for regular grids.
  kRTree,
};

namespace conversion_internal {

/// The naive reference predicates. These spell out the assignment contract:
///  - an event joins the FIRST bin/cell (in structure order) containing it;
///  - a trajectory joins EVERY bin its time span intersects and EVERY cell
///    its shape intersects.
/// The indexed paths below must agree with these exactly.

inline size_t NaiveFirstBin(const TemporalStructure& s, int64_t t) {
  for (size_t i = 0; i < s.size(); ++i) {
    if (s.bin(i).Contains(t)) return i;
  }
  return TemporalStructure::kNoBin;
}

inline std::vector<size_t> NaiveBins(const TemporalStructure& s,
                                     const Duration& d) {
  std::vector<size_t> out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s.bin(i).Intersects(d)) out.push_back(i);
  }
  return out;
}

inline size_t NaiveFirstCell(const SpatialStructure& s, const Point& p) {
  for (size_t i = 0; i < s.size(); ++i) {
    if (s.cell(i).ContainsPoint(p)) return i;
  }
  return SpatialStructure::kNoCell;
}

inline std::vector<size_t> NaiveContainingCells(const SpatialStructure& s,
                                                const Point& p) {
  std::vector<size_t> out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s.cell(i).ContainsPoint(p)) out.push_back(i);
  }
  return out;
}

inline bool CellHitsLine(const SpatialStructure& s, size_t i,
                         const LineString& line) {
  return s.is_grid() ? line.IntersectsMbr(s.cell_mbr(i))
                     : s.cell(i).IntersectsLineString(line);
}

inline std::vector<size_t> NaiveCellsForLine(const SpatialStructure& s,
                                             const LineString& line) {
  std::vector<size_t> out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (CellHitsLine(s, i, line)) out.push_back(i);
  }
  return out;
}

/// The time axis of a spatial-only cell index: wide enough to intersect any
/// query instant, centered so the R-tree's STR packing stays well-behaved.
inline Duration AllTime() {
  constexpr int64_t kHalf = int64_t{1} << 62;
  return Duration(-kHalf, kHalf);
}

/// A broadcast R-tree over the cells of a spatial structure. Queries return
/// candidate cell indices in ASCENDING order so first-match semantics agree
/// with the naive front-to-back scan.
class CellIndex {
 public:
  CellIndex() = default;

  explicit CellIndex(const SpatialStructure& s) {
    std::vector<size_t> ids(s.size());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
    tree_.Build(ids, [&s](size_t i) { return STBox(s.cell_mbr(i), AllTime()); });
  }

  std::vector<size_t> Candidates(const Mbr& query) const {
    std::vector<size_t> out;
    tree_.QueryVisit(STBox(query, Duration(0)),
                     [&out, this](size_t i) { out.push_back(tree_.item(i)); });
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  RTree<size_t> tree_;
};

inline size_t IndexedFirstCell(const SpatialStructure& s, const CellIndex* index,
                               const Point& p) {
  if (index == nullptr) return s.FindCell(p);
  for (size_t i : index->Candidates(Mbr(p))) {
    if (s.cell(i).ContainsPoint(p)) return i;
  }
  return SpatialStructure::kNoCell;
}

inline std::vector<size_t> IndexedContainingCells(const SpatialStructure& s,
                                                  const CellIndex* index,
                                                  const Point& p) {
  if (index == nullptr) return s.ContainingCells(p);
  std::vector<size_t> out;
  for (size_t i : index->Candidates(Mbr(p))) {
    if (s.cell(i).ContainsPoint(p)) out.push_back(i);
  }
  return out;
}

inline std::vector<size_t> IndexedCellsForLine(const SpatialStructure& s,
                                               const CellIndex* index,
                                               const LineString& line) {
  if (index == nullptr) return s.IntersectingCells(line);
  std::vector<size_t> out;
  for (size_t i : index->Candidates(line.ComputeMbr())) {
    if (CellHitsLine(s, i, line)) out.push_back(i);
  }
  return out;
}

/// Whether the strategy wants an R-tree for this spatial structure.
inline bool WantsCellIndex(ConversionStrategy strategy,
                           const SpatialStructure& s) {
  if (strategy == ConversionStrategy::kRTree) return true;
  return strategy == ConversionStrategy::kAuto && !s.is_grid() && s.size() > 8;
}

struct IdentityPre {
  template <typename T>
  T operator()(const T& value) const {
    return value;
  }
};

struct PassThroughAgg {
  template <typename P>
  std::vector<P> operator()(const std::vector<P>& values) const {
    return values;
  }
};

template <typename T>
constexpr bool kIsEvent = std::is_same_v<T, STEvent>;
template <typename T>
constexpr bool kIsTraj = std::is_same_v<T, STTrajectory>;

template <typename T>
constexpr void AssertSingular() {
  static_assert(kIsEvent<T> || kIsTraj<T>,
                "converters accept STEvent or STTrajectory instances");
}

}  // namespace conversion_internal

/// Converts singular instances (events or trajectories) into one TimeSeries
/// per engine partition, with the structure shipped to workers as a
/// broadcast variable — design option 2 of DESIGN.md §3.2.2; no shuffle.
///
/// `Convert(data)` buckets whole instances (value type vector<T>);
/// `Convert(data, pre, agg)` applies `pre` per instance before bucketing and
/// `agg` per bin afterwards, so heavy payloads never outlive the partition.
template <typename T>
class TimeSeriesConverter {
 public:
  explicit TimeSeriesConverter(
      std::shared_ptr<const TemporalStructure> structure,
      ConversionStrategy strategy = ConversionStrategy::kAuto)
      : structure_(std::move(structure)), strategy_(strategy) {
    conversion_internal::AssertSingular<T>();
    ST4ML_CHECK(structure_ != nullptr) << "null temporal structure";
  }

  Dataset<TimeSeries<std::vector<T>>> Convert(const Dataset<T>& data) const {
    return Convert(data, conversion_internal::IdentityPre{},
                   conversion_internal::PassThroughAgg{});
  }

  template <typename PreFn, typename AggFn>
  auto Convert(const Dataset<T>& data, PreFn pre, AggFn agg) const {
    namespace ci = conversion_internal;
    using P = std::decay_t<std::invoke_result_t<PreFn, const T&>>;
    using R = std::decay_t<std::invoke_result_t<AggFn, const std::vector<P>&>>;
    auto shared = MakeBroadcast(data.context(), structure_);
    const bool naive = strategy_ == ConversionStrategy::kNaive;
    return data.MapPartitions(
        [shared, naive, pre, agg](const std::vector<T>& part) {
          const TemporalStructure& s = *shared.value();
          std::vector<std::vector<P>> buckets(s.size());
          for (const T& item : part) {
            if constexpr (ci::kIsEvent<T>) {
              int64_t t = item.temporal.start();
              size_t bin = naive ? ci::NaiveFirstBin(s, t) : s.FindBin(t);
              if (bin != TemporalStructure::kNoBin) {
                buckets[bin].push_back(pre(item));
              }
            } else {
              Duration extent = item.TemporalExtent();
              auto bins = naive ? ci::NaiveBins(s, extent)
                                : s.IntersectingBins(extent);
              for (size_t bin : bins) buckets[bin].push_back(pre(item));
            }
          }
          std::vector<R> values;
          values.reserve(buckets.size());
          for (const auto& bucket : buckets) values.push_back(agg(bucket));
          std::vector<TimeSeries<R>> out;
          out.push_back(TimeSeries<R>(shared.value(), std::move(values)));
          return out;
        });
  }

 private:
  std::shared_ptr<const TemporalStructure> structure_;
  ConversionStrategy strategy_;
};

/// Converts singular instances into one SpatialMap per engine partition.
/// Irregular structures (postal areas, road cells) are matched through a
/// broadcast R-tree over cell envelopes; grids use arithmetic lookup.
template <typename T>
class SpatialMapConverter {
 public:
  explicit SpatialMapConverter(
      std::shared_ptr<const SpatialStructure> structure,
      ConversionStrategy strategy = ConversionStrategy::kAuto)
      : structure_(std::move(structure)), strategy_(strategy) {
    conversion_internal::AssertSingular<T>();
    ST4ML_CHECK(structure_ != nullptr) << "null spatial structure";
  }

  Dataset<SpatialMap<std::vector<T>>> Convert(const Dataset<T>& data) const {
    return Convert(data, conversion_internal::IdentityPre{},
                   conversion_internal::PassThroughAgg{});
  }

  template <typename PreFn, typename AggFn>
  auto Convert(const Dataset<T>& data, PreFn pre, AggFn agg) const {
    namespace ci = conversion_internal;
    using P = std::decay_t<std::invoke_result_t<PreFn, const T&>>;
    using R = std::decay_t<std::invoke_result_t<AggFn, const std::vector<P>&>>;
    auto shared = MakeBroadcast(data.context(), structure_);
    const bool naive = strategy_ == ConversionStrategy::kNaive;
    Broadcast<ci::CellIndex> index;
    if (!naive && ci::WantsCellIndex(strategy_, *structure_)) {
      index = MakeBroadcast(data.context(), ci::CellIndex(*structure_));
    }
    return data.MapPartitions(
        [shared, index, naive, pre, agg](const std::vector<T>& part) {
          const SpatialStructure& s = *shared.value();
          const ci::CellIndex* tree = index ? index.get() : nullptr;
          std::vector<std::vector<P>> buckets(s.size());
          for (const T& item : part) {
            if constexpr (ci::kIsEvent<T>) {
              size_t cell = naive ? ci::NaiveFirstCell(s, item.spatial)
                                  : ci::IndexedFirstCell(s, tree, item.spatial);
              if (cell != SpatialStructure::kNoCell) {
                buckets[cell].push_back(pre(item));
              }
            } else {
              LineString shape = item.Shape();
              auto cells = naive ? ci::NaiveCellsForLine(s, shape)
                                 : ci::IndexedCellsForLine(s, tree, shape);
              for (size_t cell : cells) buckets[cell].push_back(pre(item));
            }
          }
          std::vector<R> values;
          values.reserve(buckets.size());
          for (const auto& bucket : buckets) values.push_back(agg(bucket));
          std::vector<SpatialMap<R>> out;
          out.push_back(SpatialMap<R>(shared.value(), std::move(values)));
          return out;
        });
  }

 private:
  std::shared_ptr<const SpatialStructure> structure_;
  ConversionStrategy strategy_;
};

/// Converts singular instances into one Raster per engine partition. The
/// raster value at flat index (bin * num_cells + cell) collects instances
/// assigned to that spatial cell during that temporal bin:
///  - events join every containing cell x every containing bin (an air
///    reading on two overlapping road cells counts on both — no dedup, to
///    match per-cell scans);
///  - trajectories join the cross product of intersected cells and bins.
template <typename T>
class RasterConverter {
 public:
  explicit RasterConverter(std::shared_ptr<const RasterStructure> structure,
                           ConversionStrategy strategy = ConversionStrategy::kAuto)
      : structure_(std::move(structure)), strategy_(strategy) {
    conversion_internal::AssertSingular<T>();
    ST4ML_CHECK(structure_ != nullptr) << "null raster structure";
  }

  Dataset<Raster<std::vector<T>>> Convert(const Dataset<T>& data) const {
    return Convert(data, conversion_internal::IdentityPre{},
                   conversion_internal::PassThroughAgg{});
  }

  template <typename PreFn, typename AggFn>
  auto Convert(const Dataset<T>& data, PreFn pre, AggFn agg) const {
    namespace ci = conversion_internal;
    using P = std::decay_t<std::invoke_result_t<PreFn, const T&>>;
    using R = std::decay_t<std::invoke_result_t<AggFn, const std::vector<P>&>>;
    auto shared = MakeBroadcast(data.context(), structure_);
    const bool naive = strategy_ == ConversionStrategy::kNaive;
    Broadcast<ci::CellIndex> index;
    if (!naive && ci::WantsCellIndex(strategy_, structure_->spatial())) {
      index = MakeBroadcast(data.context(), ci::CellIndex(structure_->spatial()));
    }
    return data.MapPartitions(
        [shared, index, naive, pre, agg](const std::vector<T>& part) {
          const RasterStructure& r = *shared.value();
          const SpatialStructure& s = r.spatial();
          const TemporalStructure& ts = r.temporal();
          const ci::CellIndex* tree = index ? index.get() : nullptr;
          std::vector<std::vector<P>> buckets(r.size());
          for (const T& item : part) {
            std::vector<size_t> cells;
            std::vector<size_t> bins;
            if constexpr (ci::kIsEvent<T>) {
              cells = naive ? ci::NaiveContainingCells(s, item.spatial)
                            : ci::IndexedContainingCells(s, tree, item.spatial);
              bins = naive ? ci::NaiveBins(ts, Duration(item.temporal.start()))
                           : ts.IntersectingBins(Duration(item.temporal.start()));
            } else {
              LineString shape = item.Shape();
              cells = naive ? ci::NaiveCellsForLine(s, shape)
                            : ci::IndexedCellsForLine(s, tree, shape);
              Duration extent = item.TemporalExtent();
              bins = naive ? ci::NaiveBins(ts, extent)
                           : ts.IntersectingBins(extent);
            }
            for (size_t bin : bins) {
              for (size_t cell : cells) {
                buckets[r.FlatIndex(cell, bin)].push_back(pre(item));
              }
            }
          }
          std::vector<R> values;
          values.reserve(buckets.size());
          for (const auto& bucket : buckets) values.push_back(agg(bucket));
          std::vector<Raster<R>> out;
          out.push_back(Raster<R>(shared.value(), std::move(values)));
          return out;
        });
  }

 private:
  std::shared_ptr<const RasterStructure> structure_;
  ConversionStrategy strategy_;
};

/// The converter names the paper's Table 3 uses: the source instance type is
/// the template argument, the target collective type is in the name.
template <typename T>
using Event2TsConverter = TimeSeriesConverter<T>;
template <typename T>
using Traj2TsConverter = TimeSeriesConverter<T>;
template <typename T>
using Event2SmConverter = SpatialMapConverter<T>;
template <typename T>
using Traj2SmConverter = SpatialMapConverter<T>;
template <typename T>
using Event2RasterConverter = RasterConverter<T>;
template <typename T>
using Traj2RasterConverter = RasterConverter<T>;

/// Factory spellings used when the strategy is chosen at runtime.
template <typename T>
TimeSeriesConverter<T> ToTimeSeriesConverter(
    std::shared_ptr<const TemporalStructure> structure,
    ConversionStrategy strategy = ConversionStrategy::kAuto) {
  return TimeSeriesConverter<T>(std::move(structure), strategy);
}

template <typename T>
SpatialMapConverter<T> ToSpatialMapConverter(
    std::shared_ptr<const SpatialStructure> structure,
    ConversionStrategy strategy = ConversionStrategy::kAuto) {
  return SpatialMapConverter<T>(std::move(structure), strategy);
}

template <typename T>
RasterConverter<T> ToRasterConverter(
    std::shared_ptr<const RasterStructure> structure,
    ConversionStrategy strategy = ConversionStrategy::kAuto) {
  return RasterConverter<T>(std::move(structure), strategy);
}

}  // namespace st4ml

#endif  // ST4ML_CONVERSION_SINGULAR_TO_COLLECTIVE_H_
