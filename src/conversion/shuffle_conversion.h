#ifndef ST4ML_CONVERSION_SHUFFLE_CONVERSION_H_
#define ST4ML_CONVERSION_SHUFFLE_CONVERSION_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "conversion/singular_to_collective.h"
#include "engine/dataset.h"
#include "engine/pair_ops.h"
#include "instances/instances.h"

namespace st4ml {

/// The shuffle-based conversion strategy the paper's design rejected
/// (DESIGN.md §3.2.2 option 1), kept for the ablation benchmark: key every
/// instance by its structure cell, shuffle everything by key, aggregate per
/// cell, and assemble ONE SpatialMap on the driver.
///
/// Cell assignment uses exactly the same rules as the broadcast converters —
/// events join their first containing cell, trajectories every intersecting
/// cell — so the ablation can assert the two strategies agree bit for bit;
/// the difference is purely that this one moves records instead of the
/// structure.
///
/// The Try* spelling surfaces a failed shuffle task as a Status; the legacy
/// spelling throws the equivalent StatusError.
template <typename T, typename AggFn>
auto TryConvertToSpatialMapByShuffle(
    const Dataset<T>& data,
    const std::shared_ptr<const SpatialStructure>& structure, AggFn agg)
    -> StatusOr<SpatialMap<
        std::decay_t<std::invoke_result_t<AggFn, const std::vector<T>&>>>> {
  namespace ci = conversion_internal;
  ci::AssertSingular<T>();
  using R = std::decay_t<std::invoke_result_t<AggFn, const std::vector<T>&>>;
  if (structure == nullptr) {
    return Status::InvalidArgument("null spatial structure");
  }
  ScopedSpan op(data.context()->tracer(), span_category::kOperation,
                "convert_to_spatial_map_by_shuffle");
  op.AddArg("records_in", data.Count());

  auto keyed = data.FlatMap(
      [structure](const T& item) {
        std::vector<std::pair<int64_t, T>> out;
        if constexpr (ci::kIsEvent<T>) {
          size_t cell = structure->FindCell(item.spatial);
          if (cell != SpatialStructure::kNoCell) {
            out.emplace_back(static_cast<int64_t>(cell), item);
          }
        } else {
          for (size_t cell : structure->IntersectingCells(item.Shape())) {
            out.emplace_back(static_cast<int64_t>(cell), item);
          }
        }
        return out;
      },
      "conversion/shuffleKey");

  // The grouped Dataset is sole owner of its partitions and dies here, so
  // the rvalue Collect moves the (cell, instances) groups instead of
  // copying every shuffled record a second time.
  auto grouped = TryGroupByKey<int64_t, T>(keyed);
  if (!grouped.ok()) return grouped.status();
  auto groups = std::move(grouped).value().Collect();
  // Keys arrive hash-partitioned; order them before the merge scan below.
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<R> values;
  values.reserve(structure->size());
  size_t next = 0;
  const std::vector<T> empty;
  for (size_t cell = 0; cell < structure->size(); ++cell) {
    if (next < groups.size() &&
        groups[next].first == static_cast<int64_t>(cell)) {
      values.push_back(agg(groups[next].second));
      ++next;
    } else {
      values.push_back(agg(empty));
    }
  }
  op.AddArg("cells_out", values.size());
  return SpatialMap<R>(structure, std::move(values));
}

/// Legacy value-returning spelling: throws StatusError on failure.
template <typename T, typename AggFn>
auto ConvertToSpatialMapByShuffle(
    const Dataset<T>& data,
    const std::shared_ptr<const SpatialStructure>& structure, AggFn agg)
    -> SpatialMap<
        std::decay_t<std::invoke_result_t<AggFn, const std::vector<T>&>>> {
  auto result = TryConvertToSpatialMapByShuffle(data, structure, agg);
  if (!result.ok()) throw StatusError(result.status());
  return std::move(result).value();
}

}  // namespace st4ml

#endif  // ST4ML_CONVERSION_SHUFFLE_CONVERSION_H_
