#ifndef ST4ML_CONVERSION_PARSE_H_
#define ST4ML_CONVERSION_PARSE_H_

#include <utility>

#include "engine/dataset.h"
#include "instances/instances.h"
#include "storage/records.h"

namespace st4ml {

/// Raw-record -> typed-instance parsing, done ONCE right after selection.
/// The baselines instead re-parse string attributes at every use site; that
/// difference is the paper's Table 1 row "data type of location/time".

inline STEvent ToSTEvent(const EventRecord& record) {
  STEvent event;
  event.spatial = Point(record.x, record.y);
  event.temporal = Duration(record.time);
  event.data.id = record.id;
  event.data.attr = record.attr;
  return event;
}

inline STTrajectory ToSTTrajectory(const TrajRecord& record) {
  STTrajectory traj;
  traj.data = record.id;
  traj.entries.reserve(record.points.size());
  for (const TrajPointRecord& p : record.points) {
    traj.entries.push_back(STEntry{Point(p.x, p.y), p.time});
  }
  return traj;
}

inline Dataset<STEvent> ParseEvents(const Dataset<EventRecord>& records) {
  return records.Map([](const EventRecord& r) { return ToSTEvent(r); });
}

inline Dataset<STTrajectory> ParseTrajs(const Dataset<TrajRecord>& records) {
  return records.Map([](const TrajRecord& r) { return ToSTTrajectory(r); });
}

}  // namespace st4ml

#endif  // ST4ML_CONVERSION_PARSE_H_
