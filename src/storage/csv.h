#ifndef ST4ML_STORAGE_CSV_H_
#define ST4ML_STORAGE_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace st4ml {

/// Writes one CSV file: a header row then `rows`, quoting any field that
/// needs it. Every row must match the header's column count.
Status WriteCsv(const std::string& path, const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows);

/// Reads a CSV file written by WriteCsv (or any simple comma-separated file
/// with double-quote quoting). Returns all rows including the header.
StatusOr<std::vector<std::vector<std::string>>> ReadCsv(
    const std::string& path);

/// Splits ONE CSV line (no trailing newline; a trailing '\r' is tolerated)
/// into fields with the same double-quote handling as ReadCsv — the
/// line-at-a-time entry point streaming tools use on live stdin.
std::vector<std::string> SplitCsvLine(const std::string& line);

}  // namespace st4ml

#endif  // ST4ML_STORAGE_CSV_H_
