#include "storage/json.h"

#include <cinttypes>
#include <cstdio>

namespace st4ml {

std::string JsonQuote(const std::string& value) {
  std::string out = "\"";
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

JsonObject& JsonObject::AddField(const std::string& key,
                                 const std::string& rendered) {
  if (!body_.empty()) body_ += ',';
  body_ += JsonQuote(key);
  body_ += ':';
  body_ += rendered;
  return *this;
}

JsonObject& JsonObject::Add(const std::string& key, const std::string& value) {
  return AddField(key, JsonQuote(value));
}

JsonObject& JsonObject::Add(const std::string& key, const char* value) {
  return AddField(key, JsonQuote(value));
}

JsonObject& JsonObject::Add(const std::string& key, int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  return AddField(key, buf);
}

JsonObject& JsonObject::Add(const std::string& key, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return AddField(key, buf);
}

JsonObject& JsonObject::Add(const std::string& key, int value) {
  return Add(key, static_cast<int64_t>(value));
}

JsonObject& JsonObject::Add(const std::string& key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return AddField(key, buf);
}

JsonObject& JsonObject::Add(const std::string& key, bool value) {
  return AddField(key, value ? "true" : "false");
}

JsonObject& JsonObject::AddRaw(const std::string& key,
                               const std::string& json) {
  return AddField(key, json);
}

std::string JsonObject::Str() const { return "{" + body_ + "}"; }

}  // namespace st4ml
