#ifndef ST4ML_STORAGE_STPQ_H_
#define ST4ML_STORAGE_STPQ_H_

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"
#include "index/stbox.h"
#include "storage/records.h"

namespace st4ml {

/// STPQ ("spatio-temporal parquet") — the repo's columnar-file stand-in: a
/// flat binary file of records with a magic header and a record-kind tag.
/// One file per engine partition; a sidecar text file carries per-file ST
/// envelopes so the selection stage can prune whole files without opening
/// them (the paper's on-disk metadata).
///
/// Layout: "STPQ1" | kind u8 (0 events, 1 trajectories) | count u64 | records.
///   EventRecord: id i64, x f64, y f64, time i64, attr_len u32, attr bytes.
///   TrajRecord:  id i64, npoints u64, npoints x (x f64, y f64, time i64).
/// Native-endian: these files never leave the machine that wrote them.

inline constexpr char kStpqMagic[5] = {'S', 'T', 'P', 'Q', '1'};
inline constexpr uint8_t kStpqKindEvent = 0;
inline constexpr uint8_t kStpqKindTraj = 1;

/// Bytes before the first record: magic, kind tag, record count. This is
/// offset 0 of record 0 — the base the `.stix` sidecar's record-offset
/// table is expressed against.
inline constexpr uint64_t kStpqHeaderBytes = sizeof(kStpqMagic) + 1 + 8;

/// The record-kind tag of an STPQ file, from its header alone (Corruption
/// on a bad magic). Lets kind-agnostic tooling (st4ml_index) dispatch
/// without guessing.
StatusOr<uint8_t> ReadStpqKind(const std::string& path);

/// Serialized size of one record — the unit `bytes_selected` counts in.
inline uint64_t StpqRecordBytes(const EventRecord& r) {
  return 8 + 8 + 8 + 8 + 4 + r.attr.size();
}
inline uint64_t StpqRecordBytes(const TrajRecord& r) {
  return 8 + 8 + static_cast<uint64_t>(r.points.size()) * 24;
}

/// Writers and readers take an optional `io_bytes` accumulator: when
/// non-null, the file size written (or read) is ADDED to it, so callers
/// that own an ExecutionContext can feed the engine's STPQ I/O counters
/// while the storage layer stays engine-agnostic.
Status WriteStpqFile(const std::string& path,
                     const std::vector<EventRecord>& records,
                     uint64_t* io_bytes = nullptr);
Status WriteStpqFile(const std::string& path,
                     const std::vector<TrajRecord>& records,
                     uint64_t* io_bytes = nullptr);

StatusOr<std::vector<EventRecord>> ReadStpqEvents(const std::string& path,
                                                  uint64_t* io_bytes = nullptr);
StatusOr<std::vector<TrajRecord>> ReadStpqTrajs(const std::string& path,
                                                uint64_t* io_bytes = nullptr);

/// Record-type-generic read, for templated callers like the selector.
template <typename RecordT>
StatusOr<std::vector<RecordT>> ReadStpqFile(const std::string& path,
                                            uint64_t* io_bytes = nullptr) {
  if constexpr (std::is_same_v<RecordT, EventRecord>) {
    return ReadStpqEvents(path, io_bytes);
  } else {
    static_assert(std::is_same_v<RecordT, TrajRecord>,
                  "STPQ stores EventRecord or TrajRecord");
    return ReadStpqTrajs(path, io_bytes);
  }
}

/// Ranged record reads, for index-directed selection: Open validates the
/// header once (firing the same kStpqRead fault site as the full readers),
/// then ReadRecordsAt parses exactly the records inside one
/// [offset, end_offset) byte run — the unit the mmap'd `.stix` sidecar
/// resolves leaf hits into — so a cold indexed selection reads only the
/// bytes of matching records instead of the whole file. Offsets come from
/// the sidecar's record-offset table; ReadRecordsAt re-verifies that the
/// parsed records consume EXACTLY the promised byte run, so a sidecar that
/// disagrees with its file surfaces as Corruption, never as silently wrong
/// records. bytes_read() accounts the header plus every run's bytes, the
/// same currency as the full readers' io_bytes.
class StpqReader {
 public:
  static StatusOr<StpqReader> Open(const std::string& path,
                                   uint8_t expected_kind);

  StpqReader() = default;
  StpqReader(StpqReader&&) = default;
  StpqReader& operator=(StpqReader&&) = default;

  Status ReadEventsAt(uint64_t offset, uint64_t end_offset, uint64_t count,
                      std::vector<EventRecord>* out);
  Status ReadTrajsAt(uint64_t offset, uint64_t end_offset, uint64_t count,
                     std::vector<TrajRecord>* out);

  template <typename RecordT>
  Status ReadRecordsAt(uint64_t offset, uint64_t end_offset, uint64_t count,
                       std::vector<RecordT>* out) {
    if constexpr (std::is_same_v<RecordT, EventRecord>) {
      return ReadEventsAt(offset, end_offset, count, out);
    } else {
      static_assert(std::is_same_v<RecordT, TrajRecord>,
                    "STPQ stores EventRecord or TrajRecord");
      return ReadTrajsAt(offset, end_offset, count, out);
    }
  }

  /// The header's record count (untrusted until records deserialize).
  uint64_t record_count() const { return record_count_; }
  uint64_t file_bytes() const { return file_bytes_; }
  /// Header + run bytes consumed so far.
  uint64_t bytes_read() const { return bytes_read_; }

 private:
  Status CheckRange(uint64_t offset, uint64_t end_offset) const;

  std::ifstream in_;
  std::string path_;
  uint64_t file_bytes_ = 0;
  uint64_t record_count_ = 0;
  uint64_t bytes_read_ = 0;
};

/// Paths of every *.stpq file directly inside `dir`, sorted by name.
std::vector<std::string> ListStpqFiles(const std::string& dir);

/// Size in bytes of one file, for load accounting; 0 if unreadable.
uint64_t FileSizeBytes(const std::string& path);

/// One line of an STPQ directory's metadata sidecar: which file, the tight
/// ST envelope of its content, and how many records it holds.
struct StpqPartMeta {
  std::string file;  // name relative to the data directory
  STBox box;
  uint64_t count = 0;
};

Status WriteStpqMeta(const std::string& path,
                     const std::vector<StpqPartMeta>& parts);
StatusOr<std::vector<StpqPartMeta>> ReadStpqMeta(const std::string& path);

}  // namespace st4ml

#endif  // ST4ML_STORAGE_STPQ_H_
