#ifndef ST4ML_STORAGE_RECORDS_H_
#define ST4ML_STORAGE_RECORDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/stbox.h"

namespace st4ml {

/// A point event as stored on disk: one location, one instant, one string
/// attribute payload (taxi trip attributes, an air-quality reading, a POI
/// tag — whatever the dataset carries).
struct EventRecord {
  int64_t id = 0;
  double x = 0.0;
  double y = 0.0;
  int64_t time = 0;
  std::string attr;

  STBox ComputeSTBox() const {
    return STBox(Mbr(Point(x, y)), Duration(time));
  }
};

/// One sampled trajectory point (lon, lat, epoch seconds).
struct TrajPointRecord {
  double x = 0.0;
  double y = 0.0;
  int64_t time = 0;
};

/// A trajectory as stored on disk: an id and its time-ordered points.
struct TrajRecord {
  int64_t id = 0;
  std::vector<TrajPointRecord> points;

  STBox ComputeSTBox() const {
    Mbr mbr;
    int64_t t_min = 0;
    int64_t t_max = 0;
    bool first = true;
    for (const TrajPointRecord& p : points) {
      mbr.Extend(Point(p.x, p.y));
      if (first) {
        t_min = t_max = p.time;
        first = false;
      } else {
        if (p.time < t_min) t_min = p.time;
        if (p.time > t_max) t_max = p.time;
      }
    }
    return STBox(mbr, Duration(t_min, t_max));
  }
};

}  // namespace st4ml

#endif  // ST4ML_STORAGE_RECORDS_H_
