#include "storage/csv.h"

#include <filesystem>
#include <fstream>

namespace st4ml {
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void WriteRow(std::ofstream& out, const std::vector<std::string>& row) {
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out << ',';
    out << QuoteField(row[i]);
  }
  out << '\n';
}

}  // namespace

Status WriteCsv(const std::string& path, const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  std::error_code ec;
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open for writing: " + path);
  WriteRow(out, header);
  for (const auto& row : rows) {
    if (row.size() != header.size()) {
      return Status::InvalidArgument("row width does not match header in " +
                                     path);
    }
    WriteRow(out, row);
  }
  if (!out.good()) return Status::IOError("short write to " + path);
  return Status::Ok();
}

std::vector<std::string> SplitCsvLine(const std::string& raw) {
  std::string line = raw;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> row;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"' && i + 1 < line.size() && line[i + 1] == '"') {
        field += '"';
        ++i;
      } else if (c == '"') {
        quoted = false;
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == ',') {
      row.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  row.push_back(std::move(field));
  return row;
}

StatusOr<std::vector<std::vector<std::string>>> ReadCsv(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("no such CSV file: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    rows.push_back(SplitCsvLine(line));
  }
  return rows;
}

}  // namespace st4ml
