#include "storage/text_import.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <utility>

#include "storage/csv.h"

namespace st4ml {
namespace {

Status ParseNumericFields(const std::vector<std::string>& row,
                          const std::string& path, int64_t* id, double* x,
                          double* y, int64_t* time) {
  char* end = nullptr;
  *id = std::strtoll(row[0].c_str(), &end, 10);
  if (end == row[0].c_str()) {
    return Status::Corruption("bad id field in " + path + ": " + row[0]);
  }
  *x = std::strtod(row[1].c_str(), &end);
  if (end == row[1].c_str()) {
    return Status::Corruption("bad x field in " + path + ": " + row[1]);
  }
  *y = std::strtod(row[2].c_str(), &end);
  if (end == row[2].c_str()) {
    return Status::Corruption("bad y field in " + path + ": " + row[2]);
  }
  *time = std::strtoll(row[3].c_str(), &end, 10);
  if (end == row[3].c_str()) {
    return Status::Corruption("bad time field in " + path + ": " + row[3]);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<EventRecord> ParseEventCsvRow(const std::vector<std::string>& row,
                                       const std::string& context) {
  if (row.size() < 4) {
    return Status::Corruption("event row needs id,x,y,time in " + context);
  }
  EventRecord r;
  ST4ML_RETURN_IF_ERROR(
      ParseNumericFields(row, context, &r.id, &r.x, &r.y, &r.time));
  if (row.size() > 4) r.attr = row[4];
  return r;
}

StatusOr<std::vector<EventRecord>> ImportEventsCsv(const std::string& path) {
  auto rows = ReadCsv(path);
  if (!rows.ok()) return rows.status();
  std::vector<EventRecord> records;
  bool first = true;
  for (const auto& row : *rows) {
    if (first) {  // header
      first = false;
      continue;
    }
    auto record = ParseEventCsvRow(row, path);
    if (!record.ok()) return record.status();
    records.push_back(std::move(*record));
  }
  return records;
}

StatusOr<std::vector<TrajRecord>> ImportTrajsCsv(const std::string& path) {
  auto rows = ReadCsv(path);
  if (!rows.ok()) return rows.status();
  std::map<int64_t, std::vector<TrajPointRecord>> by_id;
  bool first = true;
  for (const auto& row : *rows) {
    if (first) {
      first = false;
      continue;
    }
    if (row.size() < 4) {
      return Status::Corruption("trajectory row needs id,x,y,time in " + path);
    }
    int64_t id;
    double x, y;
    int64_t time;
    ST4ML_RETURN_IF_ERROR(ParseNumericFields(row, path, &id, &x, &y, &time));
    by_id[id].push_back(TrajPointRecord{x, y, time});
  }
  std::vector<TrajRecord> records;
  records.reserve(by_id.size());
  for (auto& [id, points] : by_id) {
    std::stable_sort(points.begin(), points.end(),
                     [](const TrajPointRecord& a, const TrajPointRecord& b) {
                       return a.time < b.time;
                     });
    TrajRecord r;
    r.id = id;
    r.points = std::move(points);
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace st4ml
