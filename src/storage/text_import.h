#ifndef ST4ML_STORAGE_TEXT_IMPORT_H_
#define ST4ML_STORAGE_TEXT_IMPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/records.h"

namespace st4ml {

/// CSV ingestion for the CLI tools — the path raw datasets take into STPQ.

/// Expects header `id,x,y,time,attr` (attr optional), one event per row.
StatusOr<std::vector<EventRecord>> ImportEventsCsv(const std::string& path);

/// Expects header `id,x,y,time`, one trajectory POINT per row; rows are
/// grouped by id and time-sorted into one TrajRecord per id.
StatusOr<std::vector<TrajRecord>> ImportTrajsCsv(const std::string& path);

}  // namespace st4ml

#endif  // ST4ML_STORAGE_TEXT_IMPORT_H_
