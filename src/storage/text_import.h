#ifndef ST4ML_STORAGE_TEXT_IMPORT_H_
#define ST4ML_STORAGE_TEXT_IMPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/records.h"

namespace st4ml {

/// CSV ingestion for the CLI tools — the path raw datasets take into STPQ.

/// Expects header `id,x,y,time,attr` (attr optional), one event per row.
StatusOr<std::vector<EventRecord>> ImportEventsCsv(const std::string& path);

/// Parses ONE already-split event row (SplitCsvLine output) — the
/// line-at-a-time form streaming ingestion uses on live stdin. `context`
/// names the source in error messages the way a path would.
StatusOr<EventRecord> ParseEventCsvRow(const std::vector<std::string>& row,
                                       const std::string& context);

/// Expects header `id,x,y,time`, one trajectory POINT per row; rows are
/// grouped by id and time-sorted into one TrajRecord per id.
StatusOr<std::vector<TrajRecord>> ImportTrajsCsv(const std::string& path);

}  // namespace st4ml

#endif  // ST4ML_STORAGE_TEXT_IMPORT_H_
