#ifndef ST4ML_STORAGE_INGEST_MANIFEST_H_
#define ST4ML_STORAGE_INGEST_MANIFEST_H_

// The single commit point of streaming ingestion (DESIGN.md §13). One text
// file per ingest directory, replaced atomically (temp + fsync + rename),
// carries BOTH sides of a compaction's effect:
//   - the cumulative list of published `ingest-*.stpq` partitions, and
//   - the names of every WAL segment those partitions absorbed ("consumed").
// Because a reader obtains the partition list and the consumed-segment skip
// set from ONE atomically-replaced file, it can never double-count a record
// (partition listed + segment still on disk) or miss one (segment deleted
// before its partition is visible). Consumed segment FILES outlive the
// manifest by one compaction cycle before deletion, giving concurrent
// cross-process readers a grace window.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/stpq.h"

namespace st4ml {

struct IngestManifest {
  /// Monotonic publish count; bumped by every successful compaction.
  uint64_t generation = 0;
  /// Every live compacted partition, file names relative to the directory.
  std::vector<StpqPartMeta> parts;
  /// WAL segment file names (not paths) already folded into `parts`;
  /// readers and replay must skip these even if the files still exist.
  std::vector<std::string> consumed;
};

inline std::string IngestManifestPath(const std::string& dir) {
  return dir + "/ingest.manifest";
}

/// Atomically replaces the manifest at `path` (write tmp, fsync, rename,
/// fsync dir). Returning Ok IS the compaction commit.
Status WriteIngestManifest(const std::string& path,
                           const IngestManifest& manifest);

/// NotFound when no manifest exists yet (a fresh or batch-only directory);
/// Corruption on any malformed line.
StatusOr<IngestManifest> ReadIngestManifest(const std::string& path);

}  // namespace st4ml

#endif  // ST4ML_STORAGE_INGEST_MANIFEST_H_
