#ifndef ST4ML_STORAGE_JSON_H_
#define ST4ML_STORAGE_JSON_H_

#include <cstdint>
#include <string>

namespace st4ml {

/// Minimal JSON object writer for the CLI tools' JSONL output. Fields keep
/// insertion order; nesting happens by adding a built object as raw JSON.
class JsonObject {
 public:
  JsonObject& Add(const std::string& key, const std::string& value);
  JsonObject& Add(const std::string& key, const char* value);
  JsonObject& Add(const std::string& key, int64_t value);
  JsonObject& Add(const std::string& key, uint64_t value);
  JsonObject& Add(const std::string& key, int value);
  JsonObject& Add(const std::string& key, double value);
  JsonObject& Add(const std::string& key, bool value);
  /// Adds pre-serialized JSON (an array or nested object) verbatim.
  JsonObject& AddRaw(const std::string& key, const std::string& json);

  /// The complete object, e.g. {"a":1,"b":"x"}.
  std::string Str() const;

 private:
  JsonObject& AddField(const std::string& key, const std::string& rendered);

  std::string body_;
};

/// Escapes and double-quotes a string for JSON.
std::string JsonQuote(const std::string& value);

}  // namespace st4ml

#endif  // ST4ML_STORAGE_JSON_H_
