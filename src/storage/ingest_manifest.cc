#include "storage/ingest_manifest.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "geometry/mbr.h"
#include "storage/atomic_publish.h"
#include "temporal/duration.h"

namespace st4ml {

namespace fs = std::filesystem;

Status WriteIngestManifest(const std::string& path,
                           const IngestManifest& manifest) {
  std::error_code ec;
  fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) fs::create_directories(parent, ec);
  std::string tmp = TmpPathFor(path);
  std::ofstream out(tmp, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out << "st4ml-ingest v1\n";
  out << "gen " << manifest.generation << "\n";
  char line[512];
  for (const StpqPartMeta& p : manifest.parts) {
    std::snprintf(line, sizeof(line),
                  "part %s %.17g %.17g %.17g %.17g %" PRId64 " %" PRId64
                  " %" PRIu64 "\n",
                  p.file.c_str(), p.box.mbr.x_min, p.box.mbr.y_min,
                  p.box.mbr.x_max, p.box.mbr.y_max, p.box.time.start(),
                  p.box.time.end(), p.count);
    out << line;
  }
  for (const std::string& name : manifest.consumed) {
    out << "consumed " << name << "\n";
  }
  out.flush();
  if (!out.good()) {
    out.close();
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + path);
  }
  out.close();
  if (out.fail()) {
    std::remove(tmp.c_str());
    return Status::IOError("failed to close " + path);
  }
  return PublishFileAtomic(tmp, path);
}

StatusOr<IngestManifest> ReadIngestManifest(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("no such manifest: " + path);
  std::string header;
  std::getline(in, header);
  if (header != "st4ml-ingest v1") {
    return Status::Corruption("bad ingest manifest header in " + path);
  }
  IngestManifest manifest;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "gen") {
      if (!(fields >> manifest.generation)) {
        return Status::Corruption("bad gen line in " + path + ": " + line);
      }
    } else if (tag == "part") {
      StpqPartMeta p;
      double x_min, y_min, x_max, y_max;
      int64_t t_start, t_end;
      if (!(fields >> p.file >> x_min >> y_min >> x_max >> y_max >> t_start >>
            t_end >> p.count)) {
        return Status::Corruption("bad part line in " + path + ": " + line);
      }
      p.box = STBox(Mbr(x_min, y_min, x_max, y_max), Duration(t_start, t_end));
      manifest.parts.push_back(std::move(p));
    } else if (tag == "consumed") {
      std::string name;
      if (!(fields >> name)) {
        return Status::Corruption("bad consumed line in " + path + ": " + line);
      }
      manifest.consumed.push_back(std::move(name));
    } else {
      return Status::Corruption("unknown manifest tag in " + path + ": " +
                                line);
    }
  }
  return manifest;
}

}  // namespace st4ml
