#ifndef ST4ML_STORAGE_ATOMIC_PUBLISH_H_
#define ST4ML_STORAGE_ATOMIC_PUBLISH_H_

// Crash-safe file publication (DESIGN.md §13). Every persistent artifact
// writer in the repo (STPQ partitions, `.stix` sidecars, metadata files,
// WAL manifests) follows the same protocol: build the complete file under
// `<final>.tmp`, fsync it, rename(2) onto the final name, then fsync the
// parent directory so the rename itself is durable. A reader therefore
// either sees the old complete file, the new complete file, or (first
// write) no file — never a torn prefix under the final name. A crash can
// strand a `*.tmp`, which the next truncating writer simply overwrites.

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/status.h"

namespace st4ml {

/// The temp name the atomic-publish protocol stages under. One writer per
/// final path at a time (partition names are unique per generation), so a
/// fixed suffix cannot collide.
inline std::string TmpPathFor(const std::string& final_path) {
  return final_path + ".tmp";
}

/// fsync one existing file by path. An error here means the bytes may not
/// survive a power cut — surface it rather than publish a maybe-file.
inline Status FsyncPath(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open for fsync: " + path);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError("fsync failed for " + path);
  return Status::Ok();
}

/// fsync the directory holding `path`, making a just-completed rename in it
/// durable. Best effort on filesystems that reject directory fsync.
inline Status FsyncParentDir(const std::string& path) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  std::string dir = parent.empty() ? std::string(".") : parent.string();
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::Ok();  // e.g. O_DIRECTORY unsupported target
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError("fsync failed for directory " + dir);
  return Status::Ok();
}

/// The publish step: fsync the staged temp file, rename it over the final
/// name, fsync the parent directory. The temp file is consumed on success
/// and removed on failure, so no path ever keeps a torn artifact.
inline Status PublishFileAtomic(const std::string& tmp_path,
                                const std::string& final_path) {
  Status synced = FsyncPath(tmp_path);
  if (!synced.ok()) {
    std::remove(tmp_path.c_str());
    return synced;
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot publish " + final_path);
  }
  return FsyncParentDir(final_path);
}

}  // namespace st4ml

#endif  // ST4ML_STORAGE_ATOMIC_PUBLISH_H_
