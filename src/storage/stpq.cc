#include "storage/stpq.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fault_injector.h"
#include "storage/atomic_publish.h"

namespace st4ml {
namespace {

namespace fs = std::filesystem;

// Minimum wire size of one record, for clamping an untrusted header count
// before reserve(): an event is at least id+x+y+time+attr_len bytes, a
// trajectory at least id+npoints.
constexpr uint64_t kMinEventRecordBytes = 8 + 8 + 8 + 8 + 4;
constexpr uint64_t kMinTrajRecordBytes = 8 + 8;
constexpr uint64_t kTrajPointBytes = 8 + 8 + 8;

template <typename T>
void WriteRaw(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadRaw(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return in.gcount() == static_cast<std::streamsize>(sizeof(*value));
}

// Writers stage under `<path>.tmp` and only FinishWrite publishes the
// final name (atomic_publish.h), so a crash mid-write can never leave a
// truncated file where a reader expects a complete one.
Status OpenForWrite(const std::string& path, uint8_t kind, uint64_t count,
                    std::ofstream* out) {
  ST4ML_RETURN_IF_ERROR(
      GlobalFaultInjector().MaybeFail(fault_site::kStpqWrite, path));
  std::error_code ec;
  fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) fs::create_directories(parent, ec);
  out->open(TmpPathFor(path), std::ios::binary | std::ios::trunc);
  if (!out->is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out->write(kStpqMagic, sizeof(kStpqMagic));
  WriteRaw(*out, kind);
  WriteRaw(*out, count);
  return Status::Ok();
}

/// The write-side epilogue every STPQ writer shares. An ofstream's final
/// flush happens in its DESTRUCTOR, after any good() check a function-body
/// return could make — so a disk-full error on the last buffer used to be
/// reported as Ok. Flush and close explicitly, re-checking after each, and
/// only trust tellp() when it is non-negative (it returns -1 on a failed
/// stream, which would wrap an unsigned io_bytes accumulator). Then fsync
/// the staged bytes and rename them onto `path`.
Status FinishWrite(std::ofstream& out, const std::string& path,
                   uint64_t* io_bytes) {
  std::string tmp = TmpPathFor(path);
  out.flush();
  if (!out.good()) {
    out.close();
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + path);
  }
  std::streamoff pos = static_cast<std::streamoff>(out.tellp());
  out.close();
  if (out.fail()) {
    std::remove(tmp.c_str());
    return Status::IOError("failed to close " + path);
  }
  ST4ML_RETURN_IF_ERROR(PublishFileAtomic(tmp, path));
  if (io_bytes != nullptr && pos >= 0) {
    *io_bytes += static_cast<uint64_t>(pos);
  }
  return Status::Ok();
}

Status CheckHeader(std::ifstream& in, const std::string& path,
                   uint8_t expected_kind, uint64_t* count) {
  char magic[sizeof(kStpqMagic)];
  in.read(magic, sizeof(magic));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(magic)) ||
      std::memcmp(magic, kStpqMagic, sizeof(magic)) != 0) {
    return Status::Corruption("bad STPQ magic in " + path);
  }
  uint8_t kind = 0;
  if (!ReadRaw(in, &kind)) {
    return Status::Corruption("truncated STPQ header in " + path);
  }
  if (kind != expected_kind) {
    return Status::Corruption("STPQ record kind mismatch in " + path);
  }
  if (!ReadRaw(in, count)) {
    return Status::Corruption("truncated STPQ header in " + path);
  }
  return Status::Ok();
}

// Per-record parsers shared by the full readers and StpqReader's ranged
// reads, so both paths apply identical bounds checks. `file_bytes` caps the
// untrusted length fields (overflow-safe: compared, never multiplied).
Status ReadOneEvent(std::ifstream& in, uint64_t file_bytes,
                    const std::string& path, EventRecord* r) {
  uint32_t len = 0;
  if (!ReadRaw(in, &r->id) || !ReadRaw(in, &r->x) || !ReadRaw(in, &r->y) ||
      !ReadRaw(in, &r->time) || !ReadRaw(in, &len)) {
    return Status::Corruption("truncated STPQ record in " + path);
  }
  if (static_cast<uint64_t>(len) > file_bytes) {
    return Status::Corruption("implausible attr length in " + path);
  }
  r->attr.resize(len);
  in.read(r->attr.data(), len);
  if (in.gcount() != static_cast<std::streamsize>(len)) {
    return Status::Corruption("truncated STPQ record in " + path);
  }
  return Status::Ok();
}

Status ReadOneTraj(std::ifstream& in, uint64_t file_bytes,
                   const std::string& path, TrajRecord* r) {
  uint64_t n = 0;
  if (!ReadRaw(in, &r->id) || !ReadRaw(in, &n)) {
    return Status::Corruption("truncated STPQ record in " + path);
  }
  // `n * 24 > file_bytes` wraps for n near 2^64 and the following
  // resize(n) would throw; divide instead of multiply.
  if (n > file_bytes / kTrajPointBytes) {
    return Status::Corruption("implausible point count in " + path);
  }
  r->points.resize(static_cast<size_t>(n));
  for (TrajPointRecord& p : r->points) {
    if (!ReadRaw(in, &p.x) || !ReadRaw(in, &p.y) || !ReadRaw(in, &p.time)) {
      return Status::Corruption("truncated STPQ record in " + path);
    }
  }
  return Status::Ok();
}

}  // namespace

Status WriteStpqFile(const std::string& path,
                     const std::vector<EventRecord>& records,
                     uint64_t* io_bytes) {
  std::ofstream out;
  ST4ML_RETURN_IF_ERROR(
      OpenForWrite(path, kStpqKindEvent, records.size(), &out));
  for (const EventRecord& r : records) {
    WriteRaw(out, r.id);
    WriteRaw(out, r.x);
    WriteRaw(out, r.y);
    WriteRaw(out, r.time);
    uint32_t len = static_cast<uint32_t>(r.attr.size());
    WriteRaw(out, len);
    out.write(r.attr.data(), len);
  }
  return FinishWrite(out, path, io_bytes);
}

Status WriteStpqFile(const std::string& path,
                     const std::vector<TrajRecord>& records,
                     uint64_t* io_bytes) {
  std::ofstream out;
  ST4ML_RETURN_IF_ERROR(OpenForWrite(path, kStpqKindTraj, records.size(), &out));
  for (const TrajRecord& r : records) {
    WriteRaw(out, r.id);
    uint64_t n = r.points.size();
    WriteRaw(out, n);
    for (const TrajPointRecord& p : r.points) {
      WriteRaw(out, p.x);
      WriteRaw(out, p.y);
      WriteRaw(out, p.time);
    }
  }
  return FinishWrite(out, path, io_bytes);
}

StatusOr<std::vector<EventRecord>> ReadStpqEvents(const std::string& path,
                                                  uint64_t* io_bytes) {
  ST4ML_RETURN_IF_ERROR(
      GlobalFaultInjector().MaybeFail(fault_site::kStpqRead, path));
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("no such STPQ file: " + path);
  uint64_t count = 0;
  ST4ML_RETURN_IF_ERROR(CheckHeader(in, path, kStpqKindEvent, &count));
  uint64_t file_bytes = FileSizeBytes(path);
  if (io_bytes != nullptr) *io_bytes += file_bytes;
  std::vector<EventRecord> records;
  // The header count is untrusted until every record deserializes; clamp
  // the reserve to what the file could possibly hold so a corrupt count
  // cannot trigger a giant allocation. The record loop still walks the full
  // claimed count and reports the truncation.
  records.reserve(static_cast<size_t>(
      std::min(count, file_bytes / kMinEventRecordBytes)));
  for (uint64_t i = 0; i < count; ++i) {
    EventRecord r;
    ST4ML_RETURN_IF_ERROR(ReadOneEvent(in, file_bytes, path, &r));
    records.push_back(std::move(r));
  }
  return records;
}

StatusOr<std::vector<TrajRecord>> ReadStpqTrajs(const std::string& path,
                                                uint64_t* io_bytes) {
  ST4ML_RETURN_IF_ERROR(
      GlobalFaultInjector().MaybeFail(fault_site::kStpqRead, path));
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("no such STPQ file: " + path);
  uint64_t count = 0;
  ST4ML_RETURN_IF_ERROR(CheckHeader(in, path, kStpqKindTraj, &count));
  uint64_t file_bytes = FileSizeBytes(path);
  if (io_bytes != nullptr) *io_bytes += file_bytes;
  std::vector<TrajRecord> records;
  // Same untrusted-header clamp as the event reader.
  records.reserve(static_cast<size_t>(
      std::min(count, file_bytes / kMinTrajRecordBytes)));
  for (uint64_t i = 0; i < count; ++i) {
    TrajRecord r;
    ST4ML_RETURN_IF_ERROR(ReadOneTraj(in, file_bytes, path, &r));
    records.push_back(std::move(r));
  }
  return records;
}

StatusOr<uint8_t> ReadStpqKind(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("no such STPQ file: " + path);
  char magic[sizeof(kStpqMagic)];
  in.read(magic, sizeof(magic));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(magic)) ||
      std::memcmp(magic, kStpqMagic, sizeof(magic)) != 0) {
    return Status::Corruption("bad STPQ magic in " + path);
  }
  uint8_t kind = 0;
  if (!ReadRaw(in, &kind)) {
    return Status::Corruption("truncated STPQ header in " + path);
  }
  if (kind != kStpqKindEvent && kind != kStpqKindTraj) {
    return Status::Corruption("unknown STPQ record kind in " + path);
  }
  return kind;
}

StatusOr<StpqReader> StpqReader::Open(const std::string& path,
                                      uint8_t expected_kind) {
  ST4ML_RETURN_IF_ERROR(
      GlobalFaultInjector().MaybeFail(fault_site::kStpqRead, path));
  StpqReader reader;
  reader.path_ = path;
  reader.in_.open(path, std::ios::binary);
  if (!reader.in_.is_open()) {
    return Status::NotFound("no such STPQ file: " + path);
  }
  ST4ML_RETURN_IF_ERROR(
      CheckHeader(reader.in_, path, expected_kind, &reader.record_count_));
  reader.file_bytes_ = FileSizeBytes(path);
  reader.bytes_read_ = kStpqHeaderBytes;
  return reader;
}

Status StpqReader::CheckRange(uint64_t offset, uint64_t end_offset) const {
  if (offset < kStpqHeaderBytes || end_offset < offset ||
      end_offset > file_bytes_) {
    return Status::Corruption("record range outside file bounds in " + path_);
  }
  return Status::Ok();
}

Status StpqReader::ReadEventsAt(uint64_t offset, uint64_t end_offset,
                                uint64_t count,
                                std::vector<EventRecord>* out) {
  ST4ML_RETURN_IF_ERROR(CheckRange(offset, end_offset));
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(offset));
  if (!in_.good()) return Status::IOError("seek failed in " + path_);
  for (uint64_t i = 0; i < count; ++i) {
    EventRecord r;
    ST4ML_RETURN_IF_ERROR(ReadOneEvent(in_, file_bytes_, path_, &r));
    out->push_back(std::move(r));
  }
  // The records must consume EXACTLY the promised run: a sidecar whose
  // offsets disagree with the file is corruption, not silently wrong data.
  std::streamoff pos = static_cast<std::streamoff>(in_.tellg());
  if (pos < 0 || static_cast<uint64_t>(pos) != end_offset) {
    return Status::Corruption("record range mismatch in " + path_);
  }
  bytes_read_ += end_offset - offset;
  return Status::Ok();
}

Status StpqReader::ReadTrajsAt(uint64_t offset, uint64_t end_offset,
                               uint64_t count, std::vector<TrajRecord>* out) {
  ST4ML_RETURN_IF_ERROR(CheckRange(offset, end_offset));
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(offset));
  if (!in_.good()) return Status::IOError("seek failed in " + path_);
  for (uint64_t i = 0; i < count; ++i) {
    TrajRecord r;
    ST4ML_RETURN_IF_ERROR(ReadOneTraj(in_, file_bytes_, path_, &r));
    out->push_back(std::move(r));
  }
  std::streamoff pos = static_cast<std::streamoff>(in_.tellg());
  if (pos < 0 || static_cast<uint64_t>(pos) != end_offset) {
    return Status::Corruption("record range mismatch in " + path_);
  }
  bytes_read_ += end_offset - offset;
  return Status::Ok();
}

std::vector<std::string> ListStpqFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".stpq") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

uint64_t FileSizeBytes(const std::string& path) {
  std::error_code ec;
  uint64_t size = fs::file_size(path, ec);
  return ec ? 0 : size;
}

Status WriteStpqMeta(const std::string& path,
                     const std::vector<StpqPartMeta>& parts) {
  std::error_code ec;
  fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) fs::create_directories(parent, ec);
  // Staged like the record writers: live index.meta files are re-published
  // under readers by the compactor, which must never expose a torn list.
  std::string tmp = TmpPathFor(path);
  std::ofstream out(tmp, std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open for writing: " + path);
  out << "stpq-meta v1\n";
  char line[512];
  for (const StpqPartMeta& p : parts) {
    std::snprintf(line, sizeof(line),
                  "%s %.17g %.17g %.17g %.17g %" PRId64 " %" PRId64
                  " %" PRIu64 "\n",
                  p.file.c_str(), p.box.mbr.x_min, p.box.mbr.y_min,
                  p.box.mbr.x_max, p.box.mbr.y_max, p.box.time.start(),
                  p.box.time.end(), p.count);
    out << line;
  }
  // Same explicit flush/close as FinishWrite: the destructor's flush is too
  // late to report an error from.
  out.flush();
  if (!out.good()) {
    out.close();
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + path);
  }
  out.close();
  if (out.fail()) {
    std::remove(tmp.c_str());
    return Status::IOError("failed to close " + path);
  }
  return PublishFileAtomic(tmp, path);
}

StatusOr<std::vector<StpqPartMeta>> ReadStpqMeta(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("no such meta file: " + path);
  std::string header;
  std::getline(in, header);
  if (header != "stpq-meta v1") {
    return Status::Corruption("bad meta header in " + path);
  }
  std::vector<StpqPartMeta> parts;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    StpqPartMeta p;
    double x_min, y_min, x_max, y_max;
    int64_t t_start, t_end;
    if (!(fields >> p.file >> x_min >> y_min >> x_max >> y_max >> t_start >>
          t_end >> p.count)) {
      return Status::Corruption("bad meta line in " + path + ": " + line);
    }
    p.box = STBox(Mbr(x_min, y_min, x_max, y_max), Duration(t_start, t_end));
    parts.push_back(std::move(p));
  }
  return parts;
}

}  // namespace st4ml
