#ifndef ST4ML_EXTRACTION_EXTRACTOR_H_
#define ST4ML_EXTRACTION_EXTRACTOR_H_

#include <cstdint>
#include <limits>
#include <utility>

#include "engine/execution_context.h"

namespace st4ml {

/// Unit of the speeds reported by the speed extractors.
enum class SpeedUnit {
  kMetersPerSecond,
  kKilometersPerHour,
};

inline double SpeedFactor(SpeedUnit unit) {
  return unit == SpeedUnit::kKilometersPerHour ? 3.6 : 1.0;
}

/// A mergeable running mean — the shape extractor aggregates want: cheap to
/// ship between partitions, exact to combine, final division deferred.
struct MeanAcc {
  double sum = 0.0;
  int64_t count = 0;

  void Add(double v) {
    sum += v;
    ++count;
  }
  double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  MeanAcc operator+(const MeanAcc& other) const {
    return MeanAcc{sum + other.sum, count + other.count};
  }
};

/// Per-raster-cell speed summary: mean over the vehicles whose trajectories
/// crossed the cell during the bin, plus how many there were.
struct CellSpeed {
  double speed = 0.0;
  int64_t vehicles = 0;
};

/// Column statistics over a batch of per-trajectory speeds, produced by the
/// MinMaxSum reduction kernel (accel/kernels.h): the kernel's fixed 8-lane
/// accumulation order defines `sum`, so the value is identical on every
/// backend. Empty input is the reduction identity.
struct SpeedStats {
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  int64_t count = 0;

  double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

/// Wraps any callable into an extractor object, so ad-hoc lambdas compose
/// with the library extractors under one calling convention
/// (`extractor.Extract(converted_rdd)`).
template <typename Fn>
class FunctionExtractor {
 public:
  explicit FunctionExtractor(Fn fn) : fn_(std::move(fn)) {}
  FunctionExtractor(const char* name, Fn fn)
      : fn_(std::move(fn)), name_(name) {}

  /// When the input exposes an ExecutionContext (a Dataset does; plain
  /// collective structures don't), the call runs under an operation span
  /// named after the extractor.
  template <typename In>
  auto Extract(const In& rdd) const {
    if constexpr (requires { rdd.context()->tracer(); }) {
      ScopedSpan op(rdd.context()->tracer(), span_category::kOperation, name_);
      return fn_(rdd);
    } else {
      return fn_(rdd);
    }
  }

 private:
  Fn fn_;
  const char* name_ = "extract";
};

template <typename Fn>
FunctionExtractor<Fn> MakeExtractor(Fn fn) {
  return FunctionExtractor<Fn>(std::move(fn));
}

/// Named variant: the name labels the extractor's operation span.
template <typename Fn>
FunctionExtractor<Fn> MakeExtractor(const char* name, Fn fn) {
  return FunctionExtractor<Fn>(name, std::move(fn));
}

}  // namespace st4ml

#endif  // ST4ML_EXTRACTION_EXTRACTOR_H_
