#ifndef ST4ML_EXTRACTION_COLLECTIVE_EXTRACTORS_H_
#define ST4ML_EXTRACTION_COLLECTIVE_EXTRACTORS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "engine/dataset.h"
#include "extraction/extractor.h"
#include "extraction/rdd_api.h"
#include "instances/instances.h"

namespace st4ml {

/// Canned extractors over converted collectives. Each one is MapValue(s)
/// followed by CollectAndMerge — per-partition work stays cheap (counts,
/// sums) and only the small collective values cross partitions.

/// Instance count per temporal bin.
template <typename T>
TimeSeries<int64_t> ExtractTsFlow(
    const Dataset<TimeSeries<std::vector<T>>>& converted) {
  auto counts = MapValue(converted, [](const std::vector<T>& arr) {
    return static_cast<int64_t>(arr.size());
  });
  return CollectAndMerge(counts, static_cast<int64_t>(0),
                         [](int64_t a, int64_t b) { return a + b; });
}

/// Instance count per spatial cell.
template <typename T>
SpatialMap<int64_t> ExtractSmFlow(
    const Dataset<SpatialMap<std::vector<T>>>& converted) {
  auto counts = MapValue(converted, [](const std::vector<T>& arr) {
    return static_cast<int64_t>(arr.size());
  });
  return CollectAndMerge(counts, static_cast<int64_t>(0),
                         [](int64_t a, int64_t b) { return a + b; });
}

/// Mean trajectory speed per spatial cell (0 where no trajectory passed).
inline SpatialMap<double> ExtractSmSpeed(
    const Dataset<SpatialMap<std::vector<STTrajectory>>>& converted,
    SpeedUnit unit = SpeedUnit::kMetersPerSecond) {
  double factor = SpeedFactor(unit);
  auto partial =
      MapValue(converted, [factor](const std::vector<STTrajectory>& arr) {
        MeanAcc acc;
        for (const STTrajectory& t : arr) acc.Add(t.AverageSpeedMps() * factor);
        return acc;
      });
  SpatialMap<MeanAcc> merged =
      CollectAndMerge(partial, MeanAcc{},
                      [](MeanAcc a, const MeanAcc& b) { return a + b; });
  std::vector<double> means;
  means.reserve(merged.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    means.push_back(merged.value(i).Mean());
  }
  return SpatialMap<double>(merged.structure(), std::move(means));
}

namespace extraction_internal {

/// Entries and exits of one trajectory with respect to one (cell, bin): a
/// sample is "inside" when the bin contains its instant AND the cell
/// contains its point; transitions of that flag count as in/out moves.
inline std::pair<int64_t, int64_t> TransitOf(const STTrajectory& t,
                                             const Polygon& cell,
                                             const Duration& bin) {
  int64_t in = 0;
  int64_t out = 0;
  bool prev = false;
  bool first = true;
  for (const STEntry& e : t.entries) {
    bool inside = bin.Contains(e.time) && cell.ContainsPoint(e.point);
    if (inside && !prev && !first) ++in;
    if (!inside && prev) ++out;
    prev = inside;
    first = false;
  }
  return {in, out};
}

}  // namespace extraction_internal

/// (entries, exits) per raster cell: how many trajectories moved into and
/// out of each cell during each bin.
inline Raster<std::pair<int64_t, int64_t>> ExtractRasterTransit(
    const Dataset<Raster<std::vector<STTrajectory>>>& converted) {
  auto partial = MapValuePlus(
      converted, [](const std::vector<STTrajectory>& arr, const Polygon& cell,
                    const Duration& bin) {
        std::pair<int64_t, int64_t> total{0, 0};
        for (const STTrajectory& t : arr) {
          auto [in, out] = extraction_internal::TransitOf(t, cell, bin);
          total.first += in;
          total.second += out;
        }
        return total;
      });
  return CollectAndMerge(
      partial, std::pair<int64_t, int64_t>{0, 0},
      [](std::pair<int64_t, int64_t> a, const std::pair<int64_t, int64_t>& b) {
        return std::pair<int64_t, int64_t>{a.first + b.first,
                                           a.second + b.second};
      });
}

/// Mean vehicle speed plus vehicle count per raster cell.
inline Raster<CellSpeed> ExtractRasterSpeed(
    const Dataset<Raster<std::vector<STTrajectory>>>& converted,
    SpeedUnit unit = SpeedUnit::kMetersPerSecond) {
  double factor = SpeedFactor(unit);
  auto partial =
      MapValue(converted, [factor](const std::vector<STTrajectory>& arr) {
        MeanAcc acc;
        for (const STTrajectory& t : arr) acc.Add(t.AverageSpeedMps() * factor);
        return acc;
      });
  Raster<MeanAcc> merged =
      CollectAndMerge(partial, MeanAcc{},
                      [](MeanAcc a, const MeanAcc& b) { return a + b; });
  std::vector<CellSpeed> speeds;
  speeds.reserve(merged.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    speeds.push_back(CellSpeed{merged.value(i).Mean(), merged.value(i).count});
  }
  return Raster<CellSpeed>(merged.structure(), std::move(speeds));
}

}  // namespace st4ml

#endif  // ST4ML_EXTRACTION_COLLECTIVE_EXTRACTORS_H_
